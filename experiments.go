package sweeper

import (
	"io"

	"sweeper/internal/experiments"
)

// Experiment harness re-exports: everything needed to regenerate the
// paper's figures from application code (the cmd/experiments tool and the
// repository's benchmarks are both built on these).

// Scale controls simulation effort (window lengths, search depth,
// parallelism).
type Scale = experiments.Scale

// Table is one reproduced figure panel; Cell one measured point.
type (
	Table = experiments.Table
	Cell  = experiments.Cell
)

// PeakResult is the outcome of a peak-throughput search.
type PeakResult = experiments.PeakResult

// FullScale is the committed-results fidelity; QuickScale a faster,
// coarser setting for benchmarks and smoke runs.
func FullScale() Scale  { return experiments.FullScale() }
func QuickScale() Scale { return experiments.QuickScale() }

// PeakThroughput searches for cfg's peak sustainable load under the
// paper's SLO (p99 ≤ 100x mean unloaded service time, no drops).
func PeakThroughput(cfg Config, sc Scale) PeakResult {
	return experiments.PeakThroughput(cfg, sc)
}

// DropFreePeak searches for the peak load with zero packet drops (§VI-F).
func DropFreePeak(cfg Config, sc Scale) PeakResult {
	return experiments.DropFreePeak(cfg, sc)
}

// Experiments returns the registry of figure harnesses keyed by id
// ("fig1" ... "fig10").
func Experiments() map[string]func(Scale) []Table {
	return experiments.Registry()
}

// ExperimentNames lists the registered experiment ids.
func ExperimentNames() []string { return experiments.Names() }

// RenderTables pretty-prints reproduced panels, each in its primary view.
func RenderTables(w io.Writer, tables []Table) {
	for i := range tables {
		tables[i].RenderDefault(w)
	}
}
