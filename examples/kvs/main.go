// Example: reproduce the core of the paper's Figure 5 claim on a reduced
// sweep — the peak sustainable throughput of the MICA-like KVS as a
// function of RX buffer provisioning, comparing plain 2-way DDIO, 2-way
// DDIO + Sweeper, and the unrealistic Ideal-DDIO upper bound.
//
// Sweeper's point is visible directly: baseline DDIO degrades as buffers
// deepen (bigger footprint, more consumed-buffer evictions), while Sweeper
// stays near Ideal regardless of provisioning — breaking the shallow-vs-
// deep buffering tradeoff.
package main

import (
	"flag"
	"fmt"

	"sweeper"
)

func main() {
	full := flag.Bool("full", false, "use full-fidelity windows (slower)")
	flag.Parse()

	sc := sweeper.QuickScale()
	if *full {
		sc = sweeper.FullScale()
	}

	variants := []struct {
		name  string
		mode  uint8
		sweep bool
	}{
		{"DDIO 2-way", 1, false},
		{"DDIO 2-way + Sweeper", 1, true},
		{"Ideal-DDIO", 2, false},
	}

	fmt.Println("KVS peak sustainable throughput (Mrps) under the paper's SLO")
	fmt.Printf("%-22s %12s %12s %12s\n", "", "512 buf", "1024 buf", "2048 buf")
	for _, v := range variants {
		fmt.Printf("%-22s", v.name)
		for _, bufs := range []int{512, 1024, 2048} {
			cfg := sweeper.DefaultConfig()
			cfg.RingSlots = bufs
			switch v.mode {
			case 1:
				cfg.NICMode = sweeper.ModeDDIO
				cfg.DDIOWays = 2
			case 2:
				cfg.NICMode = sweeper.ModeIdeal
			}
			if v.sweep {
				sweeper.EnableSweeper(&cfg)
			}
			pk := sweeper.PeakThroughput(cfg, sc)
			fmt.Printf(" %12.2f", pk.At.ThroughputMrps)
		}
		fmt.Println()
	}
}
