// Example: the §VI-E multi-tenant scenario. Twelve forwarder cores share
// the server with twelve memory-intensive X-Mem instances; the LLC is
// partitioned between the network's DDIO ways and the tenant. Sweeper
// improves BOTH tenants at once: the forwarder loses its leak-induced
// bandwidth tax and X-Mem gets its LLC ways back.
package main

import (
	"fmt"

	"sweeper"
	"sweeper/internal/cache"
)

func main() {
	const (
		warmup  = 6_000_000
		measure = 2_000_000
		depth   = 32 // DPDK-style processing batch kept queued
	)

	fmt.Println("12x L3fwd (1KB packets, 2048-slot rings) + 12x X-Mem (2MB private sets)")
	fmt.Println("disjoint LLC partitions: DDIO gets A ways, X-Mem the remaining 12-A")
	fmt.Printf("\n%-8s %-10s %14s %14s\n", "(A,B)", "sweeper", "l3fwd Mrps", "xmem IPC")

	for _, a := range []int{2, 4, 8} {
		for _, sweep := range []bool{false, true} {
			cfg := sweeper.DefaultConfig()
			cfg.Workload = sweeper.WorkloadL3FwdL1
			cfg.ItemBytes = 0
			cfg.NetCores = 12
			cfg.XMemCores = 12
			cfg.PacketBytes = 1024
			cfg.RingSlots = 2048
			cfg.TXSlots = 2048
			cfg.ClosedLoopDepth = depth
			cfg.OfferedMrps = 0
			cfg.NICWayMask = cache.MaskAll(a)
			cfg.NetCPUWayMask = cache.MaskAll(a)
			cfg.XMemWayMask = cache.MaskRange(a, 12)
			cfg.DDIOWays = a
			if sweep {
				sweeper.EnableSweeper(&cfg)
			}
			r := sweeper.Run(cfg, warmup, measure)
			fmt.Printf("(%d,%-2d)   %-10v %14.2f %14.3f\n",
				a, 12-a, sweep, r.ThroughputMrps, r.XMemIPC)
		}
	}
	fmt.Println("\nSweeper shifts the whole Pareto frontier toward the top-right corner")
	fmt.Println("(higher forwarder throughput at the same or better tenant IPC).")
}
