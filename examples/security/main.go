// Example: the correctness and security machinery around clsweep (§V-B).
//
// Two things are demonstrated on the raw cache hierarchy:
//
//  1. The use-after-relinquish sanitizer: reading a buffer after
//     relinquishing it is undefined behaviour (like use-after-free); the
//     simulator can flag such reads until the NIC's next overwrite.
//
//  2. The OS page-recycling guard: a process could otherwise clsweep a
//     freshly zeroed page to drop the zeroes before they reach memory and
//     then read the previous owner's data from DRAM. The kernel mitigation
//     CLWBs every zeroed block for sweep-capable processes, so the sweep
//     can only expose zeroes.
package main

import (
	"fmt"

	"sweeper/internal/cache"
	"sweeper/internal/core"
)

// memoryTracker is a tiny DRAM stand-in that remembers, per line, whether
// the *zeroed* contents ever reached memory.
type memoryTracker struct {
	zeroReached map[uint64]bool
	reads       int
}

func (m *memoryTracker) DemandRead(now uint64, a uint64, src cache.Requestor) uint64 {
	m.reads++
	return now + 100
}

func (m *memoryTracker) WritebackEvict(now uint64, a uint64) {
	m.zeroReached[a] = true
}

func (m *memoryTracker) DMAWrite(now uint64, a uint64) {}

func main() {
	mem := &memoryTracker{zeroReached: map[uint64]bool{}}
	hier := cache.NewHierarchy(cache.DefaultConfig(2), mem)
	hier.SetNICWays(2)

	// --- Part 1: the sanitizer. ---
	sw := core.New(hier, core.Config{
		RXSweep:                 true,
		IssueCyclesPerLine:      1,
		DebugUseAfterRelinquish: true,
	})

	const buf, size = uint64(0x10000), uint64(1024)
	// NIC delivers a packet; the app consumes and relinquishes it.
	for a := buf; a < buf+size; a += 64 {
		hier.NICWriteDDIO(0, 0, a)
	}
	hier.CPURead(10, 0, buf)
	sw.Relinquish(20, 0, buf, size)

	// A buggy late read: flagged.
	if sw.CheckRead(buf + 128) {
		fmt.Println("sanitizer: caught a use-after-relinquish read at", "0x10080")
	}
	// The NIC reuses the slot; reading the fresh packet is legal again.
	hier.NICWriteDDIO(30, 0, buf+128)
	sw.NoteOverwrite(buf + 128)
	if !sw.CheckRead(buf + 128) {
		fmt.Println("sanitizer: read after NIC overwrite is legal")
	}
	fmt.Printf("sanitizer: %d violation(s) recorded\n\n", len(sw.Violations()))

	// --- Part 2: the page-recycling guard. ---
	guard := core.NewPageGuard(hier)
	page := uint64(0x200000)

	// Transfer to a process that never uses clsweep: zeroed blocks may
	// linger dirty in caches (no CLWB needed — it cannot sweep them).
	guard.TransferPage(100, 0, page)
	lines, wbs := guard.CLWBStats()
	fmt.Printf("guard: plain process -> %d CLWBs issued\n", lines)

	// Transfer to a sweep-capable process: every zeroed block is forced
	// to DRAM, so a malicious clsweep can only ever expose zeroes.
	guard.GrantClsweep(1)
	guard.TransferPage(200, 1, page+core.PageBytes)
	lines, wbs = guard.CLWBStats()
	fmt.Printf("guard: sweep-capable process -> %d CLWBs, %d writebacks\n", lines, wbs)

	exposed := 0
	for a := page + core.PageBytes; a < page+2*core.PageBytes; a += 64 {
		hier.Sweep(300, 1, a) // the attack: sweep the zeroed page
		if !mem.zeroReached[a] {
			exposed++
		}
	}
	if exposed == 0 {
		fmt.Println("guard: attack defeated — zeroes had already reached DRAM for every block")
	} else {
		fmt.Printf("guard: %d blocks would have exposed stale data!\n", exposed)
	}
}
