// Example: the §IV-B premature-eviction study. An L3 forwarder runs with D
// unconsumed packets permanently queued in every core's RX ring (emulating
// deep batched processing); the breakdown shows how consumed-buffer
// evictions (RX Evct) dominate while premature evictions (CPU RX Rd)
// appear only under space-constrained DDIO with deep queues — and how
// Sweeper removes the consumed-eviction component.
package main

import (
	"fmt"

	"sweeper"
	"sweeper/internal/stats"
)

func main() {
	const (
		warmup  = 6_000_000
		measure = 2_000_000
	)

	configs := []struct {
		name  string
		ways  int
		sweep bool
	}{
		{"DDIO 2-way", 2, false},
		{"DDIO 12-way", 12, false},
		{"DDIO 2-way + Sweeper", 2, true},
	}

	for _, depth := range []int{50, 250} {
		fmt.Printf("\nL3 forwarder, 2048-slot rings, %d packets kept queued per core:\n", depth)
		for _, c := range configs {
			cfg := sweeper.DefaultConfig()
			cfg.Workload = sweeper.WorkloadL3Fwd
			cfg.ItemBytes = 0
			cfg.PacketBytes = 1024
			cfg.RingSlots = 2048
			cfg.TXSlots = 2048 // the forwarder copies packets to TX
			cfg.DDIOWays = c.ways
			cfg.ClosedLoopDepth = depth
			cfg.OfferedMrps = 0
			if c.sweep {
				sweeper.EnableSweeper(&cfg)
			}
			r := sweeper.Run(cfg, warmup, measure)
			fmt.Printf("  %-22s %7.2f Mrps, %6.1f GB/s | consumed(RX Evct)=%.1f premature(CPU RX Rd)=%.1f TX Evct=%.1f per packet\n",
				c.name, r.ThroughputMrps, r.MemBWGBps,
				r.AccessesPerRequest[stats.RXEvct],
				r.AccessesPerRequest[stats.CPURXRd],
				r.AccessesPerRequest[stats.TXEvct])
		}
	}
	fmt.Println("\nWith Sweeper, the remaining RX evictions match the CPU RX read misses:")
	fmt.Println("every leak left is a premature eviction, exactly as in the paper's Fig. 7b.")
}
