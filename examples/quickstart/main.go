// Quickstart: simulate the paper's Table I server running the write-heavy
// key-value store at a fixed load, with and without Sweeper, and print the
// paper's headline metrics — throughput, memory bandwidth, and the DRAM
// traffic breakdown that exposes consumed-buffer evictions (RX Evct).
package main

import (
	"fmt"

	"sweeper"
	"sweeper/internal/stats"
)

func main() {
	const (
		warmup  = 8_000_000 // cycles (~2.5ms at 3.2GHz)
		measure = 2_000_000
	)

	baseline := sweeper.DefaultConfig() // 2-way DDIO, 1024 x 1KB RX buffers/core
	baseline.OfferedMrps = 12

	swept := baseline
	sweeper.EnableSweeper(&swept)

	fmt.Println("KVS, 24 cores, 2-way DDIO, 1024 RX buffers/core, 1KB items, 12 Mrps offered")
	for _, run := range []struct {
		name string
		cfg  sweeper.Config
	}{
		{"DDIO baseline", baseline},
		{"DDIO + Sweeper", swept},
	} {
		r := sweeper.Run(run.cfg, warmup, measure)
		fmt.Printf("\n%s:\n", run.name)
		fmt.Printf("  throughput      %7.2f Mrps\n", r.ThroughputMrps)
		fmt.Printf("  memory traffic  %7.2f GB/s (%.0f%% of peak)\n",
			r.MemBWGBps, 100*r.MemBWUtilization)
		fmt.Printf("  dram latency    mean %.0f cyc, p99 %d cyc\n",
			r.DRAMLatMean, r.DRAMLatP99)
		fmt.Printf("  accesses/req:")
		for k := stats.AccessKind(0); k < stats.NumKinds; k++ {
			if r.AccessesPerRequest[k] >= 0.01 {
				fmt.Printf("  %s=%.2f", k, r.AccessesPerRequest[k])
			}
		}
		fmt.Println()
		if r.Sweeper.Relinquishes > 0 {
			fmt.Printf("  sweeper         %d relinquishes dropped %d dirty lines (%.2f GB/s of writebacks avoided)\n",
				r.Sweeper.Relinquishes, r.Sweeper.DroppedDirtyLines, r.SweeperSavedGBps)
		}
	}
	fmt.Println("\nNote how Sweeper eliminates the RX Evct writeback stream entirely.")
}
