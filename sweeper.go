// Package sweeper is the public API of the Sweeper reproduction: a
// microarchitectural simulation of a 24-core server with a DDIO-capable
// integrated NIC, used to study network data leaks from the LLC to DRAM and
// the paper's fix — dropping consumed, dirty network buffers from the cache
// hierarchy without writing them back (Vemmou, Cho, Daglis: "Patching up
// Network Data Leaks with Sweeper", MICRO 2022).
//
// The package re-exports the simulator's configuration surface and the
// experiment harness that regenerates every figure of the paper's
// evaluation. Typical use:
//
//	cfg := sweeper.DefaultConfig()
//	cfg.NICMode = sweeper.ModeDDIO
//	cfg.DDIOWays = 2
//	cfg.EnableSweeper()
//	res := sweeper.Run(cfg, 8_000_000, 2_000_000)
//	fmt.Println(res.ThroughputMrps, res.MemBWGBps)
//
// The underlying subsystems (cache hierarchy, DDR4 model, NIC, workloads)
// live in internal packages; this facade is the supported surface.
package sweeper

import (
	"sweeper/internal/core"
	"sweeper/internal/machine"
	"sweeper/internal/nic"
	"sweeper/internal/workload"
)

// Config describes one simulated server configuration; see the field
// documentation in the machine package.
type Config = machine.Config

// Results holds one measurement window's metrics.
type Results = machine.Results

// Machine is an assembled simulated server.
type Machine = machine.Machine

// TraceEvent is one DRAM transaction as observed by a trace sink; install a
// sink with (*Machine).SetTraceSink before Run.
type TraceEvent = machine.TraceEvent

// Workload registry names. Config.Workload takes any name registered with
// the workload package's driver registry; these are the built-ins.
const (
	WorkloadKVS     = workload.NameKVS
	WorkloadL3Fwd   = workload.NameL3Fwd
	WorkloadL3FwdL1 = workload.NameL3FwdL1
)

// Packet injection policies: the §III baselines plus the related-work
// IDIO-style L2 steering.
const (
	ModeDMA   = nic.ModeDMA
	ModeDDIO  = nic.ModeDDIO
	ModeIdeal = nic.ModeIdeal
	ModeIDIO  = nic.ModeIDIO
)

// DefaultConfig returns the paper's Table I server: 24 cores at 3.2 GHz,
// 36MB 12-way LLC, four DDR4-3200 channels, 2-way DDIO, 1024 one-KB RX
// buffers per core, the write-heavy MICA-like KVS, Sweeper off.
func DefaultConfig() Config { return machine.DefaultConfig() }

// EnableSweeper turns on application-driven RX buffer relinquishing (§V-A)
// for a configuration.
func EnableSweeper(cfg *Config) {
	cfg.Sweeper = core.Config{RXSweep: true, IssueCyclesPerLine: 1}
}

// EnableTXSweep additionally sets the Work Queue SweepBuffer bit so the NIC
// sweeps transmit buffers after sending them (§V-D).
func EnableTXSweep(cfg *Config) {
	cfg.Sweeper.TXSweep = true
	cfg.SweepTX = true
}

// New assembles a machine, validating the configuration.
func New(cfg Config) (*Machine, error) { return machine.New(cfg) }

// Run assembles and runs a configuration for warmup cycles and then a
// measurement window of measure cycles, returning its metrics.
func Run(cfg Config, warmup, measure uint64) Results {
	return machine.MustNew(cfg).Run(warmup, measure)
}
