# Development targets. `make check` is what every PR should pass; the bench
# targets make allocation or throughput regressions in the event engine
# visible in review.

GO ?= go

.PHONY: all build test vet race bench bench-engine bench-e2e check results

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector is ~10x; the experiments package alone needs more than
# the default 10m test timeout on small machines.
race:
	$(GO) test -race -timeout 45m ./...

# Engine microbenchmarks: allocs/op must stay at 0 for the steady state.
bench-engine:
	$(GO) test ./internal/sim/ -run=XXX -bench=Engine -benchmem

# End-to-end single-run benchmark (whole machine, short windows).
bench-e2e:
	$(GO) test . -run=XXX -bench='BenchmarkRunOnce|BenchmarkSimulatedCyclesPerSecond' -benchtime=3x -benchmem

bench: bench-engine bench-e2e

check: build vet test race bench-engine

# Regenerate the committed experiment artifacts (takes a while).
results:
	$(GO) run ./cmd/experiments -fig all -quick -out results/
