# Development targets. `make check` is what every PR should pass; the bench
# targets make allocation or throughput regressions in the event engine
# visible in review.

GO ?= go

.PHONY: all build test vet lint race bench bench-engine bench-mem bench-e2e bench-parallel bench-sampling bench-cluster bench-tiers race-parallel check results obs-smoke sampling-smoke cluster-smoke traffic-smoke tiers-smoke golden-fig8 test-debug

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a notice when staticcheck is not on
# PATH (offline sandboxes); CI installs it and fails on findings.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "lint: staticcheck not installed, skipping" ; \
		echo "      (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

# The race detector is ~10x; the experiments package alone needs more than
# the default 10m test timeout on small machines.
race:
	$(GO) test -race -timeout 45m ./...

# Engine microbenchmarks: allocs/op must stay at 0 for the steady state.
bench-engine:
	$(GO) test ./internal/sim/ -run=XXX -bench=Engine -benchmem

# Memory-access fast path: cache indexing/lookup/insert, DRAM address
# mapping and the strength-reduced division primitive they share.
bench-mem:
	$(GO) test . -run=XXX -bench='CacheHierarchy|LLCInsert|DRAMRead' -benchmem
	$(GO) test ./internal/cache/ -run=XXX -bench='SetIndex|LLCLookup|SetAssocReset' -benchmem
	$(GO) test ./internal/mem/ -run=XXX -bench='MapAddr' -benchmem
	$(GO) test ./internal/fastdiv/ -run=XXX -bench=. -benchmem

# End-to-end single-run benchmark (whole machine, short windows).
bench-e2e:
	$(GO) test . -run=XXX -bench='BenchmarkRunOnce$$|BenchmarkRunOncePooled|BenchmarkSimulatedCyclesPerSecond' -benchtime=3x -benchmem

# Parallel-engine shard scaling: records simcyc/s at shards 1/2/4/8 to
# BENCH_parallel.json (and cross-checks bit-identical results on the way).
bench-parallel:
	$(GO) run ./cmd/benchparallel -out BENCH_parallel.json

# Sampled-simulation speedup and accuracy: full detailed runs vs sampled
# (fixed and ci modes) on the base scenarios, recorded to BENCH_sampling.json.
bench-sampling:
	$(GO) run ./cmd/benchsampling -out BENCH_sampling.json

# Cluster node-count scaling: records simcyc/s and remote-memory traffic at
# 1/2/4/8 nodes to BENCH_cluster.json (with a bit-identical rerun check).
bench-cluster:
	$(GO) run ./cmd/benchcluster -out BENCH_cluster.json

# Hybrid-memory datapath cost: tiers off vs on, clsweep vs simf, recorded to
# BENCH_tiers.json. The tiers-off points guard the fast path — with
# Config.MemTier disabled the datapath must cost what it did before tiering
# existed.
bench-tiers:
	$(GO) run ./cmd/benchtiers -out BENCH_tiers.json

# Race detection focused on the parallel engine's cross-shard paths, with
# the invariant probes compiled in and the harvest pool forced on. Includes
# the sampled-simulation tests: the error-bound validation plus the
# sampled-across-shards determinism check.
race-parallel:
	$(GO) test -race -tags sweeperdebug -timeout 20m \
		./internal/sim/ ./internal/machine/ \
		-run 'Parallel|Shard|Sharded|Lookahead|CancelDuringEpoch|Sampl'

bench: bench-engine bench-mem bench-e2e bench-parallel bench-sampling bench-cluster bench-tiers

check: build vet lint test race bench-engine sampling-smoke cluster-smoke traffic-smoke tiers-smoke

# Observability smoke: drive the CLI with every exporter enabled against the
# kvs scenario, then validate the artifacts (CSV/JSON structure) in-process.
obs-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/sweepersim -scenario examples/scenarios/kvs.json \
		-warmup 200000 -measure 400000 \
		-metrics artifacts/metrics.csv -trace artifacts/trace.json \
		-manifest artifacts/manifest.json
	SWEEPER_OBS_DIR=$(CURDIR)/artifacts $(GO) test ./internal/obs -run TestObsSmoke -count=1 -v

# Sampled-simulation smoke: drive the CLI's sampling flags end-to-end on the
# kvs scenario, then the in-process smoke across every base scenario.
sampling-smoke:
	$(GO) run ./cmd/sweepersim -scenario examples/scenarios/kvs.json \
		-warmup 500000 -measure 100000 -sample-mode fixed
	$(GO) test ./internal/machine -run TestSamplingSmokeBuiltins -count=1

# Cluster smoke: drive the CLI through the shipped 4-node rack scenario with
# the manifest exporter on, then validate the manifest (per-node, fabric and
# balancer metrics) in-process.
cluster-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/sweepersim -scenario examples/scenarios/cluster_kvs.json \
		-warmup 200000 -measure 150000 \
		-manifest artifacts/cluster_manifest.json
	SWEEPER_CLUSTER_MANIFEST=$(CURDIR)/artifacts/cluster_manifest.run01.json \
		$(GO) test ./internal/cluster -run TestClusterManifestSmoke -count=1 -v

# Traffic-realism smoke: synthesize a bursty trace with tracegen, replay it
# through the CLI with -arrival trace and validate the manifest in-process,
# then drive the shipped bursty-MMPP scenario end-to-end.
traffic-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/tracegen -packets 30000 -burst-ratio 4 -flows 256 \
		-out artifacts/ci_trace.bin
	$(GO) run ./cmd/sweepersim -arrival trace -arrival-trace artifacts/ci_trace.bin \
		-warmup 300000 -measure 200000 \
		-manifest artifacts/traffic_manifest.json
	SWEEPER_TRAFFIC_MANIFEST=$(CURDIR)/artifacts/traffic_manifest.json \
		$(GO) test ./internal/machine -run TestTrafficManifestSmoke -count=1 -v
	$(GO) run ./cmd/sweepersim -scenario examples/scenarios/mmpp.json \
		-warmup 300000 -measure 200000

# Hybrid-tier smoke: drive the CLI's tier and invalidation-instruction flags
# (hot-page placement, SIMF bulk invalidation) with the manifest exporter on,
# validate the manifest (tier config, counters, mem.tier1.* metrics)
# in-process, then run the shipped tiers scenario end-to-end.
tiers-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/sweepersim -sweeper -invalidate-insn simf \
		-mem-tier hotpage -mem-tier-split 16777216 \
		-warmup 300000 -measure 200000 \
		-manifest artifacts/tiers_manifest.json
	SWEEPER_TIERS_MANIFEST=$(CURDIR)/artifacts/tiers_manifest.json \
		$(GO) test ./internal/machine -run TestTiersManifestSmoke -count=1 -v
	$(GO) run ./cmd/sweepersim -scenario examples/scenarios/tiers.json \
		-warmup 300000 -measure 200000

# Figure 8 golden gate: byte-compares regenerated fig8a/fig8b CSVs against
# results/. 63 peak searches (~14 min single-core), so it is opt-in via the
# env guard rather than part of the default `go test ./...` budget.
golden-fig8:
	SWEEPER_GOLDEN_FIG8=1 $(GO) test ./internal/experiments \
		-run TestGoldenFig8CSVs -count=1 -timeout 40m -v

# Debug build with the invariant probes compiled in (ring slot conservation,
# DRAM timing monotonicity, cache inclusion, DDIO way-mask bounds).
test-debug:
	$(GO) build -tags sweeperdebug ./...
	$(GO) test -tags sweeperdebug ./internal/machine/ ./internal/obs/ -run 'TestProbe|TestObs'

# Regenerate the committed experiment artifacts (takes a while).
results:
	$(GO) run ./cmd/experiments -fig all -quick -out results/
