// Benchmarks regenerating the paper's evaluation, one per figure, plus
// microbenchmarks of the simulator's hot paths and ablations of the design
// choices DESIGN.md calls out.
//
// Figure benches run at a reduced scale so the full suite stays tractable;
// set SWEEPER_BENCH_FULL=1 to run them at the committed-results fidelity.
// Each reports the figure's headline numbers as custom metrics (Mrps,
// GB/s, accesses/request, fold-changes), so `go test -bench=.` regenerates
// the paper's evaluation shape end to end.
package sweeper_test

import (
	"os"
	"testing"
	"time"

	"sweeper"
	"sweeper/internal/addr"
	"sweeper/internal/cache"
	"sweeper/internal/cluster"
	"sweeper/internal/experiments"
	"sweeper/internal/machine"
	"sweeper/internal/mem"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// benchScale picks the simulation effort for figure benchmarks.
func benchScale() experiments.Scale {
	if os.Getenv("SWEEPER_BENCH_FULL") != "" {
		return experiments.FullScale()
	}
	// Aggressively reduced windows: bench runs exist to exercise every
	// harness end to end and report shape-level metrics; the committed
	// numbers come from cmd/experiments at QuickScale or better.
	sc := experiments.QuickScale()
	sc.Warmup = 1_500_000
	sc.Measure = 800_000
	sc.SearchIters = 2
	return sc
}

// reportCell publishes one (param, config) measurement as bench metrics.
func reportCell(b *testing.B, t *experiments.Table, param, config, suffix string) {
	c, ok := t.Find(param, config)
	if !ok {
		b.Fatalf("%s: missing cell %s/%s", t.ID, param, config)
	}
	b.ReportMetric(c.Mrps, "Mrps:"+suffix)
	b.ReportMetric(c.GBps, "GB/s:"+suffix)
}

// BenchmarkFig1 regenerates Figure 1: KVS under DMA / 2-6 way DDIO /
// Ideal-DDIO across RX buffer provisioning.
func BenchmarkFig1(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig1(sc)
		t := &tables[0]
		reportCell(b, t, "1024 buf", "DMA", "dma")
		reportCell(b, t, "1024 buf", "DDIO 2 Ways", "ddio2")
		reportCell(b, t, "1024 buf", "Ideal DDIO", "ideal")
		dma, _ := t.Find("1024 buf", "DMA")
		ddio, _ := t.Find("1024 buf", "DDIO 2 Ways")
		if dma.Mrps > 0 {
			b.ReportMetric(ddio.Mrps/dma.Mrps, "x:ddio-over-dma")
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: the deep-queue L3 forwarder.
func BenchmarkFig2(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig2(sc)
		t := &tables[0]
		reportCell(b, t, "D=250", "DDIO 2 Ways", "d250-ddio2")
		reportCell(b, t, "D=250", "Ideal DDIO", "d250-ideal")
		c, _ := t.Find("D=450", "DDIO 2 Ways")
		b.ReportMetric(c.Breakdown[stats.CPURXRd], "acc/req:premature-d450")
		b.ReportMetric(c.Breakdown[stats.RXEvct], "acc/req:consumed-d450")
	}
}

// BenchmarkFig5 regenerates Figure 5: Sweeper across DDIO configurations.
func BenchmarkFig5(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig5(sc)
		t := &tables[0]
		reportCell(b, t, "1024B/1024 buf", "DDIO 2 Ways", "ddio2")
		reportCell(b, t, "1024B/1024 buf", "DDIO 2 Ways + Sweeper", "sweeper2")
		reportCell(b, t, "1024B/1024 buf", "Ideal DDIO", "ideal")
		base, _ := t.Find("1024B/2048 buf", "DDIO 2 Ways")
		sw, _ := t.Find("1024B/2048 buf", "DDIO 2 Ways + Sweeper")
		if base.Mrps > 0 {
			b.ReportMetric(sw.Mrps/base.Mrps, "x:sweeper-gain-2048buf")
		}
		b.ReportMetric(sw.Breakdown[stats.RXEvct], "acc/req:rxevct-sweeper")
	}
}

// BenchmarkFig6 regenerates Figure 6: DRAM latency CDFs at peak and
// iso-throughput.
func BenchmarkFig6(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(sc)
		for _, c := range r.Curves {
			if c.Context == "iso" {
				b.ReportMetric(c.Mean, "cyc:iso-mean-"+shortName(c.Config))
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: Sweeper under premature evictions.
func BenchmarkFig7(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig7(sc)
		t := &tables[0]
		base, _ := t.Find("D=250", "DDIO 2 Ways")
		sw, _ := t.Find("D=250", "DDIO 2 Ways + Sweeper")
		b.ReportMetric(base.Mrps, "Mrps:ddio2")
		b.ReportMetric(sw.Mrps, "Mrps:sweeper2")
		// With Sweeper, surviving RX evictions are premature ones and
		// must track the CPU's RX read misses (paper's Fig. 7b check).
		b.ReportMetric(sw.Breakdown[stats.RXEvct], "acc/req:rxevct")
		b.ReportMetric(sw.Breakdown[stats.CPURXRd], "acc/req:cpurxrd")
	}
}

// BenchmarkFig8 regenerates Figure 8: memory-bandwidth sensitivity.
func BenchmarkFig8(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig8(sc)
		t := &tables[0]
		for _, ch := range []string{"3ch", "4ch", "8ch"} {
			param := "1024B/2048 buf/" + ch
			base, _ := t.Find(param, "DDIO 2 Ways")
			sw, _ := t.Find(param, "DDIO 2 Ways + Sweeper")
			if base.Mrps > 0 {
				b.ReportMetric(sw.Mrps/base.Mrps, "x:sweeper-"+ch)
			}
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: the collocation Pareto study.
func BenchmarkFig9(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig9(sc)
		a := &tables[0]
		base, _ := a.Find("(4,8)", "DDIO 4 Ways")
		sw, _ := a.Find("(4,8)", "DDIO 4 Ways + Sweeper")
		if base.Mrps > 0 {
			b.ReportMetric(sw.Mrps/base.Mrps, "x:l3fwd-gain-(4,8)")
		}
		if ipc := base.Extra["xmem_ipc"]; ipc > 0 {
			b.ReportMetric(sw.Extra["xmem_ipc"]/ipc, "x:xmem-gain-(4,8)")
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: shallow vs deep buffering under
// service-time spikes.
func BenchmarkFig10(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tables := experiments.Fig10(sc)
		a := &tables[0]
		shallow, _ := a.Find("128 buf", "Baseline")
		deep, _ := a.Find("2048 buf", "Baseline")
		deepSw, _ := a.Find("2048 buf", "Sweeper")
		b.ReportMetric(shallow.Extra["dropfree_peak_mrps"], "Mrps:dropfree-128")
		b.ReportMetric(deep.Extra["dropfree_peak_mrps"], "Mrps:dropfree-2048")
		b.ReportMetric(deepSw.Extra["dropfree_peak_mrps"], "Mrps:dropfree-2048-sweeper")
	}
}

func shortName(config string) string {
	switch config {
	case "DDIO 2 Ways":
		return "ddio2"
	case "DDIO 2 Ways + Sweeper":
		return "sweeper2"
	case "DDIO 12 Ways":
		return "ddio12"
	case "DDIO 12 Ways + Sweeper":
		return "sweeper12"
	}
	return config
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// BenchmarkAblationTXSweep measures the §V-D NIC-driven TX sweeping that
// the paper describes but leaves out of its headline evaluation.
func BenchmarkAblationTXSweep(b *testing.B) {
	run := func(txSweep bool) machine.Results {
		cfg := sweeper.DefaultConfig()
		cfg.Workload = sweeper.WorkloadL3Fwd
		cfg.ItemBytes = 0
		cfg.RingSlots = 2048
		cfg.TXSlots = 2048
		cfg.ClosedLoopDepth = 64
		cfg.OfferedMrps = 0
		sweeper.EnableSweeper(&cfg)
		if txSweep {
			sweeper.EnableTXSweep(&cfg)
		}
		return sweeper.Run(cfg, 2_000_000, 800_000)
	}
	for i := 0; i < b.N; i++ {
		base := run(false)
		tx := run(true)
		b.ReportMetric(base.AccessesPerRequest[stats.TXEvct], "acc/req:txevct-rxonly")
		b.ReportMetric(tx.AccessesPerRequest[stats.TXEvct], "acc/req:txevct-txsweep")
		b.ReportMetric(tx.ThroughputMrps/base.ThroughputMrps, "x:txsweep-gain")
	}
}

// BenchmarkAblationMLP sweeps the cores' memory-level parallelism,
// quantifying how much of the throughput story depends on access overlap.
func BenchmarkAblationMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mlp := range []int{1, 4, 12} {
			cfg := sweeper.DefaultConfig()
			cfg.OfferedMrps = 6
			cfg.MLPWidth = mlp
			r := sweeper.Run(cfg, 1_200_000, 600_000)
			b.ReportMetric(r.AvgServiceCycles, "cyc:service-mlp"+itoa(mlp))
		}
	}
}

// BenchmarkAblationWriteQueue sweeps the memory controller's write queue
// depth: shallow queues force writes ahead of reads and re-couple the
// paper's writeback interference to read latency.
func BenchmarkAblationWriteQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, depth := range []uint64{8, 64, 256} {
			cfg := sweeper.DefaultConfig()
			cfg.OfferedMrps = 10
			cfg.Mem.WriteQueueDepth = depth
			r := sweeper.Run(cfg, 1_200_000, 600_000)
			b.ReportMetric(float64(r.DRAMLatP99), "cyc:dram-p99-wq"+itoa(int(depth)))
		}
	}
}

// BenchmarkAblationDDIOWays sweeps the DDIO way allocation at fixed load —
// the knob the paper shows is insufficient without Sweeper.
func BenchmarkAblationDDIOWays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ways := range []int{2, 6, 12} {
			cfg := sweeper.DefaultConfig()
			cfg.OfferedMrps = 10
			cfg.DDIOWays = ways
			r := sweeper.Run(cfg, 1_500_000, 800_000)
			b.ReportMetric(r.AccessesPerRequest[stats.RXEvct], "acc/req:rxevct-w"+itoa(ways))
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Microbenchmarks of the simulator's hot paths. ---

func BenchmarkCacheHierarchyReadHit(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultConfig(1), nullSink{})
	h.CPURead(0, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CPURead(uint64(i), 0, 4096)
	}
}

func BenchmarkCacheHierarchyMissChurn(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultConfig(1), nullSink{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CPURead(uint64(i), 0, uint64(i%1_000_000)*64)
	}
}

func BenchmarkLLCInsert(b *testing.B) {
	c := cache.NewSetAssoc("bench", 36<<20, 12)
	mask := cache.MaskAll(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i)*64, true, mask)
	}
}

func BenchmarkDRAMRead(b *testing.B) {
	m := mem.New(mem.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(uint64(i)*10, uint64(i%65536)*64)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := workload.NewZipf(2_400_000, 0.99, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(uint64(i))
	}
}

func BenchmarkKVSPlan(b *testing.B) {
	space := addrSpace()
	k := workload.NewKVS(workload.DefaultKVSConfig(1024))
	k.Layout(space)
	var plan workload.Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PlanRequest(uint64(i), 1024, &plan)
	}
}

// BenchmarkRunOnce is the end-to-end engine benchmark: one complete machine
// run (build, warmup, measure) on the default configuration. Run with
// -benchmem to watch total allocation; the event engine itself contributes
// zero steady-state allocs (see internal/sim benchmarks), so growth here
// points at the machine model, not the scheduler.
func BenchmarkRunOnce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sweeper.DefaultConfig()
		cfg.OfferedMrps = 10
		r := sweeper.Run(cfg, 200_000, 400_000)
		if r.Served == 0 {
			b.Fatal("no requests served")
		}
	}
}

// BenchmarkRunOncePooled is BenchmarkRunOnce served from a machine pool:
// after the first iteration every run recycles the same machine through
// Machine.Reset instead of rebuilding ~15MB of caches and tables. Compare
// its -benchmem numbers against BenchmarkRunOnce to see the construction
// churn the experiment harness no longer pays; steady-state allocations are
// near zero (one small rand reseed plus result assembly).
func BenchmarkRunOncePooled(b *testing.B) {
	b.ReportAllocs()
	pool := machine.NewPool(1)
	cfg := sweeper.DefaultConfig()
	cfg.OfferedMrps = 10
	pool.Put(machine.MustNew(cfg)) // warm: measure recycling, not the first build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pool.MustGet(cfg)
		r := m.Run(200_000, 400_000)
		pool.Put(m)
		if r.Served == 0 {
			b.Fatal("no requests served")
		}
	}
}

// BenchmarkClusterRunOnce is the rack-scale end-to-end benchmark: one
// complete 4-node cluster run (build, warmup, measure) — the sharded KVS
// behind the flow-hash balancer, remote reads crossing the fabric. Compare
// against BenchmarkRunOnce for the per-node overhead of the cluster layer;
// `make bench-cluster` records the node-count scaling sweep to
// BENCH_cluster.json.
func BenchmarkClusterRunOnce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		node := sweeper.DefaultConfig()
		node.OfferedMrps = 8
		cl := cluster.MustNew(cluster.Config{Node: node, Nodes: 4})
		r := cl.Run(200_000, 400_000)
		if r.Served == 0 {
			b.Fatal("cluster served nothing")
		}
		if r.RemoteReads == 0 {
			b.Fatal("cluster run never crossed the fabric")
		}
	}
}

// BenchmarkTieredRunOnce is the hybrid-memory end-to-end benchmark: one
// complete run with hot-page placement over a DRAM+tier-1 split and the SIMF
// bulk-invalidation instruction — the full ROADMAP item 4 datapath. Compare
// against BenchmarkRunOnce for the tier-routing overhead; with tiers off the
// datapath takes a nil-check-only fast path, so BenchmarkRunOnce itself must
// not move. `make bench-tiers` records the off/on comparison to
// BENCH_tiers.json.
func BenchmarkTieredRunOnce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sweeper.DefaultConfig()
		cfg.OfferedMrps = 10
		cfg.Sweeper.RXSweep = true
		cfg.Sweeper.Insn = "simf"
		cfg.MemTier = mem.DefaultTierConfig(mem.TierHotPage)
		cfg.MemTier.DRAMBytes = 16 << 20
		r := sweeper.Run(cfg, 200_000, 400_000)
		if r.Served == 0 {
			b.Fatal("no requests served")
		}
		if r.Tier1Accesses == 0 {
			b.Fatal("tiered run never touched tier 1")
		}
	}
}

// BenchmarkSimulatedCyclesPerSecond measures raw simulation speed on the
// default configuration: reported metric is simulated Mcycles per wall
// second.
func BenchmarkSimulatedCyclesPerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sweeper.DefaultConfig()
		cfg.OfferedMrps = 10
		start := nowNanos()
		sweeper.Run(cfg, 1_000_000, 2_000_000)
		elapsed := float64(nowNanos()-start) / 1e9
		b.ReportMetric(3.0/elapsed, "Msimcyc/s")
	}
}

// BenchmarkRunOnceParallel measures simulation speed across engine shard
// counts on a 24-core simulated machine (the DESIGN.md §11 scaling study;
// `make bench-parallel` records the same sweep to BENCH_parallel.json).
// Results are bit-identical across shard counts by construction, so the
// sub-benchmarks differ only in wall time; the reported metric is simulated
// Mcycles per wall second.
func BenchmarkRunOnceParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sweeper.DefaultConfig()
				cfg.OfferedMrps = 10
				cfg.Shards = shards
				start := nowNanos()
				r := sweeper.Run(cfg, 1_000_000, 2_000_000)
				elapsed := float64(nowNanos()-start) / 1e9
				b.ReportMetric(3.0/elapsed, "Msimcyc/s")
				if r.Served == 0 {
					b.Fatal("no requests served")
				}
			}
		})
	}
}

func addrSpace() *addr.Space { return addr.NewSpace(1, 64*1024, 64*1024) }

func nowNanos() int64 { return time.Now().UnixNano() }

type nullSink struct{}

func (nullSink) DemandRead(now uint64, a uint64, src cache.Requestor) uint64 { return now + 100 }
func (nullSink) WritebackEvict(now uint64, a uint64)                         {}
func (nullSink) DMAWrite(now uint64, a uint64)                               {}
