// Command experiments regenerates the paper's evaluation figures.
//
// Run everything at full fidelity (writes text tables to stdout and CSVs
// next to -out):
//
//	experiments -out results/
//
// Or a single figure, quickly:
//
//	experiments -fig fig5 -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sweeper/internal/experiments"
	"sweeper/internal/machine"
	"sweeper/internal/obs"
	"sweeper/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		figFlag    = flag.String("fig", "all", "experiment id (fig1, fig2, fig5..fig10, policies, alternatives, cluster, slo) or 'all'")
		quick      = flag.Bool("quick", false, "use the reduced-fidelity quick scale")
		outDir     = flag.String("out", "", "directory for CSV output (optional)")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = $SWEEPER_WORKERS, then GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "engine shards per run: 0/1 sequential, N>1 parallel wheels, -1 auto; the worker budget is divided by this")
		sampleMode = flag.String("sample-mode", "", "sampled simulation per run: fixed or ci (empty = full detailed; approximate, see DESIGN.md §12)")
		sampleCI   = flag.Bool("sample-until-ci", false, "shorthand for -sample-mode ci: adaptive interval count per run")
		manifest   = flag.String("manifest", "", "write an invocation manifest (scale + generated tables) as JSON to this file")
		metricsOut = flag.String("metrics", "", "write a metric time-series CSV from an instrumented reference run to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON from an instrumented reference run to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	sc := experiments.FullScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	sc.Parallelism = *parallel
	sc.Shards = *shards
	sc.Sampling.Mode = *sampleMode
	if *sampleCI {
		sc.Sampling.Mode = "ci"
	}

	registry := experiments.Registry()
	var ids []string
	switch *figFlag {
	case "all":
		ids = experiments.Names()
	case "claims":
		start := time.Now()
		claims := experiments.CheckClaims(sc)
		experiments.RenderClaims(os.Stdout, claims)
		fmt.Printf("(claims took %s)\n", time.Since(start).Round(time.Second))
		return
	default:
		for _, id := range strings.Split(*figFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := registry[id]; !ok {
				log.Fatalf("unknown experiment %q; known: %s",
					id, strings.Join(experiments.Names(), ", "))
			}
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	var allTables []experiments.Table
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("=== %s ===\n", id)
		var tables []experiments.Table
		if id == "fig6" {
			// Fig6 has CDF curves beyond the summary table.
			r := experiments.Fig6(sc)
			tables = []experiments.Table{r.Summary}
			experiments.RenderCDFChart(os.Stdout, r.Curves)
			if *outDir != "" {
				if err := writeCDFs(filepath.Join(*outDir, "fig6_cdf.csv"), r); err != nil {
					log.Fatal(err)
				}
			}
		} else {
			tables = registry[id](sc)
		}
		for i := range tables {
			t := &tables[i]
			t.RenderDefault(os.Stdout)
			fmt.Println()
			if *outDir != "" {
				f, err := os.Create(filepath.Join(*outDir, t.ID+".csv"))
				if err != nil {
					log.Fatal(err)
				}
				if err := t.WriteCSV(f); err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("(%s took %s)\n\n", id, time.Since(start).Round(time.Second))
		allTables = append(allTables, tables...)
	}

	if *metricsOut != "" || *traceOut != "" {
		if err := writeReferenceRun(sc, *metricsOut, *traceOut); err != nil {
			log.Fatal(err)
		}
	}
	if *manifest != "" {
		if err := writeInvocationManifest(*manifest, *figFlag, *quick, sc, allTables); err != nil {
			log.Fatal(err)
		}
	}
}

// writeReferenceRun simulates the default (Table I) configuration at the
// selected scale with metric sampling armed and exports the requested
// time-series artifacts, giving figure regeneration a companion record of
// what the simulated machine was doing.
func writeReferenceRun(sc experiments.Scale, metricsPath, tracePath string) error {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	m.EnableSampling(0)
	r := m.Run(sc.Warmup, sc.Measure)
	fmt.Printf("reference run: %s\n", r)
	if metricsPath != "" {
		if err := writeWith(metricsPath, func(f *os.File) error {
			return obs.WriteSeriesCSV(f, m.ObsSeries())
		}); err != nil {
			return err
		}
	}
	if tracePath != "" {
		meta := obs.TraceMeta{Process: "experiments reference " + cfg.Workload, FreqHz: cfg.FreqHz}
		if err := writeWith(tracePath, func(f *os.File) error {
			return obs.WriteChromeTrace(f, m.ObsSeries(), meta)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeInvocationManifest records the whole invocation: which experiments
// ran, at what scale, and every generated table as structured JSON.
func writeInvocationManifest(path, figs string, quick bool, sc experiments.Scale, tables []experiments.Table) error {
	man := struct {
		GeneratedAt string              `json:"generated_at"`
		Figures     string              `json:"figures"`
		Quick       bool                `json:"quick"`
		Scale       experiments.Scale   `json:"scale"`
		Tables      []experiments.Table `json:"tables"`
	}{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Figures:     figs,
		Quick:       quick,
		Scale:       sc,
		Tables:      tables,
	}
	return writeWith(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	})
}

func writeWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCDFs(path string, r experiments.Fig6Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteCDFCSV(f, r)
}
