// Command sweepersim runs a single simulated-server configuration and
// prints its measured results: throughput, memory bandwidth, the DRAM
// access breakdown, latency percentiles and Sweeper activity.
//
// Examples:
//
//	sweepersim -workload kvs -mode ddio -ways 2 -ring 1024 -packet 1024 \
//	           -rate 30 -sweeper
//	sweepersim -scenario examples/scenarios/fig1.json
//	sweepersim -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sweeper/internal/cluster"
	"sweeper/internal/core"
	"sweeper/internal/machine"
	"sweeper/internal/mem"
	"sweeper/internal/nic"
	"sweeper/internal/obs"
	"sweeper/internal/prof"
	"sweeper/internal/scenario"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweepersim: ")

	var (
		scenarioPath = flag.String("scenario", "", "run a declarative scenario spec file (overrides config flags)")
		listAll      = flag.Bool("list", false, "list builtin scenarios and registered workloads, then exit")
		workloadName = flag.String("workload", "kvs", "workload registry name (see -list)")
		modeName     = flag.String("mode", "ddio", "injection: dma, ddio, idio, ideal")
		ways         = flag.Int("ways", 2, "DDIO LLC ways")
		ring         = flag.Int("ring", 1024, "RX buffers per core")
		txSlots      = flag.Int("txslots", 0, "TX buffers per core (0 = workload default)")
		packet       = flag.Uint64("packet", 1024, "packet/item size in bytes")
		rate         = flag.Float64("rate", 20, "offered load in Mrps (open loop)")
		queued       = flag.Int("queued", 0, "closed loop: keep D packets queued per core (overrides -rate)")
		arrival      = flag.String("arrival", "", "open-loop arrival process: "+strings.Join(nic.ArrivalNames(), ", ")+" (empty = poisson)")
		arrivalTrace = flag.String("arrival-trace", "", "trace file for -arrival trace (binary SWPT or cycles,bytes,flow CSV)")
		burstRatio   = flag.Float64("arrival-burst-ratio", 0, "MMPP on/off rate ratio (0 = default 8)")
		burstDwell   = flag.Uint64("arrival-burst-dwell", 0, "MMPP mean state dwell in cycles (0 = default 131072)")
		diurnalPer   = flag.Uint64("arrival-diurnal-period", 0, "diurnal envelope period in cycles (0 = off)")
		diurnalAmp   = flag.Float64("arrival-diurnal-amp", 0, "diurnal envelope amplitude in [0,1)")
		flows        = flag.Int("flows", 0, "connection population: spread arrivals over N flows (0 = fresh flow per packet)")
		dynEpoch     = flag.Uint64("dynamic-ddio", 0, "IAT-style way controller epoch in cycles (0 = off)")
		cores        = flag.Int("cores", 24, "networked cores")
		xmem         = flag.Int("xmem", 0, "collocated X-Mem cores")
		channels     = flag.Int("channels", 4, "DDR4 channels")
		sweeperOn    = flag.Bool("sweeper", false, "enable Sweeper RX relinquish")
		sweepTX      = flag.Bool("sweep-tx", false, "enable NIC-driven TX sweeping (§V-D)")
		insn         = flag.String("invalidate-insn", "", "relinquish instruction: "+strings.Join(core.InsnNames(), ", ")+" (empty = clsweep)")
		simfBatch    = flag.Int("simf-batch", 0, "simf: lines invalidated per batch (0 = default 64)")
		simfSetup    = flag.Int("simf-setup", 0, "simf: fixed setup cycles per bulk flush")
		tierPolicy   = flag.String("mem-tier", "", "hybrid memory placement policy: "+strings.Join(mem.TierPolicies(), ", ")+" (empty = DRAM only)")
		tierSplit    = flag.Uint64("mem-tier-split", 0, "hybrid memory: app-heap bytes kept on DRAM (0 = whole heap on tier 1)")
		tierReadLat  = flag.Uint64("mem-tier-read-lat", 0, "hybrid memory: tier-1 read latency in cycles (0 = default 300)")
		tierWriteLat = flag.Uint64("mem-tier-write-lat", 0, "hybrid memory: tier-1 write latency in cycles (0 = default 1000)")
		tierBW       = flag.Float64("mem-tier-bw", 0, "hybrid memory: tier-1 bandwidth ceiling in GB/s (0 = default 16)")
		warmup       = flag.Uint64("warmup", 400_000, "warmup cycles")
		measure      = flag.Uint64("measure", 800_000, "measurement cycles")
		seed         = flag.Int64("seed", 1, "random seed")
		shards       = flag.Int("shards", 0, "engine shards: 0/1 sequential, N>1 parallel wheels, -1 auto (min(cores+1, GOMAXPROCS))")
		nodes        = flag.Int("nodes", 1, "cluster nodes: N>1 simulates a rack behind a load balancer")
		topology     = flag.String("topology", "", "cluster fabric topology (empty = star)")
		lbPolicy     = flag.String("lb", "", "cluster load-balancer policy: "+strings.Join(cluster.PolicyNames(), ", "))
		mlp          = flag.Int("mlp", 0, "memory-level parallelism width (0 = default)")
		nebula       = flag.Int("nebula", 0, "NeBuLa-style drop threshold (0 = off)")
		spikeProb    = flag.Float64("spike-prob", 0, "per-request service spike probability (§VI-F)")
		sanitize     = flag.Bool("sanitize", false, "flag use-after-relinquish reads")
		sampleMode   = flag.String("sample-mode", "", "sampled simulation: fixed or ci (empty = full detailed run)")
		sampleDet    = flag.Uint64("sample-detailed", 0, "sampled mode: detailed interval cycles (0 = default)")
		sampleFF     = flag.Uint64("sample-ff", 0, "sampled mode: fast-forward interval cycles (0 = default)")
		sampleN      = flag.Int("sample-intervals", 0, "sampled fixed mode: measured intervals (0 = default)")
		sampleUntil  = flag.Bool("sample-until-ci", false, "shorthand for -sample-mode ci: add intervals until the 95% CIs tighten")
		dramTrace    = flag.String("dram-trace", "", "write a DRAM transaction trace CSV to this file")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	var ob obsFlags
	flag.StringVar(&ob.trace, "trace", "", "write a Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
	flag.StringVar(&ob.metrics, "metrics", "", "write the sampled metric time-series CSV to this file")
	flag.StringVar(&ob.manifest, "manifest", "", "write a JSON run manifest (config, results, metrics) to this file")
	flag.Uint64Var(&ob.sample, "sample", 0, "metric sampling period in cycles (0 = ~256 samples per run)")
	flag.Parse()

	if *listAll {
		list(os.Stdout)
		return
	}

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	sampling := machine.SamplingConfig{
		Mode:              *sampleMode,
		DetailedCycles:    *sampleDet,
		FastForwardCycles: *sampleFF,
		Intervals:         *sampleN,
	}
	if *sampleUntil {
		sampling.Mode = "ci"
	}

	if *scenarioPath != "" {
		runScenario(*scenarioPath, *warmup, *measure, *shards, sampling, ob)
		return
	}

	cfg := machine.DefaultConfig()
	cfg.NetCores = *cores
	cfg.XMemCores = *xmem
	cfg.DDIOWays = *ways
	cfg.RingSlots = *ring
	cfg.PacketBytes = *packet
	cfg.ItemBytes = *packet
	cfg.OfferedMrps = *rate
	cfg.ClosedLoopDepth = *queued
	cfg.Arrival = nic.ArrivalConfig{
		Process:             *arrival,
		TracePath:           *arrivalTrace,
		BurstRatio:          *burstRatio,
		BurstDwellCycles:    *burstDwell,
		DiurnalPeriodCycles: *diurnalPer,
		DiurnalAmplitude:    *diurnalAmp,
		Flows:               *flows,
	}
	cfg.Mem.Channels = *channels
	cfg.Seed = *seed
	cfg.Shards = *shards
	if *txSlots > 0 {
		cfg.TXSlots = *txSlots
	}
	cfg.Sweeper = core.Config{RXSweep: *sweeperOn, IssueCyclesPerLine: 1}
	cfg.SweepTX = *sweepTX
	if *sweepTX {
		cfg.Sweeper.TXSweep = true
	}
	cfg.Sweeper.Insn = *insn
	cfg.Sweeper.SIMFBatchLines = *simfBatch
	cfg.Sweeper.SIMFSetupCycles = *simfSetup
	if *tierPolicy != "" {
		tc := mem.DefaultTierConfig(*tierPolicy)
		tc.DRAMBytes = *tierSplit
		if *tierReadLat > 0 {
			tc.ReadLatency = *tierReadLat
		}
		if *tierWriteLat > 0 {
			tc.WriteLatency = *tierWriteLat
		}
		if *tierBW > 0 {
			tc.BandwidthGBps = *tierBW
		}
		cfg.MemTier = tc
	}
	if *mlp > 0 {
		cfg.MLPWidth = *mlp
	}
	cfg.NeBuLaDropDepth = *nebula
	if *spikeProb > 0 {
		cfg.SpikeProb = *spikeProb
		cfg.SpikeMinCycles = 3_200   // 1us
		cfg.SpikeMaxCycles = 320_000 // 100us
	}
	cfg.Sweeper.DebugUseAfterRelinquish = *sanitize
	cfg.DynamicDDIOEpoch = *dynEpoch
	if sampling.Mode != "" {
		cfg.Sampling = sampling
	}

	// The registry validates the workload name inside machine.New; the
	// mode string parses through the scenario grammar.
	cfg.Workload = *workloadName
	mode, err := scenario.Variant{Mode: *modeName}.NICMode()
	if err != nil {
		log.Fatal(err)
	}
	cfg.NICMode = mode

	if *nodes > 1 {
		if *dramTrace != "" {
			log.Fatal("-dram-trace applies to single-machine runs only")
		}
		ccfg := cluster.Config{Node: cfg, Nodes: *nodes, Topology: *topology, LBPolicy: *lbPolicy}
		cl, err := cluster.New(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		r := cl.Run(*warmup, *measure)
		ob.exportCluster(cl, fmt.Sprintf("%s %s x%d", cfg.Workload, cfg.NICMode, *nodes), r, 0, 1)
		printClusterResults(cl.Config(), r)
		_ = os.Stdout.Sync()
		return
	}

	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *dramTrace != "" {
		f, err := os.Create(*dramTrace)
		if err != nil {
			log.Fatal(err)
		}
		sink, flush := machine.TraceCSV(f)
		m.SetTraceSink(sink)
		defer func() {
			if err := flush(); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	ob.arm(m)
	r := m.Run(*warmup, *measure)
	ob.export(m, cfg, fmt.Sprintf("%s %s", cfg.Workload, cfg.NICMode), r, 0, 1)
	printResults(cfg, r)
	if *sanitize {
		if v := m.Sweeper().Violations(); len(v) > 0 {
			fmt.Printf("sanitizer: %d use-after-relinquish reads detected\n", len(v))
		} else {
			fmt.Println("sanitizer: no use-after-relinquish reads")
		}
	}
	_ = os.Stdout.Sync()
}

// list prints the builtin scenarios and registered workloads.
func list(w *os.File) {
	fmt.Fprintln(w, "builtin scenarios (run a copy with -scenario <file>; shipped under examples/scenarios/):")
	for _, s := range scenario.Builtins() {
		runs, err := s.Expand()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "  %-12s %s (%d runs)\n", s.Name, s.Description, len(runs))
	}
	fmt.Fprintf(w, "registered workloads:          %s\n", strings.Join(workload.Names(), ", "))
	fmt.Fprintf(w, "registered background streams: %s\n", strings.Join(workload.StreamNames(), ", "))
	fmt.Fprintf(w, "registered arrival processes:  %s\n", strings.Join(nic.ArrivalNames(), ", "))
	fmt.Fprintf(w, "invalidation instructions:     %s\n", strings.Join(core.InsnNames(), ", "))
	fmt.Fprintf(w, "memory tier policies:          %s\n", strings.Join(mem.TierPolicies(), ", "))
}

// runScenario expands a spec file and simulates every run in order. A
// non-zero -shards flag overrides the spec's own shards knob: shard counts
// never change results (the parallel engine is bit-identical to sequential),
// so the host running the scenario gets the last word on engine parallelism.
// Likewise a -sample-mode flag overrides the spec's sampling knobs, turning
// any scenario into a sampled (approximate, CI-reporting) run.
func runScenario(path string, warmup, measure uint64, shards int, sampling machine.SamplingConfig, ob obsFlags) {
	spec, err := scenario.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s: %s (%d runs)\n", spec.Name, spec.Description, len(runs))
	for i, r := range runs {
		fmt.Printf("\n--- run %d/%d", i+1, len(runs))
		if r.Param != "" {
			fmt.Printf("  param %s", r.Param)
		}
		fmt.Printf("  variant %s ---\n", r.Variant.DisplayName())
		if shards != 0 {
			r.Config.Shards = shards
		}
		if sampling.Mode != "" {
			r.Config.Sampling = sampling
		}
		label := spec.Name + " " + r.Variant.DisplayName()
		if r.Param != "" {
			label += " " + r.Param
		}
		if r.Cluster != nil {
			if sampling.Mode != "" {
				log.Fatal("sampled simulation is not supported for cluster runs")
			}
			ccfg := *r.Cluster
			if shards != 0 {
				ccfg.Node.Shards = shards
			}
			cl, err := cluster.New(ccfg)
			if err != nil {
				log.Fatal(err)
			}
			res := cl.Run(warmup, measure)
			ob.exportCluster(cl, label, res, i, len(runs))
			printClusterResults(ccfg, res)
			continue
		}
		m, err := machine.New(r.Config)
		if err != nil {
			log.Fatal(err)
		}
		ob.arm(m)
		res := m.Run(warmup, measure)
		ob.export(m, r.Config, label, res, i, len(runs))
		printResults(r.Config, res)
	}
}

// obsFlags bundles the observability exporter options shared by the single-
// config and scenario modes.
type obsFlags struct {
	metrics  string
	trace    string
	manifest string
	sample   uint64
}

func (o obsFlags) active() bool {
	return o.metrics != "" || o.trace != "" || o.manifest != ""
}

// arm enables metric sampling on the machine when any exporter is requested,
// so the run records the time-series the exporters need.
func (o obsFlags) arm(m *machine.Machine) {
	if o.active() {
		m.EnableSampling(o.sample)
	}
}

// export writes the requested artifacts for a completed run. In multi-run
// scenarios each output path gains a ".runNN" suffix before its extension so
// runs do not clobber each other; single runs write the exact path given.
func (o obsFlags) export(m *machine.Machine, cfg machine.Config, label string, r machine.Results, runIdx, nRuns int) {
	if o.metrics != "" {
		writeArtifact(obsOutPath(o.metrics, runIdx, nRuns), func(f *os.File) error {
			return obs.WriteSeriesCSV(f, m.ObsSeries())
		})
	}
	if o.trace != "" {
		meta := obs.TraceMeta{Process: "sweepersim " + label, FreqHz: cfg.FreqHz}
		writeArtifact(obsOutPath(o.trace, runIdx, nRuns), func(f *os.File) error {
			return obs.WriteChromeTrace(f, m.ObsSeries(), meta)
		})
	}
	if o.manifest != "" {
		man := m.BuildManifest(label, r)
		man.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		writeArtifact(obsOutPath(o.manifest, runIdx, nRuns), func(f *os.File) error {
			return obs.WriteManifest(f, man)
		})
	}
}

// exportCluster writes the manifest for a completed rack run. The metric
// and trace time-series exporters are single-machine instruments, so they
// reject cluster runs rather than silently recording one node's view.
func (o obsFlags) exportCluster(cl *cluster.Cluster, label string, r cluster.Results, runIdx, nRuns int) {
	if o.metrics != "" || o.trace != "" {
		log.Fatal("-metrics and -trace are single-machine exporters; cluster runs support -manifest")
	}
	if o.manifest == "" {
		return
	}
	man := cl.BuildManifest(label, r)
	man.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	writeArtifact(obsOutPath(o.manifest, runIdx, nRuns), func(f *os.File) error {
		return obs.WriteManifest(f, man)
	})
}

// obsOutPath inserts a ".runNN" tag before the extension for multi-run
// scenarios: out.json -> out.run03.json.
func obsOutPath(path string, runIdx, nRuns int) string {
	if nRuns <= 1 {
		return path
	}
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.run%02d%s", strings.TrimSuffix(path, ext), runIdx+1, ext)
}

// writeArtifact creates path and runs the writer against it, failing the
// process on any error so a truncated artifact never passes silently.
func writeArtifact(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// printClusterResults prints the rack-wide aggregates, the fabric's
// traffic, then one summary line per node.
func printClusterResults(cfg cluster.Config, r cluster.Results) {
	topo := cfg.Topology
	if topo == "" {
		topo = "star"
	}
	pol := cfg.LBPolicy
	if pol == "" {
		pol = cluster.DefaultPolicy
	}
	fmt.Printf("cluster: %d nodes, %s fabric, %s balancer, %s %s per node\n",
		cfg.Nodes, topo, pol, cfg.Node.Workload, cfg.Node.NICMode)
	fmt.Printf("throughput:      %8.2f Mrps (%d requests served)\n", r.ThroughputMrps, r.Served)
	fmt.Printf("memory bw:       %8.2f GB/s across the rack\n", r.MemBWGBps)
	fmt.Printf("worst p99:       %8d cycles\n", r.ReqLatP99Max)
	if r.Offered > 0 {
		fmt.Printf("drops:           %d / %d offered (%.4f%%)\n", r.Dropped, r.Offered, 100*r.DropRate)
	}
	fmt.Printf("remote memory:   %d reads over the fabric\n", r.RemoteReads)
	fmt.Printf("fabric:          %d messages, %d bytes, %d drops, %d retries\n",
		r.Fabric.Messages, r.Fabric.Bytes, r.Fabric.Drops, r.Fabric.Retries)
	for i, nr := range r.Nodes {
		fmt.Printf("  node %d: %7.2f Mrps, %6.2f GB/s, p99 %d cycles, %d/%d dropped\n",
			i, nr.ThroughputMrps, nr.MemBWGBps, nr.ReqLatP99, nr.Dropped, nr.Offered)
	}
}

func printResults(cfg machine.Config, r machine.Results) {
	fmt.Printf("config: %s %s", cfg.Workload, cfg.NICMode)
	if cfg.NICMode == nic.ModeDDIO {
		fmt.Printf(" %d-way", cfg.DDIOWays)
	}
	if cfg.Sweeper.RXSweep {
		fmt.Printf(" +Sweeper")
	}
	fmt.Printf(", %d cores, %d RX buffers/core, %dB packets, %d channels\n",
		cfg.NetCores, cfg.RingSlots, cfg.PacketBytes, cfg.Mem.Channels)

	fmt.Printf("throughput:      %8.2f Mrps (%d requests served)\n", r.ThroughputMrps, r.Served)
	fmt.Printf("memory bw:       %8.2f GB/s (%.0f%% of peak)\n", r.MemBWGBps, 100*r.MemBWUtilization)
	fmt.Printf("dram latency:    mean %.0f  p50 %d  p99 %d cycles\n",
		r.DRAMLatMean, r.DRAMLatP50, r.DRAMLatP99)
	fmt.Printf("request latency: mean %.0f  p99 %d cycles (service %.0f)\n",
		r.ReqLatMean, r.ReqLatP99, r.AvgServiceCycles)
	if r.Offered > 0 {
		fmt.Printf("drops:           %d / %d offered (%.4f%%)\n",
			r.Dropped, r.Offered, 100*r.DropRate)
	}
	if r.XMemAccesses > 0 {
		fmt.Printf("xmem:            IPC proxy %.3f\n", r.XMemIPC)
	}
	fmt.Printf("llc miss ratio:  %.3f\n", r.LLCMissRatio)

	fmt.Println("memory accesses per request:")
	for k := stats.AccessKind(0); k < stats.NumKinds; k++ {
		if r.AccessesPerRequest[k] == 0 {
			continue
		}
		fmt.Printf("  %-14s %7.3f\n", k, r.AccessesPerRequest[k])
	}
	if r.Sweeper.SweptLines > 0 {
		fmt.Printf("sweeper: %d relinquishes, %d lines swept, %d dirty dropped, %d written back (%.2f GB/s saved)\n",
			r.Sweeper.Relinquishes, r.Sweeper.SweptLines,
			r.Sweeper.DroppedDirtyLines, r.Sweeper.WrittenBackLines, r.SweeperSavedGBps)
	}
	if r.Tier1Accesses > 0 {
		fmt.Printf("tier1:           %d accesses, %.2f GB/s\n", r.Tier1Accesses, r.Tier1BWGBps)
	}
	if s := r.Sampled; s != nil {
		detect := "budget expired"
		if s.WarmupDetected {
			detect = "detected"
		}
		fmt.Printf("sampled (%s): %d intervals x %d cycles detailed, warm-up %s at %d, %d of %d cycles measured\n",
			s.Mode, s.Intervals, s.DetailedCycles, detect, s.WarmupEndCycle,
			s.MeasuredCycles, s.SimulatedCycles)
		fmt.Printf("  throughput: %8.2f ± %.2f Mrps   amat: %6.2f ± %.2f cycles (95%% CI)\n",
			s.Throughput.Mean, s.Throughput.HalfWidth, s.AMAT.Mean, s.AMAT.HalfWidth)
		fmt.Printf("  mem bw:     %8.2f ± %.2f GB/s   req latency mean: %.0f ± %.0f cycles\n",
			s.MemBW.Mean, s.MemBW.HalfWidth, s.ReqLatMean.Mean, s.ReqLatMean.HalfWidth)
	}
}
