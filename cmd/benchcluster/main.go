// Command benchcluster records the cluster layer's node-count scaling
// curve: it runs the sharded Table I KVS rack at several node counts,
// measures simulated cycles per wall second for each, and writes the sweep
// as JSON.
//
//	benchcluster -out BENCH_cluster.json
//
// Nodes share one event engine, so rack wall time grows with total core
// count; the record shows what a rack costs relative to a single machine
// and how much of it the fabric and remote-memory path add. Each point is
// also run twice and cross-checked for bit-identical Results — a scaling
// record of a nondeterministic simulation would be worthless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"time"

	"sweeper/internal/cluster"
	"sweeper/internal/machine"
)

// point is one measured node count.
type point struct {
	Nodes         int     `json:"nodes"`
	SimCores      int     `json:"simulated_cores"`
	WallSec       float64 `json:"wall_seconds"`
	SimcycPS      float64 `json:"simcyc_per_sec"`
	SlowdownX     float64 `json:"slowdown_vs_one_node"`
	Served        uint64  `json:"served"`
	RemoteReads   uint64  `json:"remote_reads"`
	FabricMsgs    uint64  `json:"fabric_messages"`
	Deterministic bool    `json:"rerun_identical"`
}

type report struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Warmup      uint64  `json:"warmup_cycles"`
	Measure     uint64  `json:"measure_cycles"`
	Reps        int     `json:"reps_per_point"`
	Points      []point `json:"points"`
	Note        string  `json:"note"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcluster: ")

	var (
		out     = flag.String("out", "BENCH_cluster.json", "output JSON path")
		warmup  = flag.Uint64("warmup", 500_000, "warmup cycles per run")
		measure = flag.Uint64("measure", 1_000_000, "measurement cycles per run")
		reps    = flag.Int("reps", 3, "timed repetitions per node count (best is kept)")
		shards  = flag.Int("shards", 0, "engine shards per run: 0/1 sequential, N>1 parallel, -1 auto")
	)
	flag.Parse()

	node := machine.DefaultConfig()
	node.OfferedMrps = 8
	node.Shards = *shards

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Warmup:      *warmup,
		Measure:     *measure,
		Reps:        *reps,
		Note: "All nodes share one event engine, so wall time scales with total " +
			"simulated cores; the per-node offered load is fixed, so served " +
			"requests scale with the rack. Reruns are bit-identical by " +
			"construction. See DESIGN.md §13.",
	}

	total := float64(*warmup + *measure)
	var baseRate float64
	for _, nodes := range []int{1, 2, 4, 8} {
		cfg := cluster.Config{Node: node, Nodes: nodes}
		run := func() (cluster.Results, float64) {
			cl, err := cluster.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			r := cl.Run(*warmup, *measure)
			return r, time.Since(start).Seconds()
		}
		var best float64
		var r cluster.Results
		for i := 0; i < *reps; i++ {
			res, sec := run()
			if best == 0 || sec < best {
				best = sec
			}
			r = res
		}
		recheck, _ := run()
		p := point{
			Nodes:         nodes,
			SimCores:      nodes * (node.NetCores + node.XMemCores),
			WallSec:       best,
			SimcycPS:      total / best,
			Served:        r.Served,
			RemoteReads:   r.RemoteReads,
			FabricMsgs:    r.Fabric.Messages,
			Deterministic: reflect.DeepEqual(recheck, r),
		}
		if !p.Deterministic {
			log.Fatalf("nodes=%d rerun diverged", nodes)
		}
		if nodes == 1 {
			baseRate = p.SimcycPS
		}
		p.SlowdownX = baseRate / p.SimcycPS
		rep.Points = append(rep.Points, p)
		fmt.Printf("nodes=%d (%d cores): %.2f Msimcyc/s, %.2fx one-node cost, %d served, %d remote reads\n",
			nodes, p.SimCores, p.SimcycPS/1e6, p.SlowdownX, p.Served, p.RemoteReads)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
