// Command tracegen synthesizes packet-arrival traces for the "trace"
// arrival process: pcap-shaped synthetic traffic with an IMIX-style size
// mix, a fixed flow population and optionally bursty (2-state MMPP)
// timing. Replay rescales timestamps to the configured offered load, so
// the -mean-gap knob only shapes relative burst structure.
//
// Examples:
//
//	tracegen -packets 100000 -out trace.bin
//	tracegen -packets 50000 -burst-ratio 8 -format csv -out trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"sweeper/internal/nic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		out        = flag.String("out", "", "output trace file (required)")
		format     = flag.String("format", "bin", "trace format: bin (SWPT binary) or csv")
		packets    = flag.Int("packets", 100_000, "number of arrivals to synthesize")
		meanGap    = flag.Float64("mean-gap", 240, "mean inter-arrival gap in native cycles")
		flows      = flag.Int("flows", 1024, "flow population size")
		burstRatio = flag.Float64("burst-ratio", 1, "MMPP on/off rate ratio (1 = plain Poisson timing)")
		burstDwell = flag.Float64("burst-dwell", 131_072, "MMPP mean state dwell in native cycles")
		size       = flag.Int("size", 0, "fixed packet size in bytes (0 = IMIX-style 64/576/1500 mix)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *out == "":
		log.Fatal("-out is required")
	case *packets <= 0:
		log.Fatal("-packets must be positive")
	case *meanGap <= 0:
		log.Fatal("-mean-gap must be positive")
	case *flows <= 0:
		log.Fatal("-flows must be positive")
	case *burstRatio < 1:
		log.Fatal("-burst-ratio must be ≥ 1")
	case *size < 0:
		log.Fatal("-size must be non-negative")
	}

	recs := synthesize(*packets, *meanGap, *flows, *burstRatio, *burstDwell, *size, *seed)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "bin":
		err = nic.WriteTraceBinary(f, recs)
	case "csv":
		err = nic.WriteTraceCSV(f, recs)
	default:
		log.Fatalf("unknown format %q (want bin or csv)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	span := recs[len(recs)-1].Cycles
	fmt.Printf("wrote %d arrivals over %d native cycles (%d flows) to %s\n",
		len(recs), span, *flows, *out)
}

// synthesize draws the arrival sequence: exponential gaps, modulated by a
// 2-state MMPP when ratio > 1 (the same λ_off = 2λ̄/(1+R) pinning the
// replay generator uses), sizes from the IMIX-style mix unless fixed, and
// uniformly random flow ids from the population.
func synthesize(n int, meanGap float64, flows int, ratio, dwell float64, fixedSize int, seed int64) []nic.TraceRecord {
	rng := rand.New(rand.NewSource(seed))
	gapOff := meanGap * (1 + ratio) / 2
	gapOn := gapOff / ratio
	state := 0
	left := rng.ExpFloat64() * dwell

	recs := make([]nic.TraceRecord, n)
	var now float64
	for i := range recs {
		gap := gapOff
		if ratio > 1 {
			for {
				g := rng.ExpFloat64() * map[int]float64{0: gapOff, 1: gapOn}[state]
				if g <= left {
					left -= g
					gap = g
					break
				}
				now += left
				state = 1 - state
				left = rng.ExpFloat64() * dwell
			}
		} else {
			gap = rng.ExpFloat64() * meanGap
		}
		now += gap
		recs[i] = nic.TraceRecord{
			Cycles: uint64(now),
			Bytes:  pickSize(rng, fixedSize),
			Flow:   uint32(rng.Intn(flows)),
		}
	}
	return recs
}

// pickSize draws a packet size: the classic IMIX 7:4:1 mix of small ACK-
// sized, medium and MTU packets, unless a fixed size was requested.
func pickSize(rng *rand.Rand, fixed int) uint32 {
	if fixed > 0 {
		return uint32(fixed)
	}
	switch r := rng.Intn(12); {
	case r < 7:
		return 64
	case r < 11:
		return 576
	default:
		return 1500
	}
}
