// Command benchtiers records the hybrid-memory datapath's cost: it runs the
// default machine with tiering off and on, across the cheap (clsweep) and
// bulk (simf) invalidation instructions, measures simulated cycles per wall
// second for each, and writes the comparison as JSON.
//
//	benchtiers -out BENCH_tiers.json
//
// The tiers-off points are the fast-path guard: when Config.MemTier is
// disabled the datapath routes every access through a nil-check-only branch,
// so their cost must match the pre-tier engine (BenchmarkRunOnce) within
// noise. The tiers-on points price the hot-page ledger and the tier-1 device
// model. Each point is also run twice and cross-checked for bit-identical
// Results — a cost record of a nondeterministic simulation would be
// worthless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"time"

	"sweeper/internal/core"
	"sweeper/internal/machine"
	"sweeper/internal/mem"
)

// point is one measured (memory, instruction) pair.
type point struct {
	Memory        string  `json:"memory"`
	Insn          string  `json:"insn"`
	WallSec       float64 `json:"wall_seconds"`
	SimcycPS      float64 `json:"simcyc_per_sec"`
	SlowdownX     float64 `json:"slowdown_vs_dram_clsweep"`
	Served        uint64  `json:"served"`
	Tier1Accesses uint64  `json:"tier1_accesses"`
	SweptLines    uint64  `json:"swept_lines"`
	WrittenBack   uint64  `json:"written_back_lines"`
	Deterministic bool    `json:"rerun_identical"`
}

type report struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Warmup      uint64  `json:"warmup_cycles"`
	Measure     uint64  `json:"measure_cycles"`
	Reps        int     `json:"reps_per_point"`
	Points      []point `json:"points"`
	Note        string  `json:"note"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtiers: ")

	var (
		out     = flag.String("out", "BENCH_tiers.json", "output JSON path")
		warmup  = flag.Uint64("warmup", 500_000, "warmup cycles per run")
		measure = flag.Uint64("measure", 1_000_000, "measurement cycles per run")
		reps    = flag.Int("reps", 3, "timed repetitions per point (best is kept)")
		split   = flag.Uint64("split", 16<<20, "DRAM bytes before the tier-1 boundary (hybrid points)")
	)
	flag.Parse()

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Warmup:      *warmup,
		Measure:     *measure,
		Reps:        *reps,
		Note: "dram points keep Config.MemTier disabled and must match the " +
			"pre-tier engine's cost (BenchmarkRunOnce) within noise — the " +
			"tier datapath is a nil check when off. hybrid points add the " +
			"hot-page ledger and the tier-1 device model. Reruns are " +
			"bit-identical by construction. See DESIGN.md §15.",
	}

	hybrid := mem.DefaultTierConfig(mem.TierHotPage)
	hybrid.DRAMBytes = *split

	total := float64(*warmup + *measure)
	var baseRate float64
	for _, memName := range []string{"dram", "hybrid"} {
		for _, insn := range []string{core.InsnCLSweep, core.InsnSIMF} {
			cfg := machine.DefaultConfig()
			cfg.OfferedMrps = 10
			cfg.Sweeper.RXSweep = true
			cfg.Sweeper.Insn = insn
			if memName == "hybrid" {
				cfg.MemTier = hybrid
			}
			run := func() (machine.Results, float64) {
				m, err := machine.New(cfg)
				if err != nil {
					log.Fatal(err)
				}
				start := time.Now()
				r := m.Run(*warmup, *measure)
				return r, time.Since(start).Seconds()
			}
			var best float64
			var r machine.Results
			for i := 0; i < *reps; i++ {
				res, sec := run()
				if best == 0 || sec < best {
					best = sec
				}
				r = res
			}
			recheck, _ := run()
			p := point{
				Memory:        memName,
				Insn:          insn,
				WallSec:       best,
				SimcycPS:      total / best,
				Served:        r.Served,
				Tier1Accesses: r.Tier1Accesses,
				SweptLines:    r.Sweeper.SweptLines,
				WrittenBack:   r.Sweeper.WrittenBackLines,
				Deterministic: reflect.DeepEqual(recheck, r),
			}
			if !p.Deterministic {
				log.Fatalf("%s/%s rerun diverged", memName, insn)
			}
			if memName == "hybrid" && p.Tier1Accesses == 0 {
				log.Fatalf("%s/%s never touched tier 1", memName, insn)
			}
			if baseRate == 0 {
				baseRate = p.SimcycPS
			}
			p.SlowdownX = baseRate / p.SimcycPS
			rep.Points = append(rep.Points, p)
			fmt.Printf("%s/%s: %.2f Msimcyc/s, %.2fx dram/clsweep cost, %d served, %d tier-1 accesses\n",
				memName, insn, p.SimcycPS/1e6, p.SlowdownX, p.Served, p.Tier1Accesses)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
