// Command benchparallel records the parallel engine's shard-scaling curve:
// it runs one fixed configuration (the Table I 24-core machine at moderate
// load) at several engine shard counts, measures simulated cycles per wall
// second for each, and writes the sweep as JSON.
//
//	benchparallel -out BENCH_parallel.json
//
// Because the sharded engine dispatches bit-identically to the sequential
// one, the command also cross-checks that every shard count produced the
// same request count — a scaling record that silently measured a divergent
// simulation would be worthless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"time"

	"sweeper/internal/machine"
)

// point is one measured shard count.
type point struct {
	Shards    int     `json:"shards"`
	Resolved  int     `json:"resolved_shards"`
	WallSec   float64 `json:"wall_seconds"`
	SimcycPS  float64 `json:"simcyc_per_sec"`
	SpeedupX  float64 `json:"speedup_vs_shards1"`
	Served    uint64  `json:"served"`
	Identical bool    `json:"results_identical_to_shards1"`
}

type report struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	SimCores    int     `json:"simulated_cores"`
	Warmup      uint64  `json:"warmup_cycles"`
	Measure     uint64  `json:"measure_cycles"`
	Reps        int     `json:"reps_per_point"`
	Points      []point `json:"points"`
	Note        string  `json:"note"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchparallel: ")

	var (
		out     = flag.String("out", "BENCH_parallel.json", "output JSON path")
		warmup  = flag.Uint64("warmup", 1_000_000, "warmup cycles per run")
		measure = flag.Uint64("measure", 2_000_000, "measurement cycles per run")
		reps    = flag.Int("reps", 3, "timed repetitions per shard count (best is kept)")
	)
	flag.Parse()

	base := machine.DefaultConfig()
	base.OfferedMrps = 10

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		SimCores:    base.NetCores + base.XMemCores,
		Warmup:      *warmup,
		Measure:     *measure,
		Reps:        *reps,
		Note: "Dispatch is serialized through the canonical (at,seq) merge " +
			"(the machine's memory system is synchronous shared state); shards " +
			"parallelize only queue maintenance, so scaling is modest by design. " +
			"See DESIGN.md §11.",
	}

	var baseline machine.Results
	var baselineRate float64
	total := float64(*warmup + *measure)
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		var best float64
		var r machine.Results
		var resolved int
		for i := 0; i < *reps; i++ {
			m := machine.MustNew(cfg)
			resolved = m.Engine().NumShards()
			start := time.Now()
			r = m.Run(*warmup, *measure)
			if sec := time.Since(start).Seconds(); best == 0 || sec < best {
				best = sec
			}
		}
		p := point{
			Shards:   shards,
			Resolved: resolved,
			WallSec:  best,
			SimcycPS: total / best,
			Served:   r.Served,
		}
		if shards == 1 {
			baseline, baselineRate = r, p.SimcycPS
		}
		p.SpeedupX = p.SimcycPS / baselineRate
		p.Identical = reflect.DeepEqual(r, baseline)
		if !p.Identical {
			log.Fatalf("shards=%d diverged from shards=1: %+v vs %+v", shards, r, baseline)
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("shards=%d (resolved %d): %.2f Msimcyc/s, %.2fx, %.2fs wall\n",
			shards, resolved, p.SimcycPS/1e6, p.SpeedupX, best)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
