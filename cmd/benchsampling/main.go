// Command benchsampling records what the sampled-simulation mode buys and
// what it costs: for each base scenario it times a full detailed run at the
// committed-results scale, then sampled runs in both modes, and writes the
// speedups and per-metric relative errors as JSON.
//
//	benchsampling -out BENCH_sampling.json
//
// Wall times cover Run only — machine construction (zipf tables, warm-state
// install) is shared by both modes and excluded, exactly as a harness that
// pools machines would experience it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"sweeper/internal/machine"
	"sweeper/internal/scenario"
)

// metric compares one sampled estimate against the full run's value.
type metric struct {
	Full     float64 `json:"full"`
	Sampled  float64 `json:"sampled"`
	RelErr   float64 `json:"rel_err"`
	CI95     float64 `json:"ci95_half_width"`
	WithinCI bool    `json:"within_ci"`
}

func compare(full, sampled, half float64) metric {
	return metric{
		Full:     full,
		Sampled:  sampled,
		RelErr:   (sampled - full) / full,
		CI95:     half,
		WithinCI: math.Abs(sampled-full) <= half,
	}
}

// modeResult is one sampled run against the scenario's full-run reference.
type modeResult struct {
	Mode            string  `json:"mode"`
	WallSec         float64 `json:"wall_seconds"`
	SpeedupX        float64 `json:"speedup_vs_full"`
	Intervals       int     `json:"intervals"`
	WarmupDetected  bool    `json:"warmup_detected"`
	WarmupEndCycle  uint64  `json:"warmup_end_cycle"`
	SimulatedCycles uint64  `json:"simulated_cycles"`
	Throughput      metric  `json:"throughput_mrps"`
	AMAT            metric  `json:"amat_cycles"`
	MemBW           metric  `json:"mem_bw_gbps"`
}

type scenarioResult struct {
	Scenario    string       `json:"scenario"`
	FullWallSec float64      `json:"full_wall_seconds"`
	Modes       []modeResult `json:"modes"`
}

type report struct {
	GeneratedAt     string           `json:"generated_at"`
	GoMaxProcs      int              `json:"gomaxprocs"`
	NumCPU          int              `json:"num_cpu"`
	Warmup          uint64           `json:"warmup_cycles"`
	Measure         uint64           `json:"measure_cycles"`
	Seed            int64            `json:"seed"`
	Reps            int              `json:"reps_per_point"`
	Scenarios       []scenarioResult `json:"scenarios"`
	GeomeanSpeedupX float64          `json:"geomean_fixed_speedup"`
	Note            string           `json:"note"`
}

// timedRun builds a machine per rep and times Run only, keeping the best.
func timedRun(cfg machine.Config, warmup, measure uint64, reps int) (machine.Results, float64) {
	var best float64
	var r machine.Results
	for i := 0; i < reps; i++ {
		m := machine.MustNew(cfg)
		start := time.Now()
		r = m.Run(warmup, measure)
		if sec := time.Since(start).Seconds(); best == 0 || sec < best {
			best = sec
		}
	}
	return r, best
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsampling: ")

	var (
		out     = flag.String("out", "BENCH_sampling.json", "output JSON path")
		warmup  = flag.Uint64("warmup", 12_000_000, "full-run warmup cycles (sampled runs treat this as a budget)")
		measure = flag.Uint64("measure", 3_000_000, "full-run measurement cycles")
		seed    = flag.Int64("seed", 12345, "simulation seed")
		reps    = flag.Int("reps", 3, "timed repetitions per point (best is kept)")
	)
	flag.Parse()

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Warmup:      *warmup,
		Measure:     *measure,
		Seed:        *seed,
		Reps:        *reps,
		Note: "Fast-forward wall cost per cycle is close to detailed (cache " +
			"walks dominate both), so speedup comes from simulating fewer " +
			"cycles: content-aware warm-state install plus warm-up detection. " +
			"Collocation is capped by its near-saturated queues, which " +
			"equilibrate over millions of cycles regardless of cache state. " +
			"See DESIGN.md §12.",
	}

	logSpeedup, nFixed := 0.0, 0
	for _, name := range []string{"kvs", "l3fwd", "collocation"} {
		cfg := scenario.MustConfig(name, nil)
		cfg.Seed = *seed

		full, fullWall := timedRun(cfg, *warmup, *measure, *reps)
		sr := scenarioResult{Scenario: name, FullWallSec: fullWall}
		fmt.Printf("%s: full %.2fs (amat %.2f, %.2f Mrps)\n",
			name, fullWall, full.AMATCycles, full.ThroughputMrps)

		for _, mode := range []string{"fixed", "ci"} {
			scfg := cfg
			scfg.Sampling.Mode = mode
			r, wall := timedRun(scfg, *warmup, *measure, *reps)
			s := r.Sampled
			mr := modeResult{
				Mode:            mode,
				WallSec:         wall,
				SpeedupX:        fullWall / wall,
				Intervals:       s.Intervals,
				WarmupDetected:  s.WarmupDetected,
				WarmupEndCycle:  s.WarmupEndCycle,
				SimulatedCycles: s.SimulatedCycles,
				Throughput:      compare(full.ThroughputMrps, s.Throughput.Mean, s.Throughput.HalfWidth),
				AMAT:            compare(full.AMATCycles, s.AMAT.Mean, s.AMAT.HalfWidth),
				MemBW:           compare(full.MemBWGBps, s.MemBW.Mean, s.MemBW.HalfWidth),
			}
			sr.Modes = append(sr.Modes, mr)
			if mode == "fixed" {
				logSpeedup += math.Log(mr.SpeedupX)
				nFixed++
			}
			fmt.Printf("  %-5s %.2fs  %5.1fx  amat %+.1f%%  tput %+.1f%%  (n=%d, warm-up %dK)\n",
				mode, wall, mr.SpeedupX, 100*mr.AMAT.RelErr, 100*mr.Throughput.RelErr,
				s.Intervals, s.WarmupEndCycle/1000)
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	rep.GeomeanSpeedupX = math.Exp(logSpeedup / float64(nFixed))
	fmt.Printf("geomean fixed-mode speedup: %.1fx\n", rep.GeomeanSpeedupX)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
