package sweeper_test

import (
	"bytes"
	"strings"
	"testing"

	"sweeper"
)

func TestFacadeRun(t *testing.T) {
	cfg := sweeper.DefaultConfig()
	cfg.OfferedMrps = 6
	r := sweeper.Run(cfg, 500_000, 400_000)
	if r.Served == 0 || r.ThroughputMrps <= 0 {
		t.Fatalf("facade run produced no work: %+v", r.Served)
	}
}

func TestFacadeEnableSweeper(t *testing.T) {
	cfg := sweeper.DefaultConfig()
	sweeper.EnableSweeper(&cfg)
	if !cfg.Sweeper.RXSweep {
		t.Fatal("EnableSweeper")
	}
	sweeper.EnableTXSweep(&cfg)
	if !cfg.Sweeper.TXSweep || !cfg.SweepTX {
		t.Fatal("EnableTXSweep")
	}
}

func TestFacadeNewValidates(t *testing.T) {
	cfg := sweeper.DefaultConfig()
	cfg.NetCores = 0
	if _, err := sweeper.New(cfg); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}

func TestFacadeModesAndWorkloads(t *testing.T) {
	cfg := sweeper.DefaultConfig()
	cfg.NICMode = sweeper.ModeIdeal
	cfg.Workload = sweeper.WorkloadKVS
	if _, err := sweeper.New(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.NICMode = sweeper.ModeDMA
	cfg.Workload = sweeper.WorkloadL3Fwd
	cfg.ItemBytes = 0
	if _, err := sweeper.New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	names := sweeper.ExperimentNames()
	if len(names) != 13 {
		t.Fatalf("experiments = %v", names)
	}
	reg := sweeper.Experiments()
	for _, n := range names {
		if reg[n] == nil {
			t.Fatalf("missing %s", n)
		}
	}
}

func TestFacadeRenderTables(t *testing.T) {
	tbl := sweeper.Table{ID: "x", Title: "t", Metric: "mrps",
		Cells: []sweeper.Cell{{Param: "p", Config: "c", Mrps: 1}}}
	var buf bytes.Buffer
	sweeper.RenderTables(&buf, []sweeper.Table{tbl})
	if !strings.Contains(buf.String(), "1.00") {
		t.Fatal("render")
	}
}

func TestFacadeScales(t *testing.T) {
	if sweeper.FullScale().Measure <= sweeper.QuickScale().Measure {
		t.Fatal("scales")
	}
}
