package scenario

import (
	"strings"
	"testing"

	"sweeper/internal/addr"
	"sweeper/internal/machine"
	"sweeper/internal/workload"
)

// toyDriver is a minimal networked application: it reads one line of a
// private table per request. It exists to prove the acceptance criterion
// that a new workload plugs in through the registry plus a scenario spec,
// with no changes to the machine or the experiment harness.
type toyDriver struct {
	base  uint64
	lines uint64
	reqs  uint64
}

func (d *toyDriver) Name() string { return "toy" }

func (d *toyDriver) Layout(space *addr.Space) {
	d.base = space.AllocApp(d.lines * 64)
}

func (d *toyDriver) PlanRequest(tag uint64, pktBytes uint64, plan *workload.Plan) {
	d.reqs++
	plan.Ops = append(plan.Ops, workload.Op{Addr: d.base + (tag%d.lines)*64})
	plan.ComputeCycles = 100
	plan.RespBytes = 64
}

func (d *toyDriver) ExtraServiceCycles(tag uint64) uint64 { return 0 }

func (d *toyDriver) Snapshot() []workload.Counter {
	return []workload.Counter{{Name: "requests", Value: d.reqs}}
}

func init() {
	workload.Register(workload.Registration{
		Name: "toy",
		New: func(p workload.Params) (workload.Driver, error) {
			return &toyDriver{lines: 4096}, nil
		},
	})
}

// TestToyDriverEndToEnd runs a machine on a registry-only workload defined
// entirely in this test file, configured through a JSON scenario spec.
func TestToyDriverEndToEnd(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
		"name": "toy-study",
		"machine": {
			"workload": "toy",
			"warm_llc": false,
			"set": {"net_cores": 4, "ring_slots": 256, "offered_mrps": 4}
		},
		"variants": [{"mode": "ddio", "ways": 2, "sweeper": true}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("%d runs, want 1", len(runs))
	}
	m, err := machine.New(runs[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(200_000, 400_000)
	if r.Served == 0 {
		t.Fatal("toy driver served no requests")
	}
	drv, ok := m.Workload().(*toyDriver)
	if !ok {
		t.Fatalf("machine runs %T, want *toyDriver", m.Workload())
	}
	if snap := drv.Snapshot(); snap[0].Value == 0 {
		t.Error("driver counters never advanced")
	}
	if r.Sweeper.Relinquishes == 0 {
		t.Error("variant requested Sweeper, but no buffers were relinquished")
	}
}
