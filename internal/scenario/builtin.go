package scenario

import (
	"fmt"
	"sort"

	"sweeper/internal/machine"
	"sweeper/internal/workload"
)

// Variant constructors for the paper's baselines. Names are left empty so
// DisplayName derives the conventional labels and JSON specs stay terse.

func vDMA() Variant   { return Variant{Mode: "dma"} }
func vIdeal() Variant { return Variant{Mode: "ideal"} }

func vDDIO(ways int, sweeper bool) Variant {
	return Variant{Mode: "ddio", Ways: ways, Sweeper: sweeper}
}

// vDDIOPairs returns DDIO n-way without and with Sweeper per way count.
func vDDIOPairs(ways ...int) []Variant {
	var out []Variant
	for _, w := range ways {
		out = append(out, vDDIO(w, false), vDDIO(w, true))
	}
	return out
}

func bufAxis(bufs ...int) Axis {
	ax := Axis{Name: "rx buffers per core"}
	for _, b := range bufs {
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("%d buf", b),
			Set:   map[string]float64{"ring_slots": float64(b)},
		})
	}
	return ax
}

func depthAxis(depths ...int) Axis {
	ax := Axis{Name: "packets kept queued per core"}
	for _, d := range depths {
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("D=%d", d),
			Set:   map[string]float64{"closed_loop_depth": float64(d)},
		})
	}
	return ax
}

// kvsKnobs is the paper's KVS server: Table I defaults (1KB items, 1024
// buffers, 128 TX slots) with the registry workload pinned explicitly.
func kvsKnobs() Knobs {
	return Knobs{Workload: workload.NameKVS}
}

// l3fwdKnobs is the §IV-B forwarder: MTU packets, 2048-deep RX and TX rings
// (the forwarder copies every packet, so TX mirrors RX provisioning).
func l3fwdKnobs() Knobs {
	return Knobs{
		Workload: workload.NameL3Fwd,
		Set: map[string]float64{
			"packet_bytes": 1024,
			"item_bytes":   0,
			"ring_slots":   2048,
			"tx_slots":     2048,
		},
	}
}

// collocationKnobs is the §VI-E machine: 12 forwarder cores with an
// L1-resident table collocated with 12 X-Mem instances.
func collocationKnobs() Knobs {
	return Knobs{
		Workload:     workload.NameL3FwdL1,
		XMemWorkload: workload.NameXMem,
		Set: map[string]float64{
			"net_cores":    12,
			"xmem_cores":   12,
			"packet_bytes": 1024,
			"item_bytes":   0,
			"ring_slots":   2048,
			"tx_slots":     2048,
		},
	}
}

// clusterKVSKnobs is the rack-scale KVS: four Table I servers behind the
// flow-hash balancer on the default star fabric, logs sharded by key.
func clusterKVSKnobs() Knobs {
	return Knobs{
		Workload: workload.NameKVS,
		LBPolicy: "flow-hash",
		Set:      map[string]float64{"nodes": 4},
	}
}

// builtins assembles the shipped scenarios: the three base machines plus the
// sweep-style figures. Figures whose harness logic exceeds a plain sweep
// (6, 9, 10) build on the base scenarios programmatically instead.
func builtins() []Spec {
	return []Spec{
		{
			Name:        "cluster_kvs",
			Description: "4-node KVS rack: sharded logs, star fabric, offered load sweep",
			Machine:     clusterKVSKnobs(),
			Sweep: []Axis{{Name: "offered load per node", Points: []Point{
				{Label: "4 Mrps", Set: map[string]float64{"offered_mrps": 4}},
				{Label: "8 Mrps", Set: map[string]float64{"offered_mrps": 8}},
			}}},
		},
		{
			Name:        "kvs",
			Description: "Table I server running the write-heavy MICA-like KVS",
			Machine:     kvsKnobs(),
		},
		{
			Name:        "l3fwd",
			Description: "DPDK-style L3 forwarder with 2048-deep rings",
			Machine:     l3fwdKnobs(),
		},
		{
			Name:        "collocation",
			Description: "12 L3fwd cores (L1 table) collocated with 12 X-Mem tenants",
			Machine:     collocationKnobs(),
		},
		{
			Name:        "mmpp",
			Description: "KVS under bursty 2-state MMPP arrivals over a 512-flow population",
			Machine: Knobs{
				Workload: workload.NameKVS,
				Arrival:  "mmpp",
				Set: map[string]float64{
					"arrival_burst_dwell": 131072,
					"arrival_flows":       512,
				},
			},
			Variants: []Variant{vDDIO(2, false), vDDIO(2, true)},
			Sweep: []Axis{{Name: "burst ratio", Points: []Point{
				{Label: "R=2", Set: map[string]float64{"arrival_burst_ratio": 2}},
				{Label: "R=8", Set: map[string]float64{"arrival_burst_ratio": 8}},
			}}},
		},
		{
			Name:        "tiers",
			Description: "KVS on a hybrid DRAM+NVM memory with SIMF bulk invalidation",
			Machine: Knobs{
				Workload:       workload.NameKVS,
				InvalidateInsn: "simf",
				MemTierPolicy:  "hotpage",
				// Keep 16 MiB of the heap on DRAM; the rest is tier-1
				// candidate space governed by the hot-page migrator.
				Set: map[string]float64{"mem_tier_split": 16777216},
			},
			Variants: []Variant{vDDIO(2, false), vDDIO(2, true)},
		},
		{
			Name:        "fig1",
			Description: "KVS network data leaks: DMA vs DDIO vs Ideal across ring depths",
			Machine:     kvsKnobs(),
			Variants:    []Variant{vDMA(), vDDIO(2, false), vDDIO(4, false), vDDIO(6, false), vIdeal()},
			Sweep:       []Axis{bufAxis(512, 1024, 2048)},
		},
		{
			Name:        "fig2",
			Description: "L3fwd premature evictions: D packets kept queued per core",
			Machine:     l3fwdKnobs(),
			Variants:    []Variant{vDDIO(2, false), vDDIO(6, false), vDDIO(12, false), vIdeal()},
			Sweep:       []Axis{depthAxis(50, 250, 450)},
		},
		{
			Name:        "fig5",
			Description: "Sweeper vs DDIO configuration: item size x ring depth",
			Machine:     kvsKnobs(),
			Variants:    append(vDDIOPairs(2, 6, 12), vIdeal()),
			Sweep: []Axis{
				{Name: "item size", Points: []Point{
					{Label: "512B", Set: map[string]float64{"item_bytes": 512, "packet_bytes": 512}},
					{Label: "1024B", Set: map[string]float64{"item_bytes": 1024, "packet_bytes": 1024}},
				}},
				bufAxis(512, 1024, 2048),
			},
		},
		{
			Name:        "fig7",
			Description: "Sweeper under premature evictions: deep-queue L3fwd revisited",
			Machine:     l3fwdKnobs(),
			Variants:    append(vDDIOPairs(2, 6, 12), vIdeal()),
			Sweep:       []Axis{depthAxis(250, 450)},
		},
		{
			Name:        "fig8",
			Description: "Memory bandwidth sensitivity: KVS footprints x DDR4 channels",
			Machine:     kvsKnobs(),
			Variants:    append(vDDIOPairs(2, 6, 12), vIdeal()),
			Sweep: []Axis{
				{Name: "footprint", Points: []Point{
					{Label: "512B/512 buf", Set: map[string]float64{
						"item_bytes": 512, "packet_bytes": 512, "ring_slots": 512}},
					{Label: "1024B/512 buf", Set: map[string]float64{
						"item_bytes": 1024, "packet_bytes": 1024, "ring_slots": 512}},
					{Label: "1024B/2048 buf", Set: map[string]float64{
						"item_bytes": 1024, "packet_bytes": 1024, "ring_slots": 2048}},
				}},
				{Name: "DDR4 channels", Points: []Point{
					{Label: "3ch", Set: map[string]float64{"mem_channels": 3}},
					{Label: "4ch", Set: map[string]float64{"mem_channels": 4}},
					{Label: "8ch", Set: map[string]float64{"mem_channels": 8}},
				}},
			},
		},
	}
}

// Builtins returns the shipped scenario specs, sorted by name.
func Builtins() []Spec {
	specs := builtins()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// BuiltinNames lists the shipped scenario names in sorted order.
func BuiltinNames() []string {
	specs := Builtins()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Builtin looks up a shipped scenario by name.
func Builtin(name string) (Spec, bool) {
	for _, s := range builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MustSpec returns a shipped scenario, panicking on unknown names; it backs
// the experiment harness, where the builtin set is the source of truth.
func MustSpec(name string) Spec {
	s, ok := Builtin(name)
	if !ok {
		panic(fmt.Sprintf("scenario: unknown builtin %q (have %v)", name, BuiltinNames()))
	}
	return s
}

// MustConfig expands a shipped scenario's base machine with overrides,
// panicking on errors; the overrides use the same knob names as spec files.
func MustConfig(name string, overrides map[string]float64) machine.Config {
	cfg, err := MustSpec(name).Config(overrides)
	if err != nil {
		panic(fmt.Sprintf("scenario %q: %v", name, err))
	}
	return cfg
}
