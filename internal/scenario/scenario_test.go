package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sweeper/internal/machine"
	"sweeper/internal/nic"
)

func TestBuiltinSpecsValidate(t *testing.T) {
	for _, s := range Builtins() {
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q: %v", s.Name, err)
		}
	}
}

func TestBuiltinJSONRoundTrip(t *testing.T) {
	for _, want := range Builtins() {
		b, err := Marshal(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", want.Name, err)
		}
		got, err := Load(strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("%s: load: %v", want.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip changed the spec\n got: %+v\nwant: %+v", want.Name, got, want)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	cases := map[string]string{
		"top level":  `{"name": "x", "bogus": 1}`,
		"machine":    `{"name": "x", "machine": {"workload": "kvs", "frobnicate": 2}}`,
		"variant":    `{"name": "x", "variants": [{"mode": "dma", "whoops": true}]}`,
		"sweep axis": `{"name": "x", "sweep": [{"points": [{"label": "a"}], "extra": 1}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: unknown field accepted", name)
		}
	}
}

func TestLoadRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"no name":         `{"machine": {"workload": "kvs"}}`,
		"unknown knob":    `{"name": "x", "machine": {"set": {"frobnicate": 1}}}`,
		"unknown mode":    `{"name": "x", "variants": [{"mode": "warp"}]}`,
		"zero ddio ways":  `{"name": "x", "variants": [{"mode": "ddio"}]}`,
		"unlabeled point": `{"name": "x", "sweep": [{"points": [{"set": {"ring_slots": 512}}]}]}`,
		"empty axis":      `{"name": "x", "sweep": [{"points": []}]}`,
		"bad machine":     `{"name": "x", "machine": {"set": {"ring_slots": 1000}}}`,
		"bad workload":    `{"name": "x", "machine": {"workload": "nonesuch"}}`,
		"bad partition":   `{"name": "x", "machine": {"set": {"partition_split": 12}}}`,
		"bad sample mode": `{"name": "x", "machine": {"sample_mode": "warp"}}`,
		"bad sample tol":  `{"name": "x", "machine": {"set": {"sample_warmup_tol": 2}}}`,
		"trailing data":   `{"name": "x"} {"name": "y"}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestShippedSpecFiles proves every examples/scenarios/*.json parses,
// validates, and stays in lockstep with the builtin it ships.
func TestShippedSpecFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	seen := map[string]bool{}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		got, err := LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		want, ok := Builtin(got.Name)
		if !ok {
			t.Errorf("%s: names unknown builtin %q", e.Name(), got.Name)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: diverged from builtin %q; regenerate with scenario.Marshal", e.Name(), got.Name)
		}
		seen[got.Name] = true
	}
	for _, name := range BuiltinNames() {
		if !seen[name] {
			t.Errorf("builtin %q has no spec file under %s", name, dir)
		}
	}
}

// TestExpandOrdering pins the run order and labels the CSV goldens depend
// on: axes outermost in declaration order, variants innermost.
func TestExpandOrdering(t *testing.T) {
	runs, err := MustSpec("fig1").Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 15 {
		t.Fatalf("fig1: %d runs, want 15", len(runs))
	}
	wantParams := []string{"512 buf", "1024 buf", "2048 buf"}
	wantVariants := []string{"DMA", "DDIO 2 Ways", "DDIO 4 Ways", "DDIO 6 Ways", "Ideal DDIO"}
	for i, r := range runs {
		if p := wantParams[i/5]; r.Param != p {
			t.Errorf("run %d: param %q, want %q", i, r.Param, p)
		}
		if v := wantVariants[i%5]; r.Variant.DisplayName() != v {
			t.Errorf("run %d: variant %q, want %q", i, r.Variant.DisplayName(), v)
		}
	}

	runs, err = MustSpec("fig8").Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3*3*7 {
		t.Fatalf("fig8: %d runs, want 63", len(runs))
	}
	if got, want := runs[0].Param, "512B/512 buf/3ch"; got != want {
		t.Errorf("fig8 first param %q, want %q", got, want)
	}
	last := runs[len(runs)-1]
	if got, want := last.Param, "1024B/2048 buf/8ch"; got != want {
		t.Errorf("fig8 last param %q, want %q", got, want)
	}
	if got, want := last.Variant.DisplayName(), "Ideal DDIO"; got != want {
		t.Errorf("fig8 last variant %q, want %q", got, want)
	}
}

// TestExpandConfigsMatchHandBuilt proves spec expansion reproduces the
// machine configurations the harness used to assemble by hand.
func TestExpandConfigsMatchHandBuilt(t *testing.T) {
	runs, err := MustSpec("fig2").Expand()
	if err != nil {
		t.Fatal(err)
	}
	// First run: l3fwd, 2048 rings, D=50, 2-way DDIO.
	want := machine.DefaultConfig()
	want.Workload = "l3fwd"
	want.PacketBytes = 1024
	want.ItemBytes = 0
	want.RingSlots = 2048
	want.TXSlots = 2048
	want.ClosedLoopDepth = 50
	want.NICMode = nic.ModeDDIO
	want.DDIOWays = 2
	got := runs[0]
	if got.Config != want {
		t.Errorf("fig2 run 0:\n got %+v\nwant %+v", got.Config, want)
	}
	if got.ClosedLoopDepth != 50 {
		t.Errorf("fig2 run 0: ClosedLoopDepth %d, want 50", got.ClosedLoopDepth)
	}

	// Ideal variant leaves DDIOWays at the base default.
	ideal := runs[3]
	if ideal.Config.NICMode != nic.ModeIdeal {
		t.Errorf("fig2 run 3: mode %v, want ideal", ideal.Config.NICMode)
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg, err := MustSpec("kvs").Config(map[string]float64{
		"item_bytes":   512,
		"packet_bytes": 512,
		"ring_slots":   512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ItemBytes != 512 || cfg.PacketBytes != 512 || cfg.RingSlots != 512 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if cfg.TXSlots != 128 {
		t.Errorf("TXSlots %d, want the KVS default 128", cfg.TXSlots)
	}

	if _, err := MustSpec("kvs").Config(map[string]float64{"ring_slots": 1000}); err == nil {
		t.Error("non-power-of-two ring accepted")
	}
}

func TestPartitionSplitKnob(t *testing.T) {
	cfg := MustConfig("collocation", map[string]float64{"partition_split": 4})
	if cfg.NICWayMask == 0 || cfg.NetCPUWayMask == 0 || cfg.XMemWayMask == 0 {
		t.Fatalf("partition masks not set: %+v", cfg)
	}
	if cfg.NICWayMask&cfg.XMemWayMask != 0 {
		t.Errorf("NIC and X-Mem partitions overlap: %b vs %b", cfg.NICWayMask, cfg.XMemWayMask)
	}
}

func TestSamplingKnobs(t *testing.T) {
	doc := `{"name": "x", "machine": {"sample_mode": "ci", "set": {
		"sample_detailed_cycles": 16384, "sample_ff_cycles": 49152,
		"sample_intervals": 4, "sample_max_intervals": 32,
		"sample_warmup_window": 65536, "sample_warmup_tol": 0.01,
		"sample_warmup_windows": 3, "sample_max_rel_ci": 0.1}}}`
	spec, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := machine.SamplingConfig{
		Mode:               "ci",
		DetailedCycles:     16384,
		FastForwardCycles:  49152,
		Intervals:          4,
		MaxIntervals:       32,
		WarmupWindowCycles: 65536,
		WarmupMetricTol:    0.01,
		WarmupWindows:      3,
		MaxRelCI:           0.1,
	}
	if cfg.Sampling != want {
		t.Errorf("sampling knobs misapplied:\n got %+v\nwant %+v", cfg.Sampling, want)
	}
	if !cfg.Sampling.Enabled() {
		t.Error("sample_mode ci did not enable sampling")
	}
}
