package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sweeper/internal/machine"
	"sweeper/internal/nic"
)

func TestBuiltinSpecsValidate(t *testing.T) {
	for _, s := range Builtins() {
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q: %v", s.Name, err)
		}
	}
}

func TestBuiltinJSONRoundTrip(t *testing.T) {
	for _, want := range Builtins() {
		b, err := Marshal(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", want.Name, err)
		}
		got, err := Load(strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("%s: load: %v", want.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip changed the spec\n got: %+v\nwant: %+v", want.Name, got, want)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	cases := map[string]string{
		"top level":  `{"name": "x", "bogus": 1}`,
		"machine":    `{"name": "x", "machine": {"workload": "kvs", "frobnicate": 2}}`,
		"variant":    `{"name": "x", "variants": [{"mode": "dma", "whoops": true}]}`,
		"sweep axis": `{"name": "x", "sweep": [{"points": [{"label": "a"}], "extra": 1}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: unknown field accepted", name)
		}
	}
}

func TestLoadRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"no name":         `{"machine": {"workload": "kvs"}}`,
		"unknown knob":    `{"name": "x", "machine": {"set": {"frobnicate": 1}}}`,
		"unknown mode":    `{"name": "x", "variants": [{"mode": "warp"}]}`,
		"zero ddio ways":  `{"name": "x", "variants": [{"mode": "ddio"}]}`,
		"unlabeled point": `{"name": "x", "sweep": [{"points": [{"set": {"ring_slots": 512}}]}]}`,
		"empty axis":      `{"name": "x", "sweep": [{"points": []}]}`,
		"bad machine":     `{"name": "x", "machine": {"set": {"ring_slots": 1000}}}`,
		"bad workload":    `{"name": "x", "machine": {"workload": "nonesuch"}}`,
		"bad partition":   `{"name": "x", "machine": {"set": {"partition_split": 12}}}`,
		"bad sample mode": `{"name": "x", "machine": {"sample_mode": "warp"}}`,
		"bad sample tol":  `{"name": "x", "machine": {"set": {"sample_warmup_tol": 2}}}`,
		"trailing data":   `{"name": "x"} {"name": "y"}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestShippedSpecFiles proves every examples/scenarios/*.json parses,
// validates, and stays in lockstep with the builtin it ships.
func TestShippedSpecFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	seen := map[string]bool{}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		got, err := LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		want, ok := Builtin(got.Name)
		if !ok {
			t.Errorf("%s: names unknown builtin %q", e.Name(), got.Name)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: diverged from builtin %q; regenerate with scenario.Marshal", e.Name(), got.Name)
		}
		seen[got.Name] = true
	}
	for _, name := range BuiltinNames() {
		if !seen[name] {
			t.Errorf("builtin %q has no spec file under %s", name, dir)
		}
	}
}

// TestExpandOrdering pins the run order and labels the CSV goldens depend
// on: axes outermost in declaration order, variants innermost.
func TestExpandOrdering(t *testing.T) {
	runs, err := MustSpec("fig1").Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 15 {
		t.Fatalf("fig1: %d runs, want 15", len(runs))
	}
	wantParams := []string{"512 buf", "1024 buf", "2048 buf"}
	wantVariants := []string{"DMA", "DDIO 2 Ways", "DDIO 4 Ways", "DDIO 6 Ways", "Ideal DDIO"}
	for i, r := range runs {
		if p := wantParams[i/5]; r.Param != p {
			t.Errorf("run %d: param %q, want %q", i, r.Param, p)
		}
		if v := wantVariants[i%5]; r.Variant.DisplayName() != v {
			t.Errorf("run %d: variant %q, want %q", i, r.Variant.DisplayName(), v)
		}
	}

	runs, err = MustSpec("fig8").Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3*3*7 {
		t.Fatalf("fig8: %d runs, want 63", len(runs))
	}
	// fig8's footprint labels contain "/" themselves; joined params escape
	// it so the two axes split back unambiguously.
	if got, want := runs[0].Param, `512B\/512 buf/3ch`; got != want {
		t.Errorf("fig8 first param %q, want %q", got, want)
	}
	if got, want := SplitParam(runs[0].Param), []string{"512B/512 buf", "3ch"}; !reflect.DeepEqual(got, want) {
		t.Errorf("fig8 first param splits to %q, want %q", got, want)
	}
	last := runs[len(runs)-1]
	if got, want := last.Param, `1024B\/2048 buf/8ch`; got != want {
		t.Errorf("fig8 last param %q, want %q", got, want)
	}
	if got, want := last.Variant.DisplayName(), "Ideal DDIO"; got != want {
		t.Errorf("fig8 last variant %q, want %q", got, want)
	}
}

// TestExpandConfigsMatchHandBuilt proves spec expansion reproduces the
// machine configurations the harness used to assemble by hand.
func TestExpandConfigsMatchHandBuilt(t *testing.T) {
	runs, err := MustSpec("fig2").Expand()
	if err != nil {
		t.Fatal(err)
	}
	// First run: l3fwd, 2048 rings, D=50, 2-way DDIO.
	want := machine.DefaultConfig()
	want.Workload = "l3fwd"
	want.PacketBytes = 1024
	want.ItemBytes = 0
	want.RingSlots = 2048
	want.TXSlots = 2048
	want.ClosedLoopDepth = 50
	want.NICMode = nic.ModeDDIO
	want.DDIOWays = 2
	got := runs[0]
	if got.Config != want {
		t.Errorf("fig2 run 0:\n got %+v\nwant %+v", got.Config, want)
	}
	if got.ClosedLoopDepth != 50 {
		t.Errorf("fig2 run 0: ClosedLoopDepth %d, want 50", got.ClosedLoopDepth)
	}

	// Ideal variant leaves DDIOWays at the base default.
	ideal := runs[3]
	if ideal.Config.NICMode != nic.ModeIdeal {
		t.Errorf("fig2 run 3: mode %v, want ideal", ideal.Config.NICMode)
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg, err := MustSpec("kvs").Config(map[string]float64{
		"item_bytes":   512,
		"packet_bytes": 512,
		"ring_slots":   512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ItemBytes != 512 || cfg.PacketBytes != 512 || cfg.RingSlots != 512 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if cfg.TXSlots != 128 {
		t.Errorf("TXSlots %d, want the KVS default 128", cfg.TXSlots)
	}

	if _, err := MustSpec("kvs").Config(map[string]float64{"ring_slots": 1000}); err == nil {
		t.Error("non-power-of-two ring accepted")
	}
}

func TestPartitionSplitKnob(t *testing.T) {
	cfg := MustConfig("collocation", map[string]float64{"partition_split": 4})
	if cfg.NICWayMask == 0 || cfg.NetCPUWayMask == 0 || cfg.XMemWayMask == 0 {
		t.Fatalf("partition masks not set: %+v", cfg)
	}
	if cfg.NICWayMask&cfg.XMemWayMask != 0 {
		t.Errorf("NIC and X-Mem partitions overlap: %b vs %b", cfg.NICWayMask, cfg.XMemWayMask)
	}
}

func TestSamplingKnobs(t *testing.T) {
	doc := `{"name": "x", "machine": {"sample_mode": "ci", "set": {
		"sample_detailed_cycles": 16384, "sample_ff_cycles": 49152,
		"sample_intervals": 4, "sample_max_intervals": 32,
		"sample_warmup_window": 65536, "sample_warmup_tol": 0.01,
		"sample_warmup_windows": 3, "sample_max_rel_ci": 0.1}}}`
	spec, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := machine.SamplingConfig{
		Mode:               "ci",
		DetailedCycles:     16384,
		FastForwardCycles:  49152,
		Intervals:          4,
		MaxIntervals:       32,
		WarmupWindowCycles: 65536,
		WarmupMetricTol:    0.01,
		WarmupWindows:      3,
		MaxRelCI:           0.1,
	}
	if cfg.Sampling != want {
		t.Errorf("sampling knobs misapplied:\n got %+v\nwant %+v", cfg.Sampling, want)
	}
	if !cfg.Sampling.Enabled() {
		t.Error("sample_mode ci did not enable sampling")
	}
}

// TestParamEscaping locks the label-joining fix: axis labels containing the
// separator are escaped in Param and recovered exactly by SplitParam, so a
// two-axis sweep can never masquerade as a three-axis one.
func TestParamEscaping(t *testing.T) {
	cases := []struct {
		labels []string
		param  string
	}{
		{[]string{"512B/512 buf", "3ch"}, `512B\/512 buf/3ch`},
		{[]string{"a", "b", "c"}, "a/b/c"},
		{[]string{`back\slash`, "x/y"}, `back\\slash/x\/y`},
		{[]string{"plain"}, "plain"},
		{nil, ""},
	}
	for _, c := range cases {
		if got := joinLabels(c.labels); got != c.param {
			t.Errorf("joinLabels(%q) = %q, want %q", c.labels, got, c.param)
		}
		if got := SplitParam(c.param); !reflect.DeepEqual(got, c.labels) {
			t.Errorf("SplitParam(%q) = %q, want %q", c.param, got, c.labels)
		}
	}
	// The ambiguous pair that motivated the escape: distinct label sets
	// must produce distinct params.
	a := joinLabels([]string{"512B/512 buf", "3ch"})
	b := joinLabels([]string{"512B", "512 buf", "3ch"})
	if a == b {
		t.Fatalf("ambiguous params: %q", a)
	}
}

// TestClusterExpansion checks the cluster knobs: the builtin cluster
// scenario expands to rack runs with validated cluster configs, and the
// nodes knob sweeps like any other.
func TestClusterExpansion(t *testing.T) {
	runs, err := MustSpec("cluster_kvs").Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("cluster_kvs: %d runs, want 2", len(runs))
	}
	for _, r := range runs {
		if r.Cluster == nil {
			t.Fatalf("run %q has no cluster config", r.Param)
		}
		if r.Cluster.Nodes != 4 || r.Cluster.LBPolicy != "flow-hash" {
			t.Fatalf("run %q cluster = %d nodes, policy %q", r.Param, r.Cluster.Nodes, r.Cluster.LBPolicy)
		}
		if r.Cluster.Node != r.Config {
			t.Fatalf("run %q cluster node template differs from Config", r.Param)
		}
		if err := r.Cluster.Validate(); err != nil {
			t.Fatalf("run %q cluster config invalid: %v", r.Param, err)
		}
	}
	if runs[0].Config.OfferedMrps != 4 || runs[1].Config.OfferedMrps != 8 {
		t.Fatalf("offered sweep not applied: %g, %g", runs[0].Config.OfferedMrps, runs[1].Config.OfferedMrps)
	}

	// Sweeping nodes across points, including the degenerate single node.
	spec := Spec{
		Name:    "nodes-sweep",
		Machine: Knobs{Set: map[string]float64{"fabric_queue_depth": 16}},
		Sweep: []Axis{{Points: []Point{
			{Label: "1 node", Set: map[string]float64{"nodes": 1}},
			{Label: "2 nodes", Set: map[string]float64{"nodes": 2}},
		}}},
	}
	runs, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Cluster != nil {
		t.Error("1-node point should stay a standalone machine run")
	}
	if runs[1].Cluster == nil || runs[1].Cluster.Nodes != 2 {
		t.Fatal("2-node point did not become a cluster run")
	}
	if got := runs[1].Cluster.Fabric.QueueDepth; got != 16 {
		t.Errorf("fabric_queue_depth knob not threaded: %d", got)
	}
}

// TestClusterKnobValidation checks bad cluster knobs fail expansion.
func TestClusterKnobValidation(t *testing.T) {
	bad := map[string]Spec{
		"unknown policy": {Name: "x", Machine: Knobs{LBPolicy: "nope", Set: map[string]float64{"nodes": 2}}},
		"bad topology":   {Name: "x", Machine: Knobs{Topology: "torus", Set: map[string]float64{"nodes": 2}}},
		"bad fabric":     {Name: "x", Machine: Knobs{Set: map[string]float64{"nodes": 2, "fabric_link_gbps": -1}}},
	}
	for name, s := range bad {
		if _, err := s.Expand(); err == nil {
			t.Errorf("%s: expanded", name)
		}
	}
	if _, err := (Spec{Name: "x", Machine: Knobs{Set: map[string]float64{"nodes": 2}}}).Expand(); err != nil {
		t.Errorf("plain 2-node spec rejected: %v", err)
	}
}

// TestTierKnobValidation mirrors TestClusterKnobValidation for the hybrid
// memory tier and invalidation-instruction knobs: contradictory combinations
// must fail at expansion, before any simulation runs.
func TestTierKnobValidation(t *testing.T) {
	bad := map[string]Spec{
		"unknown instruction": {Name: "x", Machine: Knobs{InvalidateInsn: "clzap"}},
		"unknown tier policy": {Name: "x", Machine: Knobs{MemTierPolicy: "warm"}},
		"tier split past address space": {Name: "x", Machine: Knobs{MemTierPolicy: "static",
			Set: map[string]float64{"mem_tier_split": float64(uint64(1) << 49)}}},
		"tier zero bandwidth": {Name: "x", Machine: Knobs{MemTierPolicy: "static",
			Set: map[string]float64{"mem_tier_bw_gbps": 0}}},
		"tier zero read latency": {Name: "x", Machine: Knobs{MemTierPolicy: "static",
			Set: map[string]float64{"mem_tier_read_lat": 0}}},
		"hot epoch too short": {Name: "x", Machine: Knobs{MemTierPolicy: "hotpage",
			Set: map[string]float64{"mem_tier_hot_epoch": 16}}},
		"negative simf batch": {Name: "x", Machine: Knobs{InvalidateInsn: "simf",
			Set: map[string]float64{"simf_batch_lines": -1}}},
	}
	for name, s := range bad {
		if _, err := s.Expand(); err == nil {
			t.Errorf("%s: expanded", name)
		}
	}
	good := Spec{Name: "x", Machine: Knobs{InvalidateInsn: "simf", MemTierPolicy: "hotpage",
		Set: map[string]float64{"mem_tier_split": 1 << 24, "simf_batch_lines": 32}}}
	if _, err := good.Expand(); err != nil {
		t.Errorf("tiered simf spec rejected: %v", err)
	}
}

// TestClusterConfigHelper checks the sweepless ClusterConfig view used by
// the CLI's -nodes flag.
func TestClusterConfigHelper(t *testing.T) {
	cc, err := MustSpec("kvs").ClusterConfig(map[string]float64{"nodes": 3, "offered_mrps": 6})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Nodes != 3 || cc.Node.OfferedMrps != 6 {
		t.Fatalf("ClusterConfig = %d nodes, %g Mrps", cc.Nodes, cc.Node.OfferedMrps)
	}
	if _, err := MustSpec("kvs").Config(map[string]float64{"nodes": 3}); err == nil {
		t.Fatal("Config accepted a multi-node override")
	}
}
