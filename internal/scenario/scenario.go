// Package scenario defines declarative experiment scenarios: a JSON-friendly
// description of a machine configuration, the packet-injection variants to
// compare, and the parameter axes to sweep. The experiment harness and the
// sweepersim CLI consume scenarios instead of hand-assembling machine
// configurations, so a new study is a spec file, not a code change.
package scenario

import (
	"fmt"
	"strings"

	"sweeper/internal/cache"
	"sweeper/internal/cluster"
	"sweeper/internal/fabric"
	"sweeper/internal/machine"
	"sweeper/internal/mem"
	"sweeper/internal/nic"
)

// Spec is one declarative scenario: a base machine, the injection variants
// to compare, and the sweep axes to cross. The zero Machine/Variants/Sweep
// all default sensibly: Table I's server, run as configured, no sweep.
type Spec struct {
	// Name identifies the scenario ("fig5", "kvs", ...).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Machine overlays knobs onto the Table I default configuration.
	Machine Knobs `json:"machine"`
	// Variants are the injection policies swept innermost; empty means
	// "run the machine exactly as configured".
	Variants []Variant `json:"variants,omitempty"`
	// Sweep axes are crossed outermost-first; each point's label
	// contributes to the run's parameter name.
	Sweep []Axis `json:"sweep,omitempty"`
}

// Knobs overlays a base machine configuration. String-valued knobs are
// explicit fields; numeric knobs live in Set, keyed by the names accepted by
// applyKnob (ring_slots, item_bytes, mem_channels, ...).
type Knobs struct {
	// Workload names the networked application in the workload registry;
	// empty keeps the default (the KVS).
	Workload string `json:"workload,omitempty"`
	// XMemWorkload names the background stream for collocated cores.
	XMemWorkload string `json:"xmem_workload,omitempty"`
	// SampleMode selects sampled simulation ("fixed" or "ci"; empty or
	// "off" runs fully detailed). The numeric sampling knobs
	// (sample_detailed_cycles, sample_ff_cycles, ...) live in Set.
	SampleMode string `json:"sample_mode,omitempty"`
	// WarmLLC overrides the warm-fill default when non-nil.
	WarmLLC *bool `json:"warm_llc,omitempty"`
	// Arrival names the open-loop arrival process in the nic registry
	// ("poisson", "mmpp", "trace"; empty keeps Poisson), ArrivalTrace
	// the trace file replayed by the "trace" process. The numeric
	// arrival knobs (arrival_burst_ratio, arrival_flows, ...) live in
	// Set.
	Arrival      string `json:"arrival,omitempty"`
	ArrivalTrace string `json:"arrival_trace,omitempty"`
	// Topology and LBPolicy select the cluster fabric wiring and the
	// load-balancer policy when the "nodes" knob raises the run to a
	// rack; both default empty (star, cluster.DefaultPolicy). The node
	// count itself and the fabric_* sizing are numeric knobs in Set, so
	// axes can sweep them.
	Topology string `json:"topology,omitempty"`
	LBPolicy string `json:"lb_policy,omitempty"`
	// InvalidateInsn names the relinquish instruction in the core
	// registry ("clsweep", "clflush", "clwb", "simf"; empty keeps
	// clsweep). The simf_* batch knobs live in Set.
	InvalidateInsn string `json:"invalidate_insn,omitempty"`
	// MemTierPolicy enables the hybrid second memory tier under the named
	// placement policy ("static" or "hotpage"; empty keeps the machine
	// DRAM-only), starting from mem.DefaultTierConfig. The numeric tier
	// knobs (mem_tier_split, mem_tier_read_lat, ...) live in Set.
	MemTierPolicy string `json:"mem_tier_policy,omitempty"`
	// Set holds numeric knob overrides, applied in any order (each knob
	// writes an independent configuration field).
	Set map[string]float64 `json:"set,omitempty"`
}

// Variant is one packet-injection policy (and Sweeper toggle) of a sweep.
type Variant struct {
	// Name labels the variant in tables; empty derives the conventional
	// label ("DMA", "Ideal DDIO", "DDIO 4 Ways + Sweeper").
	Name string `json:"name,omitempty"`
	// Mode is "dma", "ddio", "idio" or "ideal"; empty leaves the base
	// machine's mode untouched.
	Mode string `json:"mode,omitempty"`
	// Ways is the DDIO way allocation (ddio mode only).
	Ways int `json:"ways,omitempty"`
	// Sweeper enables application-driven RX relinquishing; TXSweep
	// additionally sweeps transmit buffers from the NIC side.
	Sweeper bool `json:"sweeper,omitempty"`
	TXSweep bool `json:"tx_sweep,omitempty"`
}

// Axis is one swept parameter dimension.
type Axis struct {
	// Name documents the axis ("rx buffers per core").
	Name string `json:"name,omitempty"`
	// Points are visited in order; the cross product of all axes is
	// taken outermost-first.
	Points []Point `json:"points"`
}

// Point is one value of an axis: a label and the knobs it sets.
type Point struct {
	// Label contributes to the run's parameter name; multi-axis labels
	// join with "/" ("1024B" + "512 buf" -> "1024B/512 buf").
	Label string `json:"label"`
	// Set assigns numeric knobs, like Knobs.Set.
	Set map[string]float64 `json:"set,omitempty"`
}

// Run is one fully expanded simulation of a scenario.
type Run struct {
	// Param is the joined axis labels ("1024B/512 buf"); empty for
	// sweepless scenarios. Separators inside individual labels are
	// escaped ("\/"), so SplitParam recovers the labels unambiguously.
	Param string
	// Variant is the injection policy applied to Config (zero for
	// variantless scenarios).
	Variant Variant
	// Config is the complete, validated machine configuration (the
	// per-node template when Cluster is set).
	Config machine.Config
	// ClosedLoopDepth mirrors Config.ClosedLoopDepth for harnesses that
	// normalize traffic knobs before running.
	ClosedLoopDepth int
	// Cluster is non-nil when the "nodes" knob raises this run to a
	// rack: the complete, validated cluster configuration (its Node is
	// Config). Harnesses run it through cluster.New instead of
	// machine.New.
	Cluster *cluster.Config
}

// NICMode parses the variant's mode string.
func (v Variant) NICMode() (nic.Mode, error) {
	switch v.Mode {
	case "dma":
		return nic.ModeDMA, nil
	case "ddio":
		return nic.ModeDDIO, nil
	case "idio":
		return nic.ModeIDIO, nil
	case "ideal":
		return nic.ModeIdeal, nil
	default:
		return 0, fmt.Errorf("scenario: unknown NIC mode %q (want dma, ddio, idio or ideal)", v.Mode)
	}
}

// DisplayName returns the variant's table label, deriving the conventional
// one when unset.
func (v Variant) DisplayName() string {
	if v.Name != "" {
		return v.Name
	}
	switch v.Mode {
	case "dma":
		return "DMA"
	case "ideal":
		return "Ideal DDIO"
	case "idio":
		return "IDIO"
	case "ddio":
		name := fmt.Sprintf("DDIO %d Ways", v.Ways)
		if v.Sweeper {
			name += " + Sweeper"
		}
		return name
	default:
		return "as configured"
	}
}

// Apply stamps the variant onto a configuration. An empty-mode variant is a
// no-op, leaving the base machine's injection policy in place.
func (v Variant) Apply(cfg machine.Config) (machine.Config, error) {
	if v.Mode == "" {
		return cfg, nil
	}
	mode, err := v.NICMode()
	if err != nil {
		return cfg, err
	}
	cfg.NICMode = mode
	if mode == nic.ModeDDIO {
		if v.Ways <= 0 {
			return cfg, fmt.Errorf("scenario: variant %q needs positive DDIO ways", v.DisplayName())
		}
		cfg.DDIOWays = v.Ways
	}
	// Mutate the sweep toggles in place rather than overwriting the whole
	// Sweeper config, so the base machine's instruction selection and
	// simf batch knobs survive variant application.
	cfg.Sweeper.RXSweep = v.Sweeper
	cfg.Sweeper.TXSweep = v.TXSweep
	cfg.Sweeper.IssueCyclesPerLine = 1
	if v.TXSweep {
		cfg.SweepTX = true
	}
	return cfg, nil
}

// runConfig is the composite configuration a sweep walks: the machine (or
// per-node template) plus the cluster-level knobs that live outside
// machine.Config. nodes <= 1 leaves the run a standalone machine.
type runConfig struct {
	m      machine.Config
	nodes  int
	fabric fabric.Config
}

// applyKnob writes one numeric knob into a run configuration. Every knob
// targets an independent field (partition_split reads only the immutable
// LLC way count), so a knob set may be applied in any order.
func applyKnob(cfg *runConfig, knob string, v float64) error {
	switch knob {
	case "nodes":
		cfg.nodes = int(v)
		return nil
	case "fabric_link_gbps":
		cfg.fabric.LinkGBps = v
		return nil
	case "fabric_link_lat_cycles":
		cfg.fabric.LinkLatCycles = uint64(v)
		return nil
	case "fabric_switch_lat_cycles":
		cfg.fabric.SwitchLatCycles = uint64(v)
		return nil
	case "fabric_queue_depth":
		cfg.fabric.QueueDepth = int(v)
		return nil
	case "fabric_retry_cycles":
		cfg.fabric.RetryCycles = uint64(v)
		return nil
	}
	return applyMachineKnob(&cfg.m, knob, v)
}

func applyMachineKnob(cfg *machine.Config, knob string, v float64) error {
	switch knob {
	case "net_cores":
		cfg.NetCores = int(v)
	case "xmem_cores":
		cfg.XMemCores = int(v)
	case "ring_slots":
		cfg.RingSlots = int(v)
	case "tx_slots":
		cfg.TXSlots = int(v)
	case "packet_bytes":
		cfg.PacketBytes = uint64(v)
	case "item_bytes":
		cfg.ItemBytes = uint64(v)
	case "ddio_ways":
		cfg.DDIOWays = int(v)
	case "offered_mrps":
		cfg.OfferedMrps = v
	case "closed_loop_depth":
		cfg.ClosedLoopDepth = int(v)
	case "mem_channels":
		cfg.Mem.Channels = int(v)
	case "spike_prob":
		cfg.SpikeProb = v
	case "spike_min_cycles":
		cfg.SpikeMinCycles = uint64(v)
	case "spike_max_cycles":
		cfg.SpikeMaxCycles = uint64(v)
	case "poll_cycles":
		cfg.PollCycles = uint64(v)
	case "mlp_width":
		cfg.MLPWidth = int(v)
	case "seed":
		cfg.Seed = int64(v)
	case "dynamic_ddio_epoch":
		cfg.DynamicDDIOEpoch = uint64(v)
	case "obs_sample_cycles":
		cfg.ObsSampleCycles = uint64(v)
	case "shards":
		cfg.Shards = int(v)
	case "nebula_drop_depth":
		cfg.NeBuLaDropDepth = int(v)
	case "arrival_burst_ratio":
		cfg.Arrival.BurstRatio = v
	case "arrival_burst_dwell":
		cfg.Arrival.BurstDwellCycles = uint64(v)
	case "arrival_diurnal_period":
		cfg.Arrival.DiurnalPeriodCycles = uint64(v)
	case "arrival_diurnal_amp":
		cfg.Arrival.DiurnalAmplitude = v
	case "arrival_flows":
		cfg.Arrival.Flows = int(v)
	case "sample_detailed_cycles":
		cfg.Sampling.DetailedCycles = uint64(v)
	case "sample_ff_cycles":
		cfg.Sampling.FastForwardCycles = uint64(v)
	case "sample_intervals":
		cfg.Sampling.Intervals = int(v)
	case "sample_max_intervals":
		cfg.Sampling.MaxIntervals = int(v)
	case "sample_warmup_window":
		cfg.Sampling.WarmupWindowCycles = uint64(v)
	case "sample_warmup_tol":
		cfg.Sampling.WarmupMetricTol = v
	case "sample_warmup_windows":
		cfg.Sampling.WarmupWindows = int(v)
	case "sample_max_rel_ci":
		cfg.Sampling.MaxRelCI = v
	case "mem_tier_split":
		cfg.MemTier.DRAMBytes = uint64(v)
	case "mem_tier_read_lat":
		cfg.MemTier.ReadLatency = uint64(v)
	case "mem_tier_write_lat":
		cfg.MemTier.WriteLatency = uint64(v)
	case "mem_tier_bw_gbps":
		cfg.MemTier.BandwidthGBps = v
	case "mem_tier_hot_thresh":
		cfg.MemTier.HotPageThreshold = int(v)
	case "mem_tier_hot_epoch":
		cfg.MemTier.HotPageEpochCycles = uint64(v)
	case "simf_batch_lines":
		cfg.Sweeper.SIMFBatchLines = int(v)
	case "simf_batch_cycles":
		cfg.Sweeper.SIMFBatchCycles = int(v)
	case "simf_setup_cycles":
		cfg.Sweeper.SIMFSetupCycles = int(v)
	case "partition_split":
		// The §VI-E disjoint partition: the NIC and networked cores get
		// the first n LLC ways, collocated tenants the rest.
		n := int(v)
		if n <= 0 || n >= cfg.Cache.LLCWays {
			return fmt.Errorf("scenario: partition_split %d outside (0,%d)", n, cfg.Cache.LLCWays)
		}
		cfg.NICWayMask = cache.MaskAll(n)
		cfg.NetCPUWayMask = cache.MaskAll(n)
		cfg.XMemWayMask = cache.MaskRange(n, cfg.Cache.LLCWays)
	default:
		return fmt.Errorf("scenario: unknown knob %q", knob)
	}
	return nil
}

// baseConfig builds the spec's run configuration before axes and variants:
// Table I defaults (and the default fabric, so partial fabric_* overrides
// compose) overlaid with the spec's knobs.
func (s Spec) baseConfig() (runConfig, error) {
	rc := runConfig{m: machine.DefaultConfig(), fabric: fabric.DefaultConfig()}
	if s.Machine.Workload != "" {
		rc.m.Workload = s.Machine.Workload
	}
	if s.Machine.XMemWorkload != "" {
		rc.m.XMemWorkload = s.Machine.XMemWorkload
	}
	if s.Machine.SampleMode != "" {
		rc.m.Sampling.Mode = s.Machine.SampleMode
	}
	if s.Machine.Arrival != "" {
		rc.m.Arrival.Process = s.Machine.Arrival
	}
	if s.Machine.ArrivalTrace != "" {
		rc.m.Arrival.TracePath = s.Machine.ArrivalTrace
	}
	if s.Machine.WarmLLC != nil {
		rc.m.WarmLLC = *s.Machine.WarmLLC
	}
	if s.Machine.InvalidateInsn != "" {
		rc.m.Sweeper.Insn = s.Machine.InvalidateInsn
	}
	if s.Machine.MemTierPolicy != "" {
		rc.m.MemTier = mem.DefaultTierConfig(s.Machine.MemTierPolicy)
	}
	for knob, v := range s.Machine.Set {
		if err := applyKnob(&rc, knob, v); err != nil {
			return rc, err
		}
	}
	return rc, nil
}

// clusterConfig assembles and validates the cluster configuration for a
// walked run configuration whose nodes knob exceeds 1.
func (s Spec) clusterConfig(rc runConfig, node machine.Config) (*cluster.Config, error) {
	cc := &cluster.Config{
		Node:     node,
		Nodes:    rc.nodes,
		Topology: s.Machine.Topology,
		LBPolicy: s.Machine.LBPolicy,
		Fabric:   rc.fabric,
	}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	return cc, nil
}

// Config expands a sweepless view of the scenario: the base machine with
// optional extra knob overrides, no variant applied. Harnesses use it to
// derive one-off machine configurations from a shipped scenario; scenarios
// whose knobs raise a cluster go through ClusterConfig instead.
func (s Spec) Config(overrides map[string]float64) (machine.Config, error) {
	rc, err := s.baseConfig()
	if err != nil {
		return rc.m, err
	}
	for knob, v := range overrides {
		if err := applyKnob(&rc, knob, v); err != nil {
			return rc.m, err
		}
	}
	if rc.nodes > 1 {
		return rc.m, fmt.Errorf("scenario %q: %d nodes is a cluster; expand through ClusterConfig", s.Name, rc.nodes)
	}
	if err := rc.m.Validate(); err != nil {
		return rc.m, err
	}
	return rc.m, nil
}

// ClusterConfig expands a sweepless cluster view of the scenario: the base
// machine as the node template plus the cluster knobs, with optional
// overrides. Node counts of 0/1 yield a valid one-node cluster, so
// harnesses can raise any scenario to a rack with a "nodes" override.
func (s Spec) ClusterConfig(overrides map[string]float64) (*cluster.Config, error) {
	rc, err := s.baseConfig()
	if err != nil {
		return nil, err
	}
	for knob, v := range overrides {
		if err := applyKnob(&rc, knob, v); err != nil {
			return nil, err
		}
	}
	if rc.nodes < 1 {
		rc.nodes = 1
	}
	return s.clusterConfig(rc, rc.m)
}

// Expand crosses the sweep axes (outermost-first) with the variants
// (innermost) into the scenario's full run list, validating every resulting
// configuration. A sweepless spec yields one run per variant; a variantless
// spec runs each point as configured.
func (s Spec) Expand() ([]Run, error) {
	base, err := s.baseConfig()
	if err != nil {
		return nil, err
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}

	var runs []Run
	var walk func(axis int, labels []string, rc runConfig) error
	walk = func(axis int, labels []string, rc runConfig) error {
		if axis == len(s.Sweep) {
			for _, v := range variants {
				final, err := v.Apply(rc.m)
				if err != nil {
					return err
				}
				if err := final.Validate(); err != nil {
					return fmt.Errorf("scenario %q, param %q, variant %q: %w",
						s.Name, joinLabels(labels), v.DisplayName(), err)
				}
				run := Run{
					Param:           joinLabels(labels),
					Variant:         v,
					Config:          final,
					ClosedLoopDepth: final.ClosedLoopDepth,
				}
				if rc.nodes > 1 {
					cc, err := s.clusterConfig(rc, final)
					if err != nil {
						return fmt.Errorf("scenario %q, param %q, variant %q: %w",
							s.Name, run.Param, v.DisplayName(), err)
					}
					run.Cluster = cc
				}
				runs = append(runs, run)
			}
			return nil
		}
		ax := s.Sweep[axis]
		for _, pt := range ax.Points {
			c := rc
			for knob, v := range pt.Set {
				if err := applyKnob(&c, knob, v); err != nil {
					return fmt.Errorf("scenario %q, axis %d point %q: %w", s.Name, axis, pt.Label, err)
				}
			}
			if err := walk(axis+1, append(labels, pt.Label), c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0, nil, base); err != nil {
		return nil, err
	}
	return runs, nil
}

// escapeLabel escapes the label-join separator (and the escape character
// itself) inside one axis label, so a Param like "512B\/512 buf/3ch"
// splits unambiguously back into its labels even when a label contains
// "/". Before this, fig8's "512B/512 buf" joined with "3ch" was
// indistinguishable from a three-axis sweep.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "/", `\/`)
}

// joinLabels builds a Run.Param from axis labels, escaping each label.
func joinLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	esc := make([]string, len(labels))
	for i, l := range labels {
		esc[i] = escapeLabel(l)
	}
	return strings.Join(esc, "/")
}

// SplitParam splits a Run.Param back into its original axis labels,
// undoing joinLabels' escaping.
func SplitParam(p string) []string {
	if p == "" {
		return nil
	}
	var out []string
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		switch c := p[i]; c {
		case '\\':
			if i+1 < len(p) {
				i++
				b.WriteByte(p[i])
			}
		case '/':
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	return append(out, b.String())
}

// Validate checks the spec structurally and expands it, so every swept
// configuration is vetted by machine validation before any simulation runs.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	for i, ax := range s.Sweep {
		if len(ax.Points) == 0 {
			return fmt.Errorf("scenario %q: axis %d has no points", s.Name, i)
		}
		for j, pt := range ax.Points {
			if pt.Label == "" {
				return fmt.Errorf("scenario %q: axis %d point %d has no label", s.Name, i, j)
			}
		}
	}
	for _, v := range s.Variants {
		if v.Mode == "" {
			continue
		}
		if _, err := v.NICMode(); err != nil {
			return err
		}
	}
	_, err := s.Expand()
	return err
}
