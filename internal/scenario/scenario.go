// Package scenario defines declarative experiment scenarios: a JSON-friendly
// description of a machine configuration, the packet-injection variants to
// compare, and the parameter axes to sweep. The experiment harness and the
// sweepersim CLI consume scenarios instead of hand-assembling machine
// configurations, so a new study is a spec file, not a code change.
package scenario

import (
	"fmt"
	"strings"

	"sweeper/internal/cache"
	"sweeper/internal/core"
	"sweeper/internal/machine"
	"sweeper/internal/nic"
)

// Spec is one declarative scenario: a base machine, the injection variants
// to compare, and the sweep axes to cross. The zero Machine/Variants/Sweep
// all default sensibly: Table I's server, run as configured, no sweep.
type Spec struct {
	// Name identifies the scenario ("fig5", "kvs", ...).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Machine overlays knobs onto the Table I default configuration.
	Machine Knobs `json:"machine"`
	// Variants are the injection policies swept innermost; empty means
	// "run the machine exactly as configured".
	Variants []Variant `json:"variants,omitempty"`
	// Sweep axes are crossed outermost-first; each point's label
	// contributes to the run's parameter name.
	Sweep []Axis `json:"sweep,omitempty"`
}

// Knobs overlays a base machine configuration. String-valued knobs are
// explicit fields; numeric knobs live in Set, keyed by the names accepted by
// applyKnob (ring_slots, item_bytes, mem_channels, ...).
type Knobs struct {
	// Workload names the networked application in the workload registry;
	// empty keeps the default (the KVS).
	Workload string `json:"workload,omitempty"`
	// XMemWorkload names the background stream for collocated cores.
	XMemWorkload string `json:"xmem_workload,omitempty"`
	// SampleMode selects sampled simulation ("fixed" or "ci"; empty or
	// "off" runs fully detailed). The numeric sampling knobs
	// (sample_detailed_cycles, sample_ff_cycles, ...) live in Set.
	SampleMode string `json:"sample_mode,omitempty"`
	// WarmLLC overrides the warm-fill default when non-nil.
	WarmLLC *bool `json:"warm_llc,omitempty"`
	// Set holds numeric knob overrides, applied in any order (each knob
	// writes an independent configuration field).
	Set map[string]float64 `json:"set,omitempty"`
}

// Variant is one packet-injection policy (and Sweeper toggle) of a sweep.
type Variant struct {
	// Name labels the variant in tables; empty derives the conventional
	// label ("DMA", "Ideal DDIO", "DDIO 4 Ways + Sweeper").
	Name string `json:"name,omitempty"`
	// Mode is "dma", "ddio", "idio" or "ideal"; empty leaves the base
	// machine's mode untouched.
	Mode string `json:"mode,omitempty"`
	// Ways is the DDIO way allocation (ddio mode only).
	Ways int `json:"ways,omitempty"`
	// Sweeper enables application-driven RX relinquishing; TXSweep
	// additionally sweeps transmit buffers from the NIC side.
	Sweeper bool `json:"sweeper,omitempty"`
	TXSweep bool `json:"tx_sweep,omitempty"`
}

// Axis is one swept parameter dimension.
type Axis struct {
	// Name documents the axis ("rx buffers per core").
	Name string `json:"name,omitempty"`
	// Points are visited in order; the cross product of all axes is
	// taken outermost-first.
	Points []Point `json:"points"`
}

// Point is one value of an axis: a label and the knobs it sets.
type Point struct {
	// Label contributes to the run's parameter name; multi-axis labels
	// join with "/" ("1024B" + "512 buf" -> "1024B/512 buf").
	Label string `json:"label"`
	// Set assigns numeric knobs, like Knobs.Set.
	Set map[string]float64 `json:"set,omitempty"`
}

// Run is one fully expanded simulation of a scenario.
type Run struct {
	// Param is the joined axis labels ("1024B/512 buf"); empty for
	// sweepless scenarios.
	Param string
	// Variant is the injection policy applied to Config (zero for
	// variantless scenarios).
	Variant Variant
	// Config is the complete, validated machine configuration.
	Config machine.Config
	// ClosedLoopDepth mirrors Config.ClosedLoopDepth for harnesses that
	// normalize traffic knobs before running.
	ClosedLoopDepth int
}

// NICMode parses the variant's mode string.
func (v Variant) NICMode() (nic.Mode, error) {
	switch v.Mode {
	case "dma":
		return nic.ModeDMA, nil
	case "ddio":
		return nic.ModeDDIO, nil
	case "idio":
		return nic.ModeIDIO, nil
	case "ideal":
		return nic.ModeIdeal, nil
	default:
		return 0, fmt.Errorf("scenario: unknown NIC mode %q (want dma, ddio, idio or ideal)", v.Mode)
	}
}

// DisplayName returns the variant's table label, deriving the conventional
// one when unset.
func (v Variant) DisplayName() string {
	if v.Name != "" {
		return v.Name
	}
	switch v.Mode {
	case "dma":
		return "DMA"
	case "ideal":
		return "Ideal DDIO"
	case "idio":
		return "IDIO"
	case "ddio":
		name := fmt.Sprintf("DDIO %d Ways", v.Ways)
		if v.Sweeper {
			name += " + Sweeper"
		}
		return name
	default:
		return "as configured"
	}
}

// Apply stamps the variant onto a configuration. An empty-mode variant is a
// no-op, leaving the base machine's injection policy in place.
func (v Variant) Apply(cfg machine.Config) (machine.Config, error) {
	if v.Mode == "" {
		return cfg, nil
	}
	mode, err := v.NICMode()
	if err != nil {
		return cfg, err
	}
	cfg.NICMode = mode
	if mode == nic.ModeDDIO {
		if v.Ways <= 0 {
			return cfg, fmt.Errorf("scenario: variant %q needs positive DDIO ways", v.DisplayName())
		}
		cfg.DDIOWays = v.Ways
	}
	cfg.Sweeper = core.Config{RXSweep: v.Sweeper, IssueCyclesPerLine: 1}
	if v.TXSweep {
		cfg.Sweeper.TXSweep = true
		cfg.SweepTX = true
	}
	return cfg, nil
}

// applyKnob writes one numeric knob into a configuration. Every knob targets
// an independent field (partition_split reads only the immutable LLC way
// count), so a knob set may be applied in any order.
func applyKnob(cfg *machine.Config, knob string, v float64) error {
	switch knob {
	case "net_cores":
		cfg.NetCores = int(v)
	case "xmem_cores":
		cfg.XMemCores = int(v)
	case "ring_slots":
		cfg.RingSlots = int(v)
	case "tx_slots":
		cfg.TXSlots = int(v)
	case "packet_bytes":
		cfg.PacketBytes = uint64(v)
	case "item_bytes":
		cfg.ItemBytes = uint64(v)
	case "ddio_ways":
		cfg.DDIOWays = int(v)
	case "offered_mrps":
		cfg.OfferedMrps = v
	case "closed_loop_depth":
		cfg.ClosedLoopDepth = int(v)
	case "mem_channels":
		cfg.Mem.Channels = int(v)
	case "spike_prob":
		cfg.SpikeProb = v
	case "spike_min_cycles":
		cfg.SpikeMinCycles = uint64(v)
	case "spike_max_cycles":
		cfg.SpikeMaxCycles = uint64(v)
	case "poll_cycles":
		cfg.PollCycles = uint64(v)
	case "mlp_width":
		cfg.MLPWidth = int(v)
	case "seed":
		cfg.Seed = int64(v)
	case "dynamic_ddio_epoch":
		cfg.DynamicDDIOEpoch = uint64(v)
	case "obs_sample_cycles":
		cfg.ObsSampleCycles = uint64(v)
	case "shards":
		cfg.Shards = int(v)
	case "nebula_drop_depth":
		cfg.NeBuLaDropDepth = int(v)
	case "sample_detailed_cycles":
		cfg.Sampling.DetailedCycles = uint64(v)
	case "sample_ff_cycles":
		cfg.Sampling.FastForwardCycles = uint64(v)
	case "sample_intervals":
		cfg.Sampling.Intervals = int(v)
	case "sample_max_intervals":
		cfg.Sampling.MaxIntervals = int(v)
	case "sample_warmup_window":
		cfg.Sampling.WarmupWindowCycles = uint64(v)
	case "sample_warmup_tol":
		cfg.Sampling.WarmupMetricTol = v
	case "sample_warmup_windows":
		cfg.Sampling.WarmupWindows = int(v)
	case "sample_max_rel_ci":
		cfg.Sampling.MaxRelCI = v
	case "partition_split":
		// The §VI-E disjoint partition: the NIC and networked cores get
		// the first n LLC ways, collocated tenants the rest.
		n := int(v)
		if n <= 0 || n >= cfg.Cache.LLCWays {
			return fmt.Errorf("scenario: partition_split %d outside (0,%d)", n, cfg.Cache.LLCWays)
		}
		cfg.NICWayMask = cache.MaskAll(n)
		cfg.NetCPUWayMask = cache.MaskAll(n)
		cfg.XMemWayMask = cache.MaskRange(n, cfg.Cache.LLCWays)
	default:
		return fmt.Errorf("scenario: unknown knob %q", knob)
	}
	return nil
}

// baseConfig builds the spec's machine configuration before axes and
// variants: Table I defaults overlaid with the spec's knobs.
func (s Spec) baseConfig() (machine.Config, error) {
	cfg := machine.DefaultConfig()
	if s.Machine.Workload != "" {
		cfg.Workload = s.Machine.Workload
	}
	if s.Machine.XMemWorkload != "" {
		cfg.XMemWorkload = s.Machine.XMemWorkload
	}
	if s.Machine.SampleMode != "" {
		cfg.Sampling.Mode = s.Machine.SampleMode
	}
	if s.Machine.WarmLLC != nil {
		cfg.WarmLLC = *s.Machine.WarmLLC
	}
	for knob, v := range s.Machine.Set {
		if err := applyKnob(&cfg, knob, v); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// Config expands a sweepless view of the scenario: the base machine with
// optional extra knob overrides, no variant applied. Harnesses use it to
// derive one-off configurations from a shipped scenario.
func (s Spec) Config(overrides map[string]float64) (machine.Config, error) {
	cfg, err := s.baseConfig()
	if err != nil {
		return cfg, err
	}
	for knob, v := range overrides {
		if err := applyKnob(&cfg, knob, v); err != nil {
			return cfg, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Expand crosses the sweep axes (outermost-first) with the variants
// (innermost) into the scenario's full run list, validating every resulting
// configuration. A sweepless spec yields one run per variant; a variantless
// spec runs each point as configured.
func (s Spec) Expand() ([]Run, error) {
	base, err := s.baseConfig()
	if err != nil {
		return nil, err
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}

	var runs []Run
	var walk func(axis int, labels []string, cfg machine.Config) error
	walk = func(axis int, labels []string, cfg machine.Config) error {
		if axis == len(s.Sweep) {
			for _, v := range variants {
				final, err := v.Apply(cfg)
				if err != nil {
					return err
				}
				if err := final.Validate(); err != nil {
					return fmt.Errorf("scenario %q, param %q, variant %q: %w",
						s.Name, strings.Join(labels, "/"), v.DisplayName(), err)
				}
				runs = append(runs, Run{
					Param:           strings.Join(labels, "/"),
					Variant:         v,
					Config:          final,
					ClosedLoopDepth: final.ClosedLoopDepth,
				})
			}
			return nil
		}
		ax := s.Sweep[axis]
		for _, pt := range ax.Points {
			c := cfg
			for knob, v := range pt.Set {
				if err := applyKnob(&c, knob, v); err != nil {
					return fmt.Errorf("scenario %q, axis %d point %q: %w", s.Name, axis, pt.Label, err)
				}
			}
			if err := walk(axis+1, append(labels, pt.Label), c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0, nil, base); err != nil {
		return nil, err
	}
	return runs, nil
}

// Validate checks the spec structurally and expands it, so every swept
// configuration is vetted by machine validation before any simulation runs.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	for i, ax := range s.Sweep {
		if len(ax.Points) == 0 {
			return fmt.Errorf("scenario %q: axis %d has no points", s.Name, i)
		}
		for j, pt := range ax.Points {
			if pt.Label == "" {
				return fmt.Errorf("scenario %q: axis %d point %d has no label", s.Name, i, j)
			}
		}
	}
	for _, v := range s.Variants {
		if v.Mode == "" {
			continue
		}
		if _, err := v.NICMode(); err != nil {
			return err
		}
	}
	_, err := s.Expand()
	return err
}
