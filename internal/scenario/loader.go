package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Load parses and validates a scenario spec from JSON. Unknown fields are
// rejected, so typos in knob structure fail loudly instead of silently
// running the default machine.
func Load(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	// A second document in the stream is almost certainly a mistake.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadFile reads and validates a scenario spec file.
func LoadFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal renders a spec as indented JSON, as shipped under
// examples/scenarios/.
func Marshal(s Spec) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return buf.Bytes(), nil
}
