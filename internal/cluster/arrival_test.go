package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sweeper/internal/machine"
	"sweeper/internal/nic"
)

// TestOneNodeClusterMatchesStandalonePerArrival extends the one-node
// anchor to every registered arrival process: the front end drives the
// same registered generator the standalone machine uses, with a rng-free
// inject path, so a one-node rack must stay draw-for-draw identical no
// matter the process. The registry walk fails when a new process ships
// without a case here.
func TestOneNodeClusterMatchesStandalonePerArrival(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "cluster.bin")
	recs := make([]nic.TraceRecord, 3000)
	for i := range recs {
		recs[i] = nic.TraceRecord{Cycles: uint64(i * 140), Bytes: 512, Flow: uint32(i % 17)}
	}
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nic.WriteTraceBinary(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	arrivals := map[string]nic.ArrivalConfig{
		nic.ArrivalPoisson: {
			DiurnalPeriodCycles: 150_000,
			DiurnalAmplitude:    0.3,
			Flows:               48,
		},
		nic.ArrivalMMPP: {
			Process:          nic.ArrivalMMPP,
			BurstRatio:       5,
			BurstDwellCycles: 60_000,
		},
		nic.ArrivalTrace: {
			Process:   nic.ArrivalTrace,
			TracePath: tracePath,
		},
	}
	for _, name := range nic.ArrivalNames() {
		acfg, ok := arrivals[name]
		if !ok {
			t.Errorf("registered arrival process %q has no one-node equality case; add one here", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			node := quickNode()
			node.Arrival = acfg
			want := machine.MustNew(node).Run(400_000, 300_000)
			if want.Offered == 0 {
				t.Fatal("standalone machine saw no arrivals")
			}

			cl := MustNew(Config{Node: node, Nodes: 1})
			r := cl.Run(400_000, 300_000)
			if !reflect.DeepEqual(r.Nodes[0], want) {
				t.Fatalf("one-node cluster diverged from standalone machine:\n  cluster:    %+v\n  standalone: %+v",
					r.Nodes[0], want)
			}
		})
	}
}

// TestClusterMMPPSpreadsNodes sanity-checks a bursty multi-node rack: the
// front end's single modulated generator sprays all nodes and every node
// sees traffic.
func TestClusterMMPPSpreadsNodes(t *testing.T) {
	cfg := quickCluster(4)
	cfg.Node.Arrival = nic.ArrivalConfig{Process: nic.ArrivalMMPP, BurstRatio: 6}
	cl := MustNew(cfg)
	r := cl.Run(300_000, 200_000)
	if r.Offered == 0 {
		t.Fatal("no offered load")
	}
	for i, nr := range r.Nodes {
		if nr.Offered == 0 {
			t.Errorf("node %d saw no arrivals", i)
		}
	}
}
