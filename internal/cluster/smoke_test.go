package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"sweeper/internal/obs"
)

// TestClusterManifestSmoke validates a cluster run's manifest. When
// SWEEPER_CLUSTER_MANIFEST is set (the `make cluster-smoke` path), it
// checks the manifest the sweepersim CLI wrote for the shipped cluster
// scenario; otherwise it generates its own from a short in-process rack
// run, so the manifest contract is also guarded under plain `go test`.
func TestClusterManifestSmoke(t *testing.T) {
	var data []byte
	if path := os.Getenv("SWEEPER_CLUSTER_MANIFEST"); path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data = b
	} else {
		cl := MustNew(quickCluster(2))
		r := cl.Run(150_000, 100_000)
		var buf bytes.Buffer
		if err := obs.WriteManifest(&buf, cl.BuildManifest("cluster smoke", r)); err != nil {
			t.Fatal(err)
		}
		data = buf.Bytes()
	}

	var man struct {
		Config struct {
			Nodes int `json:"Nodes"`
		} `json:"config"`
		Results struct {
			Nodes          []json.RawMessage `json:"Nodes"`
			ThroughputMrps float64           `json:"ThroughputMrps"`
			RemoteReads    uint64            `json:"RemoteReads"`
		} `json:"results"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("cluster manifest does not parse: %v", err)
	}
	if man.Config.Nodes < 2 {
		t.Fatalf("manifest config has %d nodes, want a real cluster", man.Config.Nodes)
	}
	if len(man.Results.Nodes) != man.Config.Nodes {
		t.Fatalf("manifest has %d node windows for %d nodes", len(man.Results.Nodes), man.Config.Nodes)
	}
	if man.Results.ThroughputMrps <= 0 {
		t.Error("manifest reports no throughput")
	}
	if man.Results.RemoteReads == 0 {
		t.Error("manifest reports no remote reads despite a sharded workload")
	}
	if len(man.Metrics) == 0 {
		t.Fatal("manifest has no closing metric values")
	}
	// Per-node namespacing for every node, plus fabric and balancer views.
	for i := 0; i < man.Config.Nodes; i++ {
		for _, suffix := range []string{"cpu.served", "mem.reads"} {
			key := fmt.Sprintf("node%d.%s", i, suffix)
			if _, ok := man.Metrics[key]; !ok {
				t.Errorf("manifest missing per-node metric %q", key)
			}
		}
	}
	for _, key := range []string{"fabric.messages", "fabric.tx_bytes", "fabric.drops", "cluster.remote_reads", "lb.node0.offered"} {
		if _, ok := man.Metrics[key]; !ok {
			t.Errorf("manifest missing %q", key)
		}
	}
}
