// Package cluster scales the simulator from one machine to a rack: N
// machine.Machine nodes share one event engine, a fabric models the
// interconnect between them, a load-balancer front end sprays the open-loop
// arrival process across the nodes, and cluster-aware workloads shard their
// primary structure so some application reads cross the fabric into a remote
// node's memory.
//
// Determinism carries over unchanged from the single machine: the shared
// engine dispatches in canonical (cycle, seq) order at every shard count, so
// synchronous cross-node state — the fabric's link cursors, a remote node's
// cache hierarchy — is touched in one global order and Results are
// bit-identical between sequential and core-sharded runs. A one-node cluster
// reproduces the standalone machine's Results exactly (locked by test),
// which anchors every cluster result to the committed single-node figures.
package cluster

import (
	"fmt"

	"sweeper/internal/addr"
	"sweeper/internal/fabric"
	"sweeper/internal/machine"
	"sweeper/internal/obs"
	"sweeper/internal/sim"
)

// Remote-memory message sizes: a read request carries a header line; the
// response carries the header plus the requested line.
const (
	remoteReqBytes  = 64
	remoteRespBytes = 64 + addr.LineBytes
)

// Cluster is an assembled rack. Like a Machine, a Cluster runs exactly
// once; build a fresh one per configuration probe.
type Cluster struct {
	cfg   Config
	eng   *sim.Engine
	fab   *fabric.Fabric
	nodes []*machine.Machine
	fe    *frontend // nil under closed-loop traffic

	remoteReads uint64

	metrics                 *obs.Registry
	lastWarmup, lastMeasure uint64
}

// New assembles a cluster: shared engine (sharded for the whole rack's
// cores), fabric, front end, then the nodes in id order so their identical
// per-node layouts allocate the same local addresses everywhere.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, _ := fabric.ParseTopology(cfg.Topology)
	pol, _ := NewPolicy(cfg.LBPolicy)

	eng := sim.NewEngine()
	totalCores := cfg.Nodes * (cfg.Node.NetCores + cfg.Node.XMemCores)
	eng.ConfigureShards(cfg.Node.EngineShards(totalCores), cfg.Node.LookaheadCycles())

	cl := &Cluster{
		cfg: cfg,
		eng: eng,
		fab: fabric.New(cfg.Nodes, topo, cfg.fabricConfig(), cfg.Node.FreqHz),
	}
	openLoop := cfg.Node.ClosedLoopDepth <= 0
	if openLoop {
		fe, err := newFrontend(eng, &cfg, pol)
		if err != nil {
			return nil, err
		}
		cl.fe = fe
	}

	cl.nodes = make([]*machine.Machine, cfg.Nodes)
	for i := range cl.nodes {
		ncfg := cfg.Node
		ncfg.NodeID = i
		ncfg.ClusterNodes = cfg.Nodes
		if i > 0 {
			// Distinct decorrelated seeds per node; node 0 keeps the
			// template's, anchoring the one-node identity with a
			// standalone machine.
			ncfg.Seed = cfg.Node.Seed + int64(i)*7919
		}
		var opts machine.NodeOptions
		if openLoop {
			slot := &cl.fe.offered[i]
			opts = machine.NodeOptions{
				ExternalTraffic: true,
				Offered:         func() uint64 { return *slot },
			}
		}
		m, err := machine.NewNode(ncfg, eng, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		cl.nodes[i] = m
	}
	if cl.fe != nil {
		cl.fe.wire(cl.nodes)
	}
	for i, m := range cl.nodes {
		self := i
		m.SetRemoteAccess(func(now uint64, _ int, a uint64, write bool) uint64 {
			return cl.remoteAccess(self, now, a, write)
		})
	}
	return cl, nil
}

// MustNew is New, panicking on configuration errors.
func MustNew(cfg Config) *Cluster {
	cl, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return cl
}

// remoteAccess serves one application access to memory homed on another
// node: a request message to the home, the read (or dirtying write) through
// the home's cache hierarchy into its DRAM, and the response line back.
// Both legs ride the reliable fabric path — the remote-memory protocol is
// lossless, paying retransmit backoff under congestion.
func (cl *Cluster) remoteAccess(self int, now uint64, a uint64, write bool) uint64 {
	home, local := addr.RemoteParts(a)
	if home == self || home >= len(cl.nodes) {
		panic(fmt.Sprintf("cluster: node %d asked for remote address %#x homed on node %d", self, a, home))
	}
	cl.remoteReads++
	t := cl.fab.SendReliable(now, self, home, remoteReqBytes)
	t = cl.nodes[home].Hierarchy().RemoteRead(t, local, write)
	return cl.fab.SendReliable(t, home, self, remoteRespBytes)
}

// Results aggregates one measurement window across the rack. Per-node
// windows are kept whole in Nodes; the top-level fields are the rack-wide
// sums (throughput, bandwidth, drops) and maxima (tail latency) the
// experiment tables plot.
type Results struct {
	// Nodes holds each node's own window, in node-id order.
	Nodes []machine.Results
	// MeasuredCycles is the shared window length.
	MeasuredCycles uint64
	// Served/Offered/Dropped sum the rack's request counters;
	// ThroughputMrps and MemBWGBps sum the per-node rates.
	Served         uint64
	Offered        uint64
	Dropped        uint64
	ThroughputMrps float64
	MemBWGBps      float64
	DropRate       float64
	// ReqLatP99Max is the worst per-node p99 request latency — the
	// rack's tail is its slowest node's tail.
	ReqLatP99Max uint64
	// RemoteReads counts fabric-crossing application accesses in the
	// window; Fabric the interconnect's message/byte/drop/retry deltas.
	RemoteReads uint64
	Fabric      fabric.Stats
}

func (r Results) String() string {
	return fmt.Sprintf("%d nodes: %.2f Mrps, %.1f GB/s, drop %.4f, worst p99 %dcyc, %d remote reads",
		len(r.Nodes), r.ThroughputMrps, r.MemBWGBps, r.DropRate, r.ReqLatP99Max, r.RemoteReads)
}

// Run executes the rack for warmup cycles, then measures for measure
// cycles. All nodes start, warm up and measure on the shared clock; the
// front end starts in node 0's generator slot.
func (cl *Cluster) Run(warmup, measure uint64) Results {
	cl.lastWarmup, cl.lastMeasure = warmup, measure
	var startGen func()
	if cl.fe != nil {
		startGen = cl.fe.Start
	}
	for i, m := range cl.nodes {
		if i == 0 {
			m.StartNode(warmup, measure, startGen)
		} else {
			m.StartNode(warmup, measure, nil)
		}
	}
	cl.eng.RunUntil(warmup)
	for _, m := range cl.nodes {
		m.BeginWindow()
	}
	fabSnap := cl.fab.Stats()
	remoteSnap := cl.remoteReads

	cl.eng.RunUntil(warmup + measure)
	r := Results{
		Nodes:          make([]machine.Results, 0, len(cl.nodes)),
		MeasuredCycles: measure,
		RemoteReads:    cl.remoteReads - remoteSnap,
		Fabric:         cl.fab.Stats().Sub(fabSnap),
	}
	for _, m := range cl.nodes {
		nr := m.EndWindow(measure)
		r.Nodes = append(r.Nodes, nr)
		r.Served += nr.Served
		r.Offered += nr.Offered
		r.Dropped += nr.Dropped
		r.ThroughputMrps += nr.ThroughputMrps
		r.MemBWGBps += nr.MemBWGBps
		if nr.ReqLatP99 > r.ReqLatP99Max {
			r.ReqLatP99Max = nr.ReqLatP99
		}
	}
	if r.Offered > 0 {
		r.DropRate = float64(r.Dropped) / float64(r.Offered)
	}
	return r
}

// Accessors for tests and the experiment harness.

// Config returns the cluster's configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

// Engine returns the shared event engine.
func (cl *Cluster) Engine() *sim.Engine { return cl.eng }

// Fabric returns the interconnect model.
func (cl *Cluster) Fabric() *fabric.Fabric { return cl.fab }

// Node returns one node's machine.
func (cl *Cluster) Node(i int) *machine.Machine { return cl.nodes[i] }

// NumNodes returns the rack size.
func (cl *Cluster) NumNodes() int { return len(cl.nodes) }

// RemoteReads returns the cumulative fabric-crossing access count.
func (cl *Cluster) RemoteReads() uint64 { return cl.remoteReads }

// Metrics returns the rack's observability registry: every node's metrics
// under a "nodeN." prefix, the fabric's counters, the balancer's per-node
// spray and the remote-memory counter, all on one shared registry so a
// single sampler or manifest covers the rack.
func (cl *Cluster) Metrics() *obs.Registry {
	if cl.metrics == nil {
		r := obs.NewRegistry()
		for i, m := range cl.nodes {
			m.RegisterMetrics(r.Sub(fmt.Sprintf("node%d.", i)))
		}
		cl.fab.RegisterMetrics(r)
		r.Counter("cluster.remote_reads", func() uint64 { return cl.remoteReads })
		if cl.fe != nil {
			cl.fe.RegisterMetrics(r)
		}
		cl.metrics = r
	}
	return cl.metrics
}

// BuildManifest assembles the machine-readable record of a completed rack
// run, mirroring machine.BuildManifest: configuration, aggregated results,
// and the closing value of every per-node, fabric and balancer metric.
func (cl *Cluster) BuildManifest(label string, r Results) *obs.Manifest {
	reg := cl.Metrics()
	return &obs.Manifest{
		Label:        label,
		WarmupCycles: cl.lastWarmup,
		MeasureCyc:   cl.lastMeasure,
		Config:       cl.cfg,
		Results:      r,
		Metrics:      reg.Final(cl.eng.Now()),
		Histograms:   reg.HistogramSummaries(),
	}
}
