package cluster

import (
	"reflect"
	"testing"

	"sweeper/internal/machine"
)

// quickNode returns a fast-to-simulate per-node configuration, matching
// the machine package's quick test configuration.
func quickNode() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.OfferedMrps = 8
	return cfg
}

func quickCluster(nodes int) Config {
	return Config{Node: quickNode(), Nodes: nodes}
}

// TestConfigValidate is the cluster-knob validation table: node counts,
// policy names resolved against the registry, fabric sizing and the
// sampling exclusion.
func TestConfigValidate(t *testing.T) {
	cases := map[string]func(*Config){
		"zero nodes":       func(c *Config) { c.Nodes = 0 },
		"negative nodes":   func(c *Config) { c.Nodes = -3 },
		"unknown policy":   func(c *Config) { c.LBPolicy = "coin-flip" },
		"unknown topology": func(c *Config) { c.Topology = "torus" },
		"bad fabric bw":    func(c *Config) { c.Fabric.LinkGBps = -1 },
		"sampling":         func(c *Config) { c.Node.Sampling.Mode = "smarts" },
		"bad node":         func(c *Config) { c.Node.NetCores = 0 },
	}
	for name, mutate := range cases {
		cfg := quickCluster(4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := quickCluster(4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, pol := range PolicyNames() {
		cfg := quickCluster(2)
		cfg.LBPolicy = pol
		if err := cfg.Validate(); err != nil {
			t.Errorf("registered policy %q rejected: %v", pol, err)
		}
	}
}

// TestOneNodeClusterMatchesStandalone anchors the whole cluster layer to
// the committed single-machine results: a one-node rack must produce a
// node window bit-identical to the standalone machine built from the same
// template — same rng draws, same event sequence, same counters and CDFs.
func TestOneNodeClusterMatchesStandalone(t *testing.T) {
	cfg := quickNode()
	want := machine.MustNew(cfg).Run(400_000, 300_000)

	cl := MustNew(quickCluster(1))
	r := cl.Run(400_000, 300_000)
	if len(r.Nodes) != 1 {
		t.Fatalf("one-node cluster reported %d node windows", len(r.Nodes))
	}
	if !reflect.DeepEqual(r.Nodes[0], want) {
		t.Fatalf("one-node cluster diverged from standalone machine:\n  cluster:    %+v\n  standalone: %+v", r.Nodes[0], want)
	}
	if r.RemoteReads != 0 || r.Fabric.Messages != 0 {
		t.Fatalf("one-node cluster touched the fabric: %d remote reads, %+v", r.RemoteReads, r.Fabric)
	}
	if r.Served != want.Served || r.ThroughputMrps != want.ThroughputMrps {
		t.Fatalf("aggregate (%d, %g) disagrees with the single node (%d, %g)",
			r.Served, r.ThroughputMrps, want.Served, want.ThroughputMrps)
	}
}

// TestClusterDeterministicAcrossShards locks the parallel-engine contract
// at rack scale: a four-node cluster's Results must be bit-identical
// whether the shared engine runs sequentially or sharded.
func TestClusterDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) Results {
		cfg := quickCluster(4)
		cfg.Node.Shards = shards
		return MustNew(cfg).Run(300_000, 200_000)
	}
	ref := run(1)
	if ref.Served == 0 {
		t.Fatal("cluster served nothing")
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); !reflect.DeepEqual(got, ref) {
			t.Fatalf("shards=%d diverged from sequential:\n  got: %+v\n  ref: %+v", shards, got, ref)
		}
	}
}

// TestClusterRemoteMemoryPath checks a multi-node KVS rack actually
// exercises the fabric: sharded logs force remote GETs, which show up in
// the remote-read counter, the fabric's message counters and the manifest
// metrics.
func TestClusterRemoteMemoryPath(t *testing.T) {
	cl := MustNew(quickCluster(4))
	r := cl.Run(300_000, 200_000)
	if r.Served == 0 {
		t.Fatal("rack served nothing")
	}
	if r.RemoteReads == 0 {
		t.Fatal("sharded KVS run crossed the fabric zero times")
	}
	if r.Fabric.Messages == 0 || r.Fabric.Bytes == 0 {
		t.Fatalf("fabric stats empty despite %d remote reads: %+v", r.RemoteReads, r.Fabric)
	}
	// Request and response legs: at least two messages per remote read.
	if r.Fabric.Messages < 2*r.RemoteReads {
		t.Fatalf("%d fabric messages for %d remote reads, want >= 2x", r.Fabric.Messages, r.RemoteReads)
	}

	man := cl.BuildManifest("test", r)
	for _, key := range []string{"node0.cpu.served", "node3.cpu.served", "fabric.messages", "cluster.remote_reads", "lb.node0.offered"} {
		if _, ok := man.Metrics[key]; !ok {
			t.Errorf("manifest missing %q", key)
		}
	}
	if man.Metrics["cluster.remote_reads"] == 0 {
		t.Error("manifest remote-read counter is zero")
	}
	var served float64
	for _, key := range []string{"node0.cpu.served", "node1.cpu.served", "node2.cpu.served", "node3.cpu.served"} {
		served += man.Metrics[key]
	}
	if served == 0 {
		t.Error("per-node served metrics all zero")
	}
}

// TestPolicies pins each registered policy's selection behaviour.
func TestPolicies(t *testing.T) {
	flat := func(int) int { return 0 }

	rr, _ := NewPolicy("round-robin")
	for i := 0; i < 8; i++ {
		if got := rr.Pick(uint64(i*997), 4, flat); got != i%4 {
			t.Fatalf("round-robin pick %d = %d, want %d", i, got, i%4)
		}
	}

	fh, _ := NewPolicy("flow-hash")
	seen := map[int]bool{}
	for tag := uint64(0); tag < 256; tag++ {
		n := fh.Pick(tag, 4, flat)
		if n < 0 || n >= 4 {
			t.Fatalf("flow-hash out of range: %d", n)
		}
		if n != fh.Pick(tag, 4, flat) {
			t.Fatal("flow-hash not deterministic per tag")
		}
		seen[n] = true
	}
	if len(seen) != 4 {
		t.Fatalf("flow-hash covered %d of 4 nodes over 256 tags", len(seen))
	}

	ll, _ := NewPolicy("least-loaded")
	loads := []int{5, 2, 9, 2}
	if got := ll.Pick(1, 4, func(n int) int { return loads[n] }); got != 1 {
		t.Fatalf("least-loaded picked %d, want 1 (lowest id among ties)", got)
	}

	if _, err := NewPolicy(""); err != nil {
		t.Fatalf("empty policy name rejected: %v", err)
	}
	if _, err := NewPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestLBPoliciesRunAndBalance runs a short rack under each policy and
// checks every node receives traffic.
func TestLBPoliciesRunAndBalance(t *testing.T) {
	for _, pol := range PolicyNames() {
		cfg := quickCluster(2)
		cfg.LBPolicy = pol
		cl := MustNew(cfg)
		r := cl.Run(200_000, 150_000)
		for i, nr := range r.Nodes {
			if nr.Offered == 0 {
				t.Errorf("%s: node %d offered nothing", pol, i)
			}
		}
		if r.Served == 0 {
			t.Errorf("%s: rack served nothing", pol)
		}
	}
}

// TestClusterRunsOnce locks the one-shot contract at rack scale.
func TestClusterRunsOnce(t *testing.T) {
	cl := MustNew(quickCluster(1))
	cl.Run(100_000, 50_000)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	cl.Run(100_000, 50_000)
}
