package cluster

import (
	"fmt"

	"sweeper/internal/addr"
	"sweeper/internal/fabric"
	"sweeper/internal/machine"
)

// Config assembles a rack: Nodes homogeneous machines built from the Node
// template, joined by a fabric, fed by a load-balancer front end.
type Config struct {
	// Node is the per-node machine configuration. The cluster stamps
	// NodeID/ClusterNodes itself and derives node i's seed as
	// Node.Seed + i*7919, so node 0 of a one-node cluster runs exactly
	// the standalone machine Node describes. OfferedMrps is per-node:
	// the front end injects Nodes times that rate across the rack.
	Node machine.Config
	// Nodes is the rack size; 1 is a valid (degenerate) cluster.
	Nodes int
	// Topology selects the fabric wiring ("star", "mesh"; empty = star).
	Topology string
	// LBPolicy names the front end's node-selection policy from the
	// policy registry (empty = DefaultPolicy). Ignored under closed-loop
	// traffic, where every node keeps its own generator.
	LBPolicy string
	// Fabric sizes the interconnect; the zero value selects
	// fabric.DefaultConfig.
	Fabric fabric.Config
}

// fabricConfig resolves the zero-value default.
func (c *Config) fabricConfig() fabric.Config {
	if c.Fabric == (fabric.Config{}) {
		return fabric.DefaultConfig()
	}
	return c.Fabric
}

// Validate reports configuration errors before assembly.
func (c *Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	}
	if c.Nodes > addr.MaxNodes {
		return fmt.Errorf("cluster: %d nodes exceeds the %d the remote-address encoding carries", c.Nodes, addr.MaxNodes)
	}
	if _, err := fabric.ParseTopology(c.Topology); err != nil {
		return err
	}
	if _, err := NewPolicy(c.LBPolicy); err != nil {
		return err
	}
	if err := c.fabricConfig().Validate(); err != nil {
		return err
	}
	if c.Node.Sampling.Enabled() {
		return fmt.Errorf("cluster: sampled simulation is not supported on cluster nodes")
	}
	node := c.Node
	node.NodeID, node.ClusterNodes = 0, 0
	if err := node.Validate(); err != nil {
		return fmt.Errorf("cluster: node config: %w", err)
	}
	return nil
}
