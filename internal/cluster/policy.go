package cluster

import (
	"fmt"
	"sort"
)

// Policy picks the destination node for each request the load-balancer
// front end injects. Implementations must be deterministic functions of
// their own state and the arguments — no randomness — so cluster runs are
// bit-identical at every engine shard count and a one-node cluster
// reproduces a standalone machine exactly.
type Policy interface {
	// Pick returns the node in [0, nodes) to receive the request with
	// the given tag. load reports a node's instantaneous NIC queue
	// depth, for load-aware policies.
	Pick(tag uint64, nodes int, load func(node int) int) int
}

// DefaultPolicy is the policy an empty name selects: hashing the request
// tag keeps each flow on one node without tracking any state.
const DefaultPolicy = "flow-hash"

// policies is the registry scenario knobs and flags resolve against; new
// policies plug in here without touching the front end.
var policies = map[string]func() Policy{
	"round-robin":  func() Policy { return &roundRobin{} },
	"flow-hash":    func() Policy { return flowHash{} },
	"least-loaded": func() Policy { return leastLoaded{} },
}

// NewPolicy builds the named policy; the empty name selects DefaultPolicy.
func NewPolicy(name string) (Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	mk, ok := policies[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown lb_policy %q (have %v)", name, PolicyNames())
	}
	return mk(), nil
}

// PolicyNames lists the registered policies, sorted, for error messages
// and validation.
func PolicyNames() []string {
	names := make([]string, 0, len(policies))
	for n := range policies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// roundRobin cycles through the nodes in order, ignoring tags and load.
type roundRobin struct{ next uint64 }

func (p *roundRobin) Pick(_ uint64, nodes int, _ func(int) int) int {
	n := int(p.next % uint64(nodes))
	p.next++
	return n
}

// flowHash mixes the request tag so every flow consistently lands on one
// node with a near-uniform spread.
type flowHash struct{}

func (flowHash) Pick(tag uint64, nodes int, _ func(int) int) int {
	return int(mix64(tag) % uint64(nodes))
}

// leastLoaded sends each request to the node with the fewest queued
// packets, lowest id on ties.
type leastLoaded struct{}

func (leastLoaded) Pick(_ uint64, nodes int, load func(int) int) int {
	best, bestLoad := 0, load(0)
	for n := 1; n < nodes; n++ {
		if l := load(n); l < bestLoad {
			best, bestLoad = n, l
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer, the same mixing the workloads use for
// tag-deterministic decisions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}
