package cluster

import (
	"fmt"

	"sweeper/internal/machine"
	"sweeper/internal/nic"
	"sweeper/internal/obs"
	"sweeper/internal/sim"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// frontend is the cluster's load balancer: one open-loop arrival process
// for the whole rack, with a pluggable Policy choosing the destination node
// per request. The process itself is the node template's registered
// generator (Poisson, MMPP, trace replay, ...) built at the rack-wide rate
// with the template's seed, so it mirrors a standalone machine's generator
// draw for draw — the only difference is the inject hook, which picks a
// node before the packet lands. Policies are rng-free by contract, so the
// mirroring survives any node choice, and a one-node cluster injects the
// exact packet sequence the standalone machine's own generator would for
// every registered process.
type frontend struct {
	nodes []*machine.Machine
	pol   Policy
	gen   nic.ArrivalGen

	// offered counts injection attempts per node; each node's machine
	// reads its own slot in place of a suppressed local generator.
	offered []uint64
}

func newFrontend(eng *sim.Engine, cfg *Config, pol Policy) (*frontend, error) {
	fe := &frontend{
		pol:     pol,
		offered: make([]uint64, cfg.Nodes),
	}
	spec := nic.ArrivalSpec{
		Cores:   cfg.Node.NetCores,
		Size:    cfg.Node.PacketBytes,
		MeanGap: stats.CyclesPerSecond(cfg.Node.OfferedMrps*1e6*float64(cfg.Nodes), cfg.Node.FreqHz),
		Seed:    cfg.Node.Seed,
		Config:  cfg.Node.Arrival,
	}
	gen, err := nic.NewArrival(eng, spec, fe.inject)
	if err != nil {
		return nil, fmt.Errorf("cluster: front end: %w", err)
	}
	fe.gen = gen
	return fe, nil
}

// inject is the front end's InjectFunc: route the generated arrival to a
// node by policy, then land it in that node's NIC. It draws nothing from
// the generator's rng, preserving the standalone draw order.
func (fe *frontend) inject(now uint64, core int, size uint64, tag uint64) {
	node := fe.pol.Pick(tag, len(fe.nodes), fe.load)
	fe.offered[node]++
	fe.nodes[node].NIC().Inject(now, core, size, tag)
}

// wire attaches the built nodes and lifts the workload's request sizer
// (RequestBytes is a pure function of the tag, so any node's instance
// serves).
func (fe *frontend) wire(nodes []*machine.Machine) {
	fe.nodes = nodes
	if s, ok := nodes[0].Workload().(workload.RequestSizer); ok {
		fe.gen.SetSizer(s.RequestBytes)
	}
}

// Start schedules the first arrival. The cluster runs it in node 0's
// generator slot (machine.StartNode startGen), so the event's sequence
// number matches a standalone machine's generator start.
func (fe *frontend) Start() { fe.gen.Start() }

// Stop halts generation after any already-scheduled arrival.
func (fe *frontend) Stop() { fe.gen.Stop() }

func (fe *frontend) load(node int) int {
	return fe.nodes[node].NIC().TotalQueued()
}

// Offered sums injection attempts across the rack.
func (fe *frontend) Offered() uint64 {
	var t uint64
	for _, o := range fe.offered {
		t += o
	}
	return t
}

// RegisterMetrics exposes the balancer's per-node spray counters.
func (fe *frontend) RegisterMetrics(r *obs.Registry) {
	for i := range fe.offered {
		i := i
		r.Counter(fmt.Sprintf("lb.node%d.offered", i), func() uint64 { return fe.offered[i] })
	}
}
