package cluster

import (
	"fmt"
	"math/rand"

	"sweeper/internal/machine"
	"sweeper/internal/obs"
	"sweeper/internal/sim"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// frontend is the cluster's load balancer: one open-loop Poisson arrival
// process for the whole rack, with a pluggable Policy choosing the
// destination node per request. It mirrors nic.PoissonGen draw for draw —
// same rng seed, same ExpFloat64/Intn/Uint64 order per arrival — so a
// one-node cluster injects the exact packet sequence the standalone
// machine's own generator would, and Results stay bit-identical. Policies
// are rng-free by contract, so the mirroring survives any node choice.
type frontend struct {
	eng     *sim.Engine
	nodes   []*machine.Machine
	pol     Policy
	rng     *rand.Rand
	meanGap float64 // cycles between arrivals across the whole rack
	size    uint64
	sizer   func(tag uint64) uint64
	cores   int // arrivals target rings [0, cores) on the chosen node
	stopped bool

	// offered counts injection attempts per node; each node's machine
	// reads its own slot in place of a suppressed local generator.
	offered []uint64
}

func newFrontend(eng *sim.Engine, cfg *Config, pol Policy) *frontend {
	return &frontend{
		eng:     eng,
		pol:     pol,
		rng:     rand.New(rand.NewSource(cfg.Node.Seed)),
		meanGap: stats.CyclesPerSecond(cfg.Node.OfferedMrps*1e6*float64(cfg.Nodes), cfg.Node.FreqHz),
		size:    cfg.Node.PacketBytes,
		cores:   cfg.Node.NetCores,
		offered: make([]uint64, cfg.Nodes),
	}
}

// wire attaches the built nodes and lifts the workload's request sizer
// (RequestBytes is a pure function of the tag, so any node's instance
// serves).
func (fe *frontend) wire(nodes []*machine.Machine) {
	fe.nodes = nodes
	if s, ok := nodes[0].Workload().(workload.RequestSizer); ok {
		fe.sizer = s.RequestBytes
	}
}

// Start schedules the first arrival. The cluster runs it in node 0's
// generator slot (machine.StartNode startGen), so the event's sequence
// number matches a standalone machine's generator start.
func (fe *frontend) Start() { fe.scheduleNext() }

// Stop halts generation after any already-scheduled arrival.
func (fe *frontend) Stop() { fe.stopped = true }

// OnEvent implements sim.Sink.
func (fe *frontend) OnEvent(now sim.Cycle, _ uint64) { fe.arrive(now) }

func (fe *frontend) scheduleNext() {
	gap := fe.rng.ExpFloat64() * fe.meanGap
	fe.eng.ScheduleAfter(uint64(gap), fe, 0)
}

func (fe *frontend) arrive(now uint64) {
	if fe.stopped {
		return
	}
	core := fe.rng.Intn(fe.cores)
	tag := fe.rng.Uint64()
	node := fe.pol.Pick(tag, len(fe.nodes), fe.load)
	fe.offered[node]++
	size := fe.size
	if fe.sizer != nil {
		size = fe.sizer(tag)
	}
	fe.nodes[node].NIC().Inject(now, core, size, tag)
	fe.scheduleNext()
}

func (fe *frontend) load(node int) int {
	return fe.nodes[node].NIC().TotalQueued()
}

// Offered sums injection attempts across the rack.
func (fe *frontend) Offered() uint64 {
	var t uint64
	for _, o := range fe.offered {
		t += o
	}
	return t
}

// RegisterMetrics exposes the balancer's per-node spray counters.
func (fe *frontend) RegisterMetrics(r *obs.Registry) {
	for i := range fe.offered {
		i := i
		r.Counter(fmt.Sprintf("lb.node%d.offered", i), func() uint64 { return fe.offered[i] })
	}
}
