package machine

import (
	"testing"

	"sweeper/internal/cache"
	"sweeper/internal/core"
	"sweeper/internal/nic"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// quickCfg returns a fast-to-simulate KVS machine configuration.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.OfferedMrps = 8
	return cfg
}

// quickRun executes a short window; integration assertions only need
// first-order behaviour, not converged steady state.
func quickRun(t *testing.T, cfg Config) Results {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run(1_000_000, 800_000)
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"no cores":         func(c *Config) { c.NetCores = 0 },
		"neg xmem":         func(c *Config) { c.XMemCores = -1 },
		"no freq":          func(c *Config) { c.FreqHz = 0 },
		"no ring":          func(c *Config) { c.RingSlots = 0 },
		"no packet":        func(c *Config) { c.PacketBytes = 0 },
		"no tx":            func(c *Config) { c.TXSlots = 0 },
		"bad ways":         func(c *Config) { c.DDIOWays = 0 },
		"ways high":        func(c *Config) { c.DDIOWays = 13 },
		"no load":          func(c *Config) { c.OfferedMrps = 0 },
		"depth too deep":   func(c *Config) { c.ClosedLoopDepth = c.RingSlots + 1 },
		"kvs needs items":  func(c *Config) { c.ItemBytes = 0 },
		"bad spike prob":   func(c *Config) { c.SpikeProb = 1.5 },
		"ring not pow2":    func(c *Config) { c.RingSlots = 1000 },
		"tx not pow2":      func(c *Config) { c.TXSlots = 100 },
		"unknown workload": func(c *Config) { c.Workload = "no-such-app" },
		"unknown stream":   func(c *Config) { c.XMemCores = 2; c.XMemWorkload = "no-such-stream" },
	}
	for name, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", name)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTableIParameters(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NetCores != 24 || cfg.FreqHz != 3.2e9 {
		t.Fatal("cores/frequency")
	}
	if cfg.Cache.LLCBytes != 36<<20 || cfg.Cache.LLCWays != 12 || cfg.Cache.LLCLat != 35 {
		t.Fatal("LLC")
	}
	if cfg.Cache.L2Bytes != 1280<<10 || cfg.Cache.L2Ways != 20 {
		t.Fatal("L2")
	}
	if cfg.Cache.L1Bytes != 48<<10 {
		t.Fatal("L1d")
	}
	if cfg.Mem.Channels != 4 || cfg.Mem.RanksPerChannel != 4 || cfg.Mem.BanksPerRank != 8 {
		t.Fatal("memory organization")
	}
	if cfg.Cache.NoCLat != 8 {
		t.Fatal("NoC")
	}
	if cfg.DDIOWays != 2 {
		t.Fatal("DDIO default ways")
	}
}

func TestMachineAccessors(t *testing.T) {
	m := MustNew(quickCfg())
	if m.Hierarchy() == nil || m.DRAM() == nil || m.NIC() == nil ||
		m.Sweeper() == nil || m.Space() == nil || m.Engine() == nil {
		t.Fatal("nil subsystem")
	}
	if _, ok := m.Workload().(*workload.KVS); !ok {
		t.Fatalf("workload wiring: %T", m.Workload())
	}
	if m.Config().NetCores != 24 {
		t.Fatal("config passthrough")
	}
}

func TestRunTwicePanics(t *testing.T) {
	m := MustNew(quickCfg())
	m.Run(1000, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	m.Run(1000, 1000)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	r1 := quickRun(t, quickCfg())
	r2 := quickRun(t, quickCfg())
	if r1.Served != r2.Served || r1.AccessCounts != r2.AccessCounts ||
		r1.ReqLatP99 != r2.ReqLatP99 {
		t.Fatalf("same seed diverged: %+v vs %+v", r1.Served, r2.Served)
	}
	cfg := quickCfg()
	cfg.Seed = 99
	r3 := quickRun(t, cfg)
	if r1.Served == r3.Served && r1.AccessCounts == r3.AccessCounts {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestThroughputTracksOfferedLoadWhenUnderloaded(t *testing.T) {
	cfg := quickCfg()
	cfg.NICMode = nic.ModeIdeal
	cfg.OfferedMrps = 6
	r := quickRun(t, cfg)
	if r.ThroughputMrps < 5 || r.ThroughputMrps > 7 {
		t.Fatalf("throughput %.2f for 6 Mrps offered", r.ThroughputMrps)
	}
	if r.DropRate != 0 {
		t.Fatal("drops while underloaded")
	}
}

func TestIdealModeHasNoNetworkDRAMTraffic(t *testing.T) {
	cfg := quickCfg()
	cfg.NICMode = nic.ModeIdeal
	r := quickRun(t, cfg)
	for _, k := range []stats.AccessKind{stats.NICRXWr, stats.NICTXRd,
		stats.CPURXRd, stats.CPUTXRdWr, stats.RXEvct, stats.TXEvct} {
		if r.AccessCounts[k] != 0 {
			t.Fatalf("ideal mode produced %s traffic: %d", k, r.AccessCounts[k])
		}
	}
}

func TestDMAModeTrafficSignature(t *testing.T) {
	cfg := quickCfg()
	cfg.NICMode = nic.ModeDMA
	cfg.OfferedMrps = 5
	r := quickRun(t, cfg)
	if r.AccessesPerRequest[stats.NICRXWr] < 5 {
		t.Fatalf("DMA NIC RX writes %.2f/req, expected every line",
			r.AccessesPerRequest[stats.NICRXWr])
	}
	if r.AccessesPerRequest[stats.CPURXRd] < 5 {
		t.Fatalf("DMA CPU RX reads %.2f/req, expected misses", r.AccessesPerRequest[stats.CPURXRd])
	}
	if r.AccessesPerRequest[stats.RXEvct] > 1 {
		t.Fatalf("DMA should not produce RX writebacks, got %.2f", r.AccessesPerRequest[stats.RXEvct])
	}
}

func TestDDIOEliminatesNICMemoryTraffic(t *testing.T) {
	r := quickRun(t, quickCfg())
	if r.AccessCounts[stats.NICRXWr] != 0 {
		t.Fatal("DDIO let NIC RX writes reach DRAM")
	}
	if r.AccessesPerRequest[stats.CPURXRd] > 1 {
		t.Fatalf("premature evictions at low load: %.2f/req", r.AccessesPerRequest[stats.CPURXRd])
	}
}

func TestSweeperEliminatesConsumedEvictions(t *testing.T) {
	base := quickRun(t, quickCfg())

	cfg := quickCfg()
	cfg.Sweeper = core.Config{RXSweep: true, IssueCyclesPerLine: 1}
	swept := quickRun(t, cfg)

	if base.AccessesPerRequest[stats.RXEvct] < 0.5 {
		t.Fatalf("baseline shows no leak to eliminate: %.2f", base.AccessesPerRequest[stats.RXEvct])
	}
	if swept.AccessesPerRequest[stats.RXEvct] > 0.05 {
		t.Fatalf("Sweeper left %.3f RX evictions/req", swept.AccessesPerRequest[stats.RXEvct])
	}
	if swept.MemBWGBps >= base.MemBWGBps {
		t.Fatalf("Sweeper did not reduce bandwidth: %.1f vs %.1f", swept.MemBWGBps, base.MemBWGBps)
	}
	if swept.Sweeper.Relinquishes == 0 || swept.Sweeper.DroppedDirtyLines == 0 {
		t.Fatal("sweeper stats empty")
	}
	if swept.SweeperSavedGBps <= 0 {
		t.Fatal("no bandwidth savings recorded")
	}
}

func TestMemSinkClassification(t *testing.T) {
	m := MustNew(quickCfg())
	sink := m.dp
	rx := m.Space().RXBase(0)
	tx := m.Space().TXBase(0)
	app := m.Workload().(*workload.KVS).LogBase()

	sink.WritebackEvict(0, rx)
	sink.WritebackEvict(0, tx)
	sink.WritebackEvict(0, app)
	sink.DMAWrite(0, rx)
	sink.DemandRead(0, rx, cache.SrcCPU)
	sink.DemandRead(0, tx, cache.SrcCPU)
	sink.DemandRead(0, app, cache.SrcCPU)
	sink.DemandRead(0, tx, cache.SrcNIC)

	want := map[stats.AccessKind]uint64{
		stats.RXEvct:     1,
		stats.TXEvct:     1,
		stats.OtherEvct:  1,
		stats.NICRXWr:    1,
		stats.CPURXRd:    1,
		stats.CPUTXRdWr:  1,
		stats.CPUOtherRd: 1,
		stats.NICTXRd:    1,
	}
	for k, n := range want {
		if m.dp.breakdown.Count(k) != n {
			t.Errorf("%v = %d, want %d", k, m.dp.breakdown.Count(k), n)
		}
	}
}

func TestBandwidthAccountingConsistency(t *testing.T) {
	r := quickRun(t, quickCfg())
	var total uint64
	for _, c := range r.AccessCounts {
		total += c
	}
	implied := stats.GBps(total, r.MeasuredCycles, 3.2e9)
	if diff := r.MemBWGBps - implied; diff > 0.01 || diff < -0.01 {
		t.Fatalf("bandwidth %.3f vs breakdown-implied %.3f", r.MemBWGBps, implied)
	}
}

func TestOverloadFillsRingsAndDrops(t *testing.T) {
	cfg := quickCfg()
	cfg.RingSlots = 32
	// Shallow rings keep the system fast (the paper's shallow-buffering
	// upside), so true overload needs a very high arrival rate.
	cfg.OfferedMrps = 250
	r := quickRun(t, cfg)
	if r.Dropped == 0 || r.DropRate == 0 {
		t.Fatal("tiny rings under overload must drop")
	}
}

func TestSpikesInflateTailLatency(t *testing.T) {
	base := quickRun(t, quickCfg())
	cfg := quickCfg()
	cfg.SpikeProb = 0.05
	cfg.SpikeMinCycles = 50_000
	cfg.SpikeMaxCycles = 50_001
	spiky := quickRun(t, cfg)
	if spiky.ReqLatP99 < base.ReqLatP99+10_000 {
		t.Fatalf("spikes did not lift p99: %d vs %d", spiky.ReqLatP99, base.ReqLatP99)
	}
}

func TestClosedLoopKeepsQueuesAndSaturates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = workload.NameL3Fwd
	cfg.ItemBytes = 0
	cfg.RingSlots = 512
	cfg.TXSlots = 512
	cfg.ClosedLoopDepth = 50
	cfg.OfferedMrps = 0
	m := MustNew(cfg)
	r := m.Run(800_000, 500_000)
	if r.Served == 0 {
		t.Fatal("closed loop served nothing")
	}
	// Rings must hold ~depth unconsumed packets at all times.
	q := m.NIC().Ring(0).Queued()
	if q < 45 || q > 55 {
		t.Fatalf("ring queue depth %d, want ~50", q)
	}
}

func TestCollocationReportsXMemIPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = workload.NameL3FwdL1
	cfg.ItemBytes = 0
	cfg.NetCores = 4
	cfg.XMemCores = 4
	cfg.RingSlots = 256
	cfg.TXSlots = 256
	cfg.ClosedLoopDepth = 16
	cfg.OfferedMrps = 0
	r := quickRun(t, cfg)
	if r.XMemIPC <= 0 || r.XMemAccesses == 0 {
		t.Fatalf("xmem metrics missing: %+v", r.XMemIPC)
	}
}

func TestPartitionMasksRestrictOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = workload.NameL3FwdL1
	cfg.ItemBytes = 0
	cfg.NetCores = 4
	cfg.XMemCores = 4
	cfg.RingSlots = 512
	cfg.TXSlots = 512
	cfg.ClosedLoopDepth = 32
	cfg.OfferedMrps = 0
	cfg.NICWayMask = cache.MaskAll(4)
	cfg.NetCPUWayMask = cache.MaskAll(4)
	cfg.XMemWayMask = cache.MaskRange(4, 12)
	m := MustNew(cfg)
	m.Run(800_000, 400_000)

	// Network buffer lines must only occupy partition A (ways 0-3), so
	// their LLC occupancy is bounded by 4/12 of capacity.
	space := m.Space()
	llc := m.Hierarchy().LLC()
	netLines := llc.OccupancyByClass(func(a uint64) bool {
		cls, _ := space.Classify(a)
		return cls != 0 // RX or TX
	})
	bound := llc.Sets() * 4
	if netLines > bound {
		t.Fatalf("network data in %d lines, partition allows %d", netLines, bound)
	}
}

func TestSweepTXEliminatesTXEvictions(t *testing.T) {
	base := DefaultConfig()
	base.Workload = workload.NameL3Fwd
	base.ItemBytes = 0
	base.RingSlots = 1024
	base.TXSlots = 1024
	base.ClosedLoopDepth = 64
	base.OfferedMrps = 0
	base.DDIOWays = 2
	r1 := quickRun(t, base)

	swept := base
	swept.Sweeper = core.Config{RXSweep: true, TXSweep: true, IssueCyclesPerLine: 1}
	swept.SweepTX = true
	r2 := quickRun(t, swept)

	if r1.AccessesPerRequest[stats.TXEvct] < 0.5 {
		t.Skipf("baseline TX leak too small to compare: %.2f", r1.AccessesPerRequest[stats.TXEvct])
	}
	if r2.AccessesPerRequest[stats.TXEvct] > 0.1*r1.AccessesPerRequest[stats.TXEvct] {
		t.Fatalf("NIC-driven TX sweep left %.2f TX evictions/req (baseline %.2f)",
			r2.AccessesPerRequest[stats.TXEvct], r1.AccessesPerRequest[stats.TXEvct])
	}
}

func TestUseAfterRelinquishSanitizerCleanRun(t *testing.T) {
	cfg := quickCfg()
	cfg.Sweeper = core.Config{RXSweep: true, IssueCyclesPerLine: 1, DebugUseAfterRelinquish: true}
	m := MustNew(cfg)
	m.Run(600_000, 400_000)
	if n := len(m.Sweeper().Violations()); n != 0 {
		t.Fatalf("workload committed %d use-after-relinquish reads", n)
	}
}

func TestBuiltinWorkloadsRegistered(t *testing.T) {
	for _, name := range []string{workload.NameKVS, workload.NameL3Fwd, workload.NameL3FwdL1} {
		if _, ok := workload.Lookup(name); !ok {
			t.Errorf("builtin workload %q not registered", name)
		}
	}
	if _, ok := workload.LookupStream(workload.NameXMem); !ok {
		t.Error("builtin stream \"xmem\" not registered")
	}
}

func TestResultsString(t *testing.T) {
	r := quickRun(t, quickCfg())
	if r.String() == "" {
		t.Fatal("empty Results string")
	}
}
