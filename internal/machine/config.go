// Package machine assembles the full simulated server — cores, cache
// hierarchy, NoC, DRAM, NIC, Sweeper and workloads — runs warmup and
// measurement windows, and reports the metrics the paper plots: throughput
// (Mrps), memory bandwidth (GB/s), the per-request DRAM-access breakdown,
// DRAM and end-to-end latency distributions, packet drop rates and the
// X-Mem IPC proxy.
package machine

import (
	"fmt"
	"runtime"

	"sweeper/internal/cache"
	"sweeper/internal/core"
	"sweeper/internal/mem"
	"sweeper/internal/nic"
	"sweeper/internal/workload"
)

// Config fully describes one simulated configuration. DefaultConfig returns
// the paper's Table I server; experiments override the swept knobs.
type Config struct {
	// NetCores run the networked workload; XMemCores run collocated
	// background-tenant streams (§VI-E). Table I's server has 24 cores
	// total.
	NetCores  int
	XMemCores int

	// FreqHz is the core clock (3.2 GHz).
	FreqHz float64

	// Cache and Mem configure the hierarchy and DRAM. Cache.NCores is
	// overwritten with NetCores+XMemCores during assembly.
	Cache cache.Config
	Mem   mem.Config

	// NICMode selects DMA, DDIO, IDIO or Ideal-DDIO injection; DDIOWays
	// is the LLC way allocation under DDIO.
	NICMode  nic.Mode
	DDIOWays int

	// DynamicDDIOEpoch, when positive, enables an IAT-style controller
	// (related work, §VII): every epoch (in cycles) the DDIO way
	// allocation is re-evaluated — ways grow while network leaks dominate
	// recent DRAM traffic and shrink while application traffic does,
	// within [2, LLCWays].
	DynamicDDIOEpoch uint64

	// RingSlots is RX descriptors per core ("receive buffers per core");
	// PacketBytes the MTU/slot size; TXSlots the per-core transmit ring
	// depth (responses recycle quickly, so a modest window suffices).
	// Both ring depths must be powers of two (the rings mask, not mod).
	RingSlots   int
	PacketBytes uint64
	TXSlots     int

	// Workload names the networked application in the workload registry
	// (workload.NameKVS, workload.NameL3Fwd, ... or any registered
	// driver); ItemBytes sizes KVS items (the paper pairs packet size
	// with item size).
	Workload  string
	ItemBytes uint64

	// XMemWorkload names the background-tenant stream run on XMemCores;
	// empty selects the default X-Mem instance (workload.NameXMem).
	XMemWorkload string

	// Sweeper configures the paper's mechanism; SweepTX additionally
	// sets the Work Queue SweepBuffer bit on every transmission.
	Sweeper core.Config
	SweepTX bool

	// MemTier configures the hybrid second memory tier (ROADMAP item 4a).
	// The zero value keeps the machine DRAM-only. Like Shards, MemTier is
	// not machine geometry: the tier structures are rebuilt on every
	// configure, so pooled machines may toggle tiering across Resets.
	MemTier mem.TierConfig

	// Traffic: OfferedMrps drives the open-loop arrival process; a
	// positive ClosedLoopDepth switches to the §IV-B keep-D-queued
	// closed loop instead. Arrival selects and tunes the open-loop
	// process (Poisson by default; MMPP, trace replay, diurnal envelope
	// and flow-population knobs per nic.ArrivalConfig).
	OfferedMrps     float64
	ClosedLoopDepth int
	Arrival         nic.ArrivalConfig

	// NeBuLaDropDepth, when positive, enables the related-work baseline
	// of proactive packet dropping (§II-C): the NIC drops arrivals once
	// a ring holds that many unconsumed packets, bounding buffer
	// occupancy by policy.
	NeBuLaDropDepth int

	// NICWayMask, XMemWayMask and NetCPUWayMask, when non-zero, override
	// the LLC allocation masks for the NIC, the X-Mem cores and the
	// networked cores respectively (the §VI-E partition scenarios).
	NICWayMask    cache.WayMask
	XMemWayMask   cache.WayMask
	NetCPUWayMask cache.WayMask

	// Service-time spikes (§VI-F): with probability SpikeProb a request
	// suffers an extra delay uniform in [SpikeMinCycles, SpikeMaxCycles].
	SpikeProb      float64
	SpikeMinCycles uint64
	SpikeMaxCycles uint64

	// PollCycles is the fixed per-request dispatch overhead.
	PollCycles uint64

	// MLPWidth is the cores' memory-level parallelism: independent
	// accesses kept in flight concurrently (MSHR-bounded overlap of the
	// Table I OoO cores).
	MLPWidth int

	// ObsSampleCycles, when positive, arms the observability sampler for
	// every Run of this configuration: registered metrics are snapshotted
	// each ObsSampleCycles simulated cycles into a time-series retrievable
	// via ObsSeries/BuildManifest. Zero leaves sampling off unless
	// EnableSampling is called explicitly.
	ObsSampleCycles uint64

	// WarmLLC pre-fills the LLC with dirty application data (KVS log
	// lines) so short measurement windows see steady-state eviction
	// behaviour instead of a cold 36MB cache slowly filling. Only
	// workloads that opt in (workload.LLCWarmer) are affected.
	WarmLLC bool

	// Shards selects the event engine's parallel mode: 0 or 1 run the
	// sequential engine, N > 1 partitions the engine into N core-sharded
	// timing wheels advanced by conservative epochs (shard 0 hosts the
	// shared NIC/LLC/DRAM domain, the rest split the cores), and -1 picks
	// min(cores+1, GOMAXPROCS) automatically. Results are bit-identical at
	// every shard count; Shards is not part of the machine geometry, so
	// pooled machines may change it freely across Resets.
	Shards int

	// Sampling selects the sampled-simulation mode: instead of timing every
	// cycle of the measurement window, the run alternates short detailed
	// intervals with functionally-executed fast-forward intervals and
	// reports per-metric confidence intervals (Results.Sampled). The zero
	// value (Mode "") runs fully detailed.
	Sampling SamplingConfig

	// NodeID and ClusterNodes place this machine in a cluster: NodeID in
	// [0, ClusterNodes) identifies the node, ClusterNodes the cluster
	// size. Standalone machines leave both zero; cluster.New stamps them
	// onto every node it assembles (New rejects ClusterNodes > 1 — a
	// multi-node machine only makes sense behind the cluster layer, which
	// owns the shared engine and the fabric). NodeID offsets engine shard
	// placement and seeds so homogeneous nodes stay decorrelated.
	NodeID       int
	ClusterNodes int

	// Seed makes runs reproducible.
	Seed int64
}

// SamplingConfig tunes the sampled-simulation mode (DESIGN.md §12). All
// fields are plain scalars so Config stays comparable. Zero values select
// documented defaults (see withDefaults); Mode "" or "off" disables sampling.
type SamplingConfig struct {
	// Mode is "" or "off" (full detailed run), "fixed" (a fixed number of
	// detailed intervals) or "ci" (adaptive: keep adding detailed/fast-
	// forward interval pairs until the 95% CI half-widths of throughput and
	// AMAT fall within MaxRelCI of their means, up to MaxIntervals).
	Mode string
	// DetailedCycles is the length of each fully-timed measured interval.
	// An unmeasured timed prefix of equal length precedes each one, to
	// absorb the timing bias of entering from a fast-forward span.
	DetailedCycles uint64
	// FastForwardCycles is the length of each functional interval between
	// detailed ones.
	FastForwardCycles uint64
	// Intervals is the detailed-interval count in "fixed" mode.
	Intervals int
	// MaxIntervals caps "ci" mode.
	MaxIntervals int
	// WarmupWindowCycles, WarmupMetricTol and WarmupWindows drive warm-up
	// detection: the run fast-forwards until the windowed deltas of served
	// throughput, LLC hit rate and the functional latency proxy all stay
	// within WarmupMetricTol for WarmupWindows consecutive windows (or the
	// warmup budget passed to Run expires). Each metric's tolerance is
	// floored at 3x its own per-window sampling noise (Poisson for counts,
	// binomial for the hit rate), so the knob expresses detectable drift,
	// not shot noise.
	WarmupWindowCycles uint64
	WarmupMetricTol    float64
	WarmupWindows      int
	// MaxRelCI is the "ci"-mode target: the relative 95% CI half-width both
	// throughput and AMAT must reach.
	MaxRelCI float64
}

// Enabled reports whether the configuration selects sampled simulation.
func (s SamplingConfig) Enabled() bool { return s.Mode != "" && s.Mode != samplingModeOff }

const (
	samplingModeOff   = "off"
	samplingModeFixed = "fixed"
	samplingModeCI    = "ci"
)

// withDefaults fills unset knobs with the tuned defaults the error-bound
// test validates against.
func (s SamplingConfig) withDefaults() SamplingConfig {
	if s.DetailedCycles == 0 {
		s.DetailedCycles = 32_768
	}
	if s.FastForwardCycles == 0 {
		s.FastForwardCycles = s.DetailedCycles
	}
	if s.Intervals <= 0 {
		s.Intervals = 8
	}
	if s.MaxIntervals <= 0 {
		s.MaxIntervals = 64
	}
	if s.WarmupWindowCycles == 0 {
		s.WarmupWindowCycles = 131_072
	}
	if s.WarmupMetricTol == 0 {
		s.WarmupMetricTol = 0.005
	}
	if s.WarmupWindows <= 0 {
		s.WarmupWindows = 2
	}
	if s.MaxRelCI == 0 {
		s.MaxRelCI = 0.05
	}
	return s
}

// validate reports sampling-knob errors.
func (s SamplingConfig) validate() error {
	switch s.Mode {
	case "", samplingModeOff, samplingModeFixed, samplingModeCI:
	default:
		return fmt.Errorf("machine: unknown sampling mode %q (want off, fixed or ci)", s.Mode)
	}
	switch {
	case s.WarmupMetricTol < 0 || s.WarmupMetricTol > 1:
		return fmt.Errorf("machine: Sampling.WarmupMetricTol %g outside [0,1]", s.WarmupMetricTol)
	case s.MaxRelCI < 0 || s.MaxRelCI > 1:
		return fmt.Errorf("machine: Sampling.MaxRelCI %g outside [0,1]", s.MaxRelCI)
	case s.Intervals < 0 || s.MaxIntervals < 0 || s.WarmupWindows < 0:
		return fmt.Errorf("machine: Sampling interval counts must be non-negative")
	}
	return nil
}

// DefaultConfig returns the Table I system: 24 cores at 3.2 GHz, 48KB L1d /
// 1.25MB L2 / 36MB 12-way LLC, four DDR4-3200 channels, 2-way DDIO, 1024
// RX buffers per core of 1KB, the write-heavy KVS, Sweeper off.
func DefaultConfig() Config {
	return Config{
		NetCores:    24,
		FreqHz:      3.2e9,
		Cache:       cache.DefaultConfig(24),
		Mem:         mem.DefaultConfig(),
		NICMode:     nic.ModeDDIO,
		DDIOWays:    2,
		RingSlots:   1024,
		PacketBytes: 1024,
		TXSlots:     128,
		Workload:    workload.NameKVS,
		ItemBytes:   1024,
		Sweeper:     core.Config{RXSweep: false, IssueCyclesPerLine: 1},
		OfferedMrps: 10,
		PollCycles:  50,
		MLPWidth:    12,
		WarmLLC:     true,
		Seed:        1,
	}
}

// Validate reports configuration errors before assembly.
func (c *Config) Validate() error {
	switch {
	case c.NetCores <= 0:
		return fmt.Errorf("machine: NetCores must be positive, got %d", c.NetCores)
	case c.XMemCores < 0:
		return fmt.Errorf("machine: XMemCores must be non-negative, got %d", c.XMemCores)
	case c.FreqHz <= 0:
		return fmt.Errorf("machine: FreqHz must be positive, got %g", c.FreqHz)
	case c.RingSlots <= 0:
		return fmt.Errorf("machine: RingSlots must be positive, got %d", c.RingSlots)
	case c.RingSlots&(c.RingSlots-1) != 0:
		return fmt.Errorf("machine: RingSlots must be a power of two, got %d", c.RingSlots)
	case c.PacketBytes == 0:
		return fmt.Errorf("machine: PacketBytes must be positive")
	case c.TXSlots <= 0:
		return fmt.Errorf("machine: TXSlots must be positive, got %d", c.TXSlots)
	case c.TXSlots&(c.TXSlots-1) != 0:
		return fmt.Errorf("machine: TXSlots must be a power of two, got %d", c.TXSlots)
	case c.NICMode == nic.ModeDDIO && (c.DDIOWays <= 0 || c.DDIOWays > c.Cache.LLCWays) && c.NICWayMask == 0:
		return fmt.Errorf("machine: DDIOWays %d out of range [1,%d]", c.DDIOWays, c.Cache.LLCWays)
	case c.OfferedMrps <= 0 && c.ClosedLoopDepth <= 0:
		return fmt.Errorf("machine: need OfferedMrps > 0 or ClosedLoopDepth > 0")
	case c.ClosedLoopDepth > c.RingSlots:
		return fmt.Errorf("machine: ClosedLoopDepth %d exceeds RingSlots %d", c.ClosedLoopDepth, c.RingSlots)
	case c.SpikeProb < 0 || c.SpikeProb > 1:
		return fmt.Errorf("machine: SpikeProb %g outside [0,1]", c.SpikeProb)
	case c.Shards < -1:
		return fmt.Errorf("machine: Shards must be -1 (auto), 0/1 (sequential) or a shard count, got %d", c.Shards)
	case c.ClusterNodes < 0:
		return fmt.Errorf("machine: ClusterNodes must be non-negative, got %d", c.ClusterNodes)
	case c.NodeID < 0 || c.NodeID >= max(c.ClusterNodes, 1):
		return fmt.Errorf("machine: NodeID %d outside [0,%d)", c.NodeID, max(c.ClusterNodes, 1))
	}
	if err := c.Sampling.validate(); err != nil {
		return err
	}
	if err := c.Sweeper.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if err := c.MemTier.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if err := c.Arrival.Validate(); err != nil {
		return err
	}
	if c.ClosedLoopDepth > 0 && c.Arrival != (nic.ArrivalConfig{}) {
		return fmt.Errorf("machine: Arrival tunes the open loop; unset it with ClosedLoopDepth > 0")
	}
	if err := workload.ValidateParams(c.Workload, c.params()); err != nil {
		return fmt.Errorf("machine: workload %q: %w", c.Workload, err)
	}
	if c.XMemCores > 0 {
		if _, ok := workload.LookupStream(c.xmemName()); !ok {
			return fmt.Errorf("machine: unknown background stream %q (registered: %v)",
				c.xmemName(), workload.StreamNames())
		}
	}
	return nil
}

// params extracts the workload-facing parameterization of the config.
func (c *Config) params() workload.Params {
	return workload.Params{PacketBytes: c.PacketBytes, ItemBytes: c.ItemBytes}
}

// xmemName resolves the background-stream registry name.
func (c *Config) xmemName() string {
	if c.XMemWorkload != "" {
		return c.XMemWorkload
	}
	return workload.NameXMem
}

// respSlotBytes returns the TX slot size: the largest response the workload
// produces, as declared by its registration.
func (c *Config) respSlotBytes() uint64 {
	return workload.TXSlotBytes(c.Workload, c.params())
}

// resolveShards maps the Shards knob to a concrete shard count: -1 (auto)
// becomes min(cores+1, GOMAXPROCS) — one shard per simulated core plus the
// shared domain, never more than the host can run — and anything below 2
// selects the sequential engine.
func (c *Config) resolveShards() int {
	return c.EngineShards(c.NetCores + c.XMemCores)
}

// EngineShards resolves the Shards knob for an engine driving totalCores
// simulated cores. A standalone machine passes its own core count; the
// cluster layer passes the sum across nodes, so the auto setting scales the
// shared engine with the whole rack.
func (c *Config) EngineShards(totalCores int) int {
	n := c.Shards
	if n == -1 {
		n = totalCores + 1
		if mp := runtime.GOMAXPROCS(0); n > mp {
			n = mp
		}
	}
	if n < 2 {
		return 1
	}
	return n
}

// lookaheadCycles derives the conservative epoch width for the parallel
// engine: the minimum cross-shard service latency. The floor is an LLC hit
// as seen from a core — NoC traversal plus LLC access — because no
// interaction between a core and the shared domain (or another core through
// it) completes faster than that.
func (c *Config) lookaheadCycles() uint64 {
	return c.Cache.NoCLat + c.Cache.LLCLat
}

// LookaheadCycles exposes the conservative epoch width to external engine
// owners (the cluster layer configures the shared engine itself).
func (c *Config) LookaheadCycles() uint64 { return c.lookaheadCycles() }
