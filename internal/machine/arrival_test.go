package machine

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sweeper/internal/nic"
)

// arrivalCases builds one machine configuration per registered arrival
// process (exercising the modulation knobs on top), failing the suite if a
// newly registered process has no case here: the shard-determinism and
// pooled-reset contracts below must cover every generator.
func arrivalCases(t *testing.T) map[string]Config {
	t.Helper()
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "arrivals.bin")
	recs := make([]nic.TraceRecord, 4000)
	for i := range recs {
		recs[i] = nic.TraceRecord{
			Cycles: uint64(i * 130),
			Bytes:  64 + uint32(i%3)*700,
			Flow:   uint32(i % 24),
		}
	}
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nic.WriteTraceBinary(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	arrivals := map[string]nic.ArrivalConfig{
		nic.ArrivalPoisson: {
			DiurnalPeriodCycles: 200_000,
			DiurnalAmplitude:    0.4,
			Flows:               64,
		},
		nic.ArrivalMMPP: {
			Process:          nic.ArrivalMMPP,
			BurstRatio:       6,
			BurstDwellCycles: 40_000,
			Flows:            128,
		},
		nic.ArrivalTrace: {
			Process:   nic.ArrivalTrace,
			TracePath: tracePath,
		},
	}
	cases := map[string]Config{}
	for _, name := range nic.ArrivalNames() {
		acfg, ok := arrivals[name]
		if !ok {
			t.Errorf("registered arrival process %q has no machine determinism case; add one here", name)
			continue
		}
		cfg := quickCfg()
		cfg.Arrival = acfg
		cases[name] = cfg
	}
	return cases
}

// TestArrivalResultsBitIdenticalAcrossShards extends the parallel-engine
// determinism contract to every registered arrival process: Results must be
// identical in every field for shards in {1, 2, 4} against the sequential
// baseline.
func TestArrivalResultsBitIdenticalAcrossShards(t *testing.T) {
	for name, cfg := range arrivalCases(t) {
		t.Run(name, func(t *testing.T) {
			run := func(shards int) Results {
				c := cfg
				c.Shards = shards
				return MustNew(c).Run(400_000, 300_000)
			}
			want := run(0)
			if want.Offered == 0 {
				t.Fatal("no offered load; generator never ran")
			}
			for _, shards := range []int{1, 2, 4} {
				if got := run(shards); !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from sequential:\n  seq: %+v\n  par: %+v", shards, want, got)
				}
			}
		})
	}
}

// TestArrivalPooledReset checks the pool/Reset contract per process: a
// machine recycled through Reset — including across process switches — must
// reproduce fresh-machine Results bit-identically.
func TestArrivalPooledReset(t *testing.T) {
	cases := arrivalCases(t)
	fresh := map[string]Results{}
	for name, cfg := range cases {
		fresh[name] = MustNew(cfg).Run(300_000, 250_000)
	}

	// One machine walks every process in registry order, then repeats the
	// walk: both generator reuse (same process) and generator replacement
	// (process switch) paths must stay bit-identical.
	names := nic.ArrivalNames()
	if len(names) == 0 {
		t.Fatal("no registered arrival processes")
	}
	m := MustNew(cases[names[0]])
	for pass := 0; pass < 2; pass++ {
		for i, name := range names {
			if !(pass == 0 && i == 0) {
				if err := m.Reset(cases[name]); err != nil {
					t.Fatalf("pass %d: Reset to %s: %v", pass, name, err)
				}
			}
			if got := m.Run(300_000, 250_000); !reflect.DeepEqual(got, fresh[name]) {
				t.Fatalf("pass %d: pooled %s diverged from fresh:\n  fresh:  %+v\n  pooled: %+v",
					pass, name, fresh[name], got)
			}
		}
	}
}

// TestArrivalConfigValidation exercises the machine-level arrival plumbing
// errors: unknown processes, bad knobs, missing trace files, and the
// closed-loop/arrival conflict.
func TestArrivalConfigValidation(t *testing.T) {
	bad := map[string]func(*Config){
		"unknown process": func(c *Config) { c.Arrival.Process = "nonesuch" },
		"burst ratio":     func(c *Config) { c.Arrival = nic.ArrivalConfig{Process: nic.ArrivalMMPP, BurstRatio: 0.5} },
		"amplitude range": func(c *Config) { c.Arrival.DiurnalAmplitude = 1.5 },
		"amp no period":   func(c *Config) { c.Arrival.DiurnalAmplitude = 0.2 },
		"negative flows":  func(c *Config) { c.Arrival.Flows = -1 },
		"trace no path":   func(c *Config) { c.Arrival.Process = nic.ArrivalTrace },
		"closed loop + arrival": func(c *Config) {
			c.ClosedLoopDepth = 16
			c.Arrival = nic.ArrivalConfig{Process: nic.ArrivalMMPP}
		},
	}
	for name, mutate := range bad {
		cfg := quickCfg()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}

	// A trace path that validates statically but fails to open must
	// surface at construction.
	cfg := quickCfg()
	cfg.Arrival = nic.ArrivalConfig{Process: nic.ArrivalTrace, TracePath: filepath.Join(t.TempDir(), "gone.bin")}
	if _, err := New(cfg); err == nil {
		t.Error("missing trace file accepted at construction")
	}
}
