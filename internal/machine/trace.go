package machine

import (
	"bufio"
	"fmt"
	"io"

	"sweeper/internal/stats"
)

// TraceEvent is one DRAM transaction, as observed by the memory sink.
type TraceEvent struct {
	// Cycle is the issue time; Addr the line address; Kind the paper's
	// traffic category; LatencyCycles the completion delay (zero for
	// fire-and-forget writes).
	Cycle         uint64
	Addr          uint64
	Kind          stats.AccessKind
	LatencyCycles uint64
}

// TraceSink receives every DRAM transaction during measurement windows.
type TraceSink func(TraceEvent)

// SetTraceSink installs a DRAM transaction observer. Call before Run; pass
// nil to disable. Tracing observes only the measurement window, matching
// the rest of the accounting.
func (m *Machine) SetTraceSink(fn TraceSink) { m.dp.trace = fn }

// TraceCSV adapts an io.Writer into a TraceSink emitting CSV lines
// (cycle,addr,kind,latency). The returned flush must be called after Run.
func TraceCSV(w io.Writer) (TraceSink, func() error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, "cycle,addr,kind,latency_cycles")
	sink := func(ev TraceEvent) {
		fmt.Fprintf(bw, "%d,%#x,%s,%d\n", ev.Cycle, ev.Addr, ev.Kind, ev.LatencyCycles)
	}
	return sink, bw.Flush
}
