package machine

import (
	"strings"

	"sweeper/internal/obs"
	"sweeper/internal/stats"
)

// Metrics returns the machine's observability registry, building it lazily
// so runs that never export anything pay nothing. The registry is
// invalidated by configure (New and Reset), because reconfiguration may
// replace the components its read closures capture.
func (m *Machine) Metrics() *obs.Registry {
	if m.metrics == nil {
		r := obs.NewRegistry()
		m.RegisterMetrics(r)
		m.metrics = r
	}
	return m.metrics
}

// RegisterMetrics registers every machine metric on r. Standalone machines
// get a root registry through Metrics; the cluster layer passes each node a
// "nodeN."-prefixed view of one shared registry instead, so a rack's
// manifest namespaces per-node metrics without the nodes knowing.
func (m *Machine) RegisterMetrics(r *obs.Registry) {
	m.dp.registerMetrics(r)
	m.nicD.RegisterMetrics(r)
	if m.agen != nil {
		m.agen.RegisterMetrics(r)
	}
	if m.cgen != nil {
		m.cgen.RegisterMetrics(r)
	}
	r.Counter("cpu.served", func() uint64 { return m.served })
	r.Gauge("cpu.idle_cores", func(uint64) float64 {
		n := 0
		for _, c := range m.cores {
			if c.Idle() {
				n++
			}
		}
		return float64(n)
	})
	for _, c := range m.cores {
		c.RegisterMetrics(r)
	}
	for _, x := range m.xmem {
		x.RegisterMetrics(r)
	}
	r.Histogram("req.latency", m.reqLat)
}

// registerMetrics exposes the memory side: the per-kind DRAM transaction
// breakdown, the DRAM model's counters, shared-cache activity, the dynamic
// DDIO controller and the DRAM latency distribution.
func (dp *datapath) registerMetrics(r *obs.Registry) {
	for k := stats.AccessKind(0); k < stats.NumKinds; k++ {
		k := k
		r.Counter("dram.acc."+metricName(k.String()), func() uint64 { return dp.breakdown.Count(k) })
	}
	dp.dram.RegisterMetrics(r)
	if dp.tier1 != nil {
		dp.tier1.RegisterMetrics(r)
		dp.place.RegisterMetrics(r)
	}
	dp.hier.RegisterMetrics(r)
	r.Counter("ddio.dyn_adjustments", func() uint64 { return dp.dynAdjustments })
	r.Histogram("dram.latency", dp.dramLat)
}

// metricName flattens a display name ("CPU TX Rd/Wr") into a metric key
// ("cpu_tx_rd_wr").
func metricName(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, " ", "_")
	return strings.ReplaceAll(s, "/", "_")
}

// EnableSampling arms the observability sampler for the next Run: every
// registered metric is snapshotted each `every` simulated cycles, from
// cycle 0 through the end of measurement. Pass 0 to derive the cadence
// from Config.ObsSampleCycles, falling back to ~256 samples across the
// run. A machine whose configuration sets ObsSampleCycles samples without
// this call; everything else runs unsampled at zero cost.
func (m *Machine) EnableSampling(every uint64) {
	m.obsOn = true
	m.obsEvery = every
}

// sampleCadence resolves the sampling period for a run of the given length.
func (m *Machine) sampleCadence(total uint64) uint64 {
	if m.obsEvery > 0 {
		return m.obsEvery
	}
	if m.cfg.ObsSampleCycles > 0 {
		return m.cfg.ObsSampleCycles
	}
	if every := total / 256; every > 0 {
		return every
	}
	return 1
}

// ObsSeries returns the sampled time-series after Run, or nil when sampling
// was never armed.
func (m *Machine) ObsSeries() *obs.Series {
	if m.sampler == nil {
		return nil
	}
	return m.sampler.Series()
}

// BuildManifest assembles the machine-readable record of the completed run:
// the fully resolved configuration, the measured results, the closing value
// of every registered metric, histogram summaries, and the sampled
// time-series when sampling was armed.
func (m *Machine) BuildManifest(label string, r Results) *obs.Manifest {
	reg := m.Metrics()
	man := &obs.Manifest{
		Label:        label,
		WarmupCycles: m.lastWarmup,
		MeasureCyc:   m.lastMeasure,
		Config:       m.cfg,
		Results:      r,
		Metrics:      reg.Final(m.eng.Now()),
		Histograms:   reg.HistogramSummaries(),
	}
	if m.sampler != nil {
		man.SampleEvery = m.sampler.Every()
		man.Series = m.sampler.Series()
	}
	return man
}
