package machine

import (
	"reflect"
	"testing"

	"sweeper/internal/addr"
	"sweeper/internal/core"
	"sweeper/internal/mem"
)

// insnCases builds one machine configuration per registered invalidation
// instruction (half of them on a hybrid memory, so the tier datapath rides
// the same determinism contracts), failing the suite if a newly registered
// instruction ships without a case here.
func insnCases(t *testing.T) map[string]Config {
	t.Helper()
	tiered := mem.DefaultTierConfig(mem.TierHotPage)
	tiered.DRAMBytes = 1 << 20
	static := mem.DefaultTierConfig(mem.TierStatic)
	static.DRAMBytes = 4 << 20

	knobs := map[string]func(*Config){
		core.InsnCLSweep: func(c *Config) {},
		core.InsnCLFlush: func(c *Config) { c.MemTier = static },
		core.InsnCLWB:    func(c *Config) {},
		core.InsnSIMF: func(c *Config) {
			c.MemTier = tiered
			c.Sweeper.SIMFBatchLines = 16
			c.Sweeper.SIMFSetupCycles = 20
		},
	}
	cases := map[string]Config{}
	for _, name := range core.InsnNames() {
		mutate, ok := knobs[name]
		if !ok {
			t.Errorf("registered instruction %q has no machine determinism case; add one here", name)
			continue
		}
		cfg := quickCfg()
		cfg.Sweeper.RXSweep = true
		cfg.Sweeper.Insn = name
		mutate(&cfg)
		cases[name] = cfg
	}
	return cases
}

// TestInvalidateResultsBitIdenticalAcrossShards extends the parallel-engine
// determinism contract to every registered invalidation instruction (and to
// the tiered datapath): Results must be identical in every field for shards
// in {1, 2, 4} against the sequential baseline.
func TestInvalidateResultsBitIdenticalAcrossShards(t *testing.T) {
	for name, cfg := range insnCases(t) {
		t.Run(name, func(t *testing.T) {
			run := func(shards int) Results {
				c := cfg
				c.Shards = shards
				return MustNew(c).Run(400_000, 300_000)
			}
			want := run(0)
			if want.Offered == 0 {
				t.Fatal("no offered load; generator never ran")
			}
			if want.Sweeper.SweptLines == 0 {
				t.Fatal("relinquish path never ran; instruction untested")
			}
			for _, shards := range []int{1, 2, 4} {
				if got := run(shards); !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from sequential:\n  seq: %+v\n  par: %+v", shards, want, got)
				}
			}
		})
	}
}

// TestInvalidatePooledReset checks the pool/Reset contract per instruction: a
// machine recycled through Reset — including across instruction switches and
// tiering on/off transitions — must reproduce fresh-machine Results
// bit-identically.
func TestInvalidatePooledReset(t *testing.T) {
	cases := insnCases(t)
	fresh := map[string]Results{}
	for name, cfg := range cases {
		fresh[name] = MustNew(cfg).Run(300_000, 250_000)
	}

	// One machine walks every instruction in registry order, then repeats
	// the walk: instruction switches and MemTier toggles (the cases mix
	// DRAM-only and hybrid configs) must leave no residue.
	names := core.InsnNames()
	if len(names) == 0 {
		t.Fatal("no registered invalidation instructions")
	}
	m := MustNew(cases[names[0]])
	for pass := 0; pass < 2; pass++ {
		for i, name := range names {
			if !(pass == 0 && i == 0) {
				if err := m.Reset(cases[name]); err != nil {
					t.Fatalf("pass %d: Reset to %s: %v", pass, name, err)
				}
			}
			if got := m.Run(300_000, 250_000); !reflect.DeepEqual(got, fresh[name]) {
				t.Fatalf("pass %d: pooled %s diverged from fresh:\n  fresh:  %+v\n  pooled: %+v",
					pass, name, fresh[name], got)
			}
		}
	}
}

// TestDefaultInsnMatchesExplicitCLSweep locks the backward-compatibility
// contract behind the committed goldens: an empty Insn and an explicit
// "clsweep" must be the same machine, bit for bit.
func TestDefaultInsnMatchesExplicitCLSweep(t *testing.T) {
	cfg := quickCfg()
	cfg.Sweeper.RXSweep = true
	want := MustNew(cfg).Run(300_000, 250_000)
	cfg.Sweeper.Insn = core.InsnCLSweep
	if got := MustNew(cfg).Run(300_000, 250_000); !reflect.DeepEqual(got, want) {
		t.Fatalf("explicit clsweep diverged from default:\n  default: %+v\n  clsweep: %+v", want, got)
	}
	if want.Sweeper.WrittenBackLines != 0 {
		t.Fatalf("clsweep wrote back %d lines", want.Sweeper.WrittenBackLines)
	}
}

// TestInvalidateConfigValidation exercises the machine-level plumbing errors
// for the instruction and tier knobs: unknown names, contradictory tier
// splits, and impossible device parameters must fail construction.
func TestInvalidateConfigValidation(t *testing.T) {
	bad := map[string]func(*Config){
		"unknown instruction": func(c *Config) { c.Sweeper.Insn = "clzap" },
		"negative simf batch": func(c *Config) {
			c.Sweeper.Insn = core.InsnSIMF
			c.Sweeper.SIMFBatchLines = -1
		},
		"negative simf setup": func(c *Config) {
			c.Sweeper.Insn = core.InsnSIMF
			c.Sweeper.SIMFSetupCycles = -8
		},
		"unknown tier policy": func(c *Config) {
			c.MemTier = mem.DefaultTierConfig("warm")
		},
		"tier split past address space": func(c *Config) {
			c.MemTier = mem.DefaultTierConfig(mem.TierStatic)
			c.MemTier.DRAMBytes = addr.MaxLocalAddr + 1
		},
		"tier zero bandwidth": func(c *Config) {
			c.MemTier = mem.DefaultTierConfig(mem.TierStatic)
			c.MemTier.BandwidthGBps = 0
		},
		"tier zero write latency": func(c *Config) {
			c.MemTier = mem.DefaultTierConfig(mem.TierStatic)
			c.MemTier.WriteLatency = 0
		},
		"hotpage epoch too short": func(c *Config) {
			c.MemTier = mem.DefaultTierConfig(mem.TierHotPage)
			c.MemTier.HotPageEpochCycles = 16
		},
	}
	for name, mutate := range bad {
		cfg := quickCfg()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}
