package machine_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sweeper/internal/machine"
	"sweeper/internal/scenario"
)

// Error-bound validation for the sampled-simulation mode (DESIGN.md §12):
// sampled estimates must land within their own reported 95% CI of a full
// detailed run, or within the QuickScale-equivalence floor — whichever is
// looser. The floor exists because a sampled run measures a different (and
// shorter) slice of the steady state than the full run: QuickScale itself,
// the repo's established reduced-fidelity reference, deviates from FullScale
// by up to 5.4% on these scenarios (throughput +3.3% on all three, AMAT
// +5.4% on l3fwd), so a 5.5% bound is "QuickScale-equivalent accuracy".
const sampledErrorFloor = 0.055

// Full-fidelity windows, mirroring experiments.FullScale (the committed
// results' scale). For sampled runs the warmup argument is a budget: the
// steady-state detector typically ends warm-up after a small fraction of it.
const (
	fullWarmup  = 12_000_000
	fullMeasure = 3_000_000
)

// sampledSeed pins the validation seed. If a future change shifts the
// simulation's steady state and this test trips, re-derive the goldens by
// comparing full and sampled runs by hand before touching the tolerance.
const sampledSeed = 12345

// baseScenarios is the builtin scenario matrix the bound is validated on:
// the three base machines behind every figure sweep.
var baseScenarios = []string{"kvs", "l3fwd", "collocation"}

func scenarioConfig(t *testing.T, name string) machine.Config {
	t.Helper()
	cfg := scenario.MustConfig(name, nil)
	cfg.Seed = sampledSeed
	return cfg
}

// withinBound asserts |sampled-full| <= max(reported CI95 half-width, floor).
func withinBound(t *testing.T, metric string, sampled, half, full float64) {
	t.Helper()
	diff := sampled - full
	if diff < 0 {
		diff = -diff
	}
	bound := half
	if f := sampledErrorFloor * full; f > bound {
		bound = f
	}
	if diff > bound {
		t.Errorf("%s: sampled %.3f vs full %.3f: |err| %.3f exceeds max(CI95 %.3f, %.1f%% floor %.3f)",
			metric, sampled, full, diff, half, 100*sampledErrorFloor, sampledErrorFloor*full)
	}
}

// TestSampledWithinFullRunErrorBound compares sampled runs (both modes)
// against full detailed runs at the committed-results scale, across the
// builtin scenario matrix.
func TestSampledWithinFullRunErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity reference runs are too slow for -short")
	}
	for _, name := range baseScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := scenarioConfig(t, name)
			full := machine.MustNew(cfg).Run(fullWarmup, fullMeasure)

			for _, mode := range []string{"fixed", "ci"} {
				scfg := cfg
				scfg.Sampling.Mode = mode
				r := machine.MustNew(scfg).Run(fullWarmup, fullMeasure)
				s := r.Sampled
				if s == nil {
					t.Fatalf("%s: sampled run returned no SamplingSummary", mode)
				}
				if s.Mode != mode {
					t.Errorf("%s: summary mode %q", mode, s.Mode)
				}
				if !s.WarmupDetected {
					t.Errorf("%s: steady-state detector never fired (warm-up ended at %d)",
						mode, s.WarmupEndCycle)
				}
				if s.MeasuredCycles != uint64(s.Intervals)*s.DetailedCycles {
					t.Errorf("%s: measured %d cycles, want %d intervals x %d",
						mode, s.MeasuredCycles, s.Intervals, s.DetailedCycles)
				}
				// The speedup lever: a sampled run must simulate a small
				// fraction of the full run's span.
				if s.SimulatedCycles >= (fullWarmup+fullMeasure)/2 {
					t.Errorf("%s: simulated %d cycles, not meaningfully below the full run's %d",
						mode, s.SimulatedCycles, uint64(fullWarmup+fullMeasure))
				}
				withinBound(t, mode+" throughput", s.Throughput.Mean, s.Throughput.HalfWidth, full.ThroughputMrps)
				withinBound(t, mode+" amat", s.AMAT.Mean, s.AMAT.HalfWidth, full.AMATCycles)
			}
		})
	}
}

// TestSampledTieredWithinErrorBound extends the error-bound contract to the
// hybrid-memory machine of the "tiers" scenario. This is the regression net
// for the fast-forward latency bug class: functional-mode reads must be
// stamped with the owning tier's unloaded latency, not flat DRAM latency — a
// flat stamp biases sampled AMAT low on tiered machines and breaches the
// bound here.
func TestSampledTieredWithinErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity reference runs are too slow for -short")
	}
	cfg := scenarioConfig(t, "tiers")
	cfg.Sweeper.RXSweep = true // exercise the simf relinquish path too
	// Two adjustments pin a comparable operating point. First, the
	// scenario's default offered rate saturates the hybrid machine (the
	// tier-1 device queue grows without bound), and an unstable system has
	// no steady state for interval sampling to estimate — back off to a
	// stable rate. Second, warm-fill installs differ by design between full
	// (legacy dirty fill) and sampled (content-aware install) runs; on a
	// DRAM machine the residual content difference is noise, but the tier's
	// 300-cycle reads amplify it past the bound. Cold-start both runs so
	// they warm from the same (empty) state.
	cfg.OfferedMrps = 5
	cfg.WarmLLC = false
	full := machine.MustNew(cfg).Run(fullWarmup, fullMeasure)
	if full.Tier1Accesses == 0 {
		t.Fatal("tiers scenario never touched tier 1; the bound would be vacuous")
	}

	scfg := cfg
	scfg.Sampling.Mode = "fixed"
	r := machine.MustNew(scfg).Run(fullWarmup, fullMeasure)
	s := r.Sampled
	if s == nil {
		t.Fatal("sampled run returned no SamplingSummary")
	}
	if r.Tier1Accesses == 0 {
		t.Fatal("sampled run never touched tier 1")
	}
	withinBound(t, "tiered throughput", s.Throughput.Mean, s.Throughput.HalfWidth, full.ThroughputMrps)
	withinBound(t, "tiered amat", s.AMAT.Mean, s.AMAT.HalfWidth, full.AMATCycles)
}

// TestSampledDeterministicAcrossShards: sampling composes with the parallel
// engine — a sampled run is bit-identical at every shard count, like any
// other run.
func TestSampledDeterministicAcrossShards(t *testing.T) {
	cfg := scenarioConfig(t, "kvs")
	cfg.Sampling.Mode = "fixed"

	var base machine.Results
	for i, shards := range []int{1, 4} {
		c := cfg
		c.Shards = shards
		r := machine.MustNew(c).Run(fullWarmup, fullMeasure)
		if i == 0 {
			base = r
			continue
		}
		if !reflect.DeepEqual(r, base) {
			t.Fatalf("sampled run diverged between shards=1 and shards=%d:\n%+v\nvs\n%+v",
				shards, base, r)
		}
	}
}

// TestSampledCIModeTightensOrCaps: adaptive mode keeps adding intervals until
// both primary CIs meet the target, or gives up at the cap — never neither.
func TestSampledCIModeTightensOrCaps(t *testing.T) {
	cfg := scenarioConfig(t, "kvs")
	cfg.Sampling.Mode = "ci"
	cfg.Sampling.MaxIntervals = 64
	cfg.Sampling.MaxRelCI = 0.05

	r := machine.MustNew(cfg).Run(fullWarmup, fullMeasure)
	s := r.Sampled
	if s == nil {
		t.Fatal("no SamplingSummary")
	}
	if s.Intervals < 4 {
		t.Fatalf("ci mode stopped after %d intervals; minimum is 4", s.Intervals)
	}
	if s.Intervals < cfg.Sampling.MaxIntervals {
		if rel := s.Throughput.RelHalfWidth(); rel > cfg.Sampling.MaxRelCI {
			t.Errorf("stopped early with throughput CI %.3f > target %.3f", rel, cfg.Sampling.MaxRelCI)
		}
		if rel := s.AMAT.RelHalfWidth(); rel > cfg.Sampling.MaxRelCI {
			t.Errorf("stopped early with AMAT CI %.3f > target %.3f", rel, cfg.Sampling.MaxRelCI)
		}
	}
}

// TestSamplingSmokeBuiltins is the cheap end-to-end smoke `make check` leans
// on: every base scenario runs sampled with tiny windows, produces sane
// results, phase-tags its observability series, and round-trips the sampling
// record through the JSON manifest.
func TestSamplingSmokeBuiltins(t *testing.T) {
	for _, name := range baseScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := scenarioConfig(t, name)
			cfg.Sampling = machine.SamplingConfig{
				Mode:               "fixed",
				Intervals:          2,
				DetailedCycles:     16_384,
				FastForwardCycles:  16_384,
				WarmupWindowCycles: 32_768,
				WarmupWindows:      2,
			}
			m := machine.MustNew(cfg)
			m.EnableSampling(4096)
			// The measure argument is unused in sampled mode (the interval
			// schedule replaces it) but must still validate.
			r := m.Run(500_000, 100_000)
			if r.Served == 0 {
				t.Fatal("sampled smoke run served nothing")
			}
			if r.Sampled == nil || r.Sampled.Intervals != 2 {
				t.Fatalf("unexpected sampling summary: %+v", r.Sampled)
			}

			series := m.ObsSeries()
			if len(series.Phases) != len(series.Cycles) {
				t.Fatalf("phase tags (%d) do not cover samples (%d)",
					len(series.Phases), len(series.Cycles))
			}
			seen := map[string]bool{}
			for _, p := range series.Phases {
				seen[p] = true
			}
			for _, want := range []string{"warmup-ff", "detailed", "fast-forward"} {
				if !seen[want] {
					t.Errorf("no sample tagged %q (saw %v)", want, seen)
				}
			}

			blob, err := json.Marshal(m.BuildManifest("smoke", r))
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{`"Sampling"`, `"mode":"fixed"`, `"warmup_detected"`} {
				if !strings.Contains(string(blob), want) {
					t.Errorf("manifest JSON missing %s", want)
				}
			}
		})
	}
}
