package machine

import (
	"fmt"

	"sweeper/internal/core"
	"sweeper/internal/nic"
	"sweeper/internal/obs"
	"sweeper/internal/sim"
	"sweeper/internal/stats"
)

// Results summarizes one measurement window.
type Results struct {
	// MeasuredCycles is the window length.
	MeasuredCycles uint64
	// Served is the number of requests completed in the window.
	Served uint64
	// ThroughputMrps is the application throughput in millions of
	// requests per second (the paper's primary metric).
	ThroughputMrps float64
	// MemBWGBps is the DRAM bandwidth consumed (reads+writes, 64B each).
	MemBWGBps float64
	// MemBWUtilization is MemBWGBps over the configuration's peak.
	MemBWUtilization float64
	// AccessesPerRequest breaks DRAM transactions per served request
	// down by source, as in Figures 1c/2c/5c/7b.
	AccessesPerRequest [stats.NumKinds]float64
	// AccessCounts holds the raw per-kind transaction counts.
	AccessCounts [stats.NumKinds]uint64
	// DRAMLatMean/P50/P99 summarize DRAM access latency (Figure 6);
	// DRAMLatCDF is the full distribution.
	DRAMLatMean float64
	DRAMLatP50  uint64
	DRAMLatP99  uint64
	DRAMLatCDF  []stats.CDFPoint
	// ReqLatMean/P99/P999 summarize end-to-end request latency (arrival
	// to response posted): the SLO check gates on p99, the SLO-headroom
	// curves plot the p99.9 tail.
	ReqLatMean float64
	ReqLatP99  uint64
	ReqLatP999 uint64
	// AMATCycles is the mean CPU-side hierarchy access latency over the
	// window — the average memory access time the paper's throughput model
	// centres on.
	AMATCycles float64
	// AvgServiceCycles is mean service time excluding queuing; the SLO
	// is defined as 100x this value measured at low load.
	AvgServiceCycles float64
	// Offered counts injection attempts, Dropped the arrivals lost to
	// full rings; DropRate is their ratio.
	Offered  uint64
	Dropped  uint64
	DropRate float64
	// XMemIPC is the collocated tenant's IPC proxy averaged over X-Mem
	// cores (Figure 9), 0 when none are configured.
	XMemIPC float64
	// XMemAccesses counts tenant accesses in the window.
	XMemAccesses uint64
	// LLCMissRatio is the shared-cache miss ratio over the window.
	LLCMissRatio float64
	// Tier1Accesses counts memory transactions served by the hybrid second
	// tier in the window; Tier1BWGBps is the bandwidth they consumed. Both
	// are zero on DRAM-only machines. MemBWGBps above remains DRAM-only, so
	// tiered and untiered runs compare like for like.
	Tier1Accesses uint64
	Tier1BWGBps   float64
	// Sweeper summarizes sweep activity over the whole run.
	Sweeper core.Stats
	// SweeperSavedGBps is the DRAM write bandwidth the sweeps avoided.
	SweeperSavedGBps float64
	// Sampled carries the sampled-simulation summary — interval counts and
	// per-metric 95% confidence intervals — and is nil on full detailed
	// runs. When set, the rate metrics above are interval means and the
	// counters are sums over the measured intervals.
	Sampled *SamplingSummary `json:",omitempty"`
}

func (r Results) String() string {
	return fmt.Sprintf("%.2f Mrps, %.1f GB/s (%.0f%% util), %.2f acc/req, drop %.4f, p99 %dcyc",
		r.ThroughputMrps, r.MemBWGBps, 100*r.MemBWUtilization,
		totalPerReq(r.AccessesPerRequest), r.DropRate, r.ReqLatP99)
}

func totalPerReq(b [stats.NumKinds]float64) float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// windowSnap captures cumulative counters at the start of a window.
type windowSnap struct {
	breakdown  [stats.NumKinds]uint64
	dramTxns   uint64
	tierTxns   uint64
	served     uint64
	offered    uint64
	dropped    uint64
	xmemAcc    uint64
	llcHits    uint64
	llcMisses  uint64
	sweepDrops uint64
	start      uint64
}

// start wires every component's initial event onto its engine shard: cores
// (and tenant cores) on their own shards, the traffic generators and the
// dynamic-DDIO controller on the shared-domain shard 0. Self-rescheduling
// events inherit their shard from the dispatching event afterwards.
func (m *Machine) start() { m.startWith(nil) }

// startWith is start with the generator slot pluggable: startGen, when
// non-nil, runs at exactly the point the machine's own open-loop generator
// would start — after the cores, on the shared-domain shard, before the
// dynamic-DDIO controller. The cluster front end occupies this slot on
// external-traffic nodes, so event sequence numbers (and therefore
// dispatch order) match a standalone machine exactly.
func (m *Machine) startWith(startGen func()) {
	for i, c := range m.cores {
		m.eng.SetShard(m.shardOf(i))
		c.Start()
	}
	for i, x := range m.xmem {
		m.eng.SetShard(m.shardOf(m.cfg.NetCores + i))
		x.Start()
	}
	m.eng.SetShard(sim.SharedShard)
	switch {
	case m.cgen != nil:
		m.cgen.Start(m.eng.Now())
	case m.agen != nil:
		m.agen.Start()
	}
	if startGen != nil {
		startGen()
	}
	if m.cfg.DynamicDDIOEpoch > 0 && m.cfg.NICMode == nic.ModeDDIO {
		m.dp.startDynamicDDIO(m.cfg.DDIOWays)
	}
}

// DynamicDDIOWays reports the controller's current allocation and how many
// adjustments it has made (zero when the controller is off).
func (m *Machine) DynamicDDIOWays() (ways int, adjustments uint64) {
	return m.dp.dynWays, m.dp.dynAdjustments
}

func (m *Machine) snap() windowSnap {
	s := windowSnap{
		breakdown: m.dp.breakdown.Snapshot(),
		dramTxns:  m.dp.dram.Transactions(),
		served:    m.served,
		dropped:   m.nicD.Dropped(),
		llcHits:   m.dp.hier.LLC().Hits(),
		llcMisses: m.dp.hier.LLC().Misses(),
		start:     m.eng.Now(),
	}
	if m.dp.tier1 != nil {
		s.tierTxns = m.dp.tier1.Transactions()
	}
	if m.agen != nil {
		s.offered = m.agen.Offered()
	} else if m.extOffered != nil {
		s.offered = m.extOffered()
	}
	for _, x := range m.xmem {
		s.xmemAcc += x.Accesses()
	}
	_, s.sweepDrops = m.dp.hier.Sweeps()
	return s
}

// Run executes the machine for warmup cycles, then measures for measure
// cycles, returning the window's results. A machine runs exactly once.
func (m *Machine) Run(warmup, measure uint64) Results {
	m.beginRun(warmup, measure)
	m.start()
	if m.cfg.Sampling.Enabled() {
		return m.runSampled(warmup)
	}
	m.eng.RunUntil(warmup)
	m.BeginWindow()
	m.eng.RunUntil(warmup + measure)
	return m.EndWindow(measure)
}

// beginRun performs the once-per-run bookkeeping shared by Run and
// StartNode: the run-once guard, window recording, and sampler arming.
func (m *Machine) beginRun(warmup, measure uint64) {
	if m.ran {
		panic("machine: Run called twice; build a fresh Machine per run")
	}
	if measure == 0 {
		panic("machine: measurement window must be positive")
	}
	m.ran = true
	m.lastWarmup, m.lastMeasure = warmup, measure
	if m.obsOn || m.cfg.ObsSampleCycles > 0 {
		m.sampler = obs.NewSampler(m.eng, m.Metrics(), m.sampleCadence(warmup+measure))
		m.sampler.Start()
	}
}

// StartNode begins a cluster node's run on the shared engine: run-once
// bookkeeping plus every component's initial event. startGen, when
// non-nil, runs in the node's generator slot (see startWith); the cluster
// passes its front end's Start for exactly one node so the shared arrival
// process enters the event sequence where a local generator would. The
// engine is not advanced — the cluster drives RunUntil across all nodes
// and brackets the measurement window with BeginWindow/EndWindow.
func (m *Machine) StartNode(warmup, measure uint64, startGen func()) {
	if m.cfg.Sampling.Enabled() {
		panic("machine: sampled simulation is not supported on cluster nodes")
	}
	m.beginRun(warmup, measure)
	m.startWith(startGen)
}

// BeginWindow resets the window accumulators and opens the measurement
// window. Run calls it at the warmup boundary; the cluster layer calls it
// on every node when the shared engine reaches the cluster's warmup.
func (m *Machine) BeginWindow() {
	m.dp.dramLat.Reset()
	m.reqLat.Reset()
	m.svcSum, m.svcCount = 0, 0
	m.amatSum, m.amatCount = 0, 0
	m.measuring = true
	m.dp.measuring = true
	m.winSnap = m.snap()
}

// EndWindow closes the measurement window opened by BeginWindow and
// returns its Results.
func (m *Machine) EndWindow(measure uint64) Results {
	m.measuring = false
	m.dp.measuring = false
	m.finishRun()
	return m.collect(m.winSnap, measure)
}

// finishRun closes out a run: the sampler's final sample and the debug
// build's end-of-run structural check (set mapping and tag uniqueness across
// every cache level).
func (m *Machine) finishRun() {
	if m.sampler != nil {
		m.sampler.Finish(m.eng.Now())
	}
	if obs.ProbesEnabled {
		if err := m.dp.hier.CheckInvariants(); err != nil {
			obs.Failf("machine: cache hierarchy inconsistent after run: %v", err)
		}
	}
}

func (m *Machine) collect(snap windowSnap, measure uint64) Results {
	r := Results{MeasuredCycles: measure}
	freq := m.cfg.FreqHz

	r.Served = m.served - snap.served
	r.ThroughputMrps = stats.Mrps(r.Served, measure, freq)

	txns := m.dp.dram.Transactions() - snap.dramTxns
	r.MemBWGBps = stats.GBps(txns, measure, freq)
	r.MemBWUtilization = r.MemBWGBps / m.dp.dram.PeakGBps(freq)

	if m.dp.tier1 != nil {
		r.Tier1Accesses = m.dp.tier1.Transactions() - snap.tierTxns
		r.Tier1BWGBps = stats.GBps(r.Tier1Accesses, measure, freq)
	}

	r.AccessCounts = m.dp.breakdown.Sub(snap.breakdown)
	r.AccessesPerRequest = stats.PerRequest(r.AccessCounts, r.Served)

	r.DRAMLatMean = m.dp.dramLat.Mean()
	r.DRAMLatP50 = m.dp.dramLat.Percentile(0.50)
	r.DRAMLatP99 = m.dp.dramLat.Percentile(0.99)
	r.DRAMLatCDF = m.dp.dramLat.CDF()

	r.ReqLatMean = m.reqLat.Mean()
	r.ReqLatP99 = m.reqLat.Percentile(0.99)
	r.ReqLatP999 = m.reqLat.Percentile(0.999)
	if m.amatCount > 0 {
		r.AMATCycles = float64(m.amatSum) / float64(m.amatCount)
	}
	if m.svcCount > 0 {
		r.AvgServiceCycles = float64(m.svcSum) / float64(m.svcCount)
	}

	if m.agen != nil {
		r.Offered = m.agen.Offered() - snap.offered
	} else if m.extOffered != nil {
		r.Offered = m.extOffered() - snap.offered
	}
	r.Dropped = m.nicD.Dropped() - snap.dropped
	if r.Offered > 0 {
		r.DropRate = float64(r.Dropped) / float64(r.Offered)
	}

	if len(m.xmem) > 0 {
		var acc uint64
		for _, x := range m.xmem {
			acc += x.Accesses()
		}
		acc -= snap.xmemAcc
		r.XMemAccesses = acc
		perCore := float64(acc) / float64(len(m.xmem))
		instr := float64(m.xmem[0].Stream().InstrPerAccess())
		r.XMemIPC = perCore * instr / float64(measure)
	}

	hits := m.dp.hier.LLC().Hits() - snap.llcHits
	misses := m.dp.hier.LLC().Misses() - snap.llcMisses
	if hits+misses > 0 {
		r.LLCMissRatio = float64(misses) / float64(hits+misses)
	}

	r.Sweeper = m.sweep.Stats()
	_, drops := m.dp.hier.Sweeps()
	r.SweeperSavedGBps = stats.GBps(drops-snap.sweepDrops, measure, freq)
	return r
}
