package machine

import (
	"reflect"
	"testing"

	"sweeper/internal/core"
	"sweeper/internal/nic"
)

// TestResultsBitIdenticalAcrossFreshMachines is the engine-rewrite safety
// net: two fresh machines built from the same Config must produce Results
// that are identical in every field — counters, derived floats and full
// latency CDFs — across representative configurations (open loop, closed
// loop, Sweeper, collocation, dynamic DDIO). Any event-ordering change in
// the engine shows up here before it can perturb committed figures.
func TestResultsBitIdenticalAcrossFreshMachines(t *testing.T) {
	cases := map[string]func(*Config){
		"open-loop-ddio": func(c *Config) {},
		"sweeper": func(c *Config) {
			c.Sweeper = core.Config{RXSweep: true, IssueCyclesPerLine: 1}
		},
		"closed-loop": func(c *Config) {
			c.OfferedMrps = 0
			c.ClosedLoopDepth = 64
		},
		"dma": func(c *Config) {
			c.NICMode = nic.ModeDMA
		},
		"collocated-xmem": func(c *Config) {
			c.NetCores = 8
			c.XMemCores = 4
		},
		"dynamic-ddio": func(c *Config) {
			c.DynamicDDIOEpoch = 50_000
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := quickCfg()
			mutate(&cfg)
			run := func() Results {
				return MustNew(cfg).Run(400_000, 300_000)
			}
			r1, r2 := run(), run()
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("same Config diverged:\n  run1: %+v\n  run2: %+v", r1, r2)
			}
		})
	}
}
