package machine

import (
	"testing"

	"sweeper/internal/core"
	"sweeper/internal/nic"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// Directional sensitivity checks: these mirror the paper's sweeps at small
// scale, asserting the sign of each effect rather than magnitudes.

func TestMoreChannelsLowerLatency(t *testing.T) {
	run := func(channels int) Results {
		cfg := quickCfg()
		cfg.Mem.Channels = channels
		cfg.OfferedMrps = 10
		return quickRun(t, cfg)
	}
	r3, r8 := run(3), run(8)
	if r8.DRAMLatMean >= r3.DRAMLatMean {
		t.Fatalf("8 channels (%.0f cyc) should beat 3 channels (%.0f cyc)",
			r8.DRAMLatMean, r3.DRAMLatMean)
	}
}

func TestMoreDDIOWaysReduceRXEvictions(t *testing.T) {
	run := func(ways int) Results {
		cfg := quickCfg()
		cfg.DDIOWays = ways
		cfg.OfferedMrps = 10
		return quickRun(t, cfg)
	}
	r2, r12 := run(2), run(12)
	if r12.AccessesPerRequest[stats.RXEvct] >= r2.AccessesPerRequest[stats.RXEvct] {
		t.Fatalf("12-way RX Evct %.2f not below 2-way %.2f",
			r12.AccessesPerRequest[stats.RXEvct], r2.AccessesPerRequest[stats.RXEvct])
	}
}

func TestDeeperBuffersLeakMore(t *testing.T) {
	run := func(ring int) Results {
		cfg := quickCfg()
		cfg.RingSlots = ring
		cfg.OfferedMrps = 8
		return quickRun(t, cfg)
	}
	shallow, deep := run(128), run(2048)
	// 128x1KB/core = 3MB total fits the 2 DDIO ways (6MB); 2048 = 48MB
	// cannot. The leak must grow with provisioning (§II-C).
	if deep.AccessesPerRequest[stats.RXEvct] <= shallow.AccessesPerRequest[stats.RXEvct] {
		t.Fatalf("deep rings leak %.2f/req, shallow %.2f/req",
			deep.AccessesPerRequest[stats.RXEvct],
			shallow.AccessesPerRequest[stats.RXEvct])
	}
}

func TestSmallItemsSmallerFootprint(t *testing.T) {
	cfg := quickCfg()
	cfg.ItemBytes = 512
	cfg.PacketBytes = 512
	cfg.OfferedMrps = 10
	r := quickRun(t, cfg)
	if r.Served == 0 {
		t.Fatal("512B configuration served nothing")
	}
	// A 512B SET dirties 8 log lines (+bucket), so per-request traffic
	// must be well under the 1KB configuration's.
	if r.AccessesPerRequest[stats.OtherEvct] > 12 {
		t.Fatalf("512B items produced %.1f app writebacks/req",
			r.AccessesPerRequest[stats.OtherEvct])
	}
}

func TestMixedRequestSizesFromSizer(t *testing.T) {
	// 5% of KVS packets are key-only GETs: the NIC must see 64B and
	// 1024B arrivals. Total RX line traffic per request is then below
	// the uniform-1KB rate.
	cfg := quickCfg()
	cfg.NICMode = nic.ModeDMA // every RX line reaches DRAM: easy to count
	cfg.OfferedMrps = 4
	r := quickRun(t, cfg)
	perReq := r.AccessesPerRequest[stats.NICRXWr]
	if perReq <= 10 || perReq >= 16 {
		t.Fatalf("NIC RX Wr %.2f/req; expected ~15.3 (95%% 16-line SETs, 5%% 1-line GETs)", perReq)
	}
}

func TestNeBuLaDropPolicyBoundsQueueing(t *testing.T) {
	base := quickCfg()
	base.RingSlots = 2048
	base.OfferedMrps = 40 // beyond capacity: queues build
	r1 := quickRun(t, base)

	capped := base
	capped.NeBuLaDropDepth = 32
	r2 := quickRun(t, capped)

	if r2.Dropped == 0 {
		t.Fatal("drop policy never fired under overload")
	}
	if r2.ReqLatP99 >= r1.ReqLatP99 {
		t.Fatalf("bounded queues did not cut tail latency: %d vs %d",
			r2.ReqLatP99, r1.ReqLatP99)
	}
}

func TestSweeperImprovesLatencyUnderLoad(t *testing.T) {
	base := quickCfg()
	base.OfferedMrps = 13
	r1 := quickRun(t, base)

	swept := base
	swept.Sweeper = core.Config{RXSweep: true, IssueCyclesPerLine: 1}
	r2 := quickRun(t, swept)

	if r2.DRAMLatMean >= r1.DRAMLatMean {
		t.Fatalf("Sweeper did not reduce DRAM latency under load: %.0f vs %.0f",
			r2.DRAMLatMean, r1.DRAMLatMean)
	}
}

func TestIdealBeatsDDIOServiceTime(t *testing.T) {
	run := func(mode nic.Mode) Results {
		cfg := quickCfg()
		cfg.NICMode = mode
		cfg.OfferedMrps = 10
		return quickRun(t, cfg)
	}
	ddio, ideal := run(nic.ModeDDIO), run(nic.ModeIdeal)
	if ideal.AvgServiceCycles > ddio.AvgServiceCycles {
		t.Fatalf("ideal service %.0f worse than DDIO %.0f",
			ideal.AvgServiceCycles, ddio.AvgServiceCycles)
	}
}

func TestDRAMLatencyCDFWellFormed(t *testing.T) {
	r := quickRun(t, quickCfg())
	if len(r.DRAMLatCDF) == 0 {
		t.Fatal("no CDF points")
	}
	last := r.DRAMLatCDF[len(r.DRAMLatCDF)-1]
	if last.Fraction != 1.0 {
		t.Fatalf("CDF ends at %g", last.Fraction)
	}
	if r.DRAMLatP50 > r.DRAMLatP99 {
		t.Fatal("percentiles inverted")
	}
}

func TestXMemOnlyMachineInvalid(t *testing.T) {
	cfg := quickCfg()
	cfg.NetCores = 0
	cfg.XMemCores = 4
	if _, err := New(cfg); err == nil {
		t.Fatal("machines need at least one networked core")
	}
}

func TestWarmLLCTogglable(t *testing.T) {
	cfg := quickCfg()
	cfg.WarmLLC = false
	m := MustNew(cfg)
	if m.Hierarchy().LLC().ValidLines() != 0 {
		t.Fatal("cold machine has warm lines")
	}
	cfg.WarmLLC = true
	m2 := MustNew(cfg)
	llc := m2.Hierarchy().LLC()
	if llc.ValidLines() != llc.Sets()*llc.Ways() {
		t.Fatal("warm fill incomplete")
	}
}

func TestWarmFillUsesDedicatedRegion(t *testing.T) {
	m := MustNew(quickCfg())
	// No warm line may alias KVS structures: every GET/SET address must
	// miss the warm region. The warm region starts after the KVS
	// allocations, so it suffices that warm occupancy lies beyond them.
	kvs := m.Workload().(*workload.KVS)
	kvsEnd := kvs.LogBase() + kvs.Config().LogBytes
	aliased := m.Hierarchy().LLC().OccupancyByClass(func(a uint64) bool {
		return a < kvsEnd
	})
	if aliased != 0 {
		t.Fatalf("%d warm lines alias live KVS data", aliased)
	}
}

func TestIDIOModeServes(t *testing.T) {
	cfg := quickCfg()
	cfg.NICMode = nic.ModeIDIO
	cfg.OfferedMrps = 8
	r := quickRun(t, cfg)
	if r.Served == 0 {
		t.Fatal("IDIO machine served nothing")
	}
	// Packets land in the L2, never in DRAM on the RX path.
	if r.AccessCounts[stats.NICRXWr] != 0 {
		t.Fatal("IDIO leaked NIC writes to DRAM")
	}
	if r.AccessesPerRequest[stats.CPURXRd] > 1 {
		t.Fatalf("IDIO premature reads %.2f/req", r.AccessesPerRequest[stats.CPURXRd])
	}
}

func TestDynamicDDIOControllerAdapts(t *testing.T) {
	// The forwarder has almost no application traffic, so its leak
	// dominates and the controller must widen the DDIO allocation.
	cfg := DefaultConfig()
	cfg.Workload = workload.NameL3Fwd
	cfg.ItemBytes = 0
	cfg.RingSlots = 2048
	cfg.TXSlots = 2048
	cfg.ClosedLoopDepth = 64
	cfg.OfferedMrps = 0
	cfg.DynamicDDIOEpoch = 100_000
	m := MustNew(cfg)
	m.Run(1_200_000, 600_000)
	ways, adjustments := m.DynamicDDIOWays()
	if adjustments == 0 {
		t.Fatal("controller never adjusted")
	}
	if ways < 2 || ways > 12 {
		t.Fatalf("ways %d escaped [2,12]", ways)
	}
	if ways <= cfg.DDIOWays {
		t.Fatalf("leak-dominated run should have grown ways, got %d", ways)
	}
}

func TestDynamicDDIOOffByDefault(t *testing.T) {
	m := MustNew(quickCfg())
	m.Run(200_000, 200_000)
	if _, adj := m.DynamicDDIOWays(); adj != 0 {
		t.Fatal("controller ran without being configured")
	}
}
