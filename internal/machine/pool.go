package machine

import (
	"runtime"
	"sync"
)

// Pool recycles machines across runs. Building a Table I machine allocates
// tens of megabytes (cache arrays, the engine's event slab, the KVS key
// tables), and a figure sweep's peak search builds ~20 machines per
// configuration; pooling replaces that churn with O(1) generation-bump
// resets. Machines are keyed by allocation geometry, so a pool can serve a
// sweep that varies rates, seeds, modes and Sweeper settings over one shape.
//
// Pool is safe for concurrent use by the parallel experiment driver. Reset
// guarantees a recycled machine runs bit-identically to a fresh one; see
// Machine.Reset for what "same geometry" requires.
type Pool struct {
	mu      sync.Mutex
	idle    map[geometry][]*Machine
	maxIdle int
}

// NewPool creates a pool retaining at most maxIdle machines per geometry
// (<= 0 selects GOMAXPROCS, matching the experiment driver's parallelism).
func NewPool(maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = runtime.GOMAXPROCS(0)
	}
	return &Pool{idle: make(map[geometry][]*Machine), maxIdle: maxIdle}
}

// Get returns a machine configured per cfg: a recycled one when the pool
// holds a machine of the same geometry, otherwise a fresh build.
func (p *Pool) Get(cfg Config) (*Machine, error) {
	key, err := poolKey(cfg)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	var m *Machine
	if q := p.idle[key]; len(q) > 0 {
		m = q[len(q)-1]
		q[len(q)-1] = nil
		p.idle[key] = q[:len(q)-1]
	}
	p.mu.Unlock()
	if m == nil {
		return New(cfg)
	}
	if err := m.Reset(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// MustGet is Get, panicking on configuration errors; the pooled counterpart
// of MustNew.
func (p *Pool) MustGet(cfg Config) *Machine {
	m, err := p.Get(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Put returns a machine to the pool for reuse. Machines beyond the per-
// geometry idle cap are dropped for the garbage collector. The caller must
// not touch m afterwards.
func (p *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	key := geometryOf(m.cfg)
	p.mu.Lock()
	if len(p.idle[key]) < p.maxIdle {
		p.idle[key] = append(p.idle[key], m)
	}
	p.mu.Unlock()
}

// poolKey validates cfg far enough to derive its geometry (respSlotBytes
// depends on a workload-specific field).
func poolKey(cfg Config) (geometry, error) {
	if err := cfg.Validate(); err != nil {
		return geometry{}, err
	}
	cfg.Cache.NCores = cfg.NetCores + cfg.XMemCores
	return geometryOf(cfg), nil
}
