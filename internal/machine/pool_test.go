package machine

import (
	"reflect"
	"testing"

	"sweeper/internal/core"
	"sweeper/internal/nic"
)

// poolCases mirrors the fresh-machine determinism matrix: the same six
// representative configurations must behave identically when served by a
// recycled machine.
func poolCases() map[string]func(*Config) {
	return map[string]func(*Config){
		"open-loop-ddio": func(c *Config) {},
		"sweeper": func(c *Config) {
			c.Sweeper = core.Config{RXSweep: true, IssueCyclesPerLine: 1}
		},
		"closed-loop": func(c *Config) {
			c.OfferedMrps = 0
			c.ClosedLoopDepth = 64
		},
		"dma": func(c *Config) {
			c.NICMode = nic.ModeDMA
		},
		"collocated-xmem": func(c *Config) {
			c.NetCores = 8
			c.XMemCores = 4
		},
		"dynamic-ddio": func(c *Config) {
			c.DynamicDDIOEpoch = 50_000
		},
	}
}

// dirtyVariant derives a same-geometry configuration that differs in every
// non-geometric dimension we can easily flip — seed, Sweeper, NIC mode and
// even the traffic-generator kind — so the recycled machine's prior life
// looks nothing like the run under test.
func dirtyVariant(cfg Config) Config {
	d := cfg
	d.Seed = cfg.Seed + 17
	d.Sweeper = core.Config{RXSweep: !cfg.Sweeper.RXSweep, IssueCyclesPerLine: 1}
	if d.NICMode == nic.ModeDDIO {
		d.NICMode = nic.ModeDMA
	} else {
		d.NICMode = nic.ModeDDIO
	}
	if d.ClosedLoopDepth > 0 {
		d.ClosedLoopDepth = 0
		d.OfferedMrps = 8
	} else {
		d.OfferedMrps = 0
		d.ClosedLoopDepth = 32
	}
	return d
}

// TestPooledMachineBitIdenticalToFresh is the pooling safety net: a machine
// recycled from an unrelated (same-geometry) run must produce Results that
// are identical in every field to a freshly built machine's.
func TestPooledMachineBitIdenticalToFresh(t *testing.T) {
	for name, mutate := range poolCases() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := quickCfg()
			mutate(&cfg)
			fresh := MustNew(cfg).Run(400_000, 300_000)

			pool := NewPool(1)
			m := pool.MustGet(dirtyVariant(cfg))
			m.Run(100_000, 50_000)
			pool.Put(m)

			recycled := pool.MustGet(cfg)
			if recycled != m {
				t.Fatal("pool built a fresh machine instead of recycling")
			}
			pooled := recycled.Run(400_000, 300_000)
			if !reflect.DeepEqual(fresh, pooled) {
				t.Fatalf("pooled run diverged from fresh:\n  fresh:  %+v\n  pooled: %+v", fresh, pooled)
			}
		})
	}
}

// TestPoolGeometryMiss ensures a geometry change cannot recycle an
// incompatible machine: the pool must build a fresh one.
func TestPoolGeometryMiss(t *testing.T) {
	pool := NewPool(2)
	a := pool.MustGet(quickCfg())
	pool.Put(a)

	small := quickCfg()
	small.NetCores = 4
	b := pool.MustGet(small)
	if b == a {
		t.Fatal("pool recycled a machine across different geometries")
	}
}

// TestResetRejectsGeometryMismatch guards the direct Reset API.
func TestResetRejectsGeometryMismatch(t *testing.T) {
	m := MustNew(quickCfg())
	bad := quickCfg()
	bad.RingSlots *= 2
	if err := m.Reset(bad); err == nil {
		t.Fatal("Reset accepted a geometry-changing config")
	}
	// A same-geometry Reset must succeed even after an error attempt.
	good := quickCfg()
	good.Seed = 99
	if err := m.Reset(good); err != nil {
		t.Fatalf("Reset rejected a same-geometry config: %v", err)
	}
}

// TestPoolIdleCap checks that Put drops machines beyond the idle cap rather
// than growing without bound.
func TestPoolIdleCap(t *testing.T) {
	pool := NewPool(1)
	cfg := quickCfg()
	a, b := MustNew(cfg), MustNew(cfg)
	pool.Put(a)
	pool.Put(b) // beyond cap: dropped
	first := pool.MustGet(cfg)
	if first != a {
		t.Fatal("expected the first pooled machine back")
	}
	second := pool.MustGet(cfg)
	if second == b {
		t.Fatal("machine beyond the idle cap was retained")
	}
}
