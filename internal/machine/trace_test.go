package machine

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceSinkObservesMeasurementWindow(t *testing.T) {
	cfg := quickCfg()
	cfg.OfferedMrps = 4
	m := MustNew(cfg)
	var events []TraceEvent
	m.SetTraceSink(func(ev TraceEvent) { events = append(events, ev) })
	r := m.Run(400_000, 400_000)

	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	var total uint64
	for _, c := range r.AccessCounts {
		total += c
	}
	if uint64(len(events)) != total {
		t.Fatalf("trace has %d events, accounting says %d", len(events), total)
	}
	for _, ev := range events {
		if ev.Cycle < 400_000 {
			t.Fatalf("trace captured warmup event at cycle %d", ev.Cycle)
		}
		if ev.Addr%64 != 0 {
			t.Fatalf("unaligned trace address %#x", ev.Addr)
		}
		if !ev.Kind.IsWriteback() && ev.LatencyCycles == 0 {
			t.Fatalf("demand read with zero latency: %+v", ev)
		}
	}
}

func TestTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	sink, flush := TraceCSV(&buf)
	sink(TraceEvent{Cycle: 5, Addr: 0x1000, Kind: 5, LatencyCycles: 0})
	sink(TraceEvent{Cycle: 9, Addr: 0x2000, Kind: 2, LatencyCycles: 120})
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "cycle,addr,kind,latency_cycles" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "RX Evct") || !strings.Contains(lines[2], "CPU RX Rd") {
		t.Fatalf("rows: %v", lines[1:])
	}
}
