package machine

import (
	"fmt"
	"math/rand"

	"sweeper/internal/addr"
	"sweeper/internal/cache"
	"sweeper/internal/core"
	"sweeper/internal/cpu"
	"sweeper/internal/mem"
	"sweeper/internal/nic"
	"sweeper/internal/obs"
	"sweeper/internal/sim"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// Machine is one fully assembled simulated server: a thin composition root
// over the event engine, the memory datapath, the NIC, the Sweeper, the
// workload driver and the cores. A Machine runs exactly once: build a fresh
// one (or Reset a pooled one) per configuration probe so caches start cold
// and warmup is well defined.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	dp    *datapath
	nicD  *nic.NIC
	sweep *core.Sweeper

	// drv is the networked application, built through the workload
	// registry; drvName/drvParams record what it was built from so Reset
	// can reuse it when the parameterization is unchanged.
	drv       workload.Driver
	drvName   string
	drvParams workload.Params
	xmemName  string

	cores []*cpu.Core
	xmem  []*cpu.XMemCore

	// agen is the open-loop arrival process, built through the nic
	// arrival registry (Poisson by default; MMPP, trace replay, ... by
	// Config.Arrival); agenProc records its registry name so Reset can
	// reuse the generator when the process is unchanged. cgen is the
	// closed-loop alternative.
	agen     nic.ArrivalGen
	agenProc string
	cgen     *nic.ClosedLoopGen

	// Cluster wiring (all zero on standalone machines): ownsEngine marks
	// the engine as this machine's (New) rather than borrowed from a
	// cluster (NewNode); extTraffic suppresses the node's own open-loop
	// generator because the cluster's front end injects packets directly;
	// extOffered reads the front end's per-node offered counter in its
	// place; remoteRead is the cluster's fabric + remote-DRAM access path
	// for addresses flagged addr.IsRemote.
	ownsEngine bool
	extTraffic bool
	extOffered func() uint64
	remoteRead func(now uint64, core int, a uint64, write bool) uint64

	rng *rand.Rand

	// Request-side accounting (window deltas are taken at snap).
	reqLat   *stats.Histogram
	served   uint64
	svcSum   uint64
	svcCount uint64

	measuring bool
	ran       bool
	// winSnap holds the cumulative-counter snapshot taken at BeginWindow,
	// consumed by EndWindow's delta collection.
	winSnap windowSnap

	// Sampled-simulation state (sampling.go): ff mirrors the hierarchy's
	// fast-forward flag for the cores' cheap checks; amatSum/amatCount
	// accumulate CPU-side hierarchy access latency while measuring (the
	// AMAT the paper's model centres on); ffLatSum/ffLatCount accumulate
	// functional request latency, the warm-up detector's service proxy.
	// ffPlan/ffLines are fast-forward scratch buffers.
	ff                   bool
	amatSum, amatCount   uint64
	ffLatSum, ffLatCount uint64
	ffPlan               workload.Plan
	ffLines              []uint64
	ffRespSlot           uint64

	// Observability (internal/obs): the lazily built metric registry, the
	// optional periodic sampler, and the windows of the last Run (recorded
	// for manifests). All zero until EnableSampling or Metrics is called.
	metrics                 *obs.Registry
	sampler                 *obs.Sampler
	obsOn                   bool
	obsEvery                uint64
	lastWarmup, lastMeasure uint64
}

// New assembles a standalone machine from cfg: the machine owns (and
// shards) its event engine and drives its own traffic generator.
func New(cfg Config) (*Machine, error) {
	if cfg.ClusterNodes > 1 {
		return nil, fmt.Errorf("machine: ClusterNodes %d on a standalone machine (assemble through cluster.New)", cfg.ClusterNodes)
	}
	return newMachine(cfg, nil, NodeOptions{})
}

// NodeOptions configures a cluster-owned node.
type NodeOptions struct {
	// ExternalTraffic suppresses the node's own open-loop generator: the
	// cluster's load-balancer front end injects packets directly into the
	// node's NIC. Closed-loop nodes keep their own generators and leave
	// this false.
	ExternalTraffic bool
	// Offered reads the front end's per-node injection-attempt counter,
	// standing in for the suppressed generator's Offered() so drop rates
	// and offered-load results stay meaningful.
	Offered func() uint64
}

// NewNode assembles a machine as one node of a cluster, running on a
// borrowed engine the cluster layer owns and has already sharded. The node
// never reconfigures or resets the engine, places its cores on shards by
// cluster-global core index, and is started through StartNode rather than
// Run.
func NewNode(cfg Config, eng *sim.Engine, opts NodeOptions) (*Machine, error) {
	if eng == nil {
		panic("machine: NewNode needs the cluster's engine")
	}
	return newMachine(cfg, eng, opts)
}

func newMachine(cfg Config, eng *sim.Engine, opts NodeOptions) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := cfg.NetCores + cfg.XMemCores
	cfg.Cache.NCores = total

	ownsEngine := eng == nil
	if ownsEngine {
		eng = sim.NewEngine()
	}
	m := &Machine{
		cfg:        cfg,
		eng:        eng,
		ownsEngine: ownsEngine,
		extTraffic: opts.ExternalTraffic,
		extOffered: opts.Offered,
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		reqLat:     stats.NewHistogram(64, 8192),
	}

	rxBytes := uint64(cfg.RingSlots) * cfg.PacketBytes
	txBytes := uint64(cfg.TXSlots) * cfg.respSlotBytes()
	space := addr.NewSpace(total, rxBytes, txBytes)

	m.dp = newDatapath(m.eng, space, cfg.Mem, cfg.Cache)
	m.sweep = core.New(m.dp.hier, cfg.Sweeper)
	m.nicD = nic.New(nic.Config{
		Mode:      cfg.NICMode,
		RingSlots: cfg.RingSlots,
		SlotBytes: cfg.PacketBytes,
	}, space, m.dp.hier)

	if err := m.configure(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// configure performs every configuration-dependent assembly step over
// already-allocated (or freshly Reset) subsystems: datapath way policy, NIC
// hooks, workload layout (in address-space allocation order), cores, tenant
// streams and the traffic generator. New and Reset share it verbatim, which
// is what guarantees a pooled machine is configured exactly like a fresh one.
func (m *Machine) configure(cfg Config) error {
	// Reconfiguration may replace cores and generators, so any previously
	// built registry holds stale closures; drop it for lazy rebuild.
	m.metrics = nil

	// Shard the engine before anything schedules: shard 0 hosts the shared
	// NIC/LLC/DRAM domain (generators, dynamic-DDIO controller, sampler),
	// the remaining shards split the cores. Placement only decides which
	// timing wheel holds an event — dispatch order is canonical (at, seq)
	// regardless — so results are bit-identical at every shard count.
	// Cluster nodes run on a borrowed engine the cluster layer has already
	// configured for the whole rack.
	if m.ownsEngine {
		m.eng.ConfigureShards(cfg.resolveShards(), cfg.lookaheadCycles())
	}

	m.dp.configure(cfg)

	if cfg.NeBuLaDropDepth > 0 {
		m.nicD.SetDropDepth(cfg.NeBuLaDropDepth)
	}
	m.nicD.SetTXSweeper(m.sweep)
	if cfg.Sweeper.DebugUseAfterRelinquish {
		m.nicD.SetOverwriteListener(m.sweep)
	}
	m.nicD.SetEnqueueCallback(func(now uint64, c int) {
		if c < cfg.NetCores {
			m.cores[c].Wake(now)
		}
	})

	// Build the workload driver through the registry, reusing the live one
	// exactly when its name and parameterization are unchanged (its layout
	// against the freshly Reset space reproduces a fresh driver's state).
	p := cfg.params()
	if m.drv == nil || m.drvName != cfg.Workload || m.drvParams != p {
		drv, err := workload.NewDriver(cfg.Workload, p)
		if err != nil {
			return err
		}
		m.drv, m.drvName, m.drvParams = drv, cfg.Workload, p
	}
	// Cluster nodes shard the workload's primary structure across the rack
	// before layout, so the per-node layout allocates only this node's
	// shard and plans can emit addr.Remote references to the others.
	if cfg.ClusterNodes > 1 {
		cs, ok := m.drv.(workload.ClusterSharder)
		if !ok {
			return fmt.Errorf("machine: workload %q cannot shard across %d nodes (does not implement workload.ClusterSharder)",
				cfg.Workload, cfg.ClusterNodes)
		}
		cs.SetCluster(cfg.ClusterNodes, cfg.NodeID)
	}
	m.drv.Layout(m.dp.space)
	if cfg.WarmLLC {
		// Detailed runs fill only when the workload opts in (LLCWarmer),
		// keeping full-run results exactly as they always were. Sampled runs
		// always fill: the drain-once legacy lines occupy the ways the
		// content install below leaves empty, so the warm-up detector sees
		// steady-state eviction pressure instead of a cache still filling.
		w, ok := m.drv.(workload.LLCWarmer)
		if (ok && w.WarmLLC()) || cfg.Sampling.Enabled() {
			m.dp.warmLLC(cfg)
		}
	}

	m.ffRespSlot = cfg.respSlotBytes()
	if len(m.cores) != cfg.NetCores {
		m.cores = make([]*cpu.Core, cfg.NetCores)
	}
	for i := range m.cores {
		ccfg := cpu.CoreConfig{
			PollCycles:  cfg.PollCycles,
			TXSlots:     cfg.TXSlots,
			TXSlotBytes: cfg.respSlotBytes(),
			TXBase:      m.dp.space.TXBase(i),
			SweepTX:     cfg.SweepTX,
			MLP:         cfg.MLPWidth,
			Shard:       m.shardOf(i),
		}
		if m.cores[i] != nil {
			m.cores[i].Reset(ccfg)
		} else {
			m.cores[i] = cpu.NewCore(i, m.eng, m, ccfg)
		}
	}
	if len(m.xmem) != cfg.XMemCores {
		m.xmem = make([]*cpu.XMemCore, cfg.XMemCores)
	}
	xname := cfg.xmemName()
	for i := range m.xmem {
		id := cfg.NetCores + i
		seed := uint64(cfg.Seed) + uint64(id)*977
		if m.xmem[i] != nil && m.xmemName == xname {
			m.xmem[i].Stream().Layout(m.dp.space, seed)
			m.xmem[i].Reset()
		} else {
			stream, err := workload.NewStream(xname, p)
			if err != nil {
				return err
			}
			stream.Layout(m.dp.space, seed)
			m.xmem[i] = cpu.NewXMemCore(id, m.eng, m, stream)
		}
	}
	m.xmemName = xname

	// Content-aware warming runs after every Layout call so the emitted
	// addresses are this configuration's. Resident sets install most-
	// recently-used, displacing legacy warm fill — exactly the occupancy a
	// long-running machine converges to — and collocated-tenant sets are
	// then pre-aged by a churn epilogue so LRU competition starts at its
	// equilibrium instead of drifting there over millions of cycles.
	// Sampled runs only: a full detailed run warms up the long way, and its
	// results (and the committed goldens) must not depend on install state.
	if cfg.WarmLLC && cfg.Sampling.Enabled() {
		llc := m.dp.hier.LLC()
		budget := uint64(llc.Sets() * llc.Ways())
		if w, ok := m.drv.(workload.StateWarmer); ok {
			w.WarmLines(budget, m.dp.installWarmLine)
		}
		var tenantLines uint64
		for _, x := range m.xmem {
			if w, ok := x.Stream().(workload.StateWarmer); ok {
				var n uint64
				w.WarmLines(budget, func(line uint64, dirty bool) {
					n++
					m.dp.installWarmLine(line, dirty)
				})
				if n > tenantLines {
					tenantLines = n
				}
			}
		}
		m.warmChurnPressure(cfg, tenantLines, budget)
	}

	if cfg.ClosedLoopDepth > 0 {
		m.agen, m.agenProc = nil, ""
		if m.cgen != nil {
			m.cgen.Reset(cfg.ClosedLoopDepth, cfg.Seed)
		} else {
			m.cgen = nic.NewClosedLoopGen(m.nicD, cfg.PacketBytes, cfg.ClosedLoopDepth, cfg.Seed)
		}
		m.cgen.SetTargetCores(cfg.NetCores)
		if s, ok := m.drv.(workload.RequestSizer); ok {
			m.cgen.SetSizer(s.RequestBytes)
		}
	} else if m.extTraffic {
		// The cluster front end injects this node's arrivals; no local
		// generator at all.
		m.cgen, m.agen, m.agenProc = nil, nil, ""
	} else {
		m.cgen = nil
		spec := m.arrivalSpec(cfg)
		proc := cfg.Arrival.Process
		if m.agen != nil && m.agenProc == proc {
			if err := m.agen.Reset(spec); err != nil {
				return err
			}
		} else {
			gen, err := nic.NewArrival(m.eng, spec, m.injectArrival)
			if err != nil {
				return err
			}
			m.agen, m.agenProc = gen, proc
		}
		if s, ok := m.drv.(workload.RequestSizer); ok {
			m.agen.SetSizer(s.RequestBytes)
		}
	}
	return nil
}

// arrivalSpec derives the arrival-process parameterization from a machine
// configuration.
func (m *Machine) arrivalSpec(cfg Config) nic.ArrivalSpec {
	return nic.ArrivalSpec{
		Cores:   cfg.NetCores,
		Size:    cfg.PacketBytes,
		MeanGap: stats.CyclesPerSecond(cfg.OfferedMrps*1e6, cfg.FreqHz),
		Seed:    cfg.Seed,
		Config:  cfg.Arrival,
	}
}

// injectArrival is the machine's InjectFunc: arrivals land in its own NIC.
func (m *Machine) injectArrival(now uint64, core int, size uint64, tag uint64) {
	m.nicD.Inject(now, core, size, tag)
}

// warmChurnPressure pre-ages the warm-installed shared cache for collocated
// runs. Installed tenant arrays start uniformly most-recently-used, but the
// steady state has them competing with a stream of packet-buffer churn —
// without the epilogue, LRU only reaches that equilibrium after roughly one
// tenant reuse interval (millions of cycles at default rates). The epilogue
// streams that interval's worth of churn-proxy lines (a dedicated
// drain-once legacy region, like warmLLC's) through the cache, so sets
// begin at steady-state eviction pressure. tenantLines is the largest
// per-stream resident set installed; rates derive from the configuration:
// the tenant touches its array every (LLC hit / XMemMLP + compute) cycles,
// and each offered packet inserts its lines twice (NIC write, CPU copy).
func (m *Machine) warmChurnPressure(cfg Config, tenantLines, lineBudget uint64) {
	if tenantLines == 0 || len(m.xmem) == 0 || cfg.OfferedMrps <= 0 {
		return
	}
	period := (cfg.Cache.NoCLat+cfg.Cache.LLCLat)/cpu.XMemMLP +
		m.xmem[0].Stream().ComputeCycles()
	reuse := float64(tenantLines * period)
	pktLines := (cfg.PacketBytes + addr.LineBytes - 1) / addr.LineBytes
	rate := cfg.OfferedMrps * 1e6 / cfg.FreqHz * float64(2*pktLines)
	overlay := uint64(rate * reuse)
	if overlay > lineBudget {
		overlay = lineBudget
	}
	if overlay == 0 {
		return
	}
	base := m.dp.space.AllocApp(overlay * addr.LineBytes)
	for i := uint64(0); i < overlay; i++ {
		// Half dirty: NIC-written churn drains through writebacks, CPU
		// copies drop clean, mirroring the steady mix.
		m.dp.installWarmLine(base+i*addr.LineBytes, i%2 == 0)
	}
}

// shardOf places a simulated core on an engine shard by cluster-global core
// index, so every node of a rack sharing one engine spreads its cores
// across the shards. Standalone machines have NodeID 0 and reduce to the
// original per-machine placement.
func (m *Machine) shardOf(coreID int) int {
	global := m.cfg.NodeID*(m.cfg.NetCores+m.cfg.XMemCores) + coreID
	return sim.CoreShard(m.eng.NumShards(), global)
}

// geometry captures every allocation-shaping parameter of a Config: the
// parts of a machine that Reset reuses in place rather than reconfigures.
// Two configs with equal geometry can share one pooled machine.
type geometry struct {
	netCores, xmemCores int
	ringSlots           int
	packetBytes         uint64
	txSlots             int
	respSlotBytes       uint64
	cache               cache.Config
	mem                 mem.Config
}

func geometryOf(cfg Config) geometry {
	return geometry{
		netCores:      cfg.NetCores,
		xmemCores:     cfg.XMemCores,
		ringSlots:     cfg.RingSlots,
		packetBytes:   cfg.PacketBytes,
		txSlots:       cfg.TXSlots,
		respSlotBytes: cfg.respSlotBytes(),
		cache:         cfg.Cache,
		mem:           cfg.Mem,
	}
}

// Reset returns a used machine to the state New(cfg) would produce, reusing
// every geometry-sized allocation: the engine's event slab, the cache arrays
// (~15MB for Table I), DRAM channel state, ring storage and the workload's
// per-key arrays. The new configuration must have the same geometry as the
// one the machine was built with (same core counts, ring shapes, cache and
// DRAM sizing); non-geometric knobs — seeds, rates, modes, way masks,
// Sweeper settings, shard counts — may differ freely. Reset-then-Run is
// bit-identical to fresh-build-then-Run.
func (m *Machine) Reset(cfg Config) error {
	if !m.ownsEngine {
		return fmt.Errorf("machine: cluster nodes run on a borrowed engine and are not poolable; build a fresh cluster")
	}
	if cfg.ClusterNodes > 1 {
		return fmt.Errorf("machine: ClusterNodes %d on a standalone machine (assemble through cluster.New)", cfg.ClusterNodes)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	total := cfg.NetCores + cfg.XMemCores
	cfg.Cache.NCores = total
	if geometryOf(cfg) != geometryOf(m.cfg) {
		return fmt.Errorf("machine: Reset geometry mismatch (build a fresh machine): have %+v, want %+v",
			geometryOf(m.cfg), geometryOf(cfg))
	}
	m.cfg = cfg
	m.eng.Reset()
	m.rng.Seed(cfg.Seed ^ 0x5eed)
	m.reqLat.Reset()
	m.dp.reset()
	m.sweep.Reset(cfg.Sweeper)
	m.nicD.Reset(cfg.NICMode)

	m.served, m.svcSum, m.svcCount = 0, 0, 0
	m.measuring, m.ran = false, false
	m.winSnap = windowSnap{}
	m.ff = false
	m.amatSum, m.amatCount = 0, 0
	m.ffLatSum, m.ffLatCount = 0, 0
	m.sampler, m.obsOn, m.obsEvery = nil, false, 0
	m.lastWarmup, m.lastMeasure = 0, 0

	return m.configure(cfg)
}

// MustNew is New, panicking on configuration errors; a convenience for
// experiment tables whose configs are static.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Accessors for tests, examples and the experiment harness.

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Engine returns the event engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Hierarchy returns the cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.dp.hier }

// DRAM returns the memory model.
func (m *Machine) DRAM() *mem.DDR4 { return m.dp.dram }

// NIC returns the network interface.
func (m *Machine) NIC() *nic.NIC { return m.nicD }

// Sweeper returns the Sweeper instance.
func (m *Machine) Sweeper() *core.Sweeper { return m.sweep }

// Space returns the address map.
func (m *Machine) Space() *addr.Space { return m.dp.space }

// Workload returns the networked application driver. Callers needing a
// concrete type (tests, workload-specific reports) type-assert the result.
func (m *Machine) Workload() workload.Driver { return m.drv }

// Env implementation (cpu.Env).

// PopPacket implements cpu.Env.
func (m *Machine) PopPacket(c int) (nic.Packet, bool) {
	return m.nicD.Ring(c).Pop()
}

// OnPop implements cpu.Env: closed-loop generators refill immediately.
func (m *Machine) OnPop(now uint64, c int) {
	if m.cgen != nil {
		m.cgen.Refill(now, c)
	}
}

// PlanRequest implements cpu.Env.
func (m *Machine) PlanRequest(tag uint64, pktBytes uint64, plan *workload.Plan) {
	m.drv.PlanRequest(tag, pktBytes, plan)
}

// noteAccess accumulates a CPU-side hierarchy access latency into the AMAT
// accumulator while measuring, and passes the completion cycle through.
func (m *Machine) noteAccess(now, done uint64) uint64 {
	if m.measuring {
		m.amatSum += done - now
		m.amatCount++
	}
	return done
}

// RXRead implements cpu.Env. Under Ideal-DDIO network buffers live in the
// infinite side cache at LLC latency; otherwise the read goes through the
// real hierarchy (with the optional use-after-relinquish sanitizer).
func (m *Machine) RXRead(now uint64, c int, a uint64) uint64 {
	if m.cfg.NICMode == nic.ModeIdeal {
		return m.noteAccess(now, now+m.cfg.Cache.NoCLat+m.cfg.Cache.LLCLat)
	}
	if m.cfg.Sweeper.DebugUseAfterRelinquish {
		m.sweep.CheckRead(a)
	}
	return m.noteAccess(now, m.dp.hier.CPURead(now, c, a))
}

// SetRemoteAccess installs the cluster's remote-memory path: application
// accesses to addresses flagged addr.IsRemote are routed to fn, which pays
// fabric plus remote-DRAM latency and returns the completion cycle. Only
// the cluster layer calls this; a remote address on a machine without the
// hook panics, because it means a sharded workload escaped its cluster.
func (m *Machine) SetRemoteAccess(fn func(now uint64, core int, a uint64, write bool) uint64) {
	m.remoteRead = fn
}

// remoteAccess routes one remote application access through the installed
// cluster hook.
func (m *Machine) remoteAccess(now uint64, c int, a uint64, write bool) uint64 {
	if m.remoteRead == nil {
		panic(fmt.Sprintf("machine: remote address %#x outside a cluster (no remote-access hook installed)", a))
	}
	return m.remoteRead(now, c, a, write)
}

// AppRead implements cpu.Env. Remote addresses (a KVS item homed on
// another node's log shard) take the cluster's fabric path; the latency
// still lands in the AMAT accumulator, because remote memory is exactly
// the kind of access the paper's throughput model charges the core for.
func (m *Machine) AppRead(now uint64, c int, a uint64) uint64 {
	if addr.IsRemote(a) {
		return m.noteAccess(now, m.remoteAccess(now, c, a, false))
	}
	return m.noteAccess(now, m.dp.hier.CPURead(now, c, a))
}

// AppWrite implements cpu.Env.
func (m *Machine) AppWrite(now uint64, c int, a uint64) uint64 {
	if addr.IsRemote(a) {
		return m.noteAccess(now, m.remoteAccess(now, c, a, true))
	}
	return m.noteAccess(now, m.dp.hier.CPUWrite(now, c, a))
}

// AppWriteFull implements cpu.Env.
func (m *Machine) AppWriteFull(now uint64, c int, a uint64) uint64 {
	if addr.IsRemote(a) {
		return m.noteAccess(now, m.remoteAccess(now, c, a, true))
	}
	return m.noteAccess(now, m.dp.hier.CPUWriteFull(now, c, a))
}

// TXWrite implements cpu.Env: Ideal-DDIO keeps TX buffers in the side cache
// too ("zero memory traffic due to network data movements", §III).
// Response construction overwrites whole lines, so the real-cache path is a
// streaming full-line store.
func (m *Machine) TXWrite(now uint64, c int, a uint64) uint64 {
	if m.cfg.NICMode == nic.ModeIdeal {
		return m.noteAccess(now, now+m.cfg.Cache.L1Lat)
	}
	return m.noteAccess(now, m.dp.hier.CPUWriteFull(now, c, a))
}

// Relinquish implements cpu.Env. Under Ideal-DDIO there is nothing to
// sweep: the buffers never entered the real hierarchy.
func (m *Machine) Relinquish(now uint64, c int, buf, size uint64) uint64 {
	if m.cfg.NICMode == nic.ModeIdeal {
		return now
	}
	return m.sweep.Relinquish(now, c, buf, size)
}

// FreeRXSlot implements cpu.Env.
func (m *Machine) FreeRXSlot(c int) { m.nicD.Ring(c).Free() }

// Transmit implements cpu.Env.
func (m *Machine) Transmit(now uint64, wqe nic.WorkQueueEntry) {
	m.nicD.Transmit(now, wqe)
}

// ExtraServiceCycles implements cpu.Env: any workload-imposed delay plus the
// §VI-F spike injector.
func (m *Machine) ExtraServiceCycles(c int, tag uint64) uint64 {
	extra := m.drv.ExtraServiceCycles(tag)
	if m.cfg.SpikeProb <= 0 {
		return extra
	}
	if m.rng.Float64() >= m.cfg.SpikeProb {
		return extra
	}
	span := m.cfg.SpikeMaxCycles - m.cfg.SpikeMinCycles
	if span == 0 {
		return extra + m.cfg.SpikeMinCycles
	}
	return extra + m.cfg.SpikeMinCycles + uint64(m.rng.Int63n(int64(span)))
}

// OnRequestDone implements cpu.Env.
func (m *Machine) OnRequestDone(now uint64, c int, p nic.Packet, serviceCycles uint64) {
	m.served++
	if m.measuring {
		m.reqLat.Record(now - p.Arrival)
		m.svcSum += serviceCycles
		m.svcCount++
	}
}
