package machine

import (
	"fmt"
	"math/rand"

	"sweeper/internal/addr"
	"sweeper/internal/cache"
	"sweeper/internal/core"
	"sweeper/internal/cpu"
	"sweeper/internal/mem"
	"sweeper/internal/nic"
	"sweeper/internal/sim"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// Machine is one fully assembled simulated server. A Machine runs exactly
// once: build a fresh one per configuration probe so caches start cold and
// warmup is well defined.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	space *addr.Space
	hier  *cache.Hierarchy
	dram  *mem.DDR4
	nicD  *nic.NIC
	sweep *core.Sweeper

	kvs   *workload.KVS
	l3fwd *workload.L3Fwd

	cores []*cpu.Core
	xmem  []*cpu.XMemCore

	pgen *nic.PoissonGen
	cgen *nic.ClosedLoopGen

	rng *rand.Rand

	// Cumulative accounting (window deltas are taken at beginWindow).
	breakdown stats.Breakdown
	dramLat   *stats.Histogram
	reqLat    *stats.Histogram
	served    uint64
	svcSum    uint64
	svcCount  uint64

	measuring bool
	ran       bool
	trace     TraceSink

	// IAT-style dynamic DDIO state.
	dynWays        int
	dynAdjustments uint64
	dynLast        [stats.NumKinds]uint64
}

// New assembles a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := cfg.NetCores + cfg.XMemCores
	cfg.Cache.NCores = total

	m := &Machine{
		cfg:     cfg,
		eng:     sim.NewEngine(),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		dramLat: stats.NewHistogram(4, 8192),
		reqLat:  stats.NewHistogram(64, 8192),
	}

	rxBytes := uint64(cfg.RingSlots) * cfg.PacketBytes
	txBytes := uint64(cfg.TXSlots) * cfg.respSlotBytes()
	m.space = addr.NewSpace(total, rxBytes, txBytes)

	m.dram = mem.New(cfg.Mem)
	m.hier = cache.NewHierarchy(cfg.Cache, (*memSink)(m))
	m.sweep = core.New(m.hier, cfg.Sweeper)
	m.nicD = nic.New(nic.Config{
		Mode:      cfg.NICMode,
		RingSlots: cfg.RingSlots,
		SlotBytes: cfg.PacketBytes,
	}, m.space, m.hier)

	if err := m.configure(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// configure performs every configuration-dependent assembly step over
// already-allocated (or freshly Reset) subsystems: way masks, NIC policy and
// hooks, workload layout (in address-space allocation order), cores, tenant
// streams and the traffic generator. New and Reset share it verbatim, which
// is what guarantees a pooled machine is configured exactly like a fresh one.
func (m *Machine) configure(cfg Config) error {
	switch cfg.NICMode {
	case nic.ModeDDIO:
		if cfg.NICWayMask != 0 {
			m.hier.SetNICWayMask(cfg.NICWayMask)
		} else {
			m.hier.SetNICWays(cfg.DDIOWays)
		}
	}
	if cfg.XMemWayMask != 0 {
		for i := 0; i < cfg.XMemCores; i++ {
			m.hier.SetCPUWayMask(cfg.NetCores+i, cfg.XMemWayMask)
		}
	}
	if cfg.NetCPUWayMask != 0 {
		for i := 0; i < cfg.NetCores; i++ {
			m.hier.SetCPUWayMask(i, cfg.NetCPUWayMask)
		}
	}

	if cfg.NeBuLaDropDepth > 0 {
		m.nicD.SetDropDepth(cfg.NeBuLaDropDepth)
	}
	m.nicD.SetTXSweeper(m.sweep)
	if cfg.Sweeper.DebugUseAfterRelinquish {
		m.nicD.SetOverwriteListener(m.sweep)
	}
	m.nicD.SetEnqueueCallback(func(now uint64, c int) {
		if c < cfg.NetCores {
			m.cores[c].Wake(now)
		}
	})

	switch cfg.Workload {
	case WorkloadKVS:
		m.l3fwd = nil
		kcfg := workload.DefaultKVSConfig(cfg.ItemBytes)
		if m.kvs != nil && m.kvs.Config() == kcfg {
			m.kvs.Reset(m.space)
		} else {
			m.kvs = workload.NewKVS(kcfg, m.space)
		}
		if cfg.WarmLLC {
			m.warmLLC()
		}
	case WorkloadL3Fwd, WorkloadL3FwdL1:
		m.kvs = nil
		fcfg := workload.DefaultL3FwdConfig()
		if cfg.Workload == WorkloadL3FwdL1 {
			fcfg = workload.L1ResidentL3FwdConfig()
		}
		if m.l3fwd != nil && m.l3fwd.Config() == fcfg {
			m.l3fwd.Reset(m.space)
		} else {
			m.l3fwd = workload.NewL3Fwd(fcfg, m.space)
		}
	default:
		return fmt.Errorf("machine: unknown workload %v", cfg.Workload)
	}

	if len(m.cores) != cfg.NetCores {
		m.cores = make([]*cpu.Core, cfg.NetCores)
	}
	for i := range m.cores {
		ccfg := cpu.CoreConfig{
			PollCycles:  cfg.PollCycles,
			TXSlots:     cfg.TXSlots,
			TXSlotBytes: cfg.respSlotBytes(),
			TXBase:      m.space.TXBase(i),
			SweepTX:     cfg.SweepTX,
			MLP:         cfg.MLPWidth,
		}
		if m.cores[i] != nil {
			m.cores[i].Reset(ccfg)
		} else {
			m.cores[i] = cpu.NewCore(i, m.eng, m, ccfg)
		}
	}
	if len(m.xmem) != cfg.XMemCores {
		m.xmem = make([]*cpu.XMemCore, cfg.XMemCores)
	}
	for i := range m.xmem {
		id := cfg.NetCores + i
		seed := uint64(cfg.Seed) + uint64(id)*977
		if m.xmem[i] != nil {
			m.xmem[i].Stream().Reset(m.space, seed)
			m.xmem[i].Reset()
		} else {
			stream := workload.NewXMem(workload.DefaultXMemConfig(), m.space, seed)
			m.xmem[i] = cpu.NewXMemCore(id, m.eng, m, stream)
		}
	}

	if cfg.ClosedLoopDepth > 0 {
		m.pgen = nil
		if m.cgen != nil {
			m.cgen.Reset(cfg.ClosedLoopDepth, cfg.Seed)
		} else {
			m.cgen = nic.NewClosedLoopGen(m.nicD, cfg.PacketBytes, cfg.ClosedLoopDepth, cfg.Seed)
		}
		m.cgen.SetTargetCores(cfg.NetCores)
		if m.kvs != nil {
			m.cgen.SetSizer(m.kvs.RequestBytes)
		}
	} else {
		m.cgen = nil
		gap := stats.CyclesPerSecond(cfg.OfferedMrps*1e6, cfg.FreqHz)
		if m.pgen != nil {
			m.pgen.Reset(gap, cfg.Seed)
		} else {
			m.pgen = nic.NewPoissonGen(m.eng, m.nicD, cfg.PacketBytes, gap, cfg.Seed)
		}
		m.pgen.SetTargetCores(cfg.NetCores)
		if m.kvs != nil {
			m.pgen.SetSizer(m.kvs.RequestBytes)
		}
	}
	return nil
}

// geometry captures every allocation-shaping parameter of a Config: the
// parts of a machine that Reset reuses in place rather than reconfigures.
// Two configs with equal geometry can share one pooled machine.
type geometry struct {
	netCores, xmemCores int
	ringSlots           int
	packetBytes         uint64
	txSlots             int
	respSlotBytes       uint64
	cache               cache.Config
	mem                 mem.Config
}

func geometryOf(cfg Config) geometry {
	return geometry{
		netCores:      cfg.NetCores,
		xmemCores:     cfg.XMemCores,
		ringSlots:     cfg.RingSlots,
		packetBytes:   cfg.PacketBytes,
		txSlots:       cfg.TXSlots,
		respSlotBytes: cfg.respSlotBytes(),
		cache:         cfg.Cache,
		mem:           cfg.Mem,
	}
}

// Reset returns a used machine to the state New(cfg) would produce, reusing
// every geometry-sized allocation: the engine's event slab, the cache arrays
// (~15MB for Table I), DRAM channel state, ring storage and the workload's
// per-key arrays. The new configuration must have the same geometry as the
// one the machine was built with (same core counts, ring shapes, cache and
// DRAM sizing); non-geometric knobs — seeds, rates, modes, way masks,
// Sweeper settings — may differ freely. Reset-then-Run is bit-identical to
// fresh-build-then-Run.
func (m *Machine) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	total := cfg.NetCores + cfg.XMemCores
	cfg.Cache.NCores = total
	if geometryOf(cfg) != geometryOf(m.cfg) {
		return fmt.Errorf("machine: Reset geometry mismatch (build a fresh machine): have %+v, want %+v",
			geometryOf(m.cfg), geometryOf(cfg))
	}
	m.cfg = cfg
	m.eng.Reset()
	m.rng.Seed(cfg.Seed ^ 0x5eed)
	m.dramLat.Reset()
	m.reqLat.Reset()
	m.space.Reset()
	m.dram.Reset()
	m.hier.Reset()
	m.sweep.Reset(cfg.Sweeper)
	m.nicD.Reset(cfg.NICMode)

	m.breakdown.Reset()
	m.served, m.svcSum, m.svcCount = 0, 0, 0
	m.measuring, m.ran = false, false
	m.trace = nil
	m.dynWays, m.dynAdjustments = 0, 0
	m.dynLast = [stats.NumKinds]uint64{}

	return m.configure(cfg)
}

// MustNew is New, panicking on configuration errors; a convenience for
// experiment tables whose configs are static.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Accessors for tests, examples and the experiment harness.

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Engine returns the event engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Hierarchy returns the cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// DRAM returns the memory model.
func (m *Machine) DRAM() *mem.DDR4 { return m.dram }

// NIC returns the network interface.
func (m *Machine) NIC() *nic.NIC { return m.nicD }

// Sweeper returns the Sweeper instance.
func (m *Machine) Sweeper() *core.Sweeper { return m.sweep }

// Space returns the address map.
func (m *Machine) Space() *addr.Space { return m.space }

// KVS returns the key-value store, or nil for other workloads.
func (m *Machine) KVS() *workload.KVS { return m.kvs }

// L3Fwd returns the forwarder, or nil for other workloads.
func (m *Machine) L3Fwd() *workload.L3Fwd { return m.l3fwd }

// warmLLC fills the LLC and every private L2 with application data lines
// resembling the steady-state content of a long-running store, so
// measurement windows observe realistic dirty-eviction traffic from the
// first cycle instead of a cold 36MB cache slowly absorbing the write
// stream. The fill uses a dedicated "legacy" region rather than live log
// addresses: warm lines must drain exactly once, never re-entering the
// hierarchy through later reads.
func (m *Machine) warmLLC() {
	llcLines := uint64(m.hier.LLC().Sets() * m.hier.LLC().Ways())
	l2 := m.hier.L2(0)
	l2LinesTotal := uint64(l2.Sets()*l2.Ways()) * uint64(m.cfg.NetCores+m.cfg.XMemCores)
	base := m.space.AllocApp((llcLines + 2*l2LinesTotal) * addr.LineBytes)
	// The warm mix mirrors each mode's steady state, so the warm
	// content's drain is statistically indistinguishable from steady
	// operation:
	//
	//   - The LLC's application content is mostly dirty (appended log
	//     lines awaiting writeback); under DMA, clean RX read copies
	//     also stream through it, diluting the dirty fraction.
	//   - Each L2 holds recent dirty appends (addresses disjoint from
	//     the LLC fill, so their eviction displaces LLC lines and
	//     sustains the writeback stream). Under DDIO it also holds clean
	//     read copies of LLC-resident lines, whose eviction merges in
	//     place exactly like recycled RX-read copies do; under DMA the
	//     clean copies displace (DMA invalidates LLC copies on reuse);
	//     under Ideal-DDIO network buffers never enter the L2 at all.
	var llcDirty10, l2CleanFrac2 int // dirty tenths; clean halves
	aliasClean := false
	switch m.cfg.NICMode {
	case nic.ModeIdeal:
		llcDirty10, l2CleanFrac2 = 9, 0
	case nic.ModeDMA:
		llcDirty10, l2CleanFrac2 = 5, 1
	default: // DDIO
		llcDirty10, l2CleanFrac2 = 9, 1
		aliasClean = true
	}

	llc := m.hier.LLC()
	mask := cache.MaskAll(llc.Ways())
	nLines := uint64(llc.Sets() * llc.Ways())
	for k := uint64(0); k < nLines; k++ {
		llc.Insert(base+k*addr.LineBytes, int(k%10) < llcDirty10, mask)
	}
	total := m.cfg.NetCores + m.cfg.XMemCores
	l2Base := base + nLines*addr.LineBytes
	cleanBase := l2Base // DMA: disjoint clean lines, displacing on eviction
	if aliasClean {
		cleanBase = base // DDIO: clean copies of LLC lines, merging
	}
	for c := 0; c < total; c++ {
		l2 := m.hier.L2(c)
		l2Mask := cache.MaskAll(l2.Ways())
		l2Lines := uint64(l2.Sets() * l2.Ways())
		dirtyOff := l2Base + uint64(c)*2*l2Lines*addr.LineBytes
		cleanOff := cleanBase + (uint64(c)*2+1)*l2Lines*addr.LineBytes
		if aliasClean {
			cleanOff = cleanBase + uint64(c)*l2Lines/2*addr.LineBytes
		}
		for k := uint64(0); k < l2Lines; k++ {
			if l2CleanFrac2 == 1 && k%2 == 1 {
				l2.Insert(cleanOff+k/2*addr.LineBytes, false, l2Mask)
			} else {
				l2.Insert(dirtyOff+k*addr.LineBytes, true, l2Mask)
			}
		}
	}
}

// memSink adapts the machine to cache.MemSink, classifying every DRAM
// transaction into the paper's breakdown categories.
type memSink Machine

func (s *memSink) DemandRead(now uint64, a uint64, src cache.Requestor) uint64 {
	m := (*Machine)(s)
	done := m.dram.Read(now, a)
	var kind stats.AccessKind
	if src == cache.SrcNIC {
		kind = stats.NICTXRd
	} else {
		switch cls, _ := m.space.Classify(a); cls {
		case addr.ClassRX:
			kind = stats.CPURXRd
		case addr.ClassTX:
			kind = stats.CPUTXRdWr
		default:
			kind = stats.CPUOtherRd
		}
	}
	m.breakdown.Add(kind, 1)
	if m.measuring {
		m.dramLat.Record(done - now)
		if m.trace != nil {
			m.trace(TraceEvent{Cycle: now, Addr: a, Kind: kind, LatencyCycles: done - now})
		}
	}
	return done
}

func (s *memSink) WritebackEvict(now uint64, a uint64) {
	m := (*Machine)(s)
	m.dram.Write(now, a)
	var kind stats.AccessKind
	switch cls, _ := m.space.Classify(a); cls {
	case addr.ClassRX:
		kind = stats.RXEvct
	case addr.ClassTX:
		kind = stats.TXEvct
	default:
		kind = stats.OtherEvct
	}
	m.breakdown.Add(kind, 1)
	if m.measuring && m.trace != nil {
		m.trace(TraceEvent{Cycle: now, Addr: a, Kind: kind})
	}
}

func (s *memSink) DMAWrite(now uint64, a uint64) {
	m := (*Machine)(s)
	m.dram.Write(now, a)
	m.breakdown.Add(stats.NICRXWr, 1)
	if m.measuring && m.trace != nil {
		m.trace(TraceEvent{Cycle: now, Addr: a, Kind: stats.NICRXWr})
	}
}

// Env implementation (cpu.Env).

// PopPacket implements cpu.Env.
func (m *Machine) PopPacket(c int) (nic.Packet, bool) {
	return m.nicD.Ring(c).Pop()
}

// OnPop implements cpu.Env: closed-loop generators refill immediately.
func (m *Machine) OnPop(now uint64, c int) {
	if m.cgen != nil {
		m.cgen.Refill(now, c)
	}
}

// PlanRequest implements cpu.Env.
func (m *Machine) PlanRequest(tag uint64, pktBytes uint64, plan *workload.Plan) {
	if m.kvs != nil {
		m.kvs.PlanRequest(tag, pktBytes, plan)
		return
	}
	m.l3fwd.PlanRequest(tag, pktBytes, plan)
}

// RXRead implements cpu.Env. Under Ideal-DDIO network buffers live in the
// infinite side cache at LLC latency; otherwise the read goes through the
// real hierarchy (with the optional use-after-relinquish sanitizer).
func (m *Machine) RXRead(now uint64, c int, a uint64) uint64 {
	if m.cfg.NICMode == nic.ModeIdeal {
		return now + m.cfg.Cache.NoCLat + m.cfg.Cache.LLCLat
	}
	if m.cfg.Sweeper.DebugUseAfterRelinquish {
		m.sweep.CheckRead(a)
	}
	return m.hier.CPURead(now, c, a)
}

// AppRead implements cpu.Env.
func (m *Machine) AppRead(now uint64, c int, a uint64) uint64 {
	return m.hier.CPURead(now, c, a)
}

// AppWrite implements cpu.Env.
func (m *Machine) AppWrite(now uint64, c int, a uint64) uint64 {
	return m.hier.CPUWrite(now, c, a)
}

// AppWriteFull implements cpu.Env.
func (m *Machine) AppWriteFull(now uint64, c int, a uint64) uint64 {
	return m.hier.CPUWriteFull(now, c, a)
}

// TXWrite implements cpu.Env: Ideal-DDIO keeps TX buffers in the side cache
// too ("zero memory traffic due to network data movements", §III).
// Response construction overwrites whole lines, so the real-cache path is a
// streaming full-line store.
func (m *Machine) TXWrite(now uint64, c int, a uint64) uint64 {
	if m.cfg.NICMode == nic.ModeIdeal {
		return now + m.cfg.Cache.L1Lat
	}
	return m.hier.CPUWriteFull(now, c, a)
}

// Relinquish implements cpu.Env. Under Ideal-DDIO there is nothing to
// sweep: the buffers never entered the real hierarchy.
func (m *Machine) Relinquish(now uint64, c int, buf, size uint64) uint64 {
	if m.cfg.NICMode == nic.ModeIdeal {
		return now
	}
	return m.sweep.Relinquish(now, c, buf, size)
}

// FreeRXSlot implements cpu.Env.
func (m *Machine) FreeRXSlot(c int) { m.nicD.Ring(c).Free() }

// Transmit implements cpu.Env.
func (m *Machine) Transmit(now uint64, wqe nic.WorkQueueEntry) {
	m.nicD.Transmit(now, wqe)
}

// ExtraServiceCycles implements cpu.Env: the §VI-F spike injector.
func (m *Machine) ExtraServiceCycles(c int, tag uint64) uint64 {
	if m.cfg.SpikeProb <= 0 {
		return 0
	}
	if m.rng.Float64() >= m.cfg.SpikeProb {
		return 0
	}
	span := m.cfg.SpikeMaxCycles - m.cfg.SpikeMinCycles
	if span == 0 {
		return m.cfg.SpikeMinCycles
	}
	return m.cfg.SpikeMinCycles + uint64(m.rng.Int63n(int64(span)))
}

// OnRequestDone implements cpu.Env.
func (m *Machine) OnRequestDone(now uint64, c int, p nic.Packet, serviceCycles uint64) {
	m.served++
	if m.measuring {
		m.reqLat.Record(now - p.Arrival)
		m.svcSum += serviceCycles
		m.svcCount++
	}
}
