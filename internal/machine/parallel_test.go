package machine

import (
	"reflect"
	"testing"

	"sweeper/internal/core"
	"sweeper/internal/nic"
	"sweeper/internal/obs"
)

// parallelCases are the representative configurations of the engine-rewrite
// safety net (determinism_test.go), reused here as the shard-count matrix.
func parallelCases() map[string]func(*Config) {
	return map[string]func(*Config){
		"open-loop-ddio": func(c *Config) {},
		"sweeper": func(c *Config) {
			c.Sweeper = core.Config{RXSweep: true, IssueCyclesPerLine: 1}
		},
		"closed-loop": func(c *Config) {
			c.OfferedMrps = 0
			c.ClosedLoopDepth = 64
		},
		"dma": func(c *Config) {
			c.NICMode = nic.ModeDMA
		},
		"collocated-xmem": func(c *Config) {
			c.NetCores = 8
			c.XMemCores = 4
		},
		"dynamic-ddio": func(c *Config) {
			c.DynamicDDIOEpoch = 50_000
		},
	}
}

// TestResultsBitIdenticalAcrossShardCounts is the parallel-engine
// determinism contract: every representative configuration must produce
// Results identical in every field — counters, derived floats, full latency
// CDFs — for shards in {1, 2, 4, 8}, with the sequential engine (Shards=0)
// as the baseline.
func TestResultsBitIdenticalAcrossShardCounts(t *testing.T) {
	for name, mutate := range parallelCases() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := quickCfg()
			mutate(&base)
			run := func(shards int) Results {
				cfg := base
				cfg.Shards = shards
				return MustNew(cfg).Run(400_000, 300_000)
			}
			want := run(0)
			for _, shards := range []int{1, 2, 4, 8} {
				if got := run(shards); !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from sequential:\n  seq: %+v\n  par: %+v", shards, want, got)
				}
			}
		})
	}
}

// TestParallelForcedHarvestPool drives every epoch through the worker pool
// (threshold 0) on one representative config; under -race this puts the
// detector on the machine-level cross-shard handoffs.
func TestParallelForcedHarvestPool(t *testing.T) {
	cfg := quickCfg()
	run := func(shards, threshold int) Results {
		c := cfg
		c.Shards = shards
		m := MustNew(c)
		m.Engine().SetParallelHarvestThreshold(threshold)
		return m.Run(200_000, 200_000)
	}
	want := run(0, -1)
	if got := run(4, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("forced-pool run diverged from sequential:\n  seq: %+v\n  par: %+v", want, got)
	}
}

// TestParallelPoolReset checks the pool/Reset contract with shard counts in
// the mix: a pooled machine Reset across different Shards values must
// reproduce fresh-machine results bit-identically (Shards is non-geometric).
func TestParallelPoolReset(t *testing.T) {
	cfg := quickCfg()
	fresh := func(shards int) Results {
		c := cfg
		c.Shards = shards
		return MustNew(c).Run(200_000, 200_000)
	}
	wantSeq := fresh(0)
	wantPar := fresh(4)

	c0 := cfg
	c0.Shards = 4
	m := MustNew(c0)
	if got := m.Run(200_000, 200_000); !reflect.DeepEqual(got, wantPar) {
		t.Fatalf("pooled first run diverged from fresh shards=4")
	}
	c1 := cfg
	c1.Shards = 0
	if err := m.Reset(c1); err != nil {
		t.Fatalf("Reset to sequential: %v", err)
	}
	if got := m.Run(200_000, 200_000); !reflect.DeepEqual(got, wantSeq) {
		t.Fatalf("Reset shards 4->0 diverged from fresh sequential")
	}
	c2 := cfg
	c2.Shards = 8
	if err := m.Reset(c2); err != nil {
		t.Fatalf("Reset to shards=8: %v", err)
	}
	if got := m.Run(200_000, 200_000); !reflect.DeepEqual(got, wantSeq) {
		t.Fatalf("Reset shards 0->8 diverged (shards=8 vs sequential must still be bit-identical)")
	}
}

// TestSampledSeriesIdenticalAcrossShards runs with metric sampling armed and
// compares the full time-series across shard counts: the sampler dispatches
// in the canonical merged order, so sampled cycles and every row must match
// the sequential engine exactly (and under -tags sweeperdebug the sampler's
// cadence probe asserts no drift while this runs).
func TestSampledSeriesIdenticalAcrossShards(t *testing.T) {
	cfg := quickCfg()
	run := func(shards int) *obs.Series {
		c := cfg
		c.Shards = shards
		m := MustNew(c)
		m.EnableSampling(10_000)
		m.Run(200_000, 200_000)
		return m.ObsSeries()
	}
	want := run(0)
	if want == nil || len(want.Cycles) == 0 {
		t.Fatal("sequential run produced no samples")
	}
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d sampled series diverged from sequential", shards)
		}
	}
}

// TestAutoShards resolves -1 to min(cores+1, GOMAXPROCS) and still runs
// bit-identically to sequential.
func TestAutoShards(t *testing.T) {
	cfg := quickCfg()
	cfg.Shards = -1
	m := MustNew(cfg)
	if n := m.Engine().NumShards(); n < 1 || n > cfg.NetCores+cfg.XMemCores+1 {
		t.Fatalf("auto shards resolved to %d", n)
	}
	got := m.Run(200_000, 200_000)
	seq := cfg
	seq.Shards = 0
	want := MustNew(seq).Run(200_000, 200_000)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("auto-sharded run diverged from sequential")
	}
}
