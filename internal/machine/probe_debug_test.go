//go:build sweeperdebug

package machine_test

import (
	"fmt"
	"testing"

	"sweeper/internal/machine"
	"sweeper/internal/obs"
	"sweeper/internal/scenario"
)

// TestProbesAcrossBuiltinScenarios runs a slice of every builtin scenario
// with the debug invariant probes compiled in. Any conservation or
// monotonicity violation panics through obs.Failf, failing the test; a clean
// pass means the ring, DRAM timing, cache and DDIO probes all held across
// the full configuration matrix (DMA/DDIO/IDIO, Sweeper on/off, X-Mem,
// partitions, dynamic DDIO).
func TestProbesAcrossBuiltinScenarios(t *testing.T) {
	if !obs.ProbesEnabled {
		t.Fatal("built with -tags sweeperdebug but ProbesEnabled is false")
	}
	const maxRunsPerScenario = 3
	for _, spec := range scenario.Builtins() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			runs, err := spec.Expand()
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) > maxRunsPerScenario {
				runs = runs[:maxRunsPerScenario]
			}
			for i, r := range runs {
				cfg := r.Config
				// Keep the matrix affordable: probes cost per-access
				// work, and correctness does not need many cores.
				if cfg.NetCores > 8 {
					cfg.NetCores = 8
				}
				if cfg.XMemCores > 2 {
					cfg.XMemCores = 2
				}
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							t.Fatalf("run %d (%s): probe fired: %v",
								i, r.Variant.DisplayName(), p)
						}
					}()
					m.Run(40_000, 80_000)
				}()
			}
		})
	}
}

// TestProbeCatchesWayMaskOverflow proves the probes actually fire: a DDIO
// way mask wider than the LLC must panic under sweeperdebug.
func TestProbeCatchesWayMaskOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized way mask did not trip the probe")
		}
	}()
	cfg := machine.DefaultConfig()
	cfg.NetCores = 2
	cfg.NICWayMask = 1 << uint(cfg.Cache.LLCWays) // one past the last way
	m, err := machine.New(cfg)
	if err != nil {
		// Config validation rejecting it is also acceptable protection,
		// but the probe is expected to fire first during assembly.
		panic(fmt.Sprintf("config rejected: %v", err))
	}
	m.Run(10_000, 10_000)
}
