package machine

import (
	"reflect"
	"testing"

	"sweeper/internal/nic"
	"sweeper/internal/workload"
)

// fig6Cfg reproduces the Figure 6 machine shape: the paper's KVS with 1KB
// items, deep per-core rings and a 2-way DDIO partition. The narrow NIC way
// mask is what makes way *placement* (not just set content) observable, so
// this configuration is the sharpest determinism probe the pool has.
func fig6Cfg(rate float64) Config {
	cfg := DefaultConfig()
	cfg.Workload = workload.NameKVS
	cfg.ItemBytes = 1024
	cfg.PacketBytes = 1024
	cfg.RingSlots = 1024
	cfg.TXSlots = 128
	cfg.NICMode = nic.ModeDDIO
	cfg.DDIOWays = 2
	cfg.ClosedLoopDepth = 0
	cfg.OfferedMrps = rate
	return cfg
}

// TestPooledWayMaskedLLCBitIdentical is a regression test for a subtle
// recycle leak: if SetAssoc.Reset leaves the previous run's LRU stamps in
// place, empty ways refill in stamp order rather than lowest-index-first,
// and a masked NIC insertion then evicts different lines than it would on a
// fresh machine. The effect only accumulates over long windows (short runs
// never recycle enough of the LLC), so this test runs full quick-scale
// windows — it is the pool-level mirror of the committed fig6 CSVs staying
// bit-identical.
func TestPooledWayMaskedLLCBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second full-window run")
	}
	target := 37.7408 // the committed fig6 2-way peak
	fresh := MustNew(fig6Cfg(target)).Run(5_000_000, 2_000_000)

	// Dirty the machine with a long run at a different rate, as a peak
	// search's probe ladder would.
	p := NewPool(1)
	m := p.MustGet(fig6Cfg(20.0))
	m.Run(5_000_000, 2_000_000)
	p.Put(m)

	recycled := p.MustGet(fig6Cfg(target))
	if recycled != m {
		t.Fatal("pool built a fresh machine instead of recycling")
	}
	pooled := recycled.Run(5_000_000, 2_000_000)
	if !reflect.DeepEqual(fresh, pooled) {
		t.Fatalf("pooled run diverged from fresh:\n  fresh:  %+v\n  pooled: %+v", fresh, pooled)
	}
}
