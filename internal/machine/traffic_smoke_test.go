package machine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sweeper/internal/nic"
	"sweeper/internal/obs"
)

// TestTrafficManifestSmoke validates a trace-replay run's manifest. When
// SWEEPER_TRAFFIC_MANIFEST is set (the `make traffic-smoke` path: tracegen
// synthesizes a trace, sweepersim replays it with -arrival trace and writes
// the manifest), it checks that file; otherwise it generates its own from a
// short in-process replay, so the contract is also guarded under plain
// `go test`.
func TestTrafficManifestSmoke(t *testing.T) {
	var data []byte
	if path := os.Getenv("SWEEPER_TRAFFIC_MANIFEST"); path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data = b
	} else {
		tracePath := filepath.Join(t.TempDir(), "smoke.bin")
		recs := make([]nic.TraceRecord, 2000)
		for i := range recs {
			recs[i] = nic.TraceRecord{Cycles: uint64(i * 120), Bytes: 800, Flow: uint32(i % 9)}
		}
		f, err := os.Create(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := nic.WriteTraceBinary(f, recs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		cfg := quickCfg()
		cfg.Arrival = nic.ArrivalConfig{Process: nic.ArrivalTrace, TracePath: tracePath}
		m := MustNew(cfg)
		r := m.Run(200_000, 150_000)
		var buf bytes.Buffer
		if err := obs.WriteManifest(&buf, m.BuildManifest("traffic smoke", r)); err != nil {
			t.Fatal(err)
		}
		data = buf.Bytes()
	}

	var man struct {
		Config struct {
			Arrival struct {
				Process   string `json:"Process"`
				TracePath string `json:"TracePath"`
			} `json:"Arrival"`
		} `json:"config"`
		Results struct {
			Offered        uint64  `json:"Offered"`
			Served         uint64  `json:"Served"`
			ThroughputMrps float64 `json:"ThroughputMrps"`
		} `json:"results"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("traffic manifest does not parse: %v", err)
	}
	if man.Config.Arrival.Process != nic.ArrivalTrace {
		t.Fatalf("manifest arrival process %q, want %q", man.Config.Arrival.Process, nic.ArrivalTrace)
	}
	if man.Config.Arrival.TracePath == "" {
		t.Error("manifest lost the trace path")
	}
	if man.Results.Offered == 0 || man.Results.Served == 0 {
		t.Fatalf("replay moved no traffic: offered %d, served %d", man.Results.Offered, man.Results.Served)
	}
	if man.Results.ThroughputMrps <= 0 {
		t.Error("manifest reports no throughput")
	}
	for _, key := range []string{"gen.offered", "gen.trace_wraps", "cpu.served", "mem.reads"} {
		if _, ok := man.Metrics[key]; !ok {
			t.Errorf("manifest missing metric %q", key)
		}
	}
	if man.Metrics["gen.offered"] == 0 {
		t.Error("generator counter never advanced")
	}
}
