package machine

import (
	"sweeper/internal/addr"
	"sweeper/internal/cache"
	"sweeper/internal/mem"
	"sweeper/internal/nic"
	"sweeper/internal/sim"
	"sweeper/internal/stats"
)

// datapath is the machine's memory side: the physical address space, the
// cache hierarchy and the DRAM model, plus everything that observes traffic
// between them — the classification of every DRAM transaction into the
// paper's breakdown categories, the DRAM latency histogram, the optional
// transaction trace, and the IAT-style dynamic-DDIO way controller. It
// implements cache.MemSink (the hierarchy's backing store) and sim.Sink
// (the controller's epoch events), leaving Machine a thin composition root.
type datapath struct {
	eng   *sim.Engine
	space *addr.Space
	hier  *cache.Hierarchy
	dram  *mem.DDR4

	// Hybrid-memory second tier; nil when tiering is off, so the DRAM-only
	// fast path costs one pointer test per transaction. place decides per
	// access which tier owns the address.
	tier1 *mem.Tier1
	place *mem.Placement

	// Cumulative accounting (window deltas are taken at snap).
	breakdown stats.Breakdown
	dramLat   *stats.Histogram

	measuring bool
	trace     TraceSink

	// IAT-style dynamic DDIO state; epoch and llcWays are stamped by
	// configure, the rest by startDynamicDDIO.
	dynEpoch       uint64
	llcWays        int
	dynWays        int
	dynAdjustments uint64
	dynLast        [stats.NumKinds]uint64
}

// newDatapath assembles the memory side. The hierarchy is wired back to the
// datapath as its memory sink, so every LLC miss and writeback lands in
// classify-and-count before reaching DRAM.
func newDatapath(eng *sim.Engine, space *addr.Space, memCfg mem.Config, cacheCfg cache.Config) *datapath {
	dp := &datapath{
		eng:     eng,
		space:   space,
		dram:    mem.New(memCfg),
		dramLat: stats.NewHistogram(4, 8192),
	}
	dp.hier = cache.NewHierarchy(cacheCfg, dp)
	return dp
}

// reset returns the datapath to its just-constructed state, reusing the
// space, hierarchy and DRAM allocations (the machine's Reset geometry check
// guarantees they fit the new configuration).
func (dp *datapath) reset() {
	dp.space.Reset()
	dp.dram.Reset()
	dp.tier1, dp.place = nil, nil
	dp.hier.Reset()
	dp.dramLat.Reset()
	dp.breakdown.Reset()
	dp.measuring = false
	dp.trace = nil
	dp.dynEpoch, dp.llcWays = 0, 0
	dp.dynWays, dp.dynAdjustments = 0, 0
	dp.dynLast = [stats.NumKinds]uint64{}
}

// configure applies the configuration's way-allocation policy: the NIC's
// DDIO ways (or explicit mask) and the per-core LLC masks of the §VI-E
// partition scenarios. It also stamps the dynamic-DDIO controller's bounds.
func (dp *datapath) configure(cfg Config) {
	if cfg.NICMode == nic.ModeDDIO {
		if cfg.NICWayMask != 0 {
			dp.hier.SetNICWayMask(cfg.NICWayMask)
		} else {
			dp.hier.SetNICWays(cfg.DDIOWays)
		}
	}
	if cfg.XMemWayMask != 0 {
		for i := 0; i < cfg.XMemCores; i++ {
			dp.hier.SetCPUWayMask(cfg.NetCores+i, cfg.XMemWayMask)
		}
	}
	if cfg.NetCPUWayMask != 0 {
		for i := 0; i < cfg.NetCores; i++ {
			dp.hier.SetCPUWayMask(i, cfg.NetCPUWayMask)
		}
	}
	dp.dynEpoch = cfg.DynamicDDIOEpoch
	dp.llcWays = cfg.Cache.LLCWays
	if cfg.MemTier.Enabled() {
		dp.tier1 = mem.NewTier1(cfg.MemTier, cfg.FreqHz)
		dp.place = mem.NewPlacement(cfg.MemTier, dp.space.AppBase())
	}
}

// memRead routes a timed line read to the owning tier.
func (dp *datapath) memRead(now uint64, a uint64) uint64 {
	if dp.tier1 != nil && dp.place.Route(now, a) {
		return dp.tier1.Read(now, a)
	}
	return dp.dram.Read(now, a)
}

// memWrite routes a timed line write to the owning tier.
func (dp *datapath) memWrite(now uint64, a uint64) {
	if dp.tier1 != nil && dp.place.Route(now, a) {
		dp.tier1.Write(now, a)
		return
	}
	dp.dram.Write(now, a)
}

// funcMemRead routes a functional (fast-forward) read to the owning tier.
func (dp *datapath) funcMemRead(a uint64) {
	if dp.tier1 != nil && dp.place.Route(dp.eng.Now(), a) {
		dp.tier1.FuncRead(a)
		return
	}
	dp.dram.FuncRead(a)
}

// funcMemWrite routes a functional write to the owning tier.
func (dp *datapath) funcMemWrite(a uint64) {
	if dp.tier1 != nil && dp.place.Route(dp.eng.Now(), a) {
		dp.tier1.FuncWrite(a)
		return
	}
	dp.dram.FuncWrite(a)
}

// ffLat is the fast-forward unloaded-latency stamp: the owning tier's
// best-case read latency rather than the flat DRAM estimate, so sampled
// runs do not silently mis-stamp NVM-resident pages.
func (dp *datapath) ffLat(a uint64) uint64 {
	if dp.tier1 != nil && dp.place.Resident(a) {
		return dp.tier1.UnloadedReadLatency()
	}
	return dp.dram.UnloadedReadLatency()
}

// readKind classifies a demand read into the paper's breakdown categories by
// requestor and address class.
func (dp *datapath) readKind(a uint64, src cache.Requestor) stats.AccessKind {
	if src == cache.SrcNIC {
		return stats.NICTXRd
	}
	switch cls, _ := dp.space.Classify(a); cls {
	case addr.ClassRX:
		return stats.CPURXRd
	case addr.ClassTX:
		return stats.CPUTXRdWr
	default:
		return stats.CPUOtherRd
	}
}

// evictKind classifies a writeback by address class.
func (dp *datapath) evictKind(a uint64) stats.AccessKind {
	switch cls, _ := dp.space.Classify(a); cls {
	case addr.ClassRX:
		return stats.RXEvct
	case addr.ClassTX:
		return stats.TXEvct
	default:
		return stats.OtherEvct
	}
}

// DemandRead implements cache.MemSink, classifying the transaction into the
// paper's breakdown categories by requestor and address class.
func (dp *datapath) DemandRead(now uint64, a uint64, src cache.Requestor) uint64 {
	done := dp.memRead(now, a)
	kind := dp.readKind(a, src)
	dp.breakdown.Add(kind, 1)
	if dp.measuring {
		dp.dramLat.Record(done - now)
		if dp.trace != nil {
			dp.trace(TraceEvent{Cycle: now, Addr: a, Kind: kind, LatencyCycles: done - now})
		}
	}
	return done
}

// WritebackEvict implements cache.MemSink.
func (dp *datapath) WritebackEvict(now uint64, a uint64) {
	dp.memWrite(now, a)
	kind := dp.evictKind(a)
	dp.breakdown.Add(kind, 1)
	if dp.measuring && dp.trace != nil {
		dp.trace(TraceEvent{Cycle: now, Addr: a, Kind: kind})
	}
}

// DMAWrite implements cache.MemSink.
func (dp *datapath) DMAWrite(now uint64, a uint64) {
	dp.memWrite(now, a)
	dp.breakdown.Add(stats.NICRXWr, 1)
	if dp.measuring && dp.trace != nil {
		dp.trace(TraceEvent{Cycle: now, Addr: a, Kind: stats.NICRXWr})
	}
}

// FuncDemandRead implements cache.FuncMemSink: the fast-forward counterpart
// of DemandRead. Classification still advances the breakdown counters (so
// the dynamic-DDIO controller keeps steering during fast-forward spans), and
// DRAM state updates functionally — counters and row buffers, no timing.
// Nothing is recorded into the latency histogram or trace: fast-forward
// intervals never overlap measurement.
func (dp *datapath) FuncDemandRead(a uint64, src cache.Requestor) {
	dp.funcMemRead(a)
	dp.breakdown.Add(dp.readKind(a, src), 1)
}

// FuncWriteback implements cache.FuncMemSink.
func (dp *datapath) FuncWriteback(a uint64) {
	dp.funcMemWrite(a)
	dp.breakdown.Add(dp.evictKind(a), 1)
}

// FuncDMAWrite implements cache.FuncMemSink.
func (dp *datapath) FuncDMAWrite(a uint64) {
	dp.funcMemWrite(a)
	dp.breakdown.Add(stats.NICRXWr, 1)
}

// startDynamicDDIO arms the IAT-style epoch controller from the
// configuration's initial way allocation.
func (dp *datapath) startDynamicDDIO(initialWays int) {
	dp.dynWays = initialWays
	dp.eng.ScheduleAfter(dp.dynEpoch, dp, 0)
}

// OnEvent implements sim.Sink: the datapath's only self-scheduled event is
// the dynamic-DDIO epoch controller.
func (dp *datapath) OnEvent(now uint64, _ uint64) { dp.dynamicDDIO(now) }

// dynamicDDIO is the IAT-style epoch controller (related work, §VII): it
// widens the DDIO allocation while network leaks dominate recent DRAM
// traffic and narrows it while application traffic dominates.
func (dp *datapath) dynamicDDIO(now uint64) {
	cur := dp.breakdown.Snapshot()
	netLeak := (cur[stats.RXEvct] - dp.dynLast[stats.RXEvct]) +
		(cur[stats.CPURXRd] - dp.dynLast[stats.CPURXRd])
	appPressure := (cur[stats.OtherEvct] - dp.dynLast[stats.OtherEvct]) +
		(cur[stats.CPUOtherRd] - dp.dynLast[stats.CPUOtherRd])
	dp.dynLast = cur

	switch {
	case netLeak > appPressure+appPressure/5 && dp.dynWays < dp.llcWays:
		dp.dynWays++
		dp.hier.SetNICWays(dp.dynWays)
		dp.dynAdjustments++
	case appPressure > netLeak+netLeak/5 && dp.dynWays > 2:
		dp.dynWays--
		dp.hier.SetNICWays(dp.dynWays)
		dp.dynAdjustments++
	}
	dp.eng.ScheduleAfter(dp.dynEpoch, dp, 0)
}

// installWarmLine inserts one steady-state-resident line into the LLC, the
// per-line callback behind workload.StateWarmer pre-installation. Any way
// may hold warm content — way restrictions only govern NIC allocations.
func (dp *datapath) installWarmLine(line uint64, dirty bool) {
	llc := dp.hier.LLC()
	llc.Insert(line, dirty, cache.MaskAll(llc.Ways()))
}

// warmLLC fills the LLC and every private L2 with application data lines
// resembling the steady-state content of a long-running store, so
// measurement windows observe realistic dirty-eviction traffic from the
// first cycle instead of a cold 36MB cache slowly absorbing the write
// stream. The fill uses a dedicated "legacy" region rather than live log
// addresses: warm lines must drain exactly once, never re-entering the
// hierarchy through later reads.
func (dp *datapath) warmLLC(cfg Config) {
	llcLines := uint64(dp.hier.LLC().Sets() * dp.hier.LLC().Ways())
	l2 := dp.hier.L2(0)
	l2LinesTotal := uint64(l2.Sets()*l2.Ways()) * uint64(cfg.NetCores+cfg.XMemCores)
	base := dp.space.AllocApp((llcLines + 2*l2LinesTotal) * addr.LineBytes)
	// The warm mix mirrors each mode's steady state, so the warm
	// content's drain is statistically indistinguishable from steady
	// operation:
	//
	//   - The LLC's application content is mostly dirty (appended log
	//     lines awaiting writeback); under DMA, clean RX read copies
	//     also stream through it, diluting the dirty fraction.
	//   - Each L2 holds recent dirty appends (addresses disjoint from
	//     the LLC fill, so their eviction displaces LLC lines and
	//     sustains the writeback stream). Under DDIO it also holds clean
	//     read copies of LLC-resident lines, whose eviction merges in
	//     place exactly like recycled RX-read copies do; under DMA the
	//     clean copies displace (DMA invalidates LLC copies on reuse);
	//     under Ideal-DDIO network buffers never enter the L2 at all.
	var llcDirty10, l2CleanFrac2 int // dirty tenths; clean halves
	aliasClean := false
	switch cfg.NICMode {
	case nic.ModeIdeal:
		llcDirty10, l2CleanFrac2 = 9, 0
	case nic.ModeDMA:
		llcDirty10, l2CleanFrac2 = 5, 1
	default: // DDIO
		llcDirty10, l2CleanFrac2 = 9, 1
		aliasClean = true
	}

	llc := dp.hier.LLC()
	mask := cache.MaskAll(llc.Ways())
	nLines := uint64(llc.Sets() * llc.Ways())
	for k := uint64(0); k < nLines; k++ {
		llc.Insert(base+k*addr.LineBytes, int(k%10) < llcDirty10, mask)
	}
	total := cfg.NetCores + cfg.XMemCores
	l2Base := base + nLines*addr.LineBytes
	cleanBase := l2Base // DMA: disjoint clean lines, displacing on eviction
	if aliasClean {
		cleanBase = base // DDIO: clean copies of LLC lines, merging
	}
	for c := 0; c < total; c++ {
		l2 := dp.hier.L2(c)
		l2Mask := cache.MaskAll(l2.Ways())
		l2Lines := uint64(l2.Sets() * l2.Ways())
		dirtyOff := l2Base + uint64(c)*2*l2Lines*addr.LineBytes
		cleanOff := cleanBase + (uint64(c)*2+1)*l2Lines*addr.LineBytes
		if aliasClean {
			cleanOff = cleanBase + uint64(c)*l2Lines/2*addr.LineBytes
		}
		for k := uint64(0); k < l2Lines; k++ {
			if l2CleanFrac2 == 1 && k%2 == 1 {
				l2.Insert(cleanOff+k/2*addr.LineBytes, false, l2Mask)
			} else {
				l2.Insert(dirtyOff+k*addr.LineBytes, true, l2Mask)
			}
		}
	}
}
