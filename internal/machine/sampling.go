package machine

import (
	"math"

	"sweeper/internal/addr"
	"sweeper/internal/nic"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// Sampled simulation (DESIGN.md §12). A sampled run replaces one long
// detailed measurement window with a SMARTS-style schedule:
//
//	[functional warm-up] ([detailed-warm][detailed][fast-forward])*
//
// Fast-forward spans execute every request functionally — caches, DRAM row
// buffers and workload state stay warm, but no timing-wheel traffic is
// generated per memory access — while detailed spans run the full timing
// model. Each measured interval is preceded by an unmeasured detailed-warm
// prefix that re-establishes queue and MSHR-level timing state before
// statistics are recorded. Per-interval results feed Welford accumulators,
// so the run reports point estimates with 95% confidence intervals.

// Phase labels stamped into the observability time-series during a sampled
// run (obs.Sampler.SetPhase).
const (
	phaseWarmupFF     = "warmup-ff"
	phaseDetailedWarm = "detailed-warm"
	phaseDetailed     = "detailed"
	phaseFastForward  = "fast-forward"
)

// minCIIntervals is the smallest sample "ci" mode will stop at: below four
// intervals the Student-t half-width is too wide to mean anything.
const minCIIntervals = 4

// SamplingSummary reports what a sampled run did and the per-metric interval
// estimates. Results.Sampled carries it; full detailed runs leave it nil.
type SamplingSummary struct {
	// Mode is the sampling mode that ran ("fixed" or "ci").
	Mode string `json:"mode"`
	// Intervals is the number of measured detailed intervals.
	Intervals int `json:"intervals"`
	// DetailedCycles and FastForwardCycles are the resolved interval lengths.
	DetailedCycles    uint64 `json:"detailed_cycles"`
	FastForwardCycles uint64 `json:"fast_forward_cycles"`
	// WarmupDetected reports whether the steady-state detector fired before
	// the warm-up budget expired; WarmupEndCycle is where warm-up ended
	// either way.
	WarmupDetected bool   `json:"warmup_detected"`
	WarmupEndCycle uint64 `json:"warmup_end_cycle"`
	// SimulatedCycles is the total simulated span (warm-up, detailed and
	// fast-forward); MeasuredCycles is the detailed-interval sum — their
	// ratio against a full run's span is the sampling speedup lever.
	SimulatedCycles uint64 `json:"simulated_cycles"`
	MeasuredCycles  uint64 `json:"measured_cycles"`
	// Per-metric interval estimates: mean over the measured intervals with
	// the 95% CI half-width (Student-t below 30 intervals).
	Throughput  stats.Estimate `json:"throughput_mrps"`
	AMAT        stats.Estimate `json:"amat_cycles"`
	MemBW       stats.Estimate `json:"mem_bw_gbps"`
	DRAMLatMean stats.Estimate `json:"dram_lat_mean"`
	ReqLatMean  stats.Estimate `json:"req_lat_mean"`
	ReqLatP99   stats.Estimate `json:"req_lat_p99"`
}

// FastForwarding implements cpu.FFEnv.
func (m *Machine) FastForwarding() bool { return m.ff }

// setFastForward flips the whole machine between timed and functional
// execution: the hierarchy reroutes its memory sink to the functional
// datapath entry points (misses complete at the owning tier's unloaded
// latency), and cores pick up the flag on their next poll. On tiered
// machines a per-address stamp replaces the flat DRAM estimate — an
// NVM-resident page's miss must cost its own tier's latency.
func (m *Machine) setFastForward(on bool) {
	m.ff = on
	m.dp.hier.SetFastForward(on, m.dp.dram.UnloadedReadLatency())
	if on && m.dp.tier1 != nil {
		m.dp.hier.SetFastForwardLatency(m.dp.ffLat)
	}
}

// setPhase tags the observability time-series, when one is armed.
func (m *Machine) setPhase(phase string) {
	if m.sampler != nil {
		m.sampler.SetPhase(phase)
	}
}

// ffBatch approximates MLP overlap without per-access events: independent
// accesses accumulate in batches of width, each batch contributing its
// slowest member to the serial total — the same max-of-batch rule the timed
// core applies per step.
type ffBatch struct {
	width    int
	n        int
	max, sum uint64
}

func (b *ffBatch) add(lat uint64) {
	if lat > b.max {
		b.max = lat
	}
	if b.n++; b.n == b.width {
		b.sum += b.max
		b.n, b.max = 0, 0
	}
}

func (b *ffBatch) finish() uint64 {
	b.sum += b.max
	b.n, b.max = 0, 0
	return b.sum
}

// FFServe implements cpu.FFEnv: one whole request served functionally in a
// single call. Every cache touch the timed pipeline would perform happens
// (RX payload reads, the workload's accesses, TX stores, the relinquish
// sweep), so the hierarchy's content evolves exactly as under detailed
// execution; only the per-access event traffic and DRAM bank/bus timing are
// skipped. The returned completion cycle is a flat-latency approximation —
// good enough to keep closed-loop pacing and ring occupancy realistic, never
// used for measurement.
//
// Access order differs from the timed pipeline in one way: drivers with a
// FastForward path interleave their touches before the remaining RX payload
// lines instead of after. Within a single request that only permutes
// recency order, which has no observable effect at sampling granularity.
func (m *Machine) FFServe(now uint64, c int, p nic.Packet, txAddr uint64) (uint64, bool) {
	t := now + m.cfg.PollCycles
	b := ffBatch{width: m.cfg.MLPWidth}

	// Header line first, as the timed pipeline does.
	b.add(m.RXRead(t, c, p.Addr) - t)

	touch := func(a uint64, write, full bool) {
		var d uint64
		switch {
		case write && full:
			d = m.AppWriteFull(t, c, a)
		case write:
			d = m.AppWrite(t, c, a)
		default:
			d = m.AppRead(t, c, a)
		}
		b.add(d - t)
	}

	var req workload.FFRequest
	if f, ok := m.drv.(workload.FastForwarder); ok {
		req = f.FastForward(p.Tag, p.Size, touch)
	} else {
		// Fallback for drivers without a functional path: build the timed
		// plan and execute its accesses directly.
		m.drv.PlanRequest(p.Tag, p.Size, &m.ffPlan)
		for _, op := range m.ffPlan.Ops {
			touch(op.Addr, op.Write, op.FullLine)
		}
		req = workload.FFRequest{
			RespBytes:      m.ffPlan.RespBytes,
			ComputeCycles:  m.ffPlan.ComputeCycles,
			ReadFullPacket: m.ffPlan.ReadFullPacket,
		}
	}

	if req.ReadFullPacket && p.Size > addr.LineBytes {
		m.ffLines = addr.LineAddrs(m.ffLines[:0], p.Addr, p.Size)
		for _, a := range m.ffLines[1:] {
			b.add(m.RXRead(t, c, a) - t)
		}
	}

	done := t + b.finish() + req.ComputeCycles + m.ExtraServiceCycles(c, p.Tag)

	// Consume the buffer: relinquish before recycling the slot, the §V-A
	// ordering the timed pipeline enforces. Both calls are functional-safe —
	// sweeps route dropped writebacks through the functional sink.
	done = m.Relinquish(done, c, p.Addr, p.Size)
	m.FreeRXSlot(c)

	txBytes := req.RespBytes
	if txBytes > m.ffRespSlot {
		txBytes = m.ffRespSlot
	}
	if txBytes > 0 {
		m.ffLines = addr.LineAddrs(m.ffLines[:0], txAddr, txBytes)
		tb := ffBatch{width: m.cfg.MLPWidth}
		for _, a := range m.ffLines {
			tb.add(m.TXWrite(done, c, a) - done)
		}
		done += tb.finish()
		m.Transmit(done, nic.WorkQueueEntry{
			Owner:       c,
			BufAddr:     txAddr,
			Size:        txBytes,
			SweepBuffer: m.cfg.SweepTX,
		})
	}

	m.ffLatSum += done - now
	m.ffLatCount++
	m.OnRequestDone(done, c, p, done-now)
	return done, txBytes > 0
}

// warmupWindow holds one warm-up detector window's metrics — served
// requests, LLC hit rate and the functional request-latency proxy — plus the
// sample counts behind them, which set each metric's noise floor.
type warmupWindow struct {
	served  float64
	hitRate float64
	ffLat   float64
	reqs    float64 // served count: Poisson noise floor for served and ffLat
	accs    float64 // LLC accesses: binomial noise floor for hitRate
}

// stableAgainst reports whether cur's windowed deltas from prev all sit
// within tolerance. Each metric's tolerance is floored at 3x its own
// per-window sampling noise — Poisson relative noise 1/√n for the served
// count and the latency mean, binomial √(p(1-p)/n)/p for the hit rate — so
// a single knob expresses genuinely detectable drift: shot noise on a
// low-traffic window can never be mistaken for a warming transient, and a
// slow drift buried below the noise floor is, by construction, smaller than
// the run-to-run noise of a full detailed window of the same length.
func (cur warmupWindow) stableAgainst(prev warmupWindow, tol float64) bool {
	countTol := tol
	if n := math.Min(prev.reqs, cur.reqs); n > 0 {
		countTol = math.Max(tol, 3/math.Sqrt(n))
	}
	rateTol := tol
	if n := math.Min(prev.accs, cur.accs); n > 0 {
		if p := (prev.hitRate + cur.hitRate) / 2; p > 0 && p < 1 {
			rateTol = math.Max(tol, 3*math.Sqrt(p*(1-p)/n)/p)
		}
	}
	return relDelta(prev.served, cur.served) <= countTol &&
		relDelta(prev.hitRate, cur.hitRate) <= rateTol &&
		relDelta(prev.ffLat, cur.ffLat) <= countTol
}

// relDelta is the detector's stability measure between consecutive windows.
// Two zero windows are stable (an idle metric has converged); a metric
// appearing from zero is maximally unstable.
func relDelta(prev, cur float64) float64 {
	if prev == cur {
		return 0
	}
	if prev == 0 {
		return 1
	}
	return math.Abs(cur-prev) / math.Abs(prev)
}

// sampleDone is the interval scheduler's stop rule.
func sampleDone(sc SamplingConfig, n int, tput, amat *stats.Welford) bool {
	if sc.Mode == samplingModeFixed {
		return n >= sc.Intervals
	}
	// "ci": stop when both primary metrics are tight enough, bounded above.
	if n >= sc.MaxIntervals {
		return true
	}
	if n < minCIIntervals {
		return false
	}
	return tput.Estimate().RelHalfWidth() <= sc.MaxRelCI &&
		amat.Estimate().RelHalfWidth() <= sc.MaxRelCI
}

// runSampled executes the sampled-simulation schedule; Run dispatches here
// (after arming the sampler and starting every component) when
// Config.Sampling selects a mode. The warmup argument is a budget, not a
// fixed span: fast-forward warm-up ends as soon as the steady-state detector
// fires.
func (m *Machine) runSampled(warmup uint64) Results {
	sc := m.cfg.Sampling.withDefaults()

	// Phase 1 — functional warm-up with steady-state detection: fast-forward
	// in windows, watching windowed deltas of served throughput, LLC hit
	// rate and the functional latency proxy. All three within tolerance for
	// WarmupWindows consecutive windows ⇒ steady state.
	m.setFastForward(true)
	m.setPhase(phaseWarmupFF)
	var (
		detected bool
		prev     warmupWindow
		havePrev bool
		stable   int
	)
	for m.eng.Now() < warmup {
		next := m.eng.Now() + sc.WarmupWindowCycles
		if next > warmup {
			next = warmup
		}
		served0 := m.served
		hits0, miss0 := m.dp.hier.LLC().Hits(), m.dp.hier.LLC().Misses()
		ffSum0, ffCnt0 := m.ffLatSum, m.ffLatCount
		m.eng.RunUntil(next)

		cur := warmupWindow{served: float64(m.served - served0)}
		cur.reqs = cur.served
		dh, dm := m.dp.hier.LLC().Hits()-hits0, m.dp.hier.LLC().Misses()-miss0
		cur.accs = float64(dh + dm)
		if dh+dm > 0 {
			cur.hitRate = float64(dh) / float64(dh+dm)
		}
		if dc := m.ffLatCount - ffCnt0; dc > 0 {
			cur.ffLat = float64(m.ffLatSum-ffSum0) / float64(dc)
		}
		if havePrev && cur.stableAgainst(prev, sc.WarmupMetricTol) {
			stable++
		} else {
			stable = 0
		}
		prev, havePrev = cur, true
		if stable >= sc.WarmupWindows {
			detected = true
			break
		}
	}
	warmupEnd := m.eng.Now()

	// Phase 2 — alternating intervals. Each iteration: timed-but-unmeasured
	// detailed-warm prefix, measured detailed interval (its own collect,
	// fed into the accumulators), then — unless the stop rule fires — a
	// fast-forward span.
	warmPrefix := sc.DetailedCycles
	accDram := stats.NewHistogram(4, 8192)
	accReq := stats.NewHistogram(64, 8192)
	var (
		wTput, wAMAT, wBW, wDram, wReq, wP99 stats.Welford

		sums struct {
			served, offered, dropped, xmem uint64
			svcSum, svcCnt                 uint64
			hits, misses, sweepDrops       uint64
			tierAccesses                   uint64
		}
		counts    [stats.NumKinds]uint64
		intervals int
	)
	for {
		m.setFastForward(false)
		m.setPhase(phaseDetailedWarm)
		m.eng.RunUntil(m.eng.Now() + warmPrefix)

		m.dp.dramLat.Reset()
		m.reqLat.Reset()
		m.svcSum, m.svcCount = 0, 0
		m.amatSum, m.amatCount = 0, 0
		m.measuring, m.dp.measuring = true, true
		m.setPhase(phaseDetailed)
		s := m.snap()
		m.eng.RunUntil(m.eng.Now() + sc.DetailedCycles)
		m.measuring, m.dp.measuring = false, false

		ri := m.collect(s, sc.DetailedCycles)
		intervals++
		wTput.Add(ri.ThroughputMrps)
		wAMAT.Add(ri.AMATCycles)
		wBW.Add(ri.MemBWGBps)
		wDram.Add(ri.DRAMLatMean)
		wReq.Add(ri.ReqLatMean)
		wP99.Add(float64(ri.ReqLatP99))
		sums.served += ri.Served
		sums.offered += ri.Offered
		sums.dropped += ri.Dropped
		sums.xmem += ri.XMemAccesses
		sums.svcSum += m.svcSum
		sums.svcCnt += m.svcCount
		sums.hits += m.dp.hier.LLC().Hits() - s.llcHits
		sums.misses += m.dp.hier.LLC().Misses() - s.llcMisses
		_, drops := m.dp.hier.Sweeps()
		sums.sweepDrops += drops - s.sweepDrops
		sums.tierAccesses += ri.Tier1Accesses
		for k := range counts {
			counts[k] += ri.AccessCounts[k]
		}
		accDram.Merge(m.dp.dramLat)
		accReq.Merge(m.reqLat)

		if sampleDone(sc, intervals, &wTput, &wAMAT) {
			break
		}
		m.setFastForward(true)
		m.setPhase(phaseFastForward)
		m.eng.RunUntil(m.eng.Now() + sc.FastForwardCycles)
	}
	m.setFastForward(false)
	m.finishRun()

	// Assemble the run's Results: rate metrics are interval means (with CIs
	// in Sampled), distributions come from the merged per-interval
	// histograms, counters are summed over the measured intervals.
	total := uint64(intervals) * sc.DetailedCycles
	freq := m.cfg.FreqHz
	r := Results{MeasuredCycles: total}
	r.Served = sums.served
	r.ThroughputMrps = wTput.Mean()
	r.AMATCycles = wAMAT.Mean()
	r.MemBWGBps = wBW.Mean()
	r.MemBWUtilization = r.MemBWGBps / m.dp.dram.PeakGBps(freq)
	r.AccessCounts = counts
	r.AccessesPerRequest = stats.PerRequest(counts, sums.served)
	r.DRAMLatMean = accDram.Mean()
	r.DRAMLatP50 = accDram.Percentile(0.50)
	r.DRAMLatP99 = accDram.Percentile(0.99)
	r.DRAMLatCDF = accDram.CDF()
	r.ReqLatMean = accReq.Mean()
	r.ReqLatP99 = accReq.Percentile(0.99)
	if sums.svcCnt > 0 {
		r.AvgServiceCycles = float64(sums.svcSum) / float64(sums.svcCnt)
	}
	r.Offered = sums.offered
	r.Dropped = sums.dropped
	if sums.offered > 0 {
		r.DropRate = float64(sums.dropped) / float64(sums.offered)
	}
	if len(m.xmem) > 0 {
		r.XMemAccesses = sums.xmem
		perCore := float64(sums.xmem) / float64(len(m.xmem))
		instr := float64(m.xmem[0].Stream().InstrPerAccess())
		r.XMemIPC = perCore * instr / float64(total)
	}
	if sums.hits+sums.misses > 0 {
		r.LLCMissRatio = float64(sums.misses) / float64(sums.hits+sums.misses)
	}
	r.Sweeper = m.sweep.Stats()
	r.SweeperSavedGBps = stats.GBps(sums.sweepDrops, total, freq)
	r.Tier1Accesses = sums.tierAccesses
	r.Tier1BWGBps = stats.GBps(sums.tierAccesses, total, freq)
	r.Sampled = &SamplingSummary{
		Mode:              sc.Mode,
		Intervals:         intervals,
		DetailedCycles:    sc.DetailedCycles,
		FastForwardCycles: sc.FastForwardCycles,
		WarmupDetected:    detected,
		WarmupEndCycle:    warmupEnd,
		SimulatedCycles:   m.eng.Now(),
		MeasuredCycles:    total,
		Throughput:        wTput.Estimate(),
		AMAT:              wAMAT.Estimate(),
		MemBW:             wBW.Estimate(),
		DRAMLatMean:       wDram.Estimate(),
		ReqLatMean:        wReq.Estimate(),
		ReqLatP99:         wP99.Estimate(),
	}
	return r
}
