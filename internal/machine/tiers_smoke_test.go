package machine

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"sweeper/internal/core"
	"sweeper/internal/mem"
	"sweeper/internal/obs"
)

// TestTiersManifestSmoke validates a hybrid-memory run's manifest. When
// SWEEPER_TIERS_MANIFEST is set (the `make tiers-smoke` path: sweepersim runs
// tiered with SIMF invalidation and writes the manifest), it checks that
// file; otherwise it generates its own from a short in-process run, so the
// contract is also guarded under plain `go test`.
func TestTiersManifestSmoke(t *testing.T) {
	var data []byte
	if path := os.Getenv("SWEEPER_TIERS_MANIFEST"); path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data = b
	} else {
		cfg := quickCfg()
		cfg.OfferedMrps = 5
		cfg.Sweeper.RXSweep = true
		cfg.Sweeper.Insn = core.InsnSIMF
		cfg.MemTier = mem.DefaultTierConfig(mem.TierHotPage)
		cfg.MemTier.DRAMBytes = 16 << 20
		m := MustNew(cfg)
		r := m.Run(300_000, 200_000)
		var buf bytes.Buffer
		if err := obs.WriteManifest(&buf, m.BuildManifest("tiers smoke", r)); err != nil {
			t.Fatal(err)
		}
		data = buf.Bytes()
	}

	var man struct {
		Config struct {
			Sweeper struct {
				Insn string `json:"Insn"`
			} `json:"Sweeper"`
			MemTier struct {
				Policy        string  `json:"Policy"`
				BandwidthGBps float64 `json:"BandwidthGBps"`
			} `json:"MemTier"`
		} `json:"config"`
		Results struct {
			Served        uint64  `json:"Served"`
			Tier1Accesses uint64  `json:"Tier1Accesses"`
			Tier1BWGBps   float64 `json:"Tier1BWGBps"`
			Sweeper       struct {
				SweptLines       uint64 `json:"SweptLines"`
				WrittenBackLines uint64 `json:"WrittenBackLines"`
			} `json:"Sweeper"`
		} `json:"results"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("tiers manifest does not parse: %v", err)
	}
	if man.Config.Sweeper.Insn != core.InsnSIMF {
		t.Fatalf("manifest instruction %q, want %q", man.Config.Sweeper.Insn, core.InsnSIMF)
	}
	if man.Config.MemTier.Policy == "" || man.Config.MemTier.BandwidthGBps <= 0 {
		t.Fatalf("manifest lost the tier config: %+v", man.Config.MemTier)
	}
	if man.Results.Served == 0 {
		t.Fatal("tiered run served nothing")
	}
	if man.Results.Tier1Accesses == 0 || man.Results.Tier1BWGBps <= 0 {
		t.Fatalf("tiered run never touched tier 1: %+v", man.Results)
	}
	if man.Results.Sweeper.SweptLines == 0 || man.Results.Sweeper.WrittenBackLines == 0 {
		t.Fatalf("simf relinquish left no trace: %+v", man.Results.Sweeper)
	}
	for _, key := range []string{"mem.tier1.reads", "mem.tier1.writes", "mem.tier1.bus_busy_cycles",
		"mem.tier1.promotions", "mem.tier1.hot_pages", "cpu.served"} {
		if _, ok := man.Metrics[key]; !ok {
			t.Errorf("manifest missing metric %q", key)
		}
	}
	if man.Metrics["mem.tier1.writes"] == 0 {
		t.Error("tier-1 write counter never advanced")
	}
}
