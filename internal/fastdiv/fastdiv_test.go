package fastdiv

import (
	"math/rand"
	"testing"
)

func checkAgainstNaive(t *testing.T, d, n uint64) {
	t.Helper()
	v := New(d)
	if got := v.Div(n); got != n/d {
		t.Fatalf("Div(%d) by %d = %d, want %d", n, d, got, n/d)
	}
	if got := v.Mod(n); got != n%d {
		t.Fatalf("Mod(%d) by %d = %d, want %d", n, d, got, n%d)
	}
	q, r := v.DivMod(n)
	if q != n/d || r != n%d {
		t.Fatalf("DivMod(%d) by %d = (%d,%d), want (%d,%d)", n, d, q, r, n/d, n%d)
	}
}

func TestDivisorKnownGeometries(t *testing.T) {
	// The divisors the simulator actually builds: Table I set counts
	// (49152-set LLC is the critical non-power-of-two), channel counts,
	// banks and lines-per-row.
	divisors := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 12, 32, 64, 128, 1024,
		49152, 49151, 65536, 100003}
	ns := []uint64{0, 1, 2, 63, 64, 49151, 49152, 49153, 1 << 20,
		1<<32 - 1, 1 << 32, 1<<32 + 1, 1 << 48, ^uint64(0)}
	for _, d := range divisors {
		for _, n := range ns {
			checkAgainstNaive(t, d, n)
		}
	}
}

func TestDivisorRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		d := rng.Uint64()%(1<<20) + 1
		n := rng.Uint64() >> uint(rng.Intn(64))
		checkAgainstNaive(t, d, n)
	}
}

func TestDivisorHugeDivisorFallback(t *testing.T) {
	for _, d := range []uint64{1<<32 + 1, 1<<40 + 7, ^uint64(0)} {
		for _, n := range []uint64{0, 1 << 33, ^uint64(0)} {
			checkAgainstNaive(t, d, n)
		}
	}
}

func TestZeroDivisorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func BenchmarkDivNaive49152(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += uint64(i) % sets49152
	}
	_ = sink
}

var sets49152 uint64 = 49152 // variable so the compiler cannot strength-reduce

func BenchmarkDivMagic49152(b *testing.B) {
	v := New(49152)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += v.Mod(uint64(i))
	}
	_ = sink
}
