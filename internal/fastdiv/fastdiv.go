// Package fastdiv implements strength-reduced division and modulo by a
// runtime-constant divisor. The simulator's hottest paths — cache set
// indexing and DRAM address mapping — divide every access by geometry
// parameters that are fixed at construction but unknown to the compiler
// (the Table I LLC has 49152 sets, a non-power-of-two), so each probe pays
// for hardware integer division. A Divisor precomputes either a shift/mask
// (power-of-two divisors) or a fixed-point reciprocal (Lemire's round-up
// method, via math/bits.Mul64) and replaces the division with a multiply.
package fastdiv

import "math/bits"

// magicMax bounds the operand range on which the reciprocal path is exact:
// with a 64-bit magic number, Lemire's method is exact for all n, d < 2^32.
// Larger operands (never produced by the simulator's line indices, but
// possible through the public API) fall back to hardware division.
const magicMax = 1 << 32

// Divisor divides by a fixed non-zero value without hardware division.
// The zero value is invalid; build one with New.
type Divisor struct {
	d     uint64
	magic uint64 // ceil(2^64 / d); used when pow2 is false
	shift uint   // log2(d); used when pow2 is true
	pow2  bool
}

// New prepares a Divisor for d. It panics on a zero divisor and falls back
// to hardware division for divisors >= 2^32 (no simulator geometry comes
// close).
func New(d uint64) Divisor {
	if d == 0 {
		panic("fastdiv: zero divisor")
	}
	if d&(d-1) == 0 {
		return Divisor{d: d, shift: uint(bits.TrailingZeros64(d)), pow2: true}
	}
	if d >= magicMax {
		return Divisor{d: d}
	}
	// Round-up reciprocal: since d is not a power of two it does not
	// divide 2^64, so ceil(2^64/d) = floor((2^64-1)/d) + 1.
	return Divisor{d: d, magic: ^uint64(0)/d + 1}
}

// D returns the divisor value.
func (v Divisor) D() uint64 { return v.d }

// Div returns n / d.
func (v Divisor) Div(n uint64) uint64 {
	if v.pow2 {
		return n >> v.shift
	}
	if n >= magicMax || v.magic == 0 {
		return n / v.d
	}
	q, _ := bits.Mul64(v.magic, n)
	return q
}

// Mod returns n % d.
func (v Divisor) Mod(n uint64) uint64 {
	if v.pow2 {
		return n & (v.d - 1)
	}
	if n >= magicMax || v.magic == 0 {
		return n % v.d
	}
	// Lemire's fastmod: the fractional part of n/d, scaled to 2^64, times
	// d, truncated, is exactly the remainder for n, d < 2^32.
	frac := v.magic * n
	r, _ := bits.Mul64(frac, v.d)
	return r
}

// DivMod returns n / d and n % d with one reciprocal multiply.
func (v Divisor) DivMod(n uint64) (q, r uint64) {
	if v.pow2 {
		return n >> v.shift, n & (v.d - 1)
	}
	if n >= magicMax || v.magic == 0 {
		return n / v.d, n % v.d
	}
	q, _ = bits.Mul64(v.magic, n)
	return q, n - q*v.d
}
