//go:build sweeperdebug

package obs

// ProbesEnabled: the sweeperdebug build tag compiles the invariant probes
// in; see probe_off.go for the normal-build constant.
const ProbesEnabled = true
