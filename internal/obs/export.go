package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteSeriesCSV emits the series as CSV: a cycle column followed by one
// column per metric. Counter columns are differenced into per-interval
// deltas (the first row keeps the value accumulated before the first
// sample); gauge columns are emitted as sampled. Phase-tagged series (from
// sampled-simulation runs) get a phase column right after the cycle;
// untagged series export byte-identically to before tagging existed.
func WriteSeriesCSV(w io.Writer, s *Series) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "cycle")
	if s.Phases != nil {
		fmt.Fprint(bw, ",phase")
	}
	for _, n := range s.Names {
		fmt.Fprintf(bw, ",%s", n)
	}
	fmt.Fprintln(bw)
	prev := make([]float64, len(s.Names))
	for i, cyc := range s.Cycles {
		fmt.Fprintf(bw, "%d", cyc)
		if s.Phases != nil {
			fmt.Fprintf(bw, ",%s", s.Phases[i])
		}
		for j, v := range s.Rows[i] {
			out := v
			if s.Kinds[j] == KindCounter {
				out = v - prev[j]
				prev[j] = v
			}
			fmt.Fprintf(bw, ",%g", out)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// TraceMeta parameterizes a Chrome trace export.
type TraceMeta struct {
	// Process labels the trace's process row ("sweepersim kvs").
	Process string
	// FreqHz converts simulated cycles to trace microseconds; 0 emits raw
	// cycles as microseconds.
	FreqHz float64
}

// traceEvent is one trace_event entry; the subset of the Chrome trace format
// the exporter uses (counter tracks plus process-name metadata).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the series in Chrome trace_event JSON (object
// format), loadable by chrome://tracing and Perfetto. Each metric becomes a
// counter track; counters are differenced into per-interval deltas so the
// track reads as activity over time, not a ramp.
func WriteChromeTrace(w io.Writer, s *Series, meta TraceMeta) error {
	toUS := func(cyc uint64) float64 {
		if meta.FreqHz <= 0 {
			return float64(cyc)
		}
		return float64(cyc) / meta.FreqHz * 1e6
	}
	name := meta.Process
	if name == "" {
		name = "sweeper"
	}
	events := make([]traceEvent, 0, len(s.Cycles)*len(s.Names)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": name},
	})
	prev := make([]float64, len(s.Names))
	for i, cyc := range s.Cycles {
		ts := toUS(cyc)
		for j, v := range s.Rows[i] {
			out := v
			if s.Kinds[j] == KindCounter {
				out = v - prev[j]
				prev[j] = v
			}
			events = append(events, traceEvent{
				Name: s.Names[j], Ph: "C", Ts: ts, Pid: 1, Tid: 1,
				Args: map[string]any{"value": out},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// Manifest is the machine-readable record of one run: the fully resolved
// configuration, the measured results, closing metric totals, histogram
// summaries and (when sampled) the full time-series. Config and Results are
// typed any so the package stays dependency-free below machine.
type Manifest struct {
	Label        string             `json:"label,omitempty"`
	GeneratedAt  string             `json:"generated_at,omitempty"`
	WarmupCycles uint64             `json:"warmup_cycles"`
	MeasureCyc   uint64             `json:"measure_cycles"`
	SampleEvery  uint64             `json:"sample_every_cycles,omitempty"`
	Config       any                `json:"config"`
	Results      any                `json:"results"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	Histograms   []HistogramSummary `json:"histograms,omitempty"`
	Series       *Series            `json:"series,omitempty"`
}

// WriteManifest emits the manifest as indented JSON.
func WriteManifest(w io.Writer, m *Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
