package obs

import "fmt"

// Failf reports a violated invariant probe. Probes guard simulator-internal
// consistency (not user input), so a firing probe is always a simulator bug
// and panics immediately with the formatted diagnosis.
func Failf(format string, args ...any) {
	panic("obs: invariant probe failed: " + fmt.Sprintf(format, args...))
}
