//go:build !sweeperdebug

package obs

// ProbesEnabled gates the debug invariant probes compiled into the hot
// paths (ring slot conservation, DRAM clock monotonicity, cache-mask
// bounds). It is a constant so that, in normal builds, every guarded check
// is dead code the compiler eliminates entirely. Build with
// -tags sweeperdebug to turn the probes on.
const ProbesEnabled = false
