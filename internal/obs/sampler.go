package obs

import "sweeper/internal/sim"

// Series is a sampled time-series: one row of metric values per sample
// cycle. Counter columns hold cumulative values; exporters difference them.
// Phases, when non-nil, labels each sample with the simulation phase it was
// taken in (sampled-simulation runs tag "warmup-ff", "detailed-warm",
// "detailed" and "fast-forward"); untagged runs leave it nil so their
// exports are unchanged.
type Series struct {
	Names  []string    `json:"names"`
	Kinds  []Kind      `json:"kinds"`
	Cycles []uint64    `json:"cycles"`
	Rows   [][]float64 `json:"rows"`
	Phases []string    `json:"phases,omitempty"`
}

// Sampler periodically snapshots a registry into a Series, driven by the
// event engine. It is a sim.Sink: each firing takes one read-only sample and
// reschedules itself, so arming a sampler never perturbs simulation results
// — only the (at, seq) sequence numbers of later events shift, which
// preserves their relative dispatch order.
//
// Cadence is exact by construction: each firing reschedules at now+every, and
// the engine dispatches events at their exact timestamps — sequentially and
// under the sharded engine alike, since the parallel runtime merges shards
// into one canonical (at, seq) order before dispatching. Sampled time-series
// are therefore bit-identical across shard counts. A sample landing off the
// expected grid would mean the engine dispatched an event at the wrong cycle;
// the debug build asserts against exactly that drift.
type Sampler struct {
	eng   *sim.Engine
	reg   *Registry
	every uint64
	next  uint64
	done  bool

	// phase labels subsequent samples; tagged flips on the first SetPhase
	// call, lazily enabling the Series' phase column. The sampling cadence
	// itself never changes across phases — fast-forward intervals keep the
	// exact every-cycle grid, so the cadence-drift probe stays valid — the
	// samples are merely tagged so exporters and readers can tell functional
	// spans from measured ones.
	phase  string
	tagged bool

	s Series
}

// NewSampler creates a sampler reading reg every `every` cycles. Start arms
// it; an un-started sampler costs nothing.
func NewSampler(eng *sim.Engine, reg *Registry, every uint64) *Sampler {
	if every == 0 {
		panic("obs: sampling cadence must be positive")
	}
	return &Sampler{
		eng:   eng,
		reg:   reg,
		every: every,
		s: Series{
			Names: reg.Names(),
			Kinds: reg.Kinds(),
		},
	}
}

// Every returns the sampling cadence in cycles.
func (sp *Sampler) Every() uint64 { return sp.every }

// Start takes an immediate sample and schedules the periodic ones.
func (sp *Sampler) Start() {
	sp.sample(sp.eng.Now())
	sp.next = sp.eng.Now() + sp.every
	sp.eng.ScheduleAfter(sp.every, sp, 0)
}

// OnEvent implements sim.Sink.
func (sp *Sampler) OnEvent(now sim.Cycle, _ uint64) {
	if sp.done {
		return
	}
	if ProbesEnabled && uint64(now) != sp.next {
		Failf("obs: sampler cadence drift: fired at cycle %d, expected %d (every=%d)",
			now, sp.next, sp.every)
	}
	sp.sample(now)
	sp.next = uint64(now) + sp.every
	sp.eng.ScheduleAfter(sp.every, sp, 0)
}

// Finish takes a final sample at cycle now (unless one already landed there)
// and stops rescheduling, so the series always covers the full run.
func (sp *Sampler) Finish(now uint64) {
	if sp.done {
		return
	}
	sp.done = true
	if n := len(sp.s.Cycles); n == 0 || sp.s.Cycles[n-1] < now {
		sp.sample(now)
	}
}

// SetPhase labels samples taken from now on. The first call backfills the
// phase column for samples already taken (labelled with the empty phase), so
// a series is either fully tagged or fully untagged.
func (sp *Sampler) SetPhase(phase string) {
	if !sp.tagged {
		sp.tagged = true
		sp.s.Phases = make([]string, len(sp.s.Cycles))
	}
	sp.phase = phase
}

func (sp *Sampler) sample(now uint64) {
	row := make([]float64, sp.reg.Len())
	sp.reg.readInto(now, row)
	sp.s.Cycles = append(sp.s.Cycles, now)
	sp.s.Rows = append(sp.s.Rows, row)
	if sp.tagged {
		sp.s.Phases = append(sp.s.Phases, sp.phase)
	}
}

// Series returns the sampled data. Call after Finish.
func (sp *Sampler) Series() *Series { return &sp.s }
