package obs_test

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sweeper/internal/machine"
	"sweeper/internal/obs"
)

// TestObsSmoke validates a full set of exporter artifacts. When
// SWEEPER_OBS_DIR is set (the `make obs-smoke` path), it checks the
// metrics.csv, trace.json and manifest.json the sweepersim CLI wrote there;
// otherwise it generates its own set from a short default-config run, so the
// test also guards the exporters under plain `go test`.
func TestObsSmoke(t *testing.T) {
	dir := os.Getenv("SWEEPER_OBS_DIR")
	if dir == "" {
		dir = t.TempDir()
		generateArtifacts(t, dir)
	}

	metrics := readFile(t, filepath.Join(dir, "metrics.csv"))
	rows, err := csv.NewReader(strings.NewReader(metrics)).ReadAll()
	if err != nil {
		t.Fatalf("metrics.csv does not parse as CSV: %v", err)
	}
	if len(rows) < 3 {
		t.Fatalf("metrics.csv has %d rows, want a header plus at least 2 samples", len(rows))
	}
	if rows[0][0] != "cycle" || len(rows[0]) < 10 {
		t.Fatalf("metrics.csv header looks wrong: %v", rows[0])
	}
	for _, col := range []string{"mem.reads", "nic.ring_occupancy", "cpu.served"} {
		if !contains(rows[0], col) {
			t.Errorf("metrics.csv missing column %s", col)
		}
	}

	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(readFile(t, filepath.Join(dir, "trace.json"))), &trace); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	if len(trace.TraceEvents) < 10 {
		t.Fatalf("trace.json has %d events, want a real trace", len(trace.TraceEvents))
	}
	if trace.TraceEvents[0].Ph != "M" {
		t.Errorf("trace.json should open with process metadata, got %+v", trace.TraceEvents[0])
	}

	var man struct {
		Config  map[string]any     `json:"config"`
		Results map[string]any     `json:"results"`
		Metrics map[string]float64 `json:"metrics"`
		Series  *obs.Series        `json:"series"`
	}
	if err := json.Unmarshal([]byte(readFile(t, filepath.Join(dir, "manifest.json"))), &man); err != nil {
		t.Fatalf("manifest.json does not parse: %v", err)
	}
	if man.Config == nil || man.Config["FreqHz"] == nil {
		t.Errorf("manifest config missing or unresolved: %v", man.Config)
	}
	if man.Results == nil || man.Results["ThroughputMrps"] == nil {
		t.Errorf("manifest results missing: %v", man.Results)
	}
	if len(man.Metrics) == 0 {
		t.Error("manifest has no closing metric values")
	}
	if man.Series == nil || len(man.Series.Rows) < 2 {
		t.Error("manifest has no sampled series")
	}
}

func generateArtifacts(t *testing.T, dir string) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableSampling(0)
	r := m.Run(50_000, 100_000)

	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("metrics.csv", func(f *os.File) error {
		return obs.WriteSeriesCSV(f, m.ObsSeries())
	})
	write("trace.json", func(f *os.File) error {
		return obs.WriteChromeTrace(f, m.ObsSeries(),
			obs.TraceMeta{Process: "obs smoke", FreqHz: cfg.FreqHz})
	})
	write("manifest.json", func(f *os.File) error {
		return obs.WriteManifest(f, m.BuildManifest("obs smoke", r))
	})
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
