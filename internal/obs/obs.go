// Package obs is the simulator's observability layer: a registry of named
// metrics that components expose through read closures, a periodic sampler
// driven off the event engine that snapshots them into time-series over
// simulated time, and exporters for the sampled data (CSV time-series,
// Chrome trace_event JSON, per-run manifests).
//
// The design is pull-based so the hot path stays untouched: components keep
// their existing plain uint64 counters and register closures that read them;
// nothing is allocated or called per simulated event. Sampling cost is paid
// only at the sampler's cadence, and only when a sampler is armed at all —
// a machine run with observability disabled schedules no events and reads no
// metrics.
package obs

import (
	"encoding/json"
	"fmt"

	"sweeper/internal/stats"
)

// Kind classifies a metric's read semantics.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing cumulative count
	// (DRAM reads, packets injected). Exporters difference consecutive
	// samples into per-interval deltas.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value (ring occupancy, write-queue
	// depth, DDIO ways). Exporters emit samples as read.
	KindGauge
)

// String names the kind for manifests and debugging.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MarshalJSON emits the kind name, keeping manifests self-describing.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the kind name, so exported series round-trip.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	default:
		return fmt.Errorf("obs: unknown metric kind %q", s)
	}
	return nil
}

type metric struct {
	name string
	kind Kind
	read func(now uint64) float64
}

type histEntry struct {
	name string
	h    *stats.Histogram
}

// Registry holds a machine's registered metrics in registration order. It is
// not safe for concurrent use; the simulator is single-threaded by design.
//
// A Registry is a (possibly prefixed) view over shared storage: Sub derives
// a view that prepends a namespace to every registration, which is how one
// cluster-wide registry holds N nodes' metrics as node0.*, node1.*, ...
// without the components knowing they are namespaced.
type Registry struct {
	prefix string
	s      *regState
}

// regState is the storage every view of one registry shares.
type regState struct {
	metrics []metric
	byName  map[string]bool
	hists   []histEntry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{s: &regState{byName: map[string]bool{}}}
}

// Sub returns a view of the registry that prepends prefix to every metric
// and histogram registered through it ("node0." -> node0.llc.hits). Views
// share the parent's storage, so sampling and export see one flat,
// registration-ordered namespace.
func (r *Registry) Sub(prefix string) *Registry {
	return &Registry{prefix: r.prefix + prefix, s: r.s}
}

func (r *Registry) add(name string, kind Kind, read func(now uint64) float64) {
	if name == "" || read == nil {
		panic("obs: metric needs a name and a read function")
	}
	name = r.prefix + name
	if r.s.byName[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.s.byName[name] = true
	r.s.metrics = append(r.s.metrics, metric{name: name, kind: kind, read: read})
}

// Counter registers a cumulative count read from fn.
func (r *Registry) Counter(name string, fn func() uint64) {
	r.add(name, KindCounter, func(uint64) float64 { return float64(fn()) })
}

// Gauge registers an instantaneous value. The reader receives the sample
// cycle, so derived gauges (backlogs relative to now) need no extra state.
func (r *Registry) Gauge(name string, fn func(now uint64) float64) {
	r.add(name, KindGauge, fn)
}

// Histogram registers a latency distribution for manifest summaries. The
// histogram is read at export time, not sampled.
func (r *Registry) Histogram(name string, h *stats.Histogram) {
	if name == "" || h == nil {
		panic("obs: histogram needs a name and an instance")
	}
	name = r.prefix + name
	for _, e := range r.s.hists {
		if e.name == name {
			panic(fmt.Sprintf("obs: duplicate histogram %q", name))
		}
	}
	r.s.hists = append(r.s.hists, histEntry{name: name, h: h})
}

// Len returns the number of registered sampled metrics (histograms excluded).
func (r *Registry) Len() int { return len(r.s.metrics) }

// Names returns the sampled metric names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.s.metrics))
	for i, m := range r.s.metrics {
		out[i] = m.name
	}
	return out
}

// Kinds returns the sampled metric kinds in registration order.
func (r *Registry) Kinds() []Kind {
	out := make([]Kind, len(r.s.metrics))
	for i, m := range r.s.metrics {
		out[i] = m.kind
	}
	return out
}

// readInto fills row (len == Len) with the current metric values.
func (r *Registry) readInto(now uint64, row []float64) {
	for i := range r.s.metrics {
		row[i] = r.s.metrics[i].read(now)
	}
}

// Final returns every sampled metric's value at cycle now, keyed by name.
// Manifests embed it as the run's closing totals.
func (r *Registry) Final(now uint64) map[string]float64 {
	out := make(map[string]float64, len(r.s.metrics))
	for _, m := range r.s.metrics {
		out[m.name] = m.read(now)
	}
	return out
}

// HistogramSummary condenses one registered distribution for manifests.
type HistogramSummary struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
}

// HistogramSummaries summarizes every registered histogram, in registration
// order.
func (r *Registry) HistogramSummaries() []HistogramSummary {
	out := make([]HistogramSummary, 0, len(r.s.hists))
	for _, e := range r.s.hists {
		out = append(out, HistogramSummary{
			Name:  e.name,
			Count: e.h.Count(),
			Mean:  e.h.Mean(),
			Min:   e.h.Min(),
			Max:   e.h.Max(),
			P50:   e.h.Percentile(0.50),
			P90:   e.h.Percentile(0.90),
			P99:   e.h.Percentile(0.99),
			P999:  e.h.Percentile(0.999),
		})
	}
	return out
}
