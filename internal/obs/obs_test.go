package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"sweeper/internal/sim"
	"sweeper/internal/stats"
)

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", func() uint64 { return 0 })
	mustPanic(t, "duplicate counter", func() {
		r.Counter("a", func() uint64 { return 0 })
	})
	mustPanic(t, "duplicate across kinds", func() {
		r.Gauge("a", func(uint64) float64 { return 0 })
	})
	mustPanic(t, "empty name", func() {
		r.Counter("", func() uint64 { return 0 })
	})
	h := stats.NewHistogram(4, 16)
	r.Histogram("h", h)
	mustPanic(t, "duplicate histogram", func() {
		r.Histogram("h", h)
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestRegistryOrderAndFinal(t *testing.T) {
	r := NewRegistry()
	var n uint64 = 41
	r.Counter("first", func() uint64 { return n })
	r.Gauge("second", func(now uint64) float64 { return float64(now) * 2 })
	if got := r.Names(); got[0] != "first" || got[1] != "second" {
		t.Fatalf("Names order = %v", got)
	}
	if got := r.Kinds(); got[0] != KindCounter || got[1] != KindGauge {
		t.Fatalf("Kinds = %v", got)
	}
	n = 42
	fin := r.Final(10)
	if fin["first"] != 42 || fin["second"] != 20 {
		t.Fatalf("Final = %v", fin)
	}
}

// TestSamplerCoversRun drives a sampler off a real engine: samples must land
// at cycle 0, every cadence, and at Finish time, with counter values read
// live at each sample.
func TestSamplerCoversRun(t *testing.T) {
	eng := sim.NewEngine()
	var count uint64
	r := NewRegistry()
	r.Counter("ticks", func() uint64 { return count })

	// A source event every 7 cycles bumps the counter.
	src := sinkFunc(func(now sim.Cycle, _ uint64) { count++ })
	for c := uint64(7); c <= 100; c += 7 {
		eng.ScheduleAfter(sim.Cycle(c), src, 0)
	}

	sp := NewSampler(eng, r, 25)
	sp.Start()
	eng.RunUntil(100)
	sp.Finish(eng.Now())

	s := sp.Series()
	wantCycles := []uint64{0, 25, 50, 75, 100}
	if len(s.Cycles) != len(wantCycles) {
		t.Fatalf("cycles = %v, want %v", s.Cycles, wantCycles)
	}
	for i, c := range wantCycles {
		if s.Cycles[i] != c {
			t.Fatalf("cycles = %v, want %v", s.Cycles, wantCycles)
		}
	}
	// At cycle 25 the 7/14/21-cycle events have fired; at 100 all 14 have.
	if s.Rows[1][0] != 3 {
		t.Errorf("sample at cycle 25 = %g, want 3", s.Rows[1][0])
	}
	if s.Rows[4][0] != 14 {
		t.Errorf("sample at cycle 100 = %g, want 14", s.Rows[4][0])
	}
}

// TestSamplerFinishIdempotent checks Finish neither duplicates the terminal
// sample nor keeps sampling after it.
func TestSamplerFinishIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	r.Counter("c", func() uint64 { return 0 })
	sp := NewSampler(eng, r, 10)
	sp.Start()
	eng.RunUntil(10)
	sp.Finish(10)
	sp.Finish(10)
	eng.RunUntil(50) // pending reschedule fires once, must be a no-op
	if got := len(sp.Series().Cycles); got != 2 {
		t.Fatalf("samples = %d (%v), want 2", got, sp.Series().Cycles)
	}
}

type sinkFunc func(now sim.Cycle, arg uint64)

func (f sinkFunc) OnEvent(now sim.Cycle, arg uint64) { f(now, arg) }

func testSeries() *Series {
	return &Series{
		Names:  []string{"cnt", "g"},
		Kinds:  []Kind{KindCounter, KindGauge},
		Cycles: []uint64{0, 10, 20},
		Rows:   [][]float64{{5, 1.5}, {8, 2.5}, {8, 0.5}},
	}
}

func TestWriteSeriesCSVDeltas(t *testing.T) {
	var b strings.Builder
	if err := WriteSeriesCSV(&b, testSeries()); err != nil {
		t.Fatal(err)
	}
	want := "cycle,cnt,g\n0,5,1.5\n10,3,2.5\n20,0,0.5\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	var b strings.Builder
	err := WriteChromeTrace(&b, testSeries(), TraceMeta{Process: "test", FreqHz: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &tf); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if tf.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	// 1 metadata event + 3 samples x 2 metrics.
	if len(tf.TraceEvents) != 7 {
		t.Fatalf("events = %d, want 7", len(tf.TraceEvents))
	}
	if tf.TraceEvents[0].Ph != "M" || tf.TraceEvents[0].Args["name"] != "test" {
		t.Errorf("first event not process_name metadata: %+v", tf.TraceEvents[0])
	}
	// Counter track is differenced: second sample of "cnt" reads 3.
	var cntDeltas []float64
	for _, e := range tf.TraceEvents[1:] {
		if e.Ph != "C" {
			t.Fatalf("non-counter event %+v", e)
		}
		if e.Name == "cnt" {
			cntDeltas = append(cntDeltas, e.Args["value"].(float64))
		}
	}
	if len(cntDeltas) != 3 || cntDeltas[1] != 3 || cntDeltas[2] != 0 {
		t.Errorf("cnt deltas = %v, want [5 3 0]", cntDeltas)
	}
	// FreqHz 1e6 makes 10 cycles == 10 us.
	if tf.TraceEvents[3].Ts != 10 {
		t.Errorf("ts of second sample = %g, want 10", tf.TraceEvents[3].Ts)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	man := &Manifest{
		Label:        "unit",
		WarmupCycles: 100,
		MeasureCyc:   200,
		SampleEvery:  10,
		Config:       map[string]any{"Cores": 24},
		Results:      map[string]any{"Mrps": 30.5},
		Metrics:      map[string]float64{"mem.reads": 9},
		Histograms: []HistogramSummary{
			{Name: "req.latency", Count: 3, Mean: 5, Min: 1, Max: 9, P50: 5, P99: 9},
		},
		Series: testSeries(),
	}
	var b strings.Builder
	if err := WriteManifest(&b, man); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	for _, key := range []string{"label", "warmup_cycles", "measure_cycles",
		"sample_every_cycles", "config", "results", "metrics", "histograms", "series"} {
		if _, ok := got[key]; !ok {
			t.Errorf("manifest missing %q", key)
		}
	}
	kinds := got["series"].(map[string]any)["kinds"].([]any)
	if kinds[0] != "counter" || kinds[1] != "gauge" {
		t.Errorf("kinds marshalled as %v, want names", kinds)
	}
}
