package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sweeper/internal/machine"
	"sweeper/internal/nic"
	"sweeper/internal/stats"
	"sweeper/internal/workload"
)

// tinyScale keeps experiment-harness tests fast; assertions target
// structure and direction, not converged magnitudes.
func tinyScale() Scale {
	return Scale{Warmup: 600_000, Measure: 400_000, SearchIters: 2, Parallelism: 4}
}

func TestScales(t *testing.T) {
	if FullScale().Warmup <= QuickScale().Warmup {
		t.Fatal("full scale must warm up longer than quick scale")
	}
	if (Scale{}).workers() < 1 {
		t.Fatal("workers")
	}
	if (Scale{Parallelism: 3}).workers() != 3 {
		t.Fatal("explicit parallelism")
	}
}

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv("SWEEPER_WORKERS", "5")
	if got := (Scale{}).workers(); got != 5 {
		t.Fatalf("workers() = %d with SWEEPER_WORKERS=5", got)
	}
	if got := (Scale{Parallelism: 2}).workers(); got != 2 {
		t.Fatal("explicit Parallelism must beat the environment")
	}
	t.Setenv("SWEEPER_WORKERS", "not-a-number")
	if got := (Scale{}).workers(); got < 1 {
		t.Fatalf("workers() = %d with junk SWEEPER_WORKERS", got)
	}
}

func TestWorkersDividedByShards(t *testing.T) {
	// A sharded run occupies Shards slots, so the run-level budget shrinks
	// by that factor and never drops below one.
	cases := []struct {
		parallelism, shards, want int
	}{
		{8, 0, 8},  // sequential: full budget
		{8, 1, 8},  // shards=1 is the sequential fallback
		{8, 2, 4},  // budget split evenly
		{8, 4, 2},  //
		{8, 16, 1}, // oversubscribed shards: floor at one run
		{3, 2, 1},  // integer division, floor at one
	}
	for _, c := range cases {
		sc := Scale{Parallelism: c.parallelism, Shards: c.shards}
		if got := sc.workers(); got != c.want {
			t.Fatalf("workers() = %d with Parallelism=%d Shards=%d, want %d",
				got, c.parallelism, c.shards, c.want)
		}
	}
	if got := (Scale{Parallelism: 64, Shards: -1}).workers(); got < 1 {
		t.Fatalf("workers() = %d with auto shards", got)
	}
}

func TestVariants(t *testing.T) {
	cfg := machine.DefaultConfig()

	v := DMAVariant()
	if got := v.Apply(cfg); got.NICMode != nic.ModeDMA || got.Sweeper.RXSweep {
		t.Fatal("DMA variant")
	}
	v = IdealVariant()
	if got := v.Apply(cfg); got.NICMode != nic.ModeIdeal {
		t.Fatal("ideal variant")
	}
	v = DDIOVariant(6, true)
	got := v.Apply(cfg)
	if got.NICMode != nic.ModeDDIO || got.DDIOWays != 6 || !got.Sweeper.RXSweep {
		t.Fatal("DDIO variant")
	}
	if v.Name != "DDIO 6 Ways + Sweeper" {
		t.Fatalf("name %q", v.Name)
	}
	if len(ddioPairs(2, 12)) != 4 {
		t.Fatal("ddioPairs")
	}
}

func TestConfigConstructors(t *testing.T) {
	kvs := KVSConfig(512, 2048)
	if kvs.ItemBytes != 512 || kvs.PacketBytes != 512 || kvs.RingSlots != 2048 {
		t.Fatal("KVS config")
	}
	if err := kvs.Validate(); err != nil {
		t.Fatal(err)
	}
	l3 := L3FwdConfig(1024)
	if l3.Workload != workload.NameL3Fwd || l3.TXSlots != 1024 {
		t.Fatal("L3fwd config: TX ring must mirror RX")
	}
	if err := l3.Validate(); err != nil {
		t.Fatal(err)
	}
	col := CollocationConfig()
	if col.NetCores != 12 || col.XMemCores != 12 {
		t.Fatal("collocation config")
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateProducesSLO(t *testing.T) {
	service, slo := Calibrate(KVSConfig(1024, 1024), tinyScale())
	if service <= 0 {
		t.Fatal("no service time measured")
	}
	if slo != uint64(service*SLOMultiple) {
		t.Fatal("SLO must be 100x mean service time")
	}
	// A KVS request at trickle load costs hundreds of cycles, not tens
	// of thousands.
	if service < 100 || service > 50_000 {
		t.Fatalf("implausible service time %.0f", service)
	}
}

func TestPeakThroughputFindsFeasiblePoint(t *testing.T) {
	cfg := KVSConfig(1024, 512)
	cfg = DDIOVariant(2, true).Apply(cfg)
	pk := PeakThroughput(cfg, tinyScale())
	if pk.PeakMrps <= 0 {
		t.Fatal("no feasible load found")
	}
	if pk.At.ReqLatP99 > pk.SLOCycles {
		t.Fatalf("reported peak violates SLO: p99 %d > %d", pk.At.ReqLatP99, pk.SLOCycles)
	}
	if pk.At.DropRate > maxDropRate {
		t.Fatal("reported peak drops packets")
	}
	if pk.At.ThroughputMrps < 0.9*pk.PeakMrps {
		t.Fatalf("throughput %.1f far below offered %.1f", pk.At.ThroughputMrps, pk.PeakMrps)
	}
}

func TestPeakOrderingAcrossBaselines(t *testing.T) {
	sc := tinyScale()
	base := KVSConfig(1024, 1024)

	type result struct {
		name string
		pk   PeakResult
	}
	variants := []Variant{DMAVariant(), DDIOVariant(2, false), IdealVariant()}
	results := make([]result, len(variants))
	parallelFor(len(variants), sc, func(i int) {
		results[i] = result{variants[i].Name, PeakThroughput(variants[i].Apply(base), sc)}
	})
	dma, ddio, ideal := results[0].pk, results[1].pk, results[2].pk
	// The paper's ordering: ideal >= DDIO >= DMA (with real margins, but
	// at tiny scale we only assert the direction).
	if !(ideal.PeakMrps >= ddio.PeakMrps && ddio.PeakMrps >= dma.PeakMrps) {
		t.Fatalf("ordering violated: dma=%.1f ddio=%.1f ideal=%.1f",
			dma.PeakMrps, ddio.PeakMrps, ideal.PeakMrps)
	}
}

func TestDropFreePeakRespectsDrops(t *testing.T) {
	cfg := KVSConfig(1024, 128)
	cfg.SpikeProb = 0.01
	cfg.SpikeMinCycles = 3_200
	cfg.SpikeMaxCycles = 320_000
	pk := DropFreePeak(cfg, tinyScale())
	if pk.PeakMrps <= 0 {
		t.Fatal("no drop-free load found")
	}
	if pk.At.Dropped != 0 {
		t.Fatal("drop-free peak dropped packets")
	}
}

func TestRunClosedLoopAndAtRate(t *testing.T) {
	cfg := L3FwdConfig(512)
	r := RunClosedLoop(cfg, 32, tinyScale())
	if r.Served == 0 {
		t.Fatal("closed loop idle")
	}
	r2 := RunAtRate(KVSConfig(1024, 512), 4, tinyScale())
	if r2.ThroughputMrps < 3 || r2.ThroughputMrps > 5 {
		t.Fatalf("RunAtRate throughput %.2f for 4 offered", r2.ThroughputMrps)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	done := make([]bool, 37)
	parallelFor(len(done), Scale{Parallelism: 5}, func(i int) { done[i] = true })
	for i, d := range done {
		if !d {
			t.Fatalf("index %d not executed", i)
		}
	}
	// Serial path.
	n := 0
	parallelFor(3, Scale{Parallelism: 1}, func(int) { n++ })
	if n != 3 {
		t.Fatal("serial path")
	}
}

func TestTableOperations(t *testing.T) {
	tbl := Table{ID: "figX", Title: "test", Metric: "mrps"}
	tbl.Cells = append(tbl.Cells,
		Cell{Param: "p1", Config: "A", Mrps: 1, GBps: 10},
		Cell{Param: "p1", Config: "B", Mrps: 2, GBps: 20},
		Cell{Param: "p2", Config: "A", Mrps: 3, GBps: 30},
	)
	if got := tbl.Params(); len(got) != 2 || got[0] != "p1" {
		t.Fatalf("Params = %v", got)
	}
	if got := tbl.Configs(); len(got) != 2 || got[1] != "B" {
		t.Fatalf("Configs = %v", got)
	}
	c, ok := tbl.Find("p2", "A")
	if !ok || c.Mrps != 3 {
		t.Fatal("Find")
	}
	if _, ok := tbl.Find("p3", "A"); ok {
		t.Fatal("Find invented a cell")
	}

	var buf bytes.Buffer
	tbl.Render(&buf, "mrps")
	out := buf.String()
	for _, want := range []string{"figX", "p1", "p2", "A", "B", "1.00", "3.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	tbl.RenderBreakdown(&buf)
	if !strings.Contains(buf.String(), "RX Evct") {
		t.Fatal("breakdown header missing")
	}

	buf.Reset()
	tbl.RenderDefault(&buf)
	if !strings.Contains(buf.String(), "[mrps]") {
		t.Fatal("default view")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{ID: "figX"}
	cell := Cell{Param: "p", Config: "c", Mrps: 1.5, GBps: 2.5}
	cell.Breakdown[stats.RXEvct] = 4.25
	cell = cell.WithExtra("zzz", 9).WithExtra("aaa", 8)
	tbl.Cells = append(tbl.Cells, cell)

	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	header := lines[0]
	if !strings.Contains(header, "acc_rx_evct") {
		t.Fatalf("header %q", header)
	}
	// Extras sorted alphabetically at the end.
	if !strings.HasSuffix(header, "aaa,zzz") {
		t.Fatalf("extras not sorted: %q", header)
	}
	if !strings.Contains(lines[1], "4.2500") {
		t.Fatalf("row %q", lines[1])
	}
}

// TestTableCSVMissingExtra: cells lacking an Extra key present elsewhere in
// the table must emit an empty field, not a fake 0.0000.
func TestTableCSVMissingExtra(t *testing.T) {
	tbl := Table{ID: "figY"}
	full := Cell{Param: "p1", Config: "c"}.WithExtra("aaa", 1).WithExtra("zzz", 2)
	partial := Cell{Param: "p2", Config: "c"}.WithExtra("zzz", 3)
	tbl.Cells = append(tbl.Cells, full, partial)

	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasSuffix(lines[1], "1.0000,2.0000") {
		t.Fatalf("full row %q", lines[1])
	}
	// aaa is missing from the second cell: empty field, then zzz.
	if !strings.HasSuffix(lines[2], ",,3.0000") {
		t.Fatalf("partial row %q (want empty aaa field)", lines[2])
	}
}

func TestCellFromResults(t *testing.T) {
	var r machine.Results
	r.ThroughputMrps = 7
	r.MemBWGBps = 13
	r.AccessesPerRequest[stats.RXEvct] = 2
	c := CellFromResults("p", "cfg", r)
	if c.Mrps != 7 || c.GBps != 13 || c.Breakdown[stats.RXEvct] != 2 {
		t.Fatal("cell mapping")
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"alternatives", "cluster", "fig1", "fig10", "fig2", "fig5",
		"fig6", "fig7", "fig8", "fig9", "policies", "slo", "tiers"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
	reg := Registry()
	for _, n := range names {
		if reg[n] == nil {
			t.Fatalf("nil harness for %s", n)
		}
	}
}

func TestNormalize(t *testing.T) {
	tbl := Table{Cells: []Cell{
		CellFromResults("a", "X", machine.Results{ThroughputMrps: 10}).WithExtra("xmem_ipc", 2),
		CellFromResults("b", "X", machine.Results{ThroughputMrps: 5}).WithExtra("xmem_ipc", 1),
	}}
	normalize(&tbl, "a", "X", "a", "X")
	if tbl.Cells[1].Extra["norm_mrps"] != 0.5 || tbl.Cells[1].Extra["norm_ipc"] != 0.5 {
		t.Fatalf("normalize: %+v", tbl.Cells[1].Extra)
	}
}

func TestRatioHelper(t *testing.T) {
	if ratio(2, 1) != "2.00x" {
		t.Fatal("ratio")
	}
	if ratio(1, 0) != "n/a" {
		t.Fatal("ratio zero denominator")
	}
}

func TestPeakSearchReportsZeroWhenInfeasible(t *testing.T) {
	// Every request suffers a ~100x-service spike, so p99 violates the
	// calibrated SLO at any load: the search must report a zero peak
	// rather than spin.
	cfg := KVSConfig(1024, 512)
	cfg.SpikeProb = 1.0
	cfg.SpikeMinCycles = 2_000_000
	cfg.SpikeMaxCycles = 2_000_001
	sc := Scale{Warmup: 300_000, Measure: 300_000, SearchIters: 1, Parallelism: 2}
	pk := PeakThroughput(cfg, sc)
	if pk.PeakMrps != 0 {
		t.Fatalf("peak = %.2f for an unservable workload", pk.PeakMrps)
	}
}

func TestDropFreeIgnoresSLO(t *testing.T) {
	// The §VI-F criterion gates on drops and stability only.
	ok := dropFree()
	var r machine.Results
	r.ReqLatP99 = 1 << 40 // terrible latency
	r.ThroughputMrps = 10
	if !ok(r, 10) {
		t.Fatal("latency must not gate the drop-free criterion")
	}
	r.Dropped = 1
	if ok(r, 10) {
		t.Fatal("drops must gate")
	}
	r.Dropped = 0
	r.ThroughputMrps = 5
	if ok(r, 10) {
		t.Fatal("instability must gate")
	}
}

func TestSLOFeasibleCriterion(t *testing.T) {
	ok := sloFeasible(1000)
	mk := func(p99 uint64, drop float64, served, offered float64) bool {
		var r machine.Results
		r.ReqLatP99 = p99
		r.DropRate = drop
		r.ThroughputMrps = served
		return ok(r, offered)
	}
	if !mk(900, 0, 10, 10) {
		t.Fatal("healthy point rejected")
	}
	if mk(1100, 0, 10, 10) {
		t.Fatal("SLO violation accepted")
	}
	if mk(900, 0.01, 10, 10) {
		t.Fatal("drops accepted")
	}
	if mk(900, 0, 9, 10) {
		t.Fatal("unstable point accepted")
	}
}
