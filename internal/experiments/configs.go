package experiments

import (
	"fmt"

	"sweeper/internal/machine"
	"sweeper/internal/nic"
	"sweeper/internal/scenario"
)

// Variant is one packet-injection baseline (or baseline+Sweeper) as swept
// across the paper's figures.
type Variant struct {
	Name    string
	Mode    nic.Mode
	Ways    int // DDIO ways; ignored for DMA/Ideal
	Sweeper bool
}

// Apply stamps the variant onto a config. The Sweeper toggle mutates in
// place so the base machine's invalidation-instruction selection and simf
// batch knobs survive variant application.
func (v Variant) Apply(cfg machine.Config) machine.Config {
	cfg.NICMode = v.Mode
	if v.Mode == nic.ModeDDIO {
		cfg.DDIOWays = v.Ways
	}
	cfg.Sweeper.RXSweep = v.Sweeper
	cfg.Sweeper.IssueCyclesPerLine = 1
	return cfg
}

// variantOf converts a declarative scenario variant into the harness form.
func variantOf(v scenario.Variant) Variant {
	mode, err := v.NICMode()
	if err != nil {
		panic(err)
	}
	return Variant{Name: v.DisplayName(), Mode: mode, Ways: v.Ways, Sweeper: v.Sweeper}
}

// DMAVariant, IdealVariant and DDIOVariant build the paper's baselines.
func DMAVariant() Variant   { return Variant{Name: "DMA", Mode: nic.ModeDMA} }
func IdealVariant() Variant { return Variant{Name: "Ideal DDIO", Mode: nic.ModeIdeal} }

// DDIOVariant returns an n-way DDIO configuration, optionally with Sweeper.
func DDIOVariant(ways int, sweeper bool) Variant {
	name := fmt.Sprintf("DDIO %d Ways", ways)
	if sweeper {
		name += " + Sweeper"
	}
	return Variant{Name: name, Mode: nic.ModeDDIO, Ways: ways, Sweeper: sweeper}
}

// ddioPairs returns DDIO n-way with and without Sweeper for each way count.
func ddioPairs(ways ...int) []Variant {
	var out []Variant
	for _, w := range ways {
		out = append(out, DDIOVariant(w, false), DDIOVariant(w, true))
	}
	return out
}

// KVSConfig returns the paper's KVS machine: 24 cores, item-sized packets,
// the given RX ring depth, seeded deterministically.
func KVSConfig(itemBytes uint64, ringSlots int) machine.Config {
	return scenario.MustConfig("kvs", map[string]float64{
		"item_bytes":   float64(itemBytes),
		"packet_bytes": float64(itemBytes),
		"ring_slots":   float64(ringSlots),
	})
}

// L3FwdConfig returns the §IV-B forwarder machine: RX and TX rings of the
// given depth holding MTU-sized packets, and the 16k-rule table.
func L3FwdConfig(ringSlots int) machine.Config {
	return scenario.MustConfig("l3fwd", map[string]float64{
		"ring_slots": float64(ringSlots),
		// The forwarder copies every packet it receives, so its TX ring
		// mirrors the RX ring's provisioning.
		"tx_slots": float64(ringSlots),
	})
}

// CollocationConfig returns the §VI-E machine: 12 forwarder cores with an
// L1-resident table collocated with 12 X-Mem instances.
func CollocationConfig() machine.Config {
	return scenario.MustConfig("collocation", nil)
}
