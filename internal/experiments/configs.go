package experiments

import (
	"fmt"

	"sweeper/internal/core"
	"sweeper/internal/machine"
	"sweeper/internal/nic"
)

// Variant is one packet-injection baseline (or baseline+Sweeper) as swept
// across the paper's figures.
type Variant struct {
	Name    string
	Mode    nic.Mode
	Ways    int // DDIO ways; ignored for DMA/Ideal
	Sweeper bool
}

// Apply stamps the variant onto a config.
func (v Variant) Apply(cfg machine.Config) machine.Config {
	cfg.NICMode = v.Mode
	if v.Mode == nic.ModeDDIO {
		cfg.DDIOWays = v.Ways
	}
	cfg.Sweeper = core.Config{RXSweep: v.Sweeper, IssueCyclesPerLine: 1}
	return cfg
}

// DMAVariant, IdealVariant and DDIOVariant build the paper's baselines.
func DMAVariant() Variant   { return Variant{Name: "DMA", Mode: nic.ModeDMA} }
func IdealVariant() Variant { return Variant{Name: "Ideal DDIO", Mode: nic.ModeIdeal} }

// DDIOVariant returns an n-way DDIO configuration, optionally with Sweeper.
func DDIOVariant(ways int, sweeper bool) Variant {
	name := fmt.Sprintf("DDIO %d Ways", ways)
	if sweeper {
		name += " + Sweeper"
	}
	return Variant{Name: name, Mode: nic.ModeDDIO, Ways: ways, Sweeper: sweeper}
}

// ddioPairs returns DDIO n-way with and without Sweeper for each way count.
func ddioPairs(ways ...int) []Variant {
	var out []Variant
	for _, w := range ways {
		out = append(out, DDIOVariant(w, false), DDIOVariant(w, true))
	}
	return out
}

// KVSConfig returns the paper's KVS machine: 24 cores, item-sized packets,
// the given RX ring depth, seeded deterministically.
func KVSConfig(itemBytes uint64, ringSlots int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Workload = machine.WorkloadKVS
	cfg.ItemBytes = itemBytes
	cfg.PacketBytes = itemBytes
	cfg.RingSlots = ringSlots
	cfg.TXSlots = 128
	return cfg
}

// L3FwdConfig returns the §IV-B forwarder machine: 2048-deep RX and TX
// rings of MTU-sized packets and the 16k-rule table.
func L3FwdConfig(ringSlots int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Workload = machine.WorkloadL3Fwd
	cfg.PacketBytes = 1024
	cfg.ItemBytes = 0
	cfg.RingSlots = ringSlots
	// The forwarder copies every packet it receives, so its TX ring
	// mirrors the RX ring's provisioning.
	cfg.TXSlots = ringSlots
	return cfg
}

// CollocationConfig returns the §VI-E machine: 12 forwarder cores with an
// L1-resident table collocated with 12 X-Mem instances.
func CollocationConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Workload = machine.WorkloadL3FwdL1
	cfg.NetCores = 12
	cfg.XMemCores = 12
	cfg.PacketBytes = 1024
	cfg.ItemBytes = 0
	cfg.RingSlots = 2048
	cfg.TXSlots = 2048
	return cfg
}
