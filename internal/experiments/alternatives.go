package experiments

import (
	"sweeper/internal/machine"
	"sweeper/internal/nic"
)

// Alternatives is an extension experiment placing the related-work
// mechanisms of §VII next to Sweeper on a common footing (the KVS with
// deep, 2048-buffer rings, where leaks are worst):
//
//   - plain 2-way DDIO (the default baseline),
//   - IAT-style dynamic DDIO way allocation (grows/shrinks the ways by
//     observed traffic; delays the leak's onset, does not remove it),
//   - IDIO-style L2 packet steering (adds private-cache capacity for
//     buffers, at the cost of displacing the core's working set),
//   - 2-way DDIO + Sweeper (removes the wasteful writebacks at the root),
//   - Ideal-DDIO (the upper bound).
//
// The paper argues these families are orthogonal: capacity techniques delay
// leaks, Sweeper eliminates their cost. The harness shows exactly that.
func Alternatives(sc Scale) []Table {
	type alt struct {
		name  string
		apply func(machine.Config) machine.Config
	}
	alts := []alt{
		{"DDIO 2 Ways", func(c machine.Config) machine.Config {
			return DDIOVariant(2, false).Apply(c)
		}},
		{"IAT dynamic ways", func(c machine.Config) machine.Config {
			c = DDIOVariant(2, false).Apply(c)
			c.DynamicDDIOEpoch = 250_000
			return c
		}},
		{"IDIO L2 steering", func(c machine.Config) machine.Config {
			c.NICMode = nic.ModeIDIO
			return c
		}},
		{"DDIO 2 Ways + Sweeper", func(c machine.Config) machine.Config {
			return DDIOVariant(2, true).Apply(c)
		}},
		{"Ideal DDIO", func(c machine.Config) machine.Config {
			return IdealVariant().Apply(c)
		}},
	}

	results := make([]PeakResult, len(alts))
	parallelFor(len(alts), sc, func(i int) {
		results[i] = PeakThroughput(alts[i].apply(KVSConfig(1024, 2048)), sc)
	})

	t := Table{
		ID:     "alternatives",
		Title:  "Related-work mechanisms vs Sweeper (KVS, 2048 buf/core, extension)",
		Metric: "mrps",
	}
	for i, a := range alts {
		t.Cells = append(t.Cells,
			CellFromResults("2048 buf", a.name, results[i].At).
				WithExtra("peak_offered_mrps", results[i].PeakMrps))
	}
	return []Table{t}
}
