package experiments

import (
	"fmt"

	"sweeper/internal/machine"
	"sweeper/internal/nic"
)

// sloApp is one server of the SLO-headroom study.
type sloApp struct {
	name string
	cfg  machine.Config
}

// sloApps are the servers the study sweeps: the Table I KVS and the §IV-B
// forwarder, both at 1024-deep rings.
func sloApps() []sloApp {
	return []sloApp{
		{"kvs", KVSConfig(1024, 1024)},
		{"l3fwd", L3FwdConfig(1024)},
	}
}

// sloArrivals are the arrival processes the curves contrast: memoryless
// Poisson against a bursty 2-state MMPP (8x on/off rate ratio, ~41us
// dwells at 3.2GHz). Trace replay shares the open-loop machinery and is
// exercised by the traffic smoke instead of a committed figure, which
// would pin a binary trace artifact into the golden set.
func sloArrivals() []struct {
	name string
	cfg  nic.ArrivalConfig
} {
	return []struct {
		name string
		cfg  nic.ArrivalConfig
	}{
		{"poisson", nic.ArrivalConfig{}},
		{"mmpp", nic.ArrivalConfig{
			Process:          nic.ArrivalMMPP,
			BurstRatio:       8,
			BurstDwellCycles: 131_072,
		}},
	}
}

// sloFractions ladder the offered load relative to each configuration's own
// SLO knee, from ample headroom through saturation and just past it.
var sloFractions = []float64{0.3, 0.5, 0.7, 0.85, 0.95, 1.05}

// SLOCurve reproduces the SLO-headroom study: for each server, arrival
// process and 2-way DDIO variant (with and without Sweeper), find the SLO
// knee with the peak search, then measure p99 and p99.9 request latency at
// fixed fractions of that knee. The curves show how much of its nominal
// capacity a server can use before tails blow through the SLO — and how
// much of that headroom burstiness eats.
func SLOCurve(sc Scale) []Table {
	type combo struct {
		app     int
		arrival string
		variant Variant
		cfg     machine.Config // variant already applied
		knee    PeakResult
	}
	var combos []combo
	for ai, app := range sloApps() {
		for _, arr := range sloArrivals() {
			base := app.cfg
			base.Arrival = arr.cfg
			for _, v := range ddioPairs(2) {
				combos = append(combos, combo{
					app: ai, arrival: arr.name, variant: v, cfg: v.Apply(base),
				})
			}
		}
	}
	parallelFor(len(combos), sc, func(i int) {
		combos[i].knee = PeakThroughput(combos[i].cfg, sc)
	})

	type sloJob struct {
		combo int
		frac  float64
		cell  Cell
	}
	var jobs []sloJob
	for ci := range combos {
		for _, f := range sloFractions {
			jobs = append(jobs, sloJob{combo: ci, frac: f})
		}
	}
	parallelFor(len(jobs), sc, func(i int) {
		j := &jobs[i]
		c := &combos[j.combo]
		rate := c.knee.PeakMrps * j.frac
		r := RunAtRate(c.cfg, rate, sc)
		j.cell = CellFromResults(
			fmt.Sprintf("%.0f%% knee", j.frac*100),
			c.variant.Name+" / "+c.arrival, r).
			WithExtra("offered_mrps", rate).
			WithExtra("knee_mrps", c.knee.PeakMrps).
			WithExtra("slo_cycles", float64(c.knee.SLOCycles)).
			WithExtra("p99_cycles", float64(r.ReqLatP99)).
			WithExtra("p999_cycles", float64(r.ReqLatP999)).
			WithExtra("drop_rate", r.DropRate)
	})

	apps := sloApps()
	tables := make([]Table, len(apps))
	for i, app := range apps {
		tables[i] = Table{
			ID:     "slo_" + app.name,
			Title:  fmt.Sprintf("SLO headroom (%s): p99.9 latency vs offered load", app.name),
			Metric: "p999_cycles",
		}
	}
	for _, j := range jobs {
		tables[combos[j.combo].app].Cells = append(tables[combos[j.combo].app].Cells, j.cell)
	}
	return tables
}
