package experiments

import (
	"fmt"
	"io"
	"sort"

	"sweeper/internal/machine"
	"sweeper/internal/scenario"
	"sweeper/internal/stats"
)

// job is one (param, variant) simulation of a figure sweep.
type job struct {
	param   string
	variant Variant
	cfg     machine.Config
	// closedLoopDepth > 0 runs the keep-D-queued loop instead of a peak
	// search.
	closedLoopDepth int
	cell            Cell
}

func runJobs(jobs []job, sc Scale) {
	parallelFor(len(jobs), sc, func(i int) {
		j := &jobs[i]
		cfg := j.variant.Apply(j.cfg)
		if j.closedLoopDepth > 0 {
			r := RunClosedLoop(cfg, j.closedLoopDepth, sc)
			j.cell = CellFromResults(j.param, j.variant.Name, r).
				WithExtra("p99_dram", float64(r.DRAMLatP99)).
				WithExtra("xmem_ipc", r.XMemIPC)
			return
		}
		pk := PeakThroughput(cfg, sc)
		j.cell = CellFromResults(j.param, j.variant.Name, pk.At).
			WithExtra("peak_offered_mrps", pk.PeakMrps).
			WithExtra("slo_cycles", float64(pk.SLOCycles)).
			WithExtra("p99_req", float64(pk.At.ReqLatP99))
	})
}

func cells(jobs []job) []Cell {
	out := make([]Cell, len(jobs))
	for i, j := range jobs {
		out[i] = j.cell
	}
	return out
}

// jobsFromSpec expands a shipped scenario into the harness's job list: axes
// outermost, variants innermost, parameter labels joined with "/".
func jobsFromSpec(name string) []job {
	runs, err := scenario.MustSpec(name).Expand()
	if err != nil {
		panic(err)
	}
	jobs := make([]job, len(runs))
	for i, r := range runs {
		jobs[i] = job{
			param:           r.Param,
			variant:         variantOf(r.Variant),
			cfg:             r.Config,
			closedLoopDepth: r.ClosedLoopDepth,
		}
	}
	return jobs
}

func panels(id, title string, cs []Cell) []Table {
	return []Table{
		{ID: id + "a", Title: title + ": peak throughput", Metric: "mrps", Cells: cs},
		{ID: id + "b", Title: title + ": memory bandwidth at peak", Metric: "gbps", Cells: cs},
		{ID: id + "c", Title: title + ": DRAM accesses per request", Metric: "breakdown", Cells: cs},
	}
}

// Fig1 reproduces Figure 1: the KVS under DMA, 2/4/6-way DDIO and
// Ideal-DDIO across 512/1024/2048 RX buffers per core (1KB items).
func Fig1(sc Scale) []Table {
	jobs := jobsFromSpec("fig1")
	runJobs(jobs, sc)
	return panels("fig1", "KVS network data leaks", cells(jobs))
}

// Fig2 reproduces Figure 2: the L3 forwarder with D packets kept queued per
// core (premature-eviction study), 2048-deep rings.
func Fig2(sc Scale) []Table {
	jobs := jobsFromSpec("fig2")
	runJobs(jobs, sc)
	return panels("fig2", "L3fwd with queued packets", cells(jobs))
}

// Fig5 reproduces Figure 5: DDIO way sensitivity with and without Sweeper,
// for 512B and 1KB items across 512/1024/2048 RX buffers per core.
func Fig5(sc Scale) []Table {
	jobs := jobsFromSpec("fig5")
	runJobs(jobs, sc)
	return panels("fig5", "Sweeper vs DDIO configuration", cells(jobs))
}

// LatencyCurve is one CDF of Figure 6.
type LatencyCurve struct {
	Config  string
	Context string // "peak" or "iso"
	AtMrps  float64
	Mean    float64
	P50     uint64
	P99     uint64
	CDF     []stats.CDFPoint
}

// Fig6Result carries Figure 6's DRAM latency distributions plus a summary
// table.
type Fig6Result struct {
	Curves  []LatencyCurve
	Summary Table
}

// Fig6 reproduces Figure 6: DRAM access latency CDFs for 2- and 12-way
// DDIO with and without Sweeper — left at each configuration's own peak,
// right at iso-throughput (the 2-way baseline's peak).
func Fig6(sc Scale) Fig6Result {
	variants := ddioPairs(2, 12)
	base := KVSConfig(1024, 1024)

	peaks := make([]PeakResult, len(variants))
	parallelFor(len(variants), sc, func(i int) {
		peaks[i] = PeakThroughput(variants[i].Apply(base), sc)
	})

	isoRate := peaks[0].PeakMrps // plain 2-way DDIO's achieved peak
	isoRes := make([]machine.Results, len(variants))
	parallelFor(len(variants), sc, func(i int) {
		isoRes[i] = RunAtRate(variants[i].Apply(base), isoRate, sc)
	})

	out := Fig6Result{Summary: Table{
		ID:     "fig6",
		Title:  "DRAM access latency (KVS, 1KB items, 1024 buf/core)",
		Metric: "dram_mean",
	}}
	for i, v := range variants {
		r := peaks[i].At
		out.Curves = append(out.Curves, LatencyCurve{
			Config: v.Name, Context: "peak", AtMrps: r.ThroughputMrps,
			Mean: r.DRAMLatMean, P50: r.DRAMLatP50, P99: r.DRAMLatP99,
			CDF: r.DRAMLatCDF,
		})
		out.Summary.Cells = append(out.Summary.Cells,
			CellFromResults("peak", v.Name, r).
				WithExtra("dram_mean", r.DRAMLatMean).
				WithExtra("dram_p99", float64(r.DRAMLatP99)))
	}
	for i, v := range variants {
		r := isoRes[i]
		out.Curves = append(out.Curves, LatencyCurve{
			Config: v.Name, Context: "iso", AtMrps: r.ThroughputMrps,
			Mean: r.DRAMLatMean, P50: r.DRAMLatP50, P99: r.DRAMLatP99,
			CDF: r.DRAMLatCDF,
		})
		out.Summary.Cells = append(out.Summary.Cells,
			CellFromResults(fmt.Sprintf("iso %.0fMrps", isoRate), v.Name, r).
				WithExtra("dram_mean", r.DRAMLatMean).
				WithExtra("dram_p99", float64(r.DRAMLatP99)))
	}
	return out
}

// WriteCDFCSV emits Figure 6's DRAM-latency CDF curves in long form
// (config,context,at_mrps,latency_cycles,cdf), the format committed under
// results/fig6_cdf.csv.
func WriteCDFCSV(w io.Writer, r Fig6Result) error {
	if _, err := fmt.Fprintln(w, "config,context,at_mrps,latency_cycles,cdf"); err != nil {
		return err
	}
	for _, c := range r.Curves {
		for _, p := range c.CDF {
			if _, err := fmt.Fprintf(w, "%s,%s,%.3f,%d,%.6f\n",
				c.Config, c.Context, c.AtMrps, p.Value, p.Fraction); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig7 reproduces Figure 7: Sweeper under premature buffer evictions (the
// deep-queue L3fwd scenarios revisited with Sweeper).
func Fig7(sc Scale) []Table {
	jobs := jobsFromSpec("fig7")
	runJobs(jobs, sc)
	cs := cells(jobs)
	return []Table{
		{ID: "fig7a", Title: "Sweeper with premature evictions: throughput", Metric: "mrps", Cells: cs},
		{ID: "fig7b", Title: "Sweeper with premature evictions: accesses per packet", Metric: "breakdown", Cells: cs},
	}
}

// Fig8 reproduces Figure 8: sensitivity to memory bandwidth (3/4/8
// channels) for three KVS footprints.
func Fig8(sc Scale) []Table {
	jobs := jobsFromSpec("fig8")
	runJobs(jobs, sc)
	cs := cells(jobs)
	return []Table{
		{ID: "fig8a", Title: "Memory bandwidth sensitivity: peak throughput", Metric: "mrps", Cells: cs},
		{ID: "fig8b", Title: "Memory bandwidth sensitivity: memory bandwidth", Metric: "gbps", Cells: cs},
	}
}

// fig9Depth is the queue pressure used for the collocated forwarder (DPDK's
// default processing batch).
const fig9Depth = 32

// Fig9 reproduces Figure 9: 12 L3fwd cores collocated with 12 X-Mem
// instances; (a) disjoint LLC partitions (A ways for DDIO+network, B=12-A
// for X-Mem), (b) X-Mem free to use the whole LLC while DDIO ways grow.
func Fig9(sc Scale) []Table {
	var jobs []job
	// (a) disjoint partitions, via the scenario partition_split knob.
	for _, a := range []int{2, 4, 6, 8, 10} {
		for _, sw := range []bool{false, true} {
			cfg := scenario.MustConfig("collocation",
				map[string]float64{"partition_split": float64(a)})
			jobs = append(jobs, job{
				param:           fmt.Sprintf("(%d,%d)", a, 12-a),
				variant:         DDIOVariant(a, sw),
				cfg:             cfg,
				closedLoopDepth: fig9Depth,
			})
		}
	}
	nPartA := len(jobs)
	// (b) overlapping: X-Mem and the network cores may use all ways.
	for _, a := range []int{2, 4, 6, 8, 10, 12} {
		for _, sw := range []bool{false, true} {
			cfg := CollocationConfig()
			jobs = append(jobs, job{
				param:           fmt.Sprintf("%d ways", a),
				variant:         DDIOVariant(a, sw),
				cfg:             cfg,
				closedLoopDepth: fig9Depth,
			})
		}
	}
	runJobs(jobs, sc)

	fig9a := Table{ID: "fig9a", Title: "Collocation, disjoint LLC partitions",
		Metric: "norm_mrps", Cells: cells(jobs[:nPartA])}
	fig9b := Table{ID: "fig9b", Title: "Collocation, overlapping LLC partitions",
		Metric: "norm_mrps", Cells: cells(jobs[nPartA:])}

	// Normalizations from the paper's axes: (a) to throughput and IPC at
	// (4,8) with Sweeper; (b) throughput to 2-way Sweeper, IPC to 6-way
	// Sweeper.
	normalize(&fig9a, "(4,8)", "DDIO 4 Ways + Sweeper", "(4,8)", "DDIO 4 Ways + Sweeper")
	normalize(&fig9b, "2 ways", "DDIO 2 Ways + Sweeper", "6 ways", "DDIO 6 Ways + Sweeper")
	return []Table{fig9a, fig9b}
}

func normalize(t *Table, mrpsParam, mrpsConfig, ipcParam, ipcConfig string) {
	mref, _ := t.Find(mrpsParam, mrpsConfig)
	iref, _ := t.Find(ipcParam, ipcConfig)
	for i := range t.Cells {
		c := &t.Cells[i]
		if mref.Mrps > 0 {
			*c = c.WithExtra("norm_mrps", c.Mrps/mref.Mrps)
		}
		if ipc := iref.Extra["xmem_ipc"]; ipc > 0 {
			*c = c.WithExtra("norm_ipc", c.Extra["xmem_ipc"]/ipc)
		}
	}
}

// Fig10 reproduces Figure 10: shallow vs deep buffering under service-time
// spikes — (a) drop-free peak throughput across ring depths, (b) drop rate
// as a function of arrival rate.
func Fig10(sc Scale) []Table {
	spiky := func(ring int, sweeper bool) machine.Config {
		cfg := KVSConfig(1024, ring)
		cfg.DDIOWays = 2
		cfg.SpikeProb = 0.01
		cfg.SpikeMinCycles = 3_200   // 1us at 3.2GHz
		cfg.SpikeMaxCycles = 320_000 // 100us
		cfg = DDIOVariant(2, sweeper).Apply(cfg)
		return cfg
	}

	// (a) drop-free peak across buffer depths.
	rings := []int{128, 256, 512, 1024, 2048}
	type aJob struct {
		ring    int
		sweeper bool
		pk      PeakResult
	}
	var aJobs []aJob
	for _, r := range rings {
		aJobs = append(aJobs, aJob{ring: r}, aJob{ring: r, sweeper: true})
	}
	parallelFor(len(aJobs), sc, func(i int) {
		j := &aJobs[i]
		j.pk = DropFreePeak(spiky(j.ring, j.sweeper), sc)
	})
	fig10a := Table{ID: "fig10a", Title: "Drop-free peak vs buffer depth (spiky service)", Metric: "dropfree_peak_mrps"}
	for _, j := range aJobs {
		name := "Baseline"
		if j.sweeper {
			name = "Sweeper"
		}
		fig10a.Cells = append(fig10a.Cells,
			CellFromResults(fmt.Sprintf("%d buf", j.ring), name, j.pk.At).
				WithExtra("dropfree_peak_mrps", j.pk.PeakMrps))
	}

	// (b) drop rate vs arrival rate for shallow and deep rings.
	curves := []struct {
		name    string
		ring    int
		sweeper bool
	}{
		{"128 buffers", 128, false},
		{"2048 buffers", 2048, false},
		{"2048 + Sweeper", 2048, true},
	}
	rates := []float64{2, 4, 6, 8, 10, 12, 16, 20, 26, 32, 40, 52, 64}
	type bJob struct {
		curve int
		rate  float64
		res   machine.Results
	}
	var bJobs []bJob
	for ci := range curves {
		for _, rt := range rates {
			bJobs = append(bJobs, bJob{curve: ci, rate: rt})
		}
	}
	parallelFor(len(bJobs), sc, func(i int) {
		j := &bJobs[i]
		c := curves[j.curve]
		j.res = RunAtRate(spiky(c.ring, c.sweeper), j.rate, sc)
	})
	fig10b := Table{ID: "fig10b", Title: "Packet drop rate vs arrival rate (spiky service)", Metric: "drop_rate"}
	for _, j := range bJobs {
		fig10b.Cells = append(fig10b.Cells,
			CellFromResults(fmt.Sprintf("%.0f Mrps", j.rate), curves[j.curve].name, j.res).
				WithExtra("drop_rate", j.res.DropRate))
	}
	return []Table{fig10a, fig10b}
}

// Registry maps experiment ids to their harnesses (Fig6 is exposed through
// a wrapper that returns its summary panel).
func Registry() map[string]func(Scale) []Table {
	return map[string]func(Scale) []Table{
		"fig1": Fig1,
		"fig2": Fig2,
		"fig5": Fig5,
		"fig6": func(sc Scale) []Table {
			r := Fig6(sc)
			return []Table{r.Summary}
		},
		"fig7":         Fig7,
		"fig8":         Fig8,
		"fig9":         Fig9,
		"fig10":        Fig10,
		"policies":     Policies,
		"alternatives": Alternatives,
		"cluster":      ClusterScaling,
		"slo":          SLOCurve,
		"tiers":        Tiers,
	}
}

// Names returns the registered experiment ids in order.
func Names() []string {
	r := Registry()
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
