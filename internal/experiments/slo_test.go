package experiments

import "testing"

// TestSLOCurveShape runs the SLO-headroom harness at tiny scale and checks
// the structural contract the committed slo_*.csv files rely on: one table
// per server, every (arrival, variant, fraction) cell present with the
// latency extras, a positive knee for every combo, and tails that actually
// blow up past the knee.
func TestSLOCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("8 peak searches + 48 rate points; skipped with -short")
	}
	tables := SLOCurve(tinyScale())
	if len(tables) != 2 || tables[0].ID != "slo_kvs" || tables[1].ID != "slo_l3fwd" {
		t.Fatalf("tables = %v", []string{tables[0].ID, tables[1].ID})
	}
	for _, tb := range tables {
		wantCells := len(sloArrivals()) * 2 * len(sloFractions)
		if len(tb.Cells) != wantCells {
			t.Fatalf("%s has %d cells, want %d", tb.ID, len(tb.Cells), wantCells)
		}
		if tb.Metric != "p999_cycles" {
			t.Errorf("%s metric %q", tb.ID, tb.Metric)
		}
		configs := tb.Configs()
		if len(configs) != len(sloArrivals())*2 {
			t.Fatalf("%s has %d series, want %d", tb.ID, len(configs), len(sloArrivals())*2)
		}
		for _, c := range tb.Cells {
			for _, key := range []string{"offered_mrps", "knee_mrps", "slo_cycles", "p99_cycles", "p999_cycles", "drop_rate"} {
				if _, ok := c.Extra[key]; !ok {
					t.Fatalf("%s cell (%s, %s) missing extra %q", tb.ID, c.Param, c.Config, key)
				}
			}
			if c.Extra["knee_mrps"] <= 0 {
				t.Errorf("%s series %s found no saturation knee", tb.ID, c.Config)
			}
			if c.Extra["p999_cycles"] < c.Extra["p99_cycles"] {
				t.Errorf("%s cell (%s, %s): p99.9 %g below p99 %g",
					tb.ID, c.Param, c.Config, c.Extra["p999_cycles"], c.Extra["p99_cycles"])
			}
		}
		// The headroom story: past the knee the p99.9 tail must be far
		// above the deep-headroom point on every series.
		for _, cf := range configs {
			low, okLow := tb.Find("30% knee", cf)
			high, okHigh := tb.Find("105% knee", cf)
			if !okLow || !okHigh {
				t.Fatalf("%s series %s missing ladder endpoints", tb.ID, cf)
			}
			if high.Extra["p999_cycles"] <= low.Extra["p999_cycles"] {
				t.Errorf("%s series %s: p99.9 at 105%% of knee (%g) not above 30%% (%g)",
					tb.ID, cf, high.Extra["p999_cycles"], low.Extra["p999_cycles"])
			}
		}
	}
}
