package experiments

import (
	"fmt"
	"io"
)

// RenderCDFChart draws Figure 6's latency CDFs as an ASCII chart: one
// column block per context ("peak", "iso"), curves overlaid with one marker
// character each — a terminal rendition of the paper's two panels.
func RenderCDFChart(w io.Writer, curves []LatencyCurve) {
	for _, ctx := range []string{"peak", "iso"} {
		var sel []LatencyCurve
		for _, c := range curves {
			if c.Context == ctx && len(c.CDF) > 0 {
				sel = append(sel, c)
			}
		}
		if len(sel) == 0 {
			continue
		}
		fmt.Fprintf(w, "DRAM access latency CDF — %s\n", ctx)
		renderCDFPanel(w, sel)
		fmt.Fprintln(w)
	}
}

const (
	cdfRows = 12
	cdfCols = 64
)

var cdfMarkers = []byte{'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'}

func renderCDFPanel(w io.Writer, curves []LatencyCurve) {
	// X scale: up to the largest p99 among the curves (linear).
	var xMax uint64
	for _, c := range curves {
		if c.P99 > xMax {
			xMax = c.P99
		}
	}
	if xMax == 0 {
		xMax = 1
	}

	grid := make([][]byte, cdfRows)
	for r := range grid {
		grid[r] = make([]byte, cdfCols)
		for i := range grid[r] {
			grid[r][i] = ' '
		}
	}
	for ci, c := range curves {
		marker := cdfMarkers[ci%len(cdfMarkers)]
		for _, p := range c.CDF {
			if p.Value > xMax {
				break
			}
			col := int(float64(p.Value) / float64(xMax) * float64(cdfCols-1))
			row := cdfRows - 1 - int(p.Fraction*float64(cdfRows-1)+0.5)
			if row < 0 {
				row = 0
			}
			if grid[row][col] == ' ' || grid[row][col] == marker {
				grid[row][col] = marker
			} else {
				grid[row][col] = '*' // overlap
			}
		}
	}
	for r := 0; r < cdfRows; r++ {
		frac := float64(cdfRows-1-r) / float64(cdfRows-1)
		fmt.Fprintf(w, "  %4.2f |%s\n", frac, string(grid[r]))
	}
	fmt.Fprintf(w, "       +%s\n", dashes(cdfCols))
	fmt.Fprintf(w, "        0%*s%d cycles\n", cdfCols-len(fmt.Sprint(xMax)), "", xMax)
	for ci, c := range curves {
		fmt.Fprintf(w, "        %c: %-24s %6.1f Mrps  mean %6.0f  p99 %6d\n",
			cdfMarkers[ci%len(cdfMarkers)], c.Config, c.AtMrps, c.Mean, c.P99)
	}
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
