package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sweeper/internal/stats"
)

func TestWithinHelper(t *testing.T) {
	if !within(10, 10, 0) || !within(0, 0, 0) {
		t.Fatal("equal values")
	}
	if !within(10, 8, 0.2) || within(10, 7, 0.2) {
		t.Fatal("tolerance")
	}
	if !within(8, 10, 0.2) {
		t.Fatal("symmetry")
	}
}

func TestRenderClaims(t *testing.T) {
	claims := []Claim{
		{ID: "a", Source: "§X", Statement: "s", Measured: "m", Expected: "e", Pass: true},
		{ID: "b", Source: "§Y", Statement: "s2", Measured: "m2", Expected: "e2", Pass: false},
	}
	var buf bytes.Buffer
	RenderClaims(&buf, claims)
	out := buf.String()
	for _, want := range []string{"[ok  ]", "[FAIL]", "1/2 claims hold", "§X"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestCheckClaims is the repository's acceptance gate: every headline claim
// of the paper must hold in this reproduction, at least directionally, even
// at a reduced simulation scale.
func TestCheckClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims check runs ~10 peak searches")
	}
	sc := Scale{Warmup: 1_500_000, Measure: 800_000, SearchIters: 3, Parallelism: 4}
	claims := CheckClaims(sc)
	if len(claims) != 11 {
		t.Fatalf("claims = %d", len(claims))
	}
	var failed []string
	for _, c := range claims {
		if !c.Pass {
			failed = append(failed, c.ID+" ("+c.Measured+")")
		}
	}
	// At this reduced scale a couple of magnitude-sensitive claims may
	// wobble; the core mechanism claims must always hold.
	mustHold := map[string]bool{
		"sweeper-eliminates-rxevct": true,
		"sweeper-throughput-gain":   true,
		"ddio-over-dma":             true,
		"consumed-dominates":        true,
	}
	for _, f := range failed {
		id := strings.SplitN(f, " ", 2)[0]
		if mustHold[id] {
			t.Errorf("core claim failed: %s", f)
		}
	}
	if len(failed) > 3 {
		t.Errorf("too many claims failed at reduced scale: %v", failed)
	}
}

func TestPoliciesStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("policy comparison runs 4 drop-free searches")
	}
	sc := Scale{Warmup: 1_000_000, Measure: 600_000, SearchIters: 2, Parallelism: 4}
	tables := Policies(sc)
	if len(tables) != 1 || tables[0].ID != "policies" {
		t.Fatal("structure")
	}
	tbl := tables[0]
	if len(tbl.Cells) != 4 {
		t.Fatalf("cells = %d", len(tbl.Cells))
	}
	for _, c := range tbl.Cells {
		if c.Extra["dropfree_peak_mrps"] <= 0 {
			t.Fatalf("%s: no drop-free peak", c.Config)
		}
		if describePolicy(c.Config) == "" || strings.Contains(describePolicy(c.Config), "unknown") {
			t.Fatalf("undescribed policy %q", c.Config)
		}
	}
}

func TestRenderCDFChart(t *testing.T) {
	curves := []LatencyCurve{
		{
			Config: "DDIO 2 Ways", Context: "peak", AtMrps: 10, Mean: 100, P50: 90, P99: 400,
			CDF: []stats.CDFPoint{{Value: 60, Fraction: 0.2}, {Value: 100, Fraction: 0.6},
				{Value: 400, Fraction: 1.0}},
		},
		{
			Config: "DDIO 2 Ways + Sweeper", Context: "peak", AtMrps: 18, Mean: 70, P50: 60, P99: 200,
			CDF: []stats.CDFPoint{{Value: 50, Fraction: 0.5}, {Value: 200, Fraction: 1.0}},
		},
		{
			Config: "iso curve", Context: "iso", AtMrps: 10, Mean: 60, P50: 55, P99: 100,
			CDF: []stats.CDFPoint{{Value: 50, Fraction: 0.4}, {Value: 100, Fraction: 1.0}},
		},
	}
	var buf bytes.Buffer
	RenderCDFChart(&buf, curves)
	out := buf.String()
	for _, want := range []string{"peak", "iso", "a:", "b:", "1.00 |", "0.00 |", "cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Empty input renders nothing.
	buf.Reset()
	RenderCDFChart(&buf, nil)
	if buf.Len() != 0 {
		t.Fatal("empty chart should render nothing")
	}
}
