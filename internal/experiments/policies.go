package experiments

import "fmt"

// Policies is an extension experiment beyond the paper's figures: it puts
// the §II/§VII related-work buffer policies side by side on the §VI-F
// spiky-service workload —
//
//   - deep buffering (the robust-but-leaky default),
//   - ResQ-style shallow provisioning (fits the DDIO ways, drops under
//     bursts),
//   - NeBuLa-style proactive dropping (deep ring, bounded queue depth),
//   - deep buffering with Sweeper (the paper's answer).
//
// Each policy reports its drop-free peak plus latency and drop behaviour
// at that peak, exposing the tradeoff Sweeper dissolves.
func Policies(sc Scale) []Table {
	type policy struct {
		name      string
		ring      int
		dropDepth int
		sweeper   bool
	}
	policies := []policy{
		{name: "Deep 2048", ring: 2048},
		{name: "ResQ shallow 128", ring: 128},
		{name: "NeBuLa drop@64", ring: 2048, dropDepth: 64},
		{name: "Deep 2048 + Sweeper", ring: 2048, sweeper: true},
	}

	build := func(p policy) PeakResult {
		cfg := KVSConfig(1024, p.ring)
		cfg.SpikeProb = 0.01
		cfg.SpikeMinCycles = 3_200
		cfg.SpikeMaxCycles = 320_000
		cfg.NeBuLaDropDepth = p.dropDepth
		cfg = DDIOVariant(2, p.sweeper).Apply(cfg)
		return DropFreePeak(cfg, sc)
	}

	results := make([]PeakResult, len(policies))
	parallelFor(len(policies), sc, func(i int) { results[i] = build(policies[i]) })

	t := Table{
		ID:     "policies",
		Title:  "Buffer-policy comparison under spiky service (extension)",
		Metric: "dropfree_peak_mrps",
	}
	for i, p := range policies {
		pk := results[i]
		t.Cells = append(t.Cells,
			CellFromResults("spiky KVS", p.name, pk.At).
				WithExtra("dropfree_peak_mrps", pk.PeakMrps).
				WithExtra("p99_req", float64(pk.At.ReqLatP99)).
				WithExtra("ring", float64(p.ring)))
	}
	return []Table{t}
}

// describePolicy documents the intent of each row for reports.
func describePolicy(name string) string {
	switch name {
	case "Deep 2048":
		return "burst-resilient but leaks consumed buffers"
	case "ResQ shallow 128":
		return "LLC-resident buffers, fragile to bursts"
	case "NeBuLa drop@64":
		return "bounds occupancy by proactively dropping"
	case "Deep 2048 + Sweeper":
		return "deep buffers with the leak removed"
	default:
		return fmt.Sprintf("unknown policy %q", name)
	}
}
