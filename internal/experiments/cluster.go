package experiments

import (
	"fmt"

	"sweeper/internal/cluster"
)

// clusterOfferedMrps is the per-node offered load of the rack study: well
// below a Table I server's saturation point, so throughput scales with node
// count and the interesting signal is what the fabric and the sharded log
// add on top.
const clusterOfferedMrps = 8

// ClusterScaling runs the rack-scale study: the Table I KVS with its log
// sharded across 1/2/4 nodes behind the flow-hash balancer, plus the other
// balancing policies at the full rack size. One table: throughput and
// memory bandwidth are rack-wide sums; extras carry the remote-read rate,
// the rack's worst p99 and the fabric's delivered messages.
func ClusterScaling(sc Scale) []Table {
	type cjob struct {
		nodes  int
		policy string
		res    cluster.Results
	}
	jobs := []cjob{
		{nodes: 1, policy: "flow-hash"},
		{nodes: 2, policy: "flow-hash"},
		{nodes: 4, policy: "flow-hash"},
		{nodes: 4, policy: "round-robin"},
		{nodes: 4, policy: "least-loaded"},
	}
	parallelFor(len(jobs), sc, func(i int) {
		j := &jobs[i]
		cfg := cluster.Config{Node: KVSConfig(1024, 1024), Nodes: j.nodes, LBPolicy: j.policy}
		cfg.Node.OfferedMrps = clusterOfferedMrps
		cfg.Node.Shards = sc.Shards
		j.res = cluster.MustNew(cfg).Run(sc.Warmup, sc.Measure)
	})

	t := Table{
		ID:     "cluster",
		Title:  "KVS rack scaling: sharded log over the fabric",
		Metric: "mrps",
	}
	for _, j := range jobs {
		r := j.res
		cell := Cell{
			Param:  fmt.Sprintf("%d nodes", j.nodes),
			Config: j.policy,
			Mrps:   r.ThroughputMrps,
			GBps:   r.MemBWGBps,
		}
		var remote float64
		if r.Served > 0 {
			remote = float64(r.RemoteReads) / float64(r.Served)
		}
		cell = cell.WithExtra("remote_per_req", remote).
			WithExtra("p99_req", float64(r.ReqLatP99Max)).
			WithExtra("drop_rate", r.DropRate).
			WithExtra("fabric_msgs", float64(r.Fabric.Messages))
		t.Cells = append(t.Cells, cell)
	}
	return []Table{t}
}
