package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenCSVs regenerates Figure 2's panels and Figure 6 (summary +
// latency CDFs) at the committed artifacts' fidelity and byte-compares the
// CSVs against results/. It is the end-to-end regression gate: any drift in
// the simulator, the scenario expansion, or the CSV writer shows up here.
//
// Skipped under -short and under the race detector (the outputs are
// deterministic regardless of scheduling, so rerunning at 10x cost buys
// nothing).
func TestGoldenCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration takes ~1 min; skipped with -short")
	}
	if raceEnabled {
		t.Skip("outputs are scheduling-independent; skipped under -race")
	}
	sc := QuickScale() // the scale results/README.md documents

	dir := t.TempDir()
	write := func(name string, emit func(f *os.File) error) {
		t.Helper()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := emit(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for _, tb := range Fig2(sc) {
		tb := tb
		write(tb.ID+".csv", func(f *os.File) error { return tb.WriteCSV(f) })
	}
	r := Fig6(sc)
	write("fig6.csv", func(f *os.File) error { return r.Summary.WriteCSV(f) })
	write("fig6_cdf.csv", func(f *os.File) error { return WriteCDFCSV(f, r) })

	for _, name := range []string{"fig2a.csv", "fig2b.csv", "fig2c.csv", "fig6.csv", "fig6_cdf.csv"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("..", "..", "results", name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: regenerated CSV differs from results/%s", name, name)
		}
	}
}
