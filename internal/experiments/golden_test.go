package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenCSVs regenerates Figure 2's panels and Figure 6 (summary +
// latency CDFs) at the committed artifacts' fidelity and byte-compares the
// CSVs against results/ — once with the sequential engine, then across
// engine shard counts {1, 2, 4, 8}. It is the end-to-end regression gate
// twice over: any drift in the simulator, the scenario expansion, or the
// CSV writer shows up in the sequential pass, and any divergence in the
// parallel engine's canonical dispatch order shows up as a byte diff in
// the sharded passes.
//
// Skipped under -short and under the race detector (the outputs are
// deterministic regardless of scheduling, so rerunning at 10x cost buys
// nothing; the race-mode parallel coverage lives in the sim and machine
// packages).
func TestGoldenCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration takes ~1 min per shard count; skipped with -short")
	}
	if raceEnabled {
		t.Skip("outputs are scheduling-independent; skipped under -race")
	}

	goldens := []string{"fig2a.csv", "fig2b.csv", "fig2c.csv", "fig6.csv", "fig6_cdf.csv"}
	for _, shards := range []int{0, 1, 2, 4, 8} {
		sc := QuickScale() // the scale results/README.md documents
		sc.Shards = shards

		dir := t.TempDir()
		write := func(name string, emit func(f *os.File) error) {
			t.Helper()
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := emit(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}

		for _, tb := range Fig2(sc) {
			tb := tb
			write(tb.ID+".csv", func(f *os.File) error { return tb.WriteCSV(f) })
		}
		r := Fig6(sc)
		write("fig6.csv", func(f *os.File) error { return r.Summary.WriteCSV(f) })
		write("fig6_cdf.csv", func(f *os.File) error { return WriteCDFCSV(f, r) })

		for _, name := range goldens {
			got, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("..", "..", "results", name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d: regenerated %s differs from results/%s", shards, name, name)
			}
		}
	}
}

// TestGoldenFig8CSVs extends the golden gate to Figure 8's two panels.
// Fig8 is 63 peak searches at QuickScale (~14 min on one core) — far past
// the default `go test` package timeout on small machines — so it runs
// sequentially only (the sharded dispatch-order coverage above transfers;
// the engine is shared) and is opt-in via SWEEPER_GOLDEN_FIG8, driven by
// `make golden-fig8` and CI with an explicit -timeout.
func TestGoldenFig8CSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 regeneration is 63 peak searches; skipped with -short")
	}
	if raceEnabled {
		t.Skip("outputs are scheduling-independent; skipped under -race")
	}
	if os.Getenv("SWEEPER_GOLDEN_FIG8") == "" {
		t.Skip("~14 min single-core; set SWEEPER_GOLDEN_FIG8=1 (or run `make golden-fig8`)")
	}

	dir := t.TempDir()
	for _, tb := range Fig8(QuickScale()) {
		f, err := os.Create(filepath.Join(dir, tb.ID+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"fig8a.csv", "fig8b.csv"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("..", "..", "results", name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("regenerated %s differs from results/%s", name, name)
		}
	}
}
