package experiments

import (
	"fmt"
	"io"

	"sweeper/internal/stats"
)

// Claim is one of the paper's headline quantitative statements, checked
// against this reproduction. Pass means the *direction and rough shape*
// hold; Measured records the numbers so EXPERIMENTS.md can cite them.
type Claim struct {
	// ID is a short handle ("ddio-over-dma"); Source cites the paper's
	// section; Statement paraphrases the claim.
	ID        string
	Source    string
	Statement string
	// Measured is this reproduction's number(s); Expected the paper's.
	Measured string
	Expected string
	Pass     bool
}

// CheckClaims runs a compact set of simulations and evaluates the paper's
// central claims. It is the repository's end-to-end acceptance gate: every
// qualitative result the abstract promises is asserted here.
func CheckClaims(sc Scale) []Claim {
	base := KVSConfig(1024, 1024)

	// Peak searches for the four central baselines, in parallel.
	variants := []Variant{
		DMAVariant(),
		DDIOVariant(2, false),
		DDIOVariant(2, true),
		IdealVariant(),
	}
	peaks := make([]PeakResult, len(variants))
	parallelFor(len(variants), sc, func(i int) {
		peaks[i] = PeakThroughput(variants[i].Apply(base), sc)
	})
	dma, ddio, sw, ideal := peaks[0], peaks[1], peaks[2], peaks[3]

	// Sweeper's buffer-provisioning insensitivity: peaks at 512 vs 2048.
	swRings := make([]PeakResult, 2)
	parallelFor(2, sc, func(i int) {
		rings := []int{512, 2048}[i]
		swRings[i] = PeakThroughput(DDIOVariant(2, true).Apply(KVSConfig(1024, rings)), sc)
	})
	baseDeep := PeakThroughput(DDIOVariant(2, false).Apply(KVSConfig(1024, 2048)), sc)

	// Premature-eviction bookkeeping under Sweeper (Fig. 7b's check).
	l3 := RunClosedLoop(DDIOVariant(2, true).Apply(L3FwdConfig(2048)), 250, sc)

	var claims []Claim
	add := func(id, source, statement, measured, expected string, pass bool) {
		claims = append(claims, Claim{
			ID: id, Source: source, Statement: statement,
			Measured: measured, Expected: expected, Pass: pass,
		})
	}

	perReq := func(p PeakResult) float64 {
		var t float64
		for _, v := range p.At.AccessesPerRequest {
			t += v
		}
		return t
	}

	add("ddio-over-dma", "§IV-A",
		"DDIO sustains higher peak throughput than conventional DMA",
		fmt.Sprintf("%.1f vs %.1f Mrps (%s)", ddio.PeakMrps, dma.PeakMrps,
			ratio(ddio.PeakMrps, dma.PeakMrps)),
		"up to 2.1x", ddio.PeakMrps > dma.PeakMrps)

	add("dma-bandwidth-waste", "§IV-A",
		"DMA burns more memory bandwidth per unit of work than DDIO",
		fmt.Sprintf("%.1f acc/req vs %.1f acc/req", perReq(dma), perReq(ddio)),
		"up to 70% fewer accesses with DDIO", perReq(dma) > 1.5*perReq(ddio))

	add("ddio-premium-over-ideal", "§IV-A",
		"DDIO moves 1.3-2x more data per request than Ideal-DDIO",
		fmt.Sprintf("%.1f vs %.1f acc/req (%s)", perReq(ddio), perReq(ideal),
			ratio(perReq(ddio), perReq(ideal))),
		"1.3-2x", perReq(ddio) > 1.2*perReq(ideal))

	add("consumed-dominates", "§IV",
		"Consumed-buffer evictions dominate premature evictions at peak",
		fmt.Sprintf("RX Evct %.2f vs CPU RX Rd %.2f per request",
			ddio.At.AccessesPerRequest[stats.RXEvct],
			ddio.At.AccessesPerRequest[stats.CPURXRd]),
		"consumed >> premature",
		ddio.At.AccessesPerRequest[stats.RXEvct] >
			ddio.At.AccessesPerRequest[stats.CPURXRd])

	add("sweeper-eliminates-rxevct", "§VI-A",
		"Sweeper completely eliminates consumed-buffer writebacks",
		fmt.Sprintf("%.3f RX Evct/req with Sweeper (baseline %.2f)",
			sw.At.AccessesPerRequest[stats.RXEvct],
			ddio.At.AccessesPerRequest[stats.RXEvct]),
		"~0",
		sw.At.AccessesPerRequest[stats.RXEvct] <
			0.1*ddio.At.AccessesPerRequest[stats.RXEvct]+0.05)

	add("sweeper-throughput-gain", "§VI-A",
		"Sweeper raises peak throughput over plain DDIO",
		fmt.Sprintf("%.1f vs %.1f Mrps (%s)", sw.PeakMrps, ddio.PeakMrps,
			ratio(sw.PeakMrps, ddio.PeakMrps)),
		"1.02-2.6x", sw.PeakMrps > ddio.PeakMrps)

	add("sweeper-near-ideal", "§VI-A",
		"Sweeper lands close to the Ideal-DDIO upper bound",
		fmt.Sprintf("%.1f of %.1f Mrps (%.0f%%)", sw.PeakMrps, ideal.PeakMrps,
			100*sw.PeakMrps/ideal.PeakMrps),
		"within 2-18%", sw.PeakMrps > 0.6*ideal.PeakMrps)

	add("sweeper-buffer-insensitive", "§VI-A",
		"With Sweeper, peak throughput barely depends on RX provisioning",
		fmt.Sprintf("512 buf: %.1f, 2048 buf: %.1f Mrps", swRings[0].PeakMrps,
			swRings[1].PeakMrps),
		"insensitive",
		swRings[1].PeakMrps > 0.75*swRings[0].PeakMrps)

	add("sweeper-beats-deep-baseline", "§VI-A",
		"Deep buffers stop hurting once Sweeper removes the leak",
		fmt.Sprintf("2048 buf: %.1f (Sweeper) vs %.1f (baseline) Mrps (%s)",
			swRings[1].PeakMrps, baseDeep.PeakMrps,
			ratio(swRings[1].PeakMrps, baseDeep.PeakMrps)),
		"up to 2.6x", swRings[1].PeakMrps > baseDeep.PeakMrps)

	add("premature-accounting", "§VI-C",
		"Under Sweeper, surviving RX evictions are premature ones: they track CPU RX read misses",
		fmt.Sprintf("RX Evct %.2f vs CPU RX Rd %.2f per packet",
			l3.AccessesPerRequest[stats.RXEvct],
			l3.AccessesPerRequest[stats.CPURXRd]),
		"equal",
		within(l3.AccessesPerRequest[stats.RXEvct],
			l3.AccessesPerRequest[stats.CPURXRd], 0.30))

	add("bandwidth-saved", "§VI-A",
		"Sweeper reduces memory bandwidth at comparable load",
		fmt.Sprintf("%.1f GB/s (Sweeper, %.1f Mrps) vs %.1f GB/s (DDIO, %.1f Mrps)",
			sw.At.MemBWGBps, sw.PeakMrps, ddio.At.MemBWGBps, ddio.PeakMrps),
		"up to 1.3x conserved",
		sw.At.MemBWGBps/sw.PeakMrps < ddio.At.MemBWGBps/ddio.PeakMrps)

	return claims
}

// within reports whether a and b agree to the given relative tolerance.
func within(a, b, tol float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	if hi == 0 {
		return true
	}
	return (hi-lo)/hi <= tol
}

// RenderClaims prints the claim table.
func RenderClaims(w io.Writer, claims []Claim) {
	pass := 0
	for _, c := range claims {
		status := "FAIL"
		if c.Pass {
			status = "ok"
			pass++
		}
		fmt.Fprintf(w, "[%-4s] %-28s (%s)\n", status, c.ID, c.Source)
		fmt.Fprintf(w, "       claim:    %s\n", c.Statement)
		fmt.Fprintf(w, "       paper:    %s\n", c.Expected)
		fmt.Fprintf(w, "       measured: %s\n", c.Measured)
	}
	fmt.Fprintf(w, "%d/%d claims hold\n", pass, len(claims))
}
