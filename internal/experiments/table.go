package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"sweeper/internal/machine"
	"sweeper/internal/stats"
)

// Cell is one measured configuration point of a figure: a (parameter,
// configuration) pair with the metrics the paper plots.
type Cell struct {
	// Param is the x-axis group ("512 buf/core", "D=250", "3 channels").
	Param string
	// Config is the series ("DMA", "DDIO 2", "DDIO 2+Sweeper", "Ideal").
	Config string
	// Mrps is application throughput; GBps the DRAM bandwidth at that
	// point; Breakdown the per-request DRAM access mix.
	Mrps      float64
	GBps      float64
	Breakdown [stats.NumKinds]float64
	// Extra carries figure-specific metrics (XMemIPC, p99, drop rate...).
	Extra map[string]float64
}

// WithExtra returns the cell with an extra metric attached.
func (c Cell) WithExtra(key string, v float64) Cell {
	if c.Extra == nil {
		c.Extra = map[string]float64{}
	}
	c.Extra[key] = v
	return c
}

// CellFromResults builds a cell from a measurement.
func CellFromResults(param, config string, r machine.Results) Cell {
	return Cell{
		Param:     param,
		Config:    config,
		Mrps:      r.ThroughputMrps,
		GBps:      r.MemBWGBps,
		Breakdown: r.AccessesPerRequest,
	}
}

// Table is one reproduced figure panel.
type Table struct {
	// ID matches DESIGN.md's experiment index ("fig5a").
	ID string
	// Title describes the panel.
	Title string
	// Metric is the panel's primary view: "mrps", "gbps", "breakdown" or
	// an Extra key. RenderDefault prints it.
	Metric string
	// Cells hold the measurements, in sweep order.
	Cells []Cell
}

// RenderDefault prints the panel's primary metric view.
func (t *Table) RenderDefault(w io.Writer) {
	switch t.Metric {
	case "", "mrps":
		t.Render(w, "mrps")
	case "breakdown":
		t.RenderBreakdown(w)
	default:
		t.Render(w, t.Metric)
	}
}

// Find returns the cell for (param, config), if present.
func (t *Table) Find(param, config string) (Cell, bool) {
	for _, c := range t.Cells {
		if c.Param == param && c.Config == config {
			return c, true
		}
	}
	return Cell{}, false
}

// Params returns the distinct parameter groups in first-seen order.
func (t *Table) Params() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range t.Cells {
		if !seen[c.Param] {
			seen[c.Param] = true
			out = append(out, c.Param)
		}
	}
	return out
}

// Configs returns the distinct series in first-seen order.
func (t *Table) Configs() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range t.Cells {
		if !seen[c.Config] {
			seen[c.Config] = true
			out = append(out, c.Config)
		}
	}
	return out
}

// Render prints the panel as an aligned text table: one row per config, one
// column per parameter, cells showing Mrps / GB/s (and any extras below).
func (t *Table) Render(w io.Writer, metric string) {
	fmt.Fprintf(w, "%s — %s [%s]\n", t.ID, t.Title, metric)
	params := t.Params()
	configs := t.Configs()

	fmt.Fprintf(w, "  %-22s", "")
	for _, p := range params {
		fmt.Fprintf(w, " %14s", p)
	}
	fmt.Fprintln(w)
	for _, cf := range configs {
		fmt.Fprintf(w, "  %-22s", cf)
		for _, p := range params {
			c, ok := t.Find(p, cf)
			if !ok {
				fmt.Fprintf(w, " %14s", "-")
				continue
			}
			fmt.Fprintf(w, " %14s", formatMetric(c, metric))
		}
		fmt.Fprintln(w)
	}
}

func formatMetric(c Cell, metric string) string {
	switch metric {
	case "mrps":
		return fmt.Sprintf("%.2f", c.Mrps)
	case "gbps":
		return fmt.Sprintf("%.1f", c.GBps)
	case "acc/req":
		var t float64
		for _, v := range c.Breakdown {
			t += v
		}
		return fmt.Sprintf("%.2f", t)
	default:
		if v, ok := c.Extra[metric]; ok {
			return fmt.Sprintf("%.3f", v)
		}
		return "-"
	}
}

// RenderBreakdown prints the per-request access mix for every cell,
// mirroring the paper's stacked-bar panels.
func (t *Table) RenderBreakdown(w io.Writer) {
	fmt.Fprintf(w, "%s — %s [memory accesses per request]\n", t.ID, t.Title)
	fmt.Fprintf(w, "  %-14s %-22s", "param", "config")
	for k := stats.AccessKind(0); k < stats.NumKinds; k++ {
		fmt.Fprintf(w, " %12s", k)
	}
	fmt.Fprintf(w, " %12s\n", "total")
	for _, c := range t.Cells {
		fmt.Fprintf(w, "  %-14s %-22s", c.Param, c.Config)
		var total float64
		for k := stats.AccessKind(0); k < stats.NumKinds; k++ {
			fmt.Fprintf(w, " %12.2f", c.Breakdown[k])
			total += c.Breakdown[k]
		}
		fmt.Fprintf(w, " %12.2f\n", total)
	}
}

// WriteCSV emits the table in long form: one line per (param, config) with
// every metric as a column.
func (t *Table) WriteCSV(w io.Writer) error {
	extraKeys := map[string]bool{}
	for _, c := range t.Cells {
		for k := range c.Extra {
			extraKeys[k] = true
		}
	}
	extras := make([]string, 0, len(extraKeys))
	for k := range extraKeys {
		extras = append(extras, k)
	}
	sort.Strings(extras)

	cols := []string{"figure", "param", "config", "mrps", "gbps"}
	for k := stats.AccessKind(0); k < stats.NumKinds; k++ {
		name := strings.ToLower(k.String())
		name = strings.ReplaceAll(name, " ", "_")
		cols = append(cols, "acc_"+name)
	}
	cols = append(cols, extras...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, c := range t.Cells {
		row := []string{
			t.ID,
			c.Param,
			c.Config,
			fmt.Sprintf("%.4f", c.Mrps),
			fmt.Sprintf("%.4f", c.GBps),
		}
		for k := stats.AccessKind(0); k < stats.NumKinds; k++ {
			row = append(row, fmt.Sprintf("%.4f", c.Breakdown[k]))
		}
		for _, e := range extras {
			// A missing key is "metric absent", not a measured zero:
			// emit an empty field so downstream tooling can tell them
			// apart.
			if v, ok := c.Extra[e]; ok {
				row = append(row, fmt.Sprintf("%.4f", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
