package experiments

import (
	"sweeper/internal/core"
	"sweeper/internal/machine"
	"sweeper/internal/mem"
)

// tiersRate is the fixed offered load of the tiers study: high enough that
// writeback traffic matters, low enough that every cell serves it without
// saturating, so cells compare instruction cost rather than drop behaviour.
const tiersRate = 8.0

// tierMemory is one memory organization of the tiers study.
type tierMemory struct {
	name string
	cfg  mem.TierConfig
}

// tierMemories contrasts the DRAM-only Table I server with a hybrid machine
// whose application heap beyond 16 MiB lives on an NVM/CXL-class tier (static
// split, so the figure is independent of migration dynamics).
func tierMemories() []tierMemory {
	hybrid := mem.DefaultTierConfig(mem.TierStatic)
	hybrid.DRAMBytes = 16 << 20
	return []tierMemory{
		{"dram-only", mem.TierConfig{}},
		{"hybrid", hybrid},
	}
}

// Tiers sweeps the invalidation-instruction family across memory
// organizations: each registered instruction (clsweep, clflush, clwb, simf)
// runs the KVS at a fixed offered load on a DRAM-only and a hybrid-tier
// machine. The cells separate on write traffic — clsweep drops relinquished
// dirty lines without writing them back, clflush/clwb force them to memory
// (which the slow tier's write asymmetry amplifies), simf pays clflush's
// traffic at batch issue cost.
func Tiers(sc Scale) []Table {
	type tJob struct {
		insn, memory string
		cfg          machine.Config
		res          machine.Results
	}
	var jobs []tJob
	for _, m := range tierMemories() {
		for _, insn := range core.InsnNames() {
			cfg := KVSConfig(1024, 1024)
			cfg = DDIOVariant(2, true).Apply(cfg)
			cfg.Sweeper.Insn = insn
			cfg.MemTier = m.cfg
			jobs = append(jobs, tJob{insn: insn, memory: m.name, cfg: cfg})
		}
	}
	parallelFor(len(jobs), sc, func(i int) {
		jobs[i].res = RunAtRate(jobs[i].cfg, tiersRate, sc)
	})

	t := Table{
		ID:     "tiers",
		Title:  "Invalidation instruction x memory tier (KVS, 1KB items, 8 Mrps)",
		Metric: "mrps",
	}
	for _, j := range jobs {
		r := j.res
		t.Cells = append(t.Cells, CellFromResults(j.memory, j.insn, r).
			WithExtra("swept_lines", float64(r.Sweeper.SweptLines)).
			WithExtra("written_back_lines", float64(r.Sweeper.WrittenBackLines)).
			WithExtra("dropped_dirty_lines", float64(r.Sweeper.DroppedDirtyLines)).
			WithExtra("tier1_gbps", r.Tier1BWGBps).
			WithExtra("dram_gbps", r.MemBWGBps).
			WithExtra("p99_req", float64(r.ReqLatP99)))
	}
	return []Table{t}
}
