// Package experiments reproduces every table and figure of the paper's
// evaluation: the configuration sweeps, the peak-throughput search under the
// Appendix's SLO (p99 end-to-end latency ≤ 100x the workload's mean
// unloaded service time), the closed-loop deep-queue studies, the
// collocation Pareto scans, and text/CSV rendering of the results.
package experiments

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"

	"sweeper/internal/machine"
)

// Scale sets the simulation effort. Full scale drives cmd/experiments;
// Quick scale keeps `go test -bench` runs tractable (shorter windows and a
// coarser search — shapes hold, absolute numbers wobble a little).
type Scale struct {
	// Warmup and Measure are the per-run window lengths in cycles.
	Warmup  uint64
	Measure uint64
	// SearchIters bounds the bisection refinement of the peak search.
	SearchIters int
	// Parallelism caps concurrently simulated machines. Zero defers to
	// the SWEEPER_WORKERS environment variable, then to GOMAXPROCS.
	// Either way the budget is divided by the per-run shard count (see
	// workers), so run-level and shard-level parallelism never stack into
	// host oversubscription.
	Parallelism int
	// Shards is the engine shard count stamped onto every run
	// (machine.Config.Shards): 0/1 sequential, N > 1 parallel, -1 auto.
	Shards int
	// Sampling, when its Mode is set, stamps sampled-simulation knobs onto
	// every run: detailed/fast-forward interval alternation with warm-up
	// detection instead of full detailed windows. Warmup then acts as the
	// warm-up budget rather than a fixed span. Sampled figures are
	// approximations with confidence intervals — the committed results use
	// full detailed runs.
	Sampling machine.SamplingConfig
}

// FullScale is the fidelity used for the committed experiment results.
func FullScale() Scale {
	return Scale{Warmup: 12_000_000, Measure: 3_000_000, SearchIters: 6}
}

// QuickScale trades precision for speed (benchmarks, smoke runs, and the
// committed results regenerated on small machines).
func QuickScale() Scale {
	return Scale{Warmup: 5_000_000, Measure: 2_000_000, SearchIters: 4}
}

func (s Scale) workers() int {
	budget := runtime.GOMAXPROCS(0)
	if s.Parallelism > 0 {
		budget = s.Parallelism
	} else if v := os.Getenv("SWEEPER_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			budget = n
		}
	}
	// Each run occupies runShards() goroutine slots while its engine
	// harvests in parallel, so the concurrency budget shrinks accordingly:
	// running 8 machines x 4 shards each on an 8-way host would thrash.
	if w := budget / s.runShards(); w > 1 {
		return w
	}
	return 1
}

// runShards resolves the per-run shard footprint used to divide the worker
// budget. Auto (-1) is approximated with GOMAXPROCS: the engine caps auto
// shard counts at GOMAXPROCS, so a single auto-sharded run can occupy the
// whole host and figure-level parallelism collapses to one run at a time.
func (s Scale) runShards() int {
	if s.Shards == -1 {
		return runtime.GOMAXPROCS(0)
	}
	if s.Shards > 1 {
		return s.Shards
	}
	return 1
}

// SLOMultiple is the paper's latency target: p99 ≤ 100x mean unloaded
// service time (Appendix).
const SLOMultiple = 100

// maxDropRate is the drop tolerance of the SLO-constrained peak search;
// datacenter drop rates near 1% are considered prohibitive (§VI-F), and a
// healthy run drops essentially nothing.
const maxDropRate = 1e-3

// PeakResult is the outcome of a peak-throughput search.
type PeakResult struct {
	// PeakMrps is the highest offered load that met the SLO.
	PeakMrps float64
	// At holds the measured results at that load.
	At machine.Results
	// SLOCycles is the p99 target used.
	SLOCycles uint64
	// ServiceCycles is the calibrated mean unloaded service time.
	ServiceCycles float64
}

// pool recycles machines across the many probes of a figure sweep: a peak
// search runs ~20 probes per configuration, and a fresh Table I machine
// costs tens of megabytes to build. Machine.Reset guarantees a recycled
// machine runs bit-identically to a fresh one, so pooling is invisible to
// the committed results.
var pool = machine.NewPool(0)

func runOnce(cfg machine.Config, sc Scale) machine.Results {
	cfg.Shards = sc.Shards
	if sc.Sampling.Mode != "" {
		cfg.Sampling = sc.Sampling
	}
	m := pool.MustGet(cfg)
	r := m.Run(sc.Warmup, sc.Measure)
	pool.Put(m)
	return r
}

// calKey identifies one calibration: the full derived trickle-load config
// plus the window lengths (machine.Config is comparable by design).
type calKey struct {
	cfg             machine.Config
	warmup, measure uint64
}

type calEntry struct {
	once    sync.Once
	service float64
	slo     uint64
}

var (
	calMu    sync.Mutex
	calCache = map[calKey]*calEntry{}
)

// Calibrate measures the workload's mean unloaded service time for cfg by
// running it at a trickle load, returning the service time and the derived
// SLO target. Runs are deterministic, so results are memoized per identical
// calibration config and window: within a figure run the many sweep points
// that share a base configuration calibrate once instead of once per point.
func Calibrate(cfg machine.Config, sc Scale) (service float64, slo uint64) {
	cal := cfg
	cal.ClosedLoopDepth = 0
	cal.OfferedMrps = 0.05 * float64(cfg.NetCores) // ~1/20 of a core each
	cal.Shards = sc.Shards
	key := calKey{cfg: cal, warmup: sc.Warmup / 2, measure: sc.Measure}
	calMu.Lock()
	e := calCache[key]
	if e == nil {
		e = &calEntry{}
		calCache[key] = e
	}
	calMu.Unlock()
	e.once.Do(func() {
		m := pool.MustGet(cal)
		r := m.Run(sc.Warmup/2, sc.Measure)
		pool.Put(m)
		e.service = r.AvgServiceCycles
		if e.service <= 0 {
			e.service = 1
		}
		e.slo = uint64(e.service * SLOMultiple)
	})
	return e.service, e.slo
}

// feasibility is the acceptance criterion of one probe.
type feasibility func(r machine.Results, offered float64) bool

func sloFeasible(slo uint64) feasibility {
	return func(r machine.Results, offered float64) bool {
		if r.ReqLatP99 > slo || r.DropRate > maxDropRate {
			return false
		}
		// The system must actually keep up with the offered load, not
		// just survive the window on deep buffers.
		return r.ThroughputMrps >= 0.95*offered
	}
}

// dropFree is the §VI-F criterion: zero packet drops and a stable system.
// The Appendix explicitly exempts the spiky-workload study from the p99
// SLO, so latency does not gate feasibility here.
func dropFree() feasibility {
	return func(r machine.Results, offered float64) bool {
		return r.Dropped == 0 && r.ThroughputMrps >= 0.95*offered
	}
}

// searchPeak finds the highest offered load accepted by the criterion that
// mkOK builds from the calibrated SLO, via exponential expansion followed
// by bisection.
func searchPeak(cfg machine.Config, sc Scale, startMrps float64, mkOK func(slo uint64) feasibility) PeakResult {
	service, slo := Calibrate(cfg, sc)
	ok := mkOK(slo)
	res := PeakResult{SLOCycles: slo, ServiceCycles: service}

	probe := func(rate float64) (machine.Results, bool) {
		c := cfg
		c.ClosedLoopDepth = 0
		c.OfferedMrps = rate
		r := runOnce(c, sc)
		return r, ok(r, rate)
	}

	lo := startMrps
	if lo <= 0 {
		// An optimistic capacity estimate from the unloaded service
		// time; the search expands or shrinks from a fraction of it.
		lo = float64(cfg.NetCores) * cfg.FreqHz / service / 1e6 * 0.25
	}
	if lo < 0.5 {
		lo = 0.5
	}
	r, okLo := probe(lo)
	for !okLo {
		lo /= 2
		if lo < 0.25 {
			// Even a trickle violates the SLO; report zero peak.
			res.PeakMrps = 0
			res.At = r
			return res
		}
		r, okLo = probe(lo)
	}
	best, bestRate := r, lo

	hi := lo * 2
	for i := 0; i < 12; i++ {
		r, feas := probe(hi)
		if !feas {
			break
		}
		best, bestRate = r, hi
		lo = hi
		hi *= 2
	}

	for i := 0; i < sc.SearchIters; i++ {
		mid := (lo + hi) / 2
		if hi-lo < 0.25 || mid <= 0 {
			break
		}
		r, feas := probe(mid)
		if feas {
			best, bestRate = r, mid
			lo = mid
		} else {
			hi = mid
		}
	}

	res.PeakMrps = bestRate
	res.At = best
	return res
}

// PeakThroughput finds cfg's peak sustainable load under the paper's SLO.
func PeakThroughput(cfg machine.Config, sc Scale) PeakResult {
	return searchPeak(cfg, sc, 0, sloFeasible)
}

// DropFreePeak finds the peak load with zero packet drops (Figure 10a).
func DropFreePeak(cfg machine.Config, sc Scale) PeakResult {
	return searchPeak(cfg, sc, 0, func(uint64) feasibility { return dropFree() })
}

// RunClosedLoop runs cfg's keep-D-queued closed loop once (§IV-B studies;
// throughput there is purely service-rate limited, no search needed).
func RunClosedLoop(cfg machine.Config, depth int, sc Scale) machine.Results {
	c := cfg
	c.ClosedLoopDepth = depth
	c.OfferedMrps = 0
	return runOnce(c, sc)
}

// RunAtRate runs cfg open-loop at a fixed offered load (iso-throughput
// comparisons, drop-rate curves).
func RunAtRate(cfg machine.Config, mrps float64, sc Scale) machine.Results {
	c := cfg
	c.ClosedLoopDepth = 0
	c.OfferedMrps = mrps
	return runOnce(c, sc)
}

// parallelFor runs fn(i) for i in [0,n) on the scale's worker budget.
func parallelFor(n int, sc Scale, fn func(i int)) {
	workers := sc.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ratio formats a fold-change, guarding against zero denominators.
func ratio(num, den float64) string {
	if den == 0 || math.IsNaN(num/den) {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", num/den)
}
