//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; heavy
// regeneration tests skip under it.
const raceEnabled = false
