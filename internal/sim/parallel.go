package sim

import (
	"runtime"
	"sync"
)

const (
	// maxShards caps the shard count; beyond the host's core count extra
	// shards only add merge overhead.
	maxShards = 64

	// defaultParMin is the default harvest size below which shard harvests
	// run inline: channel barriers cost microseconds, so tiny epochs are
	// cheaper on the coordinator.
	defaultParMin = 64
)

// parRuntime is the sharded engine: per-shard timing wheels advanced by
// conservative epochs and merged into one canonical dispatch sequence.
//
// # Epoch structure
//
// Each epoch the coordinator computes T, the earliest pending event across
// all shards, and a horizon T+lookahead. Shards then *harvest* in parallel:
// each drains its mailbox, pops every event with at <= horizon off its own
// wheel into a ready list (emerging in (at, seq) order), and advances its
// local clock — pure queue maintenance on shard-private state, no callbacks.
// The coordinator then *dispatches* serially: ready lists are merged through
// a min-heap keyed by (at, seq) and each event fires in exactly the order
// the sequential engine would use.
//
// # Why dispatch is bit-identical
//
// Sequence numbers are assigned only by the coordinator — at setup and
// inside serialized dispatch — so (at, seq) is the same global total order
// the sequential engine dispatches in, for any shard count and any
// lookahead. Events scheduled mid-epoch join the merge heap directly when
// they land inside the horizon (so intra-epoch causality is preserved) and
// go to the target shard's mailbox otherwise. Goroutine arrival order never
// influences dispatch: workers only move nodes between shard-private
// structures, and the merge heap orders purely by (at, seq).
//
// # Why harvest is race-free
//
// Strict phase alternation. During harvest, each worker owns exactly one
// shard (its queue, mailbox, ready list); the coordinator touches nothing.
// During dispatch and setup, the coordinator owns everything and no workers
// run. The WaitGroup barrier between phases establishes happens-before in
// both directions.
type parRuntime struct {
	shards    []shard
	lookahead Cycle

	// Coordinator dispatch/setup state (never touched during harvest).
	heap       []mergeEntry // canonical merge heap, keyed (at, seq)
	inEpoch    bool         // inside dispatchEpoch: schedules route to heap/mailboxes
	horizon    Cycle        // current epoch's inclusive dispatch bound
	ctxShard   int          // shard receiving ambient schedules right now
	setupShard int          // SetShard selection, restored after each epoch

	active      []int32 // shards selected for the current harvest
	lastHarvest int     // events harvested in the previous epoch
	pool        *harvestPool
}

// shard is one timing-wheel partition with its local clock and mailbox.
type shard struct {
	q   queue
	now Cycle // local clock: everything at <= now has been harvested

	// inbox holds nodes scheduled for this shard beyond a dispatching
	// epoch's horizon. Appended only by the coordinator (serialized
	// dispatch), drained only by this shard's harvest — phases alternate,
	// so it is an SPSC handoff with the epoch barrier as the fence.
	inbox    []int32
	inboxMin Cycle // earliest at in inbox (lower bound; valid when non-empty)

	// ready is the harvest output: nodes with at <= horizon in (at, seq)
	// order, consumed by the coordinator's merge.
	ready []int32

	// nextAt lower-bounds the earliest event remaining on the wheel or
	// overflow heap after the last harvest (conservative: the bound may
	// name a cancelled event; a harvest at that bound reclaims it).
	nextAt  Cycle
	hasNext bool

	harvested int // ready-list length, written by the harvest worker
}

// mergeEntry is one candidate event in the canonical merge heap. pos is the
// node's index in its shard's ready list (the successor is pos+1), or -1 for
// events scheduled live during the epoch.
type mergeEntry struct {
	at    Cycle
	seq   uint64
	node  int32
	shard int32
	pos   int32
}

func newParRuntime(n int, lookahead Cycle) *parRuntime {
	p := &parRuntime{
		shards:    make([]shard, n),
		lookahead: lookahead,
	}
	for i := range p.shards {
		p.shards[i].q.init()
	}
	return p
}

// reset restores the runtime to its just-constructed observable state,
// keeping every shard's node slab (see queue.reset).
func (p *parRuntime) reset() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.q.reset()
		sh.now = 0
		sh.inbox = sh.inbox[:0]
		sh.inboxMin = 0
		sh.ready = sh.ready[:0]
		sh.nextAt, sh.hasNext = 0, false
		sh.harvested = 0
	}
	p.heap = p.heap[:0]
	p.inEpoch = false
	p.horizon = 0
	p.ctxShard, p.setupShard = 0, 0
	p.active = p.active[:0]
	p.lastHarvest = 0
}

// place routes a freshly sequenced event to its shard. Inside an epoch,
// events within the horizon join the merge heap (they dispatch this epoch,
// in canonical order) and later ones go to the shard's mailbox; outside an
// epoch they link straight into the shard's wheel.
func (p *parRuntime) place(e *Engine, shard int, at Cycle, seq uint64, fn Event, sink Sink, arg uint64) Handle {
	sh := &p.shards[shard]
	i := sh.q.allocSet(at, seq, fn, sink, arg)
	if p.inEpoch {
		if at <= p.horizon {
			p.heapPush(mergeEntry{at: at, seq: seq, node: i, shard: int32(shard), pos: -1})
		} else {
			if len(sh.inbox) == 0 || at < sh.inboxMin {
				sh.inboxMin = at
			}
			sh.inbox = append(sh.inbox, i)
		}
	} else {
		sh.q.link(sh.now, i)
		if !sh.hasNext || at < sh.nextAt {
			sh.nextAt, sh.hasNext = at, true
		}
	}
	return Handle{e: e, idx: i, gen: sh.q.nodes[i].gen, shard: int32(shard)}
}

// bound reports a lower bound on the shard's earliest pending event.
func (sh *shard) bound() (Cycle, bool) {
	at, ok := sh.nextAt, sh.hasNext
	if len(sh.inbox) > 0 && (!ok || sh.inboxMin < at) {
		at, ok = sh.inboxMin, true
	}
	return at, ok
}

// runUntil advances the sharded engine through conservative epochs until no
// event at or before limit remains. The caller (Engine.RunUntil) owns the
// final clock clamp.
func (p *parRuntime) runUntil(e *Engine, limit Cycle) {
	defer p.stopPool()
	for {
		// T = earliest pending event across shards (a conservative lower
		// bound; a stale bound costs one empty epoch that reclaims the
		// cancelled node it named, so the loop always makes progress).
		var t Cycle
		ok := false
		for i := range p.shards {
			if at, has := p.shards[i].bound(); has && (!ok || at < t) {
				t, ok = at, true
			}
		}
		if !ok || t > limit {
			return
		}
		if t < e.now {
			t = e.now
		}
		horizon := t + p.lookahead
		if horizon < t || horizon > limit {
			horizon = limit // overflow-guarded clamp
		}
		p.harvest(e, horizon)
		p.dispatchEpoch(e, horizon)
	}
}

// harvest pops every event with at <= horizon off the active shards' wheels
// into their ready lists — in parallel when the previous epoch was big
// enough to amortize the barrier, inline otherwise.
func (p *parRuntime) harvest(e *Engine, horizon Cycle) {
	p.active = p.active[:0]
	for i := range p.shards {
		if at, ok := p.shards[i].bound(); ok && at <= horizon {
			p.active = append(p.active, int32(i))
		}
	}
	total := 0
	if len(p.active) > 1 && p.lastHarvest >= e.parMin {
		pool := p.startPool()
		pool.wg.Add(len(p.active))
		for _, si := range p.active {
			pool.jobs <- harvestJob{sh: &p.shards[si], horizon: horizon}
		}
		pool.wg.Wait()
		for _, si := range p.active {
			total += p.shards[si].harvested
		}
	} else {
		for _, si := range p.active {
			sh := &p.shards[si]
			sh.harvestOne(horizon)
			total += sh.harvested
		}
	}
	p.lastHarvest = total
}

// harvestOne is the per-shard harvest: migrate, drain the mailbox, pop the
// epoch's events into the ready list, advance the local clock. It touches
// only shard-private state.
func (sh *shard) harvestOne(horizon Cycle) {
	q := &sh.q
	// Migrate before draining the mailbox: overflow nodes carry smaller
	// sequence numbers than anything mailed later, so they must enter their
	// buckets first to keep bucket FIFO order equal to (at, seq) order.
	q.migrate(sh.now)
	if len(sh.inbox) > 0 {
		for _, i := range sh.inbox {
			q.link(sh.now, i)
		}
		sh.inbox = sh.inbox[:0]
	}
	sh.ready = sh.ready[:0]
	now := sh.now
	for {
		i, ok := q.pop(&now, horizon)
		if !ok {
			break
		}
		sh.ready = append(sh.ready, i)
	}
	if q.live == 0 && q.dead > 0 {
		// Only cancelled nodes remain: pop won't walk them (it exits on
		// live == 0), so reclaim them here or peek would keep reporting
		// their bucket as a bound and livelock the epoch loop.
		q.compact()
	}
	sh.now = horizon
	// Migrate at the new clock so no overflow node within wheel range
	// predates later same-bucket insertions (the FIFO invariant again).
	q.migrate(horizon)
	sh.nextAt, sh.hasNext = q.peek(horizon)
	q.maybeCompact()
	sh.harvested = len(sh.ready)
}

// dispatchEpoch merges the ready lists through the canonical (at, seq) heap
// and fires each event serially, exactly as the sequential engine would.
func (p *parRuntime) dispatchEpoch(e *Engine, horizon Cycle) {
	p.inEpoch = true
	p.horizon = horizon
	for _, si := range p.active {
		sh := &p.shards[si]
		if len(sh.ready) > 0 {
			n := &sh.q.nodes[sh.ready[0]]
			p.heapPush(mergeEntry{at: n.at, seq: n.seq, node: sh.ready[0], shard: si, pos: 0})
		}
	}
	for len(p.heap) > 0 {
		ent := p.heapPop()
		sh := &p.shards[ent.shard]
		if ent.pos >= 0 && int(ent.pos)+1 < len(sh.ready) {
			succ := sh.ready[ent.pos+1]
			n := &sh.q.nodes[succ]
			p.heapPush(mergeEntry{at: n.at, seq: n.seq, node: succ, shard: ent.shard, pos: ent.pos + 1})
		}
		n := &sh.q.nodes[ent.node]
		if n.dead {
			// Cancelled mid-epoch (possibly by an earlier event in this
			// very merge); skip without advancing the clock.
			sh.q.reclaim(ent.node)
			continue
		}
		fn, sink, arg := n.fn, n.sink, n.arg
		sh.q.live--
		sh.q.freeNode(ent.node)
		e.now = ent.at
		p.ctxShard = int(ent.shard)
		if sink != nil {
			sink.OnEvent(ent.at, arg)
		} else {
			fn(ent.at)
		}
	}
	p.inEpoch = false
	p.ctxShard = p.setupShard
}

// Merge heap: binary min-heap of mergeEntry keyed (at, seq). seq is globally
// unique, so the order is total and deterministic.

func mergeLess(a, b mergeEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (p *parRuntime) heapPush(ent mergeEntry) {
	p.heap = append(p.heap, ent)
	c := len(p.heap) - 1
	for c > 0 {
		par := (c - 1) / 2
		if !mergeLess(p.heap[c], p.heap[par]) {
			break
		}
		p.heap[c], p.heap[par] = p.heap[par], p.heap[c]
		c = par
	}
}

func (p *parRuntime) heapPop() mergeEntry {
	top := p.heap[0]
	last := len(p.heap) - 1
	p.heap[0] = p.heap[last]
	p.heap = p.heap[:last]
	n := len(p.heap)
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && mergeLess(p.heap[r], p.heap[c]) {
			c = r
		}
		if !mergeLess(p.heap[c], p.heap[i]) {
			break
		}
		p.heap[c], p.heap[i] = p.heap[i], p.heap[c]
		i = c
	}
	return top
}

// harvestPool is the worker pool that runs shard harvests. It is created
// lazily on the first parallel harvest of a RunUntil call and torn down when
// the call returns, so an idle engine holds no goroutines.
type harvestPool struct {
	jobs chan harvestJob
	wg   sync.WaitGroup
}

type harvestJob struct {
	sh      *shard
	horizon Cycle
}

func (p *parRuntime) startPool() *harvestPool {
	if p.pool != nil {
		return p.pool
	}
	workers := len(p.shards)
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	pool := &harvestPool{jobs: make(chan harvestJob, len(p.shards))}
	for w := 0; w < workers; w++ {
		go func() {
			for job := range pool.jobs {
				job.sh.harvestOne(job.horizon)
				pool.wg.Done()
			}
		}()
	}
	p.pool = pool
	return pool
}

func (p *parRuntime) stopPool() {
	if p.pool != nil {
		close(p.pool.jobs)
		p.pool = nil
	}
}
