package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// traceEv is one dispatched event in a recorded trace: the cycle it fired at
// and the order it was created in (a deterministic identity).
type traceEv struct {
	At Cycle
	ID int
}

// traceSink records its firings and lets the workload exercise the
// allocation-free Sink path (including ScheduleOnShard) alongside closures.
type traceSink struct {
	trace *[]traceEv
}

func (s *traceSink) OnEvent(now Cycle, arg uint64) {
	*s.trace = append(*s.trace, traceEv{At: now, ID: int(arg)})
}

// runRandomWorkload drives one engine configuration through a randomized
// self-scheduling workload — horizon-straddling deltas, cross-shard sink
// schedules, and cancels — and returns the dispatch trace. All randomness
// comes from the seeded rng, and the rng is consumed only inside dispatched
// callbacks; since dispatch order must be identical at every shard count,
// identical traces across configurations are exactly the bit-identical
// dispatch contract.
func runRandomWorkload(t *testing.T, shards int, lookahead Cycle, seed int64, forcePar bool) []traceEv {
	t.Helper()
	e := NewEngine()
	e.ConfigureShards(shards, lookahead)
	if forcePar {
		e.SetParallelHarvestThreshold(0)
	}
	rng := rand.New(rand.NewSource(seed))
	var trace []traceEv
	sink := &traceSink{trace: &trace}
	var pending []Handle
	nextID := 0

	var spawn func(at Cycle, budget int)
	spawn = func(at Cycle, budget int) {
		id := nextID
		nextID++
		h := e.At(at, func(now Cycle) {
			trace = append(trace, traceEv{At: now, ID: id})
			if budget <= 0 {
				return
			}
			for _, choice := range []int{rng.Intn(5), rng.Intn(5)} {
				switch choice {
				case 0, 1: // closure reschedule, possibly past the wheel
					spawn(now+Cycle(rng.Intn(2*wheelSize)), budget-1)
				case 2: // cross-shard sink schedule
					sh := rng.Intn(8) % e.NumShards()
					sid := nextID
					nextID++
					pending = append(pending,
						e.ScheduleOnShard(sh, now+Cycle(rng.Intn(3*int(lookahead)+50)), sink, uint64(sid)))
				case 3: // cancel something scheduled earlier
					if len(pending) > 0 {
						k := rng.Intn(len(pending))
						pending[k].Cancel()
						pending = append(pending[:k], pending[k+1:]...)
					}
				}
			}
		})
		pending = append(pending, h)
	}
	for i := 0; i < 40; i++ {
		spawn(Cycle(rng.Intn(3*wheelSize)), 3)
	}
	e.RunUntil(20 * wheelSize)
	if got, want := e.Now(), Cycle(20*wheelSize); got != want {
		t.Fatalf("shards=%d: Now() = %d after RunUntil(%d)", shards, got, want)
	}
	e.Drain()
	return trace
}

// TestShardedDispatchMatchesSequential is the determinism property test:
// random workloads must produce identical dispatch traces for shards in
// {1, 2, 4, 8} across several lookahead widths.
func TestShardedDispatchMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, lookahead := range []Cycle{1, 42, 900, 3 * wheelSize} {
			want := runRandomWorkload(t, 1, lookahead, seed, false)
			if len(want) == 0 {
				t.Fatalf("seed %d: empty sequential trace", seed)
			}
			for _, shards := range []int{2, 4, 8} {
				got := runRandomWorkload(t, shards, lookahead, seed, false)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d lookahead %d: shards=%d trace diverges from sequential (len %d vs %d)",
						seed, lookahead, shards, len(got), len(want))
				}
			}
		}
	}
}

// TestForcedParallelHarvestMatchesSequential drives every epoch through the
// worker pool (threshold 0), so under -race this exercises the cross-shard
// handoffs with the detector watching.
func TestForcedParallelHarvestMatchesSequential(t *testing.T) {
	for seed := int64(7); seed <= 9; seed++ {
		want := runRandomWorkload(t, 1, 64, seed, false)
		for _, shards := range []int{2, 8} {
			got := runRandomWorkload(t, shards, 64, seed, true)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: forced-parallel shards=%d trace diverges", seed, shards)
			}
		}
	}
}

// TestDegenerateLookaheadFallsBackSequential: zero lookahead (and shard
// counts <= 1) must select the sequential path outright.
func TestDegenerateLookaheadFallsBackSequential(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(4, 0)
	if e.par != nil || e.NumShards() != 1 || e.Lookahead() != 0 {
		t.Fatalf("zero lookahead did not fall back: shards=%d", e.NumShards())
	}
	e.ConfigureShards(1, 100)
	if e.par != nil || e.NumShards() != 1 {
		t.Fatalf("shards=1 did not fall back")
	}
	e.ConfigureShards(0, 100)
	if e.par != nil {
		t.Fatalf("shards=0 did not fall back")
	}
	// The sequential fallback must still run (and Step must work).
	fired := false
	e.At(10, func(Cycle) { fired = true })
	if !e.Step() || !fired {
		t.Fatal("fallback engine did not dispatch")
	}
}

// TestCancelDuringEpochCrossShard cancels cross-shard events from a callback
// in the same epoch: one already harvested into the merge heap (same-cycle)
// and one parked in a mailbox beyond the horizon. Neither may fire, and the
// queue must still drain completely.
func TestCancelDuringEpochCrossShard(t *testing.T) {
	e := NewEngine()
	const lookahead = 100
	e.ConfigureShards(4, lookahead)
	var fired []string
	var hInEpoch, hMailbox Handle
	e.SetShard(0)
	e.At(50, func(now Cycle) {
		// Schedule onto other shards first, then cancel both: the in-epoch
		// one is already in the merge heap, the far one sits in shard 2's
		// mailbox.
		hInEpoch = e.ScheduleOnShard(1, now+10, eventFunc(func(Cycle) { fired = append(fired, "in-epoch") }), 0)
		hMailbox = e.ScheduleOnShard(2, now+10*lookahead, eventFunc(func(Cycle) { fired = append(fired, "mailbox") }), 0)
		e.ScheduleOnShard(3, now+20, eventFunc(func(Cycle) { fired = append(fired, "keep-near") }), 0)
		e.ScheduleOnShard(2, now+12*lookahead, eventFunc(func(Cycle) { fired = append(fired, "keep-far") }), 0)
		hInEpoch.Cancel()
		hMailbox.Cancel()
	})
	e.Drain()
	if want := []string{"keep-near", "keep-far"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", e.Pending())
	}
}

// eventFunc adapts an Event closure to the Sink interface so cross-shard
// tests can use ScheduleOnShard with closures.
type eventFunc func(now Cycle)

func (f eventFunc) OnEvent(now Cycle, _ uint64) { f(now) }

// TestShardedResetReproduces runs a workload, Resets, and reruns: the engine
// must reproduce the trace exactly (pool/Reset compatibility).
func TestShardedResetReproduces(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(4, 64)
	run := func() []traceEv {
		rng := rand.New(rand.NewSource(3))
		var trace []traceEv
		id := 0
		var spawn func(at Cycle, budget int)
		spawn = func(at Cycle, budget int) {
			my := id
			id++
			e.At(at, func(now Cycle) {
				trace = append(trace, traceEv{At: now, ID: my})
				if budget > 0 {
					spawn(now+Cycle(rng.Intn(wheelSize*2)), budget-1)
				}
			})
		}
		for i := 0; i < 20; i++ {
			spawn(Cycle(rng.Intn(wheelSize)), 4)
		}
		e.Drain()
		return trace
	}
	first := run()
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("Reset left now=%d pending=%d", e.Now(), e.Pending())
	}
	// Same shard geometry: ConfigureShards must keep the slabs.
	e.ConfigureShards(4, 64)
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("trace not reproduced after Reset (len %d vs %d)", len(first), len(second))
	}
}

// TestStepPanicsWhenSharded: Step is a sequential-path primitive.
func TestStepPanicsWhenSharded(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Step on a sharded engine did not panic")
		}
	}()
	e.Step()
}

// TestConfigureShardsRequiresEmptyEngine: shard assignment happens at
// schedule time, so reconfiguration with pending events must refuse.
func TestConfigureShardsRequiresEmptyEngine(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Cycle) {})
	defer func() {
		if recover() == nil {
			t.Fatal("ConfigureShards with pending events did not panic")
		}
	}()
	e.ConfigureShards(2, 10)
}

// TestRunUntilBoundarySharded: events at exactly the limit dispatch; events
// beyond it survive to the next RunUntil, across epoch boundaries.
func TestRunUntilBoundarySharded(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(3, 16)
	var fired []Cycle
	rec := func(now Cycle) { fired = append(fired, now) }
	for _, at := range []Cycle{100, 1000, 1000, 1001, 5000} {
		e.At(at, rec)
	}
	e.RunUntil(1000)
	if want := []Cycle{100, 1000, 1000}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v before limit, want %v", fired, want)
	}
	if e.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", e.Now())
	}
	e.RunUntil(10000)
	if want := []Cycle{100, 1000, 1000, 1001, 5000}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}
