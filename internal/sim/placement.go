package sim

// SharedShard is the shard hosting every shared-domain component: traffic
// generators, the dynamic-DDIO controller, the observability sampler and —
// at cluster scale — the load-balancer front end and fabric bookkeeping. On
// the sequential engine it is the only shard.
const SharedShard = 0

// CoreShard places a simulated core on an engine shard. Shard 0 is reserved
// for the shared domain, so core g (a machine-global index in a standalone
// run, a cluster-global index when several nodes share one engine) lands on
// 1 + g mod (shards-1). With numShards <= 1 everything runs on the
// sequential engine's shard 0.
//
// Placement only decides which timing wheel holds a core's events — dispatch
// order is canonical (cycle, seq) regardless — so any placement is
// bit-identical; this one balances cores evenly and keeps a node's cores
// spread across shards at every cluster size.
func CoreShard(numShards, globalCore int) int {
	if numShards <= 1 {
		return SharedShard
	}
	return 1 + globalCore%(numShards-1)
}
