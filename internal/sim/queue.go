package sim

import "math/bits"

// queue is one hierarchical timing wheel plus its overflow heap and pooled
// node slab: the storage half of an event queue, shared by the sequential
// Engine (which owns exactly one) and every shard of the parallel runtime
// (one wheel per shard). A queue holds no clock of its own — the owner
// passes its notion of "now" into every operation — so the same mechanics
// serve both the engine's global clock and a shard's local epoch clock.
//
// Dead (cancelled) nodes are reclaimed lazily as pops and migrations walk
// over them; compact reclaims them eagerly once they outnumber live ones.
type queue struct {
	nodes []eventNode
	free  int32 // free-list head

	buckets    [wheelSize]bucket
	occ        [wheelWords]uint64 // bit set iff bucket non-empty
	wheelCount int                // nodes resident in buckets (incl. dead)

	overflow []int32 // min-heap by (at, seq): events beyond the wheel

	live int // scheduled, non-cancelled events
	dead int // cancelled events awaiting reclamation
}

// init prepares a zero-value queue for use (bucket links are -1, not 0).
func (q *queue) init() {
	for i := range q.buckets {
		q.buckets[i] = bucket{head: noNode, tail: noNode}
	}
	q.free = noNode
}

// reset returns the queue to its just-initialized observable state while
// retaining the node slab and overflow heap capacity. Every node's
// generation is bumped and its callback cleared, so stale Handles cannot
// cancel recycled events and captured state is released to the GC; the free
// list is rebuilt in slab order so allocation proceeds exactly as in a fresh
// queue.
func (q *queue) reset() {
	for w := 0; w < wheelWords; w++ {
		word := q.occ[w]
		for word != 0 {
			bkt := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			q.buckets[bkt] = bucket{head: noNode, tail: noNode}
		}
		q.occ[w] = 0
	}
	q.free = noNode
	for i := len(q.nodes) - 1; i >= 0; i-- {
		n := &q.nodes[i]
		n.fn, n.sink = nil, nil
		n.dead = false
		n.gen++
		n.next = q.free
		q.free = int32(i)
	}
	q.overflow = q.overflow[:0]
	q.wheelCount = 0
	q.live, q.dead = 0, 0
}

func (q *queue) alloc() int32 {
	if q.free != noNode {
		i := q.free
		q.free = q.nodes[i].next
		return i
	}
	q.nodes = append(q.nodes, eventNode{})
	return int32(len(q.nodes) - 1)
}

// allocSet allocates a node and stamps its event fields without linking it
// into the wheel or overflow heap. The parallel runtime uses it for events
// whose structural insertion is deferred (mailbox records, live-epoch
// entries); the owner links it later with link, or dispatches it directly.
func (q *queue) allocSet(at Cycle, seq uint64, fn Event, sink Sink, arg uint64) int32 {
	i := q.alloc()
	n := &q.nodes[i]
	n.at, n.seq, n.arg = at, seq, arg
	n.fn, n.sink = fn, sink
	n.next, n.dead = noNode, false
	q.live++
	return i
}

// insert allocates, stamps and links an event in one step (the sequential
// engine's schedule path).
func (q *queue) insert(now, at Cycle, seq uint64, fn Event, sink Sink, arg uint64) int32 {
	i := q.allocSet(at, seq, fn, sink, arg)
	q.link(now, i)
	return i
}

// link places an allocated node into the wheel (near future) or the overflow
// heap (beyond the wheel's horizon), judged against the owner's clock.
func (q *queue) link(now Cycle, i int32) {
	if q.nodes[i].at-now < wheelSize {
		q.wheelPush(i, q.nodes[i].at)
	} else {
		q.overflowPush(i)
	}
}

// cancel marks the node dead if the handle is still current, reporting
// whether a live event was actually cancelled.
func (q *queue) cancel(idx int32, gen uint32) bool {
	if idx < 0 || int(idx) >= len(q.nodes) {
		return false
	}
	n := &q.nodes[idx]
	if n.gen != gen || n.dead {
		return false
	}
	n.dead = true
	n.fn, n.sink = nil, nil
	q.live--
	q.dead++
	return true
}

// maybeCompact reclaims cancelled events eagerly once they outnumber live
// ones, bounding the memory a cancel-heavy workload can pin.
func (q *queue) maybeCompact() {
	if q.dead > q.live && q.dead >= compactMin {
		q.compact()
	}
}

// freeNode recycles a node. Bumping the generation invalidates outstanding
// handles; clearing the callbacks releases captured state to the GC.
func (q *queue) freeNode(i int32) {
	n := &q.nodes[i]
	n.fn, n.sink = nil, nil
	n.gen++
	n.next = q.free
	q.free = i
}

// reclaim frees a cancelled node encountered during dispatch or compaction.
func (q *queue) reclaim(i int32) {
	q.dead--
	q.freeNode(i)
}

// wheelPush appends node i to the bucket for cycle at (FIFO order).
func (q *queue) wheelPush(i int32, at Cycle) {
	bkt := int(at) & wheelMask
	b := &q.buckets[bkt]
	if b.head == noNode {
		b.head = i
		q.occ[bkt>>6] |= 1 << (uint(bkt) & 63)
	} else {
		q.nodes[b.tail].next = i
	}
	b.tail = i
	q.wheelCount++
}

// bucketPopHead unlinks and returns the bucket's first node.
func (q *queue) bucketPopHead(bkt int) int32 {
	b := &q.buckets[bkt]
	i := b.head
	b.head = q.nodes[i].next
	if b.head == noNode {
		b.tail = noNode
		q.occ[bkt>>6] &^= 1 << (uint(bkt) & 63)
	}
	q.wheelCount--
	return i
}

// scanBucket finds the occupied bucket closest to the clock. Buckets map
// one-to-one onto the cycles [now, now+wheelSize), so a circular bitmap scan
// starting at now's own bucket visits them in time order.
func (q *queue) scanBucket(now Cycle) (bkt int, dist int, ok bool) {
	s := int(now) & wheelMask
	w0 := s >> 6
	if word := q.occ[w0] & (^uint64(0) << (uint(s) & 63)); word != 0 {
		b := w0<<6 + bits.TrailingZeros64(word)
		return b, b - s, true
	}
	for k := 1; k <= wheelWords; k++ {
		w := (w0 + k) & (wheelWords - 1)
		if q.occ[w] != 0 {
			b := w<<6 + bits.TrailingZeros64(q.occ[w])
			d := b - s
			if d < 0 {
				d += wheelSize
			}
			return b, d, true
		}
	}
	return 0, 0, false
}

// migrate moves overflow events that entered the wheel's horizon into their
// buckets. It must run every time the clock advances, before any callback
// gets a chance to schedule: heap order is (at, seq), and every event a
// callback schedules afterwards has a larger seq, so bucket FIFO order
// equals global (at, seq) order.
func (q *queue) migrate(now Cycle) {
	for len(q.overflow) > 0 {
		top := q.overflow[0]
		n := &q.nodes[top]
		if n.dead {
			q.overflowPop()
			q.reclaim(top)
			continue
		}
		if n.at-now >= wheelSize {
			return
		}
		q.overflowPop()
		n.next = noNode
		q.wheelPush(top, n.at)
	}
}

// pop advances to the next live event at or before limit and unlinks it,
// returning its node index. It reports false when no such event exists; the
// clock is only advanced (through the now pointer) when an event is
// committed for dispatch. The popped node stays allocated — the caller
// dispatches and frees it, or hands it to a merge stage that does.
func (q *queue) pop(now *Cycle, limit Cycle) (int32, bool) {
	for q.live > 0 {
		if q.wheelCount == 0 {
			if len(q.overflow) == 0 {
				return 0, false
			}
			top := q.overflow[0]
			n := &q.nodes[top]
			if n.dead {
				q.overflowPop()
				q.reclaim(top)
				continue
			}
			if n.at > limit {
				return 0, false
			}
			// Jump the clock to the far-future event and pull it (and
			// everything else now in horizon) into the wheel.
			*now = n.at
			q.migrate(*now)
			continue
		}
		bkt, dist, ok := q.scanBucket(*now)
		if !ok {
			// Unreachable: wheelCount > 0 implies an occupancy bit.
			return 0, false
		}
		t := *now + Cycle(dist)
		b := &q.buckets[bkt]
		for b.head != noNode {
			i := b.head
			if q.nodes[i].dead {
				q.bucketPopHead(bkt)
				q.reclaim(i)
				continue
			}
			if t > limit {
				return 0, false
			}
			*now = t
			q.migrate(*now)
			q.bucketPopHead(bkt)
			return i, true
		}
		// Bucket held only cancelled events; rescan.
	}
	return 0, false
}

// peek returns a lower bound on the earliest pending event's cycle: the
// first occupied wheel bucket (which may hold only dead nodes — callers
// tolerate a conservative bound) or the overflow top, whichever is earlier.
func (q *queue) peek(now Cycle) (Cycle, bool) {
	best, found := Cycle(0), false
	if q.wheelCount > 0 {
		if _, dist, ok := q.scanBucket(now); ok {
			best, found = now+Cycle(dist), true
		}
	}
	if len(q.overflow) > 0 {
		if at := q.nodes[q.overflow[0]].at; !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}

// compact reclaims cancelled events eagerly, bounding the memory a
// cancel-heavy workload can pin.
func (q *queue) compact() {
	for w := 0; w < wheelWords; w++ {
		word := q.occ[w]
		for word != 0 {
			bkt := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			q.compactBucket(bkt)
		}
	}
	kept := q.overflow[:0]
	for _, i := range q.overflow {
		if q.nodes[i].dead {
			q.reclaim(i)
		} else {
			kept = append(kept, i)
		}
	}
	q.overflow = kept
	for k := len(kept)/2 - 1; k >= 0; k-- {
		q.siftDown(k)
	}
}

func (q *queue) compactBucket(bkt int) {
	b := &q.buckets[bkt]
	prev := noNode
	for i := b.head; i != noNode; {
		next := q.nodes[i].next
		if q.nodes[i].dead {
			if prev == noNode {
				b.head = next
			} else {
				q.nodes[prev].next = next
			}
			if next == noNode {
				b.tail = prev
			}
			q.wheelCount--
			q.reclaim(i)
		} else {
			prev = i
		}
		i = next
	}
	if b.head == noNode {
		q.occ[bkt>>6] &^= 1 << (uint(bkt) & 63)
	}
}

// Overflow heap: a plain binary min-heap over node indices ordered by
// (at, seq), implemented directly to avoid container/heap's interface
// boxing on the hot path.

func (q *queue) overflowLess(a, b int32) bool {
	na, nb := &q.nodes[a], &q.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

func (q *queue) overflowPush(i int32) {
	q.overflow = append(q.overflow, i)
	c := len(q.overflow) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !q.overflowLess(q.overflow[c], q.overflow[p]) {
			break
		}
		q.overflow[c], q.overflow[p] = q.overflow[p], q.overflow[c]
		c = p
	}
}

func (q *queue) overflowPop() {
	last := len(q.overflow) - 1
	q.overflow[0] = q.overflow[last]
	q.overflow = q.overflow[:last]
	if last > 0 {
		q.siftDown(0)
	}
}

func (q *queue) siftDown(p int) {
	n := len(q.overflow)
	for {
		c := 2*p + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && q.overflowLess(q.overflow[r], q.overflow[c]) {
			c = r
		}
		if !q.overflowLess(q.overflow[c], q.overflow[p]) {
			return
		}
		q.overflow[c], q.overflow[p] = q.overflow[p], q.overflow[c]
		p = c
	}
}
