package sim

import "testing"

// The benchmarks model the engine's real workload: many concurrent
// self-rescheduling chains (cores, generators) with short scheduling deltas,
// plus occasional cancels and far-future events. They are written against
// the public API only, so before/after numbers across engine rewrites are
// directly comparable.

// BenchmarkEngineScheduleDispatch measures pure schedule+dispatch churn:
// one event in flight, rescheduled a short delta ahead each dispatch.
func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick Event
	tick = func(now Cycle) {
		n++
		e.At(now+3, tick)
	}
	e.At(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(n), "events")
}

// BenchmarkEngineChains64 runs 64 interleaved self-rescheduling chains with
// co-prime periods, the shape of a full machine's steady state.
func BenchmarkEngineChains64(b *testing.B) {
	e := NewEngine()
	periods := []Cycle{3, 5, 7, 11, 13, 17, 19, 23}
	ticks := make([]Event, 64)
	for c := 0; c < 64; c++ {
		p := periods[c%len(periods)]
		var tick Event
		tick = func(now Cycle) { e.At(now+p, tick) }
		ticks[c] = tick
		e.At(Cycle(c), tick)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineCancelChurn measures schedule+cancel pairs: half the
// scheduled events are cancelled before they fire, exercising dead-event
// handling.
func BenchmarkEngineCancelChurn(b *testing.B) {
	e := NewEngine()
	nop := Event(func(Cycle) {})
	var live Event
	live = func(now Cycle) {
		h := e.At(now+4, nop)
		h.Cancel()
		e.At(now+2, live)
	}
	e.At(0, live)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineFarFuture mixes short deltas with far-future events
// (refresh-interval scale), exercising the long-horizon path.
func BenchmarkEngineFarFuture(b *testing.B) {
	e := NewEngine()
	nop := Event(func(Cycle) {})
	var tick Event
	tick = func(now Cycle) {
		if now%16 == 0 {
			e.At(now+25_000, nop)
		}
		e.At(now+4, tick)
	}
	e.At(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
