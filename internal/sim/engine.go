// Package sim provides the discrete-event simulation engine used by every
// other subsystem: a cycle-granular clock and a deterministic event queue.
//
// Components schedule callbacks at absolute cycle times; the engine
// dispatches them in time order, breaking ties by insertion order so that
// runs are fully reproducible.
//
// # Internals
//
// The queue is a hierarchical timing wheel sized for the simulator's
// scheduling horizon: almost every delta is short (DRAM timings, NoC hops,
// poll gaps are tens to thousands of cycles), so events within wheelSize
// cycles of the clock live in a bucket-per-cycle wheel with O(1) insert and
// a bitmap-guided scan to the next occupied bucket. The rare far-future
// events (refresh intervals, low-rate Poisson gaps) sit in a small binary
// min-heap keyed by (cycle, sequence) and migrate into the wheel as the
// clock approaches them.
//
// Event nodes are pooled: they live in one growable slab, are addressed by
// index, and recycle through a free list, so steady-state scheduling and
// dispatch perform no heap allocations. Handles carry a generation counter
// to make Cancel on an already-fired (and recycled) event a safe no-op.
package sim

import "math/bits"

const (
	wheelBits  = 13
	wheelSize  = 1 << wheelBits // cycles of near-future horizon
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64

	// compactMin bounds how small a queue bothers compacting dead events.
	compactMin = 1024
)

const noNode = int32(-1)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle = uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func(now Cycle)

// Sink is the allocation-free callback form: components implement OnEvent
// once and schedule themselves with Engine.Schedule, passing an arg that
// selects the action. Unlike closures, a Sink scheduling itself repeatedly
// costs zero heap allocations.
type Sink interface {
	OnEvent(now Cycle, arg uint64)
}

// eventNode is one pooled queue entry. Nodes are addressed by slab index;
// next links them into a bucket's FIFO list or the free list.
type eventNode struct {
	at   Cycle
	seq  uint64
	arg  uint64
	fn   Event
	sink Sink
	next int32
	gen  uint32
	dead bool
}

type bucket struct{ head, tail int32 }

// Handle identifies a scheduled event so that it can be cancelled.
type Handle struct {
	e   *Engine
	idx int32
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The callback and its captured state
// are released immediately.
func (h Handle) Cancel() {
	if h.e == nil {
		return
	}
	e := h.e
	n := &e.nodes[h.idx]
	if n.gen != h.gen || n.dead {
		return
	}
	n.dead = true
	n.fn, n.sink = nil, nil
	e.live--
	e.dead++
	if e.dead > e.live && e.dead >= compactMin {
		e.compact()
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now Cycle
	seq uint64

	nodes []eventNode
	free  int32 // free-list head

	buckets    [wheelSize]bucket
	occ        [wheelWords]uint64 // bit set iff bucket non-empty
	wheelCount int                // nodes resident in buckets (incl. dead)

	overflow []int32 // min-heap by (at, seq): events beyond the wheel

	live int // scheduled, non-cancelled events
	dead int // cancelled events awaiting reclamation
}

// NewEngine returns an engine with the clock at cycle zero and no pending
// events.
func NewEngine() *Engine {
	e := &Engine{free: noNode}
	for i := range e.buckets {
		e.buckets[i] = bucket{head: noNode, tail: noNode}
	}
	return e
}

// Reset returns the engine to its just-constructed observable state — clock
// at zero, no pending events — while retaining the node slab and overflow
// heap capacity. Every node's generation is bumped and its callback cleared,
// so Handles from before the Reset cannot cancel recycled events and
// captured state is released to the GC; the free list is rebuilt in slab
// order so allocation proceeds exactly as in a fresh engine.
func (e *Engine) Reset() {
	for w := 0; w < wheelWords; w++ {
		word := e.occ[w]
		for word != 0 {
			bkt := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			e.buckets[bkt] = bucket{head: noNode, tail: noNode}
		}
		e.occ[w] = 0
	}
	e.free = noNode
	for i := len(e.nodes) - 1; i >= 0; i-- {
		n := &e.nodes[i]
		n.fn, n.sink = nil, nil
		n.dead = false
		n.gen++
		n.next = e.free
		e.free = int32(i)
	}
	e.overflow = e.overflow[:0]
	e.wheelCount = 0
	e.now, e.seq = 0, 0
	e.live, e.dead = 0, 0
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int { return e.live }

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// (at < Now) clamps to the current cycle: the event runs before the clock
// advances further.
func (e *Engine) At(at Cycle, fn Event) Handle {
	return e.schedule(at, fn, nil, 0)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) Handle {
	return e.schedule(e.now+delay, fn, nil, 0)
}

// Schedule schedules s.OnEvent(at, arg) at the absolute cycle at. This is
// the allocation-free path: no closure is created, and the event node comes
// from the engine's pool.
func (e *Engine) Schedule(at Cycle, s Sink, arg uint64) Handle {
	return e.schedule(at, nil, s, arg)
}

// ScheduleAfter schedules s.OnEvent delay cycles from now.
func (e *Engine) ScheduleAfter(delay Cycle, s Sink, arg uint64) Handle {
	return e.schedule(e.now+delay, nil, s, arg)
}

func (e *Engine) schedule(at Cycle, fn Event, sink Sink, arg uint64) Handle {
	if at < e.now {
		at = e.now
	}
	i := e.alloc()
	n := &e.nodes[i]
	n.at, n.seq, n.arg = at, e.seq, arg
	n.fn, n.sink = fn, sink
	n.next, n.dead = noNode, false
	e.seq++
	e.live++
	if at-e.now < wheelSize {
		e.wheelPush(i, at)
	} else {
		e.overflowPush(i)
	}
	return Handle{e: e, idx: i, gen: n.gen}
}

func (e *Engine) alloc() int32 {
	if e.free != noNode {
		i := e.free
		e.free = e.nodes[i].next
		return i
	}
	e.nodes = append(e.nodes, eventNode{})
	return int32(len(e.nodes) - 1)
}

// freeNode recycles a node. Bumping the generation invalidates outstanding
// handles; clearing the callbacks releases captured state to the GC.
func (e *Engine) freeNode(i int32) {
	n := &e.nodes[i]
	n.fn, n.sink = nil, nil
	n.gen++
	n.next = e.free
	e.free = i
}

// reclaim frees a cancelled node encountered during dispatch or compaction.
func (e *Engine) reclaim(i int32) {
	e.dead--
	e.freeNode(i)
}

// wheelPush appends node i to the bucket for cycle at (FIFO order).
func (e *Engine) wheelPush(i int32, at Cycle) {
	bkt := int(at) & wheelMask
	b := &e.buckets[bkt]
	if b.head == noNode {
		b.head = i
		e.occ[bkt>>6] |= 1 << (uint(bkt) & 63)
	} else {
		e.nodes[b.tail].next = i
	}
	b.tail = i
	e.wheelCount++
}

// bucketPopHead unlinks and returns the bucket's first node.
func (e *Engine) bucketPopHead(bkt int) int32 {
	b := &e.buckets[bkt]
	i := b.head
	b.head = e.nodes[i].next
	if b.head == noNode {
		b.tail = noNode
		e.occ[bkt>>6] &^= 1 << (uint(bkt) & 63)
	}
	e.wheelCount--
	return i
}

// scanBucket finds the occupied bucket closest to the clock. Buckets map
// one-to-one onto the cycles [now, now+wheelSize), so a circular bitmap scan
// starting at now's own bucket visits them in time order.
func (e *Engine) scanBucket() (bkt int, dist int, ok bool) {
	s := int(e.now) & wheelMask
	w0 := s >> 6
	if word := e.occ[w0] & (^uint64(0) << (uint(s) & 63)); word != 0 {
		b := w0<<6 + bits.TrailingZeros64(word)
		return b, b - s, true
	}
	for k := 1; k <= wheelWords; k++ {
		w := (w0 + k) & (wheelWords - 1)
		if e.occ[w] != 0 {
			b := w<<6 + bits.TrailingZeros64(e.occ[w])
			d := b - s
			if d < 0 {
				d += wheelSize
			}
			return b, d, true
		}
	}
	return 0, 0, false
}

// migrate moves overflow events that entered the wheel's horizon into their
// buckets. It must run every time the clock advances, before any callback
// gets a chance to schedule: heap order is (at, seq), and every event a
// callback schedules afterwards has a larger seq, so bucket FIFO order
// equals global (at, seq) order.
func (e *Engine) migrate() {
	for len(e.overflow) > 0 {
		top := e.overflow[0]
		n := &e.nodes[top]
		if n.dead {
			e.overflowPop()
			e.reclaim(top)
			continue
		}
		if n.at-e.now >= wheelSize {
			return
		}
		e.overflowPop()
		n.next = noNode
		e.wheelPush(top, n.at)
	}
}

// pop advances to the next live event at or before limit and unlinks it,
// returning its node index. It reports false when no such event exists; the
// clock is only advanced when an event is committed for dispatch.
func (e *Engine) pop(limit Cycle) (int32, bool) {
	for e.live > 0 {
		if e.wheelCount == 0 {
			if len(e.overflow) == 0 {
				return 0, false
			}
			top := e.overflow[0]
			n := &e.nodes[top]
			if n.dead {
				e.overflowPop()
				e.reclaim(top)
				continue
			}
			if n.at > limit {
				return 0, false
			}
			// Jump the clock to the far-future event and pull it (and
			// everything else now in horizon) into the wheel.
			e.now = n.at
			e.migrate()
			continue
		}
		bkt, dist, ok := e.scanBucket()
		if !ok {
			// Unreachable: wheelCount > 0 implies an occupancy bit.
			return 0, false
		}
		t := e.now + Cycle(dist)
		b := &e.buckets[bkt]
		for b.head != noNode {
			i := b.head
			if e.nodes[i].dead {
				e.bucketPopHead(bkt)
				e.reclaim(i)
				continue
			}
			if t > limit {
				return 0, false
			}
			e.now = t
			e.migrate()
			e.bucketPopHead(bkt)
			return i, true
		}
		// Bucket held only cancelled events; rescan.
	}
	return 0, false
}

// dispatch fires node i's callback at the current cycle. The node is
// recycled first so a callback rescheduling itself reuses it without
// touching the allocator.
func (e *Engine) dispatch(i int32) {
	n := &e.nodes[i]
	fn, sink, arg := n.fn, n.sink, n.arg
	e.live--
	e.freeNode(i)
	if sink != nil {
		sink.OnEvent(e.now, arg)
		return
	}
	fn(e.now)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	i, ok := e.pop(^Cycle(0))
	if !ok {
		return false
	}
	e.dispatch(i)
	return true
}

// RunUntil dispatches events in order until the queue is empty or the next
// event lies strictly beyond limit. The clock finishes at min(limit, time of
// last dispatched event); events at exactly limit are dispatched.
func (e *Engine) RunUntil(limit Cycle) {
	for {
		i, ok := e.pop(limit)
		if !ok {
			break
		}
		e.dispatch(i)
	}
	if e.now < limit {
		e.now = limit
	}
}

// Drain dispatches every remaining event. Use only in tests or teardown:
// components that perpetually reschedule themselves will never drain.
func (e *Engine) Drain() {
	for e.Step() {
	}
}

// compact reclaims cancelled events eagerly once they outnumber live ones,
// bounding the memory a cancel-heavy workload can pin.
func (e *Engine) compact() {
	for w := 0; w < wheelWords; w++ {
		word := e.occ[w]
		for word != 0 {
			bkt := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			e.compactBucket(bkt)
		}
	}
	kept := e.overflow[:0]
	for _, i := range e.overflow {
		if e.nodes[i].dead {
			e.reclaim(i)
		} else {
			kept = append(kept, i)
		}
	}
	e.overflow = kept
	for k := len(kept)/2 - 1; k >= 0; k-- {
		e.siftDown(k)
	}
}

func (e *Engine) compactBucket(bkt int) {
	b := &e.buckets[bkt]
	prev := noNode
	for i := b.head; i != noNode; {
		next := e.nodes[i].next
		if e.nodes[i].dead {
			if prev == noNode {
				b.head = next
			} else {
				e.nodes[prev].next = next
			}
			if next == noNode {
				b.tail = prev
			}
			e.wheelCount--
			e.reclaim(i)
		} else {
			prev = i
		}
		i = next
	}
	if b.head == noNode {
		e.occ[bkt>>6] &^= 1 << (uint(bkt) & 63)
	}
}

// Overflow heap: a plain binary min-heap over node indices ordered by
// (at, seq), implemented directly to avoid container/heap's interface
// boxing on the hot path.

func (e *Engine) overflowLess(a, b int32) bool {
	na, nb := &e.nodes[a], &e.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

func (e *Engine) overflowPush(i int32) {
	e.overflow = append(e.overflow, i)
	c := len(e.overflow) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !e.overflowLess(e.overflow[c], e.overflow[p]) {
			break
		}
		e.overflow[c], e.overflow[p] = e.overflow[p], e.overflow[c]
		c = p
	}
}

func (e *Engine) overflowPop() {
	last := len(e.overflow) - 1
	e.overflow[0] = e.overflow[last]
	e.overflow = e.overflow[:last]
	if last > 0 {
		e.siftDown(0)
	}
}

func (e *Engine) siftDown(p int) {
	n := len(e.overflow)
	for {
		c := 2*p + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && e.overflowLess(e.overflow[r], e.overflow[c]) {
			c = r
		}
		if !e.overflowLess(e.overflow[c], e.overflow[p]) {
			return
		}
		e.overflow[c], e.overflow[p] = e.overflow[p], e.overflow[c]
		p = c
	}
}
