// Package sim provides the discrete-event simulation engine used by every
// other subsystem: a cycle-granular clock and a deterministic event queue.
//
// The engine is intentionally minimal. Components schedule callbacks at
// absolute cycle times; the engine dispatches them in time order, breaking
// ties by insertion order so that runs are fully reproducible.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle = uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func(now Cycle)

type queuedEvent struct {
	at   Cycle
	seq  uint64
	fn   Event
	idx  int
	dead bool
}

// Handle identifies a scheduled event so that it can be cancelled.
type Handle struct{ ev *queuedEvent }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

type eventHeap []*queuedEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*queuedEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine with the clock at cycle zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// (at < Now) clamps to the current cycle: the event runs before the clock
// advances further.
func (e *Engine) At(at Cycle, fn Event) Handle {
	if at < e.now {
		at = e.now
	}
	ev := &queuedEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev: ev}
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) Handle {
	return e.At(e.now+delay, fn)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*queuedEvent)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn(e.now)
		return true
	}
	return false
}

// RunUntil dispatches events in order until the queue is empty or the next
// event lies strictly beyond limit. The clock finishes at min(limit, time of
// last dispatched event); events at exactly limit are dispatched.
func (e *Engine) RunUntil(limit Cycle) {
	for len(e.events) > 0 {
		// Peek.
		ev := e.events[0]
		if ev.dead {
			heap.Pop(&e.events)
			continue
		}
		if ev.at > limit {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn(e.now)
	}
	if e.now < limit {
		e.now = limit
	}
}

// Drain dispatches every remaining event. Use only in tests or teardown:
// components that perpetually reschedule themselves will never drain.
func (e *Engine) Drain() {
	for e.Step() {
	}
}
