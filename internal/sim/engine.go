// Package sim provides the discrete-event simulation engine used by every
// other subsystem: a cycle-granular clock and a deterministic event queue.
//
// Components schedule callbacks at absolute cycle times; the engine
// dispatches them in time order, breaking ties by insertion order so that
// runs are fully reproducible.
//
// # Internals
//
// The queue is a hierarchical timing wheel sized for the simulator's
// scheduling horizon: almost every delta is short (DRAM timings, NoC hops,
// poll gaps are tens to thousands of cycles), so events within wheelSize
// cycles of the clock live in a bucket-per-cycle wheel with O(1) insert and
// a bitmap-guided scan to the next occupied bucket. The rare far-future
// events (refresh intervals, low-rate Poisson gaps) sit in a small binary
// min-heap keyed by (cycle, sequence) and migrate into the wheel as the
// clock approaches them. The wheel mechanics live in the queue type
// (queue.go) so the sequential engine and every shard of the parallel
// runtime (parallel.go) share one implementation.
//
// Event nodes are pooled: they live in one growable slab, are addressed by
// index, and recycle through a free list, so steady-state scheduling and
// dispatch perform no heap allocations. Handles carry a generation counter
// to make Cancel on an already-fired (and recycled) event a safe no-op.
//
// # Sharded operation
//
// ConfigureShards partitions the engine into per-shard timing wheels
// synchronized by conservative epochs (see parallel.go). The dispatch
// sequence is bit-identical to the sequential engine at every shard count:
// sequence numbers are assigned by the single-threaded coordinator and
// events are merged in canonical (at, seq) order, never goroutine arrival
// order.
package sim

const (
	wheelBits  = 13
	wheelSize  = 1 << wheelBits // cycles of near-future horizon
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64

	// compactMin bounds how small a queue bothers compacting dead events.
	compactMin = 1024
)

const (
	noNode   = int32(-1)
	maxCycle = ^Cycle(0)
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle = uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func(now Cycle)

// Sink is the allocation-free callback form: components implement OnEvent
// once and schedule themselves with Engine.Schedule, passing an arg that
// selects the action. Unlike closures, a Sink scheduling itself repeatedly
// costs zero heap allocations.
type Sink interface {
	OnEvent(now Cycle, arg uint64)
}

// eventNode is one pooled queue entry. Nodes are addressed by slab index;
// next links them into a bucket's FIFO list or the free list.
type eventNode struct {
	at   Cycle
	seq  uint64
	arg  uint64
	fn   Event
	sink Sink
	next int32
	gen  uint32
	dead bool
}

type bucket struct{ head, tail int32 }

// Handle identifies a scheduled event so that it can be cancelled.
type Handle struct {
	e     *Engine
	idx   int32
	gen   uint32
	shard int32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The callback and its captured state
// are released immediately.
func (h Handle) Cancel() {
	if h.e == nil {
		return
	}
	q := h.e.queueFor(h.shard)
	if q.cancel(h.idx, h.gen) {
		q.maybeCompact()
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now Cycle
	seq uint64

	q queue // the sequential event queue (unused while sharded)

	// par is the sharded runtime; nil selects the sequential path.
	par *parRuntime

	// parMin is the minimum events harvested last epoch before shard
	// harvests engage the worker pool instead of running inline.
	parMin int
}

// NewEngine returns an engine with the clock at cycle zero and no pending
// events.
func NewEngine() *Engine {
	e := &Engine{parMin: defaultParMin}
	e.q.init()
	return e
}

// queueFor resolves a Handle's shard to the queue holding its node.
func (e *Engine) queueFor(shard int32) *queue {
	if e.par == nil {
		return &e.q
	}
	return &e.par.shards[shard].q
}

// Reset returns the engine to its just-constructed observable state — clock
// at zero, no pending events — while retaining the node slabs and heap
// capacity (of every shard, when sharded). Every node's generation is bumped
// and its callback cleared, so Handles from before the Reset cannot cancel
// recycled events and captured state is released to the GC; free lists are
// rebuilt in slab order so allocation proceeds exactly as in a fresh engine.
// The shard configuration itself is retained; ConfigureShards changes it.
func (e *Engine) Reset() {
	e.q.reset()
	e.now, e.seq = 0, 0
	if e.par != nil {
		e.par.reset()
	}
}

// ConfigureShards partitions the engine into n per-shard timing wheels
// advanced by conservative epochs of the given lookahead (see parallel.go),
// or restores the sequential path when n <= 1 or the lookahead is zero
// (degenerate lookahead would make every epoch a single cycle, so it falls
// back to sequential dispatch outright). Dispatch order is bit-identical to
// the sequential engine in either case.
//
// The engine must be empty (no pending events): shard assignment happens at
// schedule time, so events scheduled before reconfiguration would be
// stranded. Machines configure shards before wiring any components.
func (e *Engine) ConfigureShards(n int, lookahead Cycle) {
	if e.Pending() != 0 {
		panic("sim: ConfigureShards requires an empty engine")
	}
	if n <= 1 || lookahead == 0 {
		e.par = nil
		return
	}
	if n > maxShards {
		n = maxShards
	}
	if e.par != nil && len(e.par.shards) == n {
		// Same geometry: keep the shard slabs (they were reset with the
		// engine) and just adopt the new epoch width.
		e.par.lookahead = lookahead
		return
	}
	e.par = newParRuntime(n, lookahead)
}

// NumShards reports the configured shard count (1 on the sequential path).
func (e *Engine) NumShards() int {
	if e.par == nil {
		return 1
	}
	return len(e.par.shards)
}

// Lookahead reports the conservative epoch width in cycles (0 on the
// sequential path).
func (e *Engine) Lookahead() Cycle {
	if e.par == nil {
		return 0
	}
	return e.par.lookahead
}

// SetShard selects the shard that receives events scheduled from outside a
// callback (component setup, between RunUntil calls). During dispatch the
// context is the firing event's own shard, so callbacks inherit placement
// automatically; ScheduleOnShard overrides it per event. No-op on the
// sequential path.
func (e *Engine) SetShard(s int) {
	if e.par == nil {
		return
	}
	if s < 0 || s >= len(e.par.shards) {
		panic("sim: SetShard out of range")
	}
	e.par.setupShard = s
	if !e.par.inEpoch {
		e.par.ctxShard = s
	}
}

// CurrentShard reports the shard that would receive an event scheduled right
// now: the firing event's shard during dispatch, the SetShard selection
// otherwise. Always 0 on the sequential path.
func (e *Engine) CurrentShard() int {
	if e.par == nil {
		return 0
	}
	return e.par.ctxShard
}

// SetParallelHarvestThreshold sets the minimum number of events harvested in
// the previous epoch before shard harvests run on the worker pool instead of
// inline on the coordinator. Zero forces the pool on every epoch (used by
// race tests); the default avoids paying barrier latency on small epochs.
func (e *Engine) SetParallelHarvestThreshold(n int) {
	e.parMin = n
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	if e.par == nil {
		return e.q.live
	}
	total := 0
	for i := range e.par.shards {
		total += e.par.shards[i].q.live
	}
	return total
}

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// (at < Now) clamps to the current cycle: the event runs before the clock
// advances further.
func (e *Engine) At(at Cycle, fn Event) Handle {
	return e.schedule(at, fn, nil, 0)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) Handle {
	return e.schedule(e.now+delay, fn, nil, 0)
}

// Schedule schedules s.OnEvent(at, arg) at the absolute cycle at. This is
// the allocation-free path: no closure is created, and the event node comes
// from the engine's pool.
func (e *Engine) Schedule(at Cycle, s Sink, arg uint64) Handle {
	return e.schedule(at, nil, s, arg)
}

// ScheduleAfter schedules s.OnEvent delay cycles from now.
func (e *Engine) ScheduleAfter(delay Cycle, s Sink, arg uint64) Handle {
	return e.schedule(e.now+delay, nil, s, arg)
}

// ScheduleOnShard schedules s.OnEvent(at, arg) with explicit shard affinity,
// overriding the ambient context. Cross-domain wakes (the NIC delivering to
// a core) use it so the event lives on its consumer's wheel. Equivalent to
// Schedule on the sequential path; shard affinity never changes dispatch
// order, only which wheel holds the event.
func (e *Engine) ScheduleOnShard(shard int, at Cycle, s Sink, arg uint64) Handle {
	if e.par == nil {
		return e.schedule(at, nil, s, arg)
	}
	if shard < 0 || shard >= len(e.par.shards) {
		panic("sim: ScheduleOnShard out of range")
	}
	if at < e.now {
		at = e.now
	}
	seq := e.seq
	e.seq++
	return e.par.place(e, shard, at, seq, nil, s, arg)
}

func (e *Engine) schedule(at Cycle, fn Event, sink Sink, arg uint64) Handle {
	if at < e.now {
		at = e.now
	}
	seq := e.seq
	e.seq++
	if e.par != nil {
		return e.par.place(e, e.par.ctxShard, at, seq, fn, sink, arg)
	}
	i := e.q.insert(e.now, at, seq, fn, sink, arg)
	return Handle{e: e, idx: i, gen: e.q.nodes[i].gen}
}

// dispatch fires node i's callback at the current cycle. The node is
// recycled first so a callback rescheduling itself reuses it without
// touching the allocator.
func (e *Engine) dispatch(i int32) {
	n := &e.q.nodes[i]
	fn, sink, arg := n.fn, n.sink, n.arg
	e.q.live--
	e.q.freeNode(i)
	if sink != nil {
		sink.OnEvent(e.now, arg)
		return
	}
	fn(e.now)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain. Step is a
// sequential-path primitive; sharded engines advance by epochs, so Step
// panics when shards are configured — use RunUntil or Drain.
func (e *Engine) Step() bool {
	if e.par != nil {
		panic("sim: Step is unsupported with shards configured; use RunUntil")
	}
	i, ok := e.q.pop(&e.now, maxCycle)
	if !ok {
		return false
	}
	e.dispatch(i)
	return true
}

// RunUntil dispatches events in order until the queue is empty or the next
// event lies strictly beyond limit. The clock finishes at min(limit, time of
// last dispatched event); events at exactly limit are dispatched.
func (e *Engine) RunUntil(limit Cycle) {
	if e.par != nil {
		e.par.runUntil(e, limit)
	} else {
		for {
			i, ok := e.q.pop(&e.now, limit)
			if !ok {
				break
			}
			e.dispatch(i)
		}
	}
	if e.now < limit {
		e.now = limit
	}
}

// Drain dispatches every remaining event. Use only in tests or teardown:
// components that perpetually reschedule themselves will never drain.
func (e *Engine) Drain() {
	if e.par != nil {
		e.par.runUntil(e, maxCycle)
		return
	}
	for {
		i, ok := e.q.pop(&e.now, maxCycle)
		if !ok {
			return
		}
		e.dispatch(i)
	}
}
