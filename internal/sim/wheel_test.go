package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// These tests target the timing-wheel internals through the public API:
// ordering across the wheel/overflow boundary, cancellation during dispatch,
// pool recycling, and the zero-allocation guarantee of the steady state.

// TestSameCycleFIFOAcrossHorizons schedules events for one target cycle from
// three horizons — overflow (beyond the wheel), wheel-direct, and same-cycle
// from a callback — and requires global insertion order to survive
// migration.
func TestSameCycleFIFOAcrossHorizons(t *testing.T) {
	e := NewEngine()
	const target = wheelSize * 3 / 2 // beyond the wheel at schedule time
	var order []int
	rec := func(i int) Event {
		return func(Cycle) { order = append(order, i) }
	}
	e.At(target, rec(0)) // lands in overflow
	e.At(target, rec(1)) // also overflow; must stay behind 0
	// An intermediate event inside the wheel whose callback schedules for
	// the same target cycle after the overflow entries migrated.
	e.At(wheelSize-1, func(Cycle) { e.At(target, rec(2)) })
	e.Drain()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("FIFO across horizons violated: order = %v", order)
	}
}

// TestFarFutureJump verifies the clock jumps straight to a lone far-future
// event instead of idling through empty wheel revolutions.
func TestFarFutureJump(t *testing.T) {
	e := NewEngine()
	var fired Cycle
	e.At(10*wheelSize+7, func(now Cycle) { fired = now })
	if !e.Step() {
		t.Fatal("Step found no event")
	}
	if fired != 10*wheelSize+7 || e.Now() != fired {
		t.Fatalf("fired at %d, Now %d", fired, e.Now())
	}
}

// TestCancelDuringDispatch cancels events from inside a callback running at
// the same cycle and at an earlier cycle; neither may fire.
func TestCancelDuringDispatch(t *testing.T) {
	e := NewEngine()
	var fired []string
	var hSame, hLater, hFar Handle
	e.At(100, func(Cycle) {
		hSame.Cancel()
		hLater.Cancel()
		hFar.Cancel()
	})
	hSame = e.At(100, func(Cycle) { fired = append(fired, "same") })
	hLater = e.At(150, func(Cycle) { fired = append(fired, "later") })
	hFar = e.At(wheelSize*2, func(Cycle) { fired = append(fired, "far") })
	e.At(200, func(Cycle) { fired = append(fired, "keep") })
	e.Drain()
	if len(fired) != 1 || fired[0] != "keep" {
		t.Fatalf("fired = %v, want [keep]", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", e.Pending())
	}
}

// TestCancelOwnHandleAfterFiring: a callback cancelling its own (already
// recycled) handle must not disturb whatever event reuses the node.
func TestCancelOwnHandleAfterFiring(t *testing.T) {
	e := NewEngine()
	var h Handle
	n := 0
	h = e.At(10, func(Cycle) {
		h.Cancel() // self, already fired: no-op even after recycling
		e.At(20, func(Cycle) { n++ })
		h.Cancel() // might now name the reused node; still a no-op
	})
	e.Drain()
	if n != 1 {
		t.Fatalf("follow-up event fired %d times, want 1", n)
	}
}

// TestPendingCounter tracks the live-event count through schedule, cancel
// and dispatch.
func TestPendingCounter(t *testing.T) {
	e := NewEngine()
	nop := Event(func(Cycle) {})
	hs := make([]Handle, 10)
	for i := range hs {
		hs[i] = e.At(Cycle(100+i), nop)
	}
	e.At(wheelSize*4, nop) // overflow resident
	if e.Pending() != 11 {
		t.Fatalf("Pending() = %d, want 11", e.Pending())
	}
	hs[3].Cancel()
	hs[3].Cancel() // double-cancel must not double-count
	if e.Pending() != 10 {
		t.Fatalf("Pending() after cancel = %d, want 10", e.Pending())
	}
	e.Step()
	if e.Pending() != 9 {
		t.Fatalf("Pending() after dispatch = %d, want 9", e.Pending())
	}
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("Pending() after drain = %d, want 0", e.Pending())
	}
}

// TestCancelledEventsReclaimed verifies cancel-heavy workloads recycle nodes
// instead of accumulating dead entries until dispatch reaches them.
func TestCancelledEventsReclaimed(t *testing.T) {
	e := NewEngine()
	nop := Event(func(Cycle) {})
	// One live far-future anchor keeps the queue non-empty.
	e.At(wheelSize*8, nop)
	for i := 0; i < 10*compactMin; i++ {
		h := e.At(Cycle(200+i%512), nop)
		h.Cancel()
	}
	if e.q.dead >= compactMin {
		t.Fatalf("dead events not compacted: %d retained", e.q.dead)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	if got := len(e.q.nodes); got > 4*compactMin {
		t.Fatalf("node slab grew to %d entries despite compaction", got)
	}
	e.Drain()
	if e.Now() != wheelSize*8 {
		t.Fatalf("anchor fired at %d", e.Now())
	}
}

// TestZeroAllocSteadyState asserts the tentpole guarantee: once the pool is
// warm, scheduling and dispatching events allocates nothing — for the
// closure form with a pre-built callback, and for the Sink form.
func TestZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	var tick Event
	tick = func(now Cycle) { e.At(now+5, tick) }
	e.At(0, tick)
	e.Step() // warm the pool
	if avg := testing.AllocsPerRun(1000, func() { e.Step() }); avg != 0 {
		t.Fatalf("closure steady state: %.2f allocs/op, want 0", avg)
	}

	s := &countingSink{e: e}
	e.Schedule(e.Now()+1, s, 7)
	e.Step()
	if avg := testing.AllocsPerRun(1000, func() { e.Step() }); avg != 0 {
		t.Fatalf("sink steady state: %.2f allocs/op, want 0", avg)
	}
	if s.n == 0 || s.lastArg != 7 {
		t.Fatalf("sink not driven: n=%d arg=%d", s.n, s.lastArg)
	}
}

type countingSink struct {
	e       *Engine
	n       int
	lastArg uint64
}

func (s *countingSink) OnEvent(now Cycle, arg uint64) {
	s.n++
	s.lastArg = arg
	s.e.Schedule(now+3, s, arg)
}

// refEngine is a naive reference model: a slice kept in (at, seq) order.
type refEngine struct {
	seq  uint64
	evs  []refEvent
	now  Cycle
	gone map[uint64]bool
}

type refEvent struct {
	at  Cycle
	seq uint64
}

func (r *refEngine) schedule(at Cycle) uint64 {
	if at < r.now {
		at = r.now
	}
	s := r.seq
	r.seq++
	r.evs = append(r.evs, refEvent{at: at, seq: s})
	return s
}

func (r *refEngine) next() (refEvent, bool) {
	best := -1
	for i, ev := range r.evs {
		if r.gone[ev.seq] {
			continue
		}
		if best < 0 || ev.at < r.evs[best].at ||
			(ev.at == r.evs[best].at && ev.seq < r.evs[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return refEvent{}, false
	}
	ev := r.evs[best]
	r.evs = append(r.evs[:best], r.evs[best+1:]...)
	r.now = ev.at
	return ev, true
}

// TestWheelMatchesReferenceModel drives the wheel and a naive sorted-slice
// model with identical random schedules — including cancels and deltas
// straddling the wheel horizon — and requires identical dispatch sequences.
func TestWheelMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		e := NewEngine()
		ref := &refEngine{gone: make(map[uint64]bool)}
		var got []uint64 // seq per dispatch, in order

		pending := make(map[uint64]Handle)
		var schedule func(at Cycle)
		schedule = func(at Cycle) {
			seq := ref.schedule(at)
			h := e.At(at, func(now Cycle) {
				got = append(got, seq)
				delete(pending, seq)
				// Sometimes reschedule onward with a horizon-straddling
				// delta, sometimes cancel a pending event. Both models
				// cancel the same seq, so map iteration order is
				// irrelevant.
				switch rng.Intn(4) {
				case 0:
					schedule(now + Cycle(rng.Intn(3*wheelSize)))
				case 1:
					for s, hh := range pending {
						ref.gone[s] = true
						hh.Cancel()
						delete(pending, s)
						break
					}
				}
			})
			pending[seq] = h
		}
		for i := 0; i < 80; i++ {
			schedule(Cycle(rng.Intn(4 * wheelSize)))
		}
		for i := 0; i < 400 && e.Step(); i++ {
		}

		var want []uint64
		for range got {
			ev, ok := ref.next()
			if !ok {
				break
			}
			want = append(want, ev.seq)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: dispatched %d events, reference %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: dispatch %d: got seq %d, reference %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestRandomScheduleWithOverflow extends the dispatch-order property across
// deltas far beyond the wheel horizon.
func TestRandomScheduleWithOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(300)
		times := make([]Cycle, n)
		var fired []Cycle
		for i := range times {
			at := Cycle(rng.Intn(6 * wheelSize))
			times[i] = at
			e.At(at, func(now Cycle) { fired = append(fired, now) })
		}
		e.Drain()
		if len(fired) != n {
			t.Fatalf("trial %d: fired %d of %d", trial, len(fired), n)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range times {
			if fired[i] != times[i] {
				t.Fatalf("trial %d: timestamps differ at %d: %d vs %d",
					trial, i, fired[i], times[i])
			}
		}
	}
}
