package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsDispatchInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Cycle
	for _, at := range []Cycle{30, 10, 20} {
		at := at
		e.At(at, func(now Cycle) { order = append(order, now) })
	}
	e.Drain()
	want := []Cycle{10, 20, 30}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameCycleEventsDispatchInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Cycle) { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: order = %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Cycle
	e.At(50, func(now Cycle) {
		e.After(25, func(now Cycle) { fired = now })
	})
	e.Drain()
	if fired != 75 {
		t.Fatalf("After fired at %d, want 75", fired)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var fired Cycle
	e.At(100, func(now Cycle) {
		e.At(10, func(now Cycle) { fired = now }) // in the past
	})
	e.Drain()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", fired)
	}
}

func TestCancelPreventsDispatch(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10, func(Cycle) { fired = true })
	h.Cancel()
	e.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice is a no-op.
	h.Cancel()
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(5, func(Cycle) { got = append(got, 1) })
	h := e.At(6, func(Cycle) { got = append(got, 2) })
	e.At(7, func(Cycle) { got = append(got, 3) })
	h.Cancel()
	e.Drain()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	for _, at := range []Cycle{10, 20, 30, 40} {
		e.At(at, func(now Cycle) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %d, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
}

func TestRunUntilInclusiveAtLimit(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(25, func(Cycle) { fired = true })
	e.RunUntil(25)
	if !fired {
		t.Fatal("event at exactly the limit did not fire")
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", e.Now())
	}
}

func TestStepDispatchesSingleEvent(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func(Cycle) { n++ })
	e.At(2, func(Cycle) { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n = %d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n = %d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestSelfReschedulingChain(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(now Cycle)
	tick = func(now Cycle) {
		count++
		if count < 100 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	e.RunUntil(2000)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 2000 {
		t.Fatalf("Now() = %d, want 2000", e.Now())
	}
}

// Property: for any random schedule, dispatch order is a non-decreasing
// sequence of timestamps covering every non-cancelled event.
func TestRandomScheduleDispatchOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(200)
		times := make([]Cycle, n)
		var fired []Cycle
		for i := range times {
			at := Cycle(rng.Intn(1000))
			times[i] = at
			e.At(at, func(now Cycle) { fired = append(fired, now) })
		}
		e.Drain()
		if len(fired) != n {
			t.Fatalf("trial %d: fired %d of %d", trial, len(fired), n)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("trial %d: dispatch order not sorted: %v", trial, fired)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range times {
			if fired[i] != times[i] {
				t.Fatalf("trial %d: timestamps differ at %d", trial, i)
			}
		}
	}
}
