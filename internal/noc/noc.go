// Package noc models the on-chip interconnect between cores, LLC slices,
// the integrated NIC and the memory controllers. The paper's Table I
// specifies a crossbar with a fixed 8-cycle latency; contention inside the
// crossbar is not modeled (the LLC and DRAM are the bottlenecks of
// interest), so the NoC reduces to a latency adder — kept as its own
// package so a contention model can replace it without touching callers.
package noc

// Crossbar is a fixed-latency interconnect.
type Crossbar struct {
	latency uint64
}

// New returns a crossbar with the given one-way hop latency in cycles.
func New(latency uint64) *Crossbar {
	return &Crossbar{latency: latency}
}

// Default returns the paper's 8-cycle crossbar.
func Default() *Crossbar { return New(8) }

// Latency returns the one-way traversal latency in cycles.
func (x *Crossbar) Latency() uint64 { return x.latency }

// Traverse returns the arrival cycle for a message injected at now.
func (x *Crossbar) Traverse(now uint64) uint64 { return now + x.latency }
