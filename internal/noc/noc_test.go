package noc

import "testing"

func TestCrossbarLatency(t *testing.T) {
	x := New(8)
	if x.Latency() != 8 {
		t.Fatalf("Latency = %d", x.Latency())
	}
	if x.Traverse(100) != 108 {
		t.Fatalf("Traverse = %d", x.Traverse(100))
	}
}

func TestDefaultIsTableI(t *testing.T) {
	if Default().Latency() != 8 {
		t.Fatal("Table I crossbar latency is 8 cycles")
	}
}

func TestZeroLatencyCrossbar(t *testing.T) {
	x := New(0)
	if x.Traverse(42) != 42 {
		t.Fatal("zero-latency traverse")
	}
}
