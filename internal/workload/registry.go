package workload

import (
	"fmt"
	"sort"
	"sync"
)

// Params carries the machine-level knobs a driver factory may consume. It is
// comparable: the machine reuses a live driver across pooled Resets exactly
// when the registry name and Params are unchanged.
type Params struct {
	// PacketBytes is the machine's RX slot / MTU size.
	PacketBytes uint64
	// ItemBytes sizes per-request application objects (KVS items); zero
	// for workloads without one.
	ItemBytes uint64
}

// Registration describes one named workload: how to build its driver and the
// machine-facing sizing/validation hooks that must be answerable before a
// driver exists (TX slot sizing shapes machine geometry).
type Registration struct {
	// Name keys the registry; scenario specs and machine configs refer to
	// the workload by this name.
	Name string
	// New builds a driver for the given parameterization.
	New func(p Params) (Driver, error)
	// RespSlotBytes reports the largest response the workload produces,
	// which sizes the machine's TX slots. Nil defers to PacketBytes.
	RespSlotBytes func(p Params) uint64
	// Validate vets the parameterization before machine assembly; nil
	// accepts everything.
	Validate func(p Params) error
}

// StreamRegistration describes one named background-tenant stream.
type StreamRegistration struct {
	Name string
	// New builds one stream instance (one per collocated core); the
	// machine seeds and lays it out afterwards via Stream.Layout.
	New func(p Params) (Stream, error)
}

var (
	regMu   sync.RWMutex
	drivers = map[string]Registration{}
	streams = map[string]StreamRegistration{}
)

// Register adds a workload to the driver registry. Registering an empty or
// duplicate name panics: registration is a program-initialization error, not
// a runtime condition.
func Register(r Registration) {
	if r.Name == "" || r.New == nil {
		panic("workload: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := drivers[r.Name]; dup {
		panic(fmt.Sprintf("workload: driver %q registered twice", r.Name))
	}
	drivers[r.Name] = r
}

// Lookup returns the registration for name.
func Lookup(name string) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := drivers[name]
	return r, ok
}

// Names returns the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(drivers))
	for n := range drivers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterStream adds a background-tenant stream to the registry.
func RegisterStream(r StreamRegistration) {
	if r.Name == "" || r.New == nil {
		panic("workload: RegisterStream needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := streams[r.Name]; dup {
		panic(fmt.Sprintf("workload: stream %q registered twice", r.Name))
	}
	streams[r.Name] = r
}

// LookupStream returns the stream registration for name.
func LookupStream(name string) (StreamRegistration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := streams[name]
	return r, ok
}

// StreamNames returns the registered stream names, sorted.
func StreamNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(streams))
	for n := range streams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TXSlotBytes reports the TX slot size for a named workload under p: the
// registered RespSlotBytes hook, defaulting to the packet size. Unknown
// names also default to the packet size; configuration validation rejects
// them before the value can matter.
func TXSlotBytes(name string, p Params) uint64 {
	if r, ok := Lookup(name); ok && r.RespSlotBytes != nil {
		return r.RespSlotBytes(p)
	}
	return p.PacketBytes
}

// NewDriver builds a driver for a registered workload name.
func NewDriver(name string, p Params) (Driver, error) {
	r, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (registered: %v)", name, Names())
	}
	if r.Validate != nil {
		if err := r.Validate(p); err != nil {
			return nil, err
		}
	}
	return r.New(p)
}

// ValidateParams runs a registered workload's parameter validation.
func ValidateParams(name string, p Params) error {
	r, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("workload: unknown workload %q (registered: %v)", name, Names())
	}
	if r.Validate != nil {
		return r.Validate(p)
	}
	return nil
}

// NewStream builds one background-tenant stream instance.
func NewStream(name string, p Params) (Stream, error) {
	r, ok := LookupStream(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown stream %q (registered: %v)", name, StreamNames())
	}
	return r.New(p)
}
