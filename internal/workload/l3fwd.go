package workload

import (
	"fmt"

	"sweeper/internal/addr"
)

// L3FwdConfig sizes the forwarder. The paper uses 16k rules (barely fits a
// core's private L2) for the premature-eviction studies and an L1-resident
// table for the collocation study.
type L3FwdConfig struct {
	// Rules is the forwarding-table entry count; each entry occupies one
	// line (trie node granularity).
	Rules uint64
	// LookupDepth is how many table lines one longest-prefix-match walk
	// touches.
	LookupDepth int
	// ComputeCycles is the fixed header-rewrite compute per packet.
	ComputeCycles uint64
}

// DefaultL3FwdConfig returns the 16k-rule configuration of §IV-B. The
// per-packet compute covers the Scale-Out-NUMA protocol handling, header
// rewrite and the MTU-sized payload copy.
func DefaultL3FwdConfig() L3FwdConfig {
	return L3FwdConfig{Rules: 16_384, LookupDepth: 2, ComputeCycles: 1000}
}

// L1ResidentL3FwdConfig returns the tiny-table variant of §VI-E, whose
// dataset fits in L1 so all its cache/memory pressure comes from packet
// RX/TX movement.
func L1ResidentL3FwdConfig() L3FwdConfig {
	return L3FwdConfig{Rules: 256, LookupDepth: 2, ComputeCycles: 1000}
}

// L3Fwd is the forwarder network function: per packet it reads the header,
// walks the route table, rewrites the header and transmits the (copied)
// packet. The port follows the paper's non-zero-copy adaptation: the full
// payload is copied from the RX buffer into a TX buffer (§V-D explains why
// the zero-copy variant needs NIC-driven sweeping instead).
type L3Fwd struct {
	cfg        L3FwdConfig
	routesBase uint64
	forwarded  uint64
}

// NewL3Fwd builds the forwarder; call Layout to place its route table in an
// address space.
func NewL3Fwd(cfg L3FwdConfig) *L3Fwd {
	if cfg.Rules == 0 || cfg.LookupDepth <= 0 {
		panic("workload: l3fwd needs at least one rule and lookup step")
	}
	return &L3Fwd{cfg: cfg}
}

// Layout implements Driver: it allocates the route table in the address
// space and clears the packet counter. Re-laying-out against a freshly Reset
// space reproduces a fresh forwarder exactly.
func (f *L3Fwd) Layout(space *addr.Space) {
	f.routesBase = space.AllocApp(f.cfg.Rules * addr.LineBytes)
	f.forwarded = 0
}

// Name implements Workload.
func (f *L3Fwd) Name() string { return fmt.Sprintf("l3fwd-%dr", f.cfg.Rules) }

// Config returns the forwarder's configuration.
func (f *L3Fwd) Config() L3FwdConfig { return f.cfg }

// NextHop deterministically resolves a packet tag to a rule index, exposing
// the functional routing decision for tests.
func (f *L3Fwd) NextHop(tag uint64) uint64 {
	return splitmix64(tag^0x1234abcd) % f.cfg.Rules
}

// PlanRequest implements Workload.
func (f *L3Fwd) PlanRequest(tag uint64, pktBytes uint64, plan *Plan) {
	plan.reset()
	// Per-packet jitter stands in for the natural service variation of
	// real traffic (header parsing, flow state); without it, identical
	// cores fall into lockstep and produce synchronized memory bursts.
	plan.ComputeCycles = f.cfg.ComputeCycles + splitmix64(tag)%64
	plan.ReadFullPacket = true // the copy touches every payload line
	rule := f.NextHop(tag)
	// LPM walk: LookupDepth dependent table reads, spread by hashing so
	// the trie levels do not alias to the same lines.
	for d := 0; d < f.cfg.LookupDepth; d++ {
		idx := splitmix64(rule+uint64(d)*0x9e37) % f.cfg.Rules
		plan.read(f.routesBase + idx*addr.LineBytes)
	}
	plan.RespBytes = pktBytes // forward the whole packet
	f.forwarded++
}

// FastForward implements FastForwarder, mirroring PlanRequest.
func (f *L3Fwd) FastForward(tag uint64, pktBytes uint64, touch func(a uint64, write, full bool)) FFRequest {
	rule := f.NextHop(tag)
	for d := 0; d < f.cfg.LookupDepth; d++ {
		idx := splitmix64(rule+uint64(d)*0x9e37) % f.cfg.Rules
		touch(f.routesBase+idx*addr.LineBytes, false, false)
	}
	f.forwarded++
	return FFRequest{RespBytes: pktBytes,
		ComputeCycles: f.cfg.ComputeCycles + splitmix64(tag)%64, ReadFullPacket: true}
}

// ExtraServiceCycles implements Driver: the forwarder's jitter is already
// part of its plan compute.
func (f *L3Fwd) ExtraServiceCycles(uint64) uint64 { return 0 }

// Snapshot implements Driver.
func (f *L3Fwd) Snapshot() []Counter {
	return []Counter{{Name: "forwarded", Value: f.forwarded}}
}

// Forwarded returns the number of packets planned.
func (f *L3Fwd) Forwarded() uint64 { return f.forwarded }

// WarmLines implements StateWarmer: the route table is the forwarder's
// resident set. Lookups hash across all Rules lines, so a cold table only
// becomes cache-resident after a coupon-collector fill (~10 lookups per
// rule); installing it clean up front removes that transient.
func (f *L3Fwd) WarmLines(lineBudget uint64, emit func(line uint64, dirty bool)) {
	n := f.cfg.Rules
	if n > lineBudget {
		n = lineBudget
	}
	for i := uint64(0); i < n; i++ {
		emit(f.routesBase+i*addr.LineBytes, false)
	}
}
