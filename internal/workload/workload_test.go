package workload

import (
	"math"
	"testing"
	"testing/quick"

	"sweeper/internal/addr"
)

func TestZipfBoundsAndDeterminism(t *testing.T) {
	z := NewZipf(1000, 0.99, true)
	if z.N() != 1000 {
		t.Fatal("N")
	}
	for tag := uint64(0); tag < 5000; tag++ {
		r := z.Sample(tag)
		if r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		if r != z.Sample(tag) {
			t.Fatal("sampling not deterministic in tag")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100_000, 0.99, false) // unscrambled: rank 0 most popular
	hits := make(map[uint64]int)
	n := 200_000
	for i := 0; i < n; i++ {
		hits[z.Rank(unitFloat(splitmix64(uint64(i))))]++
	}
	// Under zipf(0.99) over 100k items, rank 0 alone draws ~7-9% of
	// requests; uniform would give 0.001%.
	if frac := float64(hits[0]) / float64(n); frac < 0.02 {
		t.Fatalf("rank-0 popularity %.4f, want heavy skew", frac)
	}
	// Top-100 ranks draw a large fraction of all traffic.
	var top int
	for r := uint64(0); r < 100; r++ {
		top += hits[r]
	}
	if frac := float64(top) / float64(n); frac < 0.3 {
		t.Fatalf("top-100 mass %.3f, want > 0.3", frac)
	}
}

func TestZipfScrambleSpreadsHotKeys(t *testing.T) {
	zs := NewZipf(1<<20, 0.99, true)
	// The two hottest scrambled keys must not be adjacent small ranks.
	a := zs.Rank(0.0001)
	b := zs.Rank(0.0002)
	if a < 100 && b < 100 {
		t.Fatalf("scramble left hot keys clustered: %d %d", a, b)
	}
}

func TestZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":   func() { NewZipf(0, 0.5, false) },
		"theta 0": func() { NewZipf(10, 0, false) },
		"theta 1": func() { NewZipf(10, 1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: ranks stay in range for arbitrary uniform inputs.
func TestZipfRangeProperty(t *testing.T) {
	z := NewZipf(12345, 0.99, true)
	f := func(u float64) bool {
		u = math.Abs(u)
		u -= math.Floor(u) // [0,1)
		return z.Rank(u) < 12345
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testSpace() *addr.Space { return addr.NewSpace(2, 64*1024, 64*1024) }

func smallKVS(t *testing.T) *KVS {
	t.Helper()
	cfg := KVSConfig{
		Keys:          10_000,
		Buckets:       1 << 12,
		LogBytes:      16 << 20,
		ItemBytes:     1024,
		GetPercent:    5,
		ZipfTheta:     0.99,
		ComputeCycles: 300,
	}
	k := NewKVS(cfg)
	k.Layout(testSpace())
	return k
}

func TestKVSDefaults(t *testing.T) {
	cfg := DefaultKVSConfig(1024)
	if cfg.Keys != 2_400_000 || cfg.Buckets != 1<<20 || cfg.LogBytes != 256<<20 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.GetPercent != 5 || cfg.ZipfTheta != 0.99 {
		t.Fatal("mix defaults")
	}
}

func TestKVSValidation(t *testing.T) {
	for name, cfg := range map[string]KVSConfig{
		"unaligned item": {Keys: 10, Buckets: 4, LogBytes: 1 << 20, ItemBytes: 100, ZipfTheta: 0.9},
		"zero item":      {Keys: 10, Buckets: 4, LogBytes: 1 << 20, ItemBytes: 0, ZipfTheta: 0.9},
		"log too small":  {Keys: 10, Buckets: 4, LogBytes: 64, ItemBytes: 128, ZipfTheta: 0.9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewKVS(cfg)
		}()
	}
}

func TestKVSGetPlanShape(t *testing.T) {
	k := smallKVS(t)
	// Find a GET tag.
	var tag uint64
	for ; ; tag++ {
		if isGet, _ := k.DecodeOp(tag); isGet {
			break
		}
	}
	var plan Plan
	k.PlanRequest(tag, 1024, &plan)
	if plan.ReadFullPacket {
		t.Fatal("GET should read only the request header")
	}
	if plan.RespBytes != 1024 {
		t.Fatalf("GET response = %d, want item size", plan.RespBytes)
	}
	// Bucket read + 16 item reads, no writes.
	if len(plan.Ops) != 17 {
		t.Fatalf("GET ops = %d, want 17", len(plan.Ops))
	}
	for i, op := range plan.Ops {
		if op.Write {
			t.Fatalf("GET op %d is a write", i)
		}
	}
	if plan.ComputeCycles != 300 {
		t.Fatal("compute")
	}
}

func TestKVSSetPlanShape(t *testing.T) {
	k := smallKVS(t)
	var tag uint64
	for ; ; tag++ {
		if isGet, _ := k.DecodeOp(tag); !isGet {
			break
		}
	}
	var plan Plan
	k.PlanRequest(tag, 1024, &plan)
	if !plan.ReadFullPacket {
		t.Fatal("SET must consume the full payload")
	}
	if plan.RespBytes != 64 {
		t.Fatalf("SET ack = %d", plan.RespBytes)
	}
	// Bucket read + bucket write + 16 full-line log writes.
	var reads, writes, fulls int
	for _, op := range plan.Ops {
		switch {
		case op.Write && op.FullLine:
			fulls++
		case op.Write:
			writes++
		default:
			reads++
		}
	}
	if reads != 1 || writes != 1 || fulls != 16 {
		t.Fatalf("SET ops: %d reads, %d writes, %d full-line", reads, writes, fulls)
	}
}

func TestKVSMixApproximatesGetPercent(t *testing.T) {
	k := smallKVS(t)
	var plan Plan
	for tag := uint64(0); tag < 20_000; tag++ {
		k.PlanRequest(splitmix64(tag), 1024, &plan)
	}
	gets, sets := k.OpCounts()
	frac := float64(gets) / float64(gets+sets)
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("GET fraction %.3f, want ~0.05", frac)
	}
}

func TestKVSGetAfterSetSemantics(t *testing.T) {
	k := smallKVS(t)
	var setTag uint64
	for ; ; setTag++ {
		if isGet, _ := k.DecodeOp(setTag); !isGet {
			break
		}
	}
	_, key := k.DecodeOp(setTag)
	var plan Plan
	k.PlanRequest(setTag, 1024, &plan)
	if k.Get(key) != FingerprintForTag(setTag) {
		t.Fatal("GET after SET returned a stale fingerprint")
	}
}

func TestKVSSetRelocatesToLogHead(t *testing.T) {
	k := smallKVS(t)
	var setTag uint64
	for ; ; setTag++ {
		if isGet, _ := k.DecodeOp(setTag); !isGet {
			break
		}
	}
	_, key := k.DecodeOp(setTag)
	before := k.Location(key)
	var plan Plan
	k.PlanRequest(setTag, 1024, &plan)
	after := k.Location(key)
	if before == after {
		t.Fatal("SET must move the key to the log head")
	}
	// The plan's log writes target the new location.
	found := false
	for _, op := range plan.Ops {
		if op.Write && op.FullLine && op.Addr == k.LogBase()+after {
			found = true
		}
	}
	if !found {
		t.Fatal("log writes do not cover the new location")
	}
}

func TestKVSPlanAddressesWithinRegions(t *testing.T) {
	k := smallKVS(t)
	var plan Plan
	for tag := uint64(0); tag < 2000; tag++ {
		k.PlanRequest(splitmix64(tag^0xabc), 1024, &plan)
		for _, op := range plan.Ops {
			inBuckets := op.Addr >= k.BucketsBase() && op.Addr < k.LogBase()
			inLog := op.Addr >= k.LogBase() && op.Addr < k.LogBase()+k.Config().LogBytes
			if !inBuckets && !inLog {
				t.Fatalf("tag %d: op at %#x outside KVS regions", tag, op.Addr)
			}
		}
	}
}

func TestKVSRequestBytes(t *testing.T) {
	k := smallKVS(t)
	var getTag, setTag uint64
	for tag := uint64(0); ; tag++ {
		isGet, _ := k.DecodeOp(tag)
		if isGet && getTag == 0 {
			getTag = tag
		}
		if !isGet && setTag == 0 {
			setTag = tag + 1 // avoid zero sentinel
		}
		if getTag != 0 && setTag != 0 {
			break
		}
	}
	if k.RequestBytes(getTag) != 64 {
		t.Fatal("GET request should be key-sized")
	}
	if k.RequestBytes(setTag-1) != 1024 {
		t.Fatal("SET request should carry the item")
	}
}

func TestKVSLogWraps(t *testing.T) {
	cfg := KVSConfig{
		Keys: 100, Buckets: 16, LogBytes: 64 * 1024, // holds 64 1KB items
		ItemBytes: 1024, GetPercent: 0, ZipfTheta: 0.5, ComputeCycles: 1,
	}
	k := NewKVS(cfg)
	k.Layout(testSpace())
	var plan Plan
	for tag := uint64(0); tag < 500; tag++ {
		k.PlanRequest(tag, 1024, &plan)
		for _, op := range plan.Ops {
			if op.Addr >= k.LogBase()+cfg.LogBytes {
				t.Fatal("log write beyond the circular log")
			}
		}
	}
}

func TestL3FwdPlanShape(t *testing.T) {
	f := NewL3Fwd(DefaultL3FwdConfig())
	f.Layout(testSpace())
	var plan Plan
	f.PlanRequest(12345, 1024, &plan)
	if !plan.ReadFullPacket {
		t.Fatal("forwarder copies the payload")
	}
	if plan.RespBytes != 1024 {
		t.Fatal("forwarder transmits the whole packet")
	}
	if len(plan.Ops) != 2 {
		t.Fatalf("lookup ops = %d, want LookupDepth", len(plan.Ops))
	}
	for _, op := range plan.Ops {
		if op.Write {
			t.Fatal("route lookups are reads")
		}
	}
	if f.Forwarded() != 1 {
		t.Fatal("forwarded counter")
	}
}

func TestL3FwdDeterministicRoutingWithJitter(t *testing.T) {
	f := NewL3Fwd(DefaultL3FwdConfig())
	f.Layout(testSpace())
	if f.NextHop(7) != f.NextHop(7) {
		t.Fatal("routing not deterministic")
	}
	var p1, p2 Plan
	f.PlanRequest(7, 1024, &p1)
	f.PlanRequest(7, 1024, &p2)
	if p1.ComputeCycles != p2.ComputeCycles {
		t.Fatal("jitter must be deterministic per tag")
	}
	f.PlanRequest(8, 1024, &p2)
	base := f.Config().ComputeCycles
	if p2.ComputeCycles < base || p2.ComputeCycles >= base+64 {
		t.Fatalf("jitter out of range: %d", p2.ComputeCycles)
	}
}

func TestL3FwdTableVariants(t *testing.T) {
	if DefaultL3FwdConfig().Rules != 16_384 {
		t.Fatal("default rules")
	}
	if L1ResidentL3FwdConfig().Rules != 256 {
		t.Fatal("L1-resident rules")
	}
}

func TestL3FwdLookupsWithinTable(t *testing.T) {
	space := testSpace()
	f := NewL3Fwd(DefaultL3FwdConfig())
	f.Layout(space)
	var plan Plan
	for tag := uint64(0); tag < 2000; tag++ {
		f.PlanRequest(tag, 1024, &plan)
		for _, op := range plan.Ops {
			// Route table occupies Rules lines starting at its base.
			rel := op.Addr % (16384 * 64)
			_ = rel
			if op.Addr < space.End()-16384*64 || op.Addr >= space.End() {
				t.Fatalf("lookup at %#x outside the route table", op.Addr)
			}
		}
	}
}

func TestL3FwdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewL3Fwd(L3FwdConfig{Rules: 0, LookupDepth: 1})
}

func TestXMemStream(t *testing.T) {
	space := testSpace()
	x := NewXMem(DefaultXMemConfig())
	x.Layout(space, 1)
	base := space.End() - x.Config().ArrayBytes
	seen := map[uint64]bool{}
	for i := 0; i < 10_000; i++ {
		a := x.Next()
		if a < base || a >= base+x.Config().ArrayBytes {
			t.Fatalf("access %#x outside private array", a)
		}
		if a%64 != 0 {
			t.Fatal("unaligned access")
		}
		seen[a] = true
	}
	if x.Accesses() != 10_000 {
		t.Fatal("access counter")
	}
	// Random coverage: 10k draws over 32k lines should touch many.
	if len(seen) < 5000 {
		t.Fatalf("stream touched only %d distinct lines", len(seen))
	}
}

func TestXMemDeterministicPerSeed(t *testing.T) {
	s1, s2 := testSpace(), testSpace()
	a, b := NewXMem(DefaultXMemConfig()), NewXMem(DefaultXMemConfig())
	a.Layout(s1, 42)
	b.Layout(s2, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with equal seeds diverge")
		}
	}
	c := NewXMem(DefaultXMemConfig())
	c.Layout(testSpace(), 43)
	diff := false
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestXMemIPC(t *testing.T) {
	x := NewXMem(DefaultXMemConfig())
	x.Layout(testSpace(), 1)
	// 1000 accesses x 8 instr over 16000 cycles = 0.5 IPC.
	if got := x.IPC(1000, 16_000); got != 0.5 {
		t.Fatalf("IPC = %g", got)
	}
	if x.IPC(10, 0) != 0 {
		t.Fatal("zero-cycle IPC")
	}
}

func TestXMemValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewXMem(XMemConfig{ArrayBytes: 32})
}

func TestWorkloadNames(t *testing.T) {
	if smallKVS(t).Name() != "kvs-1024B" {
		t.Fatal("kvs name")
	}
	if NewL3Fwd(DefaultL3FwdConfig()).Name() != "l3fwd-16384r" {
		t.Fatal("l3fwd name")
	}
	if NewXMem(DefaultXMemConfig()).Name() != "xmem-2MB" {
		t.Fatal("xmem name")
	}
}
