package workload

import (
	"fmt"

	"sweeper/internal/addr"
)

// KVSConfig sizes the key-value store. Defaults follow the paper's
// Appendix: 2.4M keys, 1M buckets, a 256MB circular log, zipf(0.99)
// popularity and a 5/95 GET/SET mix.
type KVSConfig struct {
	Keys      uint64
	Buckets   uint64
	LogBytes  uint64
	ItemBytes uint64
	// GetPercent is the GET share of the mix (0-100); the paper's
	// write-heavy workload uses 5.
	GetPercent uint64
	ZipfTheta  float64
	// ComputeCycles is the fixed per-request service compute (hashing,
	// key comparison, response assembly) outside memory access time.
	ComputeCycles uint64
}

// DefaultKVSConfig returns the Appendix configuration for the given item
// size (512B or 1KB in the paper).
func DefaultKVSConfig(itemBytes uint64) KVSConfig {
	return KVSConfig{
		Keys:          2_400_000,
		Buckets:       1 << 20,
		LogBytes:      256 << 20,
		ItemBytes:     itemBytes,
		GetPercent:    5,
		ZipfTheta:     0.99,
		ComputeCycles: 300,
	}
}

// Validate reports configuration errors before the store is built.
func (c KVSConfig) Validate() error {
	if c.ItemBytes == 0 || c.ItemBytes%addr.LineBytes != 0 {
		return fmt.Errorf("workload: KVS item size %dB must be a positive multiple of %d", c.ItemBytes, addr.LineBytes)
	}
	if c.LogBytes < c.ItemBytes {
		return fmt.Errorf("workload: KVS log (%dB) too small to hold one %dB item", c.LogBytes, c.ItemBytes)
	}
	return nil
}

// KVS is the MICA-like store: a bucket array indexes items appended to a
// circular log. The simulator executes its access plan; the functional
// layer stores an 8-byte fingerprint per key so correctness (GET returns
// the latest SET) is testable without materializing gigabytes of values.
type KVS struct {
	cfg KVSConfig

	bucketsBase uint64
	logBase     uint64
	zipf        *Zipf

	// keyLoc is each key's current byte offset into the log (where its
	// latest value lives); keyVer is the fingerprint of the latest SET.
	keyLoc []uint64
	keyVer []uint64

	logHead   uint64
	itemLines uint64

	gets, sets uint64

	// Cluster sharding (zero on standalone stores): the log is sharded by
	// key across nodes — keyHome[i] is the node whose log holds key i's
	// latest value, logHeads the simulated append cursor of every node's
	// log. Each node runs its own KVS instance over an identical layout
	// (same bucket and log base addresses), so every instance computes the
	// same initial keyLoc from (nodes, key) alone and remote item reads
	// can name the home node's log lines via addr.Remote.
	nodes, nodeID int
	keyHome       []uint8
	logHeads      []uint64
}

// NewKVS allocates the store's in-memory structures (per-key arrays, Zipf
// sampler). Call Layout before use to place and pre-populate the store in an
// address space.
func NewKVS(cfg KVSConfig) *KVS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Note: 2.4M x 1KB items exceed the 256MB circular log, exactly as in
	// MICA — the log wraps and old entries are overwritten in place, so
	// cold keys' locations alias recycled log space. The architectural
	// access pattern (bucket probe + log read/append) is unaffected.
	return &KVS{
		cfg:       cfg,
		zipf:      NewZipf(cfg.Keys, cfg.ZipfTheta, true),
		keyLoc:    make([]uint64, cfg.Keys),
		keyVer:    make([]uint64, cfg.Keys),
		itemLines: cfg.ItemBytes / addr.LineBytes,
	}
}

// Layout implements Driver: it lays the store's structures out in the
// address space — buckets then log, always in that order — and
// pre-populates every key, mirroring the paper's pre-populated 2.4M pairs.
// Re-laying-out against a freshly Reset space reuses the per-key arrays
// (tens of MB for the default 2.4M keys) and reproduces the identical
// initial state a fresh store would have.
func (k *KVS) Layout(space *addr.Space) {
	k.bucketsBase = space.AllocApp(k.cfg.Buckets * addr.LineBytes)
	k.logBase = space.AllocApp(k.cfg.LogBytes)
	k.logHead = 0
	k.gets, k.sets = 0, 0
	if k.nodes > 1 {
		k.layoutCluster()
		return
	}
	// Pre-populate: each key gets an initial log slot, in key order.
	for i := uint64(0); i < k.cfg.Keys; i++ {
		k.keyLoc[i] = k.logHead
		k.keyVer[i] = splitmix64(i)
		k.advanceLog()
	}
}

// layoutCluster pre-populates a sharded store: key i is homed on node
// i%nodes and takes the next slot of that node's log, tracked through
// per-home cursors. The walk depends only on (nodes, key), so every
// node's instance assigns identical homes and locations.
func (k *KVS) layoutCluster() {
	if len(k.keyHome) != int(k.cfg.Keys) {
		k.keyHome = make([]uint8, k.cfg.Keys)
	}
	if len(k.logHeads) != k.nodes {
		k.logHeads = make([]uint64, k.nodes)
	} else {
		clear(k.logHeads)
	}
	for i := uint64(0); i < k.cfg.Keys; i++ {
		home := int(i % uint64(k.nodes))
		k.keyHome[i] = uint8(home)
		k.keyLoc[i] = k.logHeads[home]
		k.keyVer[i] = splitmix64(i)
		k.logHeads[home] = k.nextHead(k.logHeads[home])
	}
}

func (k *KVS) advanceLog() {
	k.logHead = k.nextHead(k.logHead)
}

// nextHead advances a circular-log cursor by one item.
func (k *KVS) nextHead(h uint64) uint64 {
	h += k.cfg.ItemBytes
	if h+k.cfg.ItemBytes > k.cfg.LogBytes {
		h = 0
	}
	return h
}

// SetCluster implements ClusterSharder: subsequent Layouts shard the log
// across nodes and PlanRequest emits addr.Remote references for items
// homed elsewhere. The machine calls it before Layout on cluster nodes.
func (k *KVS) SetCluster(nodes, nodeID int) {
	if nodes < 1 || nodeID < 0 || nodeID >= nodes {
		panic(fmt.Sprintf("workload: SetCluster(%d, %d) out of range", nodes, nodeID))
	}
	if nodes > addr.MaxNodes {
		panic(fmt.Sprintf("workload: %d nodes exceeds the %d the remote-address encoding carries", nodes, addr.MaxNodes))
	}
	k.nodes, k.nodeID = nodes, nodeID
}

// itemAddr returns the address of a key's current value: its home log
// lines directly when local, an addr.Remote reference otherwise.
func (k *KVS) itemAddr(key uint64) uint64 {
	loc := k.logBase + k.keyLoc[key]
	if k.nodes > 1 {
		if home := int(k.keyHome[key]); home != k.nodeID {
			return addr.Remote(home, loc)
		}
	}
	return loc
}

// Name implements Workload.
func (k *KVS) Name() string { return fmt.Sprintf("kvs-%dB", k.cfg.ItemBytes) }

// Config returns the store's configuration.
func (k *KVS) Config() KVSConfig { return k.cfg }

// LogBase returns the base address of the circular log region.
func (k *KVS) LogBase() uint64 { return k.logBase }

// BucketsBase returns the base address of the bucket array.
func (k *KVS) BucketsBase() uint64 { return k.bucketsBase }

// bucketAddr returns the line address of a key's bucket.
func (k *KVS) bucketAddr(key uint64) uint64 {
	h := splitmix64(key*0x9e3779b97f4a7c15 + 1)
	return k.bucketsBase + (h%k.cfg.Buckets)*addr.LineBytes
}

// DecodeOp derives the deterministic (isGet, key) pair for a packet tag.
func (k *KVS) DecodeOp(tag uint64) (isGet bool, key uint64) {
	opBits := splitmix64(tag ^ 0xdeadbeefcafef00d)
	isGet = opBits%100 < k.cfg.GetPercent
	key = k.zipf.Sample(tag)
	return isGet, key
}

// RequestBytes returns the wire size of the request a tag denotes: GETs
// carry only a key (one line); SETs carry the full item, matching the
// paper's "commensurate network packet size".
func (k *KVS) RequestBytes(tag uint64) uint64 {
	if isGet, _ := k.DecodeOp(tag); isGet {
		return addr.LineBytes
	}
	return k.cfg.ItemBytes
}

// PlanRequest implements Workload: a GET probes the bucket and reads the
// item from the log; a SET probes and updates the bucket and appends the
// item at the log head. SET requests carry the full item in the packet
// (read by the core from the RX buffer); GET responses carry the item back.
func (k *KVS) PlanRequest(tag uint64, pktBytes uint64, plan *Plan) {
	plan.reset()
	plan.ComputeCycles = k.cfg.ComputeCycles
	isGet, key := k.DecodeOp(tag)
	plan.read(k.bucketAddr(key))
	if isGet {
		k.gets++
		// GETs carry only the key: the core reads just the header
		// line of the request packet. Items homed on another node's
		// log shard come back over the fabric (itemAddr is remote).
		plan.ReadFullPacket = false
		loc := k.itemAddr(key)
		for i := uint64(0); i < k.itemLines; i++ {
			plan.read(loc + i*addr.LineBytes)
		}
		plan.RespBytes = k.cfg.ItemBytes
		return
	}
	k.sets++
	plan.ReadFullPacket = true
	plan.write(k.bucketAddr(key)) // install the new location
	// SETs always append to the serving node's own log and re-home the
	// key there (MICA-style local appends: writes never cross the
	// fabric); standalone stores reduce to the single shared log.
	head := &k.logHead
	if k.nodes > 1 {
		head = &k.logHeads[k.nodeID]
		k.keyHome[key] = uint8(k.nodeID)
	}
	loc := k.logBase + *head
	for i := uint64(0); i < k.itemLines; i++ {
		// Log appends are streaming full-line stores: no
		// read-for-ownership fetch of soon-overwritten data.
		plan.writeFull(loc + i*addr.LineBytes)
	}
	// Functional update.
	k.keyLoc[key] = *head
	k.keyVer[key] = splitmix64(tag)
	*head = k.nextHead(*head)
	plan.RespBytes = addr.LineBytes // acknowledgment
}

// FastForward implements FastForwarder: the same accesses and functional
// updates as PlanRequest, streamed through touch without building a Plan.
func (k *KVS) FastForward(tag uint64, _ uint64, touch func(a uint64, write, full bool)) FFRequest {
	isGet, key := k.DecodeOp(tag)
	touch(k.bucketAddr(key), false, false)
	if isGet {
		k.gets++
		loc := k.logBase + k.keyLoc[key]
		for i := uint64(0); i < k.itemLines; i++ {
			touch(loc+i*addr.LineBytes, false, false)
		}
		return FFRequest{RespBytes: k.cfg.ItemBytes,
			ComputeCycles: k.cfg.ComputeCycles, ReadFullPacket: false}
	}
	k.sets++
	touch(k.bucketAddr(key), true, false) // install the new location
	loc := k.logBase + k.logHead
	for i := uint64(0); i < k.itemLines; i++ {
		touch(loc+i*addr.LineBytes, true, true)
	}
	k.keyLoc[key] = k.logHead
	k.keyVer[key] = splitmix64(tag)
	k.advanceLog()
	return FFRequest{RespBytes: addr.LineBytes,
		ComputeCycles: k.cfg.ComputeCycles, ReadFullPacket: true}
}

// ExtraServiceCycles implements Driver: the KVS adds no service delay
// beyond its plan.
func (k *KVS) ExtraServiceCycles(uint64) uint64 { return 0 }

// Snapshot implements Driver.
func (k *KVS) Snapshot() []Counter {
	return []Counter{{Name: "gets", Value: k.gets}, {Name: "sets", Value: k.sets}}
}

// WarmLines implements StateWarmer: the store's resident set is the hot end
// of the zipf popularity curve — each hot key's bucket line plus its item's
// log lines. Emission walks ranks coldest-to-hottest so the hottest items
// end up most-recently-used, and stops once the budget's worth of lines is
// out: under zipf(0.99) the head ranks carry most of the access mass, so a
// cache-sized prefix is within a few percent of the converged content a
// multi-million-cycle warm-up would build.
func (k *KVS) WarmLines(lineBudget uint64, emit func(line uint64, dirty bool)) {
	perKey := k.itemLines + 1
	ranks := lineBudget / perKey
	if ranks > k.cfg.Keys {
		ranks = k.cfg.Keys
	}
	for r := ranks; r > 0; r-- {
		key := k.zipf.Key(r - 1)
		emit(k.bucketAddr(key), false)
		if k.nodes > 1 && int(k.keyHome[key]) != k.nodeID {
			// Remotely homed items live in another node's DRAM, not
			// this cache; only the bucket line is warmable here.
			continue
		}
		loc := k.logBase + k.keyLoc[key]
		for l := uint64(0); l < k.itemLines; l++ {
			emit(loc+l*addr.LineBytes, false)
		}
	}
}

// WarmLLC implements LLCWarmer: the store's steady state keeps the LLC full
// of dirty appended log lines, so warm-started measurement windows need a
// pre-filled hierarchy.
func (k *KVS) WarmLLC() bool { return true }

// Get returns the fingerprint of the key's latest value (functional layer).
func (k *KVS) Get(key uint64) uint64 {
	if key >= k.cfg.Keys {
		panic("workload: key out of range")
	}
	return k.keyVer[key]
}

// Location returns the key's current log offset, for tests.
func (k *KVS) Location(key uint64) uint64 { return k.keyLoc[key] }

// OpCounts returns the number of GETs and SETs served.
func (k *KVS) OpCounts() (gets, sets uint64) { return k.gets, k.sets }

// FingerprintForTag returns the value fingerprint a SET with the given tag
// installs; tests use it to verify GET-after-SET semantics.
func FingerprintForTag(tag uint64) uint64 { return splitmix64(tag) }
