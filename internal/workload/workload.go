// Package workload implements the paper's three applications at the level
// of detail the simulation needs — their memory access signatures — plus
// functional semantics where they are cheap enough to test (the KVS really
// stores and returns value fingerprints).
//
//   - MICA-like key-value store: 1M-bucket hash index + 256MB circular log,
//     2.4M keys, zipf(0.99) popularity, 5/95 GET/SET (write-heavy), as in
//     the paper's Appendix.
//   - L3 forwarder network function: route-table lookup + packet copy, with
//     either a 16k-rule table (barely fits in L2; §IV-B) or an L1-resident
//     table (§VI-E).
//   - X-Mem: a memory-intensive collocated tenant performing dependent
//     random accesses over a private 2MB array.
package workload

// Op is one application-data access at line granularity.
type Op struct {
	Addr  uint64
	Write bool
	// FullLine marks a write that overwrites the whole line (a streaming
	// store): the hardware allocates it dirty without fetching the old
	// contents.
	FullLine bool
}

// Plan is the per-request access program a core executes between reading
// the RX buffer and writing the response: application data operations plus
// fixed compute cycles, and the response size that determines TX traffic.
type Plan struct {
	Ops           []Op
	ComputeCycles uint64
	RespBytes     uint64
	// ReadFullPacket reports whether the application reads the entire
	// packet payload (true for KVS SETs and copying NFs) or only the
	// header line.
	ReadFullPacket bool
}

func (p *Plan) reset() {
	p.Ops = p.Ops[:0]
	p.ComputeCycles = 0
	p.RespBytes = 0
	p.ReadFullPacket = true
}

func (p *Plan) read(a uint64)  { p.Ops = append(p.Ops, Op{Addr: a}) }
func (p *Plan) write(a uint64) { p.Ops = append(p.Ops, Op{Addr: a, Write: true}) }
func (p *Plan) writeFull(a uint64) {
	p.Ops = append(p.Ops, Op{Addr: a, Write: true, FullLine: true})
}

// Workload converts an arriving packet (identified by its generator tag and
// size) into the access plan its service requires. Implementations must be
// deterministic in tag so runs are reproducible.
type Workload interface {
	// PlanRequest fills plan for the packet. plan is reused across calls.
	PlanRequest(tag uint64, pktBytes uint64, plan *Plan)
	// Name labels the workload in reports.
	Name() string
}

// splitmix64 is a fast, high-quality mixer used to derive independent
// pseudo-random streams from a packet tag deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a uint64 to [0,1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
