package workload

import (
	"math"
	"sync"
)

// Zipf samples ranks in [0, n) with popularity rank^-theta for theta in
// (0,1), using the Gray et al. incremental method popularized by YCSB.
// math/rand's Zipf requires s > 1, so the paper's 0.99 skew needs this
// implementation. Sampling is a pure function of the caller-provided
// uniform variate, keeping request streams deterministic in the packet tag.
type Zipf struct {
	n        uint64
	theta    float64
	alpha    float64
	zetan    float64
	eta      float64
	half     float64 // 0.5^theta
	scramble bool
}

// NewZipf builds a generator over n items with skew theta in (0,1). When
// scramble is true, ranks are hashed so popular items spread uniformly over
// the key space (YCSB's "scrambled zipfian"), which is how KVS hot keys
// behave in practice.
func NewZipf(n uint64, theta float64, scramble bool) *Zipf {
	if n == 0 {
		panic("workload: zipf over empty domain")
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: zipf theta must be in (0,1)")
	}
	z := &Zipf{n: n, theta: theta, scramble: scramble}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	z.half = math.Pow(0.5, theta)
	return z
}

// zetaCache memoizes the O(n) harmonic sum: experiment sweeps construct
// many KVS instances over the same 2.4M-key domain.
var zetaCache sync.Map // map[[2]float64]float64

func zeta(n uint64, theta float64) float64 {
	key := [2]float64{float64(n), theta}
	if v, ok := zetaCache.Load(key); ok {
		return v.(float64)
	}
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(key, s)
	return s
}

// N returns the domain size.
func (z *Zipf) N() uint64 { return z.n }

// Rank maps a uniform variate u in [0,1) to a zipf-distributed rank in
// [0, n): rank 0 is the most popular (before scrambling).
func (z *Zipf) Rank(u float64) uint64 {
	uz := u * z.zetan
	var r uint64
	switch {
	case uz < 1:
		r = 0
	case uz < 1+z.half:
		r = 1
	default:
		r = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if r >= z.n {
			r = z.n - 1
		}
	}
	if z.scramble {
		r = splitmix64(r) % z.n
	}
	return r
}

// Key maps a popularity rank (0 = hottest) to the item it lands on,
// applying the same scramble Rank does — the inverse view a warm-state
// installer needs to enumerate the hottest items.
func (z *Zipf) Key(rank uint64) uint64 {
	if z.scramble {
		return splitmix64(rank) % z.n
	}
	return rank
}

// Sample derives a rank deterministically from an arbitrary 64-bit tag.
func (z *Zipf) Sample(tag uint64) uint64 {
	return z.Rank(unitFloat(splitmix64(tag)))
}
