package workload

import "sweeper/internal/addr"

// Driver is one networked application pluggable into the simulated machine.
// The machine composes a driver purely through this interface: the driver
// owns its address-space layout and converts each arriving packet into the
// access program (the app read/write hooks) a core executes. Implementations
// must be deterministic in the packet tag so runs are reproducible.
type Driver interface {
	Workload

	// Layout allocates (or, after an address-space Reset, re-allocates)
	// the driver's data structures. The machine calls it exactly once per
	// configure, before any traffic is generated; drivers must repeat the
	// same allocation sequence every time so a pooled machine rebuilds the
	// workload at the exact addresses a fresh machine would use.
	Layout(space *addr.Space)

	// ExtraServiceCycles returns additional per-request service delay the
	// workload imposes beyond its plan's compute (zero for most drivers).
	// It must be deterministic in tag.
	ExtraServiceCycles(tag uint64) uint64

	// Snapshot reports the driver's functional counters, in a stable
	// order, for reports and tests.
	Snapshot() []Counter
}

// Counter is one named functional statistic of a driver ("gets", "sets",
// "forwarded", ...).
type Counter struct {
	Name  string
	Value uint64
}

// FFRequest summarizes one functionally-executed request: what the core
// would have produced had it run the full plan, minus the per-op detail.
type FFRequest struct {
	RespBytes     uint64
	ComputeCycles uint64
	// ReadFullPacket mirrors Plan.ReadFullPacket: whether the whole payload
	// (vs only the header line) is read from the RX buffer.
	ReadFullPacket bool
}

// FastForwarder is implemented by drivers that can execute a request
// functionally during fast-forward intervals: application-data accesses are
// streamed through touch (in the same order the timed plan would issue them)
// instead of materializing a Plan, and the driver's functional state
// (counters, KVS log/fingerprints) advances exactly as PlanRequest would.
// Drivers without it fall back to PlanRequest during fast-forward.
type FastForwarder interface {
	FastForward(tag uint64, pktBytes uint64, touch func(a uint64, write, full bool)) FFRequest
}

// ClusterSharder is implemented by drivers that can shard their primary
// data structure across the nodes of a cluster. The machine calls
// SetCluster exactly once, before Layout, on every node of a rack: the
// driver then lays out only the shard homed on nodeID and emits
// addr.Remote(node, local) references for data homed elsewhere, which the
// machine routes over the cluster's fabric. Every node's driver must
// compute an identical home assignment (same keys -> same homes) from
// (nodes, nodeID) alone, so the per-node instances agree without
// communicating. Drivers without the interface are rejected when a
// cluster scenario selects them.
type ClusterSharder interface {
	SetCluster(nodes, nodeID int)
}

// RequestSizer is implemented by drivers whose request wire size varies by
// tag (a KVS GET carries only a key, a SET the whole item); traffic
// generators consult it to size injected packets.
type RequestSizer interface {
	RequestBytes(tag uint64) uint64
}

// LLCWarmer is implemented by drivers whose steady state keeps the cache
// hierarchy full of dirty application data. When a machine's configuration
// asks for a warm LLC, it pre-fills the hierarchy only for drivers that
// report true, so short measurement windows observe steady-state eviction
// traffic from the first cycle.
type LLCWarmer interface {
	WarmLLC() bool
}

// StateWarmer is implemented by workloads (drivers or streams) whose steady
// state keeps a known data set cache-resident — route tables, private
// arrays, hot items. WarmLines enumerates those line addresses so a
// warm-started run installs them directly instead of simulating the
// multi-million-cycle coupon-collector fill a cold cache pays before the
// resident set is in place. lineBudget is the installer's capacity hint
// (roughly the shared cache's line count): workloads with unbounded hot
// sets emit their hottest ~lineBudget lines, coldest first, so the hottest
// land most-recently-used. Call only after Layout.
type StateWarmer interface {
	WarmLines(lineBudget uint64, emit func(line uint64, dirty bool))
}

// Stream is one background (non-networked) tenant's memory access stream:
// the collocated-core counterpart of Driver. X-Mem implements it; further
// tenants plug in through the stream registry without touching the machine.
type Stream interface {
	// Name labels the stream in reports.
	Name() string
	// Layout allocates (or re-allocates) the stream's dataset in the
	// address space and restarts the access sequence from seed. The same
	// determinism contract as Driver.Layout applies.
	Layout(space *addr.Space, seed uint64)
	// Next returns the next line address to access.
	Next() uint64
	// ComputeCycles is the fixed work between access batches.
	ComputeCycles() uint64
	// InstrPerAccess converts an access count into the IPC proxy the
	// collocation figures plot.
	InstrPerAccess() uint64
	// Accesses returns the number of addresses generated so far.
	Accesses() uint64
}
