package workload

import (
	"testing"

	"sweeper/internal/addr"
)

func clusterKVS(t *testing.T, nodes, nodeID int) *KVS {
	t.Helper()
	cfg := KVSConfig{
		Keys:          10_000,
		Buckets:       1 << 12,
		LogBytes:      16 << 20,
		ItemBytes:     1024,
		GetPercent:    5,
		ZipfTheta:     0.99,
		ComputeCycles: 300,
	}
	k := NewKVS(cfg)
	k.SetCluster(nodes, nodeID)
	k.Layout(testSpace())
	return k
}

// TestKVSClusterIdenticalLayout checks the sharding contract: every node's
// instance computes the same home and log location for every key from
// (nodes, key) alone, with identical base addresses.
func TestKVSClusterIdenticalLayout(t *testing.T) {
	insts := make([]*KVS, 4)
	for i := range insts {
		insts[i] = clusterKVS(t, 4, i)
	}
	ref := insts[0]
	for n, k := range insts[1:] {
		if k.logBase != ref.logBase || k.bucketsBase != ref.bucketsBase {
			t.Fatalf("node %d bases (%#x, %#x) differ from node 0 (%#x, %#x)",
				n+1, k.bucketsBase, k.logBase, ref.bucketsBase, ref.logBase)
		}
		for key := uint64(0); key < k.cfg.Keys; key++ {
			if k.keyHome[key] != ref.keyHome[key] || k.keyLoc[key] != ref.keyLoc[key] {
				t.Fatalf("node %d key %d at (home %d, loc %#x), node 0 says (%d, %#x)",
					n+1, key, k.keyHome[key], k.keyLoc[key], ref.keyHome[key], ref.keyLoc[key])
			}
		}
	}
	for key := uint64(0); key < 8; key++ {
		if got := ref.keyHome[key]; got != uint8(key%4) {
			t.Fatalf("key %d homed on %d, want %d", key, got, key%4)
		}
	}
}

// TestKVSClusterGetAddresses checks a GET's item reads are local log lines
// for a locally homed key and addr.Remote references to the home's log
// lines otherwise; bucket probes stay local either way.
func TestKVSClusterGetAddresses(t *testing.T) {
	k := clusterKVS(t, 4, 1)
	var plan Plan
	var seenLocal, seenRemote bool
	for tag := uint64(0); tag < 2000; tag++ {
		isGet, key := k.DecodeOp(tag)
		if !isGet {
			continue
		}
		home := int(k.keyHome[key])
		wantLoc := k.logBase + k.keyLoc[key]
		k.PlanRequest(tag, 64, &plan)
		if bucket := plan.Ops[0].Addr; addr.IsRemote(bucket) {
			t.Fatalf("bucket probe %#x is remote", bucket)
		}
		for i, op := range plan.Ops[1:] {
			a := op.Addr
			if home == 1 {
				seenLocal = true
				if addr.IsRemote(a) || a != wantLoc+uint64(i)*addr.LineBytes {
					t.Fatalf("local GET op %d addr %#x, want %#x", i, a, wantLoc+uint64(i)*addr.LineBytes)
				}
			} else {
				seenRemote = true
				if !addr.IsRemote(a) {
					t.Fatalf("remote GET op %d addr %#x not remote (key homed on %d)", i, a, home)
				}
				n, local := addr.RemoteParts(a)
				if n != home || local != wantLoc+uint64(i)*addr.LineBytes {
					t.Fatalf("remote GET op %d decodes to (%d, %#x), want (%d, %#x)",
						i, n, local, home, wantLoc+uint64(i)*addr.LineBytes)
				}
			}
		}
	}
	if !seenLocal || !seenRemote {
		t.Fatalf("GET sweep covered local=%v remote=%v; need both", seenLocal, seenRemote)
	}
}

// TestKVSClusterSetRehomesLocally checks a SET appends to the serving
// node's own log (local full-line writes, no fabric) and re-homes the key
// there, so a following GET on the same node is local.
func TestKVSClusterSetRehomesLocally(t *testing.T) {
	k := clusterKVS(t, 4, 2)
	var setTag uint64
	var key uint64
	for tag := uint64(0); ; tag++ {
		if isGet, kk := k.DecodeOp(tag); !isGet && int(k.keyHome[kk]) != 2 {
			setTag, key = tag, kk
			break
		}
	}
	wantHead := k.logHeads[2]
	var plan Plan
	k.PlanRequest(setTag, 1024, &plan)
	for i, op := range plan.Ops {
		if addr.IsRemote(op.Addr) {
			t.Fatalf("SET op %d addr %#x crossed the fabric", i, op.Addr)
		}
	}
	if k.keyHome[key] != 2 || k.keyLoc[key] != wantHead {
		t.Fatalf("after SET key %d at (home %d, loc %#x), want (2, %#x)",
			key, k.keyHome[key], k.keyLoc[key], wantHead)
	}
	if got := k.itemAddr(key); addr.IsRemote(got) {
		t.Fatalf("re-homed key still reads remotely: %#x", got)
	}
}

// TestKVSStandaloneUnsharded locks that a store without SetCluster never
// allocates homes or emits remote addresses.
func TestKVSStandaloneUnsharded(t *testing.T) {
	k := smallKVS(t)
	if k.keyHome != nil || k.logHeads != nil {
		t.Fatal("standalone store grew cluster state")
	}
	var plan Plan
	for tag := uint64(0); tag < 500; tag++ {
		k.PlanRequest(tag, 1024, &plan)
		for i, op := range plan.Ops {
			if addr.IsRemote(op.Addr) {
				t.Fatalf("tag %d op %d emitted remote address %#x", tag, i, op.Addr)
			}
		}
	}
}
