package workload

import (
	"fmt"

	"sweeper/internal/addr"
)

// XMemConfig sizes the memory-intensive collocated tenant of §VI-E.
type XMemConfig struct {
	// ArrayBytes is the private working set per instance; the paper uses
	// 2MB, exceeding the aggregate private L1+L2 capacity.
	ArrayBytes uint64
	// ComputeCycles is the fixed work between dependent accesses.
	ComputeCycles uint64
	// AccessesPerInstr approximates X-Mem's instruction mix so an IPC
	// proxy can be reported: instructions retired per memory access.
	InstrPerAccess uint64
}

// DefaultXMemConfig returns the paper's 2MB random-access configuration.
func DefaultXMemConfig() XMemConfig {
	return XMemConfig{ArrayBytes: 2 << 20, ComputeCycles: 4, InstrPerAccess: 8}
}

// XMem models one instance: a stream of dependent random line accesses over
// a private array. Each collocated core owns one instance.
type XMem struct {
	cfg   XMemConfig
	base  uint64
	lines uint64
	state uint64

	accesses uint64
}

// NewXMem allocates the instance's private array. seed differentiates the
// streams of collocated instances.
func NewXMem(cfg XMemConfig, space *addr.Space, seed uint64) *XMem {
	if cfg.ArrayBytes < addr.LineBytes {
		panic("workload: xmem array must hold at least one line")
	}
	return &XMem{
		cfg:   cfg,
		base:  space.AllocApp(cfg.ArrayBytes),
		lines: cfg.ArrayBytes / addr.LineBytes,
		state: splitmix64(seed | 1),
	}
}

// Reset re-allocates the private array in a freshly Reset address space and
// restarts the access stream from seed, mirroring NewXMem.
func (x *XMem) Reset(space *addr.Space, seed uint64) {
	x.base = space.AllocApp(x.cfg.ArrayBytes)
	x.state = splitmix64(seed | 1)
	x.accesses = 0
}

// Name labels the instance.
func (x *XMem) Name() string { return fmt.Sprintf("xmem-%dMB", x.cfg.ArrayBytes>>20) }

// Config returns the instance's configuration.
func (x *XMem) Config() XMemConfig { return x.cfg }

// Next returns the next dependent random line address in the stream.
func (x *XMem) Next() uint64 {
	x.state = splitmix64(x.state)
	x.accesses++
	return x.base + (x.state%x.lines)*addr.LineBytes
}

// Accesses returns the number of accesses generated.
func (x *XMem) Accesses() uint64 { return x.accesses }

// IPC converts an access count over a cycle window into the instructions-
// per-cycle proxy the paper plots for X-Mem in Figure 9.
func (x *XMem) IPC(accesses, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(accesses*x.cfg.InstrPerAccess) / float64(cycles)
}
