package workload

import (
	"fmt"

	"sweeper/internal/addr"
)

// XMemConfig sizes the memory-intensive collocated tenant of §VI-E.
type XMemConfig struct {
	// ArrayBytes is the private working set per instance; the paper uses
	// 2MB, exceeding the aggregate private L1+L2 capacity.
	ArrayBytes uint64
	// ComputeCycles is the fixed work between dependent accesses.
	ComputeCycles uint64
	// AccessesPerInstr approximates X-Mem's instruction mix so an IPC
	// proxy can be reported: instructions retired per memory access.
	InstrPerAccess uint64
}

// DefaultXMemConfig returns the paper's 2MB random-access configuration.
func DefaultXMemConfig() XMemConfig {
	return XMemConfig{ArrayBytes: 2 << 20, ComputeCycles: 4, InstrPerAccess: 8}
}

// XMem models one instance: a stream of dependent random line accesses over
// a private array. Each collocated core owns one instance.
type XMem struct {
	cfg   XMemConfig
	base  uint64
	lines uint64
	state uint64

	accesses uint64
}

// NewXMem builds one instance; call Layout to allocate its private array and
// seed the stream (the seed differentiates collocated instances).
func NewXMem(cfg XMemConfig) *XMem {
	if cfg.ArrayBytes < addr.LineBytes {
		panic("workload: xmem array must hold at least one line")
	}
	return &XMem{
		cfg:   cfg,
		lines: cfg.ArrayBytes / addr.LineBytes,
	}
}

// Layout implements Stream: it allocates the private array in the address
// space and (re)starts the access sequence from seed. Re-laying-out against
// a freshly Reset space reproduces a fresh instance exactly.
func (x *XMem) Layout(space *addr.Space, seed uint64) {
	x.base = space.AllocApp(x.cfg.ArrayBytes)
	x.state = splitmix64(seed | 1)
	x.accesses = 0
}

// Name labels the instance.
func (x *XMem) Name() string { return fmt.Sprintf("xmem-%dMB", x.cfg.ArrayBytes>>20) }

// Config returns the instance's configuration.
func (x *XMem) Config() XMemConfig { return x.cfg }

// ComputeCycles implements Stream: the fixed gap between access batches.
func (x *XMem) ComputeCycles() uint64 { return x.cfg.ComputeCycles }

// InstrPerAccess implements Stream: the IPC-proxy conversion factor.
func (x *XMem) InstrPerAccess() uint64 { return x.cfg.InstrPerAccess }

// Next returns the next dependent random line address in the stream.
func (x *XMem) Next() uint64 {
	x.state = splitmix64(x.state)
	x.accesses++
	return x.base + (x.state%x.lines)*addr.LineBytes
}

// Accesses returns the number of accesses generated.
func (x *XMem) Accesses() uint64 { return x.accesses }

// WarmLines implements StateWarmer: the private array is the instance's
// resident set. Dependent random accesses touch every line only after a
// coupon-collector fill spanning millions of cycles; installing the array
// up front starts the run at steady-state occupancy.
func (x *XMem) WarmLines(lineBudget uint64, emit func(line uint64, dirty bool)) {
	n := x.lines
	if n > lineBudget {
		n = lineBudget
	}
	for i := uint64(0); i < n; i++ {
		emit(x.base+i*addr.LineBytes, false)
	}
}

// IPC converts an access count over a cycle window into the instructions-
// per-cycle proxy the paper plots for X-Mem in Figure 9.
func (x *XMem) IPC(accesses, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(accesses*x.cfg.InstrPerAccess) / float64(cycles)
}
