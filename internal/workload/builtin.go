package workload

// Canonical registry names of the paper's workloads. Machine configurations
// and scenario specs refer to workloads by these strings; new workloads pick
// a fresh name and call Register/RegisterStream from their own package.
const (
	// NameKVS is the MICA-like key-value store (§IV-A).
	NameKVS = "kvs"
	// NameL3Fwd is the 16k-rule L3 forwarder (§IV-B).
	NameL3Fwd = "l3fwd"
	// NameL3FwdL1 is the L1-resident-table forwarder (§VI-E).
	NameL3FwdL1 = "l3fwd-l1"
	// NameXMem is the memory-intensive collocated tenant (§VI-E).
	NameXMem = "xmem"
)

func init() {
	Register(Registration{
		Name: NameKVS,
		New: func(p Params) (Driver, error) {
			return NewKVS(DefaultKVSConfig(p.ItemBytes)), nil
		},
		// GET responses carry a whole item back.
		RespSlotBytes: func(p Params) uint64 { return p.ItemBytes },
		Validate: func(p Params) error {
			return DefaultKVSConfig(p.ItemBytes).Validate()
		},
	})
	Register(Registration{
		Name: NameL3Fwd,
		New: func(p Params) (Driver, error) {
			return NewL3Fwd(DefaultL3FwdConfig()), nil
		},
	})
	Register(Registration{
		Name: NameL3FwdL1,
		New: func(p Params) (Driver, error) {
			return NewL3Fwd(L1ResidentL3FwdConfig()), nil
		},
	})
	RegisterStream(StreamRegistration{
		Name: NameXMem,
		New: func(p Params) (Stream, error) {
			return NewXMem(DefaultXMemConfig()), nil
		},
	})
}
