package stats

import (
	"math"
	"math/rand"
	"testing"
)

// naive two-pass mean/variance for cross-checking.
func naiveMeanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return mean, variance / float64(len(xs)-1)
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 1000} {
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 100
			w.Add(xs[i])
		}
		mean, variance := naiveMeanVar(xs)
		if math.Abs(w.Mean()-mean) > 1e-9*math.Abs(mean) {
			t.Fatalf("n=%d mean %g vs %g", n, w.Mean(), mean)
		}
		if math.Abs(w.Var()-variance) > 1e-9*math.Max(variance, 1) {
			t.Fatalf("n=%d var %g vs %g", n, w.Var(), variance)
		}
		if w.N() != uint64(n) {
			t.Fatalf("n=%d N=%d", n, w.N())
		}
	}
}

func TestWelfordCI95(t *testing.T) {
	var w Welford
	if w.CI95() != 0 {
		t.Fatal("empty accumulator must report zero half-width")
	}
	w.Add(10)
	if w.CI95() != 0 {
		t.Fatal("single observation must report zero half-width")
	}
	w.Add(14)
	// n=2: mean 12, s=2√2, stderr=2, t(df=1)=12.706 → half-width 25.412.
	if hw := w.CI95(); math.Abs(hw-25.412) > 1e-9 {
		t.Fatalf("n=2 half-width %g, want 25.412", hw)
	}

	// Constant stream: half-width collapses to zero at any n.
	var c Welford
	for i := 0; i < 40; i++ {
		c.Add(5)
	}
	if c.CI95() != 0 {
		t.Fatalf("constant stream half-width %g", c.CI95())
	}

	// Large n uses the normal critical value.
	var big Welford
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		big.Add(rng.NormFloat64())
	}
	want := 1.96 * big.StdErr()
	if math.Abs(big.CI95()-want) > 1e-12 {
		t.Fatalf("large-n half-width %g, want %g", big.CI95(), want)
	}
}

func TestTCrit95Table(t *testing.T) {
	if tCrit95(1) != 12.706 || tCrit95(30) != 2.042 || tCrit95(31) != 1.96 {
		t.Fatalf("t-table lookup broken: %g %g %g", tCrit95(1), tCrit95(30), tCrit95(31))
	}
	// Critical values must decrease toward the normal limit.
	prev := math.Inf(1)
	for df := uint64(1); df <= 40; df++ {
		v := tCrit95(df)
		if v > prev {
			t.Fatalf("t-table non-monotone at df=%d", df)
		}
		prev = v
	}
}

func TestEstimateRelHalfWidth(t *testing.T) {
	if r := (Estimate{Mean: 100, HalfWidth: 5}).RelHalfWidth(); r != 0.05 {
		t.Fatalf("rel = %g", r)
	}
	if r := (Estimate{Mean: -100, HalfWidth: 5}).RelHalfWidth(); r != 0.05 {
		t.Fatalf("negative-mean rel = %g", r)
	}
	if r := (Estimate{}).RelHalfWidth(); r != 0 {
		t.Fatalf("zero estimate rel = %g", r)
	}
	if r := (Estimate{HalfWidth: 1}).RelHalfWidth(); !math.IsInf(r, 1) {
		t.Fatalf("zero-mean nonzero-width rel = %g", r)
	}
}
