package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestHistogramMergeEqualsUnionProperty checks that merging per-part
// histograms is indistinguishable from recording the union stream into one
// histogram: identical internal state (hence identical count/mean/percentiles
// /CDF), over random geometries and overflow fractions including the
// all-overflow degenerate end and the max-clamp path (top occupied bin
// partially filled).
func TestHistogramMergeEqualsUnionProperty(t *testing.T) {
	f := func(seed int64, binW, bins uint8, n, overFrac16 uint16, parts uint8) bool {
		c := genCase(seed, binW, bins, n, overFrac16)
		k := int(parts)%5 + 1

		union := NewHistogram(c.binWidth, c.numBins)
		for _, v := range c.samples {
			union.Record(v)
		}

		merged := NewHistogram(c.binWidth, c.numBins)
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
		partHists := make([]*Histogram, k)
		for i := range partHists {
			partHists[i] = NewHistogram(c.binWidth, c.numBins)
		}
		for _, v := range c.samples {
			partHists[rng.Intn(k)].Record(v)
		}
		for _, ph := range partHists {
			merged.Merge(ph)
		}

		if !reflect.DeepEqual(merged, union) {
			t.Logf("merged %+v != union %+v", merged, union)
			return false
		}
		// Belt and braces on the derived views the simulator reports.
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			if merged.Percentile(q) != union.Percentile(q) {
				t.Logf("q=%g: %d vs %d", q, merged.Percentile(q), union.Percentile(q))
				return false
			}
		}
		return reflect.DeepEqual(merged.CDF(), union.CDF()) &&
			merged.Mean() == union.Mean() &&
			merged.Count() == union.Count() &&
			merged.Min() == union.Min() &&
			merged.Max() == union.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeEmptyOperands pins the sentinel handling: merging an
// empty histogram in either direction must not disturb min/max/overflowMin.
func TestHistogramMergeEmptyOperands(t *testing.T) {
	full := NewHistogram(2, 4) // binned range [0,8)
	for _, v := range []uint64{1, 5, 20} {
		full.Record(v)
	}
	want := *full

	full.Merge(NewHistogram(2, 4))
	if !reflect.DeepEqual(*full, want) {
		t.Fatalf("merge of empty changed state: %+v vs %+v", *full, want)
	}

	empty := NewHistogram(2, 4)
	empty.Merge(full)
	if !reflect.DeepEqual(*empty, want) {
		t.Fatalf("merge into empty differs: %+v vs %+v", *empty, want)
	}
	if empty.Min() != 1 || empty.Max() != 20 {
		t.Fatalf("min/max after merge into empty: %d/%d", empty.Min(), empty.Max())
	}
}

// TestHistogramMergeMaxClamp exercises the max-clamp path from PR 5 across a
// merge: the top occupied bin is partially filled, so binned quantile
// estimates must clamp to the merged (not per-part) recorded max.
func TestHistogramMergeMaxClamp(t *testing.T) {
	a := NewHistogram(10, 10)
	b := NewHistogram(10, 10)
	for i := 0; i < 9; i++ {
		a.Record(5)
	}
	b.Record(91) // lands in bin [90,100); upper edge 100 exceeds the sample

	m := NewHistogram(10, 10)
	m.Merge(a)
	m.Merge(b)
	if got := m.Percentile(0.999); got != 91 {
		t.Fatalf("p99.9 = %d, want clamp to merged max 91", got)
	}
	if m.Percentile(1) != 91 {
		t.Fatalf("p100 = %d, want 91", m.Percentile(1))
	}
}

// TestHistogramMergeGeometryMismatch checks both mismatch axes panic.
func TestHistogramMergeGeometryMismatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    *Histogram
	}{
		{"binWidth", NewHistogram(4, 8)},
		{"numBins", NewHistogram(2, 16)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on geometry mismatch")
				}
			}()
			NewHistogram(2, 8).Merge(tc.o)
		})
	}
}
