package stats

import "math"

// Welford accumulates a running mean and variance of float64 observations
// using Welford's online algorithm, which is numerically stable for the
// long streams of per-interval means the sampled-simulation mode produces.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean, or 0 with fewer than two
// observations.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.Var() / float64(w.n))
}

// tTable95 holds two-sided Student-t critical values at 95% confidence for
// degrees of freedom 1..30; beyond that the normal approximation 1.96 is
// close enough for interval-count purposes.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom.
func tCrit95(df uint64) float64 {
	if df == 0 {
		return math.Inf(1)
	}
	if df <= uint64(len(tTable95)) {
		return tTable95[df-1]
	}
	return 1.96
}

// CI95 returns the half-width of the two-sided 95% confidence interval for
// the mean (Student-t over n-1 degrees of freedom), or 0 with fewer than two
// observations.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return tCrit95(w.n-1) * w.StdErr()
}

// Estimate snapshots the accumulator as a reportable point estimate.
func (w *Welford) Estimate() Estimate {
	return Estimate{Mean: w.mean, HalfWidth: w.CI95(), N: w.n}
}

// Estimate is a point estimate with its 95% confidence half-width, as
// reported by the sampled-simulation mode for each aggregated metric.
type Estimate struct {
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"ci95_half_width"`
	N         uint64  `json:"intervals"`
}

// RelHalfWidth returns the CI half-width as a fraction of the mean's
// magnitude, or +Inf when the mean is zero but the half-width is not (no
// meaningful relative precision yet). A zero estimate with zero half-width
// reports 0: it is exactly resolved.
func (e Estimate) RelHalfWidth() float64 {
	if e.Mean == 0 {
		if e.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return e.HalfWidth / math.Abs(e.Mean)
}
