package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records a distribution of latencies (in cycles) using fixed-width
// bins up to a cap, with an overflow bin for larger samples. Percentiles are
// exact to bin width; the overflow bin tracks its own mean so tail estimates
// stay sane under saturation.
type Histogram struct {
	binWidth     uint64
	bins         []uint64
	count        uint64
	sum          uint64
	max          uint64
	min          uint64
	overflow     uint64
	overflowSum  uint64
	overflowBase uint64
}

// NewHistogram creates a histogram with the given bin width (cycles per bin)
// and number of bins. Samples at or beyond binWidth*numBins land in the
// overflow bin.
func NewHistogram(binWidth uint64, numBins int) *Histogram {
	if binWidth == 0 {
		binWidth = 1
	}
	if numBins < 1 {
		numBins = 1
	}
	return &Histogram{
		binWidth:     binWidth,
		bins:         make([]uint64, numBins),
		min:          math.MaxUint64,
		overflowBase: binWidth * uint64(numBins),
	}
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
	idx := v / h.binWidth
	if idx >= uint64(len(h.bins)) {
		h.overflow++
		h.overflowSum += v
		return
	}
	h.bins[idx]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of recorded samples, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded sample, or 0 with no samples.
func (h *Histogram) Max() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded sample, or 0 with no samples.
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the value at quantile q in [0,1], estimated at the upper
// edge of the containing bin. For samples in the overflow bin it returns the
// overflow mean (or max for q == 1).
func (h *Histogram) Percentile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			return (uint64(i) + 1) * h.binWidth
		}
	}
	if h.overflow > 0 {
		return h.overflowMean()
	}
	return h.max
}

func (h *Histogram) overflowMean() uint64 {
	if h.overflow == 0 {
		return h.overflowBase
	}
	return h.overflowSum / h.overflow
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.count, h.sum, h.max, h.overflow, h.overflowSum = 0, 0, 0, 0, 0
	h.min = math.MaxUint64
}

// CDFPoint is one (latency, cumulative fraction) sample of a distribution.
type CDFPoint struct {
	Value    uint64
	Fraction float64
}

// CDF returns the cumulative distribution as (bin upper edge, fraction)
// points, including only non-empty bins, terminated by the overflow mass.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.bins {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{
			Value:    (uint64(i) + 1) * h.binWidth,
			Fraction: float64(cum) / float64(h.count),
		})
	}
	if h.overflow > 0 {
		pts = append(pts, CDFPoint{Value: h.max, Fraction: 1.0})
	}
	return pts
}

// String summarizes the distribution for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.Max())
}

// ExactPercentile computes quantile q over a raw sample slice (exact, used in
// tests to validate Histogram accuracy). The input is not modified.
func ExactPercentile(samples []uint64, q float64) uint64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]uint64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
