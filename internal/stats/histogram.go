package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records a distribution of latencies (in cycles) using fixed-width
// bins up to a cap, with an overflow bin for larger samples. Percentiles are
// exact to bin width; the overflow bin tracks its own min, max and mean so
// tail quantiles stay distinct and monotonic under saturation instead of
// collapsing to a single estimate.
type Histogram struct {
	binWidth     uint64
	bins         []uint64
	count        uint64
	sum          uint64
	max          uint64
	min          uint64
	overflow     uint64
	overflowSum  uint64
	overflowMin  uint64
	overflowBase uint64
}

// NewHistogram creates a histogram with the given bin width (cycles per bin)
// and number of bins. Samples at or beyond binWidth*numBins land in the
// overflow bin.
func NewHistogram(binWidth uint64, numBins int) *Histogram {
	if binWidth == 0 {
		binWidth = 1
	}
	if numBins < 1 {
		numBins = 1
	}
	return &Histogram{
		binWidth:     binWidth,
		bins:         make([]uint64, numBins),
		min:          math.MaxUint64,
		overflowMin:  math.MaxUint64,
		overflowBase: binWidth * uint64(numBins),
	}
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
	idx := v / h.binWidth
	if idx >= uint64(len(h.bins)) {
		h.overflow++
		h.overflowSum += v
		if v < h.overflowMin {
			h.overflowMin = v
		}
		return
	}
	h.bins[idx]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of recorded samples, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded sample, or 0 with no samples.
func (h *Histogram) Max() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded sample, or 0 with no samples.
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the value at quantile q in [0,1], estimated at the upper
// edge of the containing bin (clamped to the recorded max, so estimates are
// monotone in q up to and including q=1). Quantiles landing in the overflow bin are
// interpolated between the overflow min and max (anchored at the overflow
// mean), so p99, p99.9 and p99.99 stay distinct and monotonic even when the
// tail saturates the binned range.
func (h *Histogram) Percentile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			// Upper edge of the containing bin, clamped to the recorded
			// max: when the top occupied bin is partially filled its edge
			// can exceed every sample, which would put q<1 estimates above
			// Percentile(1) = max.
			v := (uint64(i) + 1) * h.binWidth
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	if h.overflow > 0 {
		// Rank within the overflow region, as a fraction in (0,1].
		return h.overflowQuantile(float64(target-cum) / float64(h.overflow))
	}
	return h.max
}

// overflowQuantile estimates the value at fraction p in (0,1] of the overflow
// mass. The overflow bin tracks only min, max and mean, so the distribution
// is modelled as two uniform pieces joined at the mean, with the piece masses
// chosen so the model's mean equals the tracked mean: mass f = (max-mean) /
// (max-min) on [min,mean] and 1-f on [mean,max]. The estimate is monotone in
// p, spans [min,max], and skews toward max exactly when the tail is heavy.
func (h *Histogram) overflowQuantile(p float64) uint64 {
	lo, hi := h.overflowMin, h.max
	if hi <= lo {
		return lo
	}
	mean := float64(h.overflowSum) / float64(h.overflow)
	f := (float64(hi) - mean) / float64(hi-lo)
	switch {
	case f >= 1: // mean == min: all mass at the low edge
		return lo
	case p <= f && f > 0:
		return lo + uint64(math.Round((mean-float64(lo))*(p/f)))
	default: // f in [0,1), p > f
		return uint64(math.Round(mean + (float64(hi)-mean)*(p-f)/(1-f)))
	}
}

// Merge folds another histogram's samples into h, as if every sample
// recorded into o had been recorded into h directly. Both histograms must
// share the same geometry (bin width and bin count); Merge panics otherwise,
// since silently mixing geometries would corrupt every quantile. The
// sampled-simulation mode uses this to combine per-detailed-interval
// histograms into one run-level distribution.
func (h *Histogram) Merge(o *Histogram) {
	if h.binWidth != o.binWidth || len(h.bins) != len(o.bins) {
		panic(fmt.Sprintf("stats: Merge geometry mismatch: %d×%d vs %d×%d",
			h.binWidth, len(h.bins), o.binWidth, len(o.bins)))
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	h.overflow += o.overflow
	h.overflowSum += o.overflowSum
	// Empty-side sentinels (max=0, min/overflowMin=MaxUint64) make the
	// comparisons correct without special-casing empty operands.
	if o.max > h.max {
		h.max = o.max
	}
	if o.min < h.min {
		h.min = o.min
	}
	if o.overflowMin < h.overflowMin {
		h.overflowMin = o.overflowMin
	}
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.count, h.sum, h.max, h.overflow, h.overflowSum = 0, 0, 0, 0, 0
	h.min = math.MaxUint64
	h.overflowMin = math.MaxUint64
}

// CDFPoint is one (latency, cumulative fraction) sample of a distribution.
type CDFPoint struct {
	Value    uint64
	Fraction float64
}

// CDF returns the cumulative distribution as (bin upper edge, fraction)
// points, including only non-empty bins. Overflow mass contributes two
// points: the crossing into the overflow region at its base and the
// terminating max, so the tail renders as a span rather than a fake
// vertical cliff at the maximum.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.bins {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{
			Value:    (uint64(i) + 1) * h.binWidth,
			Fraction: float64(cum) / float64(h.count),
		})
	}
	if h.overflow > 0 {
		if base := h.overflowBase; len(pts) == 0 || pts[len(pts)-1].Value < base {
			pts = append(pts, CDFPoint{
				Value:    base,
				Fraction: float64(cum) / float64(h.count),
			})
		}
		pts = append(pts, CDFPoint{Value: h.max, Fraction: 1.0})
	}
	return pts
}

// String summarizes the distribution for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.Max())
}

// ExactPercentile computes quantile q over a raw sample slice (exact, used in
// tests to validate Histogram accuracy). The input is not modified.
func ExactPercentile(samples []uint64, q float64) uint64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]uint64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
