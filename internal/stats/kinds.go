// Package stats provides the measurement machinery for the simulator:
// DRAM-traffic counters keyed by the paper's breakdown categories, latency
// histograms with percentile extraction, and throughput/bandwidth math.
package stats

// AccessKind classifies a DRAM transaction by its source, exactly matching
// the per-request memory-access breakdowns of Figures 1c, 2c, 5c and 7b.
type AccessKind uint8

const (
	// NICRXWr counts NIC writes of incoming packets directly to DRAM
	// (conventional DMA injection only).
	NICRXWr AccessKind = iota
	// NICTXRd counts NIC reads of transmit buffers from DRAM.
	NICTXRd
	// CPURXRd counts CPU demand reads of RX buffers that reach DRAM: the
	// signature of a premature buffer eviction (§II-B).
	CPURXRd
	// CPUTXRdWr counts CPU accesses to TX buffers that reach DRAM
	// (write-allocate fills and, under DMA, explicit flush traffic).
	CPUTXRdWr
	// CPUOtherRd counts CPU demand reads of application data from DRAM.
	CPUOtherRd
	// RXEvct counts dirty RX-buffer lines written back from the LLC to
	// DRAM: consumed buffer evictions, the paper's principal leak source.
	RXEvct
	// TXEvct counts dirty TX-buffer lines written back to DRAM.
	TXEvct
	// OtherEvct counts dirty application-data writebacks to DRAM.
	OtherEvct

	// NumKinds is the number of access kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	"NIC RX Wr",
	"NIC TX Rd",
	"CPU RX Rd",
	"CPU TX Rd/Wr",
	"CPU Other Rd",
	"RX Evct",
	"TX Evct",
	"Other Evct",
}

// String returns the paper's legend label for the kind.
func (k AccessKind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "unknown"
}

// IsWriteback reports whether the kind is DRAM write (writeback/DMA-write)
// traffic rather than demand-read traffic.
func (k AccessKind) IsWriteback() bool {
	switch k {
	case NICRXWr, RXEvct, TXEvct, OtherEvct:
		return true
	}
	return false
}

// Breakdown accumulates DRAM transactions by kind.
type Breakdown struct {
	counts [NumKinds]uint64
}

// Add records n transactions of the given kind.
func (b *Breakdown) Add(k AccessKind, n uint64) { b.counts[k] += n }

// Count returns the number of transactions recorded for the kind.
func (b *Breakdown) Count(k AccessKind) uint64 { return b.counts[k] }

// Total returns the total number of transactions across all kinds.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, c := range b.counts {
		t += c
	}
	return t
}

// Reset zeroes every counter.
func (b *Breakdown) Reset() { b.counts = [NumKinds]uint64{} }

// Snapshot returns a copy of the per-kind counters.
func (b *Breakdown) Snapshot() [NumKinds]uint64 { return b.counts }

// Sub returns the element-wise difference b - prev, for extracting the
// traffic of a measurement window from cumulative counters.
func (b *Breakdown) Sub(prev [NumKinds]uint64) [NumKinds]uint64 {
	var out [NumKinds]uint64
	for i := range out {
		out[i] = b.counts[i] - prev[i]
	}
	return out
}

// PerRequest converts a per-kind transaction count into accesses-per-request
// figures, as plotted in the paper's breakdown panels.
func PerRequest(counts [NumKinds]uint64, requests uint64) [NumKinds]float64 {
	var out [NumKinds]float64
	if requests == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(requests)
	}
	return out
}
