package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// histCase is one randomized histogram scenario: a bin geometry plus a sample
// mix with a controlled overflow fraction (possibly 0 or 1).
type histCase struct {
	binWidth uint64
	numBins  int
	samples  []uint64
}

// genCase derives a scenario from fuzzed inputs. overFrac16 selects the
// overflow fraction in [0,1] with both degenerate ends reachable.
func genCase(seed int64, binW uint8, bins uint8, n uint16, overFrac16 uint16) histCase {
	rng := rand.New(rand.NewSource(seed))
	c := histCase{
		binWidth: uint64(binW)%64 + 1,
		numBins:  int(bins)%256 + 1,
	}
	total := int(n)%2000 + 1
	overFrac := float64(overFrac16) / math.MaxUint16
	binnedMax := c.binWidth * uint64(c.numBins) // == overflowBase
	for i := 0; i < total; i++ {
		if rng.Float64() < overFrac {
			// Overflow sample: at or beyond the base, spread heavily.
			c.samples = append(c.samples, binnedMax+uint64(rng.ExpFloat64()*float64(binnedMax+1)))
		} else {
			c.samples = append(c.samples, uint64(rng.Int63n(int64(binnedMax))))
		}
	}
	return c
}

// TestHistogramPercentileVsExactProperty checks Percentile against the exact
// sample quantile over random bin widths, bin counts and overflow fractions,
// including the all-overflow degenerate case. Binned quantiles must be exact
// to one bin width; overflow quantiles must stay inside the true overflow
// sample range and be monotone in q.
func TestHistogramPercentileVsExactProperty(t *testing.T) {
	f := func(seed int64, binW, bins uint8, n, overFrac16 uint16) bool {
		c := genCase(seed, binW, bins, n, overFrac16)
		h := NewHistogram(c.binWidth, c.numBins)
		base := c.binWidth * uint64(c.numBins)
		var overMin, overMax uint64 = math.MaxUint64, 0
		for _, v := range c.samples {
			h.Record(v)
			if v >= base {
				if v < overMin {
					overMin = v
				}
				if v > overMax {
					overMax = v
				}
			}
		}
		qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
		prev := uint64(0)
		for _, q := range qs {
			exact := ExactPercentile(c.samples, q)
			got := h.Percentile(q)
			if got < prev {
				t.Logf("q=%g: non-monotone %d after %d", q, got, prev)
				return false
			}
			prev = got
			if exact < base {
				// Binned region: exact to one bin width.
				if got+c.binWidth < exact || got > exact+c.binWidth {
					t.Logf("q=%g: binned %d vs exact %d (width %d)", q, got, exact, c.binWidth)
					return false
				}
			} else {
				// Overflow region: the interpolation must stay inside
				// the true overflow sample range.
				if got < overMin || got > overMax {
					t.Logf("q=%g: overflow %d outside [%d,%d]", q, got, overMin, overMax)
					return false
				}
			}
		}
		if h.Percentile(1) != ExactPercentile(c.samples, 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramCDFVsExactProperty checks CDF structure over the same random
// scenarios: monotone in value and fraction, terminating at fraction 1, each
// point's fraction matching the exact empirical CDF at its value, and the
// overflow region entered through a crossing point at overflowBase.
func TestHistogramCDFVsExactProperty(t *testing.T) {
	f := func(seed int64, binW, bins uint8, n, overFrac16 uint16) bool {
		c := genCase(seed, binW, bins, n, overFrac16)
		h := NewHistogram(c.binWidth, c.numBins)
		base := c.binWidth * uint64(c.numBins)
		var overflow int
		for _, v := range c.samples {
			h.Record(v)
			if v >= base {
				overflow++
			}
		}
		cdf := h.CDF()
		if len(cdf) == 0 {
			return false
		}
		prevV, prevF := uint64(0), -1.0
		for _, p := range cdf {
			if p.Value < prevV || p.Fraction < prevF {
				t.Logf("non-monotone CDF at %+v", p)
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		if last := cdf[len(cdf)-1]; last.Fraction != 1.0 {
			return false
		}
		if overflow > 0 {
			// The crossing into the overflow region must be explicit:
			// some point at overflowBase carrying exactly the binned
			// mass fraction.
			wantFrac := float64(len(c.samples)-overflow) / float64(len(c.samples))
			found := false
			for _, p := range cdf {
				if p.Value == base && math.Abs(p.Fraction-wantFrac) < 1e-12 {
					found = true
					break
				}
			}
			if !found {
				t.Logf("missing overflowBase crossing at %d (want frac %g): %+v", base, wantFrac, cdf)
				return false
			}
			if cdf[len(cdf)-1].Value != h.Max() {
				return false
			}
		}
		// Every emitted fraction must match the exact empirical CDF at
		// its value (bin edges are inclusive upper bounds).
		for _, p := range cdf {
			var le int
			for _, v := range c.samples {
				if v <= p.Value {
					le++
				}
			}
			exact := float64(le) / float64(len(c.samples))
			if p.Fraction > exact+1e-12 {
				t.Logf("CDF overshoots empirical at %+v (exact %g)", p, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramAllOverflow pins the fully degenerate case: every sample in
// the overflow bin.
func TestHistogramAllOverflow(t *testing.T) {
	h := NewHistogram(2, 8) // binned range [0,16)
	samples := []uint64{20, 30, 40, 1000}
	for _, v := range samples {
		h.Record(v)
	}
	if p := h.Percentile(0.25); p < 20 || p > 1000 {
		t.Fatalf("p25 = %d outside overflow range", p)
	}
	if h.Percentile(1) != 1000 {
		t.Fatal("p100 must be the max")
	}
	prev := uint64(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("non-monotone at q=%g", q)
		}
		prev = p
	}
	cdf := h.CDF()
	if len(cdf) != 2 {
		t.Fatalf("all-overflow CDF = %+v, want base crossing + max", cdf)
	}
	if cdf[0].Value != 16 || cdf[0].Fraction != 0 {
		t.Fatalf("crossing = %+v, want {16 0}", cdf[0])
	}
	if cdf[1].Value != 1000 || cdf[1].Fraction != 1 {
		t.Fatalf("terminal = %+v, want {1000 1}", cdf[1])
	}
}
