package stats

import "testing"

// TestPercentileClampedToMax pins a case the property test found: all mass
// binned, the top occupied bin partially filled. The q<1 estimate used to be
// that bin's upper edge (9780), above Percentile(1) = the recorded max
// (9728) — non-monotone in q. Estimates must never exceed the max.
func TestPercentileClampedToMax(t *testing.T) {
	c := genCase(-7595230229451015488, 0xbb, 0xca, 0x753a, 0xdb5)
	h := NewHistogram(c.binWidth, c.numBins)
	for _, v := range c.samples {
		h.Record(v)
	}
	prev := uint64(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Percentile(q)
		if got < prev {
			t.Errorf("non-monotone at q=%g: %d after %d", q, got, prev)
		}
		if got > h.Max() {
			t.Errorf("q=%g estimate %d exceeds recorded max %d", q, got, h.Max())
		}
		prev = got
	}
}
