package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccessKindNames(t *testing.T) {
	want := map[AccessKind]string{
		NICRXWr:    "NIC RX Wr",
		NICTXRd:    "NIC TX Rd",
		CPURXRd:    "CPU RX Rd",
		CPUTXRdWr:  "CPU TX Rd/Wr",
		CPUOtherRd: "CPU Other Rd",
		RXEvct:     "RX Evct",
		TXEvct:     "TX Evct",
		OtherEvct:  "Other Evct",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if NumKinds.String() != "unknown" {
		t.Errorf("out-of-range kind stringifies as %q", NumKinds.String())
	}
}

func TestAccessKindWritebackClassification(t *testing.T) {
	writebacks := []AccessKind{NICRXWr, RXEvct, TXEvct, OtherEvct}
	reads := []AccessKind{NICTXRd, CPURXRd, CPUTXRdWr, CPUOtherRd}
	for _, k := range writebacks {
		if !k.IsWriteback() {
			t.Errorf("%v should be writeback traffic", k)
		}
	}
	for _, k := range reads {
		if k.IsWriteback() {
			t.Errorf("%v should be demand-read traffic", k)
		}
	}
}

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.Add(RXEvct, 3)
	b.Add(RXEvct, 2)
	b.Add(CPURXRd, 7)
	if b.Count(RXEvct) != 5 {
		t.Fatalf("Count(RXEvct) = %d, want 5", b.Count(RXEvct))
	}
	if b.Total() != 12 {
		t.Fatalf("Total() = %d, want 12", b.Total())
	}
	snap := b.Snapshot()
	b.Add(RXEvct, 10)
	diff := b.Sub(snap)
	if diff[RXEvct] != 10 || diff[CPURXRd] != 0 {
		t.Fatalf("Sub = %v", diff)
	}
	b.Reset()
	if b.Total() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestPerRequest(t *testing.T) {
	var counts [NumKinds]uint64
	counts[RXEvct] = 100
	got := PerRequest(counts, 50)
	if got[RXEvct] != 2 {
		t.Fatalf("PerRequest = %v", got[RXEvct])
	}
	zero := PerRequest(counts, 0)
	if zero[RXEvct] != 0 {
		t.Fatal("PerRequest with zero requests must be zero")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []uint64{5, 15, 15, 25} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 15 {
		t.Fatalf("Mean = %g, want 15", h.Mean())
	}
	if h.Min() != 5 || h.Max() != 25 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 10)
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.CDF() != nil {
		t.Fatal("empty histogram must have nil CDF")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram(1, 2000)
	var samples []uint64
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Intn(1000))
		samples = append(samples, v)
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := ExactPercentile(samples, q)
		got := h.Percentile(q)
		// Bin width 1 -> off by at most one bin edge.
		if got < exact || got > exact+1 {
			t.Errorf("q=%g: histogram %d vs exact %d", q, got, exact)
		}
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(1, 10) // covers [0,10)
	h.Record(5)
	h.Record(1_000_000)
	if h.Max() != 1_000_000 {
		t.Fatalf("Max = %d", h.Max())
	}
	if p := h.Percentile(1); p != 1_000_000 {
		t.Fatalf("P100 = %d", p)
	}
	// P99 of two samples lands in overflow; with a single overflow sample
	// the interpolation degenerates to that sample's value.
	if p := h.Percentile(0.99); p != 1_000_000 {
		t.Fatalf("P99 = %d, want overflow sample 1000000", p)
	}
}

// TestHistogramTailQuantilesDistinct is the regression test for the overflow
// collapse bug: with >1% of samples in the overflow bin, every tail quantile
// used to come back as the overflow mean, making p99, p99.9 and p99.99
// indistinguishable. Interpolating within the overflow region must keep them
// distinct, monotone, and close to the exact sample quantiles.
func TestHistogramTailQuantilesDistinct(t *testing.T) {
	h := NewHistogram(4, 1024) // binned range [0, 4096)
	rng := rand.New(rand.NewSource(7))
	var samples []uint64
	record := func(v uint64) {
		samples = append(samples, v)
		h.Record(v)
	}
	// Body: 95% of mass well inside the binned range.
	for i := 0; i < 95_000; i++ {
		record(uint64(rng.Intn(3000)))
	}
	// Heavy tail: 5% saturates the overflow bin, Pareto-ish spread.
	for i := 0; i < 5_000; i++ {
		record(5_000 + uint64(rng.ExpFloat64()*20_000))
	}

	p99 := h.Percentile(0.99)
	p999 := h.Percentile(0.999)
	p9999 := h.Percentile(0.9999)
	if p99 >= p999 || p999 >= p9999 {
		t.Fatalf("tail quantiles collapsed: p99=%d p99.9=%d p99.99=%d", p99, p999, p9999)
	}
	for _, tc := range []struct {
		q   float64
		got uint64
	}{{0.99, p99}, {0.999, p999}, {0.9999, p9999}} {
		exact := ExactPercentile(samples, tc.q)
		lo, hi := float64(exact)*0.5, float64(exact)*2
		if float64(tc.got) < lo || float64(tc.got) > hi {
			t.Errorf("q=%g: histogram %d vs exact %d (outside 2x band)", tc.q, tc.got, exact)
		}
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram(4, 256)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Record(uint64(rng.Intn(2000))) // includes overflow mass
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("no CDF points")
	}
	prevV, prevF := uint64(0), 0.0
	for _, p := range cdf {
		if p.Value < prevV || p.Fraction < prevF {
			t.Fatalf("CDF not monotone at %+v", p)
		}
		prevV, prevF = p.Value, p.Fraction
	}
	last := cdf[len(cdf)-1]
	if last.Fraction != 1.0 {
		t.Fatalf("CDF must end at 1.0, got %g", last.Fraction)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Record(3)
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear state")
	}
	h.Record(7)
	if h.Percentile(0.5) != 7 { // upper bin edge, clamped to the recorded max
		t.Fatalf("post-reset percentile = %d", h.Percentile(0.5))
	}
}

// Property: histogram percentiles with bin width w are within one bin of
// the exact sample percentile.
func TestHistogramPercentileProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		const width = 8
		h := NewHistogram(width, 1<<13)
		samples := make([]uint64, len(raw))
		for i, v := range raw {
			samples[i] = uint64(v)
			h.Record(uint64(v))
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.95, 0.99} {
			exact := ExactPercentile(samples, q)
			got := h.Percentile(q)
			if got+width < exact || got > exact+width {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRateConversions(t *testing.T) {
	// 3.2e9 cycles = 1 second.
	if got := Mrps(32_000_000, 3_200_000_000, 3.2e9); got != 32 {
		t.Fatalf("Mrps = %g, want 32", got)
	}
	// 1e9 transactions/sec * 64B = 64 GB/s.
	if got := GBps(1_000_000_000, 3_200_000_000, 3.2e9); got != 64 {
		t.Fatalf("GBps = %g, want 64", got)
	}
	if Mrps(10, 0, 3.2e9) != 0 || GBps(10, 0, 3.2e9) != 0 {
		t.Fatal("zero-cycle windows must yield zero rates")
	}
	if got := CyclesPerSecond(1e6, 3.2e9); got != 3200 {
		t.Fatalf("CyclesPerSecond = %g, want 3200", got)
	}
	if CyclesPerSecond(0, 3.2e9) != 0 {
		t.Fatal("non-positive rate must yield 0 gap")
	}
}

func TestExactPercentileEdges(t *testing.T) {
	if ExactPercentile(nil, 0.5) != 0 {
		t.Fatal("empty slice")
	}
	s := []uint64{5, 1, 9}
	if ExactPercentile(s, 0) != 1 || ExactPercentile(s, 1) != 9 {
		t.Fatal("extreme quantiles")
	}
	// Input must not be mutated.
	if s[0] != 5 || s[1] != 1 || s[2] != 9 {
		t.Fatal("ExactPercentile mutated its input")
	}
}
