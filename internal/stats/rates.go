package stats

// Rate helpers converting simulator counts into the units the paper reports.

// LineBytes is the size of one cache line / DRAM burst in bytes.
const LineBytes = 64

// Mrps converts a request count over a cycle window into millions of
// requests per second at the given core frequency in Hz.
func Mrps(requests uint64, cycles uint64, freqHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / freqHz
	return float64(requests) / seconds / 1e6
}

// GBps converts a DRAM transaction count (64B each) over a cycle window into
// gigabytes per second at the given core frequency in Hz.
func GBps(transactions uint64, cycles uint64, freqHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / freqHz
	return float64(transactions) * LineBytes / seconds / 1e9
}

// CyclesPerSecond converts an offered load in requests/second into the mean
// inter-arrival gap in cycles at the given frequency.
func CyclesPerSecond(ratePerSec float64, freqHz float64) float64 {
	if ratePerSec <= 0 {
		return 0
	}
	return freqHz / ratePerSec
}
