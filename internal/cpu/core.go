// Package cpu models the server's cores. A networked core runs the
// pseudocode loop of the paper's Figure 3: poll the RX ring, read the
// packet, execute the application's access plan, relinquish the consumed
// buffer (when Sweeper is on), build the response in a TX buffer and post a
// Work Queue entry. An X-Mem core runs the §VI-E memory-intensive tenant:
// an endless stream of dependent random accesses.
//
// Cores are in-order request processors: a request's service time is its
// fixed compute plus the sum of its memory access latencies, which is the
// first-order model behind the paper's AMAT-driven throughput results.
package cpu

import (
	"fmt"

	"sweeper/internal/addr"
	"sweeper/internal/nic"
	"sweeper/internal/obs"
	"sweeper/internal/sim"
	"sweeper/internal/workload"
)

// Env is everything a core needs from the rest of the machine. The machine
// package implements it; tests use fakes.
type Env interface {
	// PopPacket takes the oldest unconsumed packet off the core's ring.
	PopPacket(core int) (nic.Packet, bool)
	// OnPop lets closed-loop generators refill the ring.
	OnPop(now uint64, core int)
	// PlanRequest asks the workload for the packet's access plan.
	PlanRequest(tag uint64, pktBytes uint64, plan *workload.Plan)
	// RXRead loads one RX-buffer line; returns the completion cycle.
	RXRead(now uint64, core int, a uint64) uint64
	// AppRead and AppWrite access application data; AppWriteFull is a
	// streaming full-line store (no read-for-ownership).
	AppRead(now uint64, core int, a uint64) uint64
	AppWrite(now uint64, core int, a uint64) uint64
	AppWriteFull(now uint64, core int, a uint64) uint64
	// TXWrite stores one response line into the TX buffer.
	TXWrite(now uint64, core int, a uint64) uint64
	// Relinquish declares the RX buffer instance consumed (§V-A); a
	// no-op returning now when Sweeper is disabled.
	Relinquish(now uint64, core int, buf, size uint64) uint64
	// FreeRXSlot recycles the ring slot for the NIC.
	FreeRXSlot(core int)
	// Transmit posts a Work Queue entry.
	Transmit(now uint64, wqe nic.WorkQueueEntry)
	// ExtraServiceCycles returns additional service delay for this
	// request (the §VI-F processing spikes); usually zero.
	ExtraServiceCycles(core int, tag uint64) uint64
	// OnRequestDone reports a completed request for accounting.
	OnRequestDone(now uint64, core int, p nic.Packet, serviceCycles uint64)
}

// FFEnv is the optional fast-forward extension of Env: an environment that
// can execute a whole request functionally in one call. Cores detect it by
// type assertion at construction; environments without it (test fakes)
// simply never fast-forward.
type FFEnv interface {
	// FastForwarding reports whether the machine is currently inside a
	// fast-forward interval.
	FastForwarding() bool
	// FFServe executes packet p functionally for core: every cache/RX/TX
	// touch the timed pipeline would perform happens as direct calls (so
	// the hierarchy stays warm), and the returned done approximates the
	// request's completion cycle. usedTX reports whether a TX slot was
	// consumed (a response was produced at txAddr).
	FFServe(now uint64, core int, p nic.Packet, txAddr uint64) (done uint64, usedTX bool)
}

// CoreConfig tunes per-core behaviour.
type CoreConfig struct {
	// PollCycles is the fixed dispatch overhead per request (ring poll,
	// doorbell, descriptor handling).
	PollCycles uint64
	// TXSlots and TXSlotBytes shape the core's transmit ring. Response
	// buffers recycle quickly, so a modest in-flight window suffices.
	TXSlots     int
	TXSlotBytes uint64
	// TXBase is the address of TX slot 0.
	TXBase uint64
	// SweepTX sets the Work Queue SweepBuffer bit on posted entries
	// (§V-D NIC-driven sweeping).
	SweepTX bool
	// MLP is the memory-level parallelism width: how many independent
	// accesses the core keeps in flight (Table I's cores are 5-wide OoO
	// with a 352-entry ROB; MSHR-limited overlap is what matters here).
	// Independent accesses within a request phase are issued in batches
	// of MLP; the phase advances when the slowest completes.
	MLP int
	// Shard is the engine shard the core's events live on (0 on the
	// sequential engine). Cross-domain wakes from the NIC target it
	// explicitly; the core's own continuations inherit it from the
	// dispatching event.
	Shard int
}

// Core is one networked application core.
//
// A request is served as a sequence of single-access events: each memory
// access is issued at the simulated time its predecessor completed. Keeping
// per-access event granularity matters for fidelity — it guarantees the
// DRAM model observes the machine's accesses in global time order, so bank
// and bus queuing reflect true concurrency instead of artifacts of event
// batching.
type Core struct {
	id  int
	eng *sim.Engine
	env Env
	ff  FFEnv // nil when env cannot fast-forward
	cfg CoreConfig

	idle bool

	plan    workload.Plan
	nextTX  int
	rxLines []uint64
	txLines []uint64

	// In-flight request state.
	cur     nic.Packet
	start   uint64
	phase   phase
	idx     int
	txAddr  uint64
	txBytes uint64

	served uint64
}

// phase enumerates the request-service pipeline of Figure 3.
type phase uint8

const (
	phasePoll phase = iota
	phaseRXRead
	phaseAppOps
	phaseCompute
	phaseRelinquish
	phaseTXWrite
	phaseFinish
)

// Event args for the sim.Sink interface: cores schedule themselves through
// the engine's allocation-free path instead of per-event closures.
const (
	evTryServe = iota
	evStep
)

// OnEvent implements sim.Sink.
func (c *Core) OnEvent(now sim.Cycle, arg uint64) {
	if arg == evStep {
		c.step(now)
		return
	}
	c.tryServe(now)
}

// NewCore creates a core; call Start once the machine is assembled.
func NewCore(id int, eng *sim.Engine, env Env, cfg CoreConfig) *Core {
	if cfg.TXSlots <= 0 || cfg.TXSlotBytes == 0 {
		panic("cpu: core needs a TX ring")
	}
	if cfg.MLP <= 0 {
		cfg.MLP = 1
	}
	c := &Core{id: id, eng: eng, env: env, cfg: cfg, idle: true}
	c.ff, _ = env.(FFEnv)
	return c
}

// Reset returns the core to its just-constructed state under a new
// configuration, reusing the plan and line-address scratch slices. The
// retained capacity never changes behaviour: every slice is truncated before
// use and the access plan is rebuilt per request.
func (c *Core) Reset(cfg CoreConfig) {
	if cfg.TXSlots <= 0 || cfg.TXSlotBytes == 0 {
		panic("cpu: core needs a TX ring")
	}
	if cfg.MLP <= 0 {
		cfg.MLP = 1
	}
	c.cfg = cfg
	c.idle = true
	c.nextTX = 0
	c.rxLines = c.rxLines[:0]
	c.txLines = c.txLines[:0]
	c.cur = nic.Packet{}
	c.start = 0
	c.phase = phasePoll
	c.idx = 0
	c.txAddr, c.txBytes = 0, 0
	c.served = 0
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Served returns the number of requests this core completed.
func (c *Core) Served() uint64 { return c.served }

// Idle reports whether the core is waiting for packets.
func (c *Core) Idle() bool { return c.idle }

// RegisterMetrics exposes the core's served-request counter to the
// observability registry.
func (c *Core) RegisterMetrics(r *obs.Registry) {
	r.Counter(fmt.Sprintf("cpu.core%02d.served", c.id), func() uint64 { return c.served })
}

// Start begins polling shortly after the current cycle, staggered by core
// id so identical cores do not run in lockstep (lockstepped cores hammer
// the memory controller with synchronized bursts that no real system
// produces). It claims the serve chain immediately (idle = false) so that a
// Wake arriving before the first poll dispatches cannot schedule a second,
// concurrent chain for the core.
func (c *Core) Start() {
	c.idle = false
	c.eng.ScheduleAfter(uint64(c.id)*37, c, evTryServe)
}

// Wake nudges an idle core when a packet arrives. Busy cores ignore it:
// they re-poll when the current request completes. Wake is called from the
// NIC's dispatch context (the shared domain's shard), so it targets the
// core's own shard explicitly.
func (c *Core) Wake(now uint64) {
	if !c.idle {
		return
	}
	c.idle = false
	c.eng.ScheduleOnShard(c.cfg.Shard, now, c, evTryServe)
}

func (c *Core) tryServe(now uint64) {
	p, ok := c.env.PopPacket(c.id)
	if !ok {
		c.idle = true
		return
	}
	c.idle = false
	c.env.OnPop(now, c.id)
	if c.ff != nil && c.ff.FastForwarding() {
		// Fast-forward: the whole request collapses into one direct call
		// (FFServe performs the functional cache touches) plus one
		// continuation event at its approximate completion, instead of the
		// ~10-event timed pipeline.
		done, usedTX := c.ff.FFServe(now, c.id, p, c.txSlotAddr(c.nextTX))
		if usedTX {
			c.nextTX = (c.nextTX + 1) % c.cfg.TXSlots
		}
		c.served++
		c.eng.Schedule(done, c, evTryServe)
		return
	}
	c.beginRequest(now, p)
}

// beginRequest sets up the service pipeline for p and schedules its first
// step after the poll/dispatch overhead.
func (c *Core) beginRequest(now uint64, p nic.Packet) {
	c.cur = p
	c.start = now
	c.env.PlanRequest(p.Tag, p.Size, &c.plan)

	// The request is read from the RX buffer: the whole payload when the
	// application consumes it, otherwise just the header line.
	rxBytes := p.Size
	if !c.plan.ReadFullPacket {
		rxBytes = addr.LineBytes
	}
	c.rxLines = addr.LineAddrs(c.rxLines[:0], p.Addr, rxBytes)

	c.txBytes = c.plan.RespBytes
	if c.txBytes > c.cfg.TXSlotBytes {
		c.txBytes = c.cfg.TXSlotBytes
	}
	if c.txBytes > 0 {
		c.txAddr = c.txSlotAddr(c.nextTX)
		c.nextTX = (c.nextTX + 1) % c.cfg.TXSlots
		c.txLines = addr.LineAddrs(c.txLines[:0], c.txAddr, c.txBytes)
	} else {
		c.txLines = c.txLines[:0]
	}

	c.phase = phaseRXRead
	c.idx = 0
	c.eng.Schedule(now+c.cfg.PollCycles, c, evStep)
}

// step advances the in-flight request by exactly one access (or one
// bounded transition) and schedules the continuation at its completion.
func (c *Core) step(now uint64) {
	switch c.phase {
	case phaseRXRead:
		if c.idx < len(c.rxLines) {
			// Buffer lines are independent loads: overlap them up
			// to the MLP width.
			done := now
			for n := 0; n < c.cfg.MLP && c.idx < len(c.rxLines); n++ {
				if d := c.env.RXRead(now, c.id, c.rxLines[c.idx]); d > done {
					done = d
				}
				c.idx++
			}
			c.eng.Schedule(done, c, evStep)
			return
		}
		c.phase = phaseAppOps
		c.idx = 0
		c.step(now)

	case phaseAppOps:
		if c.idx < len(c.plan.Ops) {
			done := now
			for n := 0; n < c.cfg.MLP && c.idx < len(c.plan.Ops); n++ {
				op := c.plan.Ops[c.idx]
				c.idx++
				var d uint64
				switch {
				case op.Write && op.FullLine:
					d = c.env.AppWriteFull(now, c.id, op.Addr)
				case op.Write:
					d = c.env.AppWrite(now, c.id, op.Addr)
				default:
					d = c.env.AppRead(now, c.id, op.Addr)
				}
				if d > done {
					done = d
				}
			}
			c.eng.Schedule(done, c, evStep)
			return
		}
		c.phase = phaseCompute
		c.step(now)

	case phaseCompute:
		delay := c.plan.ComputeCycles + c.env.ExtraServiceCycles(c.id, c.cur.Tag)
		c.phase = phaseRelinquish
		c.eng.Schedule(now+delay, c, evStep)

	case phaseRelinquish:
		// The buffer instance is conclusively consumed: relinquish
		// before recycling the slot (§V-A ordering requirement).
		done := c.env.Relinquish(now, c.id, c.cur.Addr, c.cur.Size)
		c.env.FreeRXSlot(c.id)
		c.phase = phaseTXWrite
		c.idx = 0
		c.eng.Schedule(done, c, evStep)

	case phaseTXWrite:
		if c.idx < len(c.txLines) {
			done := now
			for n := 0; n < c.cfg.MLP && c.idx < len(c.txLines); n++ {
				if d := c.env.TXWrite(now, c.id, c.txLines[c.idx]); d > done {
					done = d
				}
				c.idx++
			}
			c.eng.Schedule(done, c, evStep)
			return
		}
		c.phase = phaseFinish
		c.step(now)

	case phaseFinish:
		if c.txBytes > 0 {
			c.env.Transmit(now, nic.WorkQueueEntry{
				Owner:       c.id,
				BufAddr:     c.txAddr,
				Size:        c.txBytes,
				SweepBuffer: c.cfg.SweepTX,
			})
		}
		c.served++
		c.env.OnRequestDone(now, c.id, c.cur, now-c.start)
		c.phase = phasePoll
		c.tryServe(now)
	}
}

func (c *Core) txSlotAddr(slot int) uint64 {
	return c.cfg.TXBase + uint64(slot)*c.cfg.TXSlotBytes
}

// XMemCore runs the §VI-E memory-intensive tenant: back-to-back random
// loads over a private array, with a small fixed compute gap. Independent
// accesses are overlapped up to XMemMLP wide.
type XMemCore struct {
	id     int
	eng    *sim.Engine
	env    Env
	ff     FFEnv // nil when env cannot fast-forward
	stream workload.Stream

	accesses uint64
	stopped  bool
}

// XMemMLP is the tenant's access overlap; X-Mem issues streams of
// independent accesses, not a dependent pointer chase.
const XMemMLP = 4

// ffXMemBatches is how many MLP-wide batches an X-Mem core executes per
// event while fast-forwarding. Global time-ordering of DRAM accesses does
// not matter functionally, so batching amortizes event overhead.
const ffXMemBatches = 16

// NewXMemCore creates an X-Mem tenant core.
func NewXMemCore(id int, eng *sim.Engine, env Env, stream workload.Stream) *XMemCore {
	x := &XMemCore{id: id, eng: eng, env: env, stream: stream}
	x.ff, _ = env.(FFEnv)
	return x
}

// Reset returns the tenant core to its just-constructed state. The caller
// resets the underlying stream separately (it owns the seed).
func (x *XMemCore) Reset() {
	x.accesses = 0
	x.stopped = false
}

// ID returns the core's index.
func (x *XMemCore) ID() int { return x.id }

// Accesses returns the cumulative access count.
func (x *XMemCore) Accesses() uint64 { return x.accesses }

// Stream returns the underlying access stream.
func (x *XMemCore) Stream() workload.Stream { return x.stream }

// RegisterMetrics exposes the tenant core's access counter to the
// observability registry.
func (x *XMemCore) RegisterMetrics(r *obs.Registry) {
	r.Counter(fmt.Sprintf("cpu.xmem%02d.accesses", x.id), func() uint64 { return x.accesses })
}

// OnEvent implements sim.Sink.
func (x *XMemCore) OnEvent(now sim.Cycle, _ uint64) { x.step(now) }

// Start begins the access loop.
func (x *XMemCore) Start() {
	x.eng.ScheduleAfter(0, x, 0)
}

// Stop halts the loop after the current batch.
func (x *XMemCore) Stop() { x.stopped = true }

func (x *XMemCore) step(now uint64) {
	if x.stopped {
		return
	}
	if x.ff != nil && x.ff.FastForwarding() {
		// Fast-forward: run several batches per event. Accesses still go
		// through the hierarchy (functional warming) but complete at flat
		// latencies, so exact inter-batch timing carries no information.
		done := now
		for b := 0; b < ffXMemBatches; b++ {
			batchDone := done
			for n := 0; n < XMemMLP; n++ {
				if d := x.env.AppRead(done, x.id, x.stream.Next()); d > batchDone {
					batchDone = d
				}
				x.accesses++
			}
			done = batchDone + x.stream.ComputeCycles()
		}
		x.eng.Schedule(done, x, 0)
		return
	}
	// One batch per event keeps the DRAM model observing accesses in
	// global time order (see Core).
	done := now
	for n := 0; n < XMemMLP; n++ {
		if d := x.env.AppRead(now, x.id, x.stream.Next()); d > done {
			done = d
		}
		x.accesses++
	}
	x.eng.Schedule(done+x.stream.ComputeCycles(), x, 0)
}
