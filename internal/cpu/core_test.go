package cpu

import (
	"testing"

	"sweeper/internal/addr"
	"sweeper/internal/nic"
	"sweeper/internal/sim"
	"sweeper/internal/workload"
)

// fakeEnv scripts packet delivery and records the core's actions in order.
type fakeEnv struct {
	queue   []nic.Packet
	plan    workload.Plan
	lat     uint64
	extra   uint64
	touched int // max packets to hand out (0 = all)

	trace      []string
	rxReads    []uint64
	appOps     []string
	txWrites   []uint64
	relinqs    [][2]uint64
	frees      int
	transmits  []nic.WorkQueueEntry
	done       []nic.Packet
	doneSvc    []uint64
	popCount   int
	onPops     int
	planCalled int
}

func (e *fakeEnv) PopPacket(core int) (nic.Packet, bool) {
	e.popCount++
	if len(e.queue) == 0 {
		return nic.Packet{}, false
	}
	p := e.queue[0]
	e.queue = e.queue[1:]
	return p, true
}

func (e *fakeEnv) OnPop(now uint64, core int) { e.onPops++ }

func (e *fakeEnv) PlanRequest(tag uint64, pkt uint64, plan *workload.Plan) {
	e.planCalled++
	*plan = e.plan
	plan.Ops = append([]workload.Op(nil), e.plan.Ops...)
}

func (e *fakeEnv) RXRead(now uint64, core int, a uint64) uint64 {
	e.trace = append(e.trace, "rx")
	e.rxReads = append(e.rxReads, a)
	return now + e.lat
}

func (e *fakeEnv) AppRead(now uint64, core int, a uint64) uint64 {
	e.trace = append(e.trace, "app")
	e.appOps = append(e.appOps, "r")
	return now + e.lat
}

func (e *fakeEnv) AppWrite(now uint64, core int, a uint64) uint64 {
	e.trace = append(e.trace, "app")
	e.appOps = append(e.appOps, "w")
	return now + e.lat
}

func (e *fakeEnv) AppWriteFull(now uint64, core int, a uint64) uint64 {
	e.trace = append(e.trace, "app")
	e.appOps = append(e.appOps, "W")
	return now + e.lat
}

func (e *fakeEnv) TXWrite(now uint64, core int, a uint64) uint64 {
	e.trace = append(e.trace, "tx")
	e.txWrites = append(e.txWrites, a)
	return now + e.lat
}

func (e *fakeEnv) Relinquish(now uint64, core int, buf, size uint64) uint64 {
	e.trace = append(e.trace, "relinquish")
	e.relinqs = append(e.relinqs, [2]uint64{buf, size})
	return now + 1
}

func (e *fakeEnv) FreeRXSlot(core int) {
	e.trace = append(e.trace, "free")
	e.frees++
}

func (e *fakeEnv) Transmit(now uint64, wqe nic.WorkQueueEntry) {
	e.trace = append(e.trace, "transmit")
	e.transmits = append(e.transmits, wqe)
}

func (e *fakeEnv) ExtraServiceCycles(core int, tag uint64) uint64 { return e.extra }

func (e *fakeEnv) OnRequestDone(now uint64, core int, p nic.Packet, svc uint64) {
	e.trace = append(e.trace, "done")
	e.done = append(e.done, p)
	e.doneSvc = append(e.doneSvc, svc)
}

func coreConfig() CoreConfig {
	return CoreConfig{
		PollCycles:  10,
		TXSlots:     4,
		TXSlotBytes: 1024,
		TXBase:      0x100000,
		MLP:         4,
	}
}

func runCore(t *testing.T, env *fakeEnv, cfg CoreConfig) *Core {
	t.Helper()
	eng := sim.NewEngine()
	c := NewCore(0, eng, env, cfg)
	c.Start()
	eng.Drain()
	return c
}

func onePacket(size uint64) []nic.Packet {
	return []nic.Packet{{Seq: 1, Arrival: 0, Size: size, Addr: 0x8000, Tag: 42}}
}

func TestRequestLifecycleOrdering(t *testing.T) {
	env := &fakeEnv{
		queue: onePacket(256),
		plan: workload.Plan{
			Ops:            []workload.Op{{Addr: 1}, {Addr: 2, Write: true}},
			ComputeCycles:  100,
			RespBytes:      128,
			ReadFullPacket: true,
		},
		lat: 5,
	}
	c := runCore(t, env, coreConfig())
	if c.Served() != 1 {
		t.Fatalf("served = %d", c.Served())
	}
	// Phase ordering: all RX reads, then app ops, then relinquish BEFORE
	// the slot is freed, then TX writes, then transmit, then done.
	var phases []string
	last := ""
	for _, step := range env.trace {
		if step != last {
			phases = append(phases, step)
			last = step
		}
	}
	want := []string{"rx", "app", "relinquish", "free", "tx", "transmit", "done"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

func TestRelinquishCoversWholeBufferBeforeFree(t *testing.T) {
	env := &fakeEnv{queue: onePacket(1024), plan: workload.Plan{ReadFullPacket: true}, lat: 1}
	runCore(t, env, coreConfig())
	if len(env.relinqs) != 1 || env.relinqs[0] != [2]uint64{0x8000, 1024} {
		t.Fatalf("relinquish = %v", env.relinqs)
	}
	if env.frees != 1 {
		t.Fatal("slot not freed")
	}
}

func TestRXReadsCoverPayload(t *testing.T) {
	env := &fakeEnv{queue: onePacket(1024), plan: workload.Plan{ReadFullPacket: true}, lat: 1}
	runCore(t, env, coreConfig())
	if len(env.rxReads) != 16 {
		t.Fatalf("rx reads = %d, want 16", len(env.rxReads))
	}
	if env.rxReads[0] != 0x8000 || env.rxReads[15] != 0x8000+15*64 {
		t.Fatal("rx addresses")
	}
}

func TestHeaderOnlyRead(t *testing.T) {
	env := &fakeEnv{queue: onePacket(1024), plan: workload.Plan{ReadFullPacket: false}, lat: 1}
	runCore(t, env, coreConfig())
	if len(env.rxReads) != 1 {
		t.Fatalf("header-only read count = %d", len(env.rxReads))
	}
}

func TestMLPBatchesAdvanceByMax(t *testing.T) {
	// 8 RX lines with MLP 4 and 5-cycle latency: two batches -> the RX
	// phase spans 10 cycles, not 40.
	env := &fakeEnv{queue: onePacket(512), plan: workload.Plan{ReadFullPacket: true}, lat: 5}
	cfg := coreConfig()
	cfg.PollCycles = 0
	eng := sim.NewEngine()
	c := NewCore(0, eng, env, cfg)
	c.Start()
	eng.Drain()
	// Service: RX 2 batches x 5 + relinquish 1 = 11 (no ops, no TX).
	if env.doneSvc[0] != 11 {
		t.Fatalf("service = %d, want 11", env.doneSvc[0])
	}
}

func TestNoTransmitWithoutResponse(t *testing.T) {
	env := &fakeEnv{queue: onePacket(64), plan: workload.Plan{RespBytes: 0, ReadFullPacket: true}, lat: 1}
	runCore(t, env, coreConfig())
	if len(env.transmits) != 0 || len(env.txWrites) != 0 {
		t.Fatal("transmitted an empty response")
	}
}

func TestResponseClampedToTXSlot(t *testing.T) {
	env := &fakeEnv{
		queue: onePacket(64),
		plan:  workload.Plan{RespBytes: 1 << 20, ReadFullPacket: true},
		lat:   1,
	}
	runCore(t, env, coreConfig())
	if env.transmits[0].Size != 1024 {
		t.Fatalf("response size %d not clamped to slot", env.transmits[0].Size)
	}
}

func TestTXSlotRotation(t *testing.T) {
	var pkts []nic.Packet
	for i := 0; i < 6; i++ {
		pkts = append(pkts, nic.Packet{Seq: uint64(i), Size: 64, Addr: 0x8000, Tag: uint64(i)})
	}
	env := &fakeEnv{queue: pkts, plan: workload.Plan{RespBytes: 64, ReadFullPacket: true}, lat: 1}
	runCore(t, env, coreConfig())
	if len(env.transmits) != 6 {
		t.Fatalf("transmits = %d", len(env.transmits))
	}
	// 4 TX slots: entries 0 and 4 share a buffer, 0 and 1 do not.
	if env.transmits[0].BufAddr == env.transmits[1].BufAddr {
		t.Fatal("TX slots not rotating")
	}
	if env.transmits[0].BufAddr != env.transmits[4].BufAddr {
		t.Fatal("TX ring not circular")
	}
}

func TestSweepTXFlagPropagates(t *testing.T) {
	env := &fakeEnv{queue: onePacket(64), plan: workload.Plan{RespBytes: 64, ReadFullPacket: true}, lat: 1}
	cfg := coreConfig()
	cfg.SweepTX = true
	eng := sim.NewEngine()
	NewCore(0, eng, env, cfg).Start()
	eng.Drain()
	if !env.transmits[0].SweepBuffer {
		t.Fatal("SweepBuffer bit not set")
	}
}

func TestSpikeExtendsService(t *testing.T) {
	base := &fakeEnv{queue: onePacket(64), plan: workload.Plan{ReadFullPacket: true}, lat: 1}
	runCore(t, base, coreConfig())
	spiky := &fakeEnv{queue: onePacket(64), plan: workload.Plan{ReadFullPacket: true}, lat: 1, extra: 5000}
	runCore(t, spiky, coreConfig())
	if spiky.doneSvc[0] != base.doneSvc[0]+5000 {
		t.Fatalf("spike service %d vs base %d", spiky.doneSvc[0], base.doneSvc[0])
	}
}

func TestIdleWakeServesLateArrival(t *testing.T) {
	env := &fakeEnv{plan: workload.Plan{ReadFullPacket: true}, lat: 1}
	eng := sim.NewEngine()
	c := NewCore(0, eng, env, coreConfig())
	c.Start()
	eng.RunUntil(100)
	if !c.Idle() {
		t.Fatal("core should be idle with no traffic")
	}
	env.queue = onePacket(64)
	c.Wake(eng.Now())
	eng.Drain()
	if c.Served() != 1 {
		t.Fatal("woken core did not serve")
	}
}

// Regression test: a Wake racing with Start must not create a second
// concurrent serve chain (the bug once doubled closed-loop throughput).
func TestWakeDuringStartDoesNotDoubleServe(t *testing.T) {
	var pkts []nic.Packet
	for i := 0; i < 4; i++ {
		pkts = append(pkts, nic.Packet{Seq: uint64(i), Size: 64, Addr: 0x8000})
	}
	env := &fakeEnv{queue: pkts, plan: workload.Plan{ComputeCycles: 100, ReadFullPacket: true}, lat: 1}
	eng := sim.NewEngine()
	c := NewCore(0, eng, env, coreConfig())
	c.Start()
	c.Wake(0) // arrival callback before the first poll dispatched
	c.Wake(0)
	eng.Drain()
	if c.Served() != 4 {
		t.Fatalf("served = %d", c.Served())
	}
	// With a single chain, requests are strictly sequential: done count
	// equals pop successes and phases never interleave. The interleaving
	// check: each "done" is preceded by exactly one "rx" run since the
	// previous done.
	rxRuns, dones := 0, 0
	inRX := false
	for _, s := range env.trace {
		switch s {
		case "rx":
			if !inRX {
				rxRuns++
				inRX = true
			}
		default:
			inRX = false
			if s == "done" {
				dones++
			}
		}
	}
	if rxRuns != dones {
		t.Fatalf("interleaved chains: %d rx runs for %d dones", rxRuns, dones)
	}
}

func TestBusyWakeIgnored(t *testing.T) {
	env := &fakeEnv{queue: onePacket(1024), plan: workload.Plan{ComputeCycles: 1000, ReadFullPacket: true}, lat: 10}
	eng := sim.NewEngine()
	c := NewCore(0, eng, env, coreConfig())
	c.Start()
	eng.RunUntil(50) // mid-request
	c.Wake(eng.Now())
	eng.Drain()
	if c.Served() != 1 || env.popCount > 3 {
		t.Fatalf("served=%d pops=%d", c.Served(), env.popCount)
	}
}

func TestStaggeredStart(t *testing.T) {
	env := &fakeEnv{plan: workload.Plan{ReadFullPacket: true}}
	eng := sim.NewEngine()
	c := NewCore(5, eng, env, coreConfig())
	c.Start()
	eng.Drain()
	if eng.Now() != 5*37 {
		t.Fatalf("core 5 polled at %d, want staggered 185", eng.Now())
	}
}

func TestCoreConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	for name, cfg := range map[string]CoreConfig{
		"no tx slots": {TXSlots: 0, TXSlotBytes: 64},
		"no tx bytes": {TXSlots: 1, TXSlotBytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewCore(0, eng, &fakeEnv{}, cfg)
		}()
	}
	// MLP defaults to 1.
	c := NewCore(0, eng, &fakeEnv{}, CoreConfig{TXSlots: 1, TXSlotBytes: 64})
	if c.cfg.MLP != 1 {
		t.Fatal("MLP default")
	}
}

func TestXMemCoreAccessLoop(t *testing.T) {
	env := &fakeEnv{lat: 10}
	eng := sim.NewEngine()
	stream := workload.NewXMem(workload.DefaultXMemConfig())
	stream.Layout(addr.NewSpace(1, 1024, 1024), 1)
	x := NewXMemCore(1, eng, env, stream)
	if x.ID() != 1 || x.Stream() != stream {
		t.Fatal("accessors")
	}
	x.Start()
	eng.RunUntil(1000)
	if x.Accesses() == 0 {
		t.Fatal("no accesses")
	}
	// Batches of XMemMLP issue at one instant, spaced by latency+gap.
	perBatch := uint64(XMemMLP)
	if x.Accesses()%perBatch != 0 {
		t.Fatalf("accesses %d not in whole batches", x.Accesses())
	}
	x.Stop()
	n := x.Accesses()
	eng.Drain()
	if x.Accesses() > n+perBatch {
		t.Fatal("Stop did not halt the loop")
	}
}
