package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file generalizes the relinquish path from the hardwired clsweep
// primitive into a name-keyed family of invalidation instructions, mirroring
// the nic arrival-process registry: scenarios select the instruction by name
// (`invalidate_insn` knob), and the registry supplies its per-line hardware
// semantics, its core-visible issue-latency model and its knob validation.
// ROADMAP item 4(b); the alternatives are grounded in the x86 CLFLUSH/CLWB
// baselines the paper contrasts clsweep against (§V-B) and the SIMF paper's
// single-instruction multiple-flush proposal (PAPERS.md).

// Registered instruction names. InsnCLSweep is the default and preserves the
// seed's exact semantics and accounting.
const (
	// InsnCLSweep drops every cached copy with no writeback — Sweeper's
	// hardware primitive (§V-B).
	InsnCLSweep = "clsweep"
	// InsnCLFlush invalidates every copy but writes a dirty one back
	// first — the baseline x86 semantics.
	InsnCLFlush = "clflush"
	// InsnCLWB writes a dirty copy back and leaves the copies clean in
	// place, so the dead buffer keeps occupying cache until overwritten.
	InsnCLWB = "clwb"
	// InsnSIMF applies clflush semantics per line but issues them as
	// SIMF-style bulk operations: one instruction covers a batch of lines,
	// so the core-side cost is per batch, not per line.
	InsnSIMF = "simf"
)

// InsnRegistration describes one invalidation instruction to the registry.
type InsnRegistration struct {
	// Name keys the registration; Config.Insn selects it ("" = clsweep).
	Name string
	// Line applies the instruction to a single cache line through the
	// hardware hooks. dropped reports a dirty copy invalidated without
	// writeback (bandwidth conserved); wroteBack reports a writeback the
	// instruction itself issued.
	Line func(hw Sweepable, now uint64, owner int, a uint64) (dropped, wroteBack bool)
	// IssueCycles models the core-visible cost of covering lines cache
	// lines in one Relinquish call.
	IssueCycles func(cfg Config, lines uint64) uint64
	// Validate rejects knob combinations this instruction cannot honor;
	// nil means the shared knobs suffice.
	Validate func(cfg Config) error
}

var insnReg = struct {
	sync.RWMutex
	m map[string]*InsnRegistration
}{m: map[string]*InsnRegistration{}}

// RegisterInsn adds an invalidation instruction to the registry. It panics on
// an empty name, a duplicate registration, or missing hooks — all programmer
// errors at init time.
func RegisterInsn(reg InsnRegistration) {
	if reg.Name == "" {
		panic("core: RegisterInsn with empty name")
	}
	if reg.Line == nil || reg.IssueCycles == nil {
		panic(fmt.Sprintf("core: instruction %q registered without Line/IssueCycles hooks", reg.Name))
	}
	insnReg.Lock()
	defer insnReg.Unlock()
	if _, dup := insnReg.m[reg.Name]; dup {
		panic(fmt.Sprintf("core: instruction %q registered twice", reg.Name))
	}
	r := reg
	insnReg.m[reg.Name] = &r
}

// LookupInsn returns the registration for name, if any.
func LookupInsn(name string) (*InsnRegistration, bool) {
	insnReg.RLock()
	defer insnReg.RUnlock()
	r, ok := insnReg.m[name]
	return r, ok
}

// InsnNames returns the registered instruction names, sorted.
func InsnNames() []string {
	insnReg.RLock()
	defer insnReg.RUnlock()
	names := make([]string, 0, len(insnReg.m))
	for name := range insnReg.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// insnName resolves the configured instruction, defaulting to clsweep so the
// zero Config keeps the seed's semantics.
func (c Config) insnName() string {
	if c.Insn == "" {
		return InsnCLSweep
	}
	return c.Insn
}

// simfBatchLines resolves the lines-per-operation knob (default 64: one simf
// covers a 4KB page worth of lines).
func (c Config) simfBatchLines() uint64 {
	if c.SIMFBatchLines == 0 {
		return 64
	}
	return uint64(c.SIMFBatchLines)
}

// simfBatchCycles resolves the per-operation issue cost (default 16).
func (c Config) simfBatchCycles() uint64 {
	if c.SIMFBatchCycles == 0 {
		return 16
	}
	return uint64(c.SIMFBatchCycles)
}

// Validate rejects configurations the registry cannot honor: unknown
// instruction names and bad instruction knobs. machine.Config.Validate calls
// it, so bad combinations fail before any simulation runs.
func (c Config) Validate() error {
	reg, ok := LookupInsn(c.insnName())
	if !ok {
		return fmt.Errorf("core: unknown invalidation instruction %q (have %s)",
			c.Insn, strings.Join(InsnNames(), ", "))
	}
	if c.SIMFBatchLines < 0 {
		return fmt.Errorf("core: simf batch lines %d must be non-negative", c.SIMFBatchLines)
	}
	if c.SIMFBatchCycles < 0 {
		return fmt.Errorf("core: simf batch cycles %d must be non-negative", c.SIMFBatchCycles)
	}
	if reg.Validate != nil {
		return reg.Validate(c)
	}
	return nil
}

// mustInsn resolves the configured registration; Validate runs first in any
// assembled machine, so a miss here is a programmer error.
func mustInsn(cfg Config) *InsnRegistration {
	reg, ok := LookupInsn(cfg.insnName())
	if !ok {
		panic(fmt.Sprintf("core: unknown invalidation instruction %q", cfg.Insn))
	}
	return reg
}

// perLineCycles is the issue model shared by the per-line instructions:
// one instruction per covered cache line.
func perLineCycles(cfg Config, lines uint64) uint64 {
	return lines * cfg.IssueCyclesPerLine
}

// flushLine is the per-line semantics shared by clflush and simf.
func flushLine(hw Sweepable, now uint64, owner int, a uint64) (bool, bool) {
	return false, hw.Flush(now, owner, a)
}

func init() {
	RegisterInsn(InsnRegistration{
		Name: InsnCLSweep,
		Line: func(hw Sweepable, now uint64, owner int, a uint64) (bool, bool) {
			return hw.Sweep(now, owner, a), false
		},
		IssueCycles: perLineCycles,
	})
	RegisterInsn(InsnRegistration{
		Name:        InsnCLFlush,
		Line:        flushLine,
		IssueCycles: perLineCycles,
	})
	RegisterInsn(InsnRegistration{
		Name: InsnCLWB,
		Line: func(hw Sweepable, now uint64, owner int, a uint64) (bool, bool) {
			return false, hw.CLWB(now, owner, a)
		},
		IssueCycles: perLineCycles,
	})
	RegisterInsn(InsnRegistration{
		Name: InsnSIMF,
		Line: flushLine,
		IssueCycles: func(cfg Config, lines uint64) uint64 {
			batch := cfg.simfBatchLines()
			ops := (lines + batch - 1) / batch
			return uint64(cfg.SIMFSetupCycles) + ops*cfg.simfBatchCycles()
		},
		Validate: func(cfg Config) error {
			if cfg.SIMFSetupCycles < 0 {
				return fmt.Errorf("core: simf setup cycles %d must be non-negative", cfg.SIMFSetupCycles)
			}
			return nil
		},
	})
}
