package core

import "sweeper/internal/addr"

// This file models the OS-side mitigation for the privacy concern raised in
// §V-B: a process could invoke clsweep on a freshly zeroed page to drop the
// zeroed cache blocks before they reach memory, then read the previous
// owner's stale values from DRAM. The paper's fix is a kernel extension that
// CLWBs every block of a page after zeroing it, but only for pages handed to
// processes that requested clsweep permission via a dedicated system call.

// PageBytes is the page granularity of the recycling model.
const PageBytes = 4096

// ZeroHardware is the subset of hierarchy behaviour page zeroing needs.
type ZeroHardware interface {
	CPUWrite(now uint64, core int, a uint64) uint64
	CLWB(now uint64, owner int, a uint64) bool
}

// PageGuard implements the kernel policy: it zeroes pages on ownership
// transfer and, for sweep-capable recipients, forces the zeroed blocks to
// memory with CLWB so no stale data can be resurrected.
type PageGuard struct {
	hw ZeroHardware

	sweepCapable map[int]bool // process (modeled per-core) opt-in state

	zeroedPages    uint64
	clwbLines      uint64
	clwbWritebacks uint64
}

// NewPageGuard creates the guard over the given hardware.
func NewPageGuard(hw ZeroHardware) *PageGuard {
	if hw == nil {
		panic("core: nil ZeroHardware")
	}
	return &PageGuard{hw: hw, sweepCapable: make(map[int]bool)}
}

// GrantClsweep models the dedicated system call that marks a process
// (identified here by its core) as permitted to execute clsweep in
// userspace. Pages later allocated to it get the CLWB treatment.
func (g *PageGuard) GrantClsweep(core int) { g.sweepCapable[core] = true }

// IsSweepCapable reports whether the process on core opted in.
func (g *PageGuard) IsSweepCapable(core int) bool { return g.sweepCapable[core] }

// TransferPage zeroes the page at pageAddr and transfers ownership to the
// process on core newOwner, returning the completion cycle. If the new
// owner is sweep-capable, every zeroed block is written back with CLWB so a
// subsequent clsweep cannot expose the previous owner's data.
func (g *PageGuard) TransferPage(now uint64, newOwner int, pageAddr uint64) uint64 {
	page := pageAddr &^ uint64(PageBytes-1)
	t := now
	for a := page; a < page+PageBytes; a += addr.LineBytes {
		t = g.hw.CPUWrite(t, newOwner, a)
	}
	if g.sweepCapable[newOwner] {
		for a := page; a < page+PageBytes; a += addr.LineBytes {
			if g.hw.CLWB(t, newOwner, a) {
				g.clwbWritebacks++
			}
			g.clwbLines++
			t++ // CLWB issue cost
		}
	}
	g.zeroedPages++
	return t
}

// ZeroedPages returns how many pages were transferred.
func (g *PageGuard) ZeroedPages() uint64 { return g.zeroedPages }

// CLWBStats returns CLWB instructions issued and writebacks they triggered.
func (g *PageGuard) CLWBStats() (lines, writebacks uint64) {
	return g.clwbLines, g.clwbWritebacks
}
