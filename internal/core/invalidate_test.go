package core

import (
	"strings"
	"testing"
)

// TestInsnRegistry checks the registry surface itself: the four shipped
// instructions are present, names come back sorted, and lookups of unknown
// names fail cleanly.
func TestInsnRegistry(t *testing.T) {
	names := InsnNames()
	for _, want := range []string{InsnCLSweep, InsnCLFlush, InsnCLWB, InsnSIMF} {
		reg, ok := LookupInsn(want)
		if !ok || reg.Name != want {
			t.Fatalf("instruction %q not registered", want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("InsnNames not sorted: %v", names)
		}
	}
	if _, ok := LookupInsn("nonesuch"); ok {
		t.Fatal("unknown instruction resolved")
	}
}

func TestRegisterInsnRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(name string, reg InsnRegistration) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterInsn did not panic", name)
			}
		}()
		RegisterInsn(reg)
	}
	line := func(hw Sweepable, now uint64, owner int, a uint64) (bool, bool) { return false, false }
	mustPanic("empty name", InsnRegistration{Line: line, IssueCycles: perLineCycles})
	mustPanic("missing hooks", InsnRegistration{Name: "hookless"})
	mustPanic("duplicate", InsnRegistration{Name: InsnCLSweep, Line: line, IssueCycles: perLineCycles})
}

// TestInsnCounterConsistency is the closed-loop accounting property across
// every registered instruction: over a relinquish of L lines of which D are
// dirty, SweptLines advances by exactly L and the dirty lines land in exactly
// one of DroppedDirtyLines (clsweep) or WrittenBackLines (everything else) —
// never both, never more than D.
func TestInsnCounterConsistency(t *testing.T) {
	const base, size = uint64(4096), uint64(64 * 32) // 32 lines
	for _, name := range InsnNames() {
		t.Run(name, func(t *testing.T) {
			hw := &fakeHW{dirty: map[uint64]bool{}}
			var dirty uint64
			for i := uint64(0); i < 32; i += 2 { // half the lines dirty
				hw.dirty[base+i*64] = true
				dirty++
			}
			s := New(hw, Config{RXSweep: true, IssueCyclesPerLine: 1, Insn: name})
			s.Relinquish(0, 0, base, size)
			st := s.Stats()
			if st.Relinquishes != 1 || st.SweptLines != 32 {
				t.Fatalf("stats %+v: want 1 relinquish over 32 lines", st)
			}
			if st.DroppedDirtyLines+st.WrittenBackLines != dirty {
				t.Fatalf("stats %+v: %d dirty lines not conserved", st, dirty)
			}
			if name == InsnCLSweep {
				if st.WrittenBackLines != 0 || st.DroppedDirtyLines != dirty {
					t.Fatalf("clsweep stats %+v: want %d dropped, 0 written back", st, dirty)
				}
			} else {
				if st.DroppedDirtyLines != 0 || st.WrittenBackLines != dirty {
					t.Fatalf("%s stats %+v: want %d written back, 0 dropped", name, st, dirty)
				}
			}
			// Relinquishing the same (now clean or absent) range again must
			// advance only the op counters: the dirty work is done.
			s.Relinquish(100, 0, base, size)
			st2 := s.Stats()
			if st2.SweptLines != 64 || st2.DroppedDirtyLines != st.DroppedDirtyLines ||
				st2.WrittenBackLines != st.WrittenBackLines {
				t.Fatalf("clean re-relinquish moved dirty counters: %+v -> %+v", st, st2)
			}
		})
	}
}

// TestInsnIssueLatency pins the core-visible cost models: one cycle per line
// for the per-line instructions, setup + per-batch cost for simf.
func TestInsnIssueLatency(t *testing.T) {
	const base, size = uint64(0), uint64(64 * 100) // 100 lines
	perLine := Config{RXSweep: true, IssueCyclesPerLine: 3}
	for _, name := range []string{InsnCLSweep, InsnCLFlush, InsnCLWB} {
		cfg := perLine
		cfg.Insn = name
		s := New(&fakeHW{}, cfg)
		if done := s.Relinquish(1000, 0, base, size); done != 1000+300 {
			t.Errorf("%s: done = %d, want 1300", name, done)
		}
	}

	// simf: ceil(100/32) = 4 batches at 10 cycles each, plus 25 setup.
	cfg := Config{RXSweep: true, IssueCyclesPerLine: 3, Insn: InsnSIMF,
		SIMFBatchLines: 32, SIMFBatchCycles: 10, SIMFSetupCycles: 25}
	s := New(&fakeHW{}, cfg)
	if done := s.Relinquish(1000, 0, base, size); done != 1000+25+4*10 {
		t.Errorf("simf: done = %d, want %d", done, 1000+25+4*10)
	}

	// simf defaults: 64-line batches at 16 cycles, no setup.
	s = New(&fakeHW{}, Config{RXSweep: true, Insn: InsnSIMF})
	if done := s.Relinquish(0, 0, base, size); done != 2*16 {
		t.Errorf("simf defaults: done = %d, want 32", done)
	}
}

// TestInsnConfigValidate is the table-driven knob validation for the
// instruction family (mirrors the cluster-knob validation tests).
func TestInsnConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"zero value defaults to clsweep", Config{}, ""},
		{"explicit clsweep", Config{Insn: InsnCLSweep}, ""},
		{"simf with knobs", Config{Insn: InsnSIMF, SIMFBatchLines: 8, SIMFSetupCycles: 40}, ""},
		{"unknown instruction", Config{Insn: "clzap"}, "unknown invalidation instruction"},
		{"negative batch lines", Config{Insn: InsnSIMF, SIMFBatchLines: -1}, "batch lines"},
		{"negative batch cycles", Config{Insn: InsnSIMF, SIMFBatchCycles: -4}, "batch cycles"},
		{"negative setup cycles", Config{Insn: InsnSIMF, SIMFSetupCycles: -1}, "setup cycles"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}
