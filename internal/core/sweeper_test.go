package core

import (
	"testing"
	"testing/quick"

	"sweeper/internal/addr"
)

// fakeHW records sweep operations and reports dirtiness per a scripted set.
type fakeHW struct {
	swept   []uint64
	flushed []uint64
	cleaned []uint64
	dirty   map[uint64]bool
}

func (h *fakeHW) Sweep(now uint64, owner int, a uint64) bool {
	h.swept = append(h.swept, a)
	if h.dirty[a] {
		delete(h.dirty, a)
		return true
	}
	return false
}

func (h *fakeHW) Flush(now uint64, owner int, a uint64) bool {
	h.flushed = append(h.flushed, a)
	if h.dirty[a] {
		delete(h.dirty, a)
		return true
	}
	return false
}

func (h *fakeHW) CLWB(now uint64, owner int, a uint64) bool {
	h.cleaned = append(h.cleaned, a)
	if h.dirty[a] {
		// The copy stays cached but clean; a second CLWB writes nothing.
		h.dirty[a] = false
		return true
	}
	return false
}

func TestRelinquishSweepsEveryLine(t *testing.T) {
	hw := &fakeHW{dirty: map[uint64]bool{}}
	s := New(hw, Config{RXSweep: true, IssueCyclesPerLine: 1})
	done := s.Relinquish(100, 0, 4096, 1024)
	if len(hw.swept) != 16 {
		t.Fatalf("swept %d lines, want 16", len(hw.swept))
	}
	for i, a := range hw.swept {
		if a != 4096+uint64(i)*64 {
			t.Fatalf("line %d swept at %#x", i, a)
		}
	}
	if done != 100+16 {
		t.Fatalf("issue cost: done = %d, want 116", done)
	}
}

func TestRelinquishUnalignedRange(t *testing.T) {
	hw := &fakeHW{}
	s := New(hw, Config{RXSweep: true, IssueCyclesPerLine: 1})
	// [100, 260) covers lines 64,128,192,256.
	s.Relinquish(0, 0, 100, 160)
	if len(hw.swept) != 4 || hw.swept[0] != 64 || hw.swept[3] != 256 {
		t.Fatalf("unaligned sweep lines: %v", hw.swept)
	}
}

func TestRelinquishDisabledIsFreeNoOp(t *testing.T) {
	hw := &fakeHW{}
	s := New(hw, Config{RXSweep: false, IssueCyclesPerLine: 1})
	done := s.Relinquish(50, 0, 0, 4096)
	if done != 50 {
		t.Fatalf("disabled relinquish cost cycles: %d", done)
	}
	if len(hw.swept) != 0 {
		t.Fatal("disabled relinquish swept lines")
	}
	if s.Stats().Relinquishes != 0 {
		t.Fatal("disabled relinquish counted")
	}
}

func TestRelinquishZeroSize(t *testing.T) {
	hw := &fakeHW{}
	s := New(hw, Config{RXSweep: true, IssueCyclesPerLine: 1})
	if done := s.Relinquish(10, 0, 64, 0); done != 10 {
		t.Fatal("zero-size relinquish must be free")
	}
}

func TestDroppedDirtyAccounting(t *testing.T) {
	hw := &fakeHW{dirty: map[uint64]bool{0: true, 64: true}}
	s := New(hw, Config{RXSweep: true, IssueCyclesPerLine: 1})
	s.Relinquish(0, 0, 0, 256) // 4 lines, 2 dirty
	st := s.Stats()
	if st.SweptLines != 4 || st.DroppedDirtyLines != 2 || st.Relinquishes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.SavedBandwidthBytes() != 2*64 {
		t.Fatalf("saved bytes = %d", s.SavedBandwidthBytes())
	}
}

func TestNICSweepRequiresTXEnable(t *testing.T) {
	hw := &fakeHW{}
	s := New(hw, Config{RXSweep: true, TXSweep: false})
	s.NICSweep(0, 0, 0, 1024)
	if len(hw.swept) != 0 {
		t.Fatal("TX sweep ran while disabled")
	}
	if s.TXEnabled() {
		t.Fatal("TXEnabled must be false")
	}

	s = New(hw, Config{TXSweep: true})
	s.NICSweep(0, 0, 0, 1024)
	if len(hw.swept) != 16 {
		t.Fatalf("TX sweep swept %d lines", len(hw.swept))
	}
	if s.Stats().NICSweeps != 1 {
		t.Fatal("NIC sweep not counted")
	}
}

func TestRXEnabledAccessor(t *testing.T) {
	s := New(&fakeHW{}, Config{RXSweep: true})
	if !s.RXEnabled() || s.TXEnabled() {
		t.Fatal("accessors")
	}
	if s.Config().IssueCyclesPerLine != 0 {
		t.Fatal("config passthrough")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.RXSweep || cfg.TXSweep || cfg.IssueCyclesPerLine != 1 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestUseAfterRelinquishSanitizer(t *testing.T) {
	hw := &fakeHW{}
	s := New(hw, Config{RXSweep: true, DebugUseAfterRelinquish: true})
	s.Relinquish(0, 0, 0, 128)
	if !s.CheckRead(64) {
		t.Fatal("read of relinquished line not flagged")
	}
	if len(s.Violations()) != 1 || s.Violations()[0] != 64 {
		t.Fatalf("violations = %v", s.Violations())
	}
	// After the NIC overwrites the line, reading is legal again.
	s.NoteOverwrite(64)
	if s.CheckRead(64) {
		t.Fatal("read after overwrite flagged")
	}
	// Line 0 is still relinquished.
	if !s.CheckRead(0) {
		t.Fatal("other line lost its relinquished state")
	}
}

func TestSanitizerDisabledByDefault(t *testing.T) {
	s := New(&fakeHW{}, Config{RXSweep: true})
	s.Relinquish(0, 0, 0, 128)
	if s.CheckRead(0) {
		t.Fatal("sanitizer active without debug flag")
	}
	s.NoteOverwrite(0) // must not panic
}

func TestNilHardwarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, Config{})
}

func TestStringer(t *testing.T) {
	s := New(&fakeHW{}, Config{RXSweep: true})
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: Relinquish sweeps exactly the line-aligned cover of
// [buf, buf+size).
func TestRelinquishCoverageProperty(t *testing.T) {
	f := func(bufRaw uint32, sizeRaw uint16) bool {
		buf := uint64(bufRaw)
		size := uint64(sizeRaw)
		if size == 0 {
			return true
		}
		hw := &fakeHW{}
		s := New(hw, Config{RXSweep: true})
		s.Relinquish(0, 0, buf, size)
		first := buf &^ uint64(63)
		last := (buf + size - 1) &^ uint64(63)
		want := int((last-first)/64) + 1
		if len(hw.swept) != want {
			return false
		}
		return hw.swept[0] == first && hw.swept[len(hw.swept)-1] == last
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// hwOverHierarchy checks the package integrates with the real cache types
// (compile-time + basic behaviour).
func TestPageGuard(t *testing.T) {
	hw := &zeroHW{}
	g := NewPageGuard(hw)
	if g.IsSweepCapable(3) {
		t.Fatal("unexpected capability")
	}

	// Non-capable process: zeroing writes every line, no CLWB.
	g.TransferPage(0, 3, 8192)
	if hw.writes != PageBytes/addr.LineBytes {
		t.Fatalf("zeroing wrote %d lines", hw.writes)
	}
	if hw.clwbs != 0 {
		t.Fatal("CLWB for non-capable process")
	}

	// Capable process: every zeroed block is forced to memory.
	g.GrantClsweep(5)
	hw.writes, hw.clwbs = 0, 0
	g.TransferPage(0, 5, 16384)
	if hw.clwbs != PageBytes/addr.LineBytes {
		t.Fatalf("CLWB count = %d", hw.clwbs)
	}
	lines, wbs := g.CLWBStats()
	if lines != PageBytes/addr.LineBytes || wbs != lines {
		t.Fatalf("CLWB stats %d/%d", lines, wbs)
	}
	if g.ZeroedPages() != 2 {
		t.Fatalf("pages = %d", g.ZeroedPages())
	}
}

func TestPageGuardAlignsPage(t *testing.T) {
	hw := &zeroHW{}
	g := NewPageGuard(hw)
	g.TransferPage(0, 0, 8192+123) // unaligned -> page 8192
	if hw.firstWrite != 8192 {
		t.Fatalf("zeroing started at %#x", hw.firstWrite)
	}
}

type zeroHW struct {
	writes     int
	clwbs      int
	firstWrite uint64
}

func (h *zeroHW) CPUWrite(now uint64, core int, a uint64) uint64 {
	if h.writes == 0 {
		h.firstWrite = a
	}
	h.writes++
	return now + 1
}

func (h *zeroHW) CLWB(now uint64, owner int, a uint64) bool {
	h.clwbs++
	return true
}
