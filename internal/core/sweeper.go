// Package core implements Sweeper, the paper's contribution (§V): a software
// API and hardware extension that lets applications mark consumed network
// buffers so the cache hierarchy can drop their dirty lines without writing
// them back to memory.
//
// The software-visible operation is Relinquish(buffer, size) — analogous to
// free(): after the call the buffer's contents are conclusively dead and any
// read before the NIC's next full overwrite has undefined behaviour. The
// call compiles into one clsweep instruction per cache block; each clsweep
// injects a sweep message that invalidates every copy of the block in the
// hierarchy with no writeback (§V-B).
//
// The package also implements the transmit-path variant (§V-D), where the
// NIC — the last reader of a zero-copy TX buffer — initiates the sweep after
// transmission, triggered by the SweepBuffer field of the Work Queue entry,
// and the OS page-recycling mitigation from the paper's security discussion.
package core

import (
	"fmt"

	"sweeper/internal/addr"
)

// Sweepable is the hardware side of the invalidation-instruction family.
// The cache hierarchy implements it; the instruction registry (invalidate.go)
// picks which hook a relinquish drives per line.
type Sweepable interface {
	// Sweep invalidates every copy of the line with no writeback (clsweep
	// §V-B), reporting whether a dirty copy was dropped.
	Sweep(now uint64, owner int, a uint64) bool
	// Flush invalidates every copy, writing a dirty one back first
	// (clflush), reporting whether a writeback was issued.
	Flush(now uint64, owner int, a uint64) bool
	// CLWB writes a dirty copy back and leaves the copies clean in place,
	// reporting whether a writeback was issued.
	CLWB(now uint64, owner int, a uint64) bool
}

// Config selects which sweeping mechanisms are active.
type Config struct {
	// RXSweep enables application-driven relinquish of consumed RX
	// buffers — the mechanism evaluated throughout the paper's §VI.
	RXSweep bool
	// TXSweep enables NIC-driven sweeping of transmitted buffers via the
	// Work Queue SweepBuffer field (§V-D). Off in the paper's headline
	// evaluation; exercised by this repo's ablation benchmarks.
	TXSweep bool
	// IssueCyclesPerLine is the core-side cost of issuing one clsweep
	// instruction. The sweep message itself propagates off the critical
	// path.
	IssueCyclesPerLine uint64
	// DebugUseAfterRelinquish enables a sanitizer that records
	// relinquished lines and flags reads before the next NIC overwrite
	// (the undefined behaviour §V-A warns about).
	DebugUseAfterRelinquish bool
	// Insn names the invalidation instruction relinquish compiles into,
	// from the registry in invalidate.go. Empty selects clsweep, the
	// paper's primitive.
	Insn string
	// SIMFBatchLines is the number of lines one SIMF-style bulk flush
	// covers (0 = 64); SIMFBatchCycles its per-operation issue cost
	// (0 = 16); SIMFSetupCycles a fixed cost per relinquish. Only the
	// simf instruction reads them.
	SIMFBatchLines  int
	SIMFBatchCycles int
	SIMFSetupCycles int
}

// DefaultConfig enables RX sweeping with a 1-cycle clsweep issue cost.
func DefaultConfig() Config {
	return Config{RXSweep: true, IssueCyclesPerLine: 1}
}

// Sweeper binds the software API to the simulated hardware.
type Sweeper struct {
	cfg  Config
	hw   Sweepable
	insn *InsnRegistration

	relinquishes uint64
	sweptLines   uint64
	droppedDirty uint64
	wroteBack    uint64
	nicSweeps    uint64

	relinquished map[uint64]bool // debug sanitizer state
	violations   []uint64
}

// New creates a Sweeper over the given hardware.
func New(hw Sweepable, cfg Config) *Sweeper {
	if hw == nil {
		panic("core: nil Sweepable hardware")
	}
	s := &Sweeper{cfg: cfg, hw: hw, insn: mustInsn(cfg)}
	if cfg.DebugUseAfterRelinquish {
		s.relinquished = make(map[uint64]bool)
	}
	return s
}

// Reset returns the Sweeper to its just-constructed state under a (possibly
// different) configuration, as New over the same hardware would produce.
func (s *Sweeper) Reset(cfg Config) {
	s.cfg = cfg
	s.insn = mustInsn(cfg)
	s.relinquishes, s.sweptLines, s.droppedDirty, s.wroteBack, s.nicSweeps = 0, 0, 0, 0, 0
	s.relinquished = nil
	if cfg.DebugUseAfterRelinquish {
		s.relinquished = make(map[uint64]bool)
	}
	s.violations = nil
}

// Config returns the active configuration.
func (s *Sweeper) Config() Config { return s.cfg }

// RXEnabled reports whether application-driven RX sweeping is on.
func (s *Sweeper) RXEnabled() bool { return s.cfg.RXSweep }

// TXEnabled reports whether NIC-driven TX sweeping is on.
func (s *Sweeper) TXEnabled() bool { return s.cfg.TXSweep }

// Relinquish declares that the application running on core has conclusively
// consumed the buffer at buf of the given size (§V-A). Every covered cache
// block is swept. It returns the cycle at which the core may proceed: the
// issue cost of the clsweep sequence; propagation is off the critical path.
//
// When RX sweeping is disabled the call is a no-op costing zero cycles,
// which lets workloads call Relinquish unconditionally and lets experiment
// configs toggle Sweeper on and off.
func (s *Sweeper) Relinquish(now uint64, core int, buf, size uint64) uint64 {
	if !s.cfg.RXSweep || size == 0 {
		return now
	}
	s.relinquishes++
	lines := s.sweepRange(now, core, buf, size)
	return now + s.insn.IssueCycles(s.cfg, lines)
}

// NICSweep is the transmit-path variant (§V-D): after the NIC has read and
// transmitted the buffer named by a Work Queue entry with SweepBuffer set,
// it injects sweep messages for the buffer's blocks. There is no core-side
// issue cost.
func (s *Sweeper) NICSweep(now uint64, owner int, buf, size uint64) {
	if !s.cfg.TXSweep || size == 0 {
		return
	}
	s.nicSweeps++
	s.sweepRange(now, owner, buf, size)
}

func (s *Sweeper) sweepRange(now uint64, owner int, buf, size uint64) uint64 {
	first := buf & addr.LineMask
	last := (buf + size - 1) & addr.LineMask
	line := s.insn.Line
	var lines uint64
	for a := first; ; a += addr.LineBytes {
		dropped, wb := line(s.hw, now, owner, a)
		if dropped {
			s.droppedDirty++
		}
		if wb {
			s.wroteBack++
		}
		s.sweptLines++
		lines++
		if s.relinquished != nil {
			s.relinquished[a] = true
		}
		if a == last {
			break
		}
	}
	return lines
}

// NoteOverwrite informs the sanitizer that the NIC has fully overwritten the
// line, ending the relinquished (undefined-contents) window.
func (s *Sweeper) NoteOverwrite(a uint64) {
	if s.relinquished != nil {
		delete(s.relinquished, a&addr.LineMask)
	}
}

// CheckRead flags a CPU read of a line that was relinquished and not yet
// overwritten — the undefined behaviour of §V-A, equivalent to a
// use-after-free. It reports whether the read was a violation.
func (s *Sweeper) CheckRead(a uint64) bool {
	if s.relinquished == nil {
		return false
	}
	a &= addr.LineMask
	if s.relinquished[a] {
		s.violations = append(s.violations, a)
		return true
	}
	return false
}

// Violations returns the line addresses of detected use-after-relinquish
// reads.
func (s *Sweeper) Violations() []uint64 { return s.violations }

// Stats summarizes Sweeper activity.
type Stats struct {
	// Relinquishes is the number of Relinquish calls.
	Relinquishes uint64
	// NICSweeps is the number of NIC-driven TX sweeps.
	NICSweeps uint64
	// SweptLines is the total clsweep operations executed.
	SweptLines uint64
	// DroppedDirtyLines counts dirty lines invalidated without writeback;
	// each is 64 bytes of DRAM write bandwidth conserved.
	DroppedDirtyLines uint64
	// WrittenBackLines counts dirty lines the relinquish instruction
	// itself wrote back (clflush/clwb/simf; always 0 for clsweep).
	WrittenBackLines uint64
}

// Stats returns a snapshot of Sweeper activity counters.
func (s *Sweeper) Stats() Stats {
	return Stats{
		Relinquishes:      s.relinquishes,
		NICSweeps:         s.nicSweeps,
		SweptLines:        s.sweptLines,
		DroppedDirtyLines: s.droppedDirty,
		WrittenBackLines:  s.wroteBack,
	}
}

// SavedBandwidthBytes returns the DRAM write traffic avoided by sweeping.
func (s *Sweeper) SavedBandwidthBytes() uint64 {
	return s.droppedDirty * addr.LineBytes
}

func (s *Sweeper) String() string {
	return fmt.Sprintf("sweeper{rx:%v tx:%v relinquishes:%d dropped:%d}",
		s.cfg.RXSweep, s.cfg.TXSweep, s.relinquishes, s.droppedDirty)
}
