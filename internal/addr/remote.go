package addr

import "fmt"

// Remote-address encoding for cluster runs. Every node of a homogeneous
// cluster lays out the same local address space, so a cross-node reference
// is a (home node, local address) pair packed into one uint64: the top bit
// flags the address as remote and the node id rides in the bits above any
// local address. Workloads emit remote addresses in their access plans; the
// machine routes them to the cluster's fabric path instead of the local
// hierarchy.
const (
	// remoteFlag marks an address as referring to another node's memory.
	remoteFlag = uint64(1) << 63
	// remoteNodeShift/remoteNodeMask carve the node id out of bits 48..62,
	// far above any local address (spaces start at 1 GiB and grow by at
	// most a few GiB).
	remoteNodeShift = 48
	remoteNodeMask  = uint64(1)<<15 - 1

	// MaxNodes bounds cluster sizes representable in a remote address.
	MaxNodes = int(remoteNodeMask) + 1

	// maxLocal is the largest encodable local address.
	maxLocal = uint64(1)<<remoteNodeShift - 1
)

// Remote packs a home node id and a local address on that node into one
// remote address.
func Remote(node int, local uint64) uint64 {
	if node < 0 || node >= MaxNodes {
		panic(fmt.Sprintf("addr: remote node %d out of range [0,%d)", node, MaxNodes))
	}
	if local > maxLocal {
		panic(fmt.Sprintf("addr: local address %#x too large to encode remotely", local))
	}
	return remoteFlag | uint64(node)<<remoteNodeShift | local
}

// IsRemote reports whether a names another node's memory.
func IsRemote(a uint64) bool { return a&remoteFlag != 0 }

// RemoteParts unpacks a remote address into its home node id and the local
// address on that node. It panics on a non-remote address: callers branch on
// IsRemote first, and silently decoding a local address would alias real
// memory.
func RemoteParts(a uint64) (node int, local uint64) {
	if !IsRemote(a) {
		panic(fmt.Sprintf("addr: RemoteParts on local address %#x", a))
	}
	return int(a >> remoteNodeShift & remoteNodeMask), a & maxLocal
}
