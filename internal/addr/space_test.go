package addr

import (
	"testing"
	"testing/quick"
)

func TestSpaceLayoutNonOverlapping(t *testing.T) {
	s := NewSpace(4, 1024*1024, 128*1024)
	if s.NCores() != 4 {
		t.Fatalf("NCores = %d", s.NCores())
	}
	// RX regions per core are disjoint and ordered.
	for c := 0; c < 3; c++ {
		if s.RXBase(c)+s.RXBytesPerCore() != s.RXBase(c+1) {
			t.Fatalf("RX regions not contiguous at core %d", c)
		}
	}
	// TX starts after all RX.
	if s.TXBase(0) != s.RXBase(3)+s.RXBytesPerCore() {
		t.Fatal("TX region overlaps RX")
	}
	// App allocations start after all TX and never overlap.
	a := s.AllocApp(4096)
	b := s.AllocApp(100)
	cRegion := s.AllocApp(64)
	if a < s.TXBase(3)+s.TXBytesPerCore() {
		t.Fatal("app region overlaps TX")
	}
	if b < a+4096 {
		t.Fatal("app regions overlap")
	}
	if cRegion != b+128 { // 100 rounds up to 128
		t.Fatalf("allocation not line-rounded: %#x after %#x", cRegion, b)
	}
	if s.End() != cRegion+64 {
		t.Fatalf("End = %#x", s.End())
	}
}

func TestSpaceRoundsRingSizes(t *testing.T) {
	s := NewSpace(2, 1000, 100) // both round up to line multiples
	if s.RXBytesPerCore() != 1024 {
		t.Fatalf("RX per core = %d, want 1024", s.RXBytesPerCore())
	}
	if s.TXBytesPerCore() != 128 {
		t.Fatalf("TX per core = %d, want 128", s.TXBytesPerCore())
	}
}

func TestClassify(t *testing.T) {
	s := NewSpace(3, 64*1024, 8*1024)
	app := s.AllocApp(1 << 20)

	cls, core := s.Classify(s.RXBase(1))
	if cls != ClassRX || core != 1 {
		t.Fatalf("RX base of core 1: %v/%d", cls, core)
	}
	cls, core = s.Classify(s.RXBase(2) + s.RXBytesPerCore() - LineBytes)
	if cls != ClassRX || core != 2 {
		t.Fatalf("last RX line of core 2: %v/%d", cls, core)
	}
	cls, core = s.Classify(s.TXBase(0))
	if cls != ClassTX || core != 0 {
		t.Fatalf("TX base: %v/%d", cls, core)
	}
	cls, core = s.Classify(app)
	if cls != ClassOther || core != -1 {
		t.Fatalf("app region: %v/%d", cls, core)
	}
	cls, _ = s.Classify(0)
	if cls != ClassOther {
		t.Fatal("null address must classify as Other")
	}
}

func TestClassifyBoundaries(t *testing.T) {
	s := NewSpace(2, 4096, 4096)
	// One line before RX is Other; the first TX line is TX, and the line
	// right after the last TX line is Other.
	if cls, _ := s.Classify(s.RXBase(0) - LineBytes); cls != ClassOther {
		t.Fatal("address before RX must be Other")
	}
	lastTX := s.TXBase(1) + s.TXBytesPerCore() - LineBytes
	if cls, core := s.Classify(lastTX); cls != ClassTX || core != 1 {
		t.Fatal("last TX line misclassified")
	}
	if cls, _ := s.Classify(lastTX + LineBytes); cls != ClassOther {
		t.Fatal("address after TX must be Other")
	}
}

// Property: every line of every core's RX/TX region classifies back to that
// region and core.
func TestClassifyRoundTripProperty(t *testing.T) {
	s := NewSpace(8, 32*1024, 16*1024)
	f := func(coreRaw uint8, offRaw uint16) bool {
		core := int(coreRaw) % 8
		rxOff := (uint64(offRaw) % s.RXBytesPerCore()) &^ uint64(LineBytes-1)
		cls, c := s.Classify(s.RXBase(core) + rxOff)
		if cls != ClassRX || c != core {
			return false
		}
		txOff := (uint64(offRaw) % s.TXBytesPerCore()) &^ uint64(LineBytes-1)
		cls, c = s.Classify(s.TXBase(core) + txOff)
		return cls == ClassTX && c == core
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLines(t *testing.T) {
	cases := []struct {
		size uint64
		want uint64
	}{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {1024, 16}, {1025, 17}}
	for _, c := range cases {
		if got := Lines(c.size); got != c.want {
			t.Errorf("Lines(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestLineAddrs(t *testing.T) {
	// Aligned full packet.
	got := LineAddrs(nil, 1024, 128)
	if len(got) != 2 || got[0] != 1024 || got[1] != 1088 {
		t.Fatalf("aligned: %v", got)
	}
	// Unaligned range spanning an extra line.
	got = LineAddrs(nil, 1000, 128) // covers [1000,1128) -> lines 960,1024,1088
	if len(got) != 3 || got[0] != 960 || got[2] != 1088 {
		t.Fatalf("unaligned: %v", got)
	}
	// Sub-line range.
	got = LineAddrs(nil, 130, 4)
	if len(got) != 1 || got[0] != 128 {
		t.Fatalf("sub-line: %v", got)
	}
	// Reuses the destination slice.
	buf := make([]uint64, 0, 8)
	got = LineAddrs(buf, 0, 64)
	if cap(got) != 8 {
		t.Fatal("LineAddrs reallocated unnecessarily")
	}
}

func TestClassString(t *testing.T) {
	if ClassRX.String() != "RX" || ClassTX.String() != "TX" || ClassOther.String() != "Other" {
		t.Fatal("class labels wrong")
	}
}

func TestSpacePanics(t *testing.T) {
	mustPanic(t, "zero cores", func() { NewSpace(0, 64, 64) })
	s := NewSpace(1, 64, 64)
	mustPanic(t, "core out of range", func() { s.RXBase(1) })
	mustPanic(t, "negative core", func() { s.TXBase(-1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}
