package addr

// Page granularity of hybrid-memory placement decisions: tier ownership is
// decided per 4 KiB page, matching the OS mapping granularity the emulated
// NUMA/CXL placement papers assume.
const (
	PageBytes = uint64(4096)
	PageShift = 12
)

// PageOf returns the page number containing a.
func PageOf(a uint64) uint64 { return a >> PageShift }

// MaxLocalAddr is the largest local address the remote encoding can carry;
// tier boundaries must stay at or below it so tiered addresses survive the
// cluster's remote packing.
const MaxLocalAddr = maxLocal
