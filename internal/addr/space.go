// Package addr defines the simulated physical address space: where per-core
// RX and TX rings, key-value-store structures, route tables and collocated
// application datasets live, and how an arbitrary line address is classified
// back into the paper's traffic categories (RX buffer, TX buffer, other).
package addr

import "fmt"

// LineBytes is the cache line size; every address handled by the simulator
// is line-aligned.
const LineBytes = 64

// LineMask aligns an address down to its line.
const LineMask = ^uint64(LineBytes - 1)

// Class identifies what kind of data an address holds.
type Class uint8

const (
	// ClassOther is application data (KVS structures, route tables,
	// X-Mem arrays, ...).
	ClassOther Class = iota
	// ClassRX is a receive network buffer.
	ClassRX
	// ClassTX is a transmit network buffer.
	ClassTX
)

// String returns a short label for the class.
func (c Class) String() string {
	switch c {
	case ClassRX:
		return "RX"
	case ClassTX:
		return "TX"
	default:
		return "Other"
	}
}

// Space is the machine's physical address map. RX rings for all cores form
// one contiguous region, TX rings another; application data regions are
// allocated after them. All regions are line-aligned.
type Space struct {
	nCores    int
	rxBase    uint64
	rxPerCore uint64
	rxEnd     uint64
	txBase    uint64
	txPerCore uint64
	txEnd     uint64
	cursor    uint64
}

// base leaves the low 1 GiB unused so that a zero address is never a valid
// buffer, which catches uninitialized-address bugs in tests.
const base = uint64(1) << 30

// NewSpace lays out an address space for nCores cores with the given RX and
// TX ring footprints per core (rounded up to whole lines).
func NewSpace(nCores int, rxBytesPerCore, txBytesPerCore uint64) *Space {
	if nCores <= 0 {
		panic("addr: nCores must be positive")
	}
	rx := roundUp(rxBytesPerCore)
	tx := roundUp(txBytesPerCore)
	s := &Space{
		nCores:    nCores,
		rxBase:    base,
		rxPerCore: rx,
	}
	s.rxEnd = s.rxBase + uint64(nCores)*rx
	s.txBase = s.rxEnd
	s.txPerCore = tx
	s.txEnd = s.txBase + uint64(nCores)*tx
	s.cursor = s.txEnd
	return s
}

func roundUp(n uint64) uint64 {
	return (n + LineBytes - 1) &^ uint64(LineBytes-1)
}

// NCores returns the number of cores the space was laid out for.
func (s *Space) NCores() int { return s.nCores }

// RXBase returns the base address of core's RX ring region.
func (s *Space) RXBase(core int) uint64 {
	s.checkCore(core)
	return s.rxBase + uint64(core)*s.rxPerCore
}

// RXBytesPerCore returns the per-core RX region size in bytes.
func (s *Space) RXBytesPerCore() uint64 { return s.rxPerCore }

// TXBase returns the base address of core's TX ring region.
func (s *Space) TXBase(core int) uint64 {
	s.checkCore(core)
	return s.txBase + uint64(core)*s.txPerCore
}

// TXBytesPerCore returns the per-core TX region size in bytes.
func (s *Space) TXBytesPerCore() uint64 { return s.txPerCore }

func (s *Space) checkCore(core int) {
	if core < 0 || core >= s.nCores {
		panic(fmt.Sprintf("addr: core %d out of range [0,%d)", core, s.nCores))
	}
}

// Reset releases every AllocApp region, rewinding the allocation cursor to
// just past the TX rings. Re-running the same allocation sequence afterwards
// yields identical region bases, which is what lets a pooled machine rebuild
// its workload at the exact addresses a fresh machine would use.
func (s *Space) Reset() { s.cursor = s.txEnd }

// AllocApp reserves size bytes of application data and returns the region's
// base address. Regions are line-aligned and never overlap.
func (s *Space) AllocApp(size uint64) uint64 {
	b := s.cursor
	s.cursor += roundUp(size)
	return b
}

// End returns the first address beyond every allocated region.
func (s *Space) End() uint64 { return s.cursor }

// AppBase returns the first application-heap address — the boundary the
// hybrid-memory static split is measured from. RX and TX rings live below it
// and are always tier-0 resident (the NIC DMA-targets them).
func (s *Space) AppBase() uint64 { return s.txEnd }

// Classify maps a line address to its traffic class and, for network
// buffers, the owning core (-1 for application data).
func (s *Space) Classify(a uint64) (Class, int) {
	switch {
	case a >= s.rxBase && a < s.rxEnd:
		return ClassRX, int((a - s.rxBase) / s.rxPerCore)
	case a >= s.txBase && a < s.txEnd:
		return ClassTX, int((a - s.txBase) / s.txPerCore)
	default:
		return ClassOther, -1
	}
}

// Lines returns how many whole cache lines cover size bytes.
func Lines(size uint64) uint64 {
	return (size + LineBytes - 1) / LineBytes
}

// LineAddrs appends the line-aligned addresses covering [start, start+size)
// to dst and returns it.
func LineAddrs(dst []uint64, start, size uint64) []uint64 {
	first := start & LineMask
	last := (start + size - 1) & LineMask
	for a := first; ; a += LineBytes {
		dst = append(dst, a)
		if a == last {
			break
		}
	}
	return dst
}
