package nic

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func sampleRecords() []TraceRecord {
	return []TraceRecord{
		{Cycles: 100, Bytes: 64, Flow: 3},
		{Cycles: 250, Bytes: 1500, Flow: 7},
		{Cycles: 250, Bytes: 576, Flow: 3}, // equal timestamps are legal
		{Cycles: 900, Bytes: 64, Flow: 0},
	}
}

func roundTrip(t *testing.T, write func(*bytes.Buffer) error) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceRoundTripBinary(t *testing.T) {
	recs := sampleRecords()
	tr := roundTrip(t, func(b *bytes.Buffer) error { return WriteTraceBinary(b, recs) })
	checkTraceMatches(t, tr, recs)
}

func TestTraceRoundTripCSV(t *testing.T) {
	recs := sampleRecords()
	tr := roundTrip(t, func(b *bytes.Buffer) error { return WriteTraceCSV(b, recs) })
	checkTraceMatches(t, tr, recs)
}

func checkTraceMatches(t *testing.T, tr *Trace, recs []TraceRecord) {
	t.Helper()
	if tr.Len() != len(recs) {
		t.Fatalf("parsed %d records, want %d", tr.Len(), len(recs))
	}
	for i, r := range recs {
		if tr.times[i] != r.Cycles || tr.sizes[i] != r.Bytes || tr.flows[i] != r.Flow {
			t.Errorf("record %d: (%d,%d,%d), want (%d,%d,%d)", i,
				tr.times[i], tr.sizes[i], tr.flows[i], r.Cycles, r.Bytes, r.Flow)
		}
	}
	if tr.duration <= recs[len(recs)-1].Cycles {
		t.Errorf("duration %d does not exceed the last timestamp %d",
			tr.duration, recs[len(recs)-1].Cycles)
	}
}

func TestTraceCSVWhitespaceAndBlanks(t *testing.T) {
	in := "cycles,bytes,flow\n10, 64, 1\n\n  20,576,2  \n"
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.times[1] != 20 || tr.sizes[0] != 64 {
		t.Fatalf("parsed %+v", tr)
	}
}

// binTrace builds a binary trace image: header with the given version and
// count, then the provided record bytes.
func binTrace(version uint32, count uint64, body []byte) []byte {
	var hdr [16]byte
	copy(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], count)
	return append(hdr[:], body...)
}

func binRec(delta, size, flow uint32) []byte {
	var rec [traceRecBytes]byte
	binary.LittleEndian.PutUint32(rec[0:4], delta)
	binary.LittleEndian.PutUint32(rec[4:8], size)
	binary.LittleEndian.PutUint32(rec[8:12], flow)
	return rec[:]
}

func TestTraceParseErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty input":        {},
		"truncated header":   []byte(traceMagic),
		"bad version":        binTrace(2, 1, binRec(1, 64, 0)),
		"zero count":         binTrace(traceVersion, 0, nil),
		"huge count":         binTrace(traceVersion, maxTraceRecords+1, nil),
		"truncated body":     binTrace(traceVersion, 2, binRec(1, 64, 0)),
		"partial record":     binTrace(traceVersion, 1, binRec(1, 64, 0)[:7]),
		"zero size":          binTrace(traceVersion, 1, binRec(1, 0, 0)),
		"trailing data":      append(binTrace(traceVersion, 1, binRec(1, 64, 0)), 0xee),
		"csv bad header":     []byte("time,size,conn\n1,64,0\n"),
		"csv missing field":  []byte("cycles,bytes,flow\n1,64\n"),
		"csv extra field":    []byte("cycles,bytes,flow\n1,64,0,9\n"),
		"csv non-numeric":    []byte("cycles,bytes,flow\nx,64,0\n"),
		"csv zero size":      []byte("cycles,bytes,flow\n1,0,0\n"),
		"csv time reversal":  []byte("cycles,bytes,flow\n50,64,0\n40,64,1\n"),
		"csv header only":    []byte("cycles,bytes,flow\n"),
		"csv size overflow":  []byte("cycles,bytes,flow\n1,4294967296,0\n"),
		"csv negative cycle": []byte("cycles,bytes,flow\n-1,64,0\n"),
	}
	for name, in := range cases {
		if _, err := ParseTrace(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestTraceWriterRejectsBadRecords(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceBinary(&buf, nil); err == nil {
		t.Error("empty trace written")
	}
	disordered := []TraceRecord{{Cycles: 10, Bytes: 64}, {Cycles: 5, Bytes: 64}}
	if err := WriteTraceBinary(&buf, disordered); err == nil {
		t.Error("disordered trace written")
	}
	if err := WriteTraceCSV(&buf, disordered); err == nil {
		t.Error("disordered CSV trace written")
	}
	wideGap := []TraceRecord{{Cycles: 0, Bytes: 64}, {Cycles: 1 << 33, Bytes: 64}}
	if err := WriteTraceBinary(&buf, wideGap); err == nil {
		t.Error("gap wider than uint32 written")
	}
	zeroSize := []TraceRecord{{Cycles: 1, Bytes: 0}}
	if err := WriteTraceBinary(&buf, zeroSize); err == nil {
		t.Error("zero-size record written")
	}
}

func TestTraceSealDuration(t *testing.T) {
	// Single arrival and zero-span traces still get a positive epoch tail.
	one := roundTrip(t, func(b *bytes.Buffer) error {
		return WriteTraceBinary(b, []TraceRecord{{Cycles: 40, Bytes: 64}})
	})
	if one.duration <= 40 {
		t.Errorf("single-record duration %d", one.duration)
	}
	flat := roundTrip(t, func(b *bytes.Buffer) error {
		return WriteTraceBinary(b, []TraceRecord{{Cycles: 7, Bytes: 64}, {Cycles: 7, Bytes: 64}})
	})
	if flat.duration <= 7 {
		t.Errorf("zero-span duration %d", flat.duration)
	}
}

func TestLoadTraceMemoizes(t *testing.T) {
	path := t.TempDir() + "/memo.bin"
	writeTraceFile(t, path, sampleRecords())
	a, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("LoadTrace re-parsed a cached path")
	}
	if _, err := LoadTrace(t.TempDir() + "/nonesuch.bin"); err == nil {
		t.Error("missing file loaded")
	}
}
