package nic

import (
	"testing"

	"sweeper/internal/addr"
	"sweeper/internal/sim"
)

// fakeInjector records the architectural operations the NIC performs.
type fakeInjector struct {
	ddioWrites []uint64
	idioWrites []uint64
	dmaWrites  []uint64
	reads      []uint64
	readsDMA   []bool
}

func (f *fakeInjector) NICWriteDDIO(now uint64, owner int, a uint64) {
	f.ddioWrites = append(f.ddioWrites, a)
}

func (f *fakeInjector) NICWriteIDIO(now uint64, owner int, a uint64) {
	f.idioWrites = append(f.idioWrites, a)
}

func (f *fakeInjector) NICWriteDMA(now uint64, owner int, a uint64) {
	f.dmaWrites = append(f.dmaWrites, a)
}

func (f *fakeInjector) NICRead(now uint64, owner int, a uint64, dma bool) uint64 {
	f.reads = append(f.reads, a)
	f.readsDMA = append(f.readsDMA, dma)
	return now + 40
}

type fakeTXSweeper struct {
	enabled bool
	sweeps  []uint64
	sizes   []uint64
}

func (f *fakeTXSweeper) NICSweep(now uint64, owner int, buf, size uint64) {
	f.sweeps = append(f.sweeps, buf)
	f.sizes = append(f.sizes, size)
}

func (f *fakeTXSweeper) TXEnabled() bool { return f.enabled }

func newTestNIC(t *testing.T, mode Mode) (*NIC, *fakeInjector, *addr.Space) {
	t.Helper()
	space := addr.NewSpace(2, 8*1024, 8*1024)
	inj := &fakeInjector{}
	n := New(Config{Mode: mode, RingSlots: 8, SlotBytes: 1024}, space, inj)
	return n, inj, space
}

func TestModeString(t *testing.T) {
	if ModeDMA.String() != "DMA" || ModeDDIO.String() != "DDIO" || ModeIdeal.String() != "Ideal-DDIO" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode")
	}
}

func TestInjectDDIOWritesEveryLine(t *testing.T) {
	n, inj, space := newTestNIC(t, ModeDDIO)
	if !n.Inject(100, 1, 1024, 7) {
		t.Fatal("inject failed")
	}
	if len(inj.ddioWrites) != 16 {
		t.Fatalf("%d DDIO writes, want 16", len(inj.ddioWrites))
	}
	if inj.ddioWrites[0] != space.RXBase(1) {
		t.Fatalf("first line at %#x, want ring base", inj.ddioWrites[0])
	}
	p, ok := n.Ring(1).Pop()
	if !ok || p.Size != 1024 || p.Tag != 7 || p.Arrival != 100 {
		t.Fatalf("packet %+v", p)
	}
}

func TestInjectDMA(t *testing.T) {
	n, inj, _ := newTestNIC(t, ModeDMA)
	n.Inject(0, 0, 512, 1)
	if len(inj.dmaWrites) != 8 || len(inj.ddioWrites) != 0 {
		t.Fatalf("dma=%d ddio=%d", len(inj.dmaWrites), len(inj.ddioWrites))
	}
}

func TestInjectIdealTouchesNothing(t *testing.T) {
	space := addr.NewSpace(1, 8*1024, 8*1024)
	n := New(Config{Mode: ModeIdeal, RingSlots: 4, SlotBytes: 1024}, space, nil)
	if !n.Inject(0, 0, 1024, 1) {
		t.Fatal("ideal inject failed")
	}
	if n.Injected() != 1 {
		t.Fatal("not counted")
	}
}

func TestInjectSizePanics(t *testing.T) {
	n, _, _ := newTestNIC(t, ModeDDIO)
	for _, size := range []uint64{0, 2048} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d: expected panic", size)
				}
			}()
			n.Inject(0, 0, size, 0)
		}()
	}
}

func TestInjectDropsWhenFull(t *testing.T) {
	n, _, _ := newTestNIC(t, ModeDDIO)
	for i := 0; i < 8; i++ {
		if !n.Inject(0, 0, 64, uint64(i)) {
			t.Fatalf("inject %d failed early", i)
		}
	}
	if n.Inject(0, 0, 64, 99) {
		t.Fatal("inject succeeded on full ring")
	}
	if n.Dropped() != 1 {
		t.Fatalf("dropped = %d", n.Dropped())
	}
}

func TestEnqueueCallbackFires(t *testing.T) {
	n, _, _ := newTestNIC(t, ModeDDIO)
	var gotCore int
	var gotNow uint64
	n.SetEnqueueCallback(func(now uint64, core int) { gotNow, gotCore = now, core })
	n.Inject(42, 1, 64, 0)
	if gotCore != 1 || gotNow != 42 {
		t.Fatalf("callback got core=%d now=%d", gotCore, gotNow)
	}
}

func TestTransmitReadsEveryLine(t *testing.T) {
	n, inj, _ := newTestNIC(t, ModeDDIO)
	n.Transmit(0, WorkQueueEntry{Owner: 0, BufAddr: 0x100000, Size: 256})
	if len(inj.reads) != 4 {
		t.Fatalf("%d TX reads, want 4", len(inj.reads))
	}
	for _, dma := range inj.readsDMA {
		if dma {
			t.Fatal("DDIO transmit flagged as DMA")
		}
	}
}

func TestTransmitDMAFlag(t *testing.T) {
	n, inj, _ := newTestNIC(t, ModeDMA)
	n.Transmit(0, WorkQueueEntry{Owner: 0, BufAddr: 0x100000, Size: 64})
	if len(inj.readsDMA) != 1 || !inj.readsDMA[0] {
		t.Fatal("DMA transmit must read via the DMA path")
	}
}

func TestTransmitIdealNoTraffic(t *testing.T) {
	space := addr.NewSpace(1, 8*1024, 8*1024)
	n := New(Config{Mode: ModeIdeal, RingSlots: 4, SlotBytes: 1024}, space, nil)
	n.Transmit(0, WorkQueueEntry{BufAddr: 0x100000, Size: 1024})
	// No injector: would panic if it tried to read.
}

func TestTransmitSweepBufferGating(t *testing.T) {
	n, _, _ := newTestNIC(t, ModeDDIO)
	sw := &fakeTXSweeper{enabled: false}
	n.SetTXSweeper(sw)

	// Flag set but sweeping disabled: no sweep.
	n.Transmit(0, WorkQueueEntry{BufAddr: 0x1000, Size: 128, SweepBuffer: true})
	if len(sw.sweeps) != 0 {
		t.Fatal("sweep ran while TX sweeping disabled")
	}

	// Enabled but flag not set: no sweep (the CPU decides per entry).
	sw.enabled = true
	n.Transmit(0, WorkQueueEntry{BufAddr: 0x1000, Size: 128})
	if len(sw.sweeps) != 0 {
		t.Fatal("sweep ran without SweepBuffer flag")
	}

	// Both: sweep the exact buffer.
	n.Transmit(0, WorkQueueEntry{BufAddr: 0x1000, Size: 128, SweepBuffer: true})
	if len(sw.sweeps) != 1 || sw.sweeps[0] != 0x1000 || sw.sizes[0] != 128 {
		t.Fatalf("sweeps = %v sizes = %v", sw.sweeps, sw.sizes)
	}
}

func TestRingFootprintValidation(t *testing.T) {
	space := addr.NewSpace(1, 1024, 1024) // room for a single 1KB slot
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: ring exceeds RX region")
		}
	}()
	New(Config{Mode: ModeDDIO, RingSlots: 2, SlotBytes: 1024}, space, &fakeInjector{})
}

func TestNilInjectorPanics(t *testing.T) {
	space := addr.NewSpace(1, 1024, 1024)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Mode: ModeDDIO, RingSlots: 1, SlotBytes: 1024}, space, nil)
}

func TestResetCounters(t *testing.T) {
	n, _, _ := newTestNIC(t, ModeDDIO)
	n.Inject(0, 0, 64, 0)
	n.ResetCounters()
	if n.Injected() != 0 || n.Dropped() != 0 {
		t.Fatal("reset")
	}
}

func TestTotalQueued(t *testing.T) {
	n, _, _ := newTestNIC(t, ModeDDIO)
	n.Inject(0, 0, 64, 0)
	n.Inject(0, 1, 64, 0)
	n.Inject(0, 1, 64, 0)
	if n.TotalQueued() != 3 {
		t.Fatalf("TotalQueued = %d", n.TotalQueued())
	}
}

func TestPoissonGeneratorRate(t *testing.T) {
	space := addr.NewSpace(4, 64*1024, 1024)
	inj := &fakeInjector{}
	n := New(Config{Mode: ModeDDIO, RingSlots: 1024, SlotBytes: 64}, space, inj)
	eng := sim.NewEngine()
	// Mean gap 100 cycles -> ~10k arrivals in 1M cycles.
	inject := func(now uint64, core int, size uint64, tag uint64) { n.Inject(now, core, size, tag) }
	g, err := NewArrival(eng, ArrivalSpec{Cores: 4, Size: 64, MeanGap: 100, Seed: 1}, inject)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	// Keep rings drained so nothing drops.
	n.SetEnqueueCallback(func(uint64, int) {})
	drain := func(now uint64) {
		for c := 0; c < 4; c++ {
			for {
				if _, ok := n.Ring(c).Pop(); !ok {
					break
				}
				n.Ring(c).Free()
			}
		}
	}
	for i := 0; i < 100; i++ {
		eng.RunUntil(uint64(i+1) * 10_000)
		drain(eng.Now())
	}
	got := float64(g.Offered())
	if got < 8500 || got > 11500 {
		t.Fatalf("offered %g arrivals for expected ~10000", got)
	}
	g.Stop()
	before := g.Offered()
	eng.RunUntil(2_000_000)
	if g.Offered() != before {
		t.Fatal("generator kept running after Stop")
	}
}

func TestPoissonSizerAndTargetCores(t *testing.T) {
	space := addr.NewSpace(4, 64*1024, 1024)
	inj := &fakeInjector{}
	n := New(Config{Mode: ModeDDIO, RingSlots: 16, SlotBytes: 1024}, space, inj)
	eng := sim.NewEngine()
	inject := func(now uint64, core int, size uint64, tag uint64) { n.Inject(now, core, size, tag) }
	g, err := NewArrival(eng, ArrivalSpec{Cores: 2, Size: 1024, MeanGap: 50, Seed: 2}, inject)
	if err != nil {
		t.Fatal(err)
	}
	g.SetSizer(func(tag uint64) uint64 { return 64 })
	g.Start()
	eng.RunUntil(5000)
	for c := 2; c < 4; c++ {
		if n.Ring(c).Enqueued() != 0 {
			t.Fatalf("core %d received traffic outside target set", c)
		}
	}
	// All packets must be sized by the sizer.
	for c := 0; c < 2; c++ {
		for {
			p, ok := n.Ring(c).Pop()
			if !ok {
				break
			}
			if p.Size != 64 {
				t.Fatalf("packet size %d, want sizer's 64", p.Size)
			}
		}
	}
}

func TestClosedLoopMaintainsDepth(t *testing.T) {
	space := addr.NewSpace(2, 64*1024, 1024)
	inj := &fakeInjector{}
	n := New(Config{Mode: ModeDDIO, RingSlots: 64, SlotBytes: 64}, space, inj)
	g := NewClosedLoopGen(n, 64, 8, 3)
	g.Start(0)
	for c := 0; c < 2; c++ {
		if n.Ring(c).Queued() != 8 {
			t.Fatalf("core %d primed with %d, want 8", c, n.Ring(c).Queued())
		}
	}
	// Consume a few and refill.
	r := n.Ring(0)
	for i := 0; i < 3; i++ {
		r.Pop()
		r.Free()
	}
	g.Refill(100, 0)
	if r.Queued() != 8 {
		t.Fatalf("refill left %d queued", r.Queued())
	}
	if g.Depth() != 8 {
		t.Fatal("Depth accessor")
	}
}

func TestClosedLoopValidation(t *testing.T) {
	space := addr.NewSpace(1, 1024, 1024)
	n := New(Config{Mode: ModeDDIO, RingSlots: 4, SlotBytes: 64}, space, &fakeInjector{})
	for name, fn := range map[string]func(){
		"zero depth": func() { NewClosedLoopGen(n, 64, 0, 1) },
		"too deep":   func() { NewClosedLoopGen(n, 64, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPoissonValidation(t *testing.T) {
	eng := sim.NewEngine()
	inject := func(uint64, int, uint64, uint64) {}
	if _, err := NewArrival(eng, ArrivalSpec{Cores: 1, Size: 64, MeanGap: 0, Seed: 1}, inject); err == nil {
		t.Fatal("expected error on non-positive gap")
	}
	if _, err := NewArrival(eng, ArrivalSpec{Cores: 0, Size: 64, MeanGap: 10, Seed: 1}, inject); err == nil {
		t.Fatal("expected error on non-positive core count")
	}
	spec := ArrivalSpec{Cores: 1, Size: 64, MeanGap: 10, Seed: 1,
		Config: ArrivalConfig{Process: "nonesuch"}}
	if _, err := NewArrival(eng, spec, inject); err == nil {
		t.Fatal("expected error on unknown process")
	}
}
