package nic

import (
	"testing"

	"sweeper/internal/addr"
)

func TestNeBuLaDropPolicy(t *testing.T) {
	space := addr.NewSpace(1, 64*1024, 1024)
	n := New(Config{Mode: ModeDDIO, RingSlots: 64, SlotBytes: 64}, space, &fakeInjector{})
	n.SetDropDepth(4)

	for i := 0; i < 4; i++ {
		if !n.Inject(0, 0, 64, uint64(i)) {
			t.Fatalf("inject %d rejected below the threshold", i)
		}
	}
	// Fifth arrival finds 4 queued: dropped by policy even though 60
	// slots remain free.
	if n.Inject(0, 0, 64, 99) {
		t.Fatal("policy did not drop at threshold")
	}
	if n.PolicyDrops() != 1 {
		t.Fatalf("policy drops = %d", n.PolicyDrops())
	}
	if n.Dropped() != 1 {
		t.Fatal("Dropped must include policy drops")
	}
	if n.Ring(0).InUse() != 4 {
		t.Fatal("policy drop consumed a slot")
	}

	// Consuming one packet re-opens admission.
	n.Ring(0).Pop()
	if !n.Inject(0, 0, 64, 100) {
		t.Fatal("inject rejected after queue shrank")
	}
}

func TestDropDepthDisabledByDefault(t *testing.T) {
	space := addr.NewSpace(1, 64*1024, 1024)
	n := New(Config{Mode: ModeDDIO, RingSlots: 8, SlotBytes: 64}, space, &fakeInjector{})
	for i := 0; i < 8; i++ {
		if !n.Inject(0, 0, 64, uint64(i)) {
			t.Fatal("default policy must admit until the ring is full")
		}
	}
	if n.PolicyDrops() != 0 {
		t.Fatal("policy drops without a threshold")
	}
}

func TestDropDepthValidation(t *testing.T) {
	space := addr.NewSpace(1, 1024, 1024)
	n := New(Config{Mode: ModeDDIO, RingSlots: 4, SlotBytes: 64}, space, &fakeInjector{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.SetDropDepth(-1)
}

func TestResetCountersClearsPolicyDrops(t *testing.T) {
	space := addr.NewSpace(1, 64*1024, 1024)
	n := New(Config{Mode: ModeDDIO, RingSlots: 8, SlotBytes: 64}, space, &fakeInjector{})
	n.SetDropDepth(1)
	n.Inject(0, 0, 64, 0)
	n.Inject(0, 0, 64, 1) // dropped
	n.ResetCounters()
	if n.PolicyDrops() != 0 {
		t.Fatal("reset")
	}
}
