package nic

import (
	"math/rand"
	"testing"
)

func TestRingGeometry(t *testing.T) {
	r := NewRing(3, 0x1000, 1024, 8)
	if r.Core() != 3 || r.Slots() != 8 || r.SlotBytes() != 1024 {
		t.Fatal("geometry accessors")
	}
	if r.SlotAddr(0) != 0x1000 || r.SlotAddr(2) != 0x1000+2048 {
		t.Fatal("slot addressing")
	}
	if r.FootprintBytes() != 8*1024 {
		t.Fatal("footprint")
	}
}

func TestRingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero slots":     func() { NewRing(0, 0, 64, 0) },
		"zero slotbytes": func() { NewRing(0, 0, 0, 4) },
		"free empty":     func() { NewRing(0, 0, 64, 4).Free() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRingReserveWrapsAndFills(t *testing.T) {
	r := NewRing(0, 0, 64, 3)
	for i := 0; i < 3; i++ {
		s, ok := r.Reserve()
		if !ok || s != i {
			t.Fatalf("reserve %d: slot %d ok=%v", i, s, ok)
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	if _, ok := r.Reserve(); ok {
		t.Fatal("reserve succeeded on full ring")
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
	r.Free()
	s, ok := r.Reserve()
	if !ok || s != 0 {
		t.Fatalf("wrap: slot %d ok=%v", s, ok)
	}
}

func TestRingFIFOOrder(t *testing.T) {
	r := NewRing(0, 0, 64, 4)
	for i := uint64(1); i <= 3; i++ {
		slot, _ := r.Reserve()
		r.Enqueue(Packet{Seq: i, Slot: slot})
	}
	if r.Queued() != 3 {
		t.Fatalf("queued = %d", r.Queued())
	}
	for i := uint64(1); i <= 3; i++ {
		p, ok := r.Pop()
		if !ok || p.Seq != i {
			t.Fatalf("pop %d: %+v ok=%v", i, p, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty queue")
	}
}

func TestRingInUseVersusQueued(t *testing.T) {
	r := NewRing(0, 0, 64, 4)
	slot, _ := r.Reserve()
	r.Enqueue(Packet{Slot: slot})
	if r.InUse() != 1 || r.Queued() != 1 {
		t.Fatal("after enqueue")
	}
	r.Pop()
	if r.InUse() != 1 || r.Queued() != 0 {
		t.Fatal("pop must not free the slot")
	}
	r.Free()
	if r.InUse() != 0 {
		t.Fatal("free")
	}
}

func TestRingCounters(t *testing.T) {
	r := NewRing(0, 0, 64, 1)
	s, _ := r.Reserve()
	r.Enqueue(Packet{Slot: s})
	r.Reserve() // drop
	if r.Enqueued() != 1 || r.Dropped() != 1 {
		t.Fatal("counters")
	}
	r.ResetCounters()
	if r.Enqueued() != 0 || r.Dropped() != 0 {
		t.Fatal("reset")
	}
}

// Property: under random reserve/enqueue/pop/free traffic, occupancy
// invariants hold: 0 <= queued <= inUse <= slots.
func TestRingInvariantProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewRing(0, 0, 64, 1+rng.Intn(8))
		popped := 0 // packets popped but not yet freed
		for op := 0; op < 1000; op++ {
			switch rng.Intn(3) {
			case 0:
				if s, ok := r.Reserve(); ok {
					r.Enqueue(Packet{Slot: s, Seq: uint64(op)})
				}
			case 1:
				if _, ok := r.Pop(); ok {
					popped++
				}
			case 2:
				if popped > 0 {
					r.Free()
					popped--
				}
			}
			if r.Queued() < 0 || r.Queued() > r.InUse() || r.InUse() > r.Slots() {
				t.Fatalf("seed %d: invariant broken: queued=%d inUse=%d slots=%d",
					seed, r.Queued(), r.InUse(), r.Slots())
			}
		}
	}
}
