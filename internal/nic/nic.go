package nic

import (
	"fmt"

	"sweeper/internal/addr"
	"sweeper/internal/obs"
)

// Mode selects the packet injection policy (§III baselines).
type Mode uint8

const (
	// ModeDMA is conventional direct-to-DRAM injection.
	ModeDMA Mode = iota
	// ModeDDIO write-allocates incoming packets into the LLC DDIO ways.
	ModeDDIO
	// ModeIdeal is the unrealistic Ideal-DDIO baseline: a separate
	// infinite cache holds all network buffers, so packets occupy no real
	// LLC capacity and generate zero DRAM traffic.
	ModeIdeal
	// ModeIDIO steers incoming packets into the receiving core's private
	// L2 (the related-work IDIO mechanism), expanding the cache capacity
	// network buffers can use beyond the DDIO ways.
	ModeIDIO
)

// String names the mode as in the paper's legends.
func (m Mode) String() string {
	switch m {
	case ModeDMA:
		return "DMA"
	case ModeDDIO:
		return "DDIO"
	case ModeIdeal:
		return "Ideal-DDIO"
	case ModeIDIO:
		return "IDIO"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Injector is the cache-hierarchy interface the NIC drives. The cache
// package's Hierarchy implements it.
type Injector interface {
	NICWriteDDIO(now uint64, owner int, a uint64)
	NICWriteIDIO(now uint64, owner int, a uint64)
	NICWriteDMA(now uint64, owner int, a uint64)
	NICRead(now uint64, owner int, a uint64, dma bool) uint64
}

// TXSweeper is the NIC-driven sweep hook of §V-D (implemented by
// core.Sweeper). A nil TXSweeper disables TX sweeping.
type TXSweeper interface {
	NICSweep(now uint64, owner int, buf, size uint64)
	TXEnabled() bool
}

// Overwrites receives notice of NIC full-line overwrites; the Sweeper
// sanitizer uses it to close use-after-relinquish windows.
type Overwrites interface {
	NoteOverwrite(a uint64)
}

// WorkQueueEntry is the memory-mapped descriptor a core posts to schedule a
// transmission, including the paper's proposed SweepBuffer field (Figure 4).
type WorkQueueEntry struct {
	// Owner is the posting core.
	Owner int
	// BufAddr and Size locate the transmit buffer.
	BufAddr uint64
	Size    uint64
	// SweepBuffer asks the NIC to sweep the buffer's cache blocks after
	// transmission (§V-D zero-copy support).
	SweepBuffer bool
}

// NIC is the integrated network interface: one RX ring per core plus the
// injection and transmit machinery.
type NIC struct {
	mode    Mode
	inj     Injector
	rings   []*Ring
	sweeper TXSweeper
	overw   Overwrites

	// onEnqueue, when set, is invoked after a packet lands in a ring so
	// the machine can wake an idle core.
	onEnqueue func(now uint64, core int)

	// dropDepth, when positive, enables NeBuLa-style proactive dropping
	// (§II-C): arrivals finding dropDepth packets already queued on the
	// target ring are dropped even though slots remain, bounding queue
	// depth (and so LLC buffer occupancy) by policy instead of capacity.
	dropDepth int

	seq         uint64
	lineBuf     []uint64
	injected    uint64
	policyDrops uint64
	txPackets   uint64
	txLines     uint64
}

// Config describes the NIC.
type Config struct {
	Mode Mode
	// RingSlots is the RX descriptor count per core (the paper's
	// "receive buffers per core").
	RingSlots int
	// SlotBytes is the buffer size per descriptor (the packet MTU of the
	// experiment).
	SlotBytes uint64
}

// New builds a NIC over the address space and injector. The space's per-core
// RX regions must cover RingSlots*SlotBytes.
func New(cfg Config, space *addr.Space, inj Injector) *NIC {
	if inj == nil && cfg.Mode != ModeIdeal {
		panic("nic: nil injector")
	}
	need := uint64(cfg.RingSlots) * cfg.SlotBytes
	if need > space.RXBytesPerCore() {
		panic(fmt.Sprintf("nic: ring footprint %dB exceeds RX region %dB",
			need, space.RXBytesPerCore()))
	}
	n := &NIC{
		mode:  cfg.Mode,
		inj:   inj,
		rings: make([]*Ring, space.NCores()),
	}
	for c := 0; c < space.NCores(); c++ {
		n.rings[c] = NewRing(c, space.RXBase(c), cfg.SlotBytes, cfg.RingSlots)
	}
	return n
}

// Reset returns the NIC to its just-constructed state under a (possibly
// different) injection mode, reusing the rings and scratch buffers. Hooks
// (TX sweeper, overwrite listener, enqueue callback) and the drop policy are
// cleared; the owner re-wires them exactly as after New.
func (n *NIC) Reset(mode Mode) {
	n.mode = mode
	n.sweeper, n.overw, n.onEnqueue = nil, nil, nil
	n.dropDepth = 0
	n.seq = 0
	n.injected, n.policyDrops, n.txPackets, n.txLines = 0, 0, 0, 0
	for _, r := range n.rings {
		r.Reset()
	}
}

// Mode returns the injection policy.
func (n *NIC) Mode() Mode { return n.mode }

// Ring returns core's RX ring.
func (n *NIC) Ring(core int) *Ring { return n.rings[core] }

// NumRings returns the core count.
func (n *NIC) NumRings() int { return len(n.rings) }

// SetTXSweeper wires the §V-D NIC-driven sweeping hook.
func (n *NIC) SetTXSweeper(s TXSweeper) { n.sweeper = s }

// SetOverwriteListener wires the sanitizer overwrite hook.
func (n *NIC) SetOverwriteListener(o Overwrites) { n.overw = o }

// SetEnqueueCallback registers the wake-up hook invoked on every successful
// injection.
func (n *NIC) SetEnqueueCallback(fn func(now uint64, core int)) { n.onEnqueue = fn }

// SetDropDepth enables NeBuLa-style proactive packet dropping once a ring
// holds depth unconsumed packets (0 disables the policy).
func (n *NIC) SetDropDepth(depth int) {
	if depth < 0 {
		panic("nic: negative drop depth")
	}
	n.dropDepth = depth
}

// PolicyDrops returns arrivals dropped by the proactive policy (distinct
// from ring-full drops).
func (n *NIC) PolicyDrops() uint64 { return n.policyDrops }

// Inject delivers one size-byte packet to core's ring at cycle now,
// performing the mode's architectural writes. It reports false when the
// ring is full and the packet is dropped.
func (n *NIC) Inject(now uint64, core int, size uint64, tag uint64) bool {
	r := n.rings[core]
	if size == 0 || size > r.SlotBytes() {
		panic(fmt.Sprintf("nic: packet size %d outside (0,%d]", size, r.SlotBytes()))
	}
	if n.dropDepth > 0 && r.Queued() >= n.dropDepth {
		n.policyDrops++
		return false
	}
	slot, ok := r.Reserve()
	if !ok {
		return false
	}
	base := r.SlotAddr(slot)
	n.lineBuf = addr.LineAddrs(n.lineBuf[:0], base, size)
	switch n.mode {
	case ModeDDIO:
		for _, a := range n.lineBuf {
			n.inj.NICWriteDDIO(now, core, a)
			if n.overw != nil {
				n.overw.NoteOverwrite(a)
			}
		}
	case ModeIDIO:
		for _, a := range n.lineBuf {
			n.inj.NICWriteIDIO(now, core, a)
			if n.overw != nil {
				n.overw.NoteOverwrite(a)
			}
		}
	case ModeDMA:
		for _, a := range n.lineBuf {
			n.inj.NICWriteDMA(now, core, a)
			if n.overw != nil {
				n.overw.NoteOverwrite(a)
			}
		}
	case ModeIdeal:
		// Side cache: no architectural effect.
	}
	n.seq++
	n.injected++
	r.Enqueue(Packet{
		Seq:     n.seq,
		Arrival: now,
		Size:    size,
		Slot:    slot,
		Addr:    base,
		Tag:     tag,
	})
	if n.onEnqueue != nil {
		n.onEnqueue(now, core)
	}
	return true
}

// Transmit processes a posted Work Queue entry at cycle now: the NIC reads
// the buffer's lines through the hierarchy (from DRAM under conventional
// DMA, flushing dirty copies first) and, when the entry requests it and TX
// sweeping is enabled, sweeps the buffer afterwards. The transmission
// itself is not bandwidth-capped (§III: network bandwidth is never the
// bottleneck under study).
func (n *NIC) Transmit(now uint64, wqe WorkQueueEntry) {
	n.txPackets++
	if n.mode == ModeIdeal {
		return // network buffers live in the side cache
	}
	n.lineBuf = addr.LineAddrs(n.lineBuf[:0], wqe.BufAddr, wqe.Size)
	for _, a := range n.lineBuf {
		n.inj.NICRead(now, wqe.Owner, a, n.mode == ModeDMA)
		n.txLines++
	}
	if wqe.SweepBuffer && n.sweeper != nil && n.sweeper.TXEnabled() {
		n.sweeper.NICSweep(now, wqe.Owner, wqe.BufAddr, wqe.Size)
	}
}

// Injected returns the number of packets successfully injected.
func (n *NIC) Injected() uint64 { return n.injected }

// Dropped sums drops across all rings, including policy drops.
func (n *NIC) Dropped() uint64 {
	d := n.policyDrops
	for _, r := range n.rings {
		d += r.Dropped()
	}
	return d
}

// TotalQueued sums unconsumed packets across rings.
func (n *NIC) TotalQueued() int {
	q := 0
	for _, r := range n.rings {
		q += r.Queued()
	}
	return q
}

// RegisterMetrics exposes the NIC's injection/transmit counters, aggregate
// queue state and per-ring occupancy to the observability registry.
func (n *NIC) RegisterMetrics(r *obs.Registry) {
	r.Counter("nic.injected", func() uint64 { return n.injected })
	r.Counter("nic.dropped", n.Dropped)
	r.Counter("nic.tx_packets", func() uint64 { return n.txPackets })
	r.Counter("nic.tx_lines", func() uint64 { return n.txLines })
	r.Gauge("nic.queued", func(uint64) float64 { return float64(n.TotalQueued()) })
	r.Gauge("nic.ring_occupancy", func(uint64) float64 {
		var u int
		for _, rg := range n.rings {
			u += rg.InUse()
		}
		return float64(u)
	})
	for i, rg := range n.rings {
		rg.RegisterMetrics(r, fmt.Sprintf("nic.ring%02d.occupancy", i))
	}
}

// ResetCounters zeroes per-window counters on the NIC and its rings.
func (n *NIC) ResetCounters() {
	n.injected, n.txPackets, n.txLines, n.policyDrops = 0, 0, 0, 0
	for _, r := range n.rings {
		r.ResetCounters()
	}
}
