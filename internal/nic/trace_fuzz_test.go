package nic

import (
	"bytes"
	"testing"
)

// FuzzParseTrace hammers the trace parser with arbitrary bytes: whatever
// the input, it must return a well-formed trace or an error — no panics,
// no hangs, no half-initialized traces. The seed corpus covers both
// formats plus the interesting malformations; go test runs the seeds (and
// the committed corpus under testdata/fuzz) even without -fuzz.
func FuzzParseTrace(f *testing.F) {
	var ok bytes.Buffer
	if err := WriteTraceBinary(&ok, sampleRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	var okCSV bytes.Buffer
	if err := WriteTraceCSV(&okCSV, sampleRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(okCSV.Bytes())
	f.Add([]byte{})
	f.Add([]byte(traceMagic))
	f.Add(binTrace(traceVersion, 2, binRec(1, 64, 0)))               // truncated body
	f.Add(binTrace(traceVersion, 1<<40, nil))                        // absurd count
	f.Add(binTrace(0, 1, binRec(1, 64, 0)))                          // bad version
	f.Add(append(binTrace(traceVersion, 1, binRec(1, 64, 0)), 0x00)) // trailing byte
	f.Add([]byte("cycles,bytes,flow\n50,64,0\n40,64,1\n"))           // time reversal
	f.Add([]byte("cycles,bytes,flow\n18446744073709551615,4294967295,4294967295\n"))
	f.Add([]byte("cycles,bytes,flow\n1,0,0\n")) // zero size
	f.Add([]byte("SWP"))                        // near-magic prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatal("non-nil trace alongside an error")
			}
			return
		}
		// A successfully parsed trace must uphold the replay invariants.
		if tr.Len() == 0 {
			t.Fatal("parsed trace has no records")
		}
		if tr.Len() > maxTraceRecords {
			t.Fatalf("parsed trace has %d records, over the cap", tr.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if tr.sizes[i] == 0 {
				t.Fatalf("record %d has zero size", i)
			}
			if i > 0 && tr.times[i] < tr.times[i-1] {
				t.Fatalf("record %d goes back in time", i)
			}
		}
		if tr.duration <= tr.times[tr.Len()-1] {
			t.Fatalf("duration %d within the trace span", tr.duration)
		}
		if tr.meanGap() <= 0 {
			t.Fatalf("mean gap %g", tr.meanGap())
		}
	})
}
