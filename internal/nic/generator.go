package nic

import (
	"math/rand"

	"sweeper/internal/obs"
)

// The open-loop generators (Poisson, MMPP, trace replay, ...) live in
// arrival.go behind the ArrivalGen registry; this file keeps the closed
// loop, whose keep-D-queued contract is driven by the cores rather than by
// an arrival clock.

// ClosedLoopGen emulates the §IV-B batching study: it keeps at least D
// unconsumed packets in every core's RX ring at all times, so the system
// permanently runs with deep packet queues and throughput is purely
// service-rate limited.
type ClosedLoopGen struct {
	nic   *NIC
	rng   *rand.Rand
	depth int
	size  uint64
	sizer func(tag uint64) uint64
	cores int
}

// NewClosedLoopGen creates a keep-D-queued generator of size-byte packets.
func NewClosedLoopGen(n *NIC, size uint64, depth int, seed int64) *ClosedLoopGen {
	if depth <= 0 {
		panic("nic: closed-loop depth must be positive")
	}
	if depth > n.Ring(0).Slots() {
		panic("nic: closed-loop depth exceeds ring size")
	}
	return &ClosedLoopGen{
		nic:   n,
		rng:   rand.New(rand.NewSource(seed)),
		depth: depth,
		size:  size,
		cores: n.NumRings(),
	}
}

// Reset restores the generator with a new depth and seed, reusing its rand
// source. The sizer and target-core restriction are cleared; the owner
// re-installs them as after NewClosedLoopGen.
func (g *ClosedLoopGen) Reset(depth int, seed int64) {
	if depth <= 0 {
		panic("nic: closed-loop depth must be positive")
	}
	if depth > g.nic.Ring(0).Slots() {
		panic("nic: closed-loop depth exceeds ring size")
	}
	g.rng.Seed(seed)
	g.depth = depth
	g.sizer = nil
	g.cores = g.nic.NumRings()
}

// SetSizer installs a per-packet size function of the tag.
func (g *ClosedLoopGen) SetSizer(fn func(tag uint64) uint64) { g.sizer = fn }

// SetTargetCores restricts generation to rings [0, n).
func (g *ClosedLoopGen) SetTargetCores(n int) {
	if n <= 0 || n > g.nic.NumRings() {
		panic("nic: target core count out of range")
	}
	g.cores = n
}

// Start fills every targeted ring to the target depth at cycle now.
func (g *ClosedLoopGen) Start(now uint64) {
	for c := 0; c < g.cores; c++ {
		g.Refill(now, c)
	}
}

// Refill tops core's ring back up to D unconsumed packets. The machine
// calls it each time the core pops a packet.
func (g *ClosedLoopGen) Refill(now uint64, core int) {
	r := g.nic.Ring(core)
	for r.Queued() < g.depth && !r.Full() {
		tag := g.rng.Uint64()
		size := g.size
		if g.sizer != nil {
			size = g.sizer(tag)
		}
		g.nic.Inject(now, core, size, tag)
	}
}

// Depth returns the maintained per-core queue depth.
func (g *ClosedLoopGen) Depth() int { return g.depth }

// RegisterMetrics exposes the maintained queue depth (constant by
// construction, but recorded so manifests are self-describing).
func (g *ClosedLoopGen) RegisterMetrics(r *obs.Registry) {
	r.Gauge("gen.depth", func(uint64) float64 { return float64(g.depth) })
}
