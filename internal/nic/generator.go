package nic

import (
	"math/rand"

	"sweeper/internal/obs"
	"sweeper/internal/sim"
)

// PoissonGen is the open-loop traffic generator of the paper's Appendix: it
// injects packets at a configurable Poisson arrival rate, spraying arrivals
// uniformly across the per-core rings (receive-side scaling).
type PoissonGen struct {
	eng     *sim.Engine
	nic     *NIC
	rng     *rand.Rand
	meanGap float64 // cycles between arrivals across the whole NIC
	size    uint64
	sizer   func(tag uint64) uint64
	cores   int // arrivals target rings [0, cores)
	stopped bool

	offered uint64
}

// NewPoissonGen creates a generator injecting size-byte packets with the
// given mean inter-arrival gap in cycles (machine-wide). The seed makes runs
// reproducible.
func NewPoissonGen(eng *sim.Engine, n *NIC, size uint64, meanGapCycles float64, seed int64) *PoissonGen {
	if meanGapCycles <= 0 {
		panic("nic: mean inter-arrival gap must be positive")
	}
	return &PoissonGen{
		eng:     eng,
		nic:     n,
		rng:     rand.New(rand.NewSource(seed)),
		meanGap: meanGapCycles,
		size:    size,
		cores:   n.NumRings(),
	}
}

// Reset restores the generator to its just-constructed state with a new rate
// and seed, reusing its rand source. The sizer and target-core restriction
// are cleared; the owner re-installs them as after NewPoissonGen.
func (g *PoissonGen) Reset(meanGapCycles float64, seed int64) {
	if meanGapCycles <= 0 {
		panic("nic: mean inter-arrival gap must be positive")
	}
	g.rng.Seed(seed)
	g.meanGap = meanGapCycles
	g.sizer = nil
	g.cores = g.nic.NumRings()
	g.stopped = false
	g.offered = 0
}

// SetSizer installs a per-packet size function of the tag (e.g. small GET
// requests vs item-sized SETs), overriding the fixed size.
func (g *PoissonGen) SetSizer(fn func(tag uint64) uint64) { g.sizer = fn }

// SetTargetCores restricts arrivals to rings [0, n), for collocation
// scenarios where only some cores run the networked application.
func (g *PoissonGen) SetTargetCores(n int) {
	if n <= 0 || n > g.nic.NumRings() {
		panic("nic: target core count out of range")
	}
	g.cores = n
}

// Start schedules the first arrival.
func (g *PoissonGen) Start() {
	g.scheduleNext()
}

// Stop halts generation after any already-scheduled arrival.
func (g *PoissonGen) Stop() { g.stopped = true }

// Offered returns the number of injection attempts so far (including
// arrivals dropped at full rings).
func (g *PoissonGen) Offered() uint64 { return g.offered }

// ResetCounters zeroes the offered-load counter.
func (g *PoissonGen) ResetCounters() { g.offered = 0 }

// RegisterMetrics exposes the generator's offered-load counter.
func (g *PoissonGen) RegisterMetrics(r *obs.Registry) {
	r.Counter("gen.offered", func() uint64 { return g.offered })
}

// OnEvent implements sim.Sink.
func (g *PoissonGen) OnEvent(now sim.Cycle, _ uint64) { g.arrive(now) }

func (g *PoissonGen) scheduleNext() {
	gap := g.rng.ExpFloat64() * g.meanGap
	g.eng.ScheduleAfter(uint64(gap), g, 0)
}

func (g *PoissonGen) arrive(now uint64) {
	if g.stopped {
		return
	}
	core := g.rng.Intn(g.cores)
	g.offered++
	tag := g.rng.Uint64()
	size := g.size
	if g.sizer != nil {
		size = g.sizer(tag)
	}
	g.nic.Inject(now, core, size, tag)
	g.scheduleNext()
}

// ClosedLoopGen emulates the §IV-B batching study: it keeps at least D
// unconsumed packets in every core's RX ring at all times, so the system
// permanently runs with deep packet queues and throughput is purely
// service-rate limited.
type ClosedLoopGen struct {
	nic   *NIC
	rng   *rand.Rand
	depth int
	size  uint64
	sizer func(tag uint64) uint64
	cores int
}

// NewClosedLoopGen creates a keep-D-queued generator of size-byte packets.
func NewClosedLoopGen(n *NIC, size uint64, depth int, seed int64) *ClosedLoopGen {
	if depth <= 0 {
		panic("nic: closed-loop depth must be positive")
	}
	if depth > n.Ring(0).Slots() {
		panic("nic: closed-loop depth exceeds ring size")
	}
	return &ClosedLoopGen{
		nic:   n,
		rng:   rand.New(rand.NewSource(seed)),
		depth: depth,
		size:  size,
		cores: n.NumRings(),
	}
}

// Reset restores the generator with a new depth and seed, reusing its rand
// source. The sizer and target-core restriction are cleared; the owner
// re-installs them as after NewClosedLoopGen.
func (g *ClosedLoopGen) Reset(depth int, seed int64) {
	if depth <= 0 {
		panic("nic: closed-loop depth must be positive")
	}
	if depth > g.nic.Ring(0).Slots() {
		panic("nic: closed-loop depth exceeds ring size")
	}
	g.rng.Seed(seed)
	g.depth = depth
	g.sizer = nil
	g.cores = g.nic.NumRings()
}

// SetSizer installs a per-packet size function of the tag.
func (g *ClosedLoopGen) SetSizer(fn func(tag uint64) uint64) { g.sizer = fn }

// SetTargetCores restricts generation to rings [0, n).
func (g *ClosedLoopGen) SetTargetCores(n int) {
	if n <= 0 || n > g.nic.NumRings() {
		panic("nic: target core count out of range")
	}
	g.cores = n
}

// Start fills every targeted ring to the target depth at cycle now.
func (g *ClosedLoopGen) Start(now uint64) {
	for c := 0; c < g.cores; c++ {
		g.Refill(now, c)
	}
}

// Refill tops core's ring back up to D unconsumed packets. The machine
// calls it each time the core pops a packet.
func (g *ClosedLoopGen) Refill(now uint64, core int) {
	r := g.nic.Ring(core)
	for r.Queued() < g.depth && !r.Full() {
		tag := g.rng.Uint64()
		size := g.size
		if g.sizer != nil {
			size = g.sizer(tag)
		}
		g.nic.Inject(now, core, size, tag)
	}
}

// Depth returns the maintained per-core queue depth.
func (g *ClosedLoopGen) Depth() int { return g.depth }

// RegisterMetrics exposes the maintained queue depth (constant by
// construction, but recorded so manifests are self-describing).
func (g *ClosedLoopGen) RegisterMetrics(r *obs.Registry) {
	r.Gauge("gen.depth", func(uint64) float64 { return float64(g.depth) })
}
