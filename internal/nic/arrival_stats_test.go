package nic

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"sweeper/internal/sim"
)

// This file locks the statistical properties of every registered arrival
// process: mean rates within confidence bounds, per-state MMPP behaviour,
// burstiness, the diurnal envelope's shape, and flow spreading. The
// umbrella test walks the registry, so a newly registered process fails
// until a property test is added for it.

type arrivalRec struct {
	now  uint64
	core int
	size uint64
	tag  uint64
}

// collectArrivals runs spec's generator standalone until horizon and
// returns every injected arrival.
func collectArrivals(t *testing.T, spec ArrivalSpec, horizon uint64) []arrivalRec {
	t.Helper()
	eng := sim.NewEngine()
	var recs []arrivalRec
	gen, err := NewArrival(eng, spec, func(now uint64, core int, size uint64, tag uint64) {
		recs = append(recs, arrivalRec{now, core, size, tag})
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	eng.RunUntil(horizon)
	if got := gen.Offered(); got != uint64(len(recs)) {
		t.Fatalf("Offered() = %d, injected %d", got, len(recs))
	}
	return recs
}

// checkMeanRate asserts the arrival count over the horizon is within a
// ±4σ Poisson band around horizon/meanGap, widened by slack for
// over-dispersed processes (slack 1 = plain Poisson).
func checkMeanRate(t *testing.T, recs []arrivalRec, horizon uint64, meanGap, slack float64) {
	t.Helper()
	want := float64(horizon) / meanGap
	band := 4 * slack * math.Sqrt(want)
	if got := float64(len(recs)); math.Abs(got-want) > band {
		t.Errorf("arrivals = %.0f, want %.0f ± %.0f", got, want, band)
	}
}

// burstIndex is the windowed index of dispersion (variance/mean of
// per-window arrival counts): ~1 for Poisson, > 1 for bursty processes.
func burstIndex(recs []arrivalRec, horizon, window uint64) float64 {
	n := int(horizon / window)
	counts := make([]float64, n)
	for _, r := range recs {
		if w := int(r.now / window); w < n {
			counts[w]++
		}
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(n)
	var varc float64
	for _, c := range counts {
		varc += (c - mean) * (c - mean)
	}
	varc /= float64(n)
	if mean == 0 {
		return 0
	}
	return varc / mean
}

// TestArrivalRegistryStatistics walks the registry: every registered
// process must have a property test here, so a new generator cannot ship
// without one.
func TestArrivalRegistryStatistics(t *testing.T) {
	cases := map[string]func(t *testing.T){
		ArrivalPoisson: testPoissonStats,
		ArrivalMMPP:    testMMPPStats,
		ArrivalTrace:   testTraceStats,
	}
	for _, name := range ArrivalNames() {
		fn, ok := cases[name]
		if !ok {
			t.Errorf("registered arrival process %q has no statistical property test; add one to the cases map", name)
			continue
		}
		t.Run(name, fn)
	}
}

func testPoissonStats(t *testing.T) {
	const (
		meanGap = 100.0
		horizon = 2_000_000
	)
	recs := collectArrivals(t, ArrivalSpec{Cores: 4, Size: 64, MeanGap: meanGap, Seed: 11}, horizon)
	checkMeanRate(t, recs, horizon, meanGap, 1)
	// A Poisson stream is not bursty at any window scale.
	if bi := burstIndex(recs, horizon, 10_000); bi > 1.5 {
		t.Errorf("poisson burst index = %.2f, want ~1", bi)
	}
}

func testMMPPStats(t *testing.T) {
	const (
		meanGap = 100.0
		ratio   = 8.0
		dwell   = 50_000
		horizon = 5_000_000
	)
	spec := ArrivalSpec{
		Cores: 4, Size: 64, MeanGap: meanGap, Seed: 12,
		Config: ArrivalConfig{Process: ArrivalMMPP, BurstRatio: ratio, BurstDwellCycles: dwell},
	}
	eng := sim.NewEngine()
	var recs []arrivalRec
	gaps := &mmppGaps{}
	g, err := newOpenLoop(eng, spec, func(now uint64, core int, size uint64, tag uint64) {
		recs = append(recs, arrivalRec{now, core, size, tag})
	}, gaps)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.RunUntil(horizon)

	// Blended mean rate: over-dispersed, so widen the Poisson band. The
	// asymptotic inflation of the count variance for a balanced 2-state
	// MMPP is 1 + 2λ̄d(R-1)²/(R+1)² ≈ 31 here; 4σ·√31 ≈ 22σ.
	slack := math.Sqrt(1 + 2*(float64(dwell)/meanGap)*(ratio-1)*(ratio-1)/((ratio+1)*(ratio+1)))
	checkMeanRate(t, recs, horizon, meanGap, slack)

	// Per-state rates: arrivals[s]/cycles[s] must match each state's
	// configured rate. With tens of thousands of arrivals per state a 10%
	// band is ~10σ wide.
	for s := 0; s < 2; s++ {
		if gaps.arrivals[s] < 100 {
			t.Fatalf("state %d saw only %d arrivals; horizon too short", s, gaps.arrivals[s])
		}
		got := gaps.cycles[s] / float64(gaps.arrivals[s])
		if want := gaps.gap[s]; math.Abs(got-want) > 0.1*want {
			t.Errorf("state %d mean gap = %.1f, want %.1f ± 10%%", s, got, want)
		}
	}
	wantOff := meanGap * (1 + ratio) / 2
	if gaps.gap[0] != wantOff || gaps.gap[1] != wantOff/ratio {
		t.Errorf("state gaps = %v, want [%g %g]", gaps.gap, wantOff, wantOff/ratio)
	}

	// Burstiness: windows shorter than a dwell must see clear
	// over-dispersion relative to Poisson's index of 1.
	if bi := burstIndex(recs, horizon, 10_000); bi < 2 {
		t.Errorf("mmpp burst index = %.2f, want > 2", bi)
	}
}

func testTraceStats(t *testing.T) {
	const (
		nativeGap = 100
		n         = 10_000
		meanGap   = 50.0 // replay at 2x the trace's native rate
		horizon   = 1_000_000
	)
	recs := make([]TraceRecord, n)
	for i := range recs {
		recs[i] = TraceRecord{Cycles: uint64((i + 1) * nativeGap), Bytes: 64, Flow: uint32(i % 16)}
	}
	path := filepath.Join(t.TempDir(), "stats.bin")
	writeTraceFile(t, path, recs)

	spec := ArrivalSpec{
		Cores: 8, Size: 1024, MeanGap: meanGap, Seed: 13,
		Config: ArrivalConfig{Process: ArrivalTrace, TracePath: path},
	}
	got := collectArrivals(t, spec, horizon)
	// Replay timing is deterministic: the rescaled trace must hit the
	// configured rate up to loop-boundary rounding, far inside the band.
	checkMeanRate(t, got, horizon, meanGap, 1)

	// Flow-stable core mapping: every replayed arrival of one flow lands
	// on one core, and the 16 flows spread beyond a single core.
	flowCore := map[uint64]int{}
	cores := map[int]bool{}
	for _, r := range got {
		flow := r.tag >> 32
		if c, ok := flowCore[flow]; ok && c != r.core {
			t.Fatalf("flow %#x seen on cores %d and %d", flow, c, r.core)
		}
		flowCore[flow] = r.core
		cores[r.core] = true
	}
	if len(flowCore) != 16 {
		t.Errorf("saw %d distinct flows, want 16", len(flowCore))
	}
	if len(cores) < 2 {
		t.Errorf("16 flows all mapped to one core")
	}
}

// TestDiurnalEnvelopeTracksCurve phase-bins a diurnally modulated Poisson
// stream and checks the per-bin rates follow 1 + A·sin(2πt/P).
func TestDiurnalEnvelopeTracksCurve(t *testing.T) {
	const (
		meanGap = 100.0
		period  = 1_000_000
		amp     = 0.5
		periods = 8
		bins    = 8
		horizon = periods * period
	)
	spec := ArrivalSpec{
		Cores: 4, Size: 64, MeanGap: meanGap, Seed: 14,
		Config: ArrivalConfig{DiurnalPeriodCycles: period, DiurnalAmplitude: amp},
	}
	recs := collectArrivals(t, spec, horizon)
	// Thinning preserves the overall mean rate.
	checkMeanRate(t, recs, horizon, meanGap, 1.5)

	var counts [bins]float64
	for _, r := range recs {
		counts[(r.now%period)*bins/period]++
	}
	// Each bin's expected count integrates the envelope across the bin;
	// for bin b spanning phase [b, b+1)/bins the sine integrates in
	// closed form. 5% of the whole-trace mean per bin is a ≥4σ band.
	perBin := float64(len(recs)) / bins
	for b := 0; b < bins; b++ {
		lo := 2 * math.Pi * float64(b) / bins
		hi := 2 * math.Pi * float64(b+1) / bins
		want := perBin * (1 + amp*(math.Cos(lo)-math.Cos(hi))*bins/(2*math.Pi))
		if math.Abs(counts[b]-want) > 0.05*float64(len(recs))/bins*4 {
			t.Errorf("phase bin %d: %.0f arrivals, want %.0f", b, counts[b], want)
		}
	}
	// And the peak-to-trough contrast must be visible: bin 1 (quarter
	// period, envelope ≈ 1.45) against bin 5 (≈ 0.55).
	if counts[1] < 2*counts[5] {
		t.Errorf("peak bin %.0f vs trough bin %.0f: envelope contrast missing", counts[1], counts[5])
	}
}

// TestFlowPopulationSpreading checks the flow knob: a small population
// pins arrivals to few cores and few stable tag prefixes; zero flows keep
// the legacy uniform spray.
func TestFlowPopulationSpreading(t *testing.T) {
	spec := ArrivalSpec{
		Cores: 8, Size: 64, MeanGap: 100, Seed: 15,
		Config: ArrivalConfig{Flows: 4},
	}
	recs := collectArrivals(t, spec, 500_000)
	flows := map[uint64]int{}
	cores := map[int]bool{}
	for _, r := range recs {
		flows[r.tag>>32]++
		cores[r.core] = true
	}
	if len(flows) != 4 {
		t.Errorf("flow population 4 produced %d distinct tag prefixes", len(flows))
	}
	if len(cores) > 4 {
		t.Errorf("4 flows landed on %d cores, want ≤ 4", len(cores))
	}

	spec.Config.Flows = 0
	recs = collectArrivals(t, spec, 500_000)
	cores = map[int]bool{}
	for _, r := range recs {
		cores[r.core] = true
	}
	if len(cores) != 8 {
		t.Errorf("flowless spray hit %d cores, want all 8", len(cores))
	}
}

// TestArrivalReplayDeterminism locks each registered process's exact
// arrival sequence across a rebuild and across Reset with the same spec.
func TestArrivalReplayDeterminism(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "det.bin")
	trecs := make([]TraceRecord, 1000)
	for i := range trecs {
		trecs[i] = TraceRecord{Cycles: uint64((i + 1) * 97), Bytes: 200, Flow: uint32(i % 7)}
	}
	writeTraceFile(t, tracePath, trecs)

	specs := map[string]ArrivalSpec{
		ArrivalPoisson: {Cores: 4, Size: 64, MeanGap: 120, Seed: 21,
			Config: ArrivalConfig{DiurnalPeriodCycles: 100_000, DiurnalAmplitude: 0.3, Flows: 32}},
		ArrivalMMPP: {Cores: 4, Size: 64, MeanGap: 120, Seed: 22,
			Config: ArrivalConfig{Process: ArrivalMMPP, BurstRatio: 4}},
		ArrivalTrace: {Cores: 4, Size: 1024, MeanGap: 60, Seed: 23,
			Config: ArrivalConfig{Process: ArrivalTrace, TracePath: tracePath}},
	}
	for _, name := range ArrivalNames() {
		spec, ok := specs[name]
		if !ok {
			t.Errorf("registered arrival process %q has no determinism spec; add one here", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			const horizon = 300_000
			a := collectArrivals(t, spec, horizon)
			b := collectArrivals(t, spec, horizon)
			if len(a) == 0 {
				t.Fatal("no arrivals")
			}
			if len(a) != len(b) {
				t.Fatalf("rebuild: %d vs %d arrivals", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("rebuild diverges at arrival %d: %+v vs %+v", i, a[i], b[i])
				}
			}

			// Reset must restore the just-constructed sequence: run a
			// partial window, then reset engine and generator (the pooled
			// machine.Reset sequence) and replay in full.
			eng := sim.NewEngine()
			var c []arrivalRec
			gen, err := NewArrival(eng, spec, func(now uint64, core int, size uint64, tag uint64) {
				c = append(c, arrivalRec{now, core, size, tag})
			})
			if err != nil {
				t.Fatal(err)
			}
			gen.Start()
			eng.RunUntil(horizon / 2)
			gen.Stop()
			eng.Reset()
			if err := gen.Reset(spec); err != nil {
				t.Fatal(err)
			}
			c = nil
			gen.Start()
			eng.RunUntil(horizon)
			if len(a) != len(c) {
				t.Fatalf("reset: %d vs %d arrivals", len(a), len(c))
			}
			for i := range a {
				if a[i] != c[i] {
					t.Fatalf("reset diverges at arrival %d: %+v vs %+v", i, a[i], c[i])
				}
			}
		})
	}
}

func writeTraceFile(t *testing.T, path string, recs []TraceRecord) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceBinary(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
