package nic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"sweeper/internal/obs"
	"sweeper/internal/sim"
)

// This file is the arrival-process layer: a registry of named open-loop
// packet-arrival generators (mirroring the workload registry), the shared
// open-loop skeleton they build on, and the stationary processes — Poisson
// and a 2-state MMPP — plus the diurnal envelope and per-flow tagging that
// modulate any of them. The trace-replay process lives in trace.go.

// Registered arrival-process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalMMPP    = "mmpp"
	ArrivalTrace   = "trace"
)

// ArrivalConfig selects and tunes an arrival process. All fields are plain
// scalars so machine.Config stays comparable. The zero value is the
// stationary Poisson process every figure used before this layer existed.
type ArrivalConfig struct {
	// Process names the generator in the arrival registry ("poisson",
	// "mmpp", "trace", or any registered name); empty selects Poisson.
	Process string
	// TracePath is the trace file replayed by the "trace" process
	// (binary SWPT or CSV; see ParseTrace). Replay loops the trace and
	// rescales its timestamps so the mean rate matches the configured
	// offered load.
	TracePath string
	// BurstRatio is the MMPP on/off rate ratio λ_on/λ_off (≥ 1; 0
	// selects the default 8). 1 degenerates to Poisson.
	BurstRatio float64
	// BurstDwellCycles is the MMPP mean dwell time per state in cycles
	// (0 selects the default 131072).
	BurstDwellCycles uint64
	// DiurnalPeriodCycles and DiurnalAmplitude superimpose a sinusoidal
	// envelope on the process rate: rate(t) = mean · (1 + A·sin(2πt/P)).
	// Amplitude 0 disables the envelope; the trace process rejects it
	// (traces carry their own time structure).
	DiurnalPeriodCycles uint64
	DiurnalAmplitude    float64
	// Flows spreads arrivals over a fixed population of connections:
	// each packet draws a flow id in [0, Flows), its ring follows an
	// RSS-style hash of the flow (so few flows skew core load, many
	// approach uniform), and the tag's high 32 bits are flow-stable
	// while the low 32 stay per-packet. 0 keeps the legacy behaviour of
	// a fresh uniformly-random ring and tag per packet.
	Flows int
}

const (
	defaultBurstRatio = 8
	defaultBurstDwell = 131_072
)

// processName resolves the registry name, defaulting to Poisson.
func (c ArrivalConfig) processName() string {
	if c.Process == "" {
		return ArrivalPoisson
	}
	return c.Process
}

// Validate reports configuration errors without building a generator (the
// machine validates configs long before assembly; file I/O errors of the
// trace process surface at construction instead).
func (c ArrivalConfig) Validate() error {
	reg, ok := LookupArrival(c.processName())
	if !ok {
		return fmt.Errorf("nic: unknown arrival process %q (registered: %v)",
			c.processName(), ArrivalNames())
	}
	switch {
	case c.BurstRatio != 0 && c.BurstRatio < 1:
		return fmt.Errorf("nic: arrival BurstRatio %g must be ≥ 1", c.BurstRatio)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("nic: arrival DiurnalAmplitude %g outside [0,1)", c.DiurnalAmplitude)
	case c.DiurnalAmplitude > 0 && c.DiurnalPeriodCycles == 0:
		return fmt.Errorf("nic: arrival DiurnalAmplitude needs DiurnalPeriodCycles > 0")
	case c.Flows < 0:
		return fmt.Errorf("nic: arrival Flows %d must be non-negative", c.Flows)
	}
	if reg.Validate != nil {
		return reg.Validate(c)
	}
	return nil
}

// InjectFunc delivers one generated arrival. Standalone machines inject
// into their own NIC; the cluster front end picks a destination node first.
// Implementations must be rng-free so generator draw order is identical in
// both placements.
type InjectFunc func(now uint64, core int, size uint64, tag uint64)

// ArrivalSpec is the machine-derived parameterization every arrival process
// is built from: ring fan-out, default packet size, the mean inter-arrival
// gap realizing the configured offered load, the run's seed, and the
// process selection itself.
type ArrivalSpec struct {
	// Cores restricts arrivals to rings [0, Cores).
	Cores int
	// Size is the default packet size in bytes (also the ring slot
	// size, so trace record sizes clamp to it).
	Size uint64
	// MeanGap is the target mean inter-arrival gap in cycles across the
	// whole NIC (cluster front ends pass the rack-wide gap).
	MeanGap float64
	// Seed makes the process reproducible.
	Seed int64
	// Config carries the process selection and its knobs.
	Config ArrivalConfig
}

func (s ArrivalSpec) validate() error {
	if s.Cores <= 0 {
		return fmt.Errorf("nic: arrival spec needs positive core count, got %d", s.Cores)
	}
	if s.MeanGap <= 0 {
		return fmt.Errorf("nic: mean inter-arrival gap must be positive, got %g", s.MeanGap)
	}
	return s.Config.Validate()
}

// ArrivalGen is one open-loop arrival process, scheduled on the event
// engine's shared-domain shard. Generators are single-run like machines;
// Reset restores the just-constructed state for pooled reuse.
type ArrivalGen interface {
	// Start schedules the first arrival.
	Start()
	// Stop halts generation after any already-scheduled arrival.
	Stop()
	// Reset restores the generator to its just-constructed state under a
	// new spec with the same process name.
	Reset(spec ArrivalSpec) error
	// SetSizer installs a per-packet size function of the tag; processes
	// whose arrivals carry intrinsic sizes (trace replay) ignore it.
	SetSizer(fn func(tag uint64) uint64)
	// Offered returns injection attempts so far (including arrivals
	// dropped at full rings).
	Offered() uint64
	// ResetCounters zeroes the offered-load counter.
	ResetCounters()
	// RegisterMetrics exposes the generator's counters.
	RegisterMetrics(r *obs.Registry)
}

// ArrivalRegistration describes one arrival process in the registry.
type ArrivalRegistration struct {
	// Name keys the process ("poisson", "mmpp", ...).
	Name string
	// New builds a generator delivering arrivals through inject.
	New func(eng *sim.Engine, spec ArrivalSpec, inject InjectFunc) (ArrivalGen, error)
	// Validate, when non-nil, statically checks the process's knobs.
	Validate func(cfg ArrivalConfig) error
}

var (
	arrivalMu  sync.RWMutex
	arrivalReg = map[string]ArrivalRegistration{}
)

// RegisterArrival adds an arrival process to the registry, panicking on
// duplicate or empty names (registration is an init-time programming act,
// like workload.Register).
func RegisterArrival(r ArrivalRegistration) {
	if r.Name == "" || r.New == nil {
		panic("nic: arrival registration needs a name and a constructor")
	}
	arrivalMu.Lock()
	defer arrivalMu.Unlock()
	if _, dup := arrivalReg[r.Name]; dup {
		panic(fmt.Sprintf("nic: arrival process %q registered twice", r.Name))
	}
	arrivalReg[r.Name] = r
}

// LookupArrival finds a registered arrival process by name.
func LookupArrival(name string) (ArrivalRegistration, bool) {
	arrivalMu.RLock()
	defer arrivalMu.RUnlock()
	r, ok := arrivalReg[name]
	return r, ok
}

// ArrivalNames lists the registered arrival processes in sorted order.
func ArrivalNames() []string {
	arrivalMu.RLock()
	defer arrivalMu.RUnlock()
	names := make([]string, 0, len(arrivalReg))
	for n := range arrivalReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewArrival builds the spec's configured arrival process through the
// registry.
func NewArrival(eng *sim.Engine, spec ArrivalSpec, inject InjectFunc) (ArrivalGen, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	reg, _ := LookupArrival(spec.Config.processName())
	return reg.New(eng, spec, inject)
}

func init() {
	RegisterArrival(ArrivalRegistration{
		Name: ArrivalPoisson,
		New: func(eng *sim.Engine, spec ArrivalSpec, inject InjectFunc) (ArrivalGen, error) {
			return newOpenLoop(eng, spec, inject, &poissonGaps{})
		},
	})
	RegisterArrival(ArrivalRegistration{
		Name: ArrivalMMPP,
		New: func(eng *sim.Engine, spec ArrivalSpec, inject InjectFunc) (ArrivalGen, error) {
			return newOpenLoop(eng, spec, inject, &mmppGaps{})
		},
	})
}

// gapProcess produces successive inter-arrival gaps in cycles. reseed
// re-derives the process state from a spec whose diurnal boost has already
// been folded into MeanGap.
type gapProcess interface {
	next(rng *rand.Rand) float64
	reseed(spec ArrivalSpec, rng *rand.Rand)
}

// openLoop is the shared skeleton of rate-driven arrival processes: a
// self-rescheduling event whose gaps come from a pluggable gapProcess,
// optionally thinned against a diurnal envelope and spread over a fixed
// flow population. With the zero-valued ArrivalConfig it reproduces the
// original PoissonGen draw for draw: one ExpFloat64 at Start, then
// Intn/Uint64/ExpFloat64 per arrival — the order the cluster front end and
// the committed goldens depend on.
type openLoop struct {
	eng    *sim.Engine
	rng    *rand.Rand
	inject InjectFunc
	gaps   gapProcess

	size  uint64
	sizer func(tag uint64) uint64
	cores int

	// Flow population (Flows > 0): flowSeed salts the per-flow hash.
	flows    int
	flowSeed uint64

	// Diurnal envelope (amp > 0): candidates are generated at the
	// boosted rate mean·(1+amp) and accepted with probability
	// envelope(t)/(1+amp) — exact thinning of the sinusoidal rate.
	amp    float64
	period float64

	stopped bool
	offered uint64
}

func newOpenLoop(eng *sim.Engine, spec ArrivalSpec, inject InjectFunc, gaps gapProcess) (*openLoop, error) {
	g := &openLoop{
		eng:    eng,
		rng:    rand.New(rand.NewSource(spec.Seed)),
		inject: inject,
		gaps:   gaps,
	}
	g.apply(spec)
	return g, nil
}

// apply derives the generator state from a validated spec.
func (g *openLoop) apply(spec ArrivalSpec) {
	cfg := spec.Config
	g.size = spec.Size
	g.sizer = nil
	g.cores = spec.Cores
	g.flows = cfg.Flows
	g.flowSeed = splitmix64(uint64(spec.Seed) ^ 0x9e3779b97f4a7c15)
	g.amp = cfg.DiurnalAmplitude
	g.period = float64(cfg.DiurnalPeriodCycles)
	g.stopped = false
	g.offered = 0
	if g.amp > 0 {
		spec.MeanGap /= 1 + g.amp
	}
	g.gaps.reseed(spec, g.rng)
}

// Reset restores the generator under a new spec, reusing its rand source.
func (g *openLoop) Reset(spec ArrivalSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	g.rng.Seed(spec.Seed)
	g.apply(spec)
	return nil
}

// SetSizer installs a per-packet size function of the tag (e.g. small GET
// requests vs item-sized SETs), overriding the fixed size.
func (g *openLoop) SetSizer(fn func(tag uint64) uint64) { g.sizer = fn }

// Start schedules the first arrival.
func (g *openLoop) Start() { g.scheduleNext() }

// Stop halts generation after any already-scheduled arrival.
func (g *openLoop) Stop() { g.stopped = true }

// Offered returns the number of injection attempts so far (including
// arrivals dropped at full rings).
func (g *openLoop) Offered() uint64 { return g.offered }

// ResetCounters zeroes the offered-load counter.
func (g *openLoop) ResetCounters() { g.offered = 0 }

// RegisterMetrics exposes the generator's offered-load counter, plus the
// MMPP burst-state gauge when the gap process is modulated.
func (g *openLoop) RegisterMetrics(r *obs.Registry) {
	r.Counter("gen.offered", func() uint64 { return g.offered })
	if m, ok := g.gaps.(*mmppGaps); ok {
		r.Gauge("gen.mmpp_state", func(uint64) float64 { return float64(m.state) })
		r.Counter("gen.mmpp_on_arrivals", func() uint64 { return m.arrivals[1] })
	}
}

// OnEvent implements sim.Sink.
func (g *openLoop) OnEvent(now sim.Cycle, _ uint64) { g.arrive(now) }

func (g *openLoop) scheduleNext() {
	g.eng.ScheduleAfter(uint64(g.gaps.next(g.rng)), g, 0)
}

// envelope is the normalized diurnal acceptance probability at cycle t.
func (g *openLoop) envelope(t uint64) float64 {
	return (1 + g.amp*math.Sin(2*math.Pi*float64(t)/g.period)) / (1 + g.amp)
}

func (g *openLoop) arrive(now uint64) {
	if g.stopped {
		return
	}
	if g.amp > 0 && g.rng.Float64() >= g.envelope(now) {
		// Thinned: this candidate falls outside the envelope.
		g.scheduleNext()
		return
	}
	var core int
	var tag uint64
	if g.flows > 0 {
		fh := splitmix64(g.flowSeed ^ uint64(g.rng.Intn(g.flows)))
		core = int(fh % uint64(g.cores))
		tag = fh&^uint64(1<<32-1) | g.rng.Uint64()&(1<<32-1)
	} else {
		core = g.rng.Intn(g.cores)
		tag = g.rng.Uint64()
	}
	g.offered++
	size := g.size
	if g.sizer != nil {
		size = g.sizer(tag)
	}
	g.inject(now, core, size, tag)
	g.scheduleNext()
}

// poissonGaps draws i.i.d. exponential gaps: the stationary Poisson process.
type poissonGaps struct {
	meanGap float64
}

func (p *poissonGaps) reseed(spec ArrivalSpec, _ *rand.Rand) { p.meanGap = spec.MeanGap }

func (p *poissonGaps) next(rng *rand.Rand) float64 { return rng.ExpFloat64() * p.meanGap }

// mmppGaps is a 2-state Markov-modulated Poisson process: exponential dwell
// times alternate a quiet state 0 and a burst state 1 whose arrival rates
// differ by the configured ratio R, with the time-average rate pinned to
// the spec's mean (equal mean dwells ⇒ λ_off = 2λ̄/(1+R), λ_on = R·λ_off).
// State switches mid-gap discard the drawn residual — valid by
// memorylessness of the exponential — so the produced gap is the exact
// first-arrival time of the modulated process.
type mmppGaps struct {
	gap   [2]float64 // mean inter-arrival gap per state
	dwell float64    // mean dwell per state
	state int
	left  float64 // dwell remaining in the current state

	// Per-state accounting for the statistical test harness and metrics.
	arrivals [2]uint64
	cycles   [2]float64
}

func (m *mmppGaps) reseed(spec ArrivalSpec, rng *rand.Rand) {
	ratio := spec.Config.BurstRatio
	if ratio == 0 {
		ratio = defaultBurstRatio
	}
	dwell := spec.Config.BurstDwellCycles
	if dwell == 0 {
		dwell = defaultBurstDwell
	}
	m.gap[0] = spec.MeanGap * (1 + ratio) / 2
	m.gap[1] = m.gap[0] / ratio
	m.dwell = float64(dwell)
	m.state = 0
	m.left = rng.ExpFloat64() * m.dwell
	m.arrivals = [2]uint64{}
	m.cycles = [2]float64{}
}

func (m *mmppGaps) next(rng *rand.Rand) float64 {
	var total float64
	for {
		gap := rng.ExpFloat64() * m.gap[m.state]
		if gap <= m.left {
			m.left -= gap
			m.cycles[m.state] += gap
			m.arrivals[m.state]++
			return total + gap
		}
		total += m.left
		m.cycles[m.state] += m.left
		m.state = 1 - m.state
		m.left = rng.ExpFloat64() * m.dwell
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash
// for flow-stable core and tag derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
