// Package nic models the integrated network interface: per-core RX
// descriptor rings, the three packet injection policies compared in the
// paper (conventional DMA, DDIO into a configurable number of LLC ways, and
// the unrealistic Ideal-DDIO), the memory-mapped Work Queue transmit path
// with the SweepBuffer field of §V-D, and the traffic generators (open-loop
// Poisson arrivals and the keep-D-queued closed loop of §IV-B).
package nic

import (
	"fmt"

	"sweeper/internal/obs"
)

// Packet is one received request occupying a ring slot.
type Packet struct {
	// Seq is a globally unique arrival sequence number.
	Seq uint64
	// Arrival is the injection cycle (end-to-end latency is measured
	// from here).
	Arrival uint64
	// Size is the packet payload size in bytes.
	Size uint64
	// Slot is the ring slot index holding the packet.
	Slot int
	// Addr is the buffer address of the slot.
	Addr uint64
	// Tag seeds the workload's deterministic request derivation
	// (operation type, key, ...).
	Tag uint64
}

// Ring is one core's receive descriptor ring. The NIC fills slots in order;
// the core consumes in FIFO order and frees each slot when done with it, so
// ring occupancy counts packets not yet fully processed. A full ring drops
// arrivals — the packet-loss behaviour §VI-F studies.
type Ring struct {
	core      int
	base      uint64
	slotBytes uint64
	nSlots    int

	pkts   []Packet // FIFO queue of injected, not-yet-popped packets
	headQ  int
	countQ int

	nextSlot int // next slot the NIC will fill
	inUse    int // slots between NIC fill and core free

	enqueued uint64
	dropped  uint64
}

// NewRing creates a ring of nSlots slots of slotBytes each, with slot 0 at
// base.
func NewRing(core int, base uint64, slotBytes uint64, nSlots int) *Ring {
	if nSlots <= 0 {
		panic("nic: ring must have at least one slot")
	}
	if slotBytes == 0 {
		panic("nic: slotBytes must be positive")
	}
	return &Ring{
		core:      core,
		base:      base,
		slotBytes: slotBytes,
		nSlots:    nSlots,
		pkts:      make([]Packet, nSlots),
	}
}

// Core returns the owning core.
func (r *Ring) Core() int { return r.core }

// Slots returns the ring depth.
func (r *Ring) Slots() int { return r.nSlots }

// SlotBytes returns the per-slot buffer size.
func (r *Ring) SlotBytes() uint64 { return r.slotBytes }

// SlotAddr returns the buffer address of a slot.
func (r *Ring) SlotAddr(slot int) uint64 {
	return r.base + uint64(slot)*r.slotBytes
}

// FootprintBytes returns the ring's total buffer footprint.
func (r *Ring) FootprintBytes() uint64 {
	return uint64(r.nSlots) * r.slotBytes
}

// Queued returns the number of injected packets the core has not yet popped
// (the "unconsumed packets" of §IV-B).
func (r *Ring) Queued() int { return r.countQ }

// InUse returns slots held between NIC fill and core free.
func (r *Ring) InUse() int { return r.inUse }

// Full reports whether the NIC has no free slot.
func (r *Ring) Full() bool { return r.inUse == r.nSlots }

// Enqueued and Dropped return cumulative arrival outcomes.
func (r *Ring) Enqueued() uint64 { return r.enqueued }
func (r *Ring) Dropped() uint64  { return r.dropped }

// ResetCounters zeroes the enqueue/drop counters (measurement windows).
func (r *Ring) ResetCounters() { r.enqueued, r.dropped = 0, 0 }

// Reset empties the ring, reusing the packet queue storage. Stale Packet
// values remain in the backing array but are unreachable (countQ == 0) and
// overwritten before any Pop can observe them.
func (r *Ring) Reset() {
	r.headQ, r.countQ = 0, 0
	r.nextSlot, r.inUse = 0, 0
	r.enqueued, r.dropped = 0, 0
}

// checkConservation is the debug slot-conservation probe: slots held by the
// datapath (inUse) never exceed the ring, and queued packets never exceed
// held slots (a packet's slot is reserved before Enqueue and freed only
// after Pop).
func (r *Ring) checkConservation(op string) {
	if r.inUse < 0 || r.inUse > r.nSlots || r.countQ < 0 || r.countQ > r.inUse {
		obs.Failf("nic: ring %d slot conservation violated after %s: inUse=%d queued=%d slots=%d",
			r.core, op, r.inUse, r.countQ, r.nSlots)
	}
}

// Reserve claims the next free slot for an incoming packet, returning the
// slot index, or false if the ring is full (the arrival is dropped by the
// caller).
func (r *Ring) Reserve() (int, bool) {
	if r.Full() {
		r.dropped++
		return 0, false
	}
	s := r.nextSlot
	r.nextSlot = (r.nextSlot + 1) % r.nSlots
	r.inUse++
	if obs.ProbesEnabled {
		r.checkConservation("Reserve")
	}
	return s, true
}

// Enqueue records an injected packet as ready for the core.
func (r *Ring) Enqueue(p Packet) {
	if r.countQ == r.nSlots {
		panic(fmt.Sprintf("nic: ring %d queue overflow", r.core))
	}
	r.pkts[(r.headQ+r.countQ)%r.nSlots] = p
	r.countQ++
	r.enqueued++
	if obs.ProbesEnabled {
		r.checkConservation("Enqueue")
	}
}

// Pop removes the oldest unconsumed packet, or reports false when none is
// queued. The slot remains in use until Free.
func (r *Ring) Pop() (Packet, bool) {
	if r.countQ == 0 {
		return Packet{}, false
	}
	p := r.pkts[r.headQ]
	r.headQ = (r.headQ + 1) % r.nSlots
	r.countQ--
	if obs.ProbesEnabled {
		r.checkConservation("Pop")
	}
	return p, true
}

// Free releases one slot back to the NIC. The core frees in FIFO order
// after finishing (and, under Sweeper, relinquishing) the buffer.
func (r *Ring) Free() {
	if r.inUse == 0 {
		panic(fmt.Sprintf("nic: ring %d free without reserve", r.core))
	}
	r.inUse--
	if obs.ProbesEnabled {
		r.checkConservation("Free")
	}
}

// RegisterMetrics exposes the ring's occupancy to the observability
// registry under the given metric name.
func (r *Ring) RegisterMetrics(reg *obs.Registry, name string) {
	reg.Gauge(name, func(uint64) float64 { return float64(r.inUse) })
}
