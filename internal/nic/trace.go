package nic

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"sweeper/internal/obs"
	"sweeper/internal/sim"
)

// Trace-replay arrival process: packet arrival timestamps, sizes and flow
// ids stream from a compact trace file (pcap-derived or synthesized by
// cmd/tracegen). Replay loops the trace and rescales its timestamps so the
// mean rate matches the configured offered load — the same trace serves
// every point of a rate sweep or peak search.
//
// Two on-disk formats share one parser:
//
//   - binary: magic "SWPT", uint32 version (1), uint64 record count, then
//     per record uint32 delta-cycles / uint32 bytes / uint32 flow, all
//     little-endian. Deltas are gaps to the previous arrival, so binary
//     traces are monotone by construction.
//   - CSV: a "cycles,bytes,flow" header then one record per line with
//     absolute, non-decreasing timestamps.
//
// ParseTrace is fuzzed: malformed headers, truncated records and
// non-monotone timestamps must error, never panic or hang.

// traceMagic brands binary trace files.
const traceMagic = "SWPT"

// traceVersion is the current binary format version.
const traceVersion = 1

// traceRecBytes is the size of one binary record.
const traceRecBytes = 12

// maxTraceRecords bounds parsed traces (a 128M-record trace is 1.5GB on
// disk; anything claiming more is corrupt).
const maxTraceRecords = 128 << 20

// TraceRecord is one packet arrival of a trace, in native trace time.
type TraceRecord struct {
	// Cycles is the absolute arrival timestamp (non-decreasing).
	Cycles uint64
	// Bytes is the wire size (clamped to the ring slot size at replay).
	Bytes uint32
	// Flow identifies the connection, for RSS core selection and
	// flow-stable tagging.
	Flow uint32
}

// Trace is a parsed arrival trace.
type Trace struct {
	times []uint64
	sizes []uint32
	flows []uint32
	// duration is the native length of one replay epoch: the last
	// timestamp plus one mean gap, so looping does not fuse the tail
	// and head arrivals.
	duration uint64
}

// Len returns the record count.
func (t *Trace) Len() int { return len(t.times) }

// meanGap returns the native mean inter-arrival gap.
func (t *Trace) meanGap() float64 { return float64(t.duration) / float64(len(t.times)) }

// ParseTrace reads a trace in either format, sniffing the binary magic.
// All malformed inputs return errors; the parser never panics and reads
// each byte once.
func ParseTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(traceMagic))
	if err == nil && bytes.Equal(head, []byte(traceMagic)) {
		return parseBinaryTrace(br)
	}
	return parseCSVTrace(br)
}

func parseBinaryTrace(r *bufio.Reader) (*Trace, error) {
	var hdr [16]byte // magic + version + count
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nic: trace header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != traceVersion {
		return nil, fmt.Errorf("nic: trace version %d (want %d)", v, traceVersion)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count == 0 {
		return nil, fmt.Errorf("nic: empty trace")
	}
	if count > maxTraceRecords {
		return nil, fmt.Errorf("nic: trace claims %d records (max %d)", count, maxTraceRecords)
	}
	tr := &Trace{}
	var rec [traceRecBytes]byte
	var now uint64
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("nic: trace truncated at record %d of %d: %w", i, count, err)
		}
		now += uint64(binary.LittleEndian.Uint32(rec[0:4]))
		size := binary.LittleEndian.Uint32(rec[4:8])
		if size == 0 {
			return nil, fmt.Errorf("nic: trace record %d has zero size", i)
		}
		tr.times = append(tr.times, now)
		tr.sizes = append(tr.sizes, size)
		tr.flows = append(tr.flows, binary.LittleEndian.Uint32(rec[8:12]))
	}
	if _, err := r.ReadByte(); err == nil {
		return nil, fmt.Errorf("nic: trailing data after %d trace records", count)
	}
	return tr.seal()
}

func parseCSVTrace(r *bufio.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("nic: trace: %w", err)
		}
		return nil, fmt.Errorf("nic: empty trace")
	}
	if got := strings.TrimSpace(sc.Text()); got != "cycles,bytes,flow" {
		return nil, fmt.Errorf("nic: trace CSV header %q (want \"cycles,bytes,flow\")", got)
	}
	tr := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("nic: trace line %d: %d fields (want 3)", line, len(fields))
		}
		cycles, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("nic: trace line %d: cycles: %v", line, err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(fields[1]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("nic: trace line %d: bytes: %v", line, err)
		}
		flow, err := strconv.ParseUint(strings.TrimSpace(fields[2]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("nic: trace line %d: flow: %v", line, err)
		}
		if size == 0 {
			return nil, fmt.Errorf("nic: trace line %d: zero size", line)
		}
		if n := len(tr.times); n > 0 && cycles < tr.times[n-1] {
			return nil, fmt.Errorf("nic: trace line %d: timestamp %d before %d (must be non-decreasing)",
				line, cycles, tr.times[n-1])
		}
		if len(tr.times) >= maxTraceRecords {
			return nil, fmt.Errorf("nic: trace exceeds %d records", maxTraceRecords)
		}
		tr.times = append(tr.times, cycles)
		tr.sizes = append(tr.sizes, uint32(size))
		tr.flows = append(tr.flows, uint32(flow))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nic: trace: %w", err)
	}
	if len(tr.times) == 0 {
		return nil, fmt.Errorf("nic: trace has a header but no records")
	}
	return tr.seal()
}

// seal derives the epoch duration and validates the whole-trace shape.
func (t *Trace) seal() (*Trace, error) {
	n := uint64(len(t.times))
	last := t.times[n-1]
	// Tail gap: the mean gap of the body, floored at 1 so duration
	// strictly exceeds the last timestamp even for single-arrival and
	// zero-span traces.
	tail := (last-t.times[0])/n + 1
	if last > math.MaxUint64-tail {
		return nil, fmt.Errorf("nic: trace timestamp %d too large to loop", last)
	}
	t.duration = last + tail
	return t, nil
}

// WriteTraceBinary emits records in the binary SWPT format. Records must be
// time-ordered with gaps representable in uint32.
func WriteTraceBinary(w io.Writer, recs []TraceRecord) error {
	if len(recs) == 0 {
		return fmt.Errorf("nic: refusing to write an empty trace")
	}
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], traceVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var prev uint64
	var rec [traceRecBytes]byte
	for i, r := range recs {
		if r.Cycles < prev {
			return fmt.Errorf("nic: record %d: timestamp %d before %d", i, r.Cycles, prev)
		}
		delta := r.Cycles - prev
		if delta > 1<<32-1 {
			return fmt.Errorf("nic: record %d: gap %d exceeds uint32", i, delta)
		}
		if r.Bytes == 0 {
			return fmt.Errorf("nic: record %d: zero size", i)
		}
		binary.LittleEndian.PutUint32(rec[0:4], uint32(delta))
		binary.LittleEndian.PutUint32(rec[4:8], r.Bytes)
		binary.LittleEndian.PutUint32(rec[8:12], r.Flow)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		prev = r.Cycles
	}
	return bw.Flush()
}

// WriteTraceCSV emits records in the CSV format.
func WriteTraceCSV(w io.Writer, recs []TraceRecord) error {
	if len(recs) == 0 {
		return fmt.Errorf("nic: refusing to write an empty trace")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "cycles,bytes,flow"); err != nil {
		return err
	}
	var prev uint64
	for i, r := range recs {
		if r.Cycles < prev {
			return fmt.Errorf("nic: record %d: timestamp %d before %d", i, r.Cycles, prev)
		}
		if r.Bytes == 0 {
			return fmt.Errorf("nic: record %d: zero size", i)
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", r.Cycles, r.Bytes, r.Flow); err != nil {
			return err
		}
		prev = r.Cycles
	}
	return bw.Flush()
}

// traceCache shares parsed traces across generator builds: a peak search
// builds ~20 machines per configuration and pooled resets re-apply the
// spec, so re-reading the file per probe would dominate. Trace files are
// treated as immutable for the process lifetime.
var traceCache sync.Map // path -> *Trace

// LoadTrace parses the trace at path, memoizing per path.
func LoadTrace(path string) (*Trace, error) {
	if t, ok := traceCache.Load(path); ok {
		return t.(*Trace), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nic: trace: %w", err)
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("nic: trace %s: %w", path, err)
	}
	t, _ := traceCache.LoadOrStore(path, tr)
	return t.(*Trace), nil
}

func init() {
	RegisterArrival(ArrivalRegistration{
		Name: ArrivalTrace,
		New: func(eng *sim.Engine, spec ArrivalSpec, inject InjectFunc) (ArrivalGen, error) {
			g := &traceGen{
				eng:    eng,
				rng:    rand.New(rand.NewSource(spec.Seed)),
				inject: inject,
			}
			if err := g.apply(spec); err != nil {
				return nil, err
			}
			return g, nil
		},
		Validate: func(cfg ArrivalConfig) error {
			if cfg.TracePath == "" {
				return fmt.Errorf("nic: trace arrival process needs a trace path")
			}
			if cfg.DiurnalAmplitude > 0 {
				return fmt.Errorf("nic: trace arrivals carry their own time structure; diurnal envelope not supported")
			}
			return nil
		},
	})
}

// traceGen replays a parsed trace through the NIC: native timestamps are
// scaled so the replay's mean rate equals the spec's offered load, flows
// map to rings through the same RSS hash the flow-population processes use,
// and the trace loops when it runs out (with the epoch's duration keeping
// head and tail gaps sane). Record sizes override the workload sizer —
// the wire says how big the packet was.
type traceGen struct {
	eng    *sim.Engine
	rng    *rand.Rand
	inject InjectFunc
	tr     *Trace

	scale    float64 // native cycles -> simulated cycles
	cores    int
	maxSize  uint64 // ring slot size; record sizes clamp to it
	flowSeed uint64

	idx     int    // next record to replay
	epoch   uint64 // native offset of the current replay epoch
	prev    uint64 // scaled timestamp of the previous arrival
	stopped bool

	offered uint64
	wraps   uint64
}

func (g *traceGen) apply(spec ArrivalSpec) error {
	tr, err := LoadTrace(spec.Config.TracePath)
	if err != nil {
		return err
	}
	g.tr = tr
	g.scale = spec.MeanGap / tr.meanGap()
	g.cores = spec.Cores
	g.maxSize = spec.Size
	g.flowSeed = splitmix64(uint64(spec.Seed) ^ 0x9e3779b97f4a7c15)
	g.idx = 0
	g.epoch = 0
	g.prev = 0
	g.stopped = false
	g.offered = 0
	g.wraps = 0
	return nil
}

// Reset restores the generator under a new spec (new trace, rate or seed).
func (g *traceGen) Reset(spec ArrivalSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	g.rng.Seed(spec.Seed)
	return g.apply(spec)
}

// SetSizer is a no-op: trace records carry their own sizes.
func (g *traceGen) SetSizer(func(tag uint64) uint64) {}

// Start schedules the first arrival at the trace's scaled first timestamp.
func (g *traceGen) Start() { g.scheduleNext() }

// Stop halts replay after any already-scheduled arrival.
func (g *traceGen) Stop() { g.stopped = true }

// Offered returns injection attempts so far.
func (g *traceGen) Offered() uint64 { return g.offered }

// ResetCounters zeroes the offered-load counter.
func (g *traceGen) ResetCounters() { g.offered = 0 }

// RegisterMetrics exposes the offered-load and trace-wrap counters.
func (g *traceGen) RegisterMetrics(r *obs.Registry) {
	r.Counter("gen.offered", func() uint64 { return g.offered })
	r.Counter("gen.trace_wraps", func() uint64 { return g.wraps })
}

// OnEvent implements sim.Sink.
func (g *traceGen) OnEvent(now sim.Cycle, _ uint64) { g.arrive(now) }

// scheduleNext schedules the arrival of record idx. Scaled timestamps are
// computed from the absolute native clock (epoch offset + record time), so
// rounding never accumulates drift across a long replay.
func (g *traceGen) scheduleNext() {
	native := g.epoch + g.tr.times[g.idx]
	scaled := uint64(float64(native) * g.scale)
	g.eng.ScheduleAfter(scaled-g.prev, g, 0)
	g.prev = scaled
}

func (g *traceGen) arrive(now uint64) {
	if g.stopped {
		return
	}
	size := uint64(g.tr.sizes[g.idx])
	if size > g.maxSize {
		size = g.maxSize
	}
	fh := splitmix64(g.flowSeed ^ uint64(g.tr.flows[g.idx]))
	core := int(fh % uint64(g.cores))
	tag := fh&^uint64(1<<32-1) | g.rng.Uint64()&(1<<32-1)
	g.offered++
	g.inject(now, core, size, tag)

	g.idx++
	if g.idx == g.tr.Len() {
		g.idx = 0
		g.epoch += g.tr.duration
		g.wraps++
	}
	g.scheduleNext()
}
