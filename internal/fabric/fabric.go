// Package fabric models the rack interconnect between cluster nodes:
// full-duplex links with finite bandwidth (serialization delay) and
// propagation latency, joined either through a single top-of-rack switch
// ("star") with bounded output-port queues and tail-drop counters, or
// pairwise ("mesh") with a dedicated link per node pair.
//
// Like the DRAM and cache models, the fabric is synchronous busy-until
// state rather than an event source: Send computes a message's delivery
// cycle immediately from per-link free-at cursors and schedules nothing.
// The event engine serializes dispatch in canonical (cycle, seq) order at
// every shard count, so the cursors advance deterministically and cluster
// results are bit-identical between sequential and sharded runs. The model
// follows DRackSim's rack-scale decomposition: per-hop wire latency, a
// switch traversal cost, and bandwidth-driven queuing at the congested
// output port.
package fabric

import (
	"fmt"
	"math"

	"sweeper/internal/obs"
)

// Topology selects how node links are joined.
type Topology uint8

const (
	// TopoStar joins every node to one top-of-rack switch: two hops per
	// message, output-port queuing, tail drops when a port's backlog
	// exceeds the configured depth.
	TopoStar Topology = iota
	// TopoMesh gives every node pair a dedicated link: one hop, no
	// shared switch, no drops.
	TopoMesh
)

// String names the topology for manifests and flags.
func (t Topology) String() string {
	switch t {
	case TopoStar:
		return "star"
	case TopoMesh:
		return "mesh"
	default:
		return fmt.Sprintf("Topology(%d)", uint8(t))
	}
}

// ParseTopology maps a scenario/flag string to a Topology; empty selects
// the star default.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "", "star":
		return TopoStar, nil
	case "mesh":
		return TopoMesh, nil
	default:
		return 0, fmt.Errorf("fabric: unknown topology %q (want star or mesh)", s)
	}
}

// Config sizes the interconnect. The zero value is invalid; DefaultConfig
// returns a 100GbE-class rack fabric.
type Config struct {
	// LinkGBps is each link's per-direction bandwidth in GB/s; it sets
	// the serialization delay of every message.
	LinkGBps float64
	// LinkLatCycles is the per-hop propagation latency in core cycles.
	LinkLatCycles uint64
	// SwitchLatCycles is the ToR traversal time (star topology only).
	SwitchLatCycles uint64
	// QueueDepth bounds a switch output port's backlog, measured in
	// messages of the arriving message's serialization time; a message
	// reaching a fuller port is tail-dropped and counted.
	QueueDepth int
	// RetryCycles is the sender's backoff before retransmitting a
	// dropped message on the reliable path.
	RetryCycles uint64
}

// DefaultConfig returns a 100GbE-class rack fabric at 3.2GHz core cycles:
// 12.5 GB/s links, 200ns of wire per hop, a 30ns cut-through switch,
// 64-message output queues and a 4096-cycle retransmit backoff.
func DefaultConfig() Config {
	return Config{
		LinkGBps:        12.5,
		LinkLatCycles:   640,
		SwitchLatCycles: 96,
		QueueDepth:      64,
		RetryCycles:     4096,
	}
}

// Validate reports configuration errors before assembly.
func (c Config) Validate() error {
	switch {
	case c.LinkGBps <= 0:
		return fmt.Errorf("fabric: LinkGBps must be positive, got %g", c.LinkGBps)
	case c.QueueDepth <= 0:
		return fmt.Errorf("fabric: QueueDepth must be positive, got %d", c.QueueDepth)
	case c.RetryCycles == 0:
		return fmt.Errorf("fabric: RetryCycles must be positive")
	}
	return nil
}

// Stats snapshots cumulative fabric activity.
type Stats struct {
	// Messages and Bytes count successfully delivered traffic; Drops the
	// messages tail-dropped at a switch port; Retries the reliable-path
	// retransmissions those drops forced.
	Messages uint64
	Bytes    uint64
	Drops    uint64
	Retries  uint64
}

// Sub returns the delta s - prev, for measurement windows.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Messages: s.Messages - prev.Messages,
		Bytes:    s.Bytes - prev.Bytes,
		Drops:    s.Drops - prev.Drops,
		Retries:  s.Retries - prev.Retries,
	}
}

// Fabric is the assembled interconnect for one cluster.
type Fabric struct {
	cfg   Config
	topo  Topology
	nodes int
	// cpb converts message bytes to serialization cycles at the core
	// clock: freqHz / (LinkGBps * 1e9).
	cpb float64

	// Busy-until cursors. Star: up[n]/down[n] are node n's uplink and
	// downlink (switch output port) free-at cycles. Mesh: pair[s*nodes+d]
	// is the (s -> d) link's free-at cycle.
	up, down []uint64
	pair     []uint64

	stats Stats
}

// New assembles a fabric joining nodes machines at the given core clock.
func New(nodes int, topo Topology, cfg Config, freqHz float64) *Fabric {
	if nodes <= 0 {
		panic(fmt.Sprintf("fabric: need at least one node, got %d", nodes))
	}
	if freqHz <= 0 {
		panic("fabric: FreqHz must be positive")
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	f := &Fabric{
		cfg:   cfg,
		topo:  topo,
		nodes: nodes,
		cpb:   freqHz / (cfg.LinkGBps * 1e9),
	}
	if topo == TopoMesh {
		f.pair = make([]uint64, nodes*nodes)
	} else {
		f.up = make([]uint64, nodes)
		f.down = make([]uint64, nodes)
	}
	return f
}

// Nodes returns the cluster size the fabric was built for.
func (f *Fabric) Nodes() int { return f.nodes }

// Topology returns the fabric's wiring.
func (f *Fabric) Topology() Topology { return f.topo }

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// ser converts a message size to its serialization time on one link.
func (f *Fabric) ser(bytes uint64) uint64 {
	s := uint64(math.Ceil(float64(bytes) * f.cpb))
	if s == 0 {
		s = 1
	}
	return s
}

// Send transmits a bytes-long message from src to dst starting at cycle
// now, returning the delivery cycle. Star messages serialize onto the
// source uplink, cross the wire and the switch, and queue at the
// destination's output port; a port whose backlog already exceeds
// QueueDepth messages' worth of serialization tail-drops the message and
// Send reports ok=false (the uplink time is still spent — the packet died
// at the switch, not at the sender). Mesh messages occupy the dedicated
// pair link and are never dropped. Self-sends are free: node-local traffic
// never touches the fabric.
func (f *Fabric) Send(now uint64, src, dst int, bytes uint64) (deliver uint64, ok bool) {
	if src == dst {
		return now, true
	}
	ser := f.ser(bytes)
	if f.topo == TopoMesh {
		l := &f.pair[src*f.nodes+dst]
		start := now
		if *l > start {
			start = *l
		}
		*l = start + ser
		f.stats.Messages++
		f.stats.Bytes += bytes
		return start + ser + f.cfg.LinkLatCycles, true
	}
	upStart := now
	if f.up[src] > upStart {
		upStart = f.up[src]
	}
	f.up[src] = upStart + ser
	atPort := upStart + ser + f.cfg.LinkLatCycles + f.cfg.SwitchLatCycles
	if f.down[dst] > atPort && f.down[dst]-atPort > uint64(f.cfg.QueueDepth)*ser {
		f.stats.Drops++
		return 0, false
	}
	start := atPort
	if f.down[dst] > start {
		start = f.down[dst]
	}
	f.down[dst] = start + ser
	f.stats.Messages++
	f.stats.Bytes += bytes
	return start + ser + f.cfg.LinkLatCycles, true
}

// SendReliable delivers bytes from src to dst, backing off RetryCycles and
// retransmitting whenever the switch drops the message — the remote-memory
// protocol is lossless end-to-end. Returns the delivery cycle. Each retry
// re-serializes on the uplink; the backoff guarantees progress because the
// congested port keeps draining while the sender waits.
func (f *Fabric) SendReliable(now uint64, src, dst int, bytes uint64) uint64 {
	for {
		if t, ok := f.Send(now, src, dst, bytes); ok {
			return t
		}
		f.stats.Retries++
		now += f.cfg.RetryCycles
	}
}

// Stats returns cumulative fabric counters.
func (f *Fabric) Stats() Stats { return f.stats }

// RegisterMetrics exposes fabric activity to the observability registry.
func (f *Fabric) RegisterMetrics(r *obs.Registry) {
	r.Counter("fabric.messages", func() uint64 { return f.stats.Messages })
	r.Counter("fabric.tx_bytes", func() uint64 { return f.stats.Bytes })
	r.Counter("fabric.drops", func() uint64 { return f.stats.Drops })
	r.Counter("fabric.retries", func() uint64 { return f.stats.Retries })
	r.Gauge("fabric.max_port_backlog", func(now uint64) float64 {
		var max uint64
		for _, free := range f.down {
			if free > now && free-now > max {
				max = free - now
			}
		}
		for _, free := range f.pair {
			if free > now && free-now > max {
				max = free - now
			}
		}
		return float64(max)
	})
}
