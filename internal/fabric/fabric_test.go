package fabric

import (
	"testing"

	"sweeper/internal/obs"
)

const testFreq = 3.2e9

// cfg64 is a small deterministic fabric: 64 cycles of serialization per
// 64B message (1 cycle/byte), 10-cycle hops, 5-cycle switch, 4-deep ports.
func cfg64() Config {
	return Config{
		LinkGBps:        testFreq / 1e9, // 1 cycle per byte
		LinkLatCycles:   10,
		SwitchLatCycles: 5,
		QueueDepth:      4,
		RetryCycles:     100,
	}
}

func TestParseTopology(t *testing.T) {
	for s, want := range map[string]Topology{"": TopoStar, "star": TopoStar, "mesh": TopoMesh} {
		got, err := ParseTopology(s)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTopology("torus"); err == nil {
		t.Error("ParseTopology accepted unknown topology")
	}
}

func TestValidate(t *testing.T) {
	cases := map[string]func(*Config){
		"zero bandwidth":     func(c *Config) { c.LinkGBps = 0 },
		"negative bandwidth": func(c *Config) { c.LinkGBps = -1 },
		"zero queue":         func(c *Config) { c.QueueDepth = 0 },
		"zero retry":         func(c *Config) { c.RetryCycles = 0 },
	}
	for name, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestStarLatency checks the uncongested star path: serialization + wire +
// switch + wire.
func TestStarLatency(t *testing.T) {
	f := New(4, TopoStar, cfg64(), testFreq)
	done, ok := f.Send(1000, 0, 2, 64)
	if !ok {
		t.Fatal("uncongested send dropped")
	}
	// uplink 64, wire 10, switch 5, downlink 64, wire 10.
	if want := uint64(1000 + 64 + 10 + 5 + 64 + 10); done != want {
		t.Fatalf("delivery at %d, want %d", done, want)
	}
	if s := f.Stats(); s.Messages != 1 || s.Bytes != 64 || s.Drops != 0 {
		t.Fatalf("stats %+v after one send", s)
	}
}

// TestStarSerialization checks that back-to-back messages from one source
// serialize on the shared uplink.
func TestStarSerialization(t *testing.T) {
	f := New(2, TopoStar, cfg64(), testFreq)
	d1, _ := f.Send(0, 0, 1, 64)
	d2, _ := f.Send(0, 0, 1, 64)
	if d2 != d1+64 {
		t.Fatalf("second message delivered at %d, want %d (one serialization later)", d2, d1+64)
	}
}

// TestStarDropsAndReliable fills one output port from many sources until it
// tail-drops, then checks SendReliable retries through the congestion.
func TestStarDropsAndReliable(t *testing.T) {
	f := New(8, TopoStar, cfg64(), testFreq)
	drops := 0
	for src := 1; src < 8; src++ {
		for i := 0; i < 4; i++ {
			if _, ok := f.Send(0, src, 0, 64); !ok {
				drops++
			}
		}
	}
	if drops == 0 {
		t.Fatal("no drops despite 28 simultaneous messages into a 4-deep port")
	}
	if got := f.Stats().Drops; got != uint64(drops) {
		t.Fatalf("drop counter %d, want %d", got, drops)
	}
}

// TestSendReliableRetries backs up a port with large messages, then checks a
// small reliable message is dropped (its 64-cycle queue bound is far below
// the backlog), retries on the backoff, and eventually lands.
func TestSendReliableRetries(t *testing.T) {
	f := New(4, TopoStar, cfg64(), testFreq)
	for i := 0; i < 4; i++ {
		if _, ok := f.Send(0, 2, 0, 1024); !ok {
			t.Fatal("large fill send dropped")
		}
	}
	done := f.SendReliable(0, 1, 0, 64)
	if f.Stats().Retries == 0 {
		t.Fatal("SendReliable into a backed-up port recorded no retries")
	}
	if drained := f.down[0]; done < drained {
		t.Fatalf("reliable delivery at %d before the port drained at %d", done, drained)
	}
}

// TestMesh checks dedicated pair links: no drops, independent directions.
func TestMesh(t *testing.T) {
	f := New(3, TopoMesh, cfg64(), testFreq)
	d1, ok1 := f.Send(0, 0, 1, 64)
	d2, ok2 := f.Send(0, 1, 0, 64) // opposite direction, independent link
	if !ok1 || !ok2 {
		t.Fatal("mesh dropped")
	}
	if want := uint64(64 + 10); d1 != want || d2 != want {
		t.Fatalf("mesh deliveries %d/%d, want %d", d1, d2, want)
	}
	d3, _ := f.Send(0, 0, 1, 64) // same link as d1: serializes behind it
	if d3 != d1+64 {
		t.Fatalf("mesh same-link delivery %d, want %d", d3, d1+64)
	}
}

func TestSelfSendFree(t *testing.T) {
	f := New(2, TopoStar, cfg64(), testFreq)
	done, ok := f.Send(42, 1, 1, 4096)
	if !ok || done != 42 {
		t.Fatalf("self-send = (%d, %v), want (42, true)", done, ok)
	}
	if s := f.Stats(); s.Messages != 0 {
		t.Fatalf("self-send counted as fabric traffic: %+v", s)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Messages: 10, Bytes: 640, Drops: 2, Retries: 1}
	b := Stats{Messages: 4, Bytes: 256, Drops: 1, Retries: 0}
	got := a.Sub(b)
	want := Stats{Messages: 6, Bytes: 384, Drops: 1, Retries: 1}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}

func TestRegisterMetrics(t *testing.T) {
	f := New(2, TopoStar, cfg64(), testFreq)
	f.Send(0, 0, 1, 64)
	r := obs.NewRegistry()
	f.RegisterMetrics(r)
	final := r.Final(0)
	if final["fabric.messages"] != 1 || final["fabric.tx_bytes"] != 64 {
		t.Fatalf("metrics %v", final)
	}
	if final["fabric.max_port_backlog"] <= 0 {
		t.Fatalf("backlog gauge %g, want > 0 right after a send", final["fabric.max_port_backlog"])
	}
}
