// Package cache implements the simulated cache hierarchy: set-associative
// arrays with per-set LRU, private L1/L2 caches per core, and a shared
// non-inclusive victim LLC with way-partitioning (DDIO ways, tenant
// partitions) and sweep (invalidate-without-writeback) support.
package cache

import (
	"fmt"
	"math/bits"

	"sweeper/internal/fastdiv"
)

const lineBytes = 64

// State is the coherence/dirtiness state of a cached line. The simulator
// models a single-socket system with one writer per line at a time, so a
// three-state (I/Clean/Dirty) model captures everything the paper measures.
type State uint8

const (
	// Invalid marks an empty way.
	Invalid State = iota
	// Clean holds data matching memory.
	Clean
	// Dirty holds data newer than memory; eviction requires a writeback
	// unless the line is swept.
	Dirty
)

// String returns a short label for the state.
func (s State) String() string {
	switch s {
	case Clean:
		return "Clean"
	case Dirty:
		return "Dirty"
	default:
		return "Invalid"
	}
}

// WayMask restricts which ways of a set an insertion may allocate into.
// Bit i set means way i is allowed. Masks implement DDIO way restriction
// and the LLC tenant partitions of §VI-E.
type WayMask uint32

// MaskAll returns a mask allowing the first n ways.
func MaskAll(n int) WayMask {
	if n >= 32 {
		return ^WayMask(0)
	}
	return WayMask(1)<<uint(n) - 1
}

// MaskRange returns a mask allowing ways [lo, hi).
func MaskRange(lo, hi int) WayMask {
	return MaskAll(hi) &^ MaskAll(lo)
}

// Count returns how many ways the mask allows.
func (m WayMask) Count() int {
	return bits.OnesCount32(uint32(m))
}

// Victim describes the outcome of an insertion: the displaced line if any,
// and whether the insertion merged into an already-present line.
type Victim struct {
	Addr   uint64
	Dirty  bool
	Valid  bool // false when nothing was displaced
	Merged bool // true when the line was already present (update in place)
}

// Generation-stamped words. Both a way's tag and its LRU stamp pack the
// cache's generation counter (top 16 bits) over a 48-bit payload — the line
// address for tags, a monotone touch counter for LRU. A way is valid exactly
// when its tag's generation matches the cache's current one, so Reset only
// has to bump the generation to invalidate every line in O(1).
//
// Stamping the LRU words with the generation as well makes victim selection
// a single strict-< minimum scan with no validity test: any invalid way
// carries 0 (never used, explicitly invalidated, or cleared by Reset),
// which sorts below every live stamp, so invalid ways win eviction before
// any valid way — exactly the first-invalid-then-LRU policy. Ties (only
// ever between zero stamps) break toward the lowest way index. Generation 0
// never becomes current, making a zero word permanently invalid.
const (
	genShift = 48
	addrMask = uint64(1)<<genShift - 1
	maxGen   = uint64(1) << (64 - genShift)
)

// SetAssoc is a single set-associative cache array.
//
// Storage is struct-of-arrays: the hot lookup path scans only the packed
// tag array (one 8-byte word per way) guided by a one-entry last-hit filter
// and a per-set MRU hint, while the dirtiness state and LRU stamps live in
// side arrays touched only on hits and replacements.
type SetAssoc struct {
	// Hot fields first, packed so the last-hit fast path (genBase, lastKey,
	// stamp, lastLRU, hits) shares as few cache lines as possible.
	genBase uint64  // current generation, pre-shifted: gen<<48
	lastKey uint64  // tag word of the most recent hit, 0 when unset
	stamp   uint64  // gen<<48 | touch count; copied into lru on touch
	lastLRU *uint64 // &lru[lastIdx], kept in sync with lastKey
	lastSt  *State  // &states[lastIdx], kept in sync with lastKey
	hits    uint64
	misses  uint64
	lastIdx int32 // way-array index behind lastKey
	ways    int
	setDiv  fastdiv.Divisor // strength-reduced (addr/64) % sets

	tags   []uint64 // per way: gen<<48 | addr, 0 when invalid
	lru    []uint64 // per way: gen<<48 | touch count, 0 when invalidated
	states []State  // per way: Clean/Dirty, meaningful only when valid
	mru    []uint8  // per set: most-recently-hit way, probed before the scan

	sets     int
	fullMask WayMask // MaskAll(ways), the unrestricted insert mask

	name string
}

// NewSetAssoc builds a cache of the given capacity and associativity. The
// number of sets (capacity / 64B / ways) need not be a power of two —
// Table I's 36MB 12-way LLC has 49152 sets, and like real hardware the
// model simply distributes line addresses across all sets (modulo here,
// a hash in silicon).
func NewSetAssoc(name string, capacityBytes uint64, ways int) *SetAssoc {
	if ways <= 0 || ways > 32 {
		panic(fmt.Sprintf("cache %s: ways %d out of range [1,32]", name, ways))
	}
	nLines := capacityBytes / lineBytes
	if nLines == 0 || nLines%uint64(ways) != 0 {
		panic(fmt.Sprintf("cache %s: capacity %dB not divisible into %d ways",
			name, capacityBytes, ways))
	}
	sets := int(nLines / uint64(ways))
	c := &SetAssoc{
		name:     name,
		sets:     sets,
		ways:     ways,
		setDiv:   fastdiv.New(uint64(sets)),
		genBase:  1 << genShift,
		stamp:    1 << genShift,
		fullMask: MaskAll(ways),
		tags:     make([]uint64, sets*ways),
		lru:      make([]uint64, sets*ways),
		states:   make([]State, sets*ways),
		mru:      make([]uint8, sets),
	}
	c.lastLRU = &c.lru[0]
	c.lastSt = &c.states[0]
	return c
}

// Name returns the cache's label.
func (c *SetAssoc) Name() string { return c.name }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// CapacityBytes returns the total capacity.
func (c *SetAssoc) CapacityBytes() uint64 {
	return uint64(c.sets) * uint64(c.ways) * lineBytes
}

// Hits and Misses return cumulative lookup outcomes.
func (c *SetAssoc) Hits() uint64   { return c.hits }
func (c *SetAssoc) Misses() uint64 { return c.misses }

// MissRatio returns misses / lookups, or 0 with no lookups.
func (c *SetAssoc) MissRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset invalidates every line and zeroes the statistics, returning the
// cache to its just-constructed observable state. The generation bump makes
// every tag word (and the last-hit filter) stale in O(1); the LRU stamps are
// cleared with one memclr. Clearing the stamps is not optional: stale stamps
// sort below every current-generation stamp, so they would still lose to
// valid lines, but they are *distinct*, so the order in which empty ways
// fill after a Reset would follow the previous run's touch pattern instead
// of the lowest-index-first order of a fresh cache — and way masks (DDIO,
// tenant partitions) make that placement observable. Zeroed stamps restore
// the fresh tie-break exactly, and a memclr over the stamp array is still
// far cheaper than reallocating the whole cache (pooled machines recycle a
// 589k-line LLC between probes). Stale MRU hints are harmless — a hint only
// short-circuits the scan on an exact current-generation tag match.
func (c *SetAssoc) Reset() {
	c.genBase += 1 << genShift
	if c.genBase == 0 {
		// Generation space exhausted (the pre-shifted counter wrapped):
		// take the rare O(capacity) tag clear so words from 65535 resets
		// ago cannot alias the wrapped generation.
		for i := range c.tags {
			c.tags[i] = 0
		}
		c.genBase = 1 << genShift
	}
	for i := range c.lru {
		c.lru[i] = 0
	}
	c.stamp = c.genBase
	c.lastKey = 0
	c.hits, c.misses = 0, 0
}

// key packs a line address into its current-generation tag word.
func (c *SetAssoc) key(a uint64) uint64 {
	return c.genBase | a
}

func (c *SetAssoc) setIndex(a uint64) int {
	return int(c.setDiv.Mod(a / lineBytes))
}

// setLast points the one-entry last-hit filter at way-array index i.
func (c *SetAssoc) setLast(key uint64, i int) {
	c.lastKey = key
	c.lastIdx = int32(i)
	c.lastLRU = &c.lru[i]
	c.lastSt = &c.states[i]
}

// scan searches set s for the tag word key, updating the set's MRU hint and
// the last-hit filter on a match. It returns the way-array index or -1. The
// caller has already tried the faster paths.
func (c *SetAssoc) scan(s int, key uint64) int {
	base := s * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == key {
			c.mru[s] = uint8(w)
			c.setLast(key, base+w)
			return base + w
		}
	}
	return -1
}

// find returns the way-array index holding line a, or -1. It touches only
// the tag array: validity is implied by the generation bits of the match.
// Hits are highly repetitive (poll loops re-touch the same lines), so the
// one-entry last-hit filter and the per-set MRU way are probed before the
// scan.
func (c *SetAssoc) find(a uint64) int {
	key := c.genBase | a
	if key == c.lastKey {
		return int(c.lastIdx)
	}
	s := c.setIndex(a)
	if h := s*c.ways + int(c.mru[s]); c.tags[h] == key {
		return h
	}
	return c.scan(s, key)
}

// Lookup probes for the line, updating LRU and hit/miss statistics. It
// returns the line's state (Invalid on miss).
func (c *SetAssoc) Lookup(a uint64) State {
	c.stamp++
	key := c.genBase | a
	// Last-hit fast path, duplicated from find so the common repeated hit
	// runs without an extra call frame or the set-index computation.
	if key == c.lastKey {
		*c.lastLRU = c.stamp
		c.hits++
		return *c.lastSt
	}
	return c.lookupSlow(a, key)
}

func (c *SetAssoc) lookupSlow(a, key uint64) State {
	s := c.setIndex(a)
	if h := s*c.ways + int(c.mru[s]); c.tags[h] == key {
		c.setLast(key, h)
		c.lru[h] = c.stamp
		c.hits++
		return c.states[h]
	}
	if i := c.scan(s, key); i >= 0 {
		c.lru[i] = c.stamp
		c.hits++
		return c.states[i]
	}
	c.misses++
	return Invalid
}

// lookupFast is the last-hit-filter half of Lookup, small enough for the
// compiler to inline into the Hierarchy entry points so the dominant
// repeated-hit case pays no call overhead. It reports only presence — the
// callers that need it never use the state — keeping the inlined body
// minimal. On a filter miss it reports false without recording anything;
// the caller falls back to the full Lookup (the stamp gap this can leave is
// harmless — only the relative order of LRU stamps matters, and it is
// preserved).
func (c *SetAssoc) lookupFast(a uint64) bool {
	key := c.genBase | a
	if key != c.lastKey {
		return false
	}
	c.stamp++
	*c.lastLRU = c.stamp
	c.hits++
	return true
}

// setDirtyFast is the last-hit-filter half of SetDirty, inlined into the
// Hierarchy write paths; ok=false means the caller must run the full
// SetDirty.
func (c *SetAssoc) setDirtyFast(a uint64) (ok bool) {
	key := c.genBase | a
	if key != c.lastKey {
		return false
	}
	c.stamp++
	*c.lastSt = Dirty
	*c.lastLRU = c.stamp
	return true
}

// Peek probes without touching LRU or statistics.
func (c *SetAssoc) Peek(a uint64) State {
	if i := c.find(a); i >= 0 {
		return c.states[i]
	}
	return Invalid
}

// SetDirty marks a present line dirty (a write hit). It reports whether the
// line was present.
func (c *SetAssoc) SetDirty(a uint64) bool {
	c.stamp++
	key := c.genBase | a
	if key == c.lastKey {
		*c.lastSt = Dirty
		*c.lastLRU = c.stamp
		return true
	}
	if i := c.find(a); i >= 0 {
		c.states[i] = Dirty
		c.lru[i] = c.stamp
		return true
	}
	return false
}

// Insert places the line into the cache with the given dirtiness. If the
// line is already present it is updated in place (dirty state is OR-ed, LRU
// refreshed) regardless of mask. Otherwise the LRU way among those allowed
// by mask is replaced and returned as the victim. A zero mask panics: the
// caller must always allow at least one way.
func (c *SetAssoc) Insert(a uint64, dirty bool, mask WayMask) Victim {
	if a > addrMask {
		panic(fmt.Sprintf("cache %s: address %#x exceeds the %d-bit tag space",
			c.name, a, genShift))
	}
	c.stamp++
	key := c.genBase | a

	// Merge probe, filter level only: the set scan below covers the rest.
	if key == c.lastKey {
		i := int(c.lastIdx)
		if dirty {
			c.states[i] = Dirty
		}
		c.lru[i] = c.stamp
		return Victim{Merged: true}
	}
	s := c.setIndex(a)
	base := s * c.ways

	// One pass over the set resolves the remaining merge probe and the
	// victim choice together (tags are unique per set, so at most one way
	// can match). The victim is the plain minimum over the set's
	// generation-stamped LRU words: see the encoding comment above — invalid
	// ways sort first, so no validity test is needed in the loop.
	victimIdx := -1
	if mask == c.fullMask {
		tset := c.tags[base : base+c.ways]
		lset := c.lru[base : base+c.ways : base+c.ways]
		// oldest starts above any encodable stamp (gen and count never
		// saturate), so the w==0 iteration always seeds the minimum.
		v, oldest := 0, ^uint64(0)
		for w, t := range tset {
			if t == key {
				i := base + w
				if dirty {
					c.states[i] = Dirty
				}
				c.lru[i] = c.stamp
				c.mru[s] = uint8(w)
				return Victim{Merged: true}
			}
			if x := lset[w]; x < oldest {
				oldest = x
				v = w
			}
		}
		victimIdx = base + v
	} else {
		if i := c.scan(s, key); i >= 0 {
			if dirty {
				c.states[i] = Dirty
			}
			c.lru[i] = c.stamp
			return Victim{Merged: true}
		}
		var oldest uint64
		for w, x := range c.lru[base : base+c.ways] {
			if mask&(1<<uint(w)) == 0 {
				continue
			}
			if victimIdx == -1 || x < oldest {
				victimIdx = base + w
				oldest = x
			}
		}
		if victimIdx == -1 {
			if mask == 0 {
				panic(fmt.Sprintf("cache %s: insert with empty way mask", c.name))
			}
			panic(fmt.Sprintf("cache %s: way mask %#x selects no ways of %d",
				c.name, mask, c.ways))
		}
	}

	v := Victim{}
	if c.tags[victimIdx]&^addrMask == c.genBase {
		v = Victim{
			Addr:  c.tags[victimIdx] & addrMask,
			Dirty: c.states[victimIdx] == Dirty,
			Valid: true,
		}
	}
	st := Clean
	if dirty {
		st = Dirty
	}
	if int32(victimIdx) == c.lastIdx {
		c.lastKey = 0 // the filter's way now holds a different line
	}
	c.tags[victimIdx] = key
	c.states[victimIdx] = st
	c.lru[victimIdx] = c.stamp
	c.mru[s] = uint8(victimIdx - base)
	return v
}

// drop invalidates way-array index i, keeping the last-hit filter and the
// LRU encoding (zero stamp sorts first) consistent.
func (c *SetAssoc) drop(i int) {
	c.tags[i] = 0
	c.lru[i] = 0
	if int32(i) == c.lastIdx {
		c.lastKey = 0
	}
}

// Invalidate drops the line without any writeback (the hardware primitive
// behind both DMA invalidations and Sweeper's sweep message). It reports
// whether a line was present and whether it was dirty.
func (c *SetAssoc) Invalidate(a uint64) (present, dirty bool) {
	if i := c.find(a); i >= 0 {
		dirty = c.states[i] == Dirty
		c.drop(i)
		return true, dirty
	}
	return false, false
}

// MakeClean marks a present line clean without removing it (the CLWB
// behaviour after its writeback has been issued). It reports presence and
// whether the line had been dirty.
func (c *SetAssoc) MakeClean(a uint64) (present, wasDirty bool) {
	if i := c.find(a); i >= 0 {
		wasDirty = c.states[i] == Dirty
		c.states[i] = Clean
		return true, wasDirty
	}
	return false, false
}

// Extract removes the line, returning its state before removal. Used when a
// line migrates between levels carrying its dirtiness with it.
func (c *SetAssoc) Extract(a uint64) State {
	if i := c.find(a); i >= 0 {
		st := c.states[i]
		c.drop(i)
		return st
	}
	return Invalid
}

// valid reports whether way-array index i holds a current-generation line.
func (c *SetAssoc) valid(i int) bool {
	return c.tags[i]&^addrMask == c.genBase
}

// OccupancyByClass counts valid lines for which classify returns true, for
// occupancy studies and tests.
func (c *SetAssoc) OccupancyByClass(classify func(addr uint64) bool) int {
	n := 0
	for i := range c.tags {
		if c.valid(i) && classify(c.tags[i]&addrMask) {
			n++
		}
	}
	return n
}

// ValidLines returns the number of non-invalid lines.
func (c *SetAssoc) ValidLines() int {
	n := 0
	for i := range c.tags {
		if c.valid(i) {
			n++
		}
	}
	return n
}

// checkSetInvariant verifies no duplicate tags within a set; used by tests.
// One scratch buffer serves every set: with at most 32 ways a linear scan
// beats a per-set map allocation.
func (c *SetAssoc) checkSetInvariant() error {
	var scratch [32]uint64
	for s := 0; s < c.sets; s++ {
		base := s * c.ways
		seen := scratch[:0]
		for w := 0; w < c.ways; w++ {
			if !c.valid(base + w) {
				continue
			}
			a := c.tags[base+w] & addrMask
			for _, prev := range seen {
				if prev == a {
					return fmt.Errorf("cache %s: duplicate line %#x in set %d",
						c.name, a, s)
				}
			}
			seen = append(seen, a)
			if c.setIndex(a) != s {
				return fmt.Errorf("cache %s: line %#x in wrong set %d",
					c.name, a, s)
			}
		}
	}
	return nil
}
