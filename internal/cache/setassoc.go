// Package cache implements the simulated cache hierarchy: set-associative
// arrays with per-set LRU, private L1/L2 caches per core, and a shared
// non-inclusive victim LLC with way-partitioning (DDIO ways, tenant
// partitions) and sweep (invalidate-without-writeback) support.
package cache

import "fmt"

const lineBytes = 64

// State is the coherence/dirtiness state of a cached line. The simulator
// models a single-socket system with one writer per line at a time, so a
// three-state (I/Clean/Dirty) model captures everything the paper measures.
type State uint8

const (
	// Invalid marks an empty way.
	Invalid State = iota
	// Clean holds data matching memory.
	Clean
	// Dirty holds data newer than memory; eviction requires a writeback
	// unless the line is swept.
	Dirty
)

// String returns a short label for the state.
func (s State) String() string {
	switch s {
	case Clean:
		return "Clean"
	case Dirty:
		return "Dirty"
	default:
		return "Invalid"
	}
}

// WayMask restricts which ways of a set an insertion may allocate into.
// Bit i set means way i is allowed. Masks implement DDIO way restriction
// and the LLC tenant partitions of §VI-E.
type WayMask uint32

// MaskAll returns a mask allowing the first n ways.
func MaskAll(n int) WayMask {
	if n >= 32 {
		return ^WayMask(0)
	}
	return WayMask(1)<<uint(n) - 1
}

// MaskRange returns a mask allowing ways [lo, hi).
func MaskRange(lo, hi int) WayMask {
	return MaskAll(hi) &^ MaskAll(lo)
}

// Count returns how many ways the mask allows.
func (m WayMask) Count() int {
	n := 0
	for m != 0 {
		n += int(m & 1)
		m >>= 1
	}
	return n
}

type line struct {
	addr  uint64 // line-aligned address; meaningful only when state != Invalid
	state State
	lru   uint64
}

// Victim describes the outcome of an insertion: the displaced line if any,
// and whether the insertion merged into an already-present line.
type Victim struct {
	Addr   uint64
	Dirty  bool
	Valid  bool // false when nothing was displaced
	Merged bool // true when the line was already present (update in place)
}

// SetAssoc is a single set-associative cache array.
type SetAssoc struct {
	name  string
	sets  int
	ways  int
	lines []line
	stamp uint64

	hits   uint64
	misses uint64
}

// NewSetAssoc builds a cache of the given capacity and associativity. The
// number of sets (capacity / 64B / ways) need not be a power of two —
// Table I's 36MB 12-way LLC has 49152 sets, and like real hardware the
// model simply distributes line addresses across all sets (modulo here,
// a hash in silicon).
func NewSetAssoc(name string, capacityBytes uint64, ways int) *SetAssoc {
	if ways <= 0 || ways > 32 {
		panic(fmt.Sprintf("cache %s: ways %d out of range [1,32]", name, ways))
	}
	nLines := capacityBytes / lineBytes
	if nLines == 0 || nLines%uint64(ways) != 0 {
		panic(fmt.Sprintf("cache %s: capacity %dB not divisible into %d ways",
			name, capacityBytes, ways))
	}
	sets := int(nLines / uint64(ways))
	return &SetAssoc{
		name:  name,
		sets:  sets,
		ways:  ways,
		lines: make([]line, sets*ways),
	}
}

// Name returns the cache's label.
func (c *SetAssoc) Name() string { return c.name }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// CapacityBytes returns the total capacity.
func (c *SetAssoc) CapacityBytes() uint64 {
	return uint64(c.sets) * uint64(c.ways) * lineBytes
}

// Hits and Misses return cumulative lookup outcomes.
func (c *SetAssoc) Hits() uint64   { return c.hits }
func (c *SetAssoc) Misses() uint64 { return c.misses }

// MissRatio returns misses / lookups, or 0 with no lookups.
func (c *SetAssoc) MissRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

func (c *SetAssoc) setIndex(a uint64) int {
	return int((a / lineBytes) % uint64(c.sets))
}

func (c *SetAssoc) set(a uint64) []line {
	s := c.setIndex(a)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

func (c *SetAssoc) find(a uint64) *line {
	set := c.set(a)
	for i := range set {
		if set[i].state != Invalid && set[i].addr == a {
			return &set[i]
		}
	}
	return nil
}

// Lookup probes for the line, updating LRU and hit/miss statistics. It
// returns the line's state (Invalid on miss).
func (c *SetAssoc) Lookup(a uint64) State {
	c.stamp++
	if ln := c.find(a); ln != nil {
		ln.lru = c.stamp
		c.hits++
		return ln.state
	}
	c.misses++
	return Invalid
}

// Peek probes without touching LRU or statistics.
func (c *SetAssoc) Peek(a uint64) State {
	if ln := c.find(a); ln != nil {
		return ln.state
	}
	return Invalid
}

// SetDirty marks a present line dirty (a write hit). It reports whether the
// line was present.
func (c *SetAssoc) SetDirty(a uint64) bool {
	c.stamp++
	if ln := c.find(a); ln != nil {
		ln.state = Dirty
		ln.lru = c.stamp
		return true
	}
	return false
}

// Insert places the line into the cache with the given dirtiness. If the
// line is already present it is updated in place (dirty state is OR-ed, LRU
// refreshed) regardless of mask. Otherwise the LRU way among those allowed
// by mask is replaced and returned as the victim. A zero mask panics: the
// caller must always allow at least one way.
func (c *SetAssoc) Insert(a uint64, dirty bool, mask WayMask) Victim {
	c.stamp++
	if ln := c.find(a); ln != nil {
		if dirty {
			ln.state = Dirty
		}
		ln.lru = c.stamp
		return Victim{Merged: true}
	}
	if mask == 0 {
		panic(fmt.Sprintf("cache %s: insert with empty way mask", c.name))
	}
	set := c.set(a)
	victimIdx := -1
	var oldest uint64
	for i := range set {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if set[i].state == Invalid {
			victimIdx = i
			break
		}
		if victimIdx == -1 || set[i].lru < oldest {
			victimIdx = i
			oldest = set[i].lru
		}
	}
	if victimIdx == -1 {
		panic(fmt.Sprintf("cache %s: way mask %#x selects no ways of %d",
			c.name, mask, c.ways))
	}
	v := Victim{}
	old := &set[victimIdx]
	if old.state != Invalid {
		v = Victim{Addr: old.addr, Dirty: old.state == Dirty, Valid: true}
	}
	st := Clean
	if dirty {
		st = Dirty
	}
	*old = line{addr: a, state: st, lru: c.stamp}
	return v
}

// Invalidate drops the line without any writeback (the hardware primitive
// behind both DMA invalidations and Sweeper's sweep message). It reports
// whether a line was present and whether it was dirty.
func (c *SetAssoc) Invalidate(a uint64) (present, dirty bool) {
	if ln := c.find(a); ln != nil {
		dirty = ln.state == Dirty
		ln.state = Invalid
		return true, dirty
	}
	return false, false
}

// MakeClean marks a present line clean without removing it (the CLWB
// behaviour after its writeback has been issued). It reports presence and
// whether the line had been dirty.
func (c *SetAssoc) MakeClean(a uint64) (present, wasDirty bool) {
	if ln := c.find(a); ln != nil {
		wasDirty = ln.state == Dirty
		ln.state = Clean
		return true, wasDirty
	}
	return false, false
}

// Extract removes the line, returning its state before removal. Used when a
// line migrates between levels carrying its dirtiness with it.
func (c *SetAssoc) Extract(a uint64) State {
	if ln := c.find(a); ln != nil {
		st := ln.state
		ln.state = Invalid
		return st
	}
	return Invalid
}

// OccupancyByClass counts valid lines for which classify returns true, for
// occupancy studies and tests.
func (c *SetAssoc) OccupancyByClass(classify func(addr uint64) bool) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid && classify(c.lines[i].addr) {
			n++
		}
	}
	return n
}

// ValidLines returns the number of non-invalid lines.
func (c *SetAssoc) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}

// checkSetInvariant verifies no duplicate tags within a set; used by tests.
func (c *SetAssoc) checkSetInvariant() error {
	for s := 0; s < c.sets; s++ {
		set := c.lines[s*c.ways : (s+1)*c.ways]
		seen := make(map[uint64]bool, c.ways)
		for i := range set {
			if set[i].state == Invalid {
				continue
			}
			if seen[set[i].addr] {
				return fmt.Errorf("cache %s: duplicate line %#x in set %d",
					c.name, set[i].addr, s)
			}
			seen[set[i].addr] = true
			if c.setIndex(set[i].addr) != s {
				return fmt.Errorf("cache %s: line %#x in wrong set %d",
					c.name, set[i].addr, s)
			}
		}
	}
	return nil
}
