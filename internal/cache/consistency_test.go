package cache

import (
	"math/rand"
	"testing"
)

// countingSink tallies per-address writebacks for conservation checks.
type countingSink struct {
	writebacks map[uint64]int
	reads      int
}

func (s *countingSink) DemandRead(now uint64, a uint64, src Requestor) uint64 {
	s.reads++
	return now + 80
}

func (s *countingSink) WritebackEvict(now uint64, a uint64) {
	s.writebacks[a]++
}

func (s *countingSink) DMAWrite(now uint64, a uint64) {}

// TestWritebackConservation checks the fundamental accounting law behind
// the paper's bandwidth numbers: a line is written back to DRAM at most
// once per "dirtying event" (a store or a NIC injection). Extra writebacks
// would fabricate memory traffic; the test drives random traffic and
// verifies the ledger never goes negative.
func TestWritebackConservation(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sink := &countingSink{writebacks: map[uint64]int{}}
		h := NewHierarchy(smallConfig(), sink)
		h.SetNICWays(2)
		rng := rand.New(rand.NewSource(seed))

		dirtied := map[uint64]int{}
		for op := 0; op < 4000; op++ {
			core := rng.Intn(2)
			a := uint64(rng.Intn(512)) * 64
			switch rng.Intn(7) {
			case 0, 1:
				h.CPURead(uint64(op), core, a)
			case 2:
				h.CPUWrite(uint64(op), core, a)
				dirtied[a]++
			case 3:
				h.CPUWriteFull(uint64(op), core, a)
				dirtied[a]++
			case 4, 5:
				h.NICWriteDDIO(uint64(op), core, a)
				dirtied[a]++
			case 6:
				h.Sweep(uint64(op), core, a)
			}
			// CPUWrite on a clean cached line re-dirties it without a
			// new "event" in our ledger only when it was already
			// counted; the conservation direction we assert is
			// writebacks <= dirtyings, which holds regardless.
		}
		for a, wb := range sink.writebacks {
			if wb > dirtied[a] {
				t.Fatalf("seed %d: line %#x written back %d times for %d dirtyings",
					seed, a, wb, dirtied[a])
			}
		}
	}
}

// TestSweeperSavesExactlyTheDirtyLines: for a closed loop of NIC-write then
// CPU-consume then relinquish, the number of dirty lines dropped equals the
// number of packets' lines — and DRAM sees zero RX writebacks.
func TestSweeperSavesExactlyTheDirtyLines(t *testing.T) {
	sink := &countingSink{writebacks: map[uint64]int{}}
	h := NewHierarchy(smallConfig(), sink)
	h.SetNICWays(2)

	const lines = 500
	for i := 0; i < lines; i++ {
		a := uint64(0x100000) + uint64(i)*64
		h.NICWriteDDIO(uint64(i*3), 0, a)
		h.CPURead(uint64(i*3+1), 0, a)
		if !h.Sweep(uint64(i*3+2), 0, a) {
			t.Fatalf("line %d: sweep found nothing dirty", i)
		}
	}
	_, dropped := h.Sweeps()
	if dropped != lines {
		t.Fatalf("dropped %d dirty lines, want %d", dropped, lines)
	}
	if len(sink.writebacks) != 0 {
		t.Fatalf("%d addresses written back despite sweeping", len(sink.writebacks))
	}
}

// TestConsumedBufferLeakWithoutSweeper is the paper's §IV-A in miniature:
// the same loop without relinquish must write (almost) every consumed
// buffer line back to DRAM once the DDIO ways churn.
func TestConsumedBufferLeakWithoutSweeper(t *testing.T) {
	sink := &countingSink{writebacks: map[uint64]int{}}
	h := NewHierarchy(smallConfig(), sink)
	h.SetNICWays(2)

	// Streaming far more lines than the 2 DDIO ways hold (2 ways x 8
	// sets = 16 lines) forces consumed-buffer evictions.
	const lines = 500
	for i := 0; i < lines; i++ {
		a := uint64(0x200000) + uint64(i)*64
		h.NICWriteDDIO(uint64(i*2), 0, a)
		h.CPURead(uint64(i*2+1), 0, a)
	}
	var total int
	for _, n := range sink.writebacks {
		total += n
	}
	if total < lines/2 {
		t.Fatalf("only %d consumed-buffer writebacks for %d lines", total, lines)
	}
}

// TestRunawayBufferSpillover reproduces the §VI-C observation: without
// Sweeper, network lines re-enter the LLC outside the DDIO ways via L2
// victims, so network data occupies more of the LLC than its 2-way
// allocation.
func TestRunawayBufferSpillover(t *testing.T) {
	sink := &countingSink{writebacks: map[uint64]int{}}
	h := NewHierarchy(smallConfig(), sink)
	h.SetNICWays(2)
	isNet := func(a uint64) bool { return a >= 0x300000 && a < 0x400000 }

	// Write+consume a rotating window of buffers repeatedly; consumed
	// clean copies cascade L1->L2->LLC and stick in non-DDIO ways.
	for round := 0; round < 50; round++ {
		for i := 0; i < 64; i++ {
			a := uint64(0x300000) + uint64(i)*64
			h.NICWriteDDIO(uint64(round*1000+i*2), 0, a)
			h.CPURead(uint64(round*1000+i*2+1), 0, a)
		}
	}
	netLines := h.LLC().OccupancyByClass(isNet)
	ddioCapacity := h.LLC().Sets() * 2
	if netLines <= ddioCapacity {
		t.Fatalf("no spillover: %d net lines within %d DDIO capacity",
			netLines, ddioCapacity)
	}
}
