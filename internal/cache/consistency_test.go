package cache

import (
	"math/rand"
	"testing"
)

// countingSink tallies per-address writebacks for conservation checks.
type countingSink struct {
	writebacks map[uint64]int
	reads      int
}

func (s *countingSink) DemandRead(now uint64, a uint64, src Requestor) uint64 {
	s.reads++
	return now + 80
}

func (s *countingSink) WritebackEvict(now uint64, a uint64) {
	s.writebacks[a]++
}

func (s *countingSink) DMAWrite(now uint64, a uint64) {}

// TestWritebackConservation checks the fundamental accounting law behind
// the paper's bandwidth numbers: a line is written back to DRAM at most
// once per "dirtying event" (a store or a NIC injection). Extra writebacks
// would fabricate memory traffic; the test drives random traffic and
// verifies the ledger never goes negative.
func TestWritebackConservation(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sink := &countingSink{writebacks: map[uint64]int{}}
		h := NewHierarchy(smallConfig(), sink)
		h.SetNICWays(2)
		rng := rand.New(rand.NewSource(seed))

		dirtied := map[uint64]int{}
		for op := 0; op < 4000; op++ {
			core := rng.Intn(2)
			a := uint64(rng.Intn(512)) * 64
			switch rng.Intn(9) {
			case 0, 1:
				h.CPURead(uint64(op), core, a)
			case 2:
				h.CPUWrite(uint64(op), core, a)
				dirtied[a]++
			case 3:
				h.CPUWriteFull(uint64(op), core, a)
				dirtied[a]++
			case 4, 5:
				h.NICWriteDDIO(uint64(op), core, a)
				dirtied[a]++
			case 6:
				h.Sweep(uint64(op), core, a)
			case 7:
				h.Flush(uint64(op), core, a)
			case 8:
				h.CLWB(uint64(op), core, a)
			}
			// CPUWrite on a clean cached line re-dirties it without a
			// new "event" in our ledger only when it was already
			// counted; the conservation direction we assert is
			// writebacks <= dirtyings, which holds regardless.
		}
		for a, wb := range sink.writebacks {
			if wb > dirtied[a] {
				t.Fatalf("seed %d: line %#x written back %d times for %d dirtyings",
					seed, a, wb, dirtied[a])
			}
		}
	}
}

// TestSweeperSavesExactlyTheDirtyLines: for a closed loop of NIC-write then
// CPU-consume then relinquish, the number of dirty lines dropped equals the
// number of packets' lines — and DRAM sees zero RX writebacks.
func TestSweeperSavesExactlyTheDirtyLines(t *testing.T) {
	sink := &countingSink{writebacks: map[uint64]int{}}
	h := NewHierarchy(smallConfig(), sink)
	h.SetNICWays(2)

	const lines = 500
	for i := 0; i < lines; i++ {
		a := uint64(0x100000) + uint64(i)*64
		h.NICWriteDDIO(uint64(i*3), 0, a)
		h.CPURead(uint64(i*3+1), 0, a)
		if !h.Sweep(uint64(i*3+2), 0, a) {
			t.Fatalf("line %d: sweep found nothing dirty", i)
		}
	}
	_, dropped := h.Sweeps()
	if dropped != lines {
		t.Fatalf("dropped %d dirty lines, want %d", dropped, lines)
	}
	if len(sink.writebacks) != 0 {
		t.Fatalf("%d addresses written back despite sweeping", len(sink.writebacks))
	}
}

// TestInvalidateFamilyClosedLoop runs the same NIC-write/consume/relinquish
// loop under each invalidation instruction and checks its defining property:
// clsweep drops every dirty line with zero DRAM traffic, clflush writes back
// exactly the dirty lines and evicts them, clwb writes back exactly the dirty
// lines but leaves them cached clean.
func TestInvalidateFamilyClosedLoop(t *testing.T) {
	const lines = 300
	loop := func(t *testing.T, relinquish func(h *Hierarchy, now uint64, a uint64) bool) (*Hierarchy, *countingSink) {
		t.Helper()
		sink := &countingSink{writebacks: map[uint64]int{}}
		h := NewHierarchy(smallConfig(), sink)
		h.SetNICWays(2)
		for i := 0; i < lines; i++ {
			a := uint64(0x100000) + uint64(i)*64
			h.NICWriteDDIO(uint64(i*3), 0, a)
			h.CPURead(uint64(i*3+1), 0, a)
			if !relinquish(h, uint64(i*3+2), a) {
				t.Fatalf("line %d: relinquish found nothing dirty", i)
			}
		}
		return h, sink
	}
	total := func(s *countingSink) int {
		n := 0
		for _, wb := range s.writebacks {
			n += wb
		}
		return n
	}

	t.Run("clsweep", func(t *testing.T) {
		h, sink := loop(t, func(h *Hierarchy, now, a uint64) bool { return h.Sweep(now, 0, a) })
		if ops, dropped := h.Sweeps(); ops != lines || dropped != lines {
			t.Fatalf("Sweeps() = (%d, %d), want (%d, %d)", ops, dropped, lines, lines)
		}
		if n := total(sink); n != 0 {
			t.Fatalf("%d writebacks despite sweeping", n)
		}
	})
	t.Run("clflush", func(t *testing.T) {
		h, sink := loop(t, func(h *Hierarchy, now, a uint64) bool { return h.Flush(now, 0, a) })
		if ops, wbs := h.Flushes(); ops != lines || wbs != lines {
			t.Fatalf("Flushes() = (%d, %d), want (%d, %d)", ops, wbs, lines, lines)
		}
		if n := total(sink); n != lines {
			t.Fatalf("clflush wrote back %d lines, want %d", n, lines)
		}
	})
	t.Run("clwb", func(t *testing.T) {
		h, sink := loop(t, func(h *Hierarchy, now, a uint64) bool { return h.CLWB(now, 0, a) })
		if ops, wbs := h.Flushes(); ops != lines || wbs != lines {
			t.Fatalf("Flushes() = (%d, %d), want (%d, %d)", ops, wbs, lines, lines)
		}
		if n := total(sink); n != lines {
			t.Fatalf("clwb wrote back %d lines, want %d", n, lines)
		}
		// CLWB keeps the copies resident and clean: rechecking a line
		// right after its writeback must find nothing dirty, add no
		// writebacks, and still hit in cache (no new demand reads). A
		// small working set keeps capacity evictions out of the picture.
		sink2 := &countingSink{writebacks: map[uint64]int{}}
		h2 := NewHierarchy(smallConfig(), sink2)
		h2.SetNICWays(2)
		for i := 0; i < 4; i++ {
			a := uint64(0x100000) + uint64(i)*64
			now := uint64(i * 5)
			h2.NICWriteDDIO(now, 0, a)
			h2.CPURead(now+1, 0, a)
			if !h2.CLWB(now+2, 0, a) {
				t.Fatalf("line %d: clwb found nothing dirty", i)
			}
			if h2.CLWB(now+3, 0, a) {
				t.Fatalf("line %d: second clwb found a dirty copy", i)
			}
			reads := sink2.reads
			h2.CPURead(now+4, 0, a)
			if sink2.reads != reads {
				t.Fatalf("line %d: clwb evicted the copy (demand read after writeback)", i)
			}
		}
		if n := total(sink2); n != 4 {
			t.Fatalf("residency loop wrote back %d lines, want 4", n)
		}
	})
}

// TestInvalidateFamilyCleanLinesFree pins the audit result for the sweep
// accounting bug class: relinquishing a clean or absent line must never
// charge a writeback, and must not inflate the dropped-dirty counter.
func TestInvalidateFamilyCleanLinesFree(t *testing.T) {
	ops := map[string]func(h *Hierarchy, now, a uint64) bool{
		"clsweep": func(h *Hierarchy, now, a uint64) bool { return h.Sweep(now, 0, a) },
		"clflush": func(h *Hierarchy, now, a uint64) bool { return h.Flush(now, 0, a) },
		"clwb":    func(h *Hierarchy, now, a uint64) bool { return h.CLWB(now, 0, a) },
	}
	for name, op := range ops {
		t.Run(name, func(t *testing.T) {
			sink := &countingSink{writebacks: map[uint64]int{}}
			h := NewHierarchy(smallConfig(), sink)
			h.SetNICWays(2)

			// A clean cached line (demand read fills clean) and a line
			// the hierarchy has never seen.
			clean, absent := uint64(0x100000), uint64(0x900000)
			h.CPURead(0, 0, clean)
			if op(h, 10, clean) {
				t.Fatal("clean line reported dirty")
			}
			if op(h, 20, absent) {
				t.Fatal("absent line reported dirty")
			}
			if len(sink.writebacks) != 0 {
				t.Fatalf("writebacks charged for clean/absent lines: %v", sink.writebacks)
			}
			sweepOps, dropped := h.Sweeps()
			flushOps, flushWBs := h.Flushes()
			if dropped != 0 || flushWBs != 0 {
				t.Fatalf("dirty-line counters inflated: dropped=%d flushWBs=%d", dropped, flushWBs)
			}
			if sweepOps+flushOps != 2 {
				t.Fatalf("op counters = %d sweeps + %d flushes, want 2 total", sweepOps, flushOps)
			}
		})
	}
}

// TestConsumedBufferLeakWithoutSweeper is the paper's §IV-A in miniature:
// the same loop without relinquish must write (almost) every consumed
// buffer line back to DRAM once the DDIO ways churn.
func TestConsumedBufferLeakWithoutSweeper(t *testing.T) {
	sink := &countingSink{writebacks: map[uint64]int{}}
	h := NewHierarchy(smallConfig(), sink)
	h.SetNICWays(2)

	// Streaming far more lines than the 2 DDIO ways hold (2 ways x 8
	// sets = 16 lines) forces consumed-buffer evictions.
	const lines = 500
	for i := 0; i < lines; i++ {
		a := uint64(0x200000) + uint64(i)*64
		h.NICWriteDDIO(uint64(i*2), 0, a)
		h.CPURead(uint64(i*2+1), 0, a)
	}
	var total int
	for _, n := range sink.writebacks {
		total += n
	}
	if total < lines/2 {
		t.Fatalf("only %d consumed-buffer writebacks for %d lines", total, lines)
	}
}

// TestRunawayBufferSpillover reproduces the §VI-C observation: without
// Sweeper, network lines re-enter the LLC outside the DDIO ways via L2
// victims, so network data occupies more of the LLC than its 2-way
// allocation.
func TestRunawayBufferSpillover(t *testing.T) {
	sink := &countingSink{writebacks: map[uint64]int{}}
	h := NewHierarchy(smallConfig(), sink)
	h.SetNICWays(2)
	isNet := func(a uint64) bool { return a >= 0x300000 && a < 0x400000 }

	// Write+consume a rotating window of buffers repeatedly; consumed
	// clean copies cascade L1->L2->LLC and stick in non-DDIO ways.
	for round := 0; round < 50; round++ {
		for i := 0; i < 64; i++ {
			a := uint64(0x300000) + uint64(i)*64
			h.NICWriteDDIO(uint64(round*1000+i*2), 0, a)
			h.CPURead(uint64(round*1000+i*2+1), 0, a)
		}
	}
	netLines := h.LLC().OccupancyByClass(isNet)
	ddioCapacity := h.LLC().Sets() * 2
	if netLines <= ddioCapacity {
		t.Fatalf("no spillover: %d net lines within %d DDIO capacity",
			netLines, ddioCapacity)
	}
}
