package cache

import (
	"math/rand"
	"testing"
)

// TestSetIndexMatchesNaiveDivMod pins the strength-reduced set indexing to
// the arithmetic it replaces: for any geometry — including the non-power-
// of-two set counts of Table I's 49152-set LLC — setIndex must equal the
// plain (addr/64) % sets it was derived from.
func TestSetIndexMatchesNaiveDivMod(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	geoms := []struct {
		sets, ways int
	}{
		{49152, 12}, // Table I LLC: 36MB 12-way, non-power-of-two sets
		{64, 8},     // L1
		{1024, 16},  // L2
		{1, 1},      // degenerate single set
		{3, 2},      // tiny odd set count
	}
	for i := 0; i < 40; i++ {
		geoms = append(geoms, struct{ sets, ways int }{
			sets: 1 + rng.Intn(200_000),
			ways: 1 + rng.Intn(32),
		})
	}
	for _, g := range geoms {
		c := NewSetAssoc("prop", uint64(g.sets)*uint64(g.ways)*lineBytes, g.ways)
		for j := 0; j < 5000; j++ {
			a := (rng.Uint64() & addrMask) &^ (lineBytes - 1)
			want := int((a / lineBytes) % uint64(g.sets))
			if got := c.setIndex(a); got != want {
				t.Fatalf("sets=%d ways=%d addr=%#x: setIndex=%d, naive=%d",
					g.sets, g.ways, a, got, want)
			}
		}
	}
}

// TestResetMatchesFreshBehaviour drives an identical operation sequence
// against a freshly built cache and a recycled one, asserting every
// observable outcome (states, victims, statistics) matches. Way masks are
// included because replacement *placement* — which way a line lands in —
// is observable through them, which is exactly what a stale-LRU Reset bug
// would corrupt.
func TestResetMatchesFreshBehaviour(t *testing.T) {
	const sets, ways = 128, 8
	run := func(c *SetAssoc, seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed))
		var log []uint64
		addr := func() uint64 {
			return uint64(rng.Intn(sets*ways*4)) * lineBytes
		}
		for i := 0; i < 20_000; i++ {
			switch rng.Intn(6) {
			case 0:
				log = append(log, uint64(c.Lookup(addr())))
			case 1:
				mask := MaskAll(ways)
				if rng.Intn(2) == 0 {
					mask = MaskRange(0, 2) // a DDIO-like narrow partition
				}
				v := c.Insert(addr(), rng.Intn(2) == 0, mask)
				log = append(log, v.Addr, boolBit(v.Dirty)|boolBit(v.Valid)<<1|boolBit(v.Merged)<<2)
			case 2:
				p, d := c.Invalidate(addr())
				log = append(log, boolBit(p)|boolBit(d)<<1)
			case 3:
				log = append(log, boolBit(c.SetDirty(addr())))
			case 4:
				log = append(log, uint64(c.Extract(addr())))
			case 5:
				log = append(log, uint64(c.Peek(addr())))
			}
		}
		log = append(log, c.Hits(), c.Misses(), uint64(c.ValidLines()))
		return log
	}

	recycled := NewSetAssoc("recycled", sets*ways*lineBytes, ways)
	run(recycled, 7) // a previous life with a different op stream
	recycled.Reset()

	fresh := NewSetAssoc("fresh", sets*ways*lineBytes, ways)
	want := run(fresh, 99)
	got := run(recycled, 99)
	if len(want) != len(got) {
		t.Fatalf("trace lengths differ: fresh %d, recycled %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trace diverges at %d: fresh %#x, recycled %#x", i, want[i], got[i])
		}
	}
	if err := recycled.checkSetInvariant(); err != nil {
		t.Fatal(err)
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BenchmarkSetIndex isolates the strength-reduced modulo on the LLC's
// non-power-of-two 49152 sets.
func BenchmarkSetIndex(b *testing.B) {
	c := NewSetAssoc("LLC", 36<<20, 12)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += c.setIndex(uint64(i) * lineBytes)
	}
	benchSink = sink
}

// BenchmarkLLCLookupHit measures a repeated single-line hit: the last-hit
// filter path that dominates poll loops.
func BenchmarkLLCLookupHit(b *testing.B) {
	c := NewSetAssoc("LLC", 36<<20, 12)
	c.Insert(4096, false, MaskAll(12))
	c.Lookup(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(4096)
	}
}

// BenchmarkLLCLookupSpread measures hits that rotate over many sets,
// defeating the last-hit filter so the MRU-hint/scan path is exercised.
func BenchmarkLLCLookupSpread(b *testing.B) {
	c := NewSetAssoc("LLC", 36<<20, 12)
	const n = 1024
	for i := uint64(0); i < n; i++ {
		c.Insert(i*lineBytes, false, MaskAll(12))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%n) * lineBytes)
	}
}

// BenchmarkSetAssocReset measures the pooled-machine reset of the full
// Table I LLC (generation bump + LRU memclr over 589k lines).
func BenchmarkSetAssocReset(b *testing.B) {
	c := NewSetAssoc("LLC", 36<<20, 12)
	for i := uint64(0); i < 589_824; i++ {
		c.Insert(i*lineBytes, i%2 == 0, MaskAll(12))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
	}
}

var benchSink int
