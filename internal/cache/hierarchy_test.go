package cache

import (
	"math/rand"
	"testing"
)

// fakeSink records DRAM traffic for hierarchy tests, with a fixed read
// latency.
type fakeSink struct {
	reads      []uint64
	readSrcs   []Requestor
	writebacks []uint64
	dmaWrites  []uint64
	readLat    uint64
}

func (s *fakeSink) DemandRead(now uint64, a uint64, src Requestor) uint64 {
	s.reads = append(s.reads, a)
	s.readSrcs = append(s.readSrcs, src)
	return now + s.readLat
}

func (s *fakeSink) WritebackEvict(now uint64, a uint64) {
	s.writebacks = append(s.writebacks, a)
}

func (s *fakeSink) DMAWrite(now uint64, a uint64) {
	s.dmaWrites = append(s.dmaWrites, a)
}

func smallConfig() Config {
	return Config{
		NCores:   2,
		L1Bytes:  64 * 8, // 2 sets x 4 ways
		L1Ways:   4,
		L1Lat:    4,
		L2Bytes:  64 * 32, // 8 sets x 4 ways
		L2Ways:   4,
		L2Lat:    14,
		LLCBytes: 64 * 96, // 8 sets x 12 ways
		LLCWays:  12,
		LLCLat:   35,
		NoCLat:   8,
	}
}

func newTestHierarchy(t *testing.T) (*Hierarchy, *fakeSink) {
	t.Helper()
	sink := &fakeSink{readLat: 100}
	return NewHierarchy(smallConfig(), sink), sink
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig(24)
	if cfg.L1Bytes != 48*1024 || cfg.L1Ways != 12 || cfg.L1Lat != 4 {
		t.Fatal("L1 config")
	}
	if cfg.L2Bytes != 1280*1024 || cfg.L2Ways != 20 || cfg.L2Lat != 14 {
		t.Fatal("L2 config")
	}
	if cfg.LLCBytes != 36*1024*1024 || cfg.LLCWays != 12 || cfg.LLCLat != 35 {
		t.Fatal("LLC config")
	}
	if cfg.NoCLat != 8 {
		t.Fatal("NoC latency")
	}
}

func TestReadLatenciesByLevel(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x10000)

	// Cold: goes to memory.
	done := h.CPURead(0, 0, a)
	wantMem := uint64(0 + 8 + 35 + 100 + 8)
	if done != wantMem {
		t.Fatalf("memory read done = %d, want %d", done, wantMem)
	}
	if len(sink.reads) != 1 || sink.readSrcs[0] != SrcCPU {
		t.Fatal("demand read not issued")
	}

	// Now L1-resident.
	if done := h.CPURead(1000, 0, a); done != 1000+4 {
		t.Fatalf("L1 hit done = %d", done)
	}

	// Evict from L1 only (fill conflicting lines), keep in L2.
	for i := uint64(1); i <= 8; i++ {
		h.CPURead(2000, 0, a+i*64*2) // same L1 sets
	}
	if h.L1(0).Peek(a) != Invalid {
		t.Skip("layout kept the line in L1; geometry-dependent")
	}
	if done := h.CPURead(3000, 0, a); done != 3000+14 {
		t.Fatalf("L2 hit done = %d", done)
	}
}

func TestLLCHitKeepsLLCCopy(t *testing.T) {
	h, _ := newTestHierarchy(t)
	a := uint64(0x20000)
	// Put a dirty line directly into the LLC (as the NIC does).
	h.NICWriteDDIO(0, 0, a)
	if h.LLC().Peek(a) != Dirty {
		t.Fatal("NIC write did not dirty the LLC line")
	}
	done := h.CPURead(100, 0, a)
	if done != 100+8+35 {
		t.Fatalf("LLC hit done = %d", done)
	}
	// Non-exclusive: the dirty copy stays in the LLC; the core got clean
	// copies.
	if h.LLC().Peek(a) != Dirty {
		t.Fatal("LLC dirty copy vanished on CPU read")
	}
	if h.L1(0).Peek(a) != Clean {
		t.Fatal("L1 copy should be clean")
	}
}

func TestCPUWriteTakesOwnership(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x30000)
	h.NICWriteDDIO(0, 0, a) // dirty in LLC
	h.CPUWrite(100, 0, a)
	if h.LLC().Peek(a) != Invalid {
		t.Fatal("write hit must extract the LLC copy")
	}
	if h.L1(0).Peek(a) != Dirty {
		t.Fatal("L1 must hold the line dirty")
	}
	if len(sink.writebacks) != 0 {
		t.Fatal("ownership transfer must not write back")
	}
}

func TestCPUWriteFullSkipsFetch(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x40000)
	done := h.CPUWriteFull(0, 0, a)
	if done != 0+4 {
		t.Fatalf("full-line store done = %d", done)
	}
	if len(sink.reads) != 0 {
		t.Fatal("full-line store fetched the line")
	}
	if h.L1(0).Peek(a) != Dirty {
		t.Fatal("line not dirty in L1")
	}
}

func TestCPUWriteFullInvalidatesStaleCopies(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x50000)
	h.NICWriteDDIO(0, 0, a) // stale dirty copy in LLC
	h.CPUWriteFull(10, 0, a)
	if h.LLC().Peek(a) != Invalid {
		t.Fatal("stale LLC copy survived a full-line overwrite")
	}
	if len(sink.writebacks) != 0 {
		t.Fatal("full overwrite must not write stale data back")
	}
}

func TestNICWriteDDIOAllocatesOnlyDDIOWays(t *testing.T) {
	h, sink := newTestHierarchy(t)
	h.SetNICWays(2)
	// Fill one LLC set completely with CPU-side dirty data via NIC writes
	// in all ways first... instead, verify way restriction directly:
	// insert 12 distinct NIC lines mapping to one set; only 2 ways may
	// hold them, so 10 evictions (of NIC dirty lines) must occur.
	sets := h.LLC().Sets()
	for i := 0; i < 12; i++ {
		a := uint64(i*sets) * 64 // same set
		h.NICWriteDDIO(uint64(i), 0, a)
	}
	occ := h.LLC().OccupancyByClass(func(uint64) bool { return true })
	if occ != 2 {
		t.Fatalf("NIC data occupies %d ways of the set, want 2", occ)
	}
	if len(sink.writebacks) != 10 {
		t.Fatalf("%d writebacks, want 10 dirty victims", len(sink.writebacks))
	}
}

func TestNICWriteDDIOUpdatesInPlaceAnywhere(t *testing.T) {
	h, sink := newTestHierarchy(t)
	h.SetNICWays(2)
	a := uint64(0x60000)
	// Get the line into a non-DDIO way: CPU dirties it, L2 victim path
	// inserts it into the LLC via the CPU mask... emulate directly:
	h.LLC().Insert(a, false, MaskRange(4, 12))
	h.NICWriteDDIO(0, 0, a)
	if h.LLC().Peek(a) != Dirty {
		t.Fatal("in-place DDIO update failed")
	}
	if len(sink.writebacks) != 0 {
		t.Fatal("in-place update must not evict")
	}
}

func TestNICWriteInvalidatesPrivateCopies(t *testing.T) {
	h, _ := newTestHierarchy(t)
	a := uint64(0x70000)
	h.NICWriteDDIO(0, 0, a)
	h.CPURead(10, 0, a) // core 0 caches it
	if h.L1(0).Peek(a) == Invalid {
		t.Fatal("setup failed")
	}
	h.NICWriteDDIO(20, 0, a) // slot reuse
	if h.L1(0).Peek(a) != Invalid || h.L2(0).Peek(a) != Invalid {
		t.Fatal("stale private copies survived NIC overwrite")
	}
}

func TestNICWriteDMA(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x80000)
	h.NICWriteDDIO(0, 0, a)
	h.CPURead(1, 0, a)
	h.NICWriteDMA(10, 0, a)
	if len(sink.dmaWrites) != 1 || sink.dmaWrites[0] != a {
		t.Fatal("DMA write not issued")
	}
	if h.LLC().Peek(a) != Invalid || h.L1(0).Peek(a) != Invalid {
		t.Fatal("DMA write must invalidate cached copies")
	}
	if len(sink.writebacks) != 0 {
		t.Fatal("full-packet DMA overwrite must not write back")
	}
}

func TestNICReadPaths(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x90000)

	// Miss everywhere: memory read attributed to the NIC.
	done := h.NICRead(0, 0, a, false)
	if len(sink.reads) != 1 || sink.readSrcs[0] != SrcNIC {
		t.Fatal("NIC demand read not issued")
	}
	if done <= 0 {
		t.Fatal("bad completion")
	}

	// LLC-resident: on-chip.
	h.LLC().Insert(a, false, MaskAll(12))
	nReads := len(sink.reads)
	done = h.NICRead(100, 0, a, false)
	if len(sink.reads) != nReads {
		t.Fatal("LLC-resident TX read went to memory")
	}
	if done != 100+8+35 {
		t.Fatalf("on-chip NIC read done = %d", done)
	}

	// Dirty in the producer's L1: forwarded on-chip under DDIO.
	b := uint64(0xA0000)
	h.CPUWriteFull(200, 1, b)
	nReads = len(sink.reads)
	h.NICRead(300, 1, b, false)
	if len(sink.reads) != nReads {
		t.Fatal("dirty private line not forwarded on-chip")
	}
	if h.L1(1).Peek(b) != Dirty {
		t.Fatal("NIC read must not change producer state")
	}
}

func TestNICReadDMAFlushesDirty(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0xB0000)
	h.CPUWriteFull(0, 0, a) // dirty TX data in L1
	h.NICRead(100, 0, a, true)
	if len(sink.writebacks) != 1 || sink.writebacks[0] != a {
		t.Fatal("DMA TX read must flush the dirty copy")
	}
	if len(sink.reads) != 1 || sink.readSrcs[0] != SrcNIC {
		t.Fatal("DMA TX read must read from memory")
	}
	if h.L1(0).Peek(a) != Invalid {
		t.Fatal("flush must invalidate")
	}
}

func TestSweepDropsDirtyWithoutWriteback(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0xC0000)
	h.NICWriteDDIO(0, 0, a)
	h.CPURead(1, 0, a) // copies in L1/L2 too
	dropped := h.Sweep(10, 0, a)
	if !dropped {
		t.Fatal("sweep did not drop a dirty line")
	}
	if h.L1(0).Peek(a) != Invalid || h.L2(0).Peek(a) != Invalid || h.LLC().Peek(a) != Invalid {
		t.Fatal("sweep left a copy")
	}
	if len(sink.writebacks) != 0 {
		t.Fatal("sweep wrote back — the whole point is that it must not")
	}
	ops, droppedDirty := h.Sweeps()
	if ops != 1 || droppedDirty != 1 {
		t.Fatalf("sweep counters: %d/%d", ops, droppedDirty)
	}
}

func TestSweepCleanLine(t *testing.T) {
	h, _ := newTestHierarchy(t)
	a := uint64(0xD0000)
	h.LLC().Insert(a, false, MaskAll(12))
	if h.Sweep(0, 0, a) {
		t.Fatal("sweeping a clean line reported a dirty drop")
	}
	_, droppedDirty := h.Sweeps()
	if droppedDirty != 0 {
		t.Fatal("clean sweep counted as dirty drop")
	}
}

func TestCLWB(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0xE0000)
	h.CPUWriteFull(0, 0, a)
	if !h.CLWB(10, 0, a) {
		t.Fatal("CLWB of dirty line reported no writeback")
	}
	if len(sink.writebacks) != 1 {
		t.Fatal("CLWB must write back")
	}
	if h.L1(0).Peek(a) != Clean {
		t.Fatal("CLWB must leave the line cached clean")
	}
	if h.CLWB(20, 0, a) {
		t.Fatal("second CLWB found dirty data")
	}
}

func TestDirtyL1VictimReachesL2(t *testing.T) {
	h, _ := newTestHierarchy(t)
	// Write more distinct lines than L1 holds in one set; dirty victims
	// must land in L2.
	sets := h.L1(0).Sets()
	var lines []uint64
	for i := 0; i < 6; i++ { // 6 > 4 ways
		a := uint64(0xF0000) + uint64(i*sets*64)
		lines = append(lines, a)
		h.CPUWriteFull(uint64(i), 0, a)
	}
	inL2 := 0
	for _, a := range lines {
		if h.L2(0).Peek(a) == Dirty {
			inL2++
		}
	}
	if inL2 != 2 {
		t.Fatalf("%d dirty victims in L2, want 2", inL2)
	}
}

func TestVictimCascadeReachesMemory(t *testing.T) {
	h, sink := newTestHierarchy(t)
	// Flood with dirty lines (all same L1 set group): victims cascade
	// L1 -> L2 -> LLC -> memory.
	for i := 0; i < 400; i++ {
		h.CPUWriteFull(uint64(i), 0, uint64(0x100000)+uint64(i)*64)
	}
	if len(sink.writebacks) == 0 {
		t.Fatal("no writebacks despite overflowing every level")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUWayMaskPartitionsLLC(t *testing.T) {
	sink := &fakeSink{readLat: 100}
	h := NewHierarchy(smallConfig(), sink)
	h.SetCPUWayMask(0, MaskRange(0, 2)) // core 0 restricted to 2 ways
	// Core 0 floods; its LLC footprint must stay within 2 ways per set.
	for i := 0; i < 400; i++ {
		h.CPUWriteFull(uint64(i), 0, uint64(0x200000)+uint64(i)*64)
	}
	sets, ways := h.LLC().Sets(), 2
	if occ := h.LLC().ValidLines(); occ > sets*ways {
		t.Fatalf("core 0 data occupies %d lines, partition allows %d", occ, sets*ways)
	}
}

func TestHierarchyPanics(t *testing.T) {
	sink := &fakeSink{}
	for name, fn := range map[string]func(){
		"no cores":    func() { NewHierarchy(Config{NCores: 0}, sink) },
		"nil sink":    func() { NewHierarchy(smallConfig(), nil) },
		"bad ways":    func() { h := NewHierarchy(smallConfig(), sink); h.SetNICWays(0) },
		"ways high":   func() { h := NewHierarchy(smallConfig(), sink); h.SetNICWays(13) },
		"empty nmask": func() { h := NewHierarchy(smallConfig(), sink); h.SetNICWayMask(0) },
		"empty cmask": func() { h := NewHierarchy(smallConfig(), sink); h.SetCPUWayMask(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlowCountersBalance(t *testing.T) {
	h, _ := newTestHierarchy(t)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 5000; op++ {
		core := rng.Intn(2)
		a := uint64(rng.Intn(4096)) * 64
		switch rng.Intn(5) {
		case 0:
			h.CPURead(uint64(op), core, a)
		case 1:
			h.CPUWrite(uint64(op), core, a)
		case 2:
			h.CPUWriteFull(uint64(op), core, a)
		case 3:
			h.NICWriteDDIO(uint64(op), core, a)
		case 4:
			h.Sweep(uint64(op), core, a)
		}
	}
	f := h.Flow()
	if f.LLCInserts != f.LLCMerges+f.LLCEvictDirty+f.LLCEvictClean+holes(h, f) {
		// Inserts that filled invalid ways are the remainder; just check
		// the parts never exceed the whole.
		if f.LLCMerges+f.LLCEvictDirty+f.LLCEvictClean > f.LLCInserts {
			t.Fatalf("flow counters inconsistent: %+v", f)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func holes(h *Hierarchy, f FlowStats) uint64 {
	// Placeholder for readability in the balance check above.
	return f.LLCInserts - f.LLCMerges - f.LLCEvictDirty - f.LLCEvictClean
}

// Randomized integration property: whatever the op sequence, cache
// structure invariants hold and sweeps never generate writebacks.
func TestHierarchyRandomOpsInvariant(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sink := &fakeSink{readLat: 50}
		h := NewHierarchy(smallConfig(), sink)
		h.SetNICWays(2)
		rng := rand.New(rand.NewSource(seed))
		wbBeforeSweep := 0
		for op := 0; op < 3000; op++ {
			core := rng.Intn(2)
			a := uint64(rng.Intn(1024)) * 64
			switch rng.Intn(8) {
			case 0, 1:
				h.CPURead(uint64(op), core, a)
			case 2:
				h.CPUWrite(uint64(op), core, a)
			case 3:
				h.CPUWriteFull(uint64(op), core, a)
			case 4, 5:
				h.NICWriteDDIO(uint64(op), core, a)
			case 6:
				h.NICRead(uint64(op), core, a, rng.Intn(2) == 0)
			case 7:
				wbBeforeSweep = len(sink.writebacks)
				h.Sweep(uint64(op), core, a)
				if len(sink.writebacks) != wbBeforeSweep {
					t.Fatalf("seed %d: sweep produced a writeback", seed)
				}
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNICWriteIDIOLandsInL2(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x300000)
	h.NICWriteIDIO(0, 0, a)
	if h.L2(0).Peek(a) != Dirty {
		t.Fatal("IDIO write must land dirty in the owner's L2")
	}
	if len(sink.dmaWrites) != 0 || len(sink.reads) != 0 {
		t.Fatal("IDIO injection touched DRAM")
	}
	// Re-delivery to the same slot updates in place.
	h.NICWriteIDIO(10, 0, a)
	if h.L2(0).Peek(a) != Dirty {
		t.Fatal("IDIO re-delivery lost the line")
	}
	if len(sink.writebacks) != 0 {
		t.Fatal("full-line overwrite must not write back")
	}
}

func TestNICWriteIDIOAbsorbsStaleLLCCopy(t *testing.T) {
	h, sink := newTestHierarchy(t)
	a := uint64(0x310000)
	h.LLC().Insert(a, true, MaskAll(12)) // stale dirty copy
	h.NICWriteIDIO(0, 0, a)
	if h.LLC().Peek(a) != Invalid {
		t.Fatal("stale LLC copy survived")
	}
	if len(sink.writebacks) != 0 {
		t.Fatal("absorbing an overwritten copy must not write back")
	}
}
