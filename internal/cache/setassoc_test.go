package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lineAddr(i uint64) uint64 { return i * 64 }

func TestMaskHelpers(t *testing.T) {
	if MaskAll(0) != 0 {
		t.Fatal("MaskAll(0)")
	}
	if MaskAll(3) != 0b111 {
		t.Fatalf("MaskAll(3) = %b", MaskAll(3))
	}
	if MaskAll(32) != ^WayMask(0) {
		t.Fatal("MaskAll(32)")
	}
	if MaskRange(2, 5) != 0b11100 {
		t.Fatalf("MaskRange(2,5) = %b", MaskRange(2, 5))
	}
	if MaskRange(0, 12).Count() != 12 || MaskRange(4, 8).Count() != 4 {
		t.Fatal("Count")
	}
}

func TestNewSetAssocGeometry(t *testing.T) {
	c := NewSetAssoc("t", 36*1024*1024, 12)
	if c.Sets() != 49152 || c.Ways() != 12 {
		t.Fatalf("geometry %d x %d", c.Sets(), c.Ways())
	}
	if c.CapacityBytes() != 36*1024*1024 {
		t.Fatalf("capacity %d", c.CapacityBytes())
	}
	if c.Name() != "t" {
		t.Fatal("name")
	}
}

func TestNewSetAssocPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero ways":     func() { NewSetAssoc("x", 1024, 0) },
		"too many ways": func() { NewSetAssoc("x", 64*64, 33) },
		"indivisible":   func() { NewSetAssoc("x", 64*7, 2) },
		"empty":         func() { NewSetAssoc("x", 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLookupInsertHitMiss(t *testing.T) {
	c := NewSetAssoc("t", 64*8, 2) // 4 sets, 2 ways
	a := lineAddr(0)
	if c.Lookup(a) != Invalid {
		t.Fatal("hit in empty cache")
	}
	v := c.Insert(a, false, MaskAll(2))
	if v.Valid || v.Merged {
		t.Fatalf("insert into empty set returned %+v", v)
	}
	if c.Lookup(a) != Clean {
		t.Fatal("miss after insert")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.MissRatio() != 0.5 {
		t.Fatalf("miss ratio %g", c.MissRatio())
	}
}

func TestInsertDirtyAndMerge(t *testing.T) {
	c := NewSetAssoc("t", 64*8, 2)
	a := lineAddr(4)
	c.Insert(a, false, MaskAll(2))
	v := c.Insert(a, true, MaskAll(2))
	if !v.Merged || v.Valid {
		t.Fatalf("re-insert should merge, got %+v", v)
	}
	if c.Peek(a) != Dirty {
		t.Fatal("merge must OR dirtiness")
	}
	// Merging a clean insert over a dirty line must not lose dirtiness.
	v = c.Insert(a, false, MaskAll(2))
	if !v.Merged || c.Peek(a) != Dirty {
		t.Fatal("clean merge cleared dirty state")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewSetAssoc("t", 64*4, 4) // 1 set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.Insert(lineAddr(i), false, MaskAll(4))
	}
	c.Lookup(lineAddr(0)) // refresh 0: LRU is now line 1
	v := c.Insert(lineAddr(9), false, MaskAll(4))
	if !v.Valid || v.Addr != lineAddr(1) {
		t.Fatalf("expected line 1 evicted, got %+v", v)
	}
	if c.Peek(lineAddr(0)) == Invalid {
		t.Fatal("recently used line was evicted")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := NewSetAssoc("t", 64*2, 2) // 1 set, 2 ways
	c.Insert(lineAddr(0), true, MaskAll(2))
	c.Insert(lineAddr(1), false, MaskAll(2))
	v := c.Insert(lineAddr(2), false, MaskAll(2))
	if !v.Valid || !v.Dirty || v.Addr != lineAddr(0) {
		t.Fatalf("dirty victim not reported: %+v", v)
	}
}

func TestWayMaskRestrictsAllocation(t *testing.T) {
	c := NewSetAssoc("t", 64*8, 8) // 1 set, 8 ways
	// Fill all ways with distinct lines.
	for i := uint64(0); i < 8; i++ {
		c.Insert(lineAddr(i), false, MaskAll(8))
	}
	// Restricted insert may only displace ways 0-1.
	v := c.Insert(lineAddr(100), false, MaskAll(2))
	if !v.Valid || v.Addr > lineAddr(1) {
		t.Fatalf("masked insert displaced way outside mask: %+v", v)
	}
	// The other 6 lines must be untouched.
	for i := uint64(2); i < 8; i++ {
		if c.Peek(lineAddr(i)) == Invalid {
			t.Fatalf("line %d outside mask evicted", i)
		}
	}
}

func TestWayMaskUpdateInPlaceIgnoresMask(t *testing.T) {
	c := NewSetAssoc("t", 64*8, 8)
	c.Insert(lineAddr(5), false, MaskAll(8)) // lands in some way
	// Re-inserting with a mask that may not cover its way still merges.
	v := c.Insert(lineAddr(5), true, MaskAll(1))
	if !v.Merged {
		t.Fatalf("update-in-place must ignore the mask, got %+v", v)
	}
}

func TestEmptyMaskPanics(t *testing.T) {
	c := NewSetAssoc("t", 64*2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty mask")
		}
	}()
	c.Insert(lineAddr(0), false, 0)
}

func TestInvalidate(t *testing.T) {
	c := NewSetAssoc("t", 64*2, 2)
	c.Insert(lineAddr(0), true, MaskAll(2))
	present, dirty := c.Invalidate(lineAddr(0))
	if !present || !dirty {
		t.Fatalf("invalidate = %v,%v", present, dirty)
	}
	if c.Peek(lineAddr(0)) != Invalid {
		t.Fatal("line still present")
	}
	present, dirty = c.Invalidate(lineAddr(0))
	if present || dirty {
		t.Fatal("double invalidate reported presence")
	}
}

func TestSetDirtyAndMakeClean(t *testing.T) {
	c := NewSetAssoc("t", 64*2, 2)
	if c.SetDirty(lineAddr(0)) {
		t.Fatal("SetDirty on absent line")
	}
	c.Insert(lineAddr(0), false, MaskAll(2))
	if !c.SetDirty(lineAddr(0)) || c.Peek(lineAddr(0)) != Dirty {
		t.Fatal("SetDirty failed")
	}
	present, wasDirty := c.MakeClean(lineAddr(0))
	if !present || !wasDirty || c.Peek(lineAddr(0)) != Clean {
		t.Fatal("MakeClean failed")
	}
	present, wasDirty = c.MakeClean(lineAddr(1))
	if present || wasDirty {
		t.Fatal("MakeClean on absent line")
	}
}

func TestExtract(t *testing.T) {
	c := NewSetAssoc("t", 64*2, 2)
	c.Insert(lineAddr(0), true, MaskAll(2))
	if st := c.Extract(lineAddr(0)); st != Dirty {
		t.Fatalf("Extract = %v", st)
	}
	if c.Peek(lineAddr(0)) != Invalid {
		t.Fatal("extracted line still present")
	}
	if st := c.Extract(lineAddr(0)); st != Invalid {
		t.Fatal("double extract")
	}
}

func TestOccupancyHelpers(t *testing.T) {
	c := NewSetAssoc("t", 64*8, 2)
	c.Insert(lineAddr(0), false, MaskAll(2))
	c.Insert(lineAddr(1), true, MaskAll(2))
	c.Insert(lineAddr(2), false, MaskAll(2))
	if c.ValidLines() != 3 {
		t.Fatalf("ValidLines = %d", c.ValidLines())
	}
	n := c.OccupancyByClass(func(a uint64) bool { return a >= lineAddr(1) })
	if n != 2 {
		t.Fatalf("OccupancyByClass = %d", n)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "Invalid" || Clean.String() != "Clean" || Dirty.String() != "Dirty" {
		t.Fatal("state labels")
	}
}

// Property: under arbitrary operation sequences, no set ever holds two
// copies of the same line and every line sits in its home set.
func TestSetInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewSetAssoc("t", 64*64, 4) // 16 sets
		for op := 0; op < 2000; op++ {
			a := lineAddr(uint64(rng.Intn(128)))
			switch rng.Intn(6) {
			case 0:
				c.Lookup(a)
			case 1:
				c.Insert(a, rng.Intn(2) == 0, MaskAll(1+rng.Intn(4)))
			case 2:
				c.Invalidate(a)
			case 3:
				c.SetDirty(a)
			case 4:
				c.Extract(a)
			case 5:
				c.MakeClean(a)
			}
		}
		return c.checkSetInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cache never holds more lines than its capacity and lookups
// after insert always hit until an intervening eviction or invalidation.
func TestCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewSetAssoc("t", 64*32, 4)
		for op := 0; op < 500; op++ {
			c.Insert(lineAddr(uint64(rng.Intn(1000))), true, MaskAll(4))
			if c.ValidLines() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
