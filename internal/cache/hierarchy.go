package cache

import (
	"fmt"

	"sweeper/internal/obs"
)

// Requestor identifies who issued a DRAM demand read.
type Requestor uint8

const (
	// SrcCPU marks demand reads from application cores.
	SrcCPU Requestor = iota
	// SrcNIC marks demand reads from the NIC (TX buffer fetches).
	SrcNIC
)

// MemSink is the memory side of the hierarchy. The machine implements it on
// top of the DDR4 model, classifying each transaction into the paper's
// breakdown categories by requestor and address class.
type MemSink interface {
	// DemandRead fetches a line from DRAM starting at cycle now and
	// returns the completion cycle.
	DemandRead(now uint64, a uint64, src Requestor) (done uint64)
	// WritebackEvict writes a dirty evicted line back to DRAM
	// (fire-and-forget for the evictor, but it consumes DRAM bandwidth).
	WritebackEvict(now uint64, a uint64)
	// DMAWrite is a NIC packet write straight to DRAM (conventional DMA
	// injection).
	DMAWrite(now uint64, a uint64)
}

// FuncMemSink is the functional (untimed) memory side of the hierarchy,
// used during fast-forward intervals: accesses update occupancy counters and
// row-buffer state but never advance bus or bank timing. A sink that also
// implements FuncMemSink can be driven in fast-forward via SetFastForward;
// sinks that don't (e.g. test fakes) keep working for timed simulation.
type FuncMemSink interface {
	// FuncDemandRead records a demand read functionally.
	FuncDemandRead(a uint64, src Requestor)
	// FuncWriteback records a writeback functionally.
	FuncWriteback(a uint64)
	// FuncDMAWrite records a NIC DMA packet write functionally.
	FuncDMAWrite(a uint64)
}

// Config sizes the hierarchy. Defaults follow the paper's Table I.
type Config struct {
	NCores int

	L1Bytes uint64
	L1Ways  int
	L1Lat   uint64

	L2Bytes uint64
	L2Ways  int
	L2Lat   uint64

	LLCBytes uint64
	LLCWays  int
	LLCLat   uint64

	// NoCLat is the one-way crossbar latency between a core and the
	// LLC/memory-controller side of the chip.
	NoCLat uint64
}

// DefaultConfig returns the Table I hierarchy: 48KB/12w L1d (4 cyc),
// 1.25MB/20w L2 (14 cyc), shared 36MB/12w non-inclusive LLC (35 cyc),
// 8-cycle crossbar.
func DefaultConfig(nCores int) Config {
	return Config{
		NCores:   nCores,
		L1Bytes:  48 * 1024,
		L1Ways:   12,
		L1Lat:    4,
		L2Bytes:  1280 * 1024,
		L2Ways:   20,
		L2Lat:    14,
		LLCBytes: 36 * 1024 * 1024,
		LLCWays:  12,
		LLCLat:   35,
		NoCLat:   8,
	}
}

// Hierarchy is the full simulated cache system: per-core private L1d and L2
// plus the shared LLC. The LLC is non-inclusive and operates as a victim
// cache for L2 evictions (Table I); NIC DDIO writes allocate directly into
// the LLC's DDIO ways.
type Hierarchy struct {
	cfg  Config
	l1   []*SetAssoc
	l2   []*SetAssoc
	llc  *SetAssoc
	sink MemSink

	// Fast-forward state: while ff is set, every memory-side transaction is
	// routed to funcSink (functional warming) and demand reads complete at
	// the flat ffMemLat instead of modeled DRAM timing. Tag, LRU and
	// dirtiness transitions are identical to timed operation, so the
	// hierarchy's contents stay representative across fast-forward spans.
	// ffLatFn, when set, overrides the flat latency per address so tiered
	// memory stamps each page's owning tier's unloaded latency.
	ff       bool
	funcSink FuncMemSink
	ffMemLat uint64
	ffLatFn  func(a uint64) uint64

	// nicMask restricts NIC write-allocations (the DDIO ways); cpuMask
	// restricts CPU-side LLC fills per core (all ways by default, a
	// partition in the §VI-E collocation scenarios).
	nicMask WayMask
	cpuMask []WayMask

	sweeps     uint64
	sweptDirty uint64
	flushes    uint64
	flushWBs   uint64

	flow FlowStats
}

// FlowStats counts line movements through the shared cache, for diagnosing
// occupancy dynamics in tests and experiments.
type FlowStats struct {
	// LLCInserts counts insertion attempts; LLCMerges the subset that
	// updated an already-present line in place; LLCEvictDirty/Clean the
	// displaced victims by dirtiness.
	LLCInserts    uint64
	LLCMerges     uint64
	LLCEvictDirty uint64
	LLCEvictClean uint64
	// L2VictimDirty/Clean classify L2 victim-cache spills into the LLC.
	L2VictimDirty uint64
	L2VictimClean uint64
}

// NewHierarchy builds the hierarchy over the given memory sink.
func NewHierarchy(cfg Config, sink MemSink) *Hierarchy {
	if cfg.NCores <= 0 {
		panic("cache: NCores must be positive")
	}
	if sink == nil {
		panic("cache: nil MemSink")
	}
	h := &Hierarchy{
		cfg:     cfg,
		l1:      make([]*SetAssoc, cfg.NCores),
		l2:      make([]*SetAssoc, cfg.NCores),
		llc:     NewSetAssoc("LLC", cfg.LLCBytes, cfg.LLCWays),
		sink:    sink,
		nicMask: MaskAll(cfg.LLCWays),
		cpuMask: make([]WayMask, cfg.NCores),
	}
	for i := 0; i < cfg.NCores; i++ {
		h.l1[i] = NewSetAssoc(fmt.Sprintf("L1d[%d]", i), cfg.L1Bytes, cfg.L1Ways)
		h.l2[i] = NewSetAssoc(fmt.Sprintf("L2[%d]", i), cfg.L2Bytes, cfg.L2Ways)
		h.cpuMask[i] = MaskAll(cfg.LLCWays)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Reset returns the hierarchy to its just-constructed state: every cache
// empty (O(1) generation bumps, not line-by-line), way masks back to
// unrestricted, and all counters zeroed. Machine pooling uses this to reuse
// the ~15MB of cache arrays across probes.
func (h *Hierarchy) Reset() {
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
		h.cpuMask[i] = MaskAll(h.cfg.LLCWays)
	}
	h.llc.Reset()
	h.nicMask = MaskAll(h.cfg.LLCWays)
	h.sweeps, h.sweptDirty = 0, 0
	h.flushes, h.flushWBs = 0, 0
	h.flow = FlowStats{}
	h.ff, h.ffMemLat, h.ffLatFn = false, 0, nil
}

// SetFastForward switches the hierarchy between timed and functional memory
// access. While on, demand reads return now + memLat (callers pass an
// unloaded-DRAM estimate) and all memory-side traffic goes through the
// sink's FuncMemSink methods; enabling fast-forward on a sink that does not
// implement FuncMemSink panics.
func (h *Hierarchy) SetFastForward(on bool, memLat uint64) {
	if on && h.funcSink == nil {
		fs, ok := h.sink.(FuncMemSink)
		if !ok {
			panic(fmt.Sprintf("cache: sink %T does not implement FuncMemSink", h.sink))
		}
		h.funcSink = fs
	}
	h.ff = on
	h.ffMemLat = 0
	if on {
		h.ffMemLat = memLat
	} else {
		h.ffLatFn = nil
	}
}

// SetFastForwardLatency installs a per-address unloaded-latency function for
// fast-forward demand reads, so a tiered memory system stamps NVM-resident
// pages with their own tier's latency instead of the flat DRAM estimate.
// Call it after SetFastForward(true, ...); disabling fast-forward clears it.
func (h *Hierarchy) SetFastForwardLatency(fn func(a uint64) uint64) {
	h.ffLatFn = fn
}

// FastForwarding reports whether the hierarchy is in functional mode.
func (h *Hierarchy) FastForwarding() bool { return h.ff }

// demandRead routes a miss to the memory sink: timed when detailed,
// functional at a flat latency when fast-forwarding.
func (h *Hierarchy) demandRead(now uint64, a uint64, src Requestor) uint64 {
	if h.ff {
		h.funcSink.FuncDemandRead(a, src)
		if h.ffLatFn != nil {
			return now + h.ffLatFn(a)
		}
		return now + h.ffMemLat
	}
	return h.sink.DemandRead(now, a, src)
}

// writebackEvict routes a dirty-victim writeback to the memory sink.
func (h *Hierarchy) writebackEvict(now uint64, a uint64) {
	if h.ff {
		h.funcSink.FuncWriteback(a)
		return
	}
	h.sink.WritebackEvict(now, a)
}

// dmaWrite routes a NIC DMA packet write to the memory sink.
func (h *Hierarchy) dmaWrite(now uint64, a uint64) {
	if h.ff {
		h.funcSink.FuncDMAWrite(a)
		return
	}
	h.sink.DMAWrite(now, a)
}

// LLC exposes the shared cache for occupancy checks and statistics.
func (h *Hierarchy) LLC() *SetAssoc { return h.llc }

// L1 and L2 expose a core's private caches for tests and statistics.
func (h *Hierarchy) L1(core int) *SetAssoc { return h.l1[core] }
func (h *Hierarchy) L2(core int) *SetAssoc { return h.l2[core] }

// SetNICWays restricts NIC write-allocation to the first n LLC ways — the
// DDIO way configuration of §II-A.
func (h *Hierarchy) SetNICWays(n int) {
	if n <= 0 || n > h.cfg.LLCWays {
		panic(fmt.Sprintf("cache: DDIO ways %d out of range [1,%d]", n, h.cfg.LLCWays))
	}
	h.nicMask = MaskAll(n)
}

// SetNICWayMask sets an arbitrary NIC allocation mask.
func (h *Hierarchy) SetNICWayMask(m WayMask) {
	if m == 0 {
		panic("cache: empty NIC way mask")
	}
	if obs.ProbesEnabled && m>>h.cfg.LLCWays != 0 {
		obs.Failf("cache: NIC way mask %#x names ways beyond the %d-way LLC",
			uint32(m), h.cfg.LLCWays)
	}
	h.nicMask = m
}

// SetCPUWayMask restricts CPU-side LLC fills for one core, implementing the
// disjoint tenant partitions of the collocation study.
func (h *Hierarchy) SetCPUWayMask(core int, m WayMask) {
	if m == 0 {
		panic("cache: empty CPU way mask")
	}
	if obs.ProbesEnabled && m>>h.cfg.LLCWays != 0 {
		obs.Failf("cache: core %d way mask %#x names ways beyond the %d-way LLC",
			core, uint32(m), h.cfg.LLCWays)
	}
	h.cpuMask[core] = m
}

// NICWayMask returns the current DDIO allocation mask.
func (h *Hierarchy) NICWayMask() WayMask { return h.nicMask }

// RegisterMetrics exposes shared-cache activity and the live DDIO way
// pressure to the observability registry.
func (h *Hierarchy) RegisterMetrics(r *obs.Registry) {
	r.Counter("llc.hits", h.llc.Hits)
	r.Counter("llc.misses", h.llc.Misses)
	r.Counter("llc.sweep_ops", func() uint64 { return h.sweeps })
	r.Counter("llc.sweep_dropped_dirty", func() uint64 { return h.sweptDirty })
	r.Counter("llc.flush_ops", func() uint64 { return h.flushes })
	r.Counter("llc.flush_writebacks", func() uint64 { return h.flushWBs })
	r.Gauge("llc.ddio_ways", func(uint64) float64 { return float64(h.nicMask.Count()) })
}

// Flow returns a snapshot of cumulative line-movement counters.
func (h *Hierarchy) Flow() FlowStats { return h.flow }

// Sweeps returns how many sweep operations were executed and how many dirty
// lines they dropped (each dropped line is one 64B writeback avoided).
func (h *Hierarchy) Sweeps() (ops, droppedDirty uint64) {
	return h.sweeps, h.sweptDirty
}

// Flushes returns how many flush-class operations (clflush/clwb) were
// executed and how many writebacks they issued.
func (h *Hierarchy) Flushes() (ops, writebacks uint64) {
	return h.flushes, h.flushWBs
}

// llcInsert places a line into the LLC under mask, writing back any dirty
// victim it displaces.
func (h *Hierarchy) llcInsert(now uint64, a uint64, dirty bool, mask WayMask) {
	v := h.llc.Insert(a, dirty, mask)
	h.flow.LLCInserts++
	switch {
	case v.Merged:
		h.flow.LLCMerges++
	case v.Valid && v.Dirty:
		h.flow.LLCEvictDirty++
		h.writebackEvict(now, v.Addr)
	case v.Valid:
		h.flow.LLCEvictClean++
	}
}

// l2Insert places a line into a core's L2, spilling the victim into the LLC
// (the victim-cache fill path).
func (h *Hierarchy) l2Insert(now uint64, core int, a uint64, dirty bool) {
	v := h.l2[core].Insert(a, dirty, MaskAll(h.cfg.L2Ways))
	if !v.Valid {
		return
	}
	if v.Dirty {
		h.flow.L2VictimDirty++
	} else {
		h.flow.L2VictimClean++
	}
	// Dirty victims must reach the LLC; clean victims are also cached
	// (victim-cache behaviour) so later reads can hit on-chip.
	h.llcInsert(now, v.Addr, v.Dirty, h.cpuMask[core])
}

// l1Insert places a line into a core's L1, spilling dirty victims into L2.
func (h *Hierarchy) l1Insert(now uint64, core int, a uint64, dirty bool) {
	v := h.l1[core].Insert(a, dirty, MaskAll(h.cfg.L1Ways))
	if !v.Valid {
		return
	}
	if v.Dirty {
		if !h.l2[core].SetDirty(v.Addr) {
			h.l2Insert(now, core, v.Addr, true)
		}
	}
	// Clean L1 victims are dropped; L2 usually still holds the line.
}

// fill brings a line into a core's L1+L2 after a fetch from the LLC or
// DRAM. Dirtiness (from a store, or carried up from an exclusive LLC hit)
// lives in exactly one place: l1Dirty when the core just wrote the line,
// l2Dirty when a dirty LLC line migrated up.
func (h *Hierarchy) fill(now uint64, core int, a uint64, l1Dirty, l2Dirty bool) {
	h.l2Insert(now, core, a, l2Dirty)
	h.l1Insert(now, core, a, l1Dirty)
}

// CPURead performs a demand load by core for line a starting at cycle now
// and returns the completion cycle.
//
// On an LLC hit the core receives a clean copy and the LLC line — with its
// dirtiness — stays put (non-inclusive, non-exclusive LLC). This is the
// paper's central dynamic: a consumed RX buffer line remains dirty in the
// LLC where the NIC wrote it, so when later NIC allocations displace it,
// the eviction triggers the wasteful writeback Sweeper exists to remove.
// (An exclusive LLC would instead migrate the dirty line into the large
// private L2s, where slot recycling silently overwrites it — a dynamic
// under which the leaks the paper measures barely occur.)
func (h *Hierarchy) CPURead(now uint64, core int, a uint64) uint64 {
	l1 := h.l1[core]
	if l1.lookupFast(a) {
		return now + h.cfg.L1Lat
	}
	if l1.Lookup(a) != Invalid {
		return now + h.cfg.L1Lat
	}
	if h.l2[core].Lookup(a) != Invalid {
		h.l1Insert(now, core, a, false)
		return now + h.cfg.L2Lat
	}
	if h.llc.Lookup(a) != Invalid {
		h.fill(now, core, a, false, false)
		return now + h.cfg.NoCLat + h.cfg.LLCLat
	}
	done := h.demandRead(now+h.cfg.NoCLat+h.cfg.LLCLat, a, SrcCPU)
	done += h.cfg.NoCLat
	h.fill(now, core, a, false, false)
	return done
}

// CPUWrite performs a store by core for line a (write-allocate) and returns
// the completion cycle. Ownership moves to the core's L1: stale copies below
// are absorbed so a line is dirty in at most one place.
func (h *Hierarchy) CPUWrite(now uint64, core int, a uint64) uint64 {
	l1 := h.l1[core]
	if l1.setDirtyFast(a) || l1.SetDirty(a) {
		return now + h.cfg.L1Lat
	}
	if h.l2[core].Lookup(a) != Invalid {
		// Promote to L1 dirty; L2 keeps its copy (it will be merged on
		// the L1 victim's way back down).
		h.l1Insert(now, core, a, true)
		return now + h.cfg.L2Lat
	}
	if h.llc.Lookup(a) != Invalid {
		// Take ownership: the LLC copy migrates up and the dirtiest
		// data lives only in L1.
		h.llc.Extract(a)
		h.fill(now, core, a, true, false)
		return now + h.cfg.NoCLat + h.cfg.LLCLat
	}
	done := h.demandRead(now+h.cfg.NoCLat+h.cfg.LLCLat, a, SrcCPU)
	done += h.cfg.NoCLat
	h.fill(now, core, a, true, false)
	return done
}

// CPUWriteFull performs a full-line store (streaming/write-combining store,
// as log-structured stores use for appends and cores use for response
// construction): the line is allocated dirty in L1 without fetching its old
// contents from below, and any stale copies are invalidated without
// writeback because every byte is overwritten.
func (h *Hierarchy) CPUWriteFull(now uint64, core int, a uint64) uint64 {
	l1 := h.l1[core]
	if l1.setDirtyFast(a) || l1.SetDirty(a) {
		return now + h.cfg.L1Lat
	}
	h.l2[core].Invalidate(a)
	h.llc.Invalidate(a)
	h.l1Insert(now, core, a, true)
	return now + h.cfg.L1Lat
}

// RemoteRead serves a line request that arrived over the cluster fabric
// from a peer node. The home node's memory side looks exactly like a local
// application access minus the private caches (the requester is not a local
// core): probe the shared LLC, miss to DRAM through the sink, and install
// the fetched line under the full way mask so remote-hot lines stay cached
// at their home. write marks the line dirty at the home node — ownership
// never migrates across the fabric, so the eventual eviction writes it back
// locally. Returns the completion cycle at the home memory system; fabric
// latency is the caller's to add.
func (h *Hierarchy) RemoteRead(now uint64, a uint64, write bool) uint64 {
	if h.llc.Lookup(a) != Invalid {
		if write {
			h.llc.SetDirty(a)
		}
		return now + h.cfg.NoCLat + h.cfg.LLCLat
	}
	done := h.demandRead(now+h.cfg.NoCLat+h.cfg.LLCLat, a, SrcCPU)
	h.llcInsert(now, a, write, MaskAll(h.cfg.LLCWays))
	return done
}

// NICWriteDDIO injects one full line of an incoming packet through DDIO:
// update-in-place on LLC hit, write-allocate into the DDIO ways on miss
// (evicting — and writing back — a dirty victim), never touching DRAM for
// the payload itself. Stale copies in the owning core's private caches are
// invalidated without writeback because the line is fully overwritten.
func (h *Hierarchy) NICWriteDDIO(now uint64, owner int, a uint64) {
	h.l1[owner].Invalidate(a)
	h.l2[owner].Invalidate(a)
	if h.llc.SetDirty(a) {
		return
	}
	h.llcInsert(now, a, true, h.nicMask)
}

// NICWriteIDIO injects one full line directly into the owning core's
// private L2 (IDIO-style steering, the paper's related work [1]): the
// packet enjoys the L2's capacity in addition to the LLC, at the price of
// displacing the core's own working set. Victims cascade into the LLC as
// usual.
func (h *Hierarchy) NICWriteIDIO(now uint64, owner int, a uint64) {
	h.l1[owner].Invalidate(a)
	// Full overwrite: absorb any stale LLC copy without writeback.
	h.llc.Invalidate(a)
	if h.l2[owner].SetDirty(a) {
		return
	}
	h.l2Insert(now, owner, a, true)
}

// NICWriteDMA injects one line via conventional DMA: cached copies are
// invalidated (no writeback — the line is fully overwritten) and the payload
// is written to DRAM.
func (h *Hierarchy) NICWriteDMA(now uint64, owner int, a uint64) {
	h.l1[owner].Invalidate(a)
	h.l2[owner].Invalidate(a)
	h.llc.Invalidate(a)
	h.dmaWrite(now, a)
}

// NICRead fetches one TX line for transmission, returning the completion
// cycle. Under DDIO the read is served from the owning core's private caches
// or the LLC when possible; under conventional DMA, dirty cached copies are
// first flushed to DRAM and the NIC reads from memory.
func (h *Hierarchy) NICRead(now uint64, owner int, a uint64, dma bool) uint64 {
	if dma {
		return h.nicReadDMA(now, owner, a)
	}
	if h.l1[owner].Peek(a) != Invalid || h.l2[owner].Peek(a) != Invalid {
		// Coherent on-chip forward from the producing core.
		return now + h.cfg.NoCLat + h.cfg.LLCLat
	}
	if h.llc.Lookup(a) != Invalid {
		return now + h.cfg.NoCLat + h.cfg.LLCLat
	}
	return h.demandRead(now+h.cfg.NoCLat+h.cfg.LLCLat, a, SrcNIC)
}

func (h *Hierarchy) nicReadDMA(now uint64, owner int, a uint64) uint64 {
	// Flush any dirty copy so DRAM holds the data the NIC will read.
	flushed := false
	if _, d := h.l1[owner].Invalidate(a); d {
		flushed = true
	}
	if _, d := h.l2[owner].Invalidate(a); d {
		flushed = true
	}
	if _, d := h.llc.Invalidate(a); d {
		flushed = true
	}
	t := now
	if flushed {
		h.writebackEvict(t, a)
		t += h.cfg.NoCLat // doorbell-to-flush serialization
	}
	return h.demandRead(t+h.cfg.NoCLat, a, SrcNIC)
}

// Sweep executes one clsweep for line a owned by core: every copy in the
// hierarchy is invalidated and no writeback is issued, even for dirty
// copies. This is Sweeper's hardware primitive (§V-B). It reports whether a
// dirty copy was dropped (one writeback avoided).
func (h *Hierarchy) Sweep(now uint64, owner int, a uint64) bool {
	_ = now
	h.sweeps++
	dropped := false
	if _, d := h.l1[owner].Invalidate(a); d {
		dropped = true
	}
	if _, d := h.l2[owner].Invalidate(a); d {
		dropped = true
	}
	if _, d := h.llc.Invalidate(a); d {
		dropped = true
	}
	if dropped {
		h.sweptDirty++
	}
	return dropped
}

// Flush executes one clflush for line a: every copy in the hierarchy is
// invalidated and a dirty copy is written back to memory first — the baseline
// x86 semantics the paper contrasts clsweep against. A clean or absent line
// is invalidated for free: no writeback is charged. It reports whether a
// writeback was issued.
func (h *Hierarchy) Flush(now uint64, owner int, a uint64) bool {
	h.flushes++
	dirty := false
	if _, d := h.l1[owner].Invalidate(a); d {
		dirty = true
	}
	if _, d := h.l2[owner].Invalidate(a); d {
		dirty = true
	}
	if _, d := h.llc.Invalidate(a); d {
		dirty = true
	}
	if dirty {
		h.flushWBs++
		h.writebackEvict(now, a)
	}
	return dirty
}

// CLWB writes line a back to DRAM if any level holds it dirty, leaving the
// copies clean in place — the x86 CLWB semantics used by the paper's OS
// page-recycling mitigation (§V-B). It reports whether a writeback was
// issued.
func (h *Hierarchy) CLWB(now uint64, owner int, a uint64) bool {
	h.flushes++
	dirty := false
	if _, d := h.l1[owner].MakeClean(a); d {
		dirty = true
	}
	if _, d := h.l2[owner].MakeClean(a); d {
		dirty = true
	}
	if _, d := h.llc.MakeClean(a); d {
		dirty = true
	}
	if dirty {
		h.flushWBs++
		h.writebackEvict(now, a)
	}
	return dirty
}

// CheckInvariants validates internal cache consistency (no duplicate tags,
// correct set mapping) across every level; used by tests.
func (h *Hierarchy) CheckInvariants() error {
	for i := range h.l1 {
		if err := h.l1[i].checkSetInvariant(); err != nil {
			return err
		}
		if err := h.l2[i].checkSetInvariant(); err != nil {
			return err
		}
	}
	return h.llc.checkSetInvariant()
}
