// Package prof wires the standard -cpuprofile/-memprofile flags into the
// simulator's command-line tools, so any experiment or single run can be
// fed straight to `go tool pprof`.
package prof

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap profile to
// memPath at stop, returning the stop function (never nil). An empty path
// disables that profile.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				log.Print(err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			if err := f.Close(); err != nil {
				log.Print(err)
			}
		}
	}, nil
}
