// Package mem models the server's DRAM: DDR4-3200 channels with ranks,
// banks, row buffers and a shared per-channel data bus, following the
// Ramulator-derived configuration in the paper's Table I (3 to 8 channels,
// 4 ranks per channel, 8 banks per rank).
//
// The model captures the two properties the paper's results depend on:
//
//   - finite per-channel bandwidth (one 64B burst per tBL, ~25.6 GB/s per
//     DDR4-3200 channel), and
//   - queuing delay that grows with utilization, because requests serialize
//     on bank timing and the channel data bus.
//
// Requests are admitted in simulation-event order; per-bank and per-bus
// busy-until timestamps create the queuing behaviour without an explicit
// scheduler.
package mem

import (
	"fmt"

	"sweeper/internal/fastdiv"
	"sweeper/internal/obs"
)

// Timing holds DDR4 timing parameters in DRAM clock cycles.
type Timing struct {
	// TRCD is the ACTIVATE-to-CAS delay (row miss adds this).
	TRCD uint64
	// TRP is the PRECHARGE delay (closing a conflicting row adds this).
	TRP uint64
	// TCL is the CAS (read) latency.
	TCL uint64
	// TCWL is the CAS write latency.
	TCWL uint64
	// TBL is the data-bus occupancy of one 64B burst (BL8 = 4 clocks).
	TBL uint64
	// TCCD is the CAS-to-CAS pipelining gap: row-buffer hits to the same
	// bank stream one burst per TCCD.
	TCCD uint64
	// TRAS is the minimum ACTIVATE-to-PRECHARGE time.
	TRAS uint64
	// TREFI is the refresh interval and TRFC the refresh cycle time; all
	// banks of a channel stall for TRFC every TREFI. Zero TREFI disables
	// refresh.
	TREFI uint64
	TRFC  uint64
}

// DDR43200 returns DDR4-3200AA timing (22-22-22) as used by Ramulator.
func DDR43200() Timing {
	// 7.8us refresh interval, 350ns refresh cycle (8Gb devices), in
	// 1.6GHz DRAM clocks.
	return Timing{TRCD: 22, TRP: 22, TCL: 22, TCWL: 16, TBL: 4, TCCD: 4,
		TRAS: 52, TREFI: 12480, TRFC: 560}
}

// Config describes one memory subsystem.
type Config struct {
	// WriteQueueDepth is the controller's per-channel write buffer; when
	// full, further traffic stalls behind forced write drains.
	WriteQueueDepth uint64
	// Channels is the number of independent memory channels (paper: 3-8).
	Channels int
	// RanksPerChannel and BanksPerRank set the bank-level parallelism
	// (paper: 4 ranks x 8 banks).
	RanksPerChannel int
	BanksPerRank    int
	// RowBytes is the row-buffer size per bank (8 KiB typical).
	RowBytes uint64
	// CPUCyclesPerDRAMCycle converts DRAM clocks to CPU cycles
	// (3.2 GHz CPU over 1.6 GHz DDR4-3200 clock = 2).
	CPUCyclesPerDRAMCycle uint64
	// Timing are the DDR4 core timings.
	Timing Timing
}

// DefaultConfig returns the paper's four-channel Table I configuration.
func DefaultConfig() Config {
	return Config{
		WriteQueueDepth:       64,
		Channels:              4,
		RanksPerChannel:       4,
		BanksPerRank:          8,
		RowBytes:              8 * 1024,
		CPUCyclesPerDRAMCycle: 2,
		Timing:                DDR43200(),
	}
}

const lineBytes = 64

type bank struct {
	openRow int64 // -1 when no row is open
	// readyAt is when the bank accepts its next column command; row hits
	// pipeline at tCCD, so streaming a buffer is bus-limited, not
	// CAS-latency-limited.
	readyAt uint64
	// lastAct is the last ACTIVATE time, bounding precharge (tRAS) and
	// the next ACTIVATE (tRC).
	lastAct uint64
}

type channel struct {
	banks     []bank
	busFreeAt uint64
	// pendingWrites is the controller's write queue: writebacks wait here
	// and drain through idle bus slots. Reads have priority (as in real
	// controllers) until the queue fills, at which point forced drains
	// push the bus out — that is how write traffic steals bandwidth from
	// demand reads, the paper's interference mechanism.
	pendingWrites uint64
	// nextRefreshAt schedules the channel's next all-bank refresh.
	nextRefreshAt uint64
}

// DDR4 is the memory model. It is not safe for concurrent use; the
// simulator is single-threaded by design.
type DDR4 struct {
	cfg Config
	// Converted timings, in CPU cycles.
	tRCD, tRP, tCL, tCWL, tBL, tCCD, tRAS uint64
	tREFI, tRFC                           uint64
	linesPerRow                           uint64
	channels                              []channel
	// Strength-reduced divisors for the per-transaction address mapping
	// (channel count is 3 in some sweeps — not a power of two).
	chDiv   fastdiv.Divisor // by len(channels)
	rowDiv  fastdiv.Divisor // by linesPerRow
	bankDiv fastdiv.Divisor // by banks per channel

	refreshes uint64

	reads  uint64
	writes uint64
}

// New creates a memory subsystem from cfg.
func New(cfg Config) *DDR4 {
	if cfg.Channels <= 0 {
		panic("mem: Channels must be positive")
	}
	if cfg.RanksPerChannel <= 0 || cfg.BanksPerRank <= 0 {
		panic("mem: ranks and banks must be positive")
	}
	if cfg.RowBytes < lineBytes {
		panic("mem: RowBytes must cover at least one line")
	}
	r := cfg.CPUCyclesPerDRAMCycle
	if r == 0 {
		r = 1
	}
	tccd := cfg.Timing.TCCD
	if tccd == 0 {
		tccd = cfg.Timing.TBL
	}
	m := &DDR4{
		cfg:         cfg,
		tRCD:        cfg.Timing.TRCD * r,
		tRP:         cfg.Timing.TRP * r,
		tCL:         cfg.Timing.TCL * r,
		tCWL:        cfg.Timing.TCWL * r,
		tBL:         cfg.Timing.TBL * r,
		tCCD:        tccd * r,
		tRAS:        cfg.Timing.TRAS * r,
		tREFI:       cfg.Timing.TREFI * r,
		tRFC:        cfg.Timing.TRFC * r,
		linesPerRow: cfg.RowBytes / lineBytes,
		channels:    make([]channel, cfg.Channels),
	}
	nBanks := cfg.RanksPerChannel * cfg.BanksPerRank
	m.chDiv = fastdiv.New(uint64(cfg.Channels))
	m.rowDiv = fastdiv.New(m.linesPerRow)
	m.bankDiv = fastdiv.New(uint64(nBanks))
	for i := range m.channels {
		m.channels[i].banks = make([]bank, nBanks)
		for b := range m.channels[i].banks {
			m.channels[i].banks[b].openRow = -1
		}
		m.channels[i].nextRefreshAt = m.tREFI
	}
	return m
}

// Config returns the configuration the model was built with.
func (m *DDR4) Config() Config { return m.cfg }

// Reset returns the model to its just-constructed state: all rows closed,
// buses idle, write queues empty, refresh schedules rewound and counters
// zeroed. Pooled machines call this instead of rebuilding the channel state.
func (m *DDR4) Reset() {
	for i := range m.channels {
		c := &m.channels[i]
		for b := range c.banks {
			c.banks[b] = bank{openRow: -1}
		}
		c.busFreeAt = 0
		c.pendingWrites = 0
		c.nextRefreshAt = m.tREFI
	}
	m.refreshes, m.reads, m.writes = 0, 0, 0
}

// map splits a line address into channel, bank and row, interleaving
// consecutive lines across channels and keeping a row's columns together so
// streaming accesses enjoy row-buffer hits.
func (m *DDR4) mapAddr(a uint64) (ch int, bk int, row int64) {
	li := a / lineBytes
	q, r := m.chDiv.DivMod(li)
	ch = int(r)
	rest := m.rowDiv.Div(q) // drop column bits
	bkq, bkr := m.bankDiv.DivMod(rest)
	bk = int(bkr)
	row = int64(bkq)
	return ch, bk, row
}

// refresh stalls the channel for tRFC every tREFI (all-bank refresh),
// charging any refreshes due by cycle now.
func (m *DDR4) refresh(c *channel, now uint64) {
	if m.tREFI == 0 {
		return
	}
	for c.nextRefreshAt <= now {
		base := c.busFreeAt
		if c.nextRefreshAt > base {
			base = c.nextRefreshAt
		}
		c.busFreeAt = base + m.tRFC
		c.nextRefreshAt += m.tREFI
		m.refreshes++
	}
}

// drainIdle retires queued writes through bus slots that sat idle up to
// cycle now, advancing the channel clock. One write occupies one tBL slot.
func (m *DDR4) drainIdle(c *channel, now uint64) {
	if c.busFreeAt >= now {
		return
	}
	idle := now - c.busFreeAt
	k := idle / m.tBL
	if k >= c.pendingWrites {
		c.pendingWrites = 0
		c.busFreeAt = now
		return
	}
	c.pendingWrites -= k
	c.busFreeAt = now
}

// read performs bank+bus timing for a demand read and returns the cycle at
// which the burst completes on the data bus. Reads have priority over the
// write queue; queued writes only delay them indirectly, via forced drains
// when the write queue overflows.
func (m *DDR4) read(now uint64, a uint64) uint64 {
	ch, bk, row := m.mapAddr(a)
	c := &m.channels[ch]
	b := &c.banks[bk]
	var probeBus, probeReady uint64
	if obs.ProbesEnabled {
		probeBus, probeReady = c.busFreeAt, b.readyAt
	}
	m.refresh(c, now)
	m.drainIdle(c, now)

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var casAt uint64
	if b.openRow == row {
		// Row-buffer hit: the column command issues immediately and the
		// bank can pipeline the next one tCCD later.
		casAt = start
	} else {
		actAt := start
		if b.openRow >= 0 {
			// Precharge the open row, no earlier than tRAS after
			// its activation.
			preAt := start
			if min := b.lastAct + m.tRAS; min > preAt {
				preAt = min
			}
			actAt = preAt + m.tRP
		}
		// ACT-to-ACT to the same bank is bounded by tRC = tRAS+tRP.
		if min := b.lastAct + m.tRAS + m.tRP; min > actAt {
			actAt = min
		}
		b.lastAct = actAt
		casAt = actAt + m.tRCD
	}

	dataReady := casAt + m.tCL
	busStart := dataReady
	if c.busFreeAt > busStart {
		busStart = c.busFreeAt
	}
	done := busStart + m.tBL
	c.busFreeAt = done
	b.openRow = row
	// The bank accepts its next column command tCCD after this one. Bank
	// state advances on bank timing alone — coupling it to the (possibly
	// backlogged) bus slot would compound bus queueing with bank latency
	// on every row miss and ratchet the backlog upward forever.
	b.readyAt = casAt + m.tCCD
	if obs.ProbesEnabled {
		// The channel bus clock and per-bank command clock only ever
		// advance; a regression here means timing state went backwards
		// and queuing delays are being under-charged.
		if c.busFreeAt < probeBus {
			obs.Failf("mem: ch%d busFreeAt regressed %d -> %d (read at %d)",
				ch, probeBus, c.busFreeAt, now)
		}
		if b.readyAt < probeReady {
			obs.Failf("mem: ch%d bank%d readyAt regressed %d -> %d (read at %d)",
				ch, bk, probeReady, b.readyAt, now)
		}
	}
	return done
}

// Read performs a 64B demand read beginning at cycle now and returns the
// completion cycle (the requester blocks until then).
func (m *DDR4) Read(now uint64, a uint64) (done uint64) {
	m.reads++
	return m.read(now, a)
}

// Write enqueues a 64B write (writeback or DMA write) at cycle now. Writes
// are fire-and-forget for the requester and sit in the controller's write
// queue, draining through idle bus slots; when the queue is full the excess
// is force-drained, pushing the channel clock out and stealing bandwidth
// from demand reads exactly as in the paper. It returns the cycle by which
// the write's bus slot is accounted for.
func (m *DDR4) Write(now uint64, a uint64) (done uint64) {
	m.writes++
	ch, _, _ := m.mapAddr(a)
	c := &m.channels[ch]
	var probeBus uint64
	if obs.ProbesEnabled {
		probeBus = c.busFreeAt
	}
	m.refresh(c, now)
	m.drainIdle(c, now)
	c.pendingWrites++
	cap := m.cfg.WriteQueueDepth
	if cap == 0 {
		cap = 1
	}
	if c.pendingWrites > cap {
		// Forced drain: the controller must issue writes now, consuming
		// bus slots ahead of any later reads.
		excess := c.pendingWrites - cap
		base := c.busFreeAt
		if now > base {
			base = now
		}
		c.busFreeAt = base + excess*m.tBL
		c.pendingWrites = cap
	}
	if obs.ProbesEnabled && c.busFreeAt < probeBus {
		obs.Failf("mem: ch%d busFreeAt regressed %d -> %d (write at %d)",
			ch, probeBus, c.busFreeAt, now)
	}
	if c.busFreeAt > now {
		return c.busFreeAt
	}
	return now + m.tBL
}

// FuncRead records a demand read functionally: the transaction counter
// advances and the target bank's row buffer opens the addressed row (so
// row-locality state stays warm across fast-forward intervals), but no bus,
// bank-timing or write-queue state moves. Fast-forward intervals use this so
// timing clocks never see functional traffic.
func (m *DDR4) FuncRead(a uint64) {
	m.reads++
	ch, bk, row := m.mapAddr(a)
	m.channels[ch].banks[bk].openRow = row
}

// FuncWrite records a write functionally; see FuncRead.
func (m *DDR4) FuncWrite(a uint64) {
	m.writes++
	ch, bk, row := m.mapAddr(a)
	m.channels[ch].banks[bk].openRow = row
}

// RegisterMetrics exposes the model's transaction counters and controller
// queue state to the observability registry. Bus utilization over a sample
// interval is the delta of mem.bus_busy_cycles divided by interval length
// times channel count.
func (m *DDR4) RegisterMetrics(r *obs.Registry) {
	r.Counter("mem.reads", func() uint64 { return m.reads })
	r.Counter("mem.writes", func() uint64 { return m.writes })
	r.Counter("mem.refreshes", func() uint64 { return m.refreshes })
	r.Counter("mem.bus_busy_cycles", func() uint64 {
		return (m.reads+m.writes)*m.tBL + m.refreshes*m.tRFC
	})
	r.Gauge("mem.write_queue_depth", func(uint64) float64 {
		var d uint64
		for i := range m.channels {
			d += m.channels[i].pendingWrites
		}
		return float64(d)
	})
	r.Gauge("mem.bus_backlog_cycles", func(now uint64) float64 {
		var worst uint64
		for i := range m.channels {
			if free := m.channels[i].busFreeAt; free > now && free-now > worst {
				worst = free - now
			}
		}
		return float64(worst)
	})
}

// Refreshes returns the number of all-bank refreshes performed.
func (m *DDR4) Refreshes() uint64 { return m.refreshes }

// Reads returns the cumulative demand-read transaction count.
func (m *DDR4) Reads() uint64 { return m.reads }

// Writes returns the cumulative write transaction count.
func (m *DDR4) Writes() uint64 { return m.writes }

// Transactions returns reads + writes.
func (m *DDR4) Transactions() uint64 { return m.reads + m.writes }

// PeakGBps returns the theoretical peak bandwidth of the configuration at
// the given CPU frequency, for utilization reporting.
func (m *DDR4) PeakGBps(cpuHz float64) float64 {
	cyclesPerBurst := float64(m.tBL)
	burstsPerSec := cpuHz / cyclesPerBurst
	return burstsPerSec * float64(lineBytes) * float64(len(m.channels)) / 1e9
}

// UnloadedReadLatency returns the best-case read latency in CPU cycles
// (open-row hit, idle bus), useful for calibration and tests.
func (m *DDR4) UnloadedReadLatency() uint64 { return m.tCL + m.tBL }

func (m *DDR4) String() string {
	return fmt.Sprintf("DDR4 %dch x %drk x %dbk", m.cfg.Channels,
		m.cfg.RanksPerChannel, m.cfg.BanksPerRank)
}
