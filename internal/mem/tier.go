package mem

import (
	"fmt"
	"math"
	"strings"

	"sweeper/internal/addr"
	"sweeper/internal/obs"
)

// This file adds the hybrid second memory tier of ROADMAP item 4(a): a
// CXL/NVM-class backend behind the same Read/Write/FuncRead/FuncWrite channel
// surface as the DDR4 model, with asymmetric read/write latency, a lower
// bandwidth ceiling, and a page-granular placement policy (static address
// split plus a hot-page heuristic) deciding which tier owns each access —
// per "Emulating Hybrid Memory on NUMA Hardware" (PAPERS.md).

// Placement policy names for TierConfig.Policy.
const (
	// TierStatic places the first DRAMBytes of the application heap on
	// tier 0 and everything beyond on tier 1, permanently.
	TierStatic = "static"
	// TierHotPage starts like TierStatic but promotes cold-region pages
	// that exceed HotPageThreshold accesses per epoch back to tier 0,
	// demoting them when they cool — a first-order hot-page migrator.
	TierHotPage = "hotpage"
)

// TierPolicies returns the supported placement policy names.
func TierPolicies() []string { return []string{TierStatic, TierHotPage} }

// TierConfig configures the hybrid memory tier. The zero value disables
// tiering entirely; all fields are plain scalars so machine.Config stays
// comparable. Enabled configurations must carry positive latencies and
// bandwidth — start from DefaultTierConfig and override.
type TierConfig struct {
	// Policy selects the placement policy ("" = tiering off).
	Policy string
	// DRAMBytes is how much of the application heap stays on tier 0; pages
	// past the boundary are tier-1 candidates. 0 puts the whole heap on
	// tier 1. RX/TX rings always stay on tier 0.
	DRAMBytes uint64
	// ReadLatency/WriteLatency are tier-1 unloaded access latencies in CPU
	// cycles; NVM-class devices are read/write asymmetric.
	ReadLatency  uint64
	WriteLatency uint64
	// BandwidthGBps is the tier-1 bandwidth ceiling.
	BandwidthGBps float64
	// HotPageThreshold is the accesses-per-epoch bar a cold page must clear
	// to be promoted under TierHotPage; HotPageEpochCycles the epoch
	// length. Only TierHotPage reads them.
	HotPageThreshold   int
	HotPageEpochCycles uint64
}

// DefaultTierConfig returns an NVM/CXL-class tier under the given placement
// policy: ~3x DRAM read latency, ~10x write latency, a 16 GB/s ceiling
// (about a fifth of the Table I server's four DDR4-3200 channels), and a
// 64-access hot-page bar over 1M-cycle epochs.
func DefaultTierConfig(policy string) TierConfig {
	return TierConfig{
		Policy:             policy,
		DRAMBytes:          0,
		ReadLatency:        300,
		WriteLatency:       1000,
		BandwidthGBps:      16,
		HotPageThreshold:   64,
		HotPageEpochCycles: 1 << 20,
	}
}

// Enabled reports whether a second tier is configured.
func (c TierConfig) Enabled() bool { return c.Policy != "" }

// Validate rejects contradictory tier knob combinations before any
// simulation runs (mirrors the cluster-knob validation).
func (c TierConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch c.Policy {
	case TierStatic, TierHotPage:
	default:
		return fmt.Errorf("mem: unknown tier placement policy %q (have %s)",
			c.Policy, strings.Join(TierPolicies(), ", "))
	}
	if c.DRAMBytes > addr.MaxLocalAddr {
		return fmt.Errorf("mem: tier split %d bytes exceeds the 2^48 local address space", c.DRAMBytes)
	}
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("mem: tier bandwidth %.2f GB/s must be positive", c.BandwidthGBps)
	}
	if c.ReadLatency == 0 || c.WriteLatency == 0 {
		return fmt.Errorf("mem: tier latencies must be positive (read %d, write %d)",
			c.ReadLatency, c.WriteLatency)
	}
	if c.Policy == TierHotPage {
		if c.HotPageThreshold < 1 {
			return fmt.Errorf("mem: hot-page threshold %d must be at least 1", c.HotPageThreshold)
		}
		if c.HotPageEpochCycles < 1024 {
			return fmt.Errorf("mem: hot-page epoch of %d cycles is too short to observe reuse", c.HotPageEpochCycles)
		}
	}
	return nil
}

// Tier1 models the slow memory tier: a flat-latency, bandwidth-limited
// device (CXL memory expander or NVM DIMM class). A single serialization
// cursor models the device link; reads and writes pay asymmetric unloaded
// latencies on top of queuing behind it.
type Tier1 struct {
	readLat     uint64
	writeLat    uint64
	lineCycles  uint64 // link occupancy per 64B read transfer
	writeCycles uint64 // link occupancy per 64B write (cell-write derated)
	gbps        float64

	busFreeAt uint64
	reads     uint64
	writes    uint64
	busBusy   uint64
}

// NewTier1 builds the slow tier for a machine clocked at cpuHz. Writes
// occupy the device proportionally longer than reads by the configured
// latency asymmetry, so sustained write bandwidth derates the same way
// NVM cell writes derate a real device's read ceiling.
func NewTier1(cfg TierConfig, cpuHz float64) *Tier1 {
	lc := uint64(math.Ceil(cpuHz * float64(lineBytes) / (cfg.BandwidthGBps * 1e9)))
	if lc == 0 {
		lc = 1
	}
	return &Tier1{
		readLat:     cfg.ReadLatency,
		writeLat:    cfg.WriteLatency,
		lineCycles:  lc,
		writeCycles: lc * ((cfg.WriteLatency + cfg.ReadLatency - 1) / cfg.ReadLatency),
		gbps:        cfg.BandwidthGBps,
	}
}

// Reset returns the tier to its just-constructed state.
func (t *Tier1) Reset() {
	t.busFreeAt, t.reads, t.writes, t.busBusy = 0, 0, 0, 0
}

// occupy serializes one transfer of the given occupancy on the device link
// starting no earlier than now, returning when the transfer begins.
func (t *Tier1) occupy(now, cycles uint64) uint64 {
	start := now
	if t.busFreeAt > start {
		start = t.busFreeAt
	}
	t.busFreeAt = start + cycles
	t.busBusy += cycles
	return start
}

// Read fetches one line, returning the completion cycle.
func (t *Tier1) Read(now uint64, a uint64) uint64 {
	_ = a
	t.reads++
	return t.occupy(now, t.lineCycles) + t.readLat
}

// Write stores one line (posted — the device absorbs it, so nothing waits on
// the returned completion, but the cell write occupies the device longer
// than a read transfer, derating sustained write bandwidth).
func (t *Tier1) Write(now uint64, a uint64) uint64 {
	_ = a
	t.writes++
	return t.occupy(now, t.writeCycles) + t.writeLat
}

// FuncRead records a read functionally (fast-forward): counters only, no
// timing state advances.
func (t *Tier1) FuncRead(a uint64) {
	_ = a
	t.reads++
}

// FuncWrite records a write functionally.
func (t *Tier1) FuncWrite(a uint64) {
	_ = a
	t.writes++
}

// Reads, Writes and Transactions report cumulative access counts.
func (t *Tier1) Reads() uint64        { return t.reads }
func (t *Tier1) Writes() uint64       { return t.writes }
func (t *Tier1) Transactions() uint64 { return t.reads + t.writes }

// UnloadedReadLatency returns the best-case read latency in CPU cycles.
func (t *Tier1) UnloadedReadLatency() uint64 { return t.readLat }

// UnloadedWriteLatency returns the best-case write latency in CPU cycles.
func (t *Tier1) UnloadedWriteLatency() uint64 { return t.writeLat }

// PeakGBps returns the tier's bandwidth ceiling.
func (t *Tier1) PeakGBps() float64 { return t.gbps }

// RegisterMetrics exposes the tier's activity as mem.tier1.* metrics.
func (t *Tier1) RegisterMetrics(r *obs.Registry) {
	r.Counter("mem.tier1.reads", func() uint64 { return t.reads })
	r.Counter("mem.tier1.writes", func() uint64 { return t.writes })
	r.Counter("mem.tier1.bus_busy_cycles", func() uint64 { return t.busBusy })
}

func (t *Tier1) String() string {
	return fmt.Sprintf("tier1{r:%d w:%d %gGB/s}", t.readLat, t.writeLat, t.gbps)
}

// Placement decides, per access, which tier owns an address. Static
// placement is a single boundary compare; the hot-page heuristic counts
// cold-region accesses per page per epoch and keeps pages that clear the
// threshold on tier 0 for the next epoch. Promotion state advances lazily
// from access timestamps, so no engine events are needed and decisions are
// deterministic for a deterministic access sequence.
type Placement struct {
	policy    string
	tierBase  uint64 // first tier-1-candidate address
	threshold uint32
	epoch     uint64

	hot        map[uint64]bool
	counts     map[uint64]uint32
	epochEnd   uint64
	promotions uint64
	demotions  uint64
}

// NewPlacement builds the placement policy for an app heap starting at
// appBase. Callers pass a validated, enabled TierConfig.
func NewPlacement(cfg TierConfig, appBase uint64) *Placement {
	p := &Placement{
		policy:    cfg.Policy,
		tierBase:  appBase + cfg.DRAMBytes,
		threshold: uint32(cfg.HotPageThreshold),
		epoch:     cfg.HotPageEpochCycles,
	}
	if cfg.Policy == TierHotPage {
		p.hot = make(map[uint64]bool)
		p.counts = make(map[uint64]uint32)
		p.epochEnd = p.epoch
	}
	return p
}

// Reset returns the placement to its just-constructed state.
func (p *Placement) Reset() {
	if p.policy != TierHotPage {
		return
	}
	p.hot = make(map[uint64]bool)
	p.counts = make(map[uint64]uint32)
	p.epochEnd = p.epoch
	p.promotions, p.demotions = 0, 0
}

// rollover recomputes the hot set from the finished epoch's counts.
func (p *Placement) rollover(now uint64) {
	for page, n := range p.counts {
		if n >= p.threshold {
			if !p.hot[page] {
				p.hot[page] = true
				p.promotions++
			}
		} else if p.hot[page] {
			delete(p.hot, page)
			p.demotions++
		}
	}
	// Pages with zero accesses this epoch cool off too.
	for page := range p.hot {
		if _, seen := p.counts[page]; !seen {
			delete(p.hot, page)
			p.demotions++
		}
	}
	for page := range p.counts {
		delete(p.counts, page)
	}
	for p.epochEnd <= now {
		p.epochEnd += p.epoch
	}
}

// Route reports whether address a routes to tier 1 for an access at cycle
// now, recording the access in the hot-page ledger.
func (p *Placement) Route(now uint64, a uint64) bool {
	if a < p.tierBase {
		return false
	}
	if p.policy == TierStatic {
		return true
	}
	if now >= p.epochEnd {
		p.rollover(now)
	}
	page := addr.PageOf(a)
	p.counts[page]++
	return !p.hot[page]
}

// Resident reports current ownership without recording an access — used for
// fast-forward latency stamping and metrics.
func (p *Placement) Resident(a uint64) bool {
	if a < p.tierBase {
		return false
	}
	if p.policy == TierStatic {
		return true
	}
	return !p.hot[addr.PageOf(a)]
}

// Migrations returns cumulative hot-page promotions and demotions.
func (p *Placement) Migrations() (promotions, demotions uint64) {
	return p.promotions, p.demotions
}

// RegisterMetrics exposes the placement churn as mem.tier1.* metrics.
func (p *Placement) RegisterMetrics(r *obs.Registry) {
	r.Counter("mem.tier1.promotions", func() uint64 { return p.promotions })
	r.Counter("mem.tier1.demotions", func() uint64 { return p.demotions })
	r.Gauge("mem.tier1.hot_pages", func(uint64) float64 { return float64(len(p.hot)) })
}
