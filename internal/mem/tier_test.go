package mem

import (
	"strings"
	"testing"

	"sweeper/internal/addr"
)

// TestTierConfigValidate is the table-driven validation for the tier knobs
// (satellite of ROADMAP item 4): contradictory combinations must be rejected
// before any simulation runs.
func TestTierConfigValidate(t *testing.T) {
	valid := DefaultTierConfig(TierHotPage)
	mutate := func(f func(*TierConfig)) TierConfig {
		c := valid
		f(&c)
		return c
	}
	cases := []struct {
		name    string
		cfg     TierConfig
		wantErr string
	}{
		{"zero value is off", TierConfig{}, ""},
		{"default static", DefaultTierConfig(TierStatic), ""},
		{"default hotpage", valid, ""},
		{"unknown policy", mutate(func(c *TierConfig) { c.Policy = "warm" }), "unknown tier placement policy"},
		{"split past address space", mutate(func(c *TierConfig) { c.DRAMBytes = addr.MaxLocalAddr + 1 }), "exceeds the 2^48"},
		{"zero bandwidth", mutate(func(c *TierConfig) { c.BandwidthGBps = 0 }), "bandwidth"},
		{"negative bandwidth", mutate(func(c *TierConfig) { c.BandwidthGBps = -4 }), "bandwidth"},
		{"zero read latency", mutate(func(c *TierConfig) { c.ReadLatency = 0 }), "latencies"},
		{"zero write latency", mutate(func(c *TierConfig) { c.WriteLatency = 0 }), "latencies"},
		{"hot threshold zero", mutate(func(c *TierConfig) { c.HotPageThreshold = 0 }), "threshold"},
		{"hot epoch too short", mutate(func(c *TierConfig) { c.HotPageEpochCycles = 100 }), "epoch"},
		// Static placement ignores the hot-page knobs entirely.
		{"static ignores hot knobs", TierConfig{Policy: TierStatic, ReadLatency: 300,
			WriteLatency: 1000, BandwidthGBps: 16}, ""},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestTier1LatencyModel pins the device model: unloaded accesses complete
// after the configured latency, back-to-back accesses queue behind the single
// device link, and write transfers occupy the link proportionally longer than
// reads (the NVM write-bandwidth derate).
func TestTier1LatencyModel(t *testing.T) {
	cfg := DefaultTierConfig(TierStatic) // read 300, write 1000, 16 GB/s
	tier := NewTier1(cfg, 3.2e9)
	// 64 B at 16 GB/s and 3.2 GHz is 12.8 -> 13 cycles of link occupancy.
	const lineCycles = 13

	if got := tier.Read(1000, 0); got != 1000+cfg.ReadLatency {
		t.Fatalf("unloaded read completed at %d, want %d", got, 1000+cfg.ReadLatency)
	}
	// Second read issued at the same cycle queues one transfer behind.
	if got := tier.Read(1000, 64); got != 1000+lineCycles+cfg.ReadLatency {
		t.Fatalf("queued read completed at %d, want %d", got, 1000+lineCycles+cfg.ReadLatency)
	}

	tier.Reset()
	if got := tier.Write(0, 0); got != cfg.WriteLatency {
		t.Fatalf("unloaded write completed at %d, want %d", got, cfg.WriteLatency)
	}
	// writeLat/readLat = 1000/300 -> ceil 4: each write holds the link 4x a
	// read transfer, so a read behind one write starts 4*13 cycles late.
	if got := tier.Read(0, 64); got != 4*lineCycles+cfg.ReadLatency {
		t.Fatalf("read behind write completed at %d, want %d", got, 4*lineCycles+cfg.ReadLatency)
	}

	if r, w := tier.Reads(), tier.Writes(); r != 1 || w != 1 || tier.Transactions() != 2 {
		t.Fatalf("counters after reset+2 accesses: reads=%d writes=%d", r, w)
	}
	tier.FuncRead(0)
	tier.FuncWrite(0)
	if tier.Transactions() != 4 {
		t.Fatalf("functional accesses not counted: %d", tier.Transactions())
	}
	if tier.UnloadedReadLatency() != cfg.ReadLatency || tier.UnloadedWriteLatency() != cfg.WriteLatency {
		t.Fatal("unloaded latency accessors disagree with config")
	}
}

// TestPlacementStatic checks the single-boundary policy: everything below
// appBase (the RX/TX rings) and the first DRAMBytes of the heap stay on tier
// 0; everything past the split routes to tier 1 forever.
func TestPlacementStatic(t *testing.T) {
	cfg := DefaultTierConfig(TierStatic)
	cfg.DRAMBytes = 1 << 20
	const appBase = uint64(1 << 30)
	p := NewPlacement(cfg, appBase)

	for name, tc := range map[string]struct {
		a    uint64
		tier bool
	}{
		"ring":         {appBase - 64, false},
		"heap start":   {appBase, false},
		"last dram":    {appBase + cfg.DRAMBytes - 1, false},
		"first tier1":  {appBase + cfg.DRAMBytes, true},
		"deep in heap": {appBase + 64<<20, true},
	} {
		if got := p.Route(0, tc.a); got != tc.tier {
			t.Errorf("%s: Route(%#x) = %v, want %v", name, tc.a, got, tc.tier)
		}
		if got := p.Resident(tc.a); got != tc.tier {
			t.Errorf("%s: Resident(%#x) = %v, want %v", name, tc.a, got, tc.tier)
		}
	}
	if pr, de := p.Migrations(); pr != 0 || de != 0 {
		t.Fatalf("static policy migrated: %d promotions, %d demotions", pr, de)
	}
}

// TestPlacementHotPage drives the promotion/demotion cycle: a cold-region
// page that clears the threshold within an epoch is served from tier 0 for
// the next epoch, and cools back to tier 1 once its traffic stops.
func TestPlacementHotPage(t *testing.T) {
	cfg := DefaultTierConfig(TierHotPage)
	cfg.HotPageThreshold = 4
	cfg.HotPageEpochCycles = 1024
	p := NewPlacement(cfg, 0)
	hot, cold := uint64(0x10000), uint64(0x20000) // distinct pages past the split

	// Epoch 0: the hot page clears the threshold, the cold one doesn't.
	for i := uint64(0); i < 4; i++ {
		if !p.Route(i, hot) {
			t.Fatalf("access %d: page tier-0 before any rollover", i)
		}
	}
	p.Route(5, cold)

	// First access of epoch 1 triggers the rollover; the hot page is now
	// resident on tier 0, the cold one still routes to tier 1.
	if p.Route(1024, hot) {
		t.Fatal("hot page not promoted at epoch rollover")
	}
	if !p.Resident(cold) {
		t.Fatal("cold page promoted without clearing the threshold")
	}
	if pr, _ := p.Migrations(); pr != 1 {
		t.Fatalf("promotions = %d, want 1", pr)
	}

	// Resident is a pure query: hammering it must not keep a page hot.
	for i := 0; i < 100; i++ {
		p.Resident(hot)
	}

	// Epoch 1 saw only a single hot-page access (below threshold), so the
	// next rollover demotes it.
	if p.Route(2048, cold) != true {
		t.Fatal("cold page routed to tier 0")
	}
	if !p.Resident(hot) {
		t.Fatal("hot page not demoted after cooling off")
	}
	if _, de := p.Migrations(); de != 1 {
		demotions := de
		t.Fatalf("demotions = %d, want 1", demotions)
	}

	// Reset restores the just-constructed state.
	p.Reset()
	if pr, de := p.Migrations(); pr != 0 || de != 0 {
		t.Fatal("Reset kept migration counters")
	}
	if !p.Route(0, hot) {
		t.Fatal("Reset kept the hot set")
	}
}
