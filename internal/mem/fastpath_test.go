package mem

import (
	"math/rand"
	"testing"
)

// TestMapAddrMatchesNaiveDivMod pins the strength-reduced address mapping
// to the div/mod chain it replaces, across randomized channel/rank/bank/row
// geometries including the odd 3-channel sweep configuration.
func TestMapAddrMatchesNaiveDivMod(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfgs := []Config{DefaultConfig()}
	for _, ch := range []int{1, 3, 5, 8} {
		c := DefaultConfig()
		c.Channels = ch
		cfgs = append(cfgs, c)
	}
	for i := 0; i < 30; i++ {
		c := DefaultConfig()
		c.Channels = 1 + rng.Intn(12)
		c.RanksPerChannel = 1 + rng.Intn(8)
		c.BanksPerRank = 1 + rng.Intn(16)
		c.RowBytes = uint64(1+rng.Intn(512)) * lineBytes
		cfgs = append(cfgs, c)
	}
	for _, cfg := range cfgs {
		m := New(cfg)
		linesPerRow := cfg.RowBytes / lineBytes
		nBanks := uint64(cfg.RanksPerChannel * cfg.BanksPerRank)
		for j := 0; j < 5000; j++ {
			a := (rng.Uint64() >> 16) &^ (lineBytes - 1)
			li := a / lineBytes
			wantCh := int(li % uint64(cfg.Channels))
			rest := li / uint64(cfg.Channels) / linesPerRow
			wantBk := int(rest % nBanks)
			wantRow := int64(rest / nBanks)
			ch, bk, row := m.mapAddr(a)
			if ch != wantCh || bk != wantBk || row != wantRow {
				t.Fatalf("cfg %+v addr %#x: mapAddr=(%d,%d,%d), naive=(%d,%d,%d)",
					cfg, a, ch, bk, row, wantCh, wantBk, wantRow)
			}
		}
	}
}

// TestResetMatchesFresh drives the same transaction stream into a fresh
// and a recycled DDR4, asserting identical completion times and counters.
func TestResetMatchesFresh(t *testing.T) {
	run := func(m *DDR4, seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed))
		var log []uint64
		now := uint64(0)
		for i := 0; i < 50_000; i++ {
			now += uint64(rng.Intn(20))
			a := uint64(rng.Intn(1<<24)) * lineBytes
			if rng.Intn(4) == 0 {
				m.Write(now, a)
			} else {
				log = append(log, m.Read(now, a))
			}
		}
		return append(log, m.Reads(), m.Writes())
	}

	recycled := New(DefaultConfig())
	run(recycled, 3) // previous life
	recycled.Reset()

	want := run(New(DefaultConfig()), 11)
	got := run(recycled, 11)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("transaction %d diverges: fresh %d, recycled %d", i, want[i], got[i])
		}
	}
}

// BenchmarkDDR4MapAddr isolates the strength-reduced channel/bank/row
// split (4 channels, 32 banks, 128-line rows: three non-trivial divisions).
func BenchmarkDDR4MapAddr(b *testing.B) {
	m := New(DefaultConfig())
	var sink int
	for i := 0; i < b.N; i++ {
		ch, bk, row := m.mapAddr(uint64(i) * 4096)
		sink += ch + bk + int(row)
	}
	benchSink = sink
}

var benchSink int
