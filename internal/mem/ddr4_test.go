package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig(channels int) Config {
	cfg := DefaultConfig()
	cfg.Channels = channels
	// Deterministic-latency tests disable refresh; TestRefresh covers it.
	cfg.Timing.TREFI = 0
	return cfg
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no channels": {Channels: 0, RanksPerChannel: 1, BanksPerRank: 1, RowBytes: 8192},
		"no ranks":    {Channels: 1, RanksPerChannel: 0, BanksPerRank: 1, RowBytes: 8192},
		"tiny row":    {Channels: 1, RanksPerChannel: 1, BanksPerRank: 1, RowBytes: 32},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestUnloadedReadLatency(t *testing.T) {
	m := New(testConfig(4))
	// First read: closed bank -> tRCD + tCL + tBL, all x2 CPU cycles.
	done := m.Read(1000, 0)
	want := uint64(1000 + (22+22+4)*2)
	if done != want {
		t.Fatalf("cold read done = %d, want %d", done, want)
	}
	if m.UnloadedReadLatency() != (22+4)*2 {
		t.Fatalf("UnloadedReadLatency = %d", m.UnloadedReadLatency())
	}
}

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	m := New(testConfig(1))
	base := uint64(1 << 20)
	t0 := m.Read(0, base)
	lat0 := t0 - 0
	// Same row, next column, long after: row hit.
	t1 := m.Read(100000, base+64)
	lat1 := t1 - 100000
	if lat1 >= lat0 {
		t.Fatalf("row hit latency %d not faster than activate %d", lat1, lat0)
	}
	// Different row, same bank: precharge + activate (slower than hit).
	rowStride := uint64(8192 * 32) // linesPerRow*channels*banks... use large stride
	t2 := m.Read(200000, base+rowStride*64)
	_ = t2
}

func TestConsecutiveLinesInterleaveChannels(t *testing.T) {
	m := New(testConfig(4))
	ch0, _, _ := m.mapAddr(0)
	ch1, _, _ := m.mapAddr(64)
	ch2, _, _ := m.mapAddr(128)
	if ch0 == ch1 || ch1 == ch2 || ch0 == ch2 {
		t.Fatalf("adjacent lines map to channels %d,%d,%d", ch0, ch1, ch2)
	}
}

func TestSameCycleReadsSerializeOnBus(t *testing.T) {
	m := New(testConfig(1))
	// Two same-cycle reads to different banks of one channel must occupy
	// distinct bus slots (tBL apart at least).
	a0 := uint64(0)
	a1 := uint64(8192) // different bank via row-group stride
	d0 := m.Read(0, a0)
	d1 := m.Read(0, a1)
	if d1 < d0+m.tBL {
		t.Fatalf("bus slots overlap: %d then %d (tBL=%d)", d0, d1, m.tBL)
	}
}

func TestWritesDoNotDelayReadsUntilQueueFull(t *testing.T) {
	cfg := testConfig(1)
	cfg.WriteQueueDepth = 64
	m := New(cfg)
	// Warm the bank so the read is a pure row hit.
	m.Read(0, 0)
	base := m.Read(10_000, 0) - 10_000

	// A handful of writes fit the write queue: the next read at the same
	// instant is not delayed.
	for i := 0; i < 16; i++ {
		m.Write(20_000, uint64(i)*64*997)
	}
	lat := m.Read(20_000, 0) - 20_000
	if lat != base {
		t.Fatalf("read behind small write queue: %d vs unloaded %d", lat, base)
	}
}

func TestWriteQueueOverflowStallsReads(t *testing.T) {
	cfg := testConfig(1)
	cfg.WriteQueueDepth = 8
	m := New(cfg)
	m.Read(0, 0)
	base := m.Read(10_000, 0) - 10_000

	// Flood far beyond the queue: forced drains must push the bus out.
	for i := 0; i < 512; i++ {
		m.Write(20_000, uint64(i)*64)
	}
	lat := m.Read(20_000, 0) - 20_000
	if lat <= base+100 {
		t.Fatalf("read not delayed by write flood: %d vs %d", lat, base)
	}
}

func TestIdleSlotsDrainWriteQueue(t *testing.T) {
	cfg := testConfig(1)
	cfg.WriteQueueDepth = 8
	m := New(cfg)
	for i := 0; i < 8; i++ {
		m.Write(0, uint64(i)*64)
	}
	// After a long idle period the queue has drained: a burst of writes
	// fits again without forced drains, so a read right after is clean.
	m.Read(1_000_000, 1<<20)
	base := m.Read(2_000_000, 1<<20) - 2_000_000
	for i := 0; i < 8; i++ {
		m.Write(3_000_000, uint64(i)*64)
	}
	lat := m.Read(3_000_000, 1<<20) - 3_000_000
	if lat != base {
		t.Fatalf("drained queue still delays reads: %d vs %d", lat, base)
	}
}

func TestTransactionCounters(t *testing.T) {
	m := New(testConfig(2))
	m.Read(0, 0)
	m.Read(0, 64)
	m.Write(0, 128)
	if m.Reads() != 2 || m.Writes() != 1 || m.Transactions() != 3 {
		t.Fatalf("counters: r=%d w=%d", m.Reads(), m.Writes())
	}
}

func TestPeakBandwidth(t *testing.T) {
	m := New(testConfig(4))
	// 4 channels x (64B per 8 CPU cycles) at 3.2GHz = 102.4 GB/s.
	got := m.PeakGBps(3.2e9)
	if got < 102 || got > 103 {
		t.Fatalf("PeakGBps = %g", got)
	}
}

func TestSaturatedReadsApproachPeakBandwidth(t *testing.T) {
	m := New(testConfig(4))
	rng := rand.New(rand.NewSource(1))
	var now, done uint64
	n := 100_000
	for i := 0; i < n; i++ {
		a := uint64(rng.Int63n(1<<30)) &^ 63
		d := m.Read(now, a)
		if d > done {
			done = d
		}
		// Offered faster than service: backlog forms, bus saturates.
		now += 1
	}
	bytes := float64(n * 64)
	seconds := float64(done) / 3.2e9
	gbps := bytes / seconds / 1e9
	if gbps < 0.85*m.PeakGBps(3.2e9) {
		t.Fatalf("saturated throughput %g GB/s, peak %g", gbps, m.PeakGBps(3.2e9))
	}
}

func TestModerateLoadLatencyStaysBounded(t *testing.T) {
	m := New(testConfig(4))
	rng := rand.New(rand.NewSource(2))
	var now, worst uint64
	for i := 0; i < 50_000; i++ {
		now += uint64(rng.ExpFloat64() * 40) // ~20% load
		a := uint64(rng.Int63n(1<<30)) &^ 63
		lat := m.Read(now, a) - now
		if lat > worst {
			worst = lat
		}
	}
	if worst > 2000 {
		t.Fatalf("worst-case latency %d at 20%% load", worst)
	}
}

// Property: a read completes no earlier than its issue time plus the
// minimum CAS+burst latency, and the model's clocks never go backward.
func TestReadLatencyLowerBoundProperty(t *testing.T) {
	m := New(testConfig(3))
	var last uint64
	f := func(gap uint16, addrRaw uint32) bool {
		last += uint64(gap)
		a := uint64(addrRaw) &^ 63
		done := m.Read(last, a)
		return done >= last+m.tCL+m.tBL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshStallsChannelPeriodically(t *testing.T) {
	cfg := testConfig(1)
	cfg.Timing.TREFI = 12480
	cfg.Timing.TRFC = 560
	m := New(cfg)
	// Warm the row.
	m.Read(0, 0)
	base := m.Read(10_000, 0) - 10_000

	// A read issued just after a refresh boundary eats (part of) tRFC.
	refreshAt := uint64(12480 * 2) // CPU cycles
	lat := m.Read(refreshAt+1, 0) - (refreshAt + 1)
	if lat <= base {
		t.Fatalf("read at refresh boundary not delayed: %d vs %d", lat, base)
	}
	if m.Refreshes() == 0 {
		t.Fatal("no refreshes counted")
	}
	// Far from a boundary, latency returns to baseline.
	lat = m.Read(refreshAt+20_000, 0) - (refreshAt + 20_000)
	if lat != base {
		t.Fatalf("steady latency %d, want %d", lat, base)
	}
}

func TestRefreshDisabled(t *testing.T) {
	m := New(testConfig(1))
	m.Read(10_000_000, 0)
	if m.Refreshes() != 0 {
		t.Fatal("refreshes with TREFI=0")
	}
}

func TestChannelScalingIncreasesBandwidth(t *testing.T) {
	sustained := func(channels int) float64 {
		m := New(testConfig(channels))
		rng := rand.New(rand.NewSource(9))
		var now, done uint64
		n := 50_000
		for i := 0; i < n; i++ {
			a := uint64(rng.Int63n(1<<30)) &^ 63
			if d := m.Read(now, a); d > done {
				done = d
			}
		}
		return float64(n*64) / (float64(done) / 3.2e9) / 1e9
	}
	b3, b8 := sustained(3), sustained(8)
	if b8 < 2*b3 {
		t.Fatalf("8ch (%g GB/s) should be >2x 3ch (%g GB/s)", b8, b3)
	}
}
